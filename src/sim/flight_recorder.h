// Always-on bounded flight recorder for trace events.
//
// Production storage stacks keep a cheap in-memory ring of recent events
// (Ceph's OpTracker, kernel ftrace ring) so that when something goes wrong
// the last moments before the failure are available without paying for a
// full trace. This is the simulator's equivalent: a FlightRecorder attached
// to a Tracer (Tracer::set_flight_recorder) receives a copy of every span
// begin/end and instant event into a fixed-size ring. Two triggers snapshot
// the ring into a retained dump:
//
//   * a FaultPoint fires (ArmFaultTrigger installs a FaultRegistry fire
//     listener; the dump's trigger names the point, e.g.
//     "fault: nvme.cmd.timeout");
//   * a proxy is about to return a system error to a data plane
//     (MaybeDumpFlightRecorder, trigger "fs.proxy error: kIoError" etc.);
//   * a traced request's root span closes slower than the SLO threshold
//     (SOLROS_FLIGHT_RECORDER_SLO_NS, or set_slo_threshold_ns) — so a
//     slow-but-fault-free request leaves forensics too (trigger
//     "slo: <root span> <observed>ns > <threshold>ns").
//
// Dumps are bounded (the oldest is discarded past kMaxDumps) and each
// carries the triggering reason, the simulated time of the last recorded
// event, and the ring contents oldest-first. The whole mechanism rides on
// the tracer: with no tracer bound nothing reaches the recorder, so the
// zero-overhead-when-off contract of the tracing layer is preserved.
//
// SOLROS_FLIGHT_RECORDER=<capacity> (used when a recorder is constructed
// with capacity 0) sets the ring size and additionally echoes every dump
// to stderr as it happens.
#ifndef SOLROS_SRC_SIM_FLIGHT_RECORDER_H_
#define SOLROS_SRC_SIM_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace solros {

class FlightRecorder {
 public:
  // One recorded trace event. kind: 'B' span begin, 'E' span end,
  // 'I' instant, 'R' retroactive span (recorded at its end time).
  struct Entry {
    SimTime at = 0;
    char kind = 0;
    std::string track;
    std::string name;
    uint64_t trace_id = 0;  // 0 = untraced event
  };

  struct DumpRecord {
    uint64_t seq = 0;        // 1-based dump ordinal
    std::string trigger;     // what caused the dump
    SimTime at = 0;          // time of the newest entry when dumped
    std::vector<Entry> entries;  // oldest first
  };

  // Retained dumps; older ones are discarded.
  static constexpr size_t kMaxDumps = 8;
  static constexpr size_t kDefaultCapacity = 128;

  // capacity == 0 => SOLROS_FLIGHT_RECORDER if set (also enables stderr
  // echo of dumps), else kDefaultCapacity.
  explicit FlightRecorder(size_t capacity = 0);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  // Appends one event to the ring (called by the Tracer).
  void Note(char kind, std::string_view track, std::string_view name,
            uint64_t trace_id, SimTime at);

  // Snapshots the ring into a retained dump annotated with `trigger`.
  void Dump(std::string_view trigger);

  // Installs a FaultRegistry fire listener that dumps on every fault fire
  // (removed in the destructor). One recorder at a time may hold it.
  void ArmFaultTrigger();

  // Also write each dump to stderr the moment it is taken — forensics
  // survive even if the process aborts before the report is printed.
  void set_echo_to_stderr(bool echo) { echo_to_stderr_ = echo; }

  // Latency threshold for the SLO trigger: a traced root span closing
  // slower than this dumps the ring (0 = disabled). Initialized from
  // SOLROS_FLIGHT_RECORDER_SLO_NS; the Tracer checks it on every root
  // span close.
  void set_slo_threshold_ns(Nanos threshold) { slo_threshold_ns_ = threshold; }
  Nanos slo_threshold_ns() const { return slo_threshold_ns_; }

  size_t capacity() const { return capacity_; }
  uint64_t total_dumps() const { return total_dumps_; }
  const std::deque<DumpRecord>& dumps() const { return dumps_; }

  // Human-readable text form of one dump / of all retained dumps.
  static void WriteDump(std::ostream& os, const DumpRecord& dump);
  void WriteText(std::ostream& os) const;

 private:
  size_t capacity_;
  Nanos slo_threshold_ns_ = 0;
  bool echo_to_stderr_ = false;
  bool fault_trigger_armed_ = false;
  // Ring: entries_[(head_ + i) % capacity_] for i in [0, size_).
  std::vector<Entry> entries_;
  size_t head_ = 0;
  size_t size_ = 0;
  SimTime last_at_ = 0;
  std::deque<DumpRecord> dumps_;
  uint64_t total_dumps_ = 0;
};

// Dumps the flight recorder reachable through `sim`'s tracer, if any.
// Null-safe at every hop so instrumentation sites can call unconditionally.
inline void MaybeDumpFlightRecorder(Simulator* sim, std::string_view trigger) {
  if (sim == nullptr || sim->tracer() == nullptr) {
    return;
  }
  FlightRecorder* recorder = sim->tracer()->flight_recorder();
  if (recorder != nullptr) {
    recorder->Dump(trigger);
  }
}

}  // namespace solros

#endif  // SOLROS_SRC_SIM_FLIGHT_RECORDER_H_
