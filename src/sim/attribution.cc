#include "src/sim/attribution.h"

#include <map>
#include <string_view>

#include "src/base/metrics.h"

namespace solros {
namespace {

// Accumulators for one trace id before the subtraction step.
struct TraceSums {
  Nanos total = 0;    // root spans (parent == 0)
  Nanos queue = 0;    // rpc.queue.{req,resp} / net.queue.event / net.plug.wait
  Nanos service = 0;  // fs.proxy.service / net.proxy.* / net.server.stack
  Nanos device = 0;   // nvme.batch
  Nanos copy = 0;     // dma.copy
  Nanos iosched = 0;  // iosched.queue
  Nanos wire = 0;     // net.wire.transit
  Nanos dispatch = 0; // net.stub.dispatch / net.server.dispatch
  bool net_root = false;  // root span name starts with "net."
  bool root_closed = false;
};

bool IsQueueSpan(std::string_view name) {
  return name == "rpc.queue.req" || name == "rpc.queue.resp" ||
         name == "net.queue.event" || name == "net.plug.wait";
}

bool IsServiceSpan(std::string_view name) {
  return name == "fs.proxy.service" || name == "net.proxy.rpc" ||
         name == "net.proxy.inbound" || name == "net.proxy.outbound" ||
         name == "net.server.stack";
}

bool IsDispatchSpan(std::string_view name) {
  return name == "net.stub.dispatch" || name == "net.server.dispatch";
}

// Subtracts b from a, clamping at zero; clears *exact on clamp.
Nanos ClampSub(Nanos a, Nanos b, bool* exact) {
  if (b > a) {
    *exact = false;
    return 0;
  }
  return a - b;
}

}  // namespace

std::vector<StageBreakdown> ComputeStageBreakdowns(const Tracer& tracer) {
  // std::map keys the result on trace id => deterministic order.
  std::map<uint64_t, TraceSums> sums;
  for (const SpanRecord& span : tracer.spans()) {
    if (span.open || span.trace_id == 0) {
      continue;
    }
    TraceSums& s = sums[span.trace_id];
    Nanos dur = span.end - span.begin;
    if (span.parent == 0) {
      s.total += dur;
      s.root_closed = true;
      s.net_root = span.name.rfind("net.", 0) == 0;
    } else if (IsQueueSpan(span.name)) {
      s.queue += dur;
    } else if (IsServiceSpan(span.name)) {
      s.service += dur;
    } else if (IsDispatchSpan(span.name)) {
      s.dispatch += dur;
    } else if (span.name == "net.wire.transit") {
      s.wire += dur;
    } else if (span.name == "nvme.batch") {
      s.device += dur;
    } else if (span.name == "dma.copy") {
      s.copy += dur;
    } else if (span.name == "iosched.queue") {
      s.iosched += dur;
    }
  }

  std::vector<StageBreakdown> out;
  out.reserve(sums.size());
  for (const auto& [trace_id, s] : sums) {
    if (!s.root_closed) {
      continue;
    }
    StageBreakdown b;
    b.trace_id = trace_id;
    b.total = s.total;
    b.queue_wait = s.queue;
    b.device = s.device;
    b.copy_dma = s.copy;
    b.iosched_wait = s.iosched;
    b.wire = s.wire;
    b.dispatch = s.dispatch;
    b.net = s.net_root;
    b.proxy = ClampSub(s.service, s.device + s.copy + s.iosched, &b.exact);
    b.stub = ClampSub(s.total, s.queue + s.service + s.wire + s.dispatch,
                      &b.exact);
    out.push_back(b);
  }
  return out;
}

void RecordStageMetrics(const std::vector<StageBreakdown>& breakdowns) {
  MetricRegistry& registry = MetricRegistry::Default();
  LatencyHistogram* total = registry.GetHistogram("fs.stage.total_ns");
  LatencyHistogram* stub = registry.GetHistogram("fs.stage.stub_ns");
  LatencyHistogram* queue = registry.GetHistogram("fs.stage.queue_wait_ns");
  LatencyHistogram* proxy = registry.GetHistogram("fs.stage.proxy_ns");
  LatencyHistogram* copy = registry.GetHistogram("fs.stage.copy_dma_ns");
  LatencyHistogram* device = registry.GetHistogram("fs.stage.device_ns");
  LatencyHistogram* iosched =
      registry.GetHistogram("fs.stage.iosched_wait_ns");
  LatencyHistogram* net_total = registry.GetHistogram("net.stage.total_ns");
  LatencyHistogram* net_stub = registry.GetHistogram("net.stage.stub_ns");
  LatencyHistogram* net_queue =
      registry.GetHistogram("net.stage.queue_wait_ns");
  LatencyHistogram* net_dispatch =
      registry.GetHistogram("net.stage.dispatch_ns");
  LatencyHistogram* net_proxy = registry.GetHistogram("net.stage.proxy_ns");
  LatencyHistogram* net_wire = registry.GetHistogram("net.stage.wire_ns");
  LatencyHistogram* net_copy =
      registry.GetHistogram("net.stage.copy_dma_ns");
  for (const StageBreakdown& b : breakdowns) {
    if (b.net) {
      net_total->Record(b.total);
      net_stub->Record(b.stub);
      net_queue->Record(b.queue_wait);
      net_dispatch->Record(b.dispatch);
      net_proxy->Record(b.proxy);
      net_wire->Record(b.wire);
      net_copy->Record(b.copy_dma);
      continue;
    }
    total->Record(b.total);
    stub->Record(b.stub);
    queue->Record(b.queue_wait);
    proxy->Record(b.proxy);
    copy->Record(b.copy_dma);
    device->Record(b.device);
    iosched->Record(b.iosched_wait);
  }
}

}  // namespace solros
