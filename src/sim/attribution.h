// Per-request latency attribution over a causally-linked trace.
//
// Fig. 13 of the paper decomposes one file-system RPC's latency into
// file-system, transport, and storage portions. With trace contexts
// threaded through the stack (src/sim/trace.h) each RPC is one span tree,
// so the split can be *measured per request* instead of reconstructed from
// aggregate span sums. For every trace id the pass walks the closed spans
// and buckets them:
//
//   total       the root span (fs.stub.call / net.stub.call): the caller's
//               end-to-end view of the RPC, retries included;
//   queue_wait  rpc.queue.req + rpc.queue.resp: time a fully-written
//               message sat ready in a ring before the peer dequeued it;
//   device      nvme.batch: doorbell-to-interrupt device time;
//   copy_dma    dma.copy: host-initiated DMA moving bytes to/from the
//               co-processor;
//   iosched     iosched.queue: time the request's device I/O sat queued in
//               the host-side I/O scheduler (plug window, class ordering,
//               DRR) before its batch was submitted;
//   proxy       service-span time not spent in device, DMA, or scheduler
//               spans — proxy CPU, cache staging, metadata I/O;
//   stub        the remainder of total: stub CPU, ring copy in/out, and
//               RPC framing on the data-plane side.
//
// The net data path (fig14-16) uses the same machinery with its own
// taxonomy. A net trace roots at net.client.op (one echo round trip) or
// net.stub.call (one control RPC) and adds two stages the FS path lacks:
//
//   wire        net.wire.transit: client<->host NIC link time;
//   dispatch    net.stub.dispatch / net.server.dispatch: the event
//               dispatcher decoding a data event and handing it to the
//               waiting application receive;
//   queue_wait  additionally counts net.queue.event (data-ring waits);
//   proxy       additionally counts net.proxy.inbound / net.proxy.outbound
//               (TCP proxy segment work) and net.server.stack (the
//               direct-server host/Phi-Linux network stacks).
//
// In a fault-free run the stages sum to total *exactly*: the service span
// is contained in the root span, device/DMA spans are contained in the
// service span, and the queue-wait intervals are disjoint from the service
// span. When faults force retries (a dropped response leaves a server span
// running past the stub's timeout) the subtraction can go negative; the
// pass clamps at zero and clears `exact` for that request.
#ifndef SOLROS_SRC_SIM_ATTRIBUTION_H_
#define SOLROS_SRC_SIM_ATTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace solros {

struct StageBreakdown {
  uint64_t trace_id = 0;
  Nanos total = 0;
  Nanos stub = 0;
  Nanos queue_wait = 0;
  Nanos proxy = 0;
  Nanos copy_dma = 0;
  Nanos device = 0;
  Nanos iosched_wait = 0;
  // Net-path stages (zero for FS traces).
  Nanos wire = 0;
  Nanos dispatch = 0;
  // True when the root span's name starts with "net." (net taxonomy).
  bool net = false;
  // True when the stages sum to `total` exactly (always, fault-free).
  bool exact = true;
};

// One breakdown per trace id whose root span closed, ordered by trace id
// (deterministic). Traces whose root span never closed are skipped.
std::vector<StageBreakdown> ComputeStageBreakdowns(const Tracer& tracer);

// Feeds each breakdown's stages into the process MetricRegistry latency
// histograms: fs.stage.{total,stub,queue_wait,proxy,copy_dma,device,
// iosched_wait}_ns for FS traces and net.stage.{total,stub,queue_wait,
// dispatch,proxy,wire,copy_dma}_ns for net traces, so `--metrics` reports
// per-stage p50/p95/p99 per path.
void RecordStageMetrics(const std::vector<StageBreakdown>& breakdowns);

}  // namespace solros

#endif  // SOLROS_SRC_SIM_ATTRIBUTION_H_
