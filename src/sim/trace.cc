#include "src/sim/trace.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "src/base/logging.h"
#include "src/sim/flight_recorder.h"

namespace solros {
namespace {

// Microsecond timestamp with the nanoseconds in the fractional part —
// integer math only, so output is bit-stable across runs and platforms.
std::string MicrosWithNanos(Nanos t) {
  std::string out = std::to_string(t / 1000);
  uint64_t frac = t % 1000;
  out += '.';
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

TrackId Tracer::Track(std::string_view name) {
  auto it = tracks_by_name_.find(name);
  if (it != tracks_by_name_.end()) {
    return it->second;
  }
  TrackId id = static_cast<TrackId>(track_names_.size());
  track_names_.emplace_back(name);
  tracks_by_name_.emplace(std::string(name), id);
  return id;
}

uint64_t Tracer::BeginSpan(TrackId track, std::string_view name,
                           TraceContext ctx) {
  DCHECK(sim_ != nullptr) << "tracer not bound to a simulator";
  uint64_t id = sampling_ ? next_span_id_++ : spans_.size();
  SpanRecord record;
  record.track = track;
  record.name = std::string(name);
  record.begin = sim_->now();
  record.uid = id + 1;
  record.trace_id = ctx.trace_id;
  record.parent = ctx.trace_id != 0 ? ctx.parent_span : 0;
  if (flight_recorder_ != nullptr) {
    flight_recorder_->Note('B', track_names_[track], record.name,
                           ctx.trace_id, record.begin);
  }
  if (sampling_) {
    open_spans_.emplace(id, std::move(record));
  } else {
    spans_.push_back(std::move(record));
  }
  return id;
}

void Tracer::EndSpan(uint64_t span_id) {
  if (sampling_) {
    auto it = open_spans_.find(span_id);
    DCHECK(it != open_spans_.end()) << "span " << span_id << " closed twice";
    SpanRecord record = std::move(it->second);
    open_spans_.erase(it);
    record.end = sim_->now();
    record.open = false;
    if (flight_recorder_ != nullptr) {
      flight_recorder_->Note('E', track_names_[record.track], record.name,
                             record.trace_id, record.end);
    }
    // Notify before routing so the SLO watchdog's FlagTrace on a violating
    // root lands before the keep/drop decision consumes the trace.
    NotifySpanClosed(record);
    RouteClosedSpan(std::move(record));
    return;
  }
  DCHECK_LT(span_id, spans_.size());
  SpanRecord& record = spans_[span_id];
  DCHECK(record.open) << "span " << record.name << " closed twice";
  record.end = sim_->now();
  record.open = false;
  if (flight_recorder_ != nullptr) {
    flight_recorder_->Note('E', track_names_[record.track], record.name,
                           record.trace_id, record.end);
  }
  NotifySpanClosed(record);
}

void Tracer::NotifySpanClosed(const SpanRecord& record) {
  // Slow-but-fault-free forensics: a traced root span (the end-to-end view
  // of one request) closing past the flight recorder's SLO threshold dumps
  // the recent trace window, exactly like a fault fire would.
  if (flight_recorder_ != nullptr && record.trace_id != 0 &&
      record.parent == 0) {
    Nanos threshold = flight_recorder_->slo_threshold_ns();
    Nanos took = record.end - record.begin;
    if (threshold != 0 && took > threshold) {
      flight_recorder_->Dump("slo: " + record.name + " " +
                             std::to_string(took) + "ns > " +
                             std::to_string(threshold) + "ns");
    }
  }
  if (on_span_close_) {
    on_span_close_(record);
  }
}

uint64_t Tracer::RecordSpan(TrackId track, std::string_view name,
                            SimTime begin, SimTime end, TraceContext ctx) {
  DCHECK_LE(begin, end);
  uint64_t id = sampling_ ? next_span_id_++ : spans_.size();
  SpanRecord record;
  record.track = track;
  record.name = std::string(name);
  record.begin = begin;
  record.end = end;
  record.open = false;
  record.uid = id + 1;
  record.trace_id = ctx.trace_id;
  record.parent = ctx.trace_id != 0 ? ctx.parent_span : 0;
  if (flight_recorder_ != nullptr) {
    flight_recorder_->Note('R', track_names_[track], record.name,
                           ctx.trace_id, end);
  }
  NotifySpanClosed(record);
  if (sampling_) {
    RouteClosedSpan(std::move(record));
  } else {
    spans_.push_back(std::move(record));
  }
  return id;
}

void Tracer::AddSpanArg(uint64_t span_id, std::string_view key,
                        std::string_view value) {
  if (sampling_) {
    // Only open spans accept annotations in sampling mode; a closed span is
    // already staged (or discarded) and no longer addressable by id.
    auto it = open_spans_.find(span_id);
    if (it != open_spans_.end()) {
      it->second.args.emplace_back(std::string(key), std::string(value));
    }
    return;
  }
  DCHECK_LT(span_id, spans_.size());
  spans_[span_id].args.emplace_back(std::string(key), std::string(value));
}

TraceContext Tracer::ContextOf(uint64_t span_id) const {
  if (sampling_) {
    auto it = open_spans_.find(span_id);
    if (it == open_spans_.end()) {
      return TraceContext{};
    }
    return TraceContext{it->second.trace_id, it->second.uid};
  }
  const SpanRecord& span = spans_[span_id];
  return TraceContext{span.trace_id, span.uid};
}

void Tracer::Instant(TrackId track, std::string_view name) {
  DCHECK(sim_ != nullptr) << "tracer not bound to a simulator";
  InstantRecord record;
  record.track = track;
  record.name = std::string(name);
  record.at = sim_->now();
  instants_.push_back(std::move(record));
  if (flight_recorder_ != nullptr) {
    flight_recorder_->Note('I', track_names_[track], instants_.back().name,
                           0, instants_.back().at);
  }
}

Nanos Tracer::TotalDuration(std::string_view name) const {
  Nanos total = 0;
  for (const SpanRecord& span : spans_) {
    if (!span.open && span.name == name) {
      total += span.end - span.begin;
    }
  }
  return total;
}

uint64_t Tracer::CountSpans(std::string_view name) const {
  uint64_t n = 0;
  for (const SpanRecord& span : spans_) {
    if (!span.open && span.name == name) {
      ++n;
    }
  }
  return n;
}

void Tracer::Clear() {
  spans_.clear();
  instants_.clear();
  next_trace_id_ = 0;
  next_span_id_ = 0;
  open_spans_.clear();
  pending_.clear();
  decided_.clear();
  sampler_stats_ = SamplerStats{};
}

void Tracer::EnableSampling(uint64_t keep_one_in,
                            size_t max_spans_per_trace) {
  CHECK(spans_.empty() && open_spans_.empty())
      << "EnableSampling must precede all span recording";
  sampling_ = true;
  sample_keep_one_in_ = keep_one_in;
  sample_max_spans_ = max_spans_per_trace;
  next_span_id_ = 0;
}

void Tracer::FlagTrace(uint64_t trace_id, TraceFlag flag) {
  if (!sampling_ || trace_id == 0) {
    return;
  }
  PendingTrace& pending = pending_[trace_id];
  if (flag == TraceFlag::kSloViolation) {
    pending.flagged_slo = true;
  } else {
    pending.flagged_error = true;
  }
}

namespace {
// FNV-1a over the trace id's bytes (same constants as FrameChecksum):
// deterministic, well-mixed even for the sequential ids NewTraceId hands
// out, and free of any RNG state.
uint64_t TraceKeepHash(uint64_t trace_id) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (trace_id >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}
}  // namespace

void Tracer::RouteClosedSpan(SpanRecord record) {
  if (record.trace_id == 0) {
    ++sampler_stats_.untraced_dropped;
    return;
  }
  if (record.parent != 0) {
    if (decided_.count(record.trace_id) != 0) {
      // Straggler: its root already decided. The span taxonomy closes every
      // child before its root, so this only catches instrumentation bugs —
      // counted, never buffered, so memory stays bounded.
      ++sampler_stats_.late_spans;
      return;
    }
    PendingTrace& pending = pending_[record.trace_id];
    if (pending.spans.size() >= sample_max_spans_) {
      pending.truncated = true;
      ++sampler_stats_.spans_truncated;
      return;
    }
    pending.spans.push_back(std::move(record));
    return;
  }
  // Root close: decide the whole trace.
  PendingTrace pending;
  auto it = pending_.find(record.trace_id);
  if (it != pending_.end()) {
    pending = std::move(it->second);
    pending_.erase(it);
  }
  decided_.insert(record.trace_id);
  // Keep the decided set bounded: any id below every live (pending or
  // still-open) trace can never close another span, so it needs no
  // straggler guard. Amortized: only runs once the set is sizable.
  if (decided_.size() > 4096) {
    uint64_t min_live = next_trace_id_ + 1;
    if (!pending_.empty()) {
      min_live = std::min(min_live, pending_.begin()->first);
    }
    for (const auto& [id, open] : open_spans_) {
      if (open.trace_id != 0) {
        min_live = std::min(min_live, open.trace_id);
      }
    }
    decided_.erase(decided_.begin(), decided_.lower_bound(min_live));
  }
  bool keep = pending.flagged_slo || pending.flagged_error ||
              (sample_keep_one_in_ != 0 &&
               TraceKeepHash(record.trace_id) % sample_keep_one_in_ == 0);
  if (!keep) {
    ++sampler_stats_.traces_dropped;
    sampler_stats_.spans_dropped += pending.spans.size() + 1;
    return;
  }
  ++sampler_stats_.traces_kept;
  if (pending.flagged_slo) {
    ++sampler_stats_.kept_slo;
  } else if (pending.flagged_error) {
    ++sampler_stats_.kept_error;
  } else {
    ++sampler_stats_.kept_hash;
  }
  for (SpanRecord& span : pending.spans) {
    spans_.push_back(std::move(span));
    ++sampler_stats_.spans_kept;
  }
  spans_.push_back(std::move(record));
  ++sampler_stats_.spans_kept;
}

void Tracer::ExportChromeTrace(std::ostream& os) const {
  // Lane assignment needs spans in begin-time order. Live spans are
  // recorded in that order (simulated time is monotonic) but retroactive
  // RecordSpan entries (queue waits) begin in the past, so sort first —
  // stable, keyed on begin, so ties keep record order and the file stays
  // byte-deterministic. Each span then goes to the first lane of its track
  // where it is either disjoint from, or properly nested inside,
  // everything already there — Perfetto renders every lane without
  // overlap warnings.
  std::vector<const SpanRecord*> closed;
  closed.reserve(spans_.size());
  for (const SpanRecord& span : spans_) {
    if (!span.open) {
      closed.push_back(&span);
    }
  }
  std::stable_sort(closed.begin(), closed.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     return a->begin < b->begin;
                   });
  struct Placed {
    const SpanRecord* span;
    int lane;
  };
  std::vector<Placed> placed;
  placed.reserve(closed.size());
  // Per track: one open-interval stack of end times per lane.
  std::vector<std::vector<std::vector<SimTime>>> lanes(track_names_.size());
  std::vector<int> lane_count(track_names_.size(), 1);  // >=1 for instants
  // tid per span uid, for flow-event endpoints. Keyed by uid (not a dense
  // vector): under sampling, uids of dropped traces leave gaps.
  std::map<uint64_t, int> lane_of;
  for (const SpanRecord* span : closed) {
    auto& track_lanes = lanes[span->track];
    int lane = -1;
    for (size_t l = 0; l < track_lanes.size(); ++l) {
      auto& stack = track_lanes[l];
      while (!stack.empty() && stack.back() <= span->begin) {
        stack.pop_back();
      }
      if (stack.empty() || span->end <= stack.back()) {
        lane = static_cast<int>(l);
        break;
      }
    }
    if (lane < 0) {
      lane = static_cast<int>(track_lanes.size());
      track_lanes.emplace_back();
    }
    track_lanes[lane].push_back(span->end);
    placed.push_back({span, lane});
    lane_of[span->uid] = lane;
    lane_count[span->track] =
        std::max(lane_count[span->track], lane + 1);
  }

  // tid layout: lanes of track t start at base(t) = 1 + sum of earlier
  // tracks' lane counts; deterministic because track registration order is.
  std::vector<int> tid_base(track_names_.size(), 1);
  for (size_t t = 1; t < track_names_.size(); ++t) {
    tid_base[t] = tid_base[t - 1] + lane_count[t - 1];
  }
  auto tid_of = [&](const SpanRecord& span) {
    auto it = lane_of.find(span.uid);
    return tid_base[span.track] + (it != lane_of.end() ? it->second : 0);
  };

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      os << ",";
    }
    first = false;
  };
  sep();
  os << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":"
        "{\"name\":\"solros-sim\"}}";
  for (size_t t = 0; t < track_names_.size(); ++t) {
    for (int l = 0; l < lane_count[t]; ++l) {
      std::string lane_name = JsonEscape(track_names_[t]);
      if (l > 0) {
        lane_name += "." + std::to_string(l);
      }
      sep();
      os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid_base[t] + l
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << lane_name
         << "\"}}";
      sep();
      os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid_base[t] + l
         << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
         << tid_base[t] + l << "}}";
    }
  }
  for (const Placed& p : placed) {
    sep();
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid_of(*p.span)
       << ",\"ts\":" << MicrosWithNanos(p.span->begin)
       << ",\"dur\":" << MicrosWithNanos(p.span->end - p.span->begin)
       << ",\"name\":\"" << JsonEscape(p.span->name) << "\",\"cat\":\""
       << JsonEscape(track_names_[p.span->track]) << "\"";
    if (p.span->trace_id != 0 || !p.span->args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      auto arg_sep = [&] {
        if (!first_arg) {
          os << ",";
        }
        first_arg = false;
      };
      if (p.span->trace_id != 0) {
        arg_sep();
        os << "\"trace\":" << p.span->trace_id;
        arg_sep();
        os << "\"span\":" << p.span->uid;
        arg_sep();
        os << "\"parent\":" << p.span->parent;
      }
      for (const auto& [key, value] : p.span->args) {
        arg_sep();
        os << "\"" << JsonEscape(key) << "\":\"" << JsonEscape(value) << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  // Flow edges parent -> child, one per causally-linked closed span whose
  // parent also closed. "s" binds to the parent slice, "f" (bp:"e") to the
  // child slice; both are stamped at the child's begin so the arrow spans
  // the handoff. Iterated in record order => deterministic. Parents resolve
  // through a uid index (under sampling, record position != uid - 1, and a
  // kept child's parent may have been discarded).
  std::map<uint64_t, const SpanRecord*> by_uid;
  for (const SpanRecord& span : spans_) {
    by_uid.emplace(span.uid, &span);
  }
  for (const SpanRecord& span : spans_) {
    if (span.open || span.parent == 0 || span.trace_id == 0) {
      continue;
    }
    auto parent_it = by_uid.find(span.parent);
    if (parent_it == by_uid.end() || parent_it->second->open) {
      continue;
    }
    const SpanRecord& parent = *parent_it->second;
    std::string ts = MicrosWithNanos(span.begin);
    sep();
    os << "{\"ph\":\"s\",\"pid\":1,\"tid\":" << tid_of(parent)
       << ",\"ts\":" << ts << ",\"id\":" << span.uid
       << ",\"name\":\"req\",\"cat\":\"flow\"}";
    sep();
    os << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":" << tid_of(span)
       << ",\"ts\":" << ts << ",\"id\":" << span.uid
       << ",\"name\":\"req\",\"cat\":\"flow\"}";
  }
  for (const InstantRecord& instant : instants_) {
    sep();
    os << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
       << tid_base[instant.track] << ",\"ts\":" << MicrosWithNanos(instant.at)
       << ",\"name\":\"" << JsonEscape(instant.name) << "\",\"cat\":\""
       << JsonEscape(track_names_[instant.track]) << "\"}";
  }
  os << "]}\n";
}

Status Tracer::ExportChromeTraceToFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return IoError("cannot open trace output file: " + path);
  }
  std::ostringstream buffer;
  ExportChromeTrace(buffer);
  file << buffer.str();
  if (!file) {
    return IoError("trace write failed: " + path);
  }
  return OkStatus();
}

}  // namespace solros
