// Simulated-time tracing with Chrome trace-event / Perfetto export.
//
// A Tracer records begin/end spans and instant events stamped with
// Simulator::now(). Each span lives on a named *track* — one per component
// (stub, ring, dma, nvme, proxy, ...) — which becomes one named thread row
// in the exported trace. Because the simulator is a single deterministic
// event loop, two identical runs produce byte-identical trace files; tests
// assert exactly that.
//
// Usage (instrumentation sites are null-safe: no tracer bound => no-op):
//
//   TRACE_SPAN(sim_, "proxy", "fs.proxy.service");   // RAII, ends at scope
//   TRACE_INSTANT(sim_, "ring", "ring.would_block");
//
// Spans may overlap freely on one track (concurrent RPCs); the exporter
// splits each track into properly-nested lanes so Perfetto and
// chrome://tracing render them without warnings.
//
// Export format: the Chrome trace-event JSON object form —
//   {"displayTimeUnit":"ns","traceEvents":[{"ph":"X",...},...]}
// with "X" complete events (ts/dur in microseconds, fractional part carries
// the nanoseconds), "i" instants, and "M" metadata naming the lanes. Open
// `chrome://tracing` or https://ui.perfetto.dev and load the file.
#ifndef SOLROS_SRC_SIM_TRACE_H_
#define SOLROS_SRC_SIM_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/sim/simulator.h"

namespace solros {

// Index into the tracer's track table.
using TrackId = uint32_t;

struct SpanRecord {
  TrackId track = 0;
  std::string name;
  SimTime begin = 0;
  SimTime end = 0;
  bool open = true;  // EndSpan not seen yet
};

struct InstantRecord {
  TrackId track = 0;
  std::string name;
  SimTime at = 0;
};

class Tracer {
 public:
  // A tracer may be created before the simulator it observes exists (so it
  // outlives coroutine frames holding ScopedSpans); Bind() attaches it.
  Tracer() = default;
  explicit Tracer(Simulator* sim) { Bind(sim); }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Attaches to `sim` and installs itself as the simulator's tracer.
  void Bind(Simulator* sim) {
    sim_ = sim;
    sim->set_tracer(this);
  }

  // Returns the track registered under `name`, creating it on first use.
  TrackId Track(std::string_view name);

  // Opens a span; returns its id for EndSpan. Spans on one track may
  // overlap and nest arbitrarily.
  uint64_t BeginSpan(TrackId track, std::string_view name);
  uint64_t BeginSpan(std::string_view track, std::string_view name) {
    return BeginSpan(Track(track), name);
  }
  void EndSpan(uint64_t span_id);

  void Instant(TrackId track, std::string_view name);
  void Instant(std::string_view track, std::string_view name) {
    Instant(Track(track), name);
  }

  // -- Queries (what fig13 derives its breakdown from) ----------------------
  // Sum of durations over *closed* spans named `name` (all tracks).
  Nanos TotalDuration(std::string_view name) const;
  // Number of closed spans named `name`.
  uint64_t CountSpans(std::string_view name) const;
  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<InstantRecord>& instants() const { return instants_; }
  const std::string& track_name(TrackId id) const {
    return track_names_.at(id);
  }

  // Drops all recorded events (track registrations survive).
  void Clear();

  // -- Export ----------------------------------------------------------------
  // Chrome trace-event JSON; open spans are omitted (pump loops blocked in
  // Receive at the end of a run never close their current wait span).
  void ExportChromeTrace(std::ostream& os) const;
  Status ExportChromeTraceToFile(const std::string& path) const;

 private:
  Simulator* sim_ = nullptr;
  std::vector<std::string> track_names_;
  std::map<std::string, TrackId, std::less<>> tracks_by_name_;
  std::vector<SpanRecord> spans_;
  std::vector<InstantRecord> instants_;
};

// RAII span: opens on construction, closes when the scope (including a
// coroutine frame scope, across suspensions) exits. Null-safe: a null
// tracer records nothing.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view track, std::string_view name)
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      id_ = tracer_->BeginSpan(track, name);
    }
  }
  // Convenience: pull the tracer off the simulator (may be null).
  ScopedSpan(Simulator* sim, std::string_view track, std::string_view name)
      : ScopedSpan(sim != nullptr ? sim->tracer() : nullptr, track, name) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->EndSpan(id_);
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  uint64_t id_ = 0;
};

#define SOLROS_TRACE_CONCAT2(a, b) a##b
#define SOLROS_TRACE_CONCAT(a, b) SOLROS_TRACE_CONCAT2(a, b)

// Scoped span on the simulator's bound tracer (no-op when none is bound).
#define TRACE_SPAN(sim, track, name)                    \
  ::solros::ScopedSpan SOLROS_TRACE_CONCAT(_trace_span_, \
                                           __COUNTER__)((sim), (track), (name))

#define TRACE_INSTANT(sim, track, name)                          \
  do {                                                           \
    ::solros::Simulator* _trace_sim = (sim);                     \
    if (_trace_sim != nullptr && _trace_sim->tracer() != nullptr) { \
      _trace_sim->tracer()->Instant((track), (name));            \
    }                                                            \
  } while (0)

}  // namespace solros

#endif  // SOLROS_SRC_SIM_TRACE_H_
