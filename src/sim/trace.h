// Simulated-time tracing with Chrome trace-event / Perfetto export.
//
// A Tracer records begin/end spans and instant events stamped with
// Simulator::now(). Each span lives on a named *track* — one per component
// (stub, ring, dma, nvme, proxy, ...) — which becomes one named thread row
// in the exported trace. Because the simulator is a single deterministic
// event loop, two identical runs produce byte-identical trace files; tests
// assert exactly that.
//
// Causal linkage: a span may carry a TraceContext {trace id, parent span
// uid}. The trace id is allocated once per RPC at the stub and rides in the
// request/response wire messages; every layer that services the request
// opens its span as a child of the context it received, so one RPC yields
// one span tree. The export emits the ids as span args and Chrome
// flow events ("s"/"f") from parent to child, so Perfetto renders the whole
// request as one connected flow across tracks.
//
// Usage (instrumentation sites are null-safe: no tracer bound => no-op):
//
//   TRACE_SPAN(sim_, "proxy", "fs.proxy.service");   // RAII, ends at scope
//   TRACE_INSTANT(sim_, "ring", "ring.would_block");
//
//   ScopedSpan span(sim_, "proxy", "fs.proxy.service", parent_ctx);
//   child_ctx = span.context();   // {trace id, this span's uid}
//
// Spans may overlap freely on one track (concurrent RPCs); the exporter
// splits each track into properly-nested lanes so Perfetto and
// chrome://tracing render them without warnings.
//
// Export format: the Chrome trace-event JSON object form —
//   {"displayTimeUnit":"ns","traceEvents":[{"ph":"X",...},...]}
// with "X" complete events (ts/dur in microseconds, fractional part carries
// the nanoseconds), "i" instants, "s"/"f" flow edges for parent->child
// links, and "M" metadata naming the lanes. Open `chrome://tracing` or
// https://ui.perfetto.dev and load the file.
#ifndef SOLROS_SRC_SIM_TRACE_H_
#define SOLROS_SRC_SIM_TRACE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/sim/simulator.h"

namespace solros {

class FlightRecorder;

// Index into the tracer's track table.
using TrackId = uint32_t;

// Causal position of a request inside one trace. trace_id == 0 means
// "untraced": spans opened with a zero context get no parent linkage, and
// instrumentation sites skip any per-request work keyed on it. The
// parent_span field is the *uid* (1-based record index) of the span that a
// new child should hang off; for a root context it is 0.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;

  bool traced() const { return trace_id != 0; }
};

struct SpanRecord {
  TrackId track = 0;
  std::string name;
  SimTime begin = 0;
  SimTime end = 0;
  bool open = true;  // EndSpan not seen yet
  // Causal identity: uid is the stable 1-based id of this record (0 only
  // for pre-causality records, never produced anymore); trace_id/parent are
  // 0 for untraced spans.
  uint64_t uid = 0;
  uint64_t trace_id = 0;
  uint64_t parent = 0;
  // Free-form key/value annotations (cache hit counts, outcome, ...),
  // exported under the span's "args". Insertion-ordered for determinism.
  std::vector<std::pair<std::string, std::string>> args;
};

struct InstantRecord {
  TrackId track = 0;
  std::string name;
  SimTime at = 0;
};

// Retention accounting for the tail-based sampler (EnableSampling). The
// counters partition every span the tracer saw, proving memory stays
// bounded: spans_kept land in spans(); everything else was discarded at a
// decision point.
struct SamplerStats {
  uint64_t traces_kept = 0;
  uint64_t traces_dropped = 0;
  uint64_t kept_slo = 0;    // kept because FlagTrace(kSloViolation)
  uint64_t kept_error = 0;  // kept because FlagTrace(kError)
  uint64_t kept_hash = 0;   // kept by the deterministic 1-in-N hash
  uint64_t spans_kept = 0;
  uint64_t spans_dropped = 0;     // spans of traces that were discarded
  uint64_t spans_truncated = 0;   // over the per-trace buffer bound
  uint64_t late_spans = 0;        // closed after their trace was decided
  uint64_t untraced_dropped = 0;  // trace_id == 0 (never kept when sampling)
};

class Tracer {
 public:
  // A tracer may be created before the simulator it observes exists (so it
  // outlives coroutine frames holding ScopedSpans); Bind() attaches it.
  Tracer() = default;
  explicit Tracer(Simulator* sim) { Bind(sim); }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Attaches to `sim` and installs itself as the simulator's tracer.
  void Bind(Simulator* sim) {
    sim_ = sim;
    sim->set_tracer(this);
  }

  // Returns the track registered under `name`, creating it on first use.
  TrackId Track(std::string_view name);

  // Allocates a fresh nonzero trace id (one per RPC, at the stub). Ids are
  // sequential from 1 so identical runs export identical files.
  uint64_t NewTraceId() { return ++next_trace_id_; }

  // Opens a span; returns its id for EndSpan. Spans on one track may
  // overlap and nest arbitrarily. The context, if traced, makes the new
  // span a child of ctx.parent_span within ctx.trace_id.
  uint64_t BeginSpan(TrackId track, std::string_view name,
                     TraceContext ctx = {});
  uint64_t BeginSpan(std::string_view track, std::string_view name,
                     TraceContext ctx = {}) {
    return BeginSpan(Track(track), name, ctx);
  }
  void EndSpan(uint64_t span_id);

  // Records an already-elapsed [begin, end] span (used for retroactive
  // queue-wait attribution: the ring stamps when a message became ready and
  // the pump records the wait once it dequeues it). Returns the span id.
  uint64_t RecordSpan(TrackId track, std::string_view name, SimTime begin,
                      SimTime end, TraceContext ctx = {});
  uint64_t RecordSpan(std::string_view track, std::string_view name,
                      SimTime begin, SimTime end, TraceContext ctx = {}) {
    return RecordSpan(Track(track), name, begin, end, ctx);
  }

  // Attaches a key/value annotation to an open or closed span.
  void AddSpanArg(uint64_t span_id, std::string_view key,
                  std::string_view value);
  void AddSpanArg(uint64_t span_id, std::string_view key, uint64_t value) {
    AddSpanArg(span_id, key, std::string_view(std::to_string(value)));
  }

  // Context that makes new spans children of `span_id`.
  TraceContext ContextOf(uint64_t span_id) const;

  void Instant(TrackId track, std::string_view name);
  void Instant(std::string_view track, std::string_view name) {
    Instant(Track(track), name);
  }

  // -- Queries (what attribution derives its breakdown from) ----------------
  // Sum of durations over *closed* spans named `name` (all tracks).
  Nanos TotalDuration(std::string_view name) const;
  // Number of closed spans named `name`.
  uint64_t CountSpans(std::string_view name) const;
  const std::vector<SpanRecord>& spans() const { return spans_; }
  const std::vector<InstantRecord>& instants() const { return instants_; }
  const std::string& track_name(TrackId id) const {
    return track_names_.at(id);
  }

  // Drops all recorded events and resets trace-id allocation (track
  // registrations survive), so Clear + identical rerun exports identically.
  // Sampling mode (if enabled) stays enabled; its buffers and stats reset.
  void Clear();

  // -- Tail-based sampling (Dapper-style, deterministic) ---------------------
  // Switches the tracer to tail-based retention: closed spans buffer in a
  // bounded per-trace staging area (at most `max_spans_per_trace` non-root
  // spans each) and the keep/drop decision happens when the trace's ROOT
  // span closes. A trace is kept iff it was flagged (SLO violation or
  // error) before the decision, or its trace id hashes to 1-in-
  // `keep_one_in` (FNV-1a — no RNG, so two identical runs keep the byte-
  // identical span set). Everything else is discarded and only counted.
  // Untraced spans (trace_id == 0) are never retained in this mode.
  //
  // Must be enabled before any span is recorded. Span ids stay valid across
  // the mode switch invariantly: uid == span_id + 1 in both modes.
  //
  // Boundedness caveat: a span that closes after its root already decided
  // is dropped and counted in late_spans — the taxonomy used by this repo
  // closes every child before its root, so in practice this path only
  // catches instrumentation bugs.
  void EnableSampling(uint64_t keep_one_in, size_t max_spans_per_trace = 64);
  bool sampling() const { return sampling_; }
  const SamplerStats& sampler_stats() const { return sampler_stats_; }
  // Number of undecided traces currently buffered (for boundedness checks).
  size_t pending_traces() const { return pending_.size(); }

  // Marks a trace for retention before its root closes. The SLO watchdog
  // calls this on every budget violation; stubs call it on retries and
  // failed RPCs. No-op when sampling is off (full capture keeps all).
  enum class TraceFlag { kSloViolation, kError };
  void FlagTrace(uint64_t trace_id, TraceFlag flag);

  // Optional always-on flight recorder fed a copy of every begin/end/
  // instant event; see src/sim/flight_recorder.h. Not owned.
  void set_flight_recorder(FlightRecorder* recorder) {
    flight_recorder_ = recorder;
  }
  FlightRecorder* flight_recorder() const { return flight_recorder_; }

  // Optional listener invoked with every span as it closes (EndSpan and
  // RecordSpan). The SLO watchdog buckets per-request stages incrementally
  // through this instead of rescanning spans(). Unset = no extra work.
  using SpanCloseFn = std::function<void(const SpanRecord&)>;
  void set_span_close_listener(SpanCloseFn fn) {
    on_span_close_ = std::move(fn);
  }

  // -- Export ----------------------------------------------------------------
  // Chrome trace-event JSON; open spans are omitted (pump loops blocked in
  // Receive at the end of a run never close their current wait span).
  void ExportChromeTrace(std::ostream& os) const;
  Status ExportChromeTraceToFile(const std::string& path) const;

 private:
  // Flight-recorder SLO check + span-close listener dispatch, shared by
  // EndSpan and RecordSpan.
  void NotifySpanClosed(const SpanRecord& record);
  // Sampling mode: stages a closed span in its trace buffer, or decides the
  // trace if `record` is a root.
  void RouteClosedSpan(SpanRecord record);

  struct PendingTrace {
    std::vector<SpanRecord> spans;
    bool truncated = false;
    bool flagged_slo = false;
    bool flagged_error = false;
  };

  Simulator* sim_ = nullptr;
  std::vector<std::string> track_names_;
  std::map<std::string, TrackId, std::less<>> tracks_by_name_;
  std::vector<SpanRecord> spans_;
  std::vector<InstantRecord> instants_;
  uint64_t next_trace_id_ = 0;
  FlightRecorder* flight_recorder_ = nullptr;
  SpanCloseFn on_span_close_;
  // Sampling-mode state. span ids keep the uid == id + 1 invariant via a
  // monotonic allocator; open spans live in open_spans_ until EndSpan.
  bool sampling_ = false;
  uint64_t sample_keep_one_in_ = 0;
  size_t sample_max_spans_ = 64;
  uint64_t next_span_id_ = 0;
  std::map<uint64_t, SpanRecord> open_spans_;   // span_id -> open record
  std::map<uint64_t, PendingTrace> pending_;    // trace_id -> staged spans
  std::set<uint64_t> decided_;                  // straggler guard (pruned)
  SamplerStats sampler_stats_;
};

// RAII span: opens on construction, closes when the scope (including a
// coroutine frame scope, across suspensions) exits. Null-safe: a null
// tracer records nothing, and context() returns an untraced context.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view track, std::string_view name,
             TraceContext ctx = {})
      : tracer_(tracer) {
    if (tracer_ != nullptr) {
      id_ = tracer_->BeginSpan(track, name, ctx);
    }
  }
  // Convenience: pull the tracer off the simulator (may be null).
  ScopedSpan(Simulator* sim, std::string_view track, std::string_view name,
             TraceContext ctx = {})
      : ScopedSpan(sim != nullptr ? sim->tracer() : nullptr, track, name,
                   ctx) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->EndSpan(id_);
    }
  }

  // Context that makes new spans (and downstream wire messages) children
  // of this span. Untraced when no tracer is bound.
  TraceContext context() const {
    return tracer_ != nullptr ? tracer_->ContextOf(id_) : TraceContext{};
  }

  void AddArg(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr) {
      tracer_->AddSpanArg(id_, key, value);
    }
  }
  void AddArg(std::string_view key, uint64_t value) {
    if (tracer_ != nullptr) {
      tracer_->AddSpanArg(id_, key, value);
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  uint64_t id_ = 0;
};

#define SOLROS_TRACE_CONCAT2(a, b) a##b
#define SOLROS_TRACE_CONCAT(a, b) SOLROS_TRACE_CONCAT2(a, b)

// Scoped span on the simulator's bound tracer (no-op when none is bound).
#define TRACE_SPAN(sim, track, name)                    \
  ::solros::ScopedSpan SOLROS_TRACE_CONCAT(_trace_span_, \
                                           __COUNTER__)((sim), (track), (name))

#define TRACE_INSTANT(sim, track, name)                          \
  do {                                                           \
    ::solros::Simulator* _trace_sim = (sim);                     \
    if (_trace_sim != nullptr && _trace_sim->tracer() != nullptr) { \
      _trace_sim->tracer()->Instant((track), (name));            \
    }                                                            \
  } while (0)

}  // namespace solros

#endif  // SOLROS_SRC_SIM_TRACE_H_
