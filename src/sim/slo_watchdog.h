// SLO watchdog: per-stage latency budgets evaluated live, with flight
// recorder forensics on sustained violation.
//
// The watchdog hangs off the Tracer's span-close listener and buckets each
// closed span into the same six stages as src/sim/attribution.h (queue wait,
// iosched wait, proxy, DMA copy, device, stub remainder). When a traced
// request's *root* span closes, the request's stages are compared against
// the armed budgets (0 = stage unarmed):
//
//   * any stage over budget counts one violation (the first offending
//     stage, in fixed stage order, is recorded as the reason);
//   * `sustain` consecutive violating requests trigger one flight-recorder
//     dump ("slo watchdog: <stage> ...") — so overload forensics fire
//     without any fault injected; the streak then re-arms.
//
// Root spans are evaluated as they close; the RPC pumps record queue spans
// before waking the caller, so every child stage of a request is already
// bucketed when its root closes. Budgets come from the bench --slo-ns flag
// (total) and the SOLROS_SLO_STAGES env ("device=200000,queue=50000,...").
#ifndef SOLROS_SRC_SIM_SLO_WATCHDOG_H_
#define SOLROS_SRC_SIM_SLO_WATCHDOG_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace solros {

struct SloBudgets {
  Nanos total = 0;
  Nanos stub = 0;
  Nanos queue = 0;
  Nanos iosched = 0;
  Nanos proxy = 0;
  Nanos copy = 0;
  Nanos device = 0;
  // Net-path stages (src/sim/attribution.h taxonomy).
  Nanos wire = 0;
  Nanos dispatch = 0;

  bool any() const {
    return total | stub | queue | iosched | proxy | copy | device | wire |
           dispatch;
  }
};

// Parses SOLROS_SLO_STAGES ("stage=ns" pairs, comma-separated; stages:
// total stub queue iosched proxy copy device wire dispatch). Unknown
// stages are ignored.
SloBudgets SloBudgetsFromEnv();

class SloWatchdog {
 public:
  // `sustain` = consecutive violating requests before the flight recorder
  // fires. The watchdog must outlive the tracer binding (or the tracer must
  // not close spans after the watchdog dies); benches scope both together.
  SloWatchdog(Simulator* sim, SloBudgets budgets, int sustain = 3);

  // Installs this watchdog as `tracer`'s span-close listener. When the
  // tracer samples (Tracer::EnableSampling), every violating root is also
  // FlagTrace'd so tail-based retention keeps all SLO-violating traces.
  void Bind(Tracer* tracer);

  uint64_t roots_seen() const { return roots_seen_; }
  uint64_t violations() const { return violations_; }
  uint64_t dumps_fired() const { return dumps_fired_; }
  const std::string& worst_stage() const { return worst_stage_; }

  // "slo_watchdog: roots=N violations=M dumps=K worst=<stage>" — one
  // deterministic line for bench output and CI gating.
  std::string Summary() const;

 private:
  struct Bucket {
    Nanos queue = 0;
    Nanos iosched = 0;
    Nanos service = 0;  // fs.proxy.service / net.proxy.* (proxy incl.)
    Nanos copy = 0;
    Nanos device = 0;
    Nanos wire = 0;
    Nanos dispatch = 0;
  };

  void OnSpanClosed(const SpanRecord& record);
  // Returns the first over-budget stage name, or "" when within budget.
  std::string Evaluate(Nanos total, const Bucket& bucket) const;

  Simulator* sim_;
  SloBudgets budgets_;
  int sustain_;
  Tracer* tracer_ = nullptr;  // for FlagTrace under sampling
  std::map<uint64_t, Bucket> open_;  // trace id -> stages closed so far
  uint64_t roots_seen_ = 0;
  uint64_t violations_ = 0;
  uint64_t dumps_fired_ = 0;
  int streak_ = 0;
  std::string worst_stage_;           // stage of the latest violation
  std::map<std::string, uint64_t> by_stage_;
};

}  // namespace solros

#endif  // SOLROS_SRC_SIM_SLO_WATCHDOG_H_
