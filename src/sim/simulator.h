// Discrete-event simulator core.
//
// The simulator is a single-threaded event loop over (time, sequence)-ordered
// callbacks. All device and OS-service models in this repository run as
// C++20 coroutines (src/sim/task.h) scheduled on this loop; simulated time
// only advances between events, so every run is deterministic.
//
// Events at equal timestamps execute in FIFO posting order.
#ifndef SOLROS_SRC_SIM_SIMULATOR_H_
#define SOLROS_SRC_SIM_SIMULATOR_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/base/units.h"

namespace solros {

// Absolute simulated time in nanoseconds since simulation start.
using SimTime = Nanos;

class Tracer;
class TelemetryHub;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Optional span/event recorder (src/sim/trace.h). Instrumentation sites
  // are no-ops while unset; the tracer must outlive everything that may
  // still close a span against it (bind it before the components under
  // test, or keep it alive past the Simulator's owner).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  // Optional USE-telemetry hub (src/base/metrics.h). Same contract as the
  // tracer: instrumentation sites skip all bookkeeping while unset, and the
  // hub must outlive the components recording into it (the Machine owns it
  // and binds it before constructing any component).
  void set_telemetry(TelemetryHub* hub) { telemetry_ = hub; }
  TelemetryHub* telemetry() const { return telemetry_; }

  // Schedules `fn` to run `delay` ns from now (0 = end of current event).
  void Post(Nanos delay, std::function<void()> fn) {
    PostAt(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at absolute time `when` (clamped to now).
  void PostAt(SimTime when, std::function<void()> fn) {
    if (when < now_) {
      when = now_;
    }
    queue_.push(Event{when, seq_++, std::move(fn)});
  }

  // Schedules resumption of a suspended coroutine at absolute time `when`.
  void ResumeAt(SimTime when, std::coroutine_handle<> handle) {
    PostAt(when, [handle] { handle.resume(); });
  }

  // Runs until the event queue drains or `max_events` have been processed.
  // Returns the number of events processed.
  uint64_t RunUntilIdle(uint64_t max_events = ~0ull) {
    uint64_t processed = 0;
    while (!queue_.empty() && processed < max_events) {
      StepOne();
      ++processed;
    }
    return processed;
  }

  // Runs events with timestamp <= `deadline`, then advances the clock to
  // `deadline` (even if idle). Returns the number of events processed.
  uint64_t RunUntil(SimTime deadline) {
    uint64_t processed = 0;
    while (!queue_.empty() && queue_.top().when <= deadline) {
      StepOne();
      ++processed;
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
    return processed;
  }

  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void StepOne() {
    // Move the event out before running: the callback may push new events
    // and invalidate the queue top.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    event.fn();
  }

  SimTime now_ = 0;
  Tracer* tracer_ = nullptr;
  TelemetryHub* telemetry_ = nullptr;
  uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
};

}  // namespace solros

#endif  // SOLROS_SRC_SIM_SIMULATOR_H_
