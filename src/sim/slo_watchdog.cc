#include "src/sim/slo_watchdog.h"

#include <cstdlib>

#include "src/base/logging.h"
#include "src/sim/flight_recorder.h"

namespace solros {
namespace {

Nanos ClampSub(Nanos a, Nanos b) { return a > b ? a - b : 0; }

}  // namespace

SloBudgets SloBudgetsFromEnv() {
  SloBudgets budgets;
  const char* env = std::getenv("SOLROS_SLO_STAGES");
  if (env == nullptr) {
    return budgets;
  }
  std::string spec(env);
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    size_t eq = item.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    std::string stage = item.substr(0, eq);
    Nanos value = static_cast<Nanos>(
        std::strtoull(item.c_str() + eq + 1, nullptr, 10));
    if (stage == "total") {
      budgets.total = value;
    } else if (stage == "stub") {
      budgets.stub = value;
    } else if (stage == "queue") {
      budgets.queue = value;
    } else if (stage == "iosched") {
      budgets.iosched = value;
    } else if (stage == "proxy") {
      budgets.proxy = value;
    } else if (stage == "copy") {
      budgets.copy = value;
    } else if (stage == "device") {
      budgets.device = value;
    } else if (stage == "wire") {
      budgets.wire = value;
    } else if (stage == "dispatch") {
      budgets.dispatch = value;
    }
  }
  return budgets;
}

SloWatchdog::SloWatchdog(Simulator* sim, SloBudgets budgets, int sustain)
    : sim_(sim), budgets_(budgets), sustain_(sustain < 1 ? 1 : sustain) {
  CHECK(sim != nullptr);
}

void SloWatchdog::Bind(Tracer* tracer) {
  CHECK(tracer != nullptr);
  tracer_ = tracer;
  tracer->set_span_close_listener(
      [this](const SpanRecord& record) { OnSpanClosed(record); });
}

void SloWatchdog::OnSpanClosed(const SpanRecord& record) {
  if (record.trace_id == 0) {
    return;
  }
  if (record.parent != 0) {
    // Same stage bucketing as ComputeStageBreakdowns (src/sim/attribution).
    Bucket& bucket = open_[record.trace_id];
    Nanos dur = record.end - record.begin;
    if (record.name == "rpc.queue.req" || record.name == "rpc.queue.resp" ||
        record.name == "net.queue.event" || record.name == "net.plug.wait") {
      bucket.queue += dur;
    } else if (record.name == "iosched.queue") {
      bucket.iosched += dur;
    } else if (record.name == "fs.proxy.service" ||
               record.name == "net.proxy.rpc" ||
               record.name == "net.proxy.inbound" ||
               record.name == "net.proxy.outbound" ||
               record.name == "net.server.stack") {
      bucket.service += dur;
    } else if (record.name == "dma.copy") {
      bucket.copy += dur;
    } else if (record.name == "nvme.batch") {
      bucket.device += dur;
    } else if (record.name == "net.wire.transit") {
      bucket.wire += dur;
    } else if (record.name == "net.stub.dispatch" ||
               record.name == "net.server.dispatch") {
      bucket.dispatch += dur;
    }
    return;
  }
  // Root close: every child stage already arrived (the pumps record queue
  // spans before waking the caller), so evaluate and retire the bucket.
  ++roots_seen_;
  Bucket bucket;
  auto it = open_.find(record.trace_id);
  if (it != open_.end()) {
    bucket = it->second;
    open_.erase(it);
  }
  std::string stage = Evaluate(record.end - record.begin, bucket);
  if (stage.empty()) {
    streak_ = 0;
    return;
  }
  ++violations_;
  ++by_stage_[stage];
  worst_stage_ = stage;
  if (tracer_ != nullptr) {
    // Under tail-based sampling this pins the trace before the root's
    // keep/drop decision (the tracer notifies listeners first).
    tracer_->FlagTrace(record.trace_id, Tracer::TraceFlag::kSloViolation);
  }
  if (++streak_ >= sustain_) {
    streak_ = 0;  // re-arm: one dump per sustained burst
    ++dumps_fired_;
    MaybeDumpFlightRecorder(sim_, "slo watchdog: " + stage +
                                      " over budget on trace " +
                                      std::to_string(record.trace_id));
  }
}

std::string SloWatchdog::Evaluate(Nanos total, const Bucket& bucket) const {
  Nanos proxy = ClampSub(bucket.service,
                         bucket.device + bucket.copy + bucket.iosched);
  Nanos stub = ClampSub(total, bucket.queue + bucket.service + bucket.wire +
                                   bucket.dispatch);
  if (budgets_.total != 0 && total > budgets_.total) {
    return "total";
  }
  if (budgets_.queue != 0 && bucket.queue > budgets_.queue) {
    return "queue";
  }
  if (budgets_.iosched != 0 && bucket.iosched > budgets_.iosched) {
    return "iosched";
  }
  if (budgets_.proxy != 0 && proxy > budgets_.proxy) {
    return "proxy";
  }
  if (budgets_.copy != 0 && bucket.copy > budgets_.copy) {
    return "copy";
  }
  if (budgets_.device != 0 && bucket.device > budgets_.device) {
    return "device";
  }
  if (budgets_.wire != 0 && bucket.wire > budgets_.wire) {
    return "wire";
  }
  if (budgets_.dispatch != 0 && bucket.dispatch > budgets_.dispatch) {
    return "dispatch";
  }
  if (budgets_.stub != 0 && stub > budgets_.stub) {
    return "stub";
  }
  return "";
}

std::string SloWatchdog::Summary() const {
  std::string out = "slo_watchdog: roots=" + std::to_string(roots_seen_) +
                    " violations=" + std::to_string(violations_) +
                    " dumps=" + std::to_string(dumps_fired_);
  if (!worst_stage_.empty()) {
    out += " worst=" + worst_stage_;
  }
  return out;
}

}  // namespace solros
