// Time-shared resources: FIFO servers and bandwidth links.
//
// These model the hardware queueing behaviour that matters for the paper's
// numbers: a DMA channel serves one transfer at a time, a PCIe link carries
// bytes at a fixed rate, an SSD's flash backend sustains a bounded rate.
// Service is FIFO in arrival (await) order — adequate because no model in
// this repository preempts in-flight transfers.
#ifndef SOLROS_SRC_SIM_RESOURCE_H_
#define SOLROS_SRC_SIM_RESOURCE_H_

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/base/units.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace solros {

// A single FIFO server. `Use(d)` reserves the server for `d` ns starting at
// max(now, previous reservation end) and resumes the caller when its service
// completes.
class FifoResource {
 public:
  explicit FifoResource(Simulator* sim, std::string name = "")
      : sim_(sim), name_(std::move(name)) {
    DCHECK(sim != nullptr);
  }
  FifoResource(const FifoResource&) = delete;
  FifoResource& operator=(const FifoResource&) = delete;

  struct UseAwaiter {
    FifoResource* resource;
    Nanos duration;
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> handle) {
      Simulator* sim = resource->sim_;
      SimTime start = std::max(sim->now(), resource->busy_until_);
      SimTime end = start + duration;
      resource->busy_until_ = end;
      resource->busy_time_ += duration;
      ++resource->uses_;
      if (resource->use_ != nullptr) {
        resource->use_->RecordUse(sim->now(), start, end);
      }
      sim->ResumeAt(end, handle);
    }
    void await_resume() const noexcept {}
  };

  // co_await resource.Use(duration);
  UseAwaiter Use(Nanos duration) { return UseAwaiter{this, duration}; }

  // Optional USE telemetry target; every reservation is reported as one
  // busy interval (with its queueing wait). Null = off.
  void set_use_series(UseSeries* use) { use_ = use; }

  SimTime busy_until() const { return busy_until_; }
  Nanos total_busy_time() const { return busy_time_; }
  uint64_t use_count() const { return uses_; }
  const std::string& name() const { return name_; }

 private:
  Simulator* sim_;
  std::string name_;
  SimTime busy_until_ = 0;
  Nanos busy_time_ = 0;
  uint64_t uses_ = 0;
  UseSeries* use_ = nullptr;
};

// k identical FIFO servers (e.g. the 8 DMA channels of a Xeon or Xeon Phi).
// Each use picks the earliest-available server.
class MultiServerResource {
 public:
  MultiServerResource(Simulator* sim, size_t servers, std::string name = "")
      : sim_(sim), busy_until_(servers, 0), name_(std::move(name)) {
    DCHECK(sim != nullptr);
    CHECK_GT(servers, 0u);
  }
  MultiServerResource(const MultiServerResource&) = delete;
  MultiServerResource& operator=(const MultiServerResource&) = delete;

  struct UseAwaiter {
    MultiServerResource* resource;
    Nanos duration;
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> handle) {
      Simulator* sim = resource->sim_;
      size_t best = 0;
      for (size_t i = 1; i < resource->busy_until_.size(); ++i) {
        if (resource->busy_until_[i] < resource->busy_until_[best]) {
          best = i;
        }
      }
      SimTime start = std::max(sim->now(), resource->busy_until_[best]);
      SimTime end = start + duration;
      resource->busy_until_[best] = end;
      resource->busy_time_ += duration;
      ++resource->uses_;
      if (resource->use_ != nullptr) {
        resource->use_->RecordUse(sim->now(), start, end);
      }
      sim->ResumeAt(end, handle);
    }
    void await_resume() const noexcept {}
  };

  UseAwaiter Use(Nanos duration) { return UseAwaiter{this, duration}; }

  // Optional USE telemetry target (register it with capacity ==
  // server_count() so utilization is normalized per server). Null = off.
  void set_use_series(UseSeries* use) { use_ = use; }

  size_t server_count() const { return busy_until_.size(); }
  Nanos total_busy_time() const { return busy_time_; }
  uint64_t use_count() const { return uses_; }
  const std::string& name() const { return name_; }

 private:
  Simulator* sim_;
  std::vector<SimTime> busy_until_;
  Nanos busy_time_ = 0;
  uint64_t uses_ = 0;
  std::string name_;
  UseSeries* use_ = nullptr;
};

// A fixed-rate link. Transfer(bytes) occupies the link for bytes/rate and
// resumes when the last byte has passed; an optional fixed per-transfer
// latency (propagation + protocol overhead) is added after the transfer.
class BandwidthResource {
 public:
  BandwidthResource(Simulator* sim, double bytes_per_sec, Nanos latency = 0,
                    std::string name = "")
      : server_(sim, std::move(name)),
        rate_(bytes_per_sec),
        latency_(latency) {
    CHECK_GT(bytes_per_sec, 0.0);
  }

  Task<void> Transfer(uint64_t bytes) {
    co_await server_.Use(TransferTime(bytes, rate_));
    if (latency_ != 0) {
      co_await Delay(latency_);
    }
    bytes_moved_ += bytes;
  }

  // Occupancy time for a transfer of `bytes`, without performing it.
  Nanos TimeFor(uint64_t bytes) const {
    return TransferTime(bytes, rate_) + latency_;
  }

  double rate() const { return rate_; }
  Nanos latency() const { return latency_; }
  uint64_t bytes_moved() const { return bytes_moved_; }
  Nanos total_busy_time() const { return server_.total_busy_time(); }
  void set_use_series(UseSeries* use) { server_.set_use_series(use); }

 private:
  FifoResource server_;
  double rate_;
  Nanos latency_;
  uint64_t bytes_moved_ = 0;
};

}  // namespace solros

#endif  // SOLROS_SRC_SIM_RESOURCE_H_
