#include "src/sim/bottleneck.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "src/base/logging.h"

namespace solros {
namespace {

int64_t UtilPermille(const UseWindowData& w, Nanos window_ns,
                     uint32_t capacity) {
  // Interval-recorded series accumulate busy_ns (normalized per server);
  // depth-tracked series accumulate active_ns. A series uses one mode, so
  // at most one term is nonzero.
  uint64_t busy = w.busy_ns / (capacity == 0 ? 1 : capacity) + w.active_ns;
  int64_t permille = static_cast<int64_t>(busy * 1000 / window_ns);
  return std::min<int64_t>(permille, 1000);
}

}  // namespace

BottleneckReport AnalyzeBottlenecks(const TelemetrySnapshot& snapshot) {
  BottleneckReport report;
  report.window_ns = snapshot.window_ns;
  if (snapshot.window_ns == 0) {
    return report;
  }

  // window index -> (series index -> window data)
  std::map<uint64_t, std::map<size_t, const UseWindowData*>> by_window;
  for (size_t s = 0; s < snapshot.series.size(); ++s) {
    for (const UseWindowData& w : snapshot.series[s].windows) {
      by_window[w.index][s] = &w;
    }
  }

  // children[parent series name] = child series names present in the
  // snapshot (edges to absent series contribute nothing).
  std::map<std::string, std::vector<size_t>> children;
  for (const auto& [parent, child] : snapshot.edges) {
    for (size_t s = 0; s < snapshot.series.size(); ++s) {
      if (snapshot.series[s].name == child) {
        children[parent].push_back(s);
      }
    }
  }

  for (const auto& [index, per_series] : by_window) {
    WindowVerdict verdict;
    verdict.index = index;
    std::map<size_t, int64_t> mean_depth;  // series -> mean depth x1000
    for (const auto& [s, w] : per_series) {
      mean_depth[s] =
          static_cast<int64_t>(w->depth_ns * 1000 / snapshot.window_ns);
    }
    for (const auto& [s, w] : per_series) {
      const UseSeriesData& series = snapshot.series[s];
      ComponentWindowStat stat;
      stat.name = series.name;
      stat.util_permille = UtilPermille(*w, snapshot.window_ns,
                                        series.capacity);
      stat.mean_depth_milli = mean_depth[s];
      stat.excl_depth_milli = stat.mean_depth_milli;
      stat.eff_util_permille = stat.util_permille;
      auto kids = children.find(series.name);
      if (kids != children.end()) {
        for (size_t child : kids->second) {
          auto it = mean_depth.find(child);
          if (it != mean_depth.end()) {
            stat.excl_depth_milli -= it->second;
          }
        }
        stat.excl_depth_milli = std::max<int64_t>(stat.excl_depth_milli, 0);
        // A parent is "active" for the whole time a request sits in one of
        // its children, so rank it only on the share of its queue it
        // exclusively owns — otherwise the proxy event loop out-ranks the
        // saturated device it is waiting on.
        if (stat.mean_depth_milli > 0) {
          stat.eff_util_permille = stat.util_permille *
                                   stat.excl_depth_milli /
                                   stat.mean_depth_milli;
        }
      }
      stat.peak_depth = w->peak_depth;
      stat.ops = w->ops;
      stat.errors = w->errors;
      if (w->ops > 0) {
        // Prefer the component's own measured wait; fall back to the
        // Little's-law estimate mean_depth * window / completions.
        stat.est_wait_ns = w->wait_ns > 0 ? w->wait_ns / w->ops
                                          : w->depth_ns / w->ops;
      }
      verdict.max_util_permille =
          std::max(verdict.max_util_permille, stat.eff_util_permille);
      verdict.components.push_back(std::move(stat));
    }
    // components are name-sorted already (series map iteration order).
    if (verdict.max_util_permille >= kIdleUtilPermille) {
      const ComponentWindowStat* best = nullptr;
      if (verdict.max_util_permille >= kPinnedUtilPermille) {
        // Bandwidth-bound: the hottest component wins, exclusive depth
        // breaking ties among those within the tie margin of the maximum.
        for (const ComponentWindowStat& stat : verdict.components) {
          if (stat.eff_util_permille + kUtilTiePermille <
              verdict.max_util_permille) {
            continue;  // clearly cooler than the hottest component
          }
          if (best == nullptr ||
              stat.excl_depth_milli > best->excl_depth_milli) {
            best = &stat;  // name order breaks exact depth ties (first wins)
          }
        }
      } else {
        // Queue-bound: nothing is pinned, so saturation names the culprit —
        // the deepest exclusive queue among non-idle components.
        for (const ComponentWindowStat& stat : verdict.components) {
          if (stat.excl_depth_milli == 0) {
            continue;
          }
          if (best == nullptr ||
              stat.excl_depth_milli > best->excl_depth_milli) {
            best = &stat;
          }
        }
        if (best == nullptr) {
          // No queues anywhere: fall back to the utilization ranking.
          for (const ComponentWindowStat& stat : verdict.components) {
            if (best == nullptr ||
                stat.eff_util_permille > best->eff_util_permille) {
              best = &stat;
            }
          }
        }
      }
      CHECK(best != nullptr);
      verdict.bottleneck = best->name;
      if (verdict.max_util_permille >= kBusyUtilPermille) {
        ++report.wins[verdict.bottleneck];
      }
    }
    report.windows.push_back(std::move(verdict));
  }

  int best_wins = 0;
  for (const auto& [name, count] : report.wins) {
    if (count > best_wins) {  // map order: ties keep the smaller name
      best_wins = count;
      report.overall = name;
    }
  }
  return report;
}

void RenderBottleneckReport(const BottleneckReport& report,
                            std::ostream& os) {
  char line[160];
  os << "bottleneck report: " << report.windows.size() << " windows of "
     << report.window_ns << " ns\n";
  for (const WindowVerdict& verdict : report.windows) {
    os << "window " << verdict.index << " [" << verdict.index *
        report.window_ns << " ns .. "
       << (verdict.index + 1) * report.window_ns << " ns)";
    if (verdict.bottleneck.empty()) {
      os << "  (idle)\n";
    } else {
      os << "  bottleneck: " << verdict.bottleneck << "\n";
    }
    std::snprintf(line, sizeof(line),
                  "  %-20s %6s %6s %8s %8s %6s %8s %5s %12s\n",
                  "component", "util%", "eff%", "depth", "excl", "peak",
                  "ops", "err", "est wait ns");
    os << line;
    for (const ComponentWindowStat& stat : verdict.components) {
      std::snprintf(
          line, sizeof(line),
          "  %-20s %5lld.%1lld %5lld.%1lld %5lld.%03lld %5lld.%03lld %6lld "
          "%8llu %5llu %12llu%s\n",
          stat.name.c_str(),
          static_cast<long long>(stat.util_permille / 10),
          static_cast<long long>(stat.util_permille % 10),
          static_cast<long long>(stat.eff_util_permille / 10),
          static_cast<long long>(stat.eff_util_permille % 10),
          static_cast<long long>(stat.mean_depth_milli / 1000),
          static_cast<long long>(stat.mean_depth_milli % 1000),
          static_cast<long long>(stat.excl_depth_milli / 1000),
          static_cast<long long>(stat.excl_depth_milli % 1000),
          static_cast<long long>(stat.peak_depth),
          static_cast<unsigned long long>(stat.ops),
          static_cast<unsigned long long>(stat.errors),
          static_cast<unsigned long long>(stat.est_wait_ns),
          stat.name == verdict.bottleneck ? "  <-- bottleneck" : "");
      os << line;
    }
  }
  if (!report.overall.empty()) {
    os << "overall bottleneck: " << report.overall << " (";
    bool first = true;
    for (const auto& [name, count] : report.wins) {
      os << (first ? "" : ", ") << name << ": " << count;
      first = false;
    }
    os << " busy-window wins)\n";
  } else {
    os << "overall bottleneck: none (no busy windows)\n";
  }

  // Sharded services register one series per shard as "name[k]"; summarize
  // each family's balance as max/mean completed ops across the shards
  // (1.000 = a perfectly even partition). Integer permille math keeps the
  // line byte-reproducible.
  std::map<std::string, uint64_t> ops_by_name;
  for (const WindowVerdict& verdict : report.windows) {
    for (const ComponentWindowStat& stat : verdict.components) {
      ops_by_name[stat.name] += stat.ops;
    }
  }
  std::map<std::string, std::vector<uint64_t>> shard_families;
  for (const auto& [name, ops] : ops_by_name) {
    size_t bracket = name.find('[');
    if (bracket != std::string::npos && !name.empty() &&
        name.back() == ']') {
      shard_families[name.substr(0, bracket)].push_back(ops);
    }
  }
  for (const auto& [base, shard_ops] : shard_families) {
    if (shard_ops.size() < 2) {
      continue;
    }
    uint64_t total = 0;
    uint64_t peak = 0;
    for (uint64_t ops : shard_ops) {
      total += ops;
      peak = std::max(peak, ops);
    }
    if (total == 0) {
      continue;
    }
    uint64_t milli = peak * 1000 * shard_ops.size() / total;
    std::snprintf(line, sizeof(line),
                  "shard balance: %s max/mean ops = %llu.%03llu over %zu "
                  "shards\n",
                  base.c_str(), static_cast<unsigned long long>(milli / 1000),
                  static_cast<unsigned long long>(milli % 1000),
                  shard_ops.size());
    os << line;
  }
}

}  // namespace solros
