// Synchronization primitives for simulator tasks.
//
// All of these are single-threaded (the simulator owns all tasks); "blocking"
// means suspending the coroutine until another task calls a notify/release
// method. Resumptions are scheduled as zero-delay events so that notifiers
// never run awaiters on their own stack.
#ifndef SOLROS_SRC_SIM_SYNC_H_
#define SOLROS_SRC_SIM_SYNC_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>

#include "src/base/logging.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace solros {

// A condition without an attached predicate: tasks Wait(), other tasks
// NotifyOne()/NotifyAll(). Always re-check your predicate in a loop.
class Condition {
 public:
  explicit Condition(Simulator* sim) : sim_(sim) { DCHECK(sim != nullptr); }
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  struct WaitAwaiter {
    Condition* cond;
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> handle) {
      cond->waiters_.push_back(handle);
    }
    void await_resume() const noexcept {}
  };
  WaitAwaiter Wait() { return WaitAwaiter{this}; }

  void NotifyOne() {
    if (waiters_.empty()) {
      return;
    }
    std::coroutine_handle<> handle = waiters_.front();
    waiters_.pop_front();
    sim_->Post(0, [handle] { handle.resume(); });
  }

  void NotifyAll() {
    while (!waiters_.empty()) {
      NotifyOne();
    }
  }

  size_t waiter_count() const { return waiters_.size(); }
  Simulator* sim() const { return sim_; }

 private:
  Simulator* sim_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Simulator* sim, uint64_t initial)
      : count_(initial), cond_(sim) {}

  Task<void> Acquire() {
    while (count_ == 0) {
      co_await cond_.Wait();
    }
    --count_;
  }

  bool TryAcquire() {
    if (count_ == 0) {
      return false;
    }
    --count_;
    return true;
  }

  void Release(uint64_t n = 1) {
    count_ += n;
    for (uint64_t i = 0; i < n; ++i) {
      cond_.NotifyOne();
    }
  }

  uint64_t count() const { return count_; }

 private:
  uint64_t count_;
  Condition cond_;
};

// Join-counter for fork/join fan-out:
//   WaitGroup wg(&sim);
//   for (...) SpawnJoined(sim, wg, Worker(...));
//   co_await wg.Wait();
class WaitGroup {
 public:
  explicit WaitGroup(Simulator* sim) : cond_(sim) {}

  void Add(uint64_t n = 1) { outstanding_ += n; }

  void Done() {
    DCHECK(outstanding_ > 0);
    if (--outstanding_ == 0) {
      cond_.NotifyAll();
    }
  }

  Task<void> Wait() {
    while (outstanding_ != 0) {
      co_await cond_.Wait();
    }
  }

  uint64_t outstanding() const { return outstanding_; }

 private:
  uint64_t outstanding_ = 0;
  Condition cond_;
};

namespace sim_internal {

template <typename T>
Task<void> RunThenDone(Task<T> task, WaitGroup* group) {
  co_await std::move(task);
  group->Done();
}

}  // namespace sim_internal

// Spawns `task` detached and registers it with `group` so the parent can
// join on all spawned children.
template <typename T>
void SpawnJoined(Simulator& sim, WaitGroup& group, Task<T> task) {
  group.Add(1);
  Spawn(sim, sim_internal::RunThenDone(std::move(task), &group));
}

// Bounded (or unbounded when capacity == 0) FIFO channel between tasks.
// Closing wakes all receivers; Receive on a closed, drained channel returns
// kWouldBlock-like failure via the bool-result protocol below.
template <typename T>
class Channel {
 public:
  Channel(Simulator* sim, size_t capacity)
      : capacity_(capacity), readable_(sim), writable_(sim) {}

  // Suspends while the channel is full (bounded case).
  Task<void> Send(T item) {
    while (capacity_ != 0 && items_.size() >= capacity_ && !closed_) {
      co_await writable_.Wait();
    }
    CHECK(!closed_) << "send on closed channel";
    items_.push_back(std::move(item));
    readable_.NotifyOne();
  }

  // Non-suspending send; fails when bounded-full or closed.
  bool TrySend(T item) {
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) {
      return false;
    }
    items_.push_back(std::move(item));
    readable_.NotifyOne();
    return true;
  }

  // Suspends until an item arrives or the channel is closed+drained.
  // Returns nullopt only on closed+drained.
  Task<std::optional<T>> Receive() {
    while (items_.empty() && !closed_) {
      co_await readable_.Wait();
    }
    if (items_.empty()) {
      co_return std::optional<T>();
    }
    T item = std::move(items_.front());
    items_.pop_front();
    writable_.NotifyOne();
    co_return std::optional<T>(std::move(item));
  }

  std::optional<T> TryReceive() {
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    writable_.NotifyOne();
    return item;
  }

  void Close() {
    closed_ = true;
    readable_.NotifyAll();
    writable_.NotifyAll();
  }

  bool closed() const { return closed_; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  size_t capacity_;
  bool closed_ = false;
  std::deque<T> items_;
  Condition readable_;
  Condition writable_;
};

}  // namespace solros

#endif  // SOLROS_SRC_SIM_SYNC_H_
