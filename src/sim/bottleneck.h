// Bottleneck analysis over USE telemetry snapshots.
//
// AnalyzeBottlenecks walks every retained telemetry window and names the
// binding resource with a two-tier USE verdict:
//
//   1. If some component is *pinned* (effective utilization at or above
//      kPinnedUtilPermille), the hottest pinned component wins — with
//      exclusive queue depth as the tie-breaker among components within
//      kUtilTiePermille of the maximum.
//   2. Otherwise nothing is bandwidth-bound and the window is queue-bound:
//      the component with the deepest *exclusive* queue wins (saturation
//      names the culprit), falling back to the utilization ranking when no
//      component holds any queue at all.
//
// "Exclusive" depth subtracts the mean depths of a component's declared
// children (TelemetryHub::DeclareEdge); for a component with declared
// children the effective utilization is additionally scaled by its
// exclusive share of its own queue (excl/mean), because an event loop is
// "active" the whole time a request it merely relays sits in a saturated
// child — without the discount the proxy would always out-rank the device
// it is waiting on. Leaves (no declared children) rank on their raw
// utilization. Each component also gets a Little's-law queueing-delay
// estimate (recorded wait per op where the component measures it,
// depth-integral / completions otherwise).
//
// All verdict math is integer arithmetic on the snapshot's integer fields,
// so two identical runs produce byte-identical rendered reports. The same
// analyzer serves the in-process bench wiring (--telemetry-out) and the
// offline tools/solros_top renderer.
#ifndef SOLROS_SRC_SIM_BOTTLENECK_H_
#define SOLROS_SRC_SIM_BOTTLENECK_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/base/metrics.h"

namespace solros {

// One component's derived USE numbers inside one window.
struct ComponentWindowStat {
  std::string name;
  // busy/(width*capacity) or active/width, in integer permille (0..1000).
  int64_t util_permille = 0;
  // Utilization used for the verdict: for components with declared
  // children, util scaled by excl_depth/mean_depth; raw util otherwise.
  int64_t eff_util_permille = 0;
  // Mean queue depth over the window, scaled by 1000.
  int64_t mean_depth_milli = 0;
  // Mean depth minus the children's mean depths (clamped at 0), x1000.
  int64_t excl_depth_milli = 0;
  int64_t peak_depth = 0;
  uint64_t ops = 0;
  uint64_t errors = 0;
  // Estimated queueing delay per completed op.
  uint64_t est_wait_ns = 0;
};

struct WindowVerdict {
  uint64_t index = 0;
  // Binding resource for this window; empty when the window is idle
  // (max effective utilization below the busy threshold).
  std::string bottleneck;
  // Maximum eff_util_permille across the window's components.
  int64_t max_util_permille = 0;
  std::vector<ComponentWindowStat> components;  // name-sorted
};

struct BottleneckReport {
  Nanos window_ns = 0;
  std::vector<WindowVerdict> windows;  // ascending by index
  // Bottleneck named over the whole run: the component winning the most
  // busy windows (ties break to the lexicographically smallest name).
  // Empty when every window was idle.
  std::string overall;
  std::map<std::string, int> wins;  // per-component busy-window wins
};

// Windows whose hottest component is below this are considered idle and
// get no verdict; the overall verdict only counts windows at or above
// kBusyUtilPermille.
inline constexpr int64_t kIdleUtilPermille = 100;   // 10%
inline constexpr int64_t kBusyUtilPermille = 500;   // 50%
// At or above this a component counts as pinned (bandwidth-bound) and the
// utilization tier of the verdict applies.
inline constexpr int64_t kPinnedUtilPermille = 900;  // 90%
// Components within this margin of the window's max utilization compete
// on exclusive depth instead of raw utilization.
inline constexpr int64_t kUtilTiePermille = 50;     // 5%

BottleneckReport AnalyzeBottlenecks(const TelemetrySnapshot& snapshot);

// Deterministic human-readable report: one table per window (components
// with their USE columns, bottleneck flagged) plus the overall verdict.
void RenderBottleneckReport(const BottleneckReport& report, std::ostream& os);

}  // namespace solros

#endif  // SOLROS_SRC_SIM_BOTTLENECK_H_
