#include "src/sim/flight_recorder.h"

#include <cstdlib>
#include <iostream>
#include <ostream>

#include "src/base/fault.h"

namespace solros {
namespace {

size_t CapacityFromEnv(bool* env_present) {
  const char* env = std::getenv("SOLROS_FLIGHT_RECORDER");
  if (env == nullptr || env[0] == '\0') {
    *env_present = false;
    return FlightRecorder::kDefaultCapacity;
  }
  *env_present = true;
  char* end = nullptr;
  unsigned long long value = std::strtoull(env, &end, 10);
  if (end == nullptr || *end != '\0' || value == 0) {
    return FlightRecorder::kDefaultCapacity;
  }
  return static_cast<size_t>(value);
}

Nanos SloThresholdFromEnv() {
  const char* env = std::getenv("SOLROS_FLIGHT_RECORDER_SLO_NS");
  if (env == nullptr || env[0] == '\0') {
    return 0;
  }
  char* end = nullptr;
  unsigned long long value = std::strtoull(env, &end, 10);
  if (end == nullptr || *end != '\0') {
    return 0;
  }
  return static_cast<Nanos>(value);
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity), slo_threshold_ns_(SloThresholdFromEnv()) {
  if (capacity_ == 0) {
    capacity_ = CapacityFromEnv(&echo_to_stderr_);
  }
  entries_.resize(capacity_);
}

FlightRecorder::~FlightRecorder() {
  if (fault_trigger_armed_) {
    Faults().SetFireListener(nullptr);
  }
}

void FlightRecorder::Note(char kind, std::string_view track,
                          std::string_view name, uint64_t trace_id,
                          SimTime at) {
  // When full, (head_ + size_) % capacity_ == head_: the write overwrites
  // the oldest entry and the window slides forward by one.
  Entry& slot = entries_[(head_ + size_) % capacity_];
  slot.at = at;
  slot.kind = kind;
  slot.track = std::string(track);
  slot.name = std::string(name);
  slot.trace_id = trace_id;
  if (size_ == capacity_) {
    head_ = (head_ + 1) % capacity_;
  } else {
    ++size_;
  }
  last_at_ = at;
}

void FlightRecorder::Dump(std::string_view trigger) {
  DumpRecord dump;
  dump.seq = ++total_dumps_;
  dump.trigger = std::string(trigger);
  dump.at = last_at_;
  dump.entries.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    dump.entries.push_back(entries_[(head_ + i) % capacity_]);
  }
  if (echo_to_stderr_) {
    WriteDump(std::cerr, dump);
  }
  dumps_.push_back(std::move(dump));
  while (dumps_.size() > kMaxDumps) {
    dumps_.pop_front();
  }
}

void FlightRecorder::ArmFaultTrigger() {
  Faults().SetFireListener([this](const std::string& point_name) {
    Dump("fault: " + point_name);
  });
  fault_trigger_armed_ = true;
}

void FlightRecorder::WriteDump(std::ostream& os, const DumpRecord& dump) {
  os << "=== flight recorder dump #" << dump.seq << " @" << dump.at
     << "ns: " << dump.trigger << " ===\n";
  for (const Entry& entry : dump.entries) {
    os << "  " << entry.at << "ns  " << entry.kind << "  " << entry.track
       << "/" << entry.name;
    if (entry.trace_id != 0) {
      os << "  trace=" << entry.trace_id;
    }
    os << "\n";
  }
}

void FlightRecorder::WriteText(std::ostream& os) const {
  for (const DumpRecord& dump : dumps_) {
    WriteDump(os, dump);
  }
}

}  // namespace solros
