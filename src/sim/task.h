// Coroutine task type for simulator processes.
//
// A `Task<T>` is a lazily-started coroutine bound to a `Simulator`:
//
//   Task<int> Child(DelayArg...) {
//     co_await Delay(Microseconds(3));   // advance simulated time
//     co_return 42;
//   }
//   Task<void> Parent() {
//     int v = co_await Child();          // runs child to completion
//   }
//   Spawn(sim, Parent());                // detach as a root process
//
// Ownership rules:
//  * An awaited Task is owned by the awaiting expression; its frame is
//    destroyed when the Task object goes out of scope (after completion).
//  * A spawned (detached) Task destroys its own frame on completion.
//  * The Simulator pointer propagates parent -> child at co_await time, so
//    only root tasks need explicit binding (done by Spawn/RunSim).
#ifndef SOLROS_SRC_SIM_TASK_H_
#define SOLROS_SRC_SIM_TASK_H_

#include <coroutine>
#include <optional>
#include <utility>

#include "src/base/logging.h"
#include "src/sim/simulator.h"

namespace solros {

class TaskPromiseBase {
 public:
  Simulator* sim() const { return sim_; }
  void set_sim(Simulator* sim) { sim_ = sim; }
  void set_continuation(std::coroutine_handle<> continuation) {
    continuation_ = continuation;
  }
  void set_detached() { detached_ = true; }

  std::suspend_always initial_suspend() noexcept { return {}; }

  // On completion: transfer to the awaiting parent if any; a detached task
  // has no parent and frees its own frame.
  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> handle) noexcept {
      TaskPromiseBase& promise = handle.promise();
      if (promise.continuation_) {
        return promise.continuation_;
      }
      if (promise.detached_) {
        handle.destroy();
      }
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { CHECK(false) << "exception escaped sim task"; }

 private:
  Simulator* sim_ = nullptr;
  std::coroutine_handle<> continuation_;
  bool detached_ = false;
};

template <typename T>
class TaskPromise : public TaskPromiseBase {
 public:
  void return_value(T value) { value_.emplace(std::move(value)); }
  T TakeValue() {
    DCHECK(value_.has_value());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
};

template <>
class TaskPromise<void> : public TaskPromiseBase {
 public:
  void return_void() {}
  void TakeValue() {}
};

template <typename T = void>
class [[nodiscard]] Task {
 public:
  class promise_type : public TaskPromise<T> {
   public:
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
  };
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle handle) : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      DestroyFrame();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { DestroyFrame(); }

  bool valid() const { return static_cast<bool>(handle_); }

  // Awaiting a task starts it (symmetric transfer) and resumes the awaiter
  // when the child completes, yielding the child's return value.
  struct Awaiter {
    Handle child;
    bool await_ready() const noexcept { return false; }
    template <typename ParentPromise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<ParentPromise> parent) noexcept {
      child.promise().set_sim(parent.promise().sim());
      child.promise().set_continuation(parent);
      return child;
    }
    T await_resume() { return child.promise().TakeValue(); }
  };
  Awaiter operator co_await() && { return Awaiter{handle_}; }

  // Releases ownership of the coroutine frame (used by Spawn).
  Handle Release() { return std::exchange(handle_, {}); }

 private:
  void DestroyFrame() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

// Detaches `task` as a root simulator process; it starts at the current
// simulated time (after already-queued same-time events) and frees itself
// when it finishes.
template <typename T>
void Spawn(Simulator& sim, Task<T> task) {
  auto handle = task.Release();
  CHECK(handle) << "spawning an empty task";
  handle.promise().set_sim(&sim);
  handle.promise().set_detached();
  sim.Post(0, [handle] { handle.resume(); });
}

// Suspends the current task for `delay` simulated nanoseconds.
//   co_await Delay(Microseconds(5));
struct Delay {
  Nanos delay;
  explicit Delay(Nanos d) : delay(d) {}

  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  void await_suspend(std::coroutine_handle<Promise> handle) {
    Simulator* sim = handle.promise().sim();
    DCHECK(sim != nullptr);
    sim->ResumeAt(sim->now() + delay, handle);
  }
  void await_resume() const noexcept {}
};

// Yields access to the owning simulator from inside a task:
//   Simulator* sim = co_await CurrentSimulator();
struct CurrentSimulator {
  Simulator* sim = nullptr;
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> handle) {
    sim = handle.promise().sim();
    return false;  // never actually suspend
  }
  Simulator* await_resume() const noexcept { return sim; }
};

namespace sim_internal {

template <typename T>
Task<void> CaptureResult(Task<T> inner, std::optional<T>* slot, bool* flag) {
  slot->emplace(co_await std::move(inner));
  *flag = true;
}

inline Task<void> CaptureDone(Task<void> inner, bool* flag) {
  co_await std::move(inner);
  *flag = true;
}

}  // namespace sim_internal

// Runs `task` to completion on `sim` and returns its result. Fails fatally
// if the simulation goes idle before the task finishes (deadlock) — this is
// the standard driver for tests and benchmarks.
template <typename T>
T RunSim(Simulator& sim, Task<T> task) {
  std::optional<T> out;
  bool done = false;
  Spawn(sim, sim_internal::CaptureResult(std::move(task), &out, &done));
  sim.RunUntilIdle();
  CHECK(done) << "simulation went idle before the root task completed";
  return std::move(*out);
}

inline void RunSim(Simulator& sim, Task<void> task) {
  bool done = false;
  Spawn(sim, sim_internal::CaptureDone(std::move(task), &done));
  sim.RunUntilIdle();
  CHECK(done) << "simulation went idle before the root task completed";
}

}  // namespace solros

#endif  // SOLROS_SRC_SIM_TASK_H_
