// RPC wire messages between data-plane stubs and control-plane proxies.
//
// The paper's protocols, reproduced:
//  * File system (§4.3, §5): a 9P-flavoured protocol where each file-system
//    call maps one-to-one onto an RPC. The Tread/Twrite analogues are
//    zero-copy: instead of carrying file data, they carry the *physical
//    address of co-processor memory* (here: a MemRef into a DeviceBuffer),
//    and the proxy arranges a P2P or buffered transfer into/out of it.
//  * Network (§4.4, §5): "10 RPC messages, each of which corresponds to a
//    network system call, and two messages for event notification of a new
//    connection for accept and new data arrival for recv".
//
// Messages are fixed-size PODs memcpy'd into ring records (both ends are
// simulated on the same ISA, so no byte-order concerns — noted in
// DESIGN.md's out-of-scope list).
#ifndef SOLROS_SRC_RPC_MESSAGES_H_
#define SOLROS_SRC_RPC_MESSAGES_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/base/fault.h"
#include "src/base/logging.h"
#include "src/base/status.h"
#include "src/fs/layout.h"
#include "src/hw/memory.h"

namespace solros {

inline constexpr uint32_t kRpcMaxPath = 255;

// ---------------------------------------------------------------------------
// File-system protocol (9P-like)
// ---------------------------------------------------------------------------

enum class FsOp : uint8_t {
  kOpen,      // path -> ino ("Twalk+Topen")
  kCreate,    // path -> ino
  kRead,      // ino, offset, length, target MemRef ("Tread", zero-copy)
  kWrite,     // ino, offset, length, source MemRef ("Twrite", zero-copy)
  kStat,      // path or ino
  kUnlink,
  kMkdir,
  kRmdir,
  kRename,    // path -> path2
  kReaddir,   // returns entries in chunks
  kTruncate,  // ino, length
  kFsync,
};

struct FsRequest {
  FsOp op = FsOp::kOpen;
  uint8_t flags = 0;  // FsOpenFlags below
  uint16_t reserved = 0;
  uint32_t client = 0;  // data-plane id (for the shared buffer-cache stats)
  uint64_t tag = 0;     // request/response correlation
  // Causal trace context (src/sim/trace.h): allocated at the stub, carried
  // through every layer that services the request, echoed in the response.
  // Zero when no tracer is bound (untraced).
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  uint64_t ino = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  MemRef memory;  // zero-copy data buffer ("physical address", §4.3.1)
  char path[kRpcMaxPath + 1] = {};
  char path2[kRpcMaxPath + 1] = {};

  void SetPath(const std::string& p) {
    CHECK_LE(p.size(), kRpcMaxPath);
    std::memset(path, 0, sizeof(path));
    std::memcpy(path, p.data(), p.size());
  }
  void SetPath2(const std::string& p) {
    CHECK_LE(p.size(), kRpcMaxPath);
    std::memset(path2, 0, sizeof(path2));
    std::memcpy(path2, p.data(), p.size());
  }
  std::string Path() const { return std::string(path); }
  std::string Path2() const { return std::string(path2); }
};

// O_BUFFER (§4.3.2): force buffered (host-staged) I/O for this file.
inline constexpr uint8_t kFsFlagBuffered = 1u << 0;

struct FsResponse {
  uint64_t tag = 0;
  uint64_t trace_id = 0;     // echoed from the request by the RPC server
  uint64_t parent_span = 0;
  ErrorCode error = ErrorCode::kOk;
  uint8_t reserved[7] = {};
  uint64_t value = 0;  // ino, byte count, etc.
  FileStat stat;       // for kStat
};

// Readdir is zero-copy like read: the request's MemRef points at
// co-processor memory where the proxy writes an array of Dirent rows;
// the response's `value` is the row count (offset/length select a window,
// enabling chunked listings of huge directories).

// ---------------------------------------------------------------------------
// Network protocol
// ---------------------------------------------------------------------------

enum class NetOp : uint8_t {
  kSocket,
  kBind,
  kListen,
  kAccept,   // completion delivered via event channel
  kConnect,
  kSend,     // payload follows header in the outbound ring record
  kRecv,     // completion via event channel (data in inbound ring)
  kClose,
  kShutdown,
  kSetsockopt,
};

struct NetRequest {
  NetOp op = NetOp::kSocket;
  uint8_t reserved[3] = {};
  uint32_t client = 0;
  uint64_t tag = 0;
  uint64_t trace_id = 0;     // causal trace context (see FsRequest)
  uint64_t parent_span = 0;
  int64_t sock = -1;     // stub-side socket handle
  uint32_t addr = 0;     // IPv4-style address (simulated)
  uint16_t port = 0;
  uint16_t backlog = 0;
  uint64_t length = 0;   // send length
  uint32_t option = 0;
};

struct NetResponse {
  uint64_t tag = 0;
  uint64_t trace_id = 0;     // echoed from the request by the RPC server
  uint64_t parent_span = 0;
  ErrorCode error = ErrorCode::kOk;
  uint8_t reserved[7] = {};
  int64_t value = 0;  // new socket handle / byte count
};

// Event notification messages (§4.4.2): delivered over the inbound ring.
enum class NetEventKind : uint8_t {
  kAccepted,  // new client connection on a listening socket
  kData,      // new data arrival for recv (payload follows the header)
  kPeerClosed,
  kBatch,     // vectored push: several encoded events ride one ring record
};

struct NetEvent {
  NetEventKind kind = NetEventKind::kData;
  uint8_t reserved[3] = {};
  uint32_t length = 0;   // payload bytes following this header
  int64_t sock = -1;     // destination stub-side socket
  int64_t new_sock = -1; // for kAccepted
  uint32_t peer_addr = 0;
  uint16_t peer_port = 0;
  // Coalescing (GSO/GRO analogue, DESIGN.md §5.5). For kData: 0 means the
  // payload is one message whose context is in this header (the legacy
  // layout, bit-identical); N >= 1 means the payload starts with N
  // NetSegment descriptors (src/net/net_frame.h) followed by their
  // concatenated message bytes. For kBatch: the number of sub-records.
  uint16_t segments = 0;
  // Causal trace context (see FsRequest): kData events carry the context of
  // the request they belong to, so data-ring queue waits and the stub's
  // dispatch attribute to the right trace. Zero for untraced events and for
  // connection lifecycle events (kAccepted / kPeerClosed).
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

// ---------------------------------------------------------------------------
// POD (de)serialization helpers
// ---------------------------------------------------------------------------

template <typename T>
std::vector<uint8_t> EncodePod(const T& value) {
  std::vector<uint8_t> out(sizeof(T));
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}

template <typename T>
T DecodePod(std::span<const uint8_t> bytes) {
  CHECK_GE(bytes.size(), sizeof(T));
  T value;
  std::memcpy(&value, bytes.data(), sizeof(T));
  return value;
}

// Encodes a header immediately followed by a payload (used by kSend /
// kData messages whose data travels inside the ring).
template <typename T>
std::vector<uint8_t> EncodePodWithPayload(const T& header,
                                          std::span<const uint8_t> payload) {
  std::vector<uint8_t> out(sizeof(T) + payload.size());
  std::memcpy(out.data(), &header, sizeof(T));
  if (!payload.empty()) {
    std::memcpy(out.data() + sizeof(T), payload.data(), payload.size());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Checksummed RPC frames
// ---------------------------------------------------------------------------
//
// When any fault point is armed, fixed-size RPC request/response frames
// carry an 8-byte FNV-1a trailer so injected corruption is detected and the
// frame dropped instead of decoded (the retry layer then recovers via
// timeout). With no faults armed the trailer is omitted entirely, keeping
// frame sizes — and therefore ring copy times and schedules — bit-identical
// to a build without fault support. DecodeFrame distinguishes the two cases
// by frame size, which is unambiguous because these frames are fixed-size
// PODs (payload-carrying messages use EncodePodWithPayload, not this path).

inline uint64_t FrameChecksum(std::span<const uint8_t> bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

template <typename T>
std::vector<uint8_t> EncodeFrame(const T& value) {
  std::vector<uint8_t> out = EncodePod(value);
  if (Faults().any_armed()) {
    uint64_t sum = FrameChecksum(out);
    const auto* p = reinterpret_cast<const uint8_t*>(&sum);
    out.insert(out.end(), p, p + sizeof(sum));
  }
  return out;
}

// Returns nullopt for a malformed or checksum-failing frame.
template <typename T>
std::optional<T> DecodeFrame(std::span<const uint8_t> bytes) {
  if (bytes.size() == sizeof(T)) {
    return DecodePod<T>(bytes);
  }
  if (bytes.size() != sizeof(T) + sizeof(uint64_t)) {
    return std::nullopt;
  }
  uint64_t sum = 0;
  std::memcpy(&sum, bytes.data() + sizeof(T), sizeof(sum));
  if (FrameChecksum(bytes.subspan(0, sizeof(T))) != sum) {
    return std::nullopt;
  }
  return DecodePod<T>(bytes.subspan(0, sizeof(T)));
}

}  // namespace solros

#endif  // SOLROS_SRC_RPC_MESSAGES_H_
