// Request/response RPC over a SimRing pair.
//
// The data-plane stub is the client; the control-plane proxy is the server
// (§4: "the data-plane OS is a minimal RPC stub that calls several OS
// services present in the control-plane OS"). Master ring placement follows
// §4.3.1: both RPC rings are created at the co-processor ("RPC operations
// by a co-processor are local memory operations; meanwhile, the host pulls
// requests and pushes their corresponding results across the PCIe").
//
// Multiple outstanding calls are supported: each call carries a tag; a pump
// task on the client dispatches responses to per-tag waiters, and the
// server pump spawns one handler task per request.
#ifndef SOLROS_SRC_RPC_RPC_H_
#define SOLROS_SRC_RPC_RPC_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/base/logging.h"
#include "src/base/status.h"
#include "src/rpc/messages.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/transport/sim_ring.h"

namespace solros {

// Client end: Call() serializes the request, sends it on `request_ring`,
// and suspends until the matching response arrives on `response_ring`.
template <typename Request, typename Response>
class RpcClient {
 public:
  RpcClient(Simulator* sim, SimRing* request_ring, SimRing* response_ring)
      : sim_(sim),
        request_ring_(request_ring),
        response_ring_(response_ring) {}

  // Starts the response pump; call once after construction.
  void Start() { Spawn(*sim_, Pump(this)); }

  void Stop() {
    stopping_ = true;
    response_ring_->Close();
  }

  Task<Result<Response>> Call(Request request) {
    uint64_t tag = next_tag_++;
    request.tag = tag;
    Waiter waiter(sim_);
    waiters_[tag] = &waiter;
    Status sent = co_await request_ring_->Send(
        std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&request),
                                 sizeof(request)));
    if (!sent.ok()) {
      waiters_.erase(tag);
      co_return sent;
    }
    while (!waiter.ready) {
      co_await waiter.cond.Wait();
    }
    waiters_.erase(tag);
    co_return waiter.response;
  }

  uint64_t calls_completed() const { return completed_; }

 private:
  struct Waiter {
    explicit Waiter(Simulator* sim) : cond(sim) {}
    Condition cond;
    Response response;
    bool ready = false;
  };

  static Task<void> Pump(RpcClient* self) {
    while (true) {
      auto message = co_await self->response_ring_->Receive();
      if (!message.ok()) {
        break;  // ring closed
      }
      Response response = DecodePod<Response>(*message);
      auto it = self->waiters_.find(response.tag);
      if (it == self->waiters_.end()) {
        LOG(WARNING) << "rpc response with unknown tag " << response.tag;
        continue;
      }
      it->second->response = response;
      it->second->ready = true;
      it->second->cond.NotifyAll();
      ++self->completed_;
    }
  }

  Simulator* sim_;
  SimRing* request_ring_;
  SimRing* response_ring_;
  uint64_t next_tag_ = 1;
  uint64_t completed_ = 0;
  bool stopping_ = false;
  std::map<uint64_t, Waiter*> waiters_;
};

// Server end: Serve() pumps requests and spawns `handler` per request; the
// handler returns the response (with .tag already echoed by this layer).
template <typename Request, typename Response>
class RpcServer {
 public:
  // The handler may suspend (it runs as its own task).
  using Handler = std::function<Task<Response>(Request)>;

  RpcServer(Simulator* sim, SimRing* request_ring, SimRing* response_ring,
            Handler handler)
      : sim_(sim),
        request_ring_(request_ring),
        response_ring_(response_ring),
        handler_(std::move(handler)) {}

  void Start() { Spawn(*sim_, Pump(this)); }

  void Stop() { request_ring_->Close(); }

  uint64_t requests_served() const { return served_; }

 private:
  static Task<void> HandleOne(RpcServer* self, Request request) {
    uint64_t tag = request.tag;
    Response response = co_await self->handler_(std::move(request));
    response.tag = tag;
    Status sent = co_await self->response_ring_->Send(
        std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&response),
                                 sizeof(response)));
    if (!sent.ok()) {
      LOG(WARNING) << "rpc response send failed: " << sent.ToString();
    }
    ++self->served_;
  }

  static Task<void> Pump(RpcServer* self) {
    while (true) {
      auto message = co_await self->request_ring_->Receive();
      if (!message.ok()) {
        break;  // ring closed
      }
      Request request = DecodePod<Request>(*message);
      Spawn(*self->sim_, HandleOne(self, std::move(request)));
    }
  }

  Simulator* sim_;
  SimRing* request_ring_;
  SimRing* response_ring_;
  Handler handler_;
  uint64_t served_ = 0;
};

}  // namespace solros

#endif  // SOLROS_SRC_RPC_RPC_H_
