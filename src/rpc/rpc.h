// Request/response RPC over a SimRing pair.
//
// The data-plane stub is the client; the control-plane proxy is the server
// (§4: "the data-plane OS is a minimal RPC stub that calls several OS
// services present in the control-plane OS"). Master ring placement follows
// §4.3.1: both RPC rings are created at the co-processor ("RPC operations
// by a co-processor are local memory operations; meanwhile, the host pulls
// requests and pushes their corresponding results across the PCIe").
//
// Multiple outstanding calls are supported: each call carries a tag; a pump
// task on the client dispatches responses to per-tag waiters, and the
// server pump spawns one handler task per request.
#ifndef SOLROS_SRC_RPC_RPC_H_
#define SOLROS_SRC_RPC_RPC_H_

#include <concepts>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/base/fault.h"
#include "src/base/logging.h"
#include "src/base/units.h"
#include "src/base/metrics.h"
#include "src/base/status.h"
#include "src/rpc/messages.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/trace.h"
#include "src/transport/sim_ring.h"

namespace solros {

// Wire messages that carry a causal trace context (FsRequest/FsResponse,
// NetRequest/NetResponse). The RPC layer stays generic: messages without
// these fields simply skip the queue-wait spans and context echo.
template <typename T>
concept HasTraceContext = requires(T t) {
  { t.trace_id } -> std::convertible_to<uint64_t>;
  { t.parent_span } -> std::convertible_to<uint64_t>;
};

// Bounded-retry policy for the data-plane stubs. Timeouts and backoff are
// engaged only while fault injection is armed; fault-free runs make exactly
// one attempt with no timer, preserving bit-identical schedules.
struct RpcRetryOptions {
  int max_attempts = 4;              // total attempts including the first
  Nanos timeout = Milliseconds(2);   // per-attempt call timeout
  Nanos backoff = Microseconds(20);  // first retry delay; doubles per retry
};

// Client end: Call() serializes the request, sends it on `request_ring`,
// and suspends until the matching response arrives on `response_ring`.
template <typename Request, typename Response>
class RpcClient {
 public:
  RpcClient(Simulator* sim, SimRing* request_ring, SimRing* response_ring)
      : sim_(sim),
        request_ring_(request_ring),
        response_ring_(response_ring) {}

  // Starts the response pump; call once after construction.
  void Start() { Spawn(*sim_, Pump(this)); }

  void Stop() {
    stopping_ = true;
    response_ring_->Close();
  }

  // With `timeout` > 0 the call resolves kTimedOut once that much sim time
  // passes without a response (the tag stays retired, so a late response is
  // counted as stale and dropped). Callers pass a timeout only when fault
  // injection is armed: an armed run may drop frames, and a pending timer
  // at shutdown would perturb fault-free schedules.
  Task<Result<Response>> Call(Request request, Nanos timeout = 0) {
    uint64_t tag = next_tag_++;
    request.tag = tag;
    Waiter waiter(sim_);
    waiters_[tag] = &waiter;
    std::vector<uint8_t> frame = EncodeFrame(request);
    static FaultPoint* const corrupt =
        Faults().GetPoint("rpc.corrupt.request");
    if (corrupt->ShouldFire()) {
      static Counter* const corrupted =
          MetricRegistry::Default().GetCounter("rpc.corrupted_requests");
      corrupted->Increment();
      TRACE_INSTANT(sim_, "rpc", "fault.rpc.corrupt_request");
      frame[sizeof(Request) / 2] ^= 0xff;
    }
    Status sent = co_await request_ring_->Send(frame);
    if (!sent.ok()) {
      waiters_.erase(tag);
      co_return sent;
    }
    if (timeout > 0) {
      Spawn(*sim_, TimeoutKick(this, tag, timeout));
    }
    while (!waiter.ready) {
      co_await waiter.cond.Wait();
    }
    waiters_.erase(tag);
    if (waiter.timed_out) {
      co_return TimedOutError("rpc call timed out");
    }
    co_return waiter.response;
  }

  uint64_t calls_completed() const { return completed_; }

 private:
  struct Waiter {
    explicit Waiter(Simulator* sim) : cond(sim) {}
    Condition cond;
    Response response;
    bool ready = false;
    bool timed_out = false;
  };

  // Looks the waiter up by tag at fire time: the Waiter lives on Call's
  // coroutine frame, so holding a pointer across the delay would dangle if
  // the response won the race.
  static Task<void> TimeoutKick(RpcClient* self, uint64_t tag,
                                Nanos timeout) {
    co_await Delay(timeout);
    auto it = self->waiters_.find(tag);
    if (it == self->waiters_.end() || it->second->ready) {
      co_return;
    }
    static Counter* const timeouts =
        MetricRegistry::Default().GetCounter("rpc.call_timeouts");
    timeouts->Increment();
    TRACE_INSTANT(self->sim_, "rpc", "rpc.call_timeout");
    it->second->timed_out = true;
    it->second->ready = true;
    it->second->cond.NotifyAll();
  }

  static Task<void> Pump(RpcClient* self) {
    while (true) {
      auto message = co_await self->response_ring_->Receive();
      if (!message.ok()) {
        break;  // ring closed
      }
      std::optional<Response> response = DecodeFrame<Response>(*message);
      if (!response.has_value()) {
        static Counter* const dropped = MetricRegistry::Default().GetCounter(
            "rpc.corrupt_responses_dropped");
        dropped->Increment();
        TRACE_INSTANT(self->sim_, "rpc", "rpc.corrupt_response_dropped");
        continue;  // retry layer recovers via timeout
      }
      // Retroactive queue-wait span: how long the decoded response sat
      // ready in the ring before this pump claimed it (the ring only keeps
      // stamps while a tracer is bound; untraced responses carry id 0).
      if constexpr (HasTraceContext<Response>) {
        Tracer* tracer = self->sim_->tracer();
        if (tracer != nullptr && response->trace_id != 0) {
          auto stamp = self->response_ring_->last_dequeue_stamp();
          if (stamp.has_value()) {
            tracer->RecordSpan(
                "ring", "rpc.queue.resp", stamp->ready_at, stamp->dequeue_at,
                TraceContext{response->trace_id, response->parent_span});
          }
        }
      }
      auto it = self->waiters_.find(response->tag);
      if (it == self->waiters_.end()) {
        // Usually a response that lost the race with its call's timeout.
        static Counter* const stale =
            MetricRegistry::Default().GetCounter("rpc.stale_responses");
        stale->Increment();
        LOG(DEBUG) << "rpc response with unknown tag " << response->tag;
        continue;
      }
      it->second->response = *response;
      it->second->ready = true;
      it->second->cond.NotifyAll();
      ++self->completed_;
    }
  }

  Simulator* sim_;
  SimRing* request_ring_;
  SimRing* response_ring_;
  uint64_t next_tag_ = 1;
  uint64_t completed_ = 0;
  bool stopping_ = false;
  std::map<uint64_t, Waiter*> waiters_;
};

// Server end: Serve() pumps requests and spawns `handler` per request; the
// handler returns the response (with .tag already echoed by this layer).
template <typename Request, typename Response>
class RpcServer {
 public:
  // The handler may suspend (it runs as its own task).
  using Handler = std::function<Task<Response>(Request)>;

  RpcServer(Simulator* sim, SimRing* request_ring, SimRing* response_ring,
            Handler handler)
      : sim_(sim),
        request_ring_(request_ring),
        response_ring_(response_ring),
        handler_(std::move(handler)) {}

  void Start() { Spawn(*sim_, Pump(this)); }

  void Stop() { request_ring_->Close(); }

  uint64_t requests_served() const { return served_; }

 private:
  static Task<void> HandleOne(RpcServer* self, Request request) {
    uint64_t tag = request.tag;
    uint64_t trace_id = 0;
    uint64_t parent_span = 0;
    if constexpr (HasTraceContext<Request>) {
      trace_id = request.trace_id;
      parent_span = request.parent_span;
    }
    Response response = co_await self->handler_(std::move(request));
    response.tag = tag;
    // Echo the trace context so the client pump can attribute the
    // response's ring queue wait to the right request.
    if constexpr (HasTraceContext<Response>) {
      response.trace_id = trace_id;
      response.parent_span = parent_span;
    }
    static FaultPoint* const drop = Faults().GetPoint("rpc.drop.response");
    if (drop->ShouldFire()) {
      static Counter* const drops =
          MetricRegistry::Default().GetCounter("rpc.dropped_responses");
      drops->Increment();
      TRACE_INSTANT(self->sim_, "rpc", "fault.rpc.drop_response");
      ++self->served_;
      co_return;  // the client recovers via its call timeout
    }
    std::vector<uint8_t> frame = EncodeFrame(response);
    static FaultPoint* const corrupt =
        Faults().GetPoint("rpc.corrupt.response");
    if (corrupt->ShouldFire()) {
      static Counter* const corrupted =
          MetricRegistry::Default().GetCounter("rpc.corrupted_responses");
      corrupted->Increment();
      TRACE_INSTANT(self->sim_, "rpc", "fault.rpc.corrupt_response");
      frame[sizeof(Response) / 2] ^= 0xff;
    }
    Status sent = co_await self->response_ring_->Send(frame);
    if (!sent.ok()) {
      LOG(WARNING) << "rpc response send failed: " << sent.ToString();
    }
    ++self->served_;
  }

  static Task<void> Pump(RpcServer* self) {
    while (true) {
      auto message = co_await self->request_ring_->Receive();
      if (!message.ok()) {
        break;  // ring closed
      }
      static FaultPoint* const drop = Faults().GetPoint("rpc.drop.request");
      if (drop->ShouldFire()) {
        static Counter* const drops =
            MetricRegistry::Default().GetCounter("rpc.dropped_requests");
        drops->Increment();
        TRACE_INSTANT(self->sim_, "rpc", "fault.rpc.drop_request");
        continue;
      }
      std::optional<Request> request = DecodeFrame<Request>(*message);
      if (!request.has_value()) {
        static Counter* const dropped = MetricRegistry::Default().GetCounter(
            "rpc.corrupt_requests_dropped");
        dropped->Increment();
        TRACE_INSTANT(self->sim_, "rpc", "rpc.corrupt_request_dropped");
        continue;
      }
      // Retroactive queue-wait span (see the client pump's counterpart).
      if constexpr (HasTraceContext<Request>) {
        Tracer* tracer = self->sim_->tracer();
        if (tracer != nullptr && request->trace_id != 0) {
          auto stamp = self->request_ring_->last_dequeue_stamp();
          if (stamp.has_value()) {
            tracer->RecordSpan(
                "ring", "rpc.queue.req", stamp->ready_at, stamp->dequeue_at,
                TraceContext{request->trace_id, request->parent_span});
          }
        }
      }
      Spawn(*self->sim_, HandleOne(self, std::move(*request)));
    }
  }

  Simulator* sim_;
  SimRing* request_ring_;
  SimRing* response_ring_;
  Handler handler_;
  uint64_t served_ = 0;
};

}  // namespace solros

#endif  // SOLROS_SRC_RPC_RPC_H_
