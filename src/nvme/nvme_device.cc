#include "src/nvme/nvme_device.h"

#include <cstring>
#include <utility>

#include "src/base/fault.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/sim/trace.h"

namespace solros {

NvmeDevice::NvmeDevice(Simulator* sim, PcieFabric* fabric,
                       const HwParams& params, DeviceId self,
                       uint64_t capacity_bytes, Processor* interrupt_cpu)
    : sim_(sim),
      fabric_(fabric),
      params_(params),
      self_(self),
      capacity_(capacity_bytes),
      interrupt_cpu_(interrupt_cpu),
      flash_(capacity_bytes, 0),
      queue_slots_(sim, params.nvme_queue_depth) {
  CHECK(fabric->TypeOf(self) == DeviceType::kNvme);
  CHECK_EQ(capacity_bytes % params.nvme_block_size, 0u);
  CHECK(interrupt_cpu != nullptr);
  if (sim->telemetry() != nullptr) {
    use_ = sim->telemetry()->GetSeries(fabric->NameOf(self));
  }
}

Status NvmeDevice::Validate(const NvmeCommand& command) const {
  if (command.op == NvmeCommand::Op::kFlush) {
    if (command.nblocks != 0 || command.target.valid()) {
      return InvalidArgumentError("nvme flush carries no range or target");
    }
    return OkStatus();
  }
  if (command.nblocks == 0) {
    return InvalidArgumentError("zero-length nvme command");
  }
  if (command.lba + command.nblocks > block_count()) {
    return OutOfRangeError("nvme command beyond device capacity");
  }
  if (!command.target.valid() ||
      command.target.length !=
          uint64_t{command.nblocks} * params_.nvme_block_size) {
    return InvalidArgumentError("nvme target length mismatch");
  }
  return OkStatus();
}

void NvmeDevice::LosePower() {
  // Reverse order: overlapping writes to the same range roll back to the
  // bytes that were stable at the last Flush.
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    std::memcpy(flash_.data() + it->flash_off, it->pre.data(),
                it->pre.size());
  }
  undo_.clear();
  crashed_ = true;
}

Task<Status> NvmeDevice::Execute(NvmeCommand command, TraceContext ctx) {
  static Gauge* const depth =
      MetricRegistry::Default().GetGauge("nvme.queue.depth");
  static Counter* const commands =
      MetricRegistry::Default().GetCounter("nvme.commands");
  static LatencyHistogram* const cmd_ns =
      MetricRegistry::Default().GetHistogram("nvme.cmd_ns");
  SimTime arrived = sim_->now();
  if (use_ != nullptr) {
    use_->QueueDelta(arrived, +1);
  }
  co_await queue_slots_.Acquire();
  depth->Add(1);
  commands->Increment();
  SimTime cmd_start = sim_->now();
  ScopedSpan span(sim_, "nvme", "nvme.cmd", ctx);

  // Injected command faults fire before any data is transferred, so a failed
  // command never partially applies (real controllers report such errors via
  // the completion queue before acknowledging the data).
  static FaultPoint* const cmd_timeout = Faults().GetPoint("nvme.cmd.timeout");
  static FaultPoint* const cmd_fail = Faults().GetPoint("nvme.cmd.fail");
  if (cmd_timeout->ShouldFire()) {
    static Counter* const timeouts =
        MetricRegistry::Default().GetCounter("nvme.cmd.timeouts");
    timeouts->Increment();
    TRACE_INSTANT(sim_, "nvme", "fault.nvme.timeout");
    // The command holds its queue slot for the full timeout window.
    co_await Delay(params_.nvme_timeout);
    depth->Add(-1);
    queue_slots_.Release();
    if (use_ != nullptr) {
      use_->QueueDelta(sim_->now(), -1);
      use_->AddError(sim_->now());
    }
    co_return TimedOutError("injected nvme command timeout");
  }
  if (cmd_fail->ShouldFire()) {
    static Counter* const failures =
        MetricRegistry::Default().GetCounter("nvme.cmd.failures");
    failures->Increment();
    TRACE_INSTANT(sim_, "nvme", "fault.nvme.fail");
    depth->Add(-1);
    queue_slots_.Release();
    if (use_ != nullptr) {
      use_->QueueDelta(sim_->now(), -1);
      use_->AddError(sim_->now());
    }
    co_return IoError("injected nvme media error");
  }

  static FaultPoint* const powercut = Faults().GetPoint("nvme.powercut");
  static FaultPoint* const tornwrite = Faults().GetPoint("nvme.tornwrite");
  // A crashed device completes nothing until PowerCycle(). The planned
  // crash errors use kFailedPrecondition precisely so the block store's
  // retry layer does not treat them as transient.
  if (crashed_) {
    depth->Add(-1);
    queue_slots_.Release();
    if (use_ != nullptr) {
      use_->QueueDelta(sim_->now(), -1);
      use_->AddError(sim_->now());
    }
    co_return FailedPreconditionError("nvme device lost power");
  }

  if (command.op == NvmeCommand::Op::kFlush) {
    static Counter* const flushes =
        MetricRegistry::Default().GetCounter("nvme.flush.commands");
    static LatencyHistogram* const flush_ns =
        MetricRegistry::Default().GetHistogram("nvme.flush.cmd_ns");
    if (powercut->ShouldFire()) {
      static Counter* const powercuts =
          MetricRegistry::Default().GetCounter("nvme.powercuts");
      powercuts->Increment();
      TRACE_INSTANT(sim_, "nvme", "fault.nvme.powercut");
      LosePower();
      depth->Add(-1);
      queue_slots_.Release();
      if (use_ != nullptr) {
        use_->QueueDelta(sim_->now(), -1);
        use_->AddError(sim_->now());
      }
      co_return FailedPreconditionError("injected nvme power cut");
    }
    co_await Delay(params_.nvme_flush_latency);
    if (crashed_) {
      // Another in-flight command's cut landed during the drain: the
      // flush must not acknowledge durability it no longer provides.
      depth->Add(-1);
      queue_slots_.Release();
      if (use_ != nullptr) {
        use_->QueueDelta(sim_->now(), -1);
        use_->AddError(sim_->now());
      }
      co_return FailedPreconditionError("nvme device lost power");
    }
    undo_.clear();  // the write buffer reached stable media
    flushes->Increment();
    flush_ns->Record(sim_->now() - cmd_start);
    ++commands_completed_;
    cmd_ns->Record(sim_->now() - cmd_start);
    depth->Add(-1);
    queue_slots_.Release();
    if (use_ != nullptr) {
      use_->QueueDelta(sim_->now(), -1);
      use_->CompleteOp(sim_->now(), cmd_start - arrived);
    }
    co_return OkStatus();
  }

  uint64_t bytes = uint64_t{command.nblocks} * params_.nvme_block_size;
  uint64_t flash_off = command.lba * params_.nvme_block_size;
  // P2P when the data buffer is not host DRAM: the SSD's DMA engine then
  // targets the co-processor's system-mapped window directly.
  bool p2p = fabric_->TypeOf(command.target.device()) != DeviceType::kHost;

  // Flash access latency overlaps across queued commands; sustained
  // bandwidth is enforced by the device's fabric link, whose per-direction
  // rates are the flash read/write ceilings (flash and wire pipeline).
  if (command.op == NvmeCommand::Op::kRead) {
    co_await Delay(params_.nvme_read_latency);
    co_await fabric_->Transfer(self_, command.target.device(), bytes,
                               /*initiator_rate=*/0.0, p2p);
    if (crashed_) {
      // The cut fired while this read was in flight.
      depth->Add(-1);
      queue_slots_.Release();
      if (use_ != nullptr) {
        use_->QueueDelta(sim_->now(), -1);
        use_->AddError(sim_->now());
      }
      co_return FailedPreconditionError("nvme device lost power");
    }
    std::memcpy(command.target.span().data(), flash_.data() + flash_off,
                bytes);
    bytes_read_ += bytes;
    static Counter* const read_bytes =
        MetricRegistry::Default().GetCounter("nvme.bytes_read");
    read_bytes->Increment(bytes);
  } else {
    co_await Delay(params_.nvme_write_latency);
    co_await fabric_->Transfer(command.target.device(), self_, bytes,
                               /*initiator_rate=*/0.0, p2p);
    if (crashed_) {
      // The cut fired while this write was in flight: its data never
      // reached the write buffer.
      depth->Add(-1);
      queue_slots_.Release();
      if (use_ != nullptr) {
        use_->QueueDelta(sim_->now(), -1);
        use_->AddError(sim_->now());
      }
      co_return FailedPreconditionError("nvme device lost power");
    }
    // While a crash fault is armed, remember the pre-image so a later cut
    // can roll this (still volatile) write back. armed() is a relaxed
    // load, so fault-free runs pay one branch here.
    if (powercut->armed() || tornwrite->armed()) {
      undo_.push_back(UndoEntry{
          flash_off,
          {flash_.begin() + flash_off, flash_.begin() + flash_off + bytes}});
    }
    if (powercut->ShouldFire()) {
      static Counter* const powercuts =
          MetricRegistry::Default().GetCounter("nvme.powercuts");
      powercuts->Increment();
      TRACE_INSTANT(sim_, "nvme", "fault.nvme.powercut");
      LosePower();
      depth->Add(-1);
      queue_slots_.Release();
      if (use_ != nullptr) {
        use_->QueueDelta(sim_->now(), -1);
        use_->AddError(sim_->now());
      }
      co_return FailedPreconditionError("injected nvme power cut");
    }
    if (tornwrite->ShouldFire()) {
      static Counter* const tornwrites =
          MetricRegistry::Default().GetCounter("nvme.tornwrites");
      tornwrites->Increment();
      TRACE_INSTANT(sim_, "nvme", "fault.nvme.tornwrite");
      // Lose everything volatile, then persist a deterministic
      // sector-aligned prefix of the interrupted command — the classic
      // torn write a checksummed commit record must catch.
      uint64_t sectors = bytes / 512;
      uint64_t h = 0xcbf29ce484222325ull;
      for (uint64_t v : {Faults().seed(), tornwrite->fires(), command.lba}) {
        for (int i = 0; i < 8; ++i) {
          h = (h ^ ((v >> (8 * i)) & 0xff)) * 0x100000001b3ull;
        }
      }
      uint64_t torn_bytes = (h % (sectors + 1)) * 512;
      LosePower();
      std::memcpy(flash_.data() + flash_off, command.target.span().data(),
                  torn_bytes);
      depth->Add(-1);
      queue_slots_.Release();
      if (use_ != nullptr) {
        use_->QueueDelta(sim_->now(), -1);
        use_->AddError(sim_->now());
      }
      co_return FailedPreconditionError("injected nvme torn write");
    }
    std::memcpy(flash_.data() + flash_off, command.target.span().data(),
                bytes);
    bytes_written_ += bytes;
    static Counter* const written_bytes =
        MetricRegistry::Default().GetCounter("nvme.bytes_written");
    written_bytes->Increment(bytes);
  }
  ++commands_completed_;
  cmd_ns->Record(sim_->now() - cmd_start);
  depth->Add(-1);
  queue_slots_.Release();
  if (use_ != nullptr) {
    use_->QueueDelta(sim_->now(), -1);
    use_->CompleteOp(sim_->now(), cmd_start - arrived);
  }
  co_return OkStatus();
}

namespace {

Task<void> ExecuteJoined(Task<Status> op, Status* out,
                         WaitGroup* wg) {
  Status status = co_await std::move(op);
  if (!status.ok() && out->ok()) {
    *out = status;
  }
  wg->Done();
}

}  // namespace

Task<Status> NvmeDevice::Submit(std::vector<NvmeCommand> commands,
                                bool coalesce, Processor* submitter_cpu,
                                TraceContext ctx) {
  if (commands.empty()) {
    co_return OkStatus();
  }
  for (const NvmeCommand& command : commands) {
    Status status = Validate(command);
    if (!status.ok()) {
      co_return status;
    }
  }

  static Counter* const batches =
      MetricRegistry::Default().GetCounter("nvme.batches");
  static Counter* const doorbell_count =
      MetricRegistry::Default().GetCounter("nvme.doorbells");
  static Counter* const interrupt_count =
      MetricRegistry::Default().GetCounter("nvme.interrupts");
  batches->Increment();
  // The batch span is the "device time" unit of stage attribution; the
  // per-command spans below nest under it in the causal tree.
  ScopedSpan span(sim_, "nvme", "nvme.batch", ctx);
  TraceContext batch_ctx = span.context();

  Status first_error;
  WaitGroup wg(sim_);
  uint64_t doorbells = coalesce ? 1 : commands.size();
  uint64_t interrupts = coalesce ? 1 : commands.size();

  // Doorbell MMIO writes from the submitting CPU.
  for (uint64_t i = 0; i < doorbells; ++i) {
    ++doorbells_;
    doorbell_count->Increment();
    if (submitter_cpu != nullptr) {
      co_await submitter_cpu->Compute(params_.nvme_doorbell_cost);
    }
  }

  for (NvmeCommand& command : commands) {
    wg.Add(1);
    Spawn(*sim_,
          ExecuteJoined(Execute(command, batch_ctx), &first_error, &wg));
  }
  co_await wg.Wait();

  // Completion interrupts serviced by the host CPU (§5: coalescing
  // "reduces the number of interrupts raised by ringing the doorbell").
  for (uint64_t i = 0; i < interrupts; ++i) {
    ++interrupts_;
    interrupt_count->Increment();
    co_await interrupt_cpu_->Compute(params_.nvme_interrupt_cost);
  }
  co_return first_error;
}

Task<Status> NvmeDevice::SubmitOne(NvmeCommand command,
                                   Processor* submitter_cpu) {
  std::vector<NvmeCommand> commands;
  commands.push_back(command);
  co_return co_await Submit(std::move(commands), /*coalesce=*/false,
                            submitter_cpu);
}

}  // namespace solros
