// Queue-level NVMe SSD model (Intel 750 calibration).
//
// Mirrors the mechanisms the paper's file-system service manipulates (§5):
//
//  * commands carry a *target memory reference* in any device's memory —
//    setting it to co-processor memory is exactly the paper's P2P path
//    (the SSD's DMA engine reads/writes Phi memory through the system-
//    mapped PCIe window); setting it to host memory is the buffered path;
//  * a doorbell write is an MMIO transaction charged to the submitting CPU;
//  * command completion raises an interrupt charged to the host CPU;
//  * an I/O vector (the p2p_read/p2p_write ioctl of §5) executes N commands
//    with ONE doorbell and ONE interrupt — the coalescing that lets Solros
//    beat even the host at large block sizes (Fig. 1(a));
//  * flash has separate read/write bandwidth ceilings (2.4 / 1.2 GB/s) and
//    per-command access latency; data transfers move real bytes over the
//    PCIe fabric, so cross-NUMA P2P is naturally throttled by the fabric.
#ifndef SOLROS_SRC_NVME_NVME_DEVICE_H_
#define SOLROS_SRC_NVME_NVME_DEVICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/hw/dma.h"
#include "src/hw/fabric.h"
#include "src/hw/memory.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/sim/resource.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/trace.h"

namespace solros {

struct NvmeCommand {
  // kFlush drains the device's volatile write buffer to stable flash; it
  // carries no LBA range or target (nblocks must be 0, target unset).
  enum class Op : uint8_t { kRead, kWrite, kFlush };
  Op op = Op::kRead;
  uint64_t lba = 0;       // logical block address
  uint32_t nblocks = 0;   // in device blocks
  MemRef target;          // length must equal nblocks * block_size
};

class NvmeDevice {
 public:
  // `interrupt_cpu` is the processor that services this device's MSI-X
  // interrupts (the host in every Solros configuration — only the
  // control-plane OS touches I/O devices, §4).
  NvmeDevice(Simulator* sim, PcieFabric* fabric, const HwParams& params,
             DeviceId self, uint64_t capacity_bytes,
             Processor* interrupt_cpu);

  uint32_t block_size() const { return params_.nvme_block_size; }
  uint64_t block_count() const { return capacity_ / params_.nvme_block_size; }
  DeviceId device_id() const { return self_; }

  // Executes a batch of commands. With `coalesce` set, the batch costs one
  // doorbell (on `submitter_cpu`) and one completion interrupt; otherwise
  // every command pays both (the stock driver behaviour). Returns the first
  // error, kOk otherwise. Commands within a batch execute concurrently,
  // subject to queue depth and flash bandwidth. `ctx` is the originating
  // request's trace context: the batch span becomes its child and each
  // per-command span a grandchild (untraced when zero).
  Task<Status> Submit(std::vector<NvmeCommand> commands, bool coalesce,
                      Processor* submitter_cpu, TraceContext ctx = {});

  // Single-command convenience wrapper (always doorbell + interrupt).
  Task<Status> SubmitOne(NvmeCommand command, Processor* submitter_cpu);

  // Zero-cost flash access for test setup and mkfs bootstrap.
  std::span<uint8_t> RawFlash() { return {flash_.data(), flash_.size()}; }

  // Crash model. While the `nvme.powercut` / `nvme.tornwrite` fault points
  // are armed, every write records an undo image of the flash bytes it is
  // about to overwrite; a Flush clears the undo log (the write buffer
  // reached stable media). When a cut fires, the undo log is rolled back —
  // un-flushed writes vanish, exactly the volatile-write-cache loss a real
  // power failure causes — and the device rejects all further commands
  // until PowerCycle(). A torn-write cut additionally persists a
  // deterministic sector-aligned prefix of the interrupted command.
  bool crashed() const { return crashed_; }
  // "Plug it back in": clears the crashed state (flash keeps whatever
  // survived the cut). The mount-time journal replay runs after this.
  void PowerCycle() {
    crashed_ = false;
    undo_.clear();
  }

  uint64_t doorbells_rung() const { return doorbells_; }
  uint64_t interrupts_raised() const { return interrupts_; }
  uint64_t commands_completed() const { return commands_completed_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  // One undo record per write issued since the last Flush while a crash
  // fault is armed: the pre-image of the overwritten flash range.
  struct UndoEntry {
    uint64_t flash_off = 0;
    std::vector<uint8_t> pre;
  };

  Task<Status> Execute(NvmeCommand command, TraceContext ctx = {});
  Status Validate(const NvmeCommand& command) const;
  // Rolls back every write since the last Flush (reverse order) and marks
  // the device crashed.
  void LosePower();

  Simulator* sim_;
  PcieFabric* fabric_;
  HwParams params_;
  DeviceId self_;
  uint64_t capacity_;
  Processor* interrupt_cpu_;
  std::vector<uint8_t> flash_;

  Semaphore queue_slots_;
  // USE telemetry ("<device name>", e.g. "nvme0"): depth counts commands
  // from arrival (including queue-slot waiters) to completion.
  UseSeries* use_ = nullptr;

  uint64_t doorbells_ = 0;
  uint64_t interrupts_ = 0;
  uint64_t commands_completed_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;

  bool crashed_ = false;
  std::vector<UndoEntry> undo_;
};

}  // namespace solros

#endif  // SOLROS_SRC_NVME_NVME_DEVICE_H_
