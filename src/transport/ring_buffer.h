// The Solros transport ring buffer (§4.2, Fig. 5).
//
// A fixed-size byte ring carrying variable-size records between a producer
// port and a consumer port on different processors. The four design points
// of the paper are all here:
//
//  1. *Decoupled data transfer* (§4.2.2): Enqueue/Dequeue only reserve or
//     hand out a record slot and return a pointer into ring memory
//     (`rb_buf`); callers copy payload in parallel outside the queue
//     critical path and then flip the record state with SetReady/SetDone.
//
//  2. *Combining* (§4.2.3): concurrent callers enqueue request nodes onto an
//     MCS-style queue (one atomic_swap); the head node's thread becomes the
//     combiner and serves up to `combine_limit` requests, then hands the
//     role to the next waiter. Only two atomic instructions are required —
//     atomic_swap and compare_and_swap — matching the paper's minimal
//     hardware contract.
//
//  3. *Replicated control variables, lazily updated* (§4.2.4): the producer
//     owns the original `tail` and keeps a replica of `head`; the consumer
//     owns `head` (advanced by out-of-order SetDone reclamation) and keeps a
//     replica of `tail`. A replica is refreshed from the peer's original —
//     one PCIe transaction — at most once per combining batch, and originals
//     are published once per batch. The eager (non-replicated) ablation for
//     Fig. 9 keeps both originals on the master side and touches them every
//     operation.
//
//  4. *True circularity* (§5): ring memory is double-mapped
//     (MirrorBuffer), so a record overrunning the array end transparently
//     continues at the beginning — no explicit wrap checks.
//
// PCIe cost accounting: the structure itself is plain shared memory (it runs
// on real threads for the Fig. 8 scalability experiment); when one port is
// designated remote ("shadow" side of the paper's master/shadow pair), its
// control-variable refreshes/publications increment that port's transaction
// counters, which the simulator harness converts to time via the calibrated
// PCIe model.
//
// Record lifecycle: kFree -> (Enqueue) kReserved -> (SetReady) kReady ->
// (Dequeue) kConsuming -> (SetDone) kDone -> (reclaim) kFree. Records are
// handed out strictly in FIFO order; reclamation advances `head` over the
// longest done prefix.
#ifndef SOLROS_SRC_TRANSPORT_RING_BUFFER_H_
#define SOLROS_SRC_TRANSPORT_RING_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "src/transport/mirror_buffer.h"
#include "src/transport/spinlock.h"

namespace solros {

enum RbResult : int {
  kRbOk = 0,
  kRbWouldBlock = -1,  // EWOULDBLOCK: ring empty (dequeue) or full (enqueue)
  kRbInvalid = -2,     // record too large / malformed argument
};

enum class RingSide { kProducer, kConsumer };

struct RingBufferConfig {
  // Ring capacity in bytes; power of two, multiple of the page size.
  size_t capacity = 1 << 20;
  // Which port sits on the master (memory-local) side; the other port is
  // the shadow side and pays PCIe transactions for control-variable access.
  RingSide master_side = RingSide::kProducer;
  // Flat combining on/off (off = ticket-lock serialization; ablation).
  bool combining = true;
  // Lazy replicated control variables vs eager shared originals (Fig. 9).
  bool lazy_update = true;
  // Max requests served per combining batch before handoff.
  int combine_limit = 64;
};

// Per-port statistics; PCIe transaction counts feed the Fig. 9/10 benches.
struct RingPortStats {
  std::atomic<uint64_t> ops{0};
  std::atomic<uint64_t> would_block{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> remote_var_reads{0};
  std::atomic<uint64_t> remote_var_writes{0};
  std::atomic<uint64_t> bytes_copied{0};

  uint64_t remote_transactions() const {
    return remote_var_reads.load(std::memory_order_relaxed) +
           remote_var_writes.load(std::memory_order_relaxed);
  }
};

class RingBuffer {
 public:
  explicit RingBuffer(const RingBufferConfig& config);
  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  // -- Producer port (Fig. 5: rb_enqueue / rb_copy_to_rb_buf / rb_set_ready)
  // Reserves a record of `size` payload bytes; on kRbOk, *rb_buf points at
  // writable payload memory inside the ring. Non-blocking: kRbWouldBlock
  // when the ring is full.
  int Enqueue(uint32_t size, void** rb_buf);
  // Copies payload into a reserved record (callable concurrently from many
  // threads; this is the parallel data phase).
  void CopyToRbBuf(void* rb_buf, const void* data, uint32_t size);
  // Marks the record visible to the consumer.
  void SetReady(void* rb_buf);

  // -- Consumer port (rb_dequeue / rb_copy_from_rb_buf / rb_set_done) ------
  // Takes the oldest ready record; on kRbOk, *size and *rb_buf describe the
  // payload. kRbWouldBlock when the ring is empty (or the head record's
  // producer has not called SetReady yet).
  int Dequeue(uint32_t* size, void** rb_buf);
  void CopyFromRbBuf(void* data, const void* rb_buf, uint32_t size);
  // Releases the record for reuse; reclamation advances head over the
  // longest contiguous done prefix (out-of-order SetDone is fine).
  void SetDone(void* rb_buf);

  // Convenience wrappers: reserve+copy+ready / take+copy+done in one call.
  int EnqueueCopy(const void* data, uint32_t size);
  int DequeueCopy(void* data, uint32_t max_size, uint32_t* size);

  // -- Introspection ---------------------------------------------------------
  size_t capacity() const { return mirror_.capacity(); }
  // Bytes currently reserved-or-in-flight (approximate under concurrency).
  uint64_t used_bytes() const;
  bool Empty() const;
  const RingPortStats& producer_stats() const { return producer_stats_; }
  const RingPortStats& consumer_stats() const { return consumer_stats_; }
  const RingBufferConfig& config() const { return config_; }

  // Largest admissible payload for a ring of `capacity`.
  static uint32_t MaxPayload(size_t capacity);

 private:
  struct ReqNode;
  struct BatchContext;

  int CombiningOp(RingSide side, ReqNode* node);
  void RunCombiner(RingSide side, ReqNode* self);
  void ProcessOne(RingSide side, ReqNode* node, BatchContext* batch);
  void ProcessEnqueue(ReqNode* node, BatchContext* batch);
  void ProcessDequeue(ReqNode* node, BatchContext* batch);
  void FinishBatch(RingSide side, BatchContext* batch);
  void Reclaim();

  bool PortIsRemote(RingSide side) const {
    return config_.master_side != side;
  }
  RingPortStats& StatsFor(RingSide side) {
    return side == RingSide::kProducer ? producer_stats_ : consumer_stats_;
  }

  RingBufferConfig config_;
  MirrorBuffer mirror_;

  // Producer-owned.
  std::atomic<uint64_t> tail_pos_{0};       // working reserve position
  std::atomic<uint64_t> head_replica_{0};   // lazily refreshed view of head
  std::atomic<ReqNode*> enq_queue_{nullptr};

  // Consumer-owned.
  std::atomic<uint64_t> dq_cursor_{0};      // next record to hand out
  std::atomic<uint64_t> tail_replica_{0};   // lazily refreshed view of tail
  std::atomic<ReqNode*> deq_queue_{nullptr};

  // Published originals (the "remote-readable" copies).
  std::atomic<uint64_t> pub_tail_{0};
  std::atomic<uint64_t> pub_head_{0};

  std::atomic<uint32_t> reclaim_lock_{0};

  // Non-combining ablation locks.
  TicketLock enq_lock_;
  TicketLock deq_lock_;

  RingPortStats producer_stats_;
  RingPortStats consumer_stats_;
};

}  // namespace solros

#endif  // SOLROS_SRC_TRANSPORT_RING_BUFFER_H_
