#include "src/transport/mirror_buffer.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/base/logging.h"

namespace solros {

MirrorBuffer::MirrorBuffer(size_t capacity) : capacity_(capacity) {
  long page = sysconf(_SC_PAGESIZE);
  CHECK_GT(capacity, 0u);
  CHECK_EQ(capacity % static_cast<size_t>(page), 0u)
      << "capacity must be page-aligned";
  CHECK_EQ(capacity & (capacity - 1), 0u) << "capacity must be a power of 2";

  int fd = memfd_create("solros-ring", 0);
  CHECK_GE(fd, 0) << "memfd_create failed: " << std::strerror(errno);
  CHECK_EQ(ftruncate(fd, static_cast<off_t>(capacity)), 0)
      << "ftruncate failed: " << std::strerror(errno);

  // Reserve 2x the capacity of contiguous address space, then map the same
  // file into both halves.
  void* reserve = mmap(nullptr, capacity * 2, PROT_NONE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  CHECK(reserve != MAP_FAILED) << "reserve mmap failed";
  auto* base = static_cast<uint8_t*>(reserve);
  void* first = mmap(base, capacity, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_FIXED, fd, 0);
  CHECK(first == base) << "first mirror mmap failed";
  void* second = mmap(base + capacity, capacity, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_FIXED, fd, 0);
  CHECK(second == base + capacity) << "second mirror mmap failed";
  close(fd);
  data_ = base;
}

MirrorBuffer::~MirrorBuffer() {
  if (data_ != nullptr) {
    munmap(data_, capacity_ * 2);
  }
}

}  // namespace solros
