// SimRing: the Solros ring buffer driven inside the discrete-event
// simulator with calibrated PCIe costs.
//
// The same RingBuffer data structure that runs on real threads (Fig. 8) is
// here operated by simulator tasks; each operation's cost is charged in
// simulated time:
//
//   * per-op queue CPU on the operating processor;
//   * one PCIe round trip per remote control-variable transaction the ring
//     reports (lazy vs eager replication therefore changes *time*, which is
//     exactly the Fig. 9 experiment);
//   * payload copies priced by the adaptive memcpy/DMA policy when the
//     operating port is on the shadow side (ring memory lives on the master
//     device), or at host memory bandwidth when local.
//
// Send/Receive are blocking in simulated time (they wait on conditions when
// the ring is full/empty), which is what the OS services want; the RPC
// layer (src/rpc) builds message channels on top of a SimRing pair.
#ifndef SOLROS_SRC_TRANSPORT_SIM_RING_H_
#define SOLROS_SRC_TRANSPORT_SIM_RING_H_

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/hw/fabric.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/sim/simulator.h"
#include "src/sim/resource.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/transport/adaptive_copy.h"
#include "src/transport/ring_buffer.h"

namespace solros {

struct SimRingConfig {
  // Telemetry identity: when set and the simulator carries a TelemetryHub,
  // the ring reports occupancy/waits into the "ring.<name>" USE series.
  std::string name;
  size_t capacity = 1 << 20;
  // Where the master ring buffer's memory lives (§4.2.2: "deciding where to
  // locate a master ring buffer is one of the major decisions").
  DeviceId master_device;
  // The two ports.
  DeviceId producer_device;
  DeviceId consumer_device;
  Processor* producer_cpu = nullptr;
  Processor* consumer_cpu = nullptr;
  // Ring-buffer behaviour (lazy replication, combining) — see RingBuffer.
  bool lazy_update = true;
  bool combining = true;
  // Payload copy policy for the remote port.
  CopyPolicy copy_policy = CopyPolicy::kAdaptive;
};

class SimRing {
 public:
  SimRing(Simulator* sim, PcieFabric* fabric, const HwParams& params,
          const SimRingConfig& config);

  // Copies `payload` into the ring; waits (in sim time) while full.
  Task<Status> Send(std::span<const uint8_t> payload);
  // Non-blocking variant: kWouldBlock when full.
  Task<Status> TrySend(std::span<const uint8_t> payload);

  // Takes the oldest message; waits while empty. Returns kFailedPrecondition
  // after Close() once drained.
  Task<Result<std::vector<uint8_t>>> Receive();
  Task<Result<std::vector<uint8_t>>> TryReceive();  // kWouldBlock if empty

  // Wakes all waiters; subsequent Receives fail once the ring drains.
  void Close();
  bool closed() const { return closed_; }

  const RingBuffer& ring() const { return ring_; }
  uint64_t messages_sent() const { return sent_; }
  uint64_t messages_received() const { return received_; }
  // Payload bytes moved through the ring; sent-received is the in-flight
  // byte backlog (the live balancer's post-coalescing depth signal).
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

  // Queue-wait attribution (only maintained while a tracer or telemetry
  // series is bound, so plain runs skip the bookkeeping): the producer
  // stamps each
  // message when SetReady makes it visible; the consumer records
  // [ready_at, dequeue_at] for the message its last successful
  // TryReceive claimed. nullopt when the message predates tracer binding.
  // Meaningful for single-consumer rings (all RPC rings are).
  struct DequeueStamp {
    SimTime ready_at = 0;
    SimTime dequeue_at = 0;
  };
  std::optional<DequeueStamp> last_dequeue_stamp() const {
    return last_dequeue_stamp_;
  }

 private:
  // Remote head/tail accesses serialize on the variable's home cache line
  // and the PCIe link — modeled as a per-ring FIFO resource. This is what
  // makes the eager scheme collapse under concurrency (Fig. 9).
  Task<void> ChargeControl(uint64_t transactions);
  Task<void> ChargeCopy(RingSide side, uint64_t bytes);
  bool PortRemote(RingSide side) const;
  bool PortIsHost(RingSide side) const;

  Simulator* sim_;
  PcieFabric* fabric_;
  HwParams params_;
  SimRingConfig config_;
  RingBuffer ring_;
  Condition data_avail_;
  Condition space_avail_;
  FifoResource control_line_;
  // Signal epochs close the poll-then-sleep race: TryReceive/TrySend have
  // internal suspension points, so a notification can fire while a poller
  // is mid-attempt (and not yet waiting). Every SetReady/SetDone bumps the
  // matching epoch; a waiter only sleeps if the epoch is unchanged since
  // before its failed poll.
  uint64_t data_epoch_ = 0;
  uint64_t space_epoch_ = 0;
  bool closed_ = false;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  // In-flight ready stamps keyed by ring slot (see last_dequeue_stamp()).
  std::unordered_map<const void*, SimTime> ready_at_;
  std::optional<DequeueStamp> last_dequeue_stamp_;
  // USE telemetry (null = off): occupancy depth between SetReady and
  // dequeue, per-message queue wait, stall faults as errors.
  UseSeries* use_ = nullptr;
};

}  // namespace solros

#endif  // SOLROS_SRC_TRANSPORT_SIM_RING_H_
