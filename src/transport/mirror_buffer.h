// A "truly circular" buffer mapping.
//
// The paper (§5) mmaps the ring array twice into contiguous virtual
// addresses "so that the data access overrun at the end of the array goes to
// the beginning" — records never need explicit wrap handling. We reproduce
// that with memfd_create + two MAP_FIXED mappings: bytes written at
// [capacity, capacity + k) alias [0, k).
#ifndef SOLROS_SRC_TRANSPORT_MIRROR_BUFFER_H_
#define SOLROS_SRC_TRANSPORT_MIRROR_BUFFER_H_

#include <cstddef>
#include <cstdint>

namespace solros {

class MirrorBuffer {
 public:
  // `capacity` must be a multiple of the page size and a power of two.
  explicit MirrorBuffer(size_t capacity);
  ~MirrorBuffer();
  MirrorBuffer(const MirrorBuffer&) = delete;
  MirrorBuffer& operator=(const MirrorBuffer&) = delete;

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t capacity() const { return capacity_; }

  // Pointer valid for contiguous access of up to `capacity` bytes starting
  // at logical position `pos` (any monotonically increasing offset).
  uint8_t* At(uint64_t pos) { return data_ + (pos & (capacity_ - 1)); }
  const uint8_t* At(uint64_t pos) const {
    return data_ + (pos & (capacity_ - 1));
  }

 private:
  size_t capacity_ = 0;
  uint8_t* data_ = nullptr;
};

}  // namespace solros

#endif  // SOLROS_SRC_TRANSPORT_MIRROR_BUFFER_H_
