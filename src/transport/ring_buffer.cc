#include "src/transport/ring_buffer.h"

#include <cstring>

#include "src/base/logging.h"
#include "src/base/metrics.h"

namespace solros {
namespace {

// Registry mirrors of the per-ring atomic stats, aggregated across all
// rings in the process. Handles are cached once; increments are atomic
// (this code runs on real threads in the Fig. 8 harness).
struct RbMetrics {
  Counter* ops;
  Counter* would_block;
  Counter* batches;
  Counter* remote_var_reads;
  Counter* remote_var_writes;
};

const RbMetrics& RbMetricsFor(RingSide side) {
  static const RbMetrics producer = {
      MetricRegistry::Default().GetCounter("transport.rb.producer.ops"),
      MetricRegistry::Default().GetCounter(
          "transport.rb.producer.would_block"),
      MetricRegistry::Default().GetCounter("transport.rb.producer.batches"),
      MetricRegistry::Default().GetCounter(
          "transport.rb.producer.remote_var_reads"),
      MetricRegistry::Default().GetCounter(
          "transport.rb.producer.remote_var_writes"),
  };
  static const RbMetrics consumer = {
      MetricRegistry::Default().GetCounter("transport.rb.consumer.ops"),
      MetricRegistry::Default().GetCounter(
          "transport.rb.consumer.would_block"),
      MetricRegistry::Default().GetCounter("transport.rb.consumer.batches"),
      MetricRegistry::Default().GetCounter(
          "transport.rb.consumer.remote_var_reads"),
      MetricRegistry::Default().GetCounter(
          "transport.rb.consumer.remote_var_writes"),
  };
  return side == RingSide::kProducer ? producer : consumer;
}

constexpr uint64_t kHeaderSize = 8;

// Record states (one byte in the header).
constexpr uint8_t kFree = 0;
constexpr uint8_t kReserved = 1;
constexpr uint8_t kReady = 2;
constexpr uint8_t kConsuming = 3;
constexpr uint8_t kDone = 4;

// Combiner-queue phases.
constexpr uint32_t kPhaseWait = 0;
constexpr uint32_t kPhaseDone = 1;
constexpr uint32_t kPhaseCombiner = 2;

uint64_t RoundUp8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

// Header accessors. The size field is plain (made visible by the state's
// release/acquire edges); the state byte is accessed atomically.
uint32_t* SizeField(uint8_t* header) {
  return reinterpret_cast<uint32_t*>(header);
}
std::atomic_ref<uint8_t> StateField(uint8_t* header) {
  return std::atomic_ref<uint8_t>(header[4]);
}

uint64_t RecordBytes(uint32_t payload) {
  return kHeaderSize + RoundUp8(payload);
}

}  // namespace

struct RingBuffer::ReqNode {
  uint32_t size = 0;       // in: payload size (enqueue); out: size (dequeue)
  void* buf = nullptr;     // out: payload pointer inside the ring
  int result = kRbOk;      // out: kRbOk / kRbWouldBlock / kRbInvalid
  std::atomic<ReqNode*> next{nullptr};
  std::atomic<uint32_t> phase{kPhaseWait};
};

struct RingBuffer::BatchContext {
  bool refreshed = false;  // replica refreshed during this batch
  bool dirty = false;      // something reserved/consumed -> publish at end
};

RingBuffer::RingBuffer(const RingBufferConfig& config)
    : config_(config), mirror_(config.capacity) {
  CHECK_GE(config.combine_limit, 1);
}

uint32_t RingBuffer::MaxPayload(size_t capacity) {
  return static_cast<uint32_t>(capacity / 4 - kHeaderSize);
}

uint64_t RingBuffer::used_bytes() const {
  return tail_pos_.load(std::memory_order_relaxed) -
         pub_head_.load(std::memory_order_relaxed);
}

bool RingBuffer::Empty() const {
  return pub_head_.load(std::memory_order_acquire) ==
         tail_pos_.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

int RingBuffer::Enqueue(uint32_t size, void** rb_buf) {
  ReqNode node;
  node.size = size;
  int result;
  if (config_.combining) {
    result = CombiningOp(RingSide::kProducer, &node);
  } else {
    TicketGuard guard(enq_lock_);
    BatchContext batch;
    ProcessOne(RingSide::kProducer, &node, &batch);
    FinishBatch(RingSide::kProducer, &batch);
    result = node.result;
  }
  *rb_buf = node.buf;
  return result;
}

int RingBuffer::Dequeue(uint32_t* size, void** rb_buf) {
  ReqNode node;
  int result;
  if (config_.combining) {
    result = CombiningOp(RingSide::kConsumer, &node);
  } else {
    TicketGuard guard(deq_lock_);
    BatchContext batch;
    ProcessOne(RingSide::kConsumer, &node, &batch);
    FinishBatch(RingSide::kConsumer, &batch);
    result = node.result;
  }
  *size = node.size;
  *rb_buf = node.buf;
  return result;
}

void RingBuffer::CopyToRbBuf(void* rb_buf, const void* data, uint32_t size) {
  DCHECK(rb_buf != nullptr);
  if (size != 0) {
    std::memcpy(rb_buf, data, size);
  }
  producer_stats_.bytes_copied.fetch_add(size, std::memory_order_relaxed);
}

void RingBuffer::SetReady(void* rb_buf) {
  uint8_t* header = static_cast<uint8_t*>(rb_buf) - kHeaderSize;
  DCHECK_EQ(StateField(header).load(std::memory_order_relaxed), kReserved);
  StateField(header).store(kReady, std::memory_order_release);
}

void RingBuffer::CopyFromRbBuf(void* data, const void* rb_buf,
                               uint32_t size) {
  DCHECK(rb_buf != nullptr);
  std::memcpy(data, rb_buf, size);
  consumer_stats_.bytes_copied.fetch_add(size, std::memory_order_relaxed);
}

void RingBuffer::SetDone(void* rb_buf) {
  uint8_t* header = static_cast<uint8_t*>(rb_buf) - kHeaderSize;
  DCHECK_EQ(StateField(header).load(std::memory_order_relaxed), kConsuming);
  StateField(header).store(kDone, std::memory_order_release);
  Reclaim();
}

int RingBuffer::EnqueueCopy(const void* data, uint32_t size) {
  void* buf = nullptr;
  int rc = Enqueue(size, &buf);
  if (rc != kRbOk) {
    return rc;
  }
  CopyToRbBuf(buf, data, size);
  SetReady(buf);
  return kRbOk;
}

int RingBuffer::DequeueCopy(void* data, uint32_t max_size, uint32_t* size) {
  void* buf = nullptr;
  int rc = Dequeue(size, &buf);
  if (rc != kRbOk) {
    return rc;
  }
  CHECK_LE(*size, max_size);
  CopyFromRbBuf(data, buf, *size);
  SetDone(buf);
  return kRbOk;
}

// ---------------------------------------------------------------------------
// Combining machinery (§4.2.3)
// ---------------------------------------------------------------------------

int RingBuffer::CombiningOp(RingSide side, ReqNode* node) {
  std::atomic<ReqNode*>& queue =
      side == RingSide::kProducer ? enq_queue_ : deq_queue_;
  // One atomic_swap appends us to the request queue.
  ReqNode* prev = queue.exchange(node, std::memory_order_acq_rel);
  if (prev != nullptr) {
    prev->next.store(node, std::memory_order_release);
    uint32_t phase;
    SpinWait spin;
    while ((phase = node->phase.load(std::memory_order_acquire)) ==
           kPhaseWait) {
      spin.Pause();
    }
    if (phase == kPhaseDone) {
      return node->result;  // a combiner served us
    }
    // We were handed the combiner role; fall through.
  }
  RunCombiner(side, node);
  return node->result;
}

void RingBuffer::RunCombiner(RingSide side, ReqNode* self) {
  std::atomic<ReqNode*>& queue =
      side == RingSide::kProducer ? enq_queue_ : deq_queue_;
  BatchContext batch;
  ReqNode* cur = self;
  int combined = 0;
  while (true) {
    ProcessOne(side, cur, &batch);
    ++combined;
    ReqNode* next = cur->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      // Possibly the queue end: try to detach.
      ReqNode* expected = cur;
      if (queue.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel)) {
        FinishBatch(side, &batch);
        if (cur != self) {
          cur->phase.store(kPhaseDone, std::memory_order_release);
        }
        return;
      }
      // An appender is between its exchange and the next-pointer store.
      SpinWait spin;
      while ((next = cur->next.load(std::memory_order_acquire)) == nullptr) {
        spin.Pause();
      }
    }
    if (cur != self) {
      cur->phase.store(kPhaseDone, std::memory_order_release);
    }
    if (combined >= config_.combine_limit) {
      // Publish our batch, then hand the combiner role to the next waiter.
      FinishBatch(side, &batch);
      next->phase.store(kPhaseCombiner, std::memory_order_release);
      return;
    }
    cur = next;
  }
}

void RingBuffer::ProcessOne(RingSide side, ReqNode* node,
                            BatchContext* batch) {
  StatsFor(side).ops.fetch_add(1, std::memory_order_relaxed);
  RbMetricsFor(side).ops->Increment();
  if (side == RingSide::kProducer) {
    ProcessEnqueue(node, batch);
  } else {
    ProcessDequeue(node, batch);
  }
  if (node->result == kRbWouldBlock) {
    StatsFor(side).would_block.fetch_add(1, std::memory_order_relaxed);
    RbMetricsFor(side).would_block->Increment();
  }
}

void RingBuffer::ProcessEnqueue(ReqNode* node, BatchContext* batch) {
  uint64_t need = RecordBytes(node->size);
  if (node->size > MaxPayload(mirror_.capacity())) {
    node->result = kRbInvalid;
    node->buf = nullptr;
    return;
  }
  uint64_t tail = tail_pos_.load(std::memory_order_relaxed);
  uint64_t head;
  if (config_.lazy_update) {
    head = head_replica_.load(std::memory_order_relaxed);
    if (tail + need > head + mirror_.capacity() && !batch->refreshed) {
      // Refresh the replica from the consumer's original: one PCIe
      // transaction, at most once per batch (§4.2.4).
      head = pub_head_.load(std::memory_order_acquire);
      head_replica_.store(head, std::memory_order_relaxed);
      producer_stats_.remote_var_reads.fetch_add(1,
                                                 std::memory_order_relaxed);
      RbMetricsFor(RingSide::kProducer).remote_var_reads->Increment();
      batch->refreshed = true;
    }
  } else {
    // Eager: both originals live on the master side; every access from the
    // shadow port crosses PCIe.
    head = pub_head_.load(std::memory_order_acquire);
    if (PortIsRemote(RingSide::kProducer)) {
      producer_stats_.remote_var_reads.fetch_add(1,
                                                 std::memory_order_relaxed);
      RbMetricsFor(RingSide::kProducer).remote_var_reads->Increment();
    }
  }
  if (tail + need > head + mirror_.capacity()) {
    node->result = kRbWouldBlock;
    node->buf = nullptr;
    return;
  }

  uint8_t* header = mirror_.At(tail);
  *SizeField(header) = node->size;
  StateField(header).store(kReserved, std::memory_order_release);
  node->buf = header + kHeaderSize;
  node->result = kRbOk;
  tail_pos_.store(tail + need, std::memory_order_relaxed);
  batch->dirty = true;

  if (!config_.lazy_update) {
    pub_tail_.store(tail + need, std::memory_order_release);
    if (PortIsRemote(RingSide::kProducer)) {
      producer_stats_.remote_var_writes.fetch_add(1,
                                                  std::memory_order_relaxed);
      RbMetricsFor(RingSide::kProducer).remote_var_writes->Increment();
    }
  }
}

void RingBuffer::ProcessDequeue(ReqNode* node, BatchContext* batch) {
  uint64_t cursor = dq_cursor_.load(std::memory_order_relaxed);
  uint64_t tail;
  if (config_.lazy_update) {
    tail = tail_replica_.load(std::memory_order_relaxed);
    if (cursor == tail && !batch->refreshed) {
      tail = pub_tail_.load(std::memory_order_acquire);
      tail_replica_.store(tail, std::memory_order_relaxed);
      consumer_stats_.remote_var_reads.fetch_add(1,
                                                 std::memory_order_relaxed);
      RbMetricsFor(RingSide::kConsumer).remote_var_reads->Increment();
      batch->refreshed = true;
    }
  } else {
    tail = pub_tail_.load(std::memory_order_acquire);
    if (PortIsRemote(RingSide::kConsumer)) {
      consumer_stats_.remote_var_reads.fetch_add(1,
                                                 std::memory_order_relaxed);
      RbMetricsFor(RingSide::kConsumer).remote_var_reads->Increment();
    }
  }
  if (cursor == tail) {
    node->result = kRbWouldBlock;
    node->buf = nullptr;
    node->size = 0;
    return;
  }

  uint8_t* header = mirror_.At(cursor);
  uint8_t state = StateField(header).load(std::memory_order_acquire);
  if (state != kReady) {
    // Strict FIFO: the head record's producer is still copying payload.
    node->result = kRbWouldBlock;
    node->buf = nullptr;
    node->size = 0;
    return;
  }
  uint32_t payload = *SizeField(header);
  StateField(header).store(kConsuming, std::memory_order_relaxed);
  node->buf = header + kHeaderSize;
  node->size = payload;
  node->result = kRbOk;
  dq_cursor_.store(cursor + RecordBytes(payload), std::memory_order_release);
  batch->dirty = true;
}

void RingBuffer::FinishBatch(RingSide side, BatchContext* batch) {
  StatsFor(side).batches.fetch_add(1, std::memory_order_relaxed);
  RbMetricsFor(side).batches->Increment();
  if (!batch->dirty) {
    return;
  }
  if (side == RingSide::kProducer && config_.lazy_update) {
    // Publish the original tail once per batch (a local store; the
    // consumer pays the PCIe read when it refreshes).
    pub_tail_.store(tail_pos_.load(std::memory_order_relaxed),
                    std::memory_order_release);
  }
  // The consumer's original head is published by Reclaim().
}

void RingBuffer::Reclaim() {
  while (true) {
    if (reclaim_lock_.exchange(1, std::memory_order_acquire) == 1) {
      return;  // another thread is reclaiming; it will see our record
    }
    uint64_t head = pub_head_.load(std::memory_order_relaxed);
    uint64_t limit = dq_cursor_.load(std::memory_order_acquire);
    uint64_t reclaimed = head;
    while (reclaimed != limit) {
      uint8_t* header = mirror_.At(reclaimed);
      if (StateField(header).load(std::memory_order_acquire) != kDone) {
        break;
      }
      uint32_t payload = *SizeField(header);
      StateField(header).store(kFree, std::memory_order_relaxed);
      reclaimed += RecordBytes(payload);
    }
    if (reclaimed != head) {
      pub_head_.store(reclaimed, std::memory_order_release);
      if (!config_.lazy_update && PortIsRemote(RingSide::kConsumer)) {
        consumer_stats_.remote_var_writes.fetch_add(
            1, std::memory_order_relaxed);
        RbMetricsFor(RingSide::kConsumer).remote_var_writes->Increment();
      }
    }
    reclaim_lock_.store(0, std::memory_order_release);
    // Re-check: a record may have become done after our scan but before the
    // unlock; if so, loop and reclaim it ourselves.
    uint64_t limit2 = dq_cursor_.load(std::memory_order_acquire);
    if (reclaimed == limit2) {
      return;
    }
    uint8_t* header = mirror_.At(reclaimed);
    if (StateField(header).load(std::memory_order_acquire) != kDone) {
      return;
    }
  }
}

}  // namespace solros
