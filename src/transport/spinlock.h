// Spinlock algorithms used by the two-lock queue baselines of Fig. 8.
//
//  * TicketLock — FIFO via fetch-and-add; all waiters spin on one cache
//    line, so it collapses under high core counts (the paper's worst
//    baseline).
//  * McsLock — queue lock [Mellor-Crummey & Scott]; each waiter spins on
//    its own node, avoiding the cache-line storm (the paper's stronger
//    baseline, still beaten by combining).
#ifndef SOLROS_SRC_TRANSPORT_SPINLOCK_H_
#define SOLROS_SRC_TRANSPORT_SPINLOCK_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace solros {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Escalating spin: PAUSE for a while, then yield the OS thread. The yield
// matters on machines with fewer cores than spinning threads (including the
// single-core CI this repository is tested on) — a waiter must let the
// thread that owns the lock/combiner role actually run.
class SpinWait {
 public:
  void Pause() {
    if (++spins_ < 64) {
      CpuRelax();
    } else {
      std::this_thread::yield();
    }
  }
  void Reset() { spins_ = 0; }

 private:
  int spins_ = 0;
};

class TicketLock {
 public:
  void Lock() {
    uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
    SpinWait spin;
    while (serving_.load(std::memory_order_acquire) != my) {
      spin.Pause();
    }
  }

  void Unlock() {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

 private:
  alignas(64) std::atomic<uint32_t> next_{0};
  alignas(64) std::atomic<uint32_t> serving_{0};
};

class McsLock {
 public:
  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> locked{false};
  };

  void Lock(Node* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    node->locked.store(true, std::memory_order_relaxed);
    Node* prev = tail_.exchange(node, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(node, std::memory_order_release);
      SpinWait spin;
      while (node->locked.load(std::memory_order_acquire)) {
        spin.Pause();
      }
    }
  }

  void Unlock(Node* node) {
    Node* next = node->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      Node* expected = node;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel)) {
        return;
      }
      // A locker is between the exchange and the next-pointer store.
      SpinWait spin;
      while ((next = node->next.load(std::memory_order_acquire)) == nullptr) {
        spin.Pause();
      }
    }
    next->locked.store(false, std::memory_order_release);
  }

 private:
  alignas(64) std::atomic<Node*> tail_{nullptr};
};

// RAII adapters so both locks fit the same template parameter shape.
class TicketGuard {
 public:
  explicit TicketGuard(TicketLock& lock) : lock_(lock) { lock_.Lock(); }
  ~TicketGuard() { lock_.Unlock(); }
  TicketGuard(const TicketGuard&) = delete;
  TicketGuard& operator=(const TicketGuard&) = delete;

 private:
  TicketLock& lock_;
};

class McsGuard {
 public:
  explicit McsGuard(McsLock& lock) : lock_(lock) { lock_.Lock(&node_); }
  ~McsGuard() { lock_.Unlock(&node_); }
  McsGuard(const McsGuard&) = delete;
  McsGuard& operator=(const McsGuard&) = delete;

 private:
  McsLock& lock_;
  McsLock::Node node_;
};

}  // namespace solros

#endif  // SOLROS_SRC_TRANSPORT_SPINLOCK_H_
