#include "src/transport/sim_ring.h"

#include "src/base/fault.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/sim/trace.h"

namespace solros {
namespace {

RingBufferConfig MakeRingConfig(const SimRingConfig& config) {
  RingBufferConfig rb;
  rb.capacity = config.capacity;
  rb.master_side = config.master_device == config.producer_device
                       ? RingSide::kProducer
                       : RingSide::kConsumer;
  rb.lazy_update = config.lazy_update;
  rb.combining = config.combining;
  return rb;
}

}  // namespace

SimRing::SimRing(Simulator* sim, PcieFabric* fabric, const HwParams& params,
                 const SimRingConfig& config)
    : sim_(sim),
      fabric_(fabric),
      params_(params),
      config_(config),
      ring_(MakeRingConfig(config)),
      data_avail_(sim),
      space_avail_(sim),
      control_line_(sim, "ring-control") {
  CHECK(config.producer_cpu != nullptr && config.consumer_cpu != nullptr);
  CHECK(config.master_device == config.producer_device ||
        config.master_device == config.consumer_device)
      << "master must be one of the two port devices";
  if (sim->telemetry() != nullptr && !config.name.empty()) {
    use_ = sim->telemetry()->GetSeries("ring." + config.name);
  }
}

bool SimRing::PortRemote(RingSide side) const {
  DeviceId port_dev = side == RingSide::kProducer ? config_.producer_device
                                                  : config_.consumer_device;
  return !(port_dev == config_.master_device);
}

bool SimRing::PortIsHost(RingSide side) const {
  DeviceId port_dev = side == RingSide::kProducer ? config_.producer_device
                                                  : config_.consumer_device;
  return fabric_->TypeOf(port_dev) == DeviceType::kHost;
}

Task<void> SimRing::ChargeCopy(RingSide side, uint64_t bytes) {
  if (bytes == 0) {
    co_return;
  }
  if (!PortRemote(side)) {
    // Local copy within the master device's memory.
    co_await Delay(TransferTime(bytes, params_.host_mem_bw));
    co_return;
  }
  bool initiator_is_host = PortIsHost(side);
  Nanos cost = CopyTime(params_, bytes, initiator_is_host,
                        config_.copy_policy);
  // Charge fabric occupancy for the bulk move so concurrent rings contend
  // realistically; direction: producer pushes toward master, consumer pulls
  // from master.
  DeviceId port_dev = side == RingSide::kProducer ? config_.producer_device
                                                  : config_.consumer_device;
  DeviceId src = side == RingSide::kProducer ? port_dev : config_.master_device;
  DeviceId dst = side == RingSide::kProducer ? config_.master_device : port_dev;
  bool used_dma =
      config_.copy_policy == CopyPolicy::kDma ||
      (config_.copy_policy == CopyPolicy::kAdaptive &&
       AdaptivePicksDma(params_, bytes, initiator_is_host));
  if (used_dma) {
    double dma_bw =
        initiator_is_host ? params_.dma_bw_host : params_.dma_bw_phi;
    co_await fabric_->Transfer(src, dst, bytes, dma_bw,
                               /*peer_to_peer=*/false);
    // Remaining cost beyond the wire time: DMA setup.
    Nanos setup = initiator_is_host ? params_.dma_init_host
                                    : params_.dma_init_phi;
    co_await Delay(setup);
  } else {
    // load/store copies are PCIe transactions too: occupy the fabric at
    // the memcpy model's effective rate so concurrent copiers share the
    // link instead of summing past it.
    double effective = RateBps(bytes, cost);
    co_await fabric_->Transfer(src, dst, bytes, effective,
                               /*peer_to_peer=*/false);
  }
}

Task<void> SimRing::ChargeControl(uint64_t transactions) {
  if (transactions == 0) {
    co_return;
  }
  static Counter* const txns =
      MetricRegistry::Default().GetCounter("transport.ring.control_txns");
  txns->Increment(transactions);
  TRACE_SPAN(sim_, "ring", "ring.sync");
  co_await control_line_.Use(transactions * params_.pcie_transaction_latency);
}

Task<Status> SimRing::TrySend(std::span<const uint8_t> payload) {
  TRACE_SPAN(sim_, "ring", "ring.enqueue");
  Processor* cpu = config_.producer_cpu;
  co_await cpu->Compute(params_.rb_op_cpu);

  // A producer-side stall (preemption mid-enqueue) delays the operation; it
  // never fakes kWouldBlock, which would strand the Send loop with no
  // matching space_avail notification.
  static FaultPoint* const send_stall =
      Faults().GetPoint("transport.ring.send_stall");
  if (send_stall->ShouldFire()) {
    static Counter* const stalls = MetricRegistry::Default().GetCounter(
        "transport.ring.send_stalls");
    stalls->Increment();
    TRACE_INSTANT(sim_, "ring", "fault.ring.send_stall");
    if (use_ != nullptr) {
      use_->AddError(sim_->now());
    }
    co_await Delay(params_.ring_stall_latency);
  }

  uint64_t txn_before = ring_.producer_stats().remote_transactions();
  void* rb_buf = nullptr;
  int rc = ring_.Enqueue(static_cast<uint32_t>(payload.size()), &rb_buf);
  uint64_t txn_after = ring_.producer_stats().remote_transactions();
  co_await ChargeControl(txn_after - txn_before);
  if (rc == kRbWouldBlock) {
    TRACE_INSTANT(sim_, "ring", "ring.enqueue.would_block");
    co_return WouldBlockError();
  }
  if (rc != kRbOk) {
    co_return InvalidArgumentError("ring rejected payload");
  }
  co_await ChargeCopy(RingSide::kProducer, payload.size());
  ring_.CopyToRbBuf(rb_buf, payload.data(),
                    static_cast<uint32_t>(payload.size()));
  ring_.SetReady(rb_buf);
  if (sim_->tracer() != nullptr || use_ != nullptr) {
    ready_at_[rb_buf] = sim_->now();
  }
  if (use_ != nullptr) {
    use_->QueueDelta(sim_->now(), +1);
  }
  ++sent_;
  bytes_sent_ += payload.size();
  static Counter* const sends =
      MetricRegistry::Default().GetCounter("transport.ring.messages_sent");
  static Counter* const bytes =
      MetricRegistry::Default().GetCounter("transport.ring.bytes_sent");
  sends->Increment();
  bytes->Increment(payload.size());
  ++data_epoch_;
  data_avail_.NotifyAll();
  co_return OkStatus();
}

Task<Status> SimRing::Send(std::span<const uint8_t> payload) {
  while (true) {
    if (closed_) {
      co_return FailedPreconditionError("ring closed");
    }
    uint64_t epoch = space_epoch_;
    Status status = co_await TrySend(payload);
    if (status.code() != ErrorCode::kWouldBlock) {
      co_return status;
    }
    // Only sleep if no space was released while we were polling.
    while (space_epoch_ == epoch && !closed_) {
      TRACE_SPAN(sim_, "ring", "ring.wait.full");
      co_await space_avail_.Wait();
    }
  }
}

Task<Result<std::vector<uint8_t>>> SimRing::TryReceive() {
  TRACE_SPAN(sim_, "ring", "ring.dequeue");
  Processor* cpu = config_.consumer_cpu;
  co_await cpu->Compute(params_.rb_op_cpu);

  // A consumer-side stall (descheduled consumer) leaves entries queued
  // longer, which backpressures producers once the ring fills.
  static FaultPoint* const recv_stall =
      Faults().GetPoint("transport.ring.recv_stall");
  if (recv_stall->ShouldFire()) {
    static Counter* const stalls = MetricRegistry::Default().GetCounter(
        "transport.ring.recv_stalls");
    stalls->Increment();
    TRACE_INSTANT(sim_, "ring", "fault.ring.recv_stall");
    if (use_ != nullptr) {
      use_->AddError(sim_->now());
    }
    co_await Delay(params_.ring_stall_latency);
  }

  uint64_t txn_before = ring_.consumer_stats().remote_transactions();
  uint32_t size = 0;
  void* rb_buf = nullptr;
  int rc = ring_.Dequeue(&size, &rb_buf);
  uint64_t txn_after = ring_.consumer_stats().remote_transactions();
  co_await ChargeControl(txn_after - txn_before);
  if (rc == kRbWouldBlock) {
    co_return WouldBlockError();
  }
  CHECK_EQ(rc, kRbOk);
  if (sim_->tracer() != nullptr || use_ != nullptr) {
    auto it = ready_at_.find(rb_buf);
    if (it != ready_at_.end()) {
      last_dequeue_stamp_ = DequeueStamp{it->second, sim_->now()};
      ready_at_.erase(it);
    } else {
      last_dequeue_stamp_.reset();  // message predates tracer binding
    }
  }
  if (use_ != nullptr) {
    use_->QueueDelta(sim_->now(), -1);
    Nanos waited = last_dequeue_stamp_.has_value()
                       ? last_dequeue_stamp_->dequeue_at -
                             last_dequeue_stamp_->ready_at
                       : 0;
    use_->CompleteOp(sim_->now(), waited);
  }
  co_await ChargeCopy(RingSide::kConsumer, size);
  std::vector<uint8_t> out(size);
  ring_.CopyFromRbBuf(out.data(), rb_buf, size);
  ring_.SetDone(rb_buf);
  ++received_;
  bytes_received_ += size;
  static Counter* const recvs =
      MetricRegistry::Default().GetCounter("transport.ring.messages_received");
  recvs->Increment();
  ++space_epoch_;
  space_avail_.NotifyAll();
  co_return out;
}

Task<Result<std::vector<uint8_t>>> SimRing::Receive() {
  while (true) {
    uint64_t epoch = data_epoch_;
    auto result = co_await TryReceive();
    if (result.code() != ErrorCode::kWouldBlock) {
      co_return result;
    }
    if (closed_) {
      co_return FailedPreconditionError("ring closed and drained");
    }
    // Only sleep if nothing became ready while we were polling.
    while (data_epoch_ == epoch && !closed_) {
      TRACE_SPAN(sim_, "ring", "ring.wait.empty");
      co_await data_avail_.Wait();
    }
  }
}

void SimRing::Close() {
  closed_ = true;
  data_avail_.NotifyAll();
  space_avail_.NotifyAll();
}

}  // namespace solros
