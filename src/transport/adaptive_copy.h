// Adaptive copy policy (§4.2.4 / Fig. 10).
//
// rb_copy_to_rb_buf / rb_copy_from_rb_buf "use memcpy for small data and DMA
// copy for large data to get the best latency and throughput", with a
// per-initiator threshold: 1 KB from the host, 16 KB from the Xeon Phi
// (the Phi's DMA channel takes longer to set up). These helpers compute the
// simulated cost of a cross-PCIe copy under each policy; Fig. 10's bench
// compares kMemcpy / kDma / kAdaptive directly.
#ifndef SOLROS_SRC_TRANSPORT_ADAPTIVE_COPY_H_
#define SOLROS_SRC_TRANSPORT_ADAPTIVE_COPY_H_

#include <cstdint>

#include "src/base/units.h"
#include "src/hw/params.h"

namespace solros {

enum class CopyPolicy { kMemcpy, kDma, kAdaptive };

// Time for a DMA copy of `bytes` initiated by the given side (setup + line
// rate), ignoring queueing on channels/links.
inline Nanos DmaCopyTime(const HwParams& params, uint64_t bytes,
                         bool initiator_is_host) {
  Nanos init =
      initiator_is_host ? params.dma_init_host : params.dma_init_phi;
  double bw = initiator_is_host ? params.dma_bw_host : params.dma_bw_phi;
  return init + TransferTime(bytes, bw);
}

// Time for a load/store (memcpy) copy through the system-mapped window;
// mirrors WindowCopier::TimeFor.
inline Nanos MemcpyCopyTime(const HwParams& params, uint64_t bytes,
                            bool initiator_is_host) {
  Nanos lat = initiator_is_host ? params.memcpy_small_latency_host
                                : params.memcpy_small_latency_phi;
  if (bytes <= 64) {
    return lat;
  }
  uint64_t fast =
      (bytes < params.memcpy_fast_region ? bytes : params.memcpy_fast_region) -
      64;
  uint64_t slow =
      bytes > params.memcpy_fast_region ? bytes - params.memcpy_fast_region
                                        : 0;
  double stream_bw = initiator_is_host ? params.memcpy_stream_bw_host
                                       : params.memcpy_stream_bw_phi;
  return lat + TransferTime(fast, params.memcpy_fast_bw) +
         TransferTime(slow, stream_bw);
}

// True when the adaptive policy picks DMA for this copy.
inline bool AdaptivePicksDma(const HwParams& params, uint64_t bytes,
                             bool initiator_is_host) {
  uint64_t threshold = initiator_is_host ? params.adaptive_threshold_host
                                         : params.adaptive_threshold_phi;
  return bytes > threshold;
}

// Copy time under a given policy.
inline Nanos CopyTime(const HwParams& params, uint64_t bytes,
                      bool initiator_is_host, CopyPolicy policy) {
  switch (policy) {
    case CopyPolicy::kMemcpy:
      return MemcpyCopyTime(params, bytes, initiator_is_host);
    case CopyPolicy::kDma:
      return DmaCopyTime(params, bytes, initiator_is_host);
    case CopyPolicy::kAdaptive:
      return AdaptivePicksDma(params, bytes, initiator_is_host)
                 ? DmaCopyTime(params, bytes, initiator_is_host)
                 : MemcpyCopyTime(params, bytes, initiator_is_host);
  }
  return 0;
}

}  // namespace solros

#endif  // SOLROS_SRC_TRANSPORT_ADAPTIVE_COPY_H_
