// Michael & Scott two-lock concurrent queue — the baseline of Fig. 8.
//
// "We compare the performance with the two-lock queue [45], which is the
// most widely implemented queue algorithm, with two different spinlock
// algorithms: the ticket and the MCS queue lock." Enqueue copies the payload
// into a heap node under the tail lock; dequeue pops under the head lock.
// Unlike the Solros ring buffer, data copies happen inside the critical
// sections and every operation takes a lock — exactly the contrast the
// paper draws.
#ifndef SOLROS_SRC_TRANSPORT_TWO_LOCK_QUEUE_H_
#define SOLROS_SRC_TRANSPORT_TWO_LOCK_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>

#include "src/base/logging.h"
#include "src/transport/ring_buffer.h"  // for RbResult codes
#include "src/transport/spinlock.h"

namespace solros {

// Guard must be constructible from Lock& and lock/unlock in ctor/dtor
// (TicketGuard or McsGuard).
template <typename Lock, typename Guard>
class TwoLockQueue {
 public:
  TwoLockQueue() {
    // Dummy node, per the M&S algorithm.
    Node* dummy = NewNode(0);
    head_ = dummy;
    tail_ = dummy;
  }

  ~TwoLockQueue() {
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }
  TwoLockQueue(const TwoLockQueue&) = delete;
  TwoLockQueue& operator=(const TwoLockQueue&) = delete;

  int Enqueue(const void* data, uint32_t size) {
    Node* node = NewNode(size);
    std::memcpy(node->payload(), data, size);
    {
      Guard guard(tail_lock_);
      tail_->next.store(node, std::memory_order_release);
      tail_ = node;
    }
    return kRbOk;
  }

  int Dequeue(void* data, uint32_t max_size, uint32_t* size) {
    Node* old_head;
    {
      Guard guard(head_lock_);
      old_head = head_;
      Node* next = old_head->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        return kRbWouldBlock;
      }
      CHECK_LE(next->size, max_size);
      std::memcpy(data, next->payload(), next->size);
      *size = next->size;
      head_ = next;
    }
    delete old_head;
    return kRbOk;
  }

  bool Empty() {
    Guard guard(head_lock_);
    return head_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    explicit Node(uint32_t s) : size(s) {}
    static void* operator new(size_t base, uint32_t payload = 0) {
      return ::operator new(base + payload);
    }
    static void operator delete(void* p) { ::operator delete(p); }
    static void operator delete(void* p, uint32_t) { ::operator delete(p); }

    uint8_t* payload() { return reinterpret_cast<uint8_t*>(this + 1); }

    std::atomic<Node*> next{nullptr};
    uint32_t size;
  };

  static Node* NewNode(uint32_t size) { return new (size) Node(size); }

  alignas(64) Lock head_lock_;
  alignas(64) Lock tail_lock_;
  alignas(64) Node* head_;
  alignas(64) Node* tail_;
};

using TicketTwoLockQueue = TwoLockQueue<TicketLock, TicketGuard>;
using McsTwoLockQueue = TwoLockQueue<McsLock, McsGuard>;

}  // namespace solros

#endif  // SOLROS_SRC_TRANSPORT_TWO_LOCK_QUEUE_H_
