// Text indexing application (§6.2's first realistic workload).
//
// A corpus of documents lives on SolrosFS; co-processor workers read each
// file through a FileService and build an inverted index (term -> posting
// list) from the *actual bytes*. Tokenization compute is charged to the
// worker's processor (data-parallel: the Phi's many threads absorb it), so
// the end-to-end time is I/O-path dominated — which is why the paper sees
// ~19x from replacing the stock I/O stack with Solros.
#ifndef SOLROS_SRC_APPS_TEXT_INDEX_H_
#define SOLROS_SRC_APPS_TEXT_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/fs/file_service.h"
#include "src/fs/solros_fs.h"
#include "src/hw/fabric.h"
#include "src/hw/processor.h"
#include "src/sim/task.h"

namespace solros {

struct CorpusConfig {
  std::string directory = "/corpus";
  int num_documents = 64;
  uint64_t document_bytes = MiB(1);
  uint64_t vocabulary = 20000;
  uint64_t seed = 42;
};

// Writes a deterministic corpus into `fs` (host-side setup step; returns
// the list of file paths).
Task<Result<std::vector<std::string>>> GenerateCorpus(SolrosFs* fs,
                                                      const CorpusConfig&
                                                          config);

struct TextIndexConfig {
  std::vector<std::string> files;
  int workers = 32;            // parallel indexing tasks
  uint64_t read_chunk = MiB(1);  // per-read buffer size
  // Reference CPU nanoseconds to tokenize+insert one byte (host-speed).
  double tokenize_ns_per_byte = 1.0;
};

struct TextIndexResult {
  uint64_t files_indexed = 0;
  uint64_t bytes_indexed = 0;
  uint64_t tokens = 0;
  uint64_t unique_terms = 0;
  uint64_t postings = 0;
  // Simulated elapsed time is read from the simulator by the caller.
};

// Runs the indexing job on `service`, with worker compute charged to `cpu`
// and read buffers allocated on `buffer_device`.
Task<Result<TextIndexResult>> RunTextIndex(Simulator* sim,
                                           FileService* service,
                                           Processor* cpu,
                                           DeviceId buffer_device,
                                           const TextIndexConfig& config);

}  // namespace solros

#endif  // SOLROS_SRC_APPS_TEXT_INDEX_H_
