// Sharded key-value store over the Solros network service.
//
// §4.4.3 motivates content-based forwarding with "each request of
// key/value store": this app runs one KV shard per co-processor, all
// listening on the same shared port. A client discovers the shard behind
// each of its connections (WHOAMI), then routes every key to the right
// shard — the memcached-style pattern the paper's pluggable forwarding
// rules are designed for.
//
// Wire protocol (binary, little-endian, one message per request/reply):
//   request : op u8 | key_len u16 | val_len u32 | key bytes | value bytes
//   reply   : status u8 | val_len u32 | value bytes
#ifndef SOLROS_SRC_APPS_KV_STORE_H_
#define SOLROS_SRC_APPS_KV_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/hw/processor.h"
#include "src/net/ethernet.h"
#include "src/net/server_api.h"
#include "src/sim/task.h"

namespace solros {

enum class KvOp : uint8_t { kGet, kPut, kDelete, kWhoAmI };
enum class KvStatus : uint8_t { kOk, kNotFound, kError };

struct KvServerStats {
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

// One shard: accepts connections on `port` forever (until the listener
// fails), serving each connection on its own task.
class KvServer {
 public:
  KvServer(Simulator* sim, ServerSocketApi* api, uint32_t shard_id);

  // Starts listening; serves up to `max_connections` then stops accepting.
  void Start(uint16_t port, int max_connections);

  const KvServerStats& stats() const { return stats_; }
  size_t size() const { return table_.size(); }
  uint32_t shard_id() const { return shard_id_; }

 private:
  static Task<void> AcceptLoop(KvServer* self, uint16_t port,
                               int max_connections);
  static Task<void> ServeConnection(KvServer* self, int64_t sock);

  Simulator* sim_;
  ServerSocketApi* api_;
  uint32_t shard_id_;
  std::unordered_map<std::string, std::vector<uint8_t>> table_;
  KvServerStats stats_;
};

// Client with shard-affinity routing: opens `connections_per_shard *
// num_shards` connections through the shared listening socket, discovers
// which shard each landed on, and routes keys by hash.
class KvClient {
 public:
  KvClient(Simulator* sim, EthernetFabric* ethernet, Processor* cpu,
           uint32_t base_addr);

  // Establishes connections until every shard in [0, num_shards) is
  // reachable (requires the proxy's policy to eventually cover all
  // shards; round-robin does).
  Task<Status> Connect(uint16_t port, uint32_t num_shards,
                       int max_attempts = 64);

  Task<Status> Put(const std::string& key, std::span<const uint8_t> value);
  Task<Result<std::vector<uint8_t>>> Get(const std::string& key);
  Task<Status> Delete(const std::string& key);
  Task<void> Close();

  // Which shard a key routes to (exposed for tests).
  uint32_t ShardOf(const std::string& key) const;
  size_t connected_shards() const { return shard_conns_.size(); }

 private:
  Task<Result<std::vector<uint8_t>>> Call(uint64_t conn, KvOp op,
                                          const std::string& key,
                                          std::span<const uint8_t> value,
                                          KvStatus* status_out);

  Simulator* sim_;
  EthernetFabric* ethernet_;
  Processor* cpu_;
  uint32_t base_addr_;
  uint32_t num_shards_ = 0;
  std::map<uint32_t, uint64_t> shard_conns_;  // shard id -> conn id
  std::vector<uint64_t> extra_conns_;         // duplicates to close
};

// Encoding helpers (exposed for tests).
std::vector<uint8_t> EncodeKvRequest(KvOp op, const std::string& key,
                                     std::span<const uint8_t> value);
std::vector<uint8_t> EncodeKvReply(KvStatus status,
                                   std::span<const uint8_t> value);

}  // namespace solros

#endif  // SOLROS_SRC_APPS_KV_STORE_H_
