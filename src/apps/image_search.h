// Image-search application (§6.2's second realistic workload).
//
// An image database lives on SolrosFS: each "image" file carries a header
// plus a block of 64-dimensional byte descriptors (BRIEF/ORB-style). A
// query scans the database, computing real L1 distances between the query
// descriptors and every stored descriptor, keeping the top-k most similar
// images. Unlike text indexing this is compute-heavy, so the I/O-path
// speedup translates into a smaller end-to-end win (the paper reports ~2x).
#ifndef SOLROS_SRC_APPS_IMAGE_SEARCH_H_
#define SOLROS_SRC_APPS_IMAGE_SEARCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/fs/file_service.h"
#include "src/fs/solros_fs.h"
#include "src/hw/fabric.h"
#include "src/hw/processor.h"
#include "src/sim/task.h"

namespace solros {

inline constexpr uint32_t kDescriptorDim = 64;   // bytes per descriptor

struct ImageDbConfig {
  std::string directory = "/images";
  int num_images = 64;
  uint32_t descriptors_per_image = 2048;  // 128 KiB of features per image
  uint64_t seed = 7;
};

Task<Result<std::vector<std::string>>> GenerateImageDb(
    SolrosFs* fs, const ImageDbConfig& config);

struct ImageSearchConfig {
  std::vector<std::string> files;
  int workers = 32;
  int top_k = 5;
  uint32_t query_descriptors = 256;
  uint64_t query_seed = 99;
  // Reference nanoseconds per descriptor-pair distance (host speed): a
  // 64-byte SAD plus bookkeeping is ~30ns scalar. This is what makes image
  // search compute-bound — the paper's reason its Solros speedup is only
  // ~2x while I/O-bound text indexing gets ~19x.
  double match_ns_per_pair = 32.0;
};

struct ImageMatch {
  std::string path;
  uint64_t score = 0;  // lower = more similar (sum of min L1 distances)
};

struct ImageSearchResult {
  std::vector<ImageMatch> top;       // best-first
  uint64_t images_scanned = 0;
  uint64_t bytes_read = 0;
  uint64_t descriptor_pairs = 0;
};

Task<Result<ImageSearchResult>> RunImageSearch(Simulator* sim,
                                               FileService* service,
                                               Processor* cpu,
                                               DeviceId buffer_device,
                                               const ImageSearchConfig&
                                                   config);

}  // namespace solros

#endif  // SOLROS_SRC_APPS_IMAGE_SEARCH_H_
