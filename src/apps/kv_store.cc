#include "src/apps/kv_store.h"

#include <cstring>

#include "src/base/logging.h"

namespace solros {
namespace {

struct DecodedRequest {
  KvOp op;
  std::string key;
  std::vector<uint8_t> value;
};

bool DecodeRequest(std::span<const uint8_t> bytes, DecodedRequest* out) {
  if (bytes.size() < 7) {
    return false;
  }
  out->op = static_cast<KvOp>(bytes[0]);
  uint16_t key_len;
  uint32_t val_len;
  std::memcpy(&key_len, bytes.data() + 1, 2);
  std::memcpy(&val_len, bytes.data() + 3, 4);
  if (bytes.size() != 7u + key_len + val_len) {
    return false;
  }
  out->key.assign(reinterpret_cast<const char*>(bytes.data() + 7), key_len);
  out->value.assign(bytes.begin() + 7 + key_len, bytes.end());
  return true;
}

struct DecodedReply {
  KvStatus status;
  std::vector<uint8_t> value;
};

bool DecodeReply(std::span<const uint8_t> bytes, DecodedReply* out) {
  if (bytes.size() < 5) {
    return false;
  }
  out->status = static_cast<KvStatus>(bytes[0]);
  uint32_t val_len;
  std::memcpy(&val_len, bytes.data() + 1, 4);
  if (bytes.size() != 5u + val_len) {
    return false;
  }
  out->value.assign(bytes.begin() + 5, bytes.end());
  return true;
}

// FNV-1a over the key; must match on client and (potentially) a
// content-based forwarding rule in the proxy.
uint64_t KeyHash(const std::string& key) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::vector<uint8_t> EncodeKvRequest(KvOp op, const std::string& key,
                                     std::span<const uint8_t> value) {
  CHECK_LE(key.size(), 65535u);
  std::vector<uint8_t> out(7 + key.size() + value.size());
  out[0] = static_cast<uint8_t>(op);
  uint16_t key_len = static_cast<uint16_t>(key.size());
  uint32_t val_len = static_cast<uint32_t>(value.size());
  std::memcpy(out.data() + 1, &key_len, 2);
  std::memcpy(out.data() + 3, &val_len, 4);
  std::memcpy(out.data() + 7, key.data(), key.size());
  if (!value.empty()) {
    std::memcpy(out.data() + 7 + key.size(), value.data(), value.size());
  }
  return out;
}

std::vector<uint8_t> EncodeKvReply(KvStatus status,
                                   std::span<const uint8_t> value) {
  std::vector<uint8_t> out(5 + value.size());
  out[0] = static_cast<uint8_t>(status);
  uint32_t val_len = static_cast<uint32_t>(value.size());
  std::memcpy(out.data() + 1, &val_len, 4);
  if (!value.empty()) {
    std::memcpy(out.data() + 5, value.data(), value.size());
  }
  return out;
}

// ---------------------------------------------------------------------------
// KvServer
// ---------------------------------------------------------------------------

KvServer::KvServer(Simulator* sim, ServerSocketApi* api, uint32_t shard_id)
    : sim_(sim), api_(api), shard_id_(shard_id) {}

void KvServer::Start(uint16_t port, int max_connections) {
  Spawn(*sim_, AcceptLoop(this, port, max_connections));
}

Task<void> KvServer::AcceptLoop(KvServer* self, uint16_t port,
                                int max_connections) {
  auto listener = co_await self->api_->Listen(port, 256);
  CHECK_OK(listener);
  for (int c = 0; c < max_connections; ++c) {
    auto sock = co_await self->api_->Accept(*listener);
    if (!sock.ok()) {
      break;
    }
    Spawn(*self->sim_, ServeConnection(self, *sock));
  }
}

Task<void> KvServer::ServeConnection(KvServer* self, int64_t sock) {
  while (true) {
    auto message = co_await self->api_->Recv(sock);
    if (!message.ok()) {
      break;  // peer closed
    }
    DecodedRequest request;
    std::vector<uint8_t> reply;
    if (!DecodeRequest(*message, &request)) {
      reply = EncodeKvReply(KvStatus::kError, {});
    } else {
      switch (request.op) {
        case KvOp::kGet: {
          ++self->stats_.gets;
          auto it = self->table_.find(request.key);
          if (it == self->table_.end()) {
            ++self->stats_.misses;
            reply = EncodeKvReply(KvStatus::kNotFound, {});
          } else {
            ++self->stats_.hits;
            reply = EncodeKvReply(KvStatus::kOk, it->second);
          }
          break;
        }
        case KvOp::kPut: {
          ++self->stats_.puts;
          self->table_[request.key] = std::move(request.value);
          reply = EncodeKvReply(KvStatus::kOk, {});
          break;
        }
        case KvOp::kDelete: {
          ++self->stats_.deletes;
          bool erased = self->table_.erase(request.key) != 0;
          reply = EncodeKvReply(
              erased ? KvStatus::kOk : KvStatus::kNotFound, {});
          break;
        }
        case KvOp::kWhoAmI: {
          uint32_t id = self->shard_id_;
          reply = EncodeKvReply(
              KvStatus::kOk,
              {reinterpret_cast<const uint8_t*>(&id), sizeof(id)});
          break;
        }
      }
    }
    if (!(co_await self->api_->Send(sock, reply)).ok()) {
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// KvClient
// ---------------------------------------------------------------------------

KvClient::KvClient(Simulator* sim, EthernetFabric* ethernet, Processor* cpu,
                   uint32_t base_addr)
    : sim_(sim), ethernet_(ethernet), cpu_(cpu), base_addr_(base_addr) {}

uint32_t KvClient::ShardOf(const std::string& key) const {
  DCHECK(num_shards_ > 0);
  return static_cast<uint32_t>(KeyHash(key) % num_shards_);
}

Task<Result<std::vector<uint8_t>>> KvClient::Call(
    uint64_t conn, KvOp op, const std::string& key,
    std::span<const uint8_t> value, KvStatus* status_out) {
  std::vector<uint8_t> request = EncodeKvRequest(op, key, value);
  SOLROS_CO_RETURN_IF_ERROR(
      co_await ethernet_->ClientSend(conn, request, cpu_));
  SOLROS_CO_ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                             co_await ethernet_->ClientRecv(conn));
  DecodedReply reply;
  if (!DecodeReply(raw, &reply)) {
    co_return IoError("malformed kv reply");
  }
  *status_out = reply.status;
  co_return std::move(reply.value);
}

Task<Status> KvClient::Connect(uint16_t port, uint32_t num_shards,
                               int max_attempts) {
  num_shards_ = num_shards;
  uint32_t next_addr = base_addr_;
  for (int attempt = 0;
       attempt < max_attempts && shard_conns_.size() < num_shards;
       ++attempt) {
    SOLROS_CO_ASSIGN_OR_RETURN(
        uint64_t conn,
        co_await ethernet_->ClientConnect(next_addr++, port, cpu_));
    KvStatus status = KvStatus::kError;
    SOLROS_CO_ASSIGN_OR_RETURN(std::vector<uint8_t> id_bytes,
                               co_await Call(conn, KvOp::kWhoAmI, "", {},
                                             &status));
    if (status != KvStatus::kOk || id_bytes.size() != sizeof(uint32_t)) {
      co_return IoError("bad WHOAMI reply");
    }
    uint32_t shard;
    std::memcpy(&shard, id_bytes.data(), sizeof(shard));
    if (shard_conns_.emplace(shard, conn).second) {
      continue;  // new shard discovered
    }
    extra_conns_.push_back(conn);  // duplicate; keep open, close later
  }
  if (shard_conns_.size() < num_shards) {
    co_return Status(ErrorCode::kTimedOut,
                     "could not reach every shard via the load balancer");
  }
  co_return OkStatus();
}

Task<Status> KvClient::Put(const std::string& key,
                           std::span<const uint8_t> value) {
  auto it = shard_conns_.find(ShardOf(key));
  if (it == shard_conns_.end()) {
    co_return Status(ErrorCode::kNotConnected);
  }
  KvStatus status = KvStatus::kError;
  SOLROS_CO_ASSIGN_OR_RETURN(std::vector<uint8_t> ignored,
                             co_await Call(it->second, KvOp::kPut, key,
                                           value, &status));
  (void)ignored;
  co_return status == KvStatus::kOk
      ? OkStatus()
      : IoError("kv put failed");
}

Task<Result<std::vector<uint8_t>>> KvClient::Get(const std::string& key) {
  auto it = shard_conns_.find(ShardOf(key));
  if (it == shard_conns_.end()) {
    co_return Status(ErrorCode::kNotConnected);
  }
  KvStatus status = KvStatus::kError;
  SOLROS_CO_ASSIGN_OR_RETURN(std::vector<uint8_t> value,
                             co_await Call(it->second, KvOp::kGet, key, {},
                                           &status));
  if (status == KvStatus::kNotFound) {
    co_return NotFoundError(key);
  }
  if (status != KvStatus::kOk) {
    co_return IoError("kv get failed");
  }
  co_return std::move(value);
}

Task<Status> KvClient::Delete(const std::string& key) {
  auto it = shard_conns_.find(ShardOf(key));
  if (it == shard_conns_.end()) {
    co_return Status(ErrorCode::kNotConnected);
  }
  KvStatus status = KvStatus::kError;
  SOLROS_CO_ASSIGN_OR_RETURN(std::vector<uint8_t> ignored,
                             co_await Call(it->second, KvOp::kDelete, key,
                                           {}, &status));
  (void)ignored;
  if (status == KvStatus::kNotFound) {
    co_return NotFoundError(key);
  }
  co_return status == KvStatus::kOk ? OkStatus()
                                    : IoError("kv delete failed");
}

Task<void> KvClient::Close() {
  for (auto& [shard, conn] : shard_conns_) {
    co_await ethernet_->ClientClose(conn, cpu_);
  }
  for (uint64_t conn : extra_conns_) {
    co_await ethernet_->ClientClose(conn, cpu_);
  }
  shard_conns_.clear();
  extra_conns_.clear();
}

}  // namespace solros
