#include "src/apps/image_search.h"

#include <algorithm>
#include <cstring>

#include "src/base/logging.h"
#include "src/base/prng.h"
#include "src/hw/memory.h"
#include "src/sim/sync.h"

namespace solros {
namespace {

struct ImageHeader {
  uint32_t magic = 0x146e5u;  // "IMG"
  uint32_t descriptor_count = 0;
};

// The header occupies a full 4 KiB block so the descriptor payload (and
// the file as a whole) stays block-aligned — whole-file reads then qualify
// for the proxy's zero-copy P2P path.
constexpr uint64_t kImageHeaderBytes = 4096;

uint64_t ImageFileBytes(uint32_t descriptors) {
  return kImageHeaderBytes + uint64_t{descriptors} * kDescriptorDim;
}

}  // namespace

Task<Result<std::vector<std::string>>> GenerateImageDb(
    SolrosFs* fs, const ImageDbConfig& config) {
  Status mk = co_await fs->Mkdir(config.directory);
  if (!mk.ok() && mk.code() != ErrorCode::kAlreadyExists) {
    co_return mk;
  }
  Prng prng(config.seed);
  std::vector<std::string> paths;
  std::vector<uint8_t> blob(ImageFileBytes(config.descriptors_per_image));
  for (int i = 0; i < config.num_images; ++i) {
    ImageHeader header;
    header.descriptor_count = config.descriptors_per_image;
    std::memset(blob.data(), 0, kImageHeaderBytes);
    std::memcpy(blob.data(), &header, sizeof(header));
    for (size_t b = kImageHeaderBytes; b < blob.size(); ++b) {
      blob[b] = static_cast<uint8_t>(prng.Next());
    }
    std::string path =
        config.directory + "/img" + std::to_string(i) + ".feat";
    SOLROS_CO_ASSIGN_OR_RETURN(uint64_t ino, co_await fs->Create(path));
    SOLROS_CO_ASSIGN_OR_RETURN(uint64_t n,
                               co_await fs->WriteAt(ino, 0, blob));
    if (n != blob.size()) {
      co_return IoError("short image write");
    }
    paths.push_back(std::move(path));
  }
  co_return paths;
}

namespace {

// Sum over query descriptors of the min L1 distance to any db descriptor
// (a real, exact nearest-descriptor scan).
uint64_t MatchScore(std::span<const uint8_t> query, uint32_t query_count,
                    std::span<const uint8_t> db, uint32_t db_count) {
  uint64_t total = 0;
  for (uint32_t q = 0; q < query_count; ++q) {
    const uint8_t* qd = query.data() + uint64_t{q} * kDescriptorDim;
    uint64_t best = ~0ull;
    for (uint32_t d = 0; d < db_count; ++d) {
      const uint8_t* dd = db.data() + uint64_t{d} * kDescriptorDim;
      uint64_t dist = 0;
      for (uint32_t k = 0; k < kDescriptorDim; ++k) {
        dist += static_cast<uint64_t>(
            qd[k] > dd[k] ? qd[k] - dd[k] : dd[k] - qd[k]);
      }
      if (dist < best) {
        best = dist;
      }
    }
    total += best;
  }
  return total;
}

struct SearchWork {
  const ImageSearchConfig* config;
  FileService* service;
  Processor* cpu;
  DeviceId buffer_device;
  std::vector<uint8_t> query;
  size_t next_file = 0;
  Status first_error;
  std::vector<ImageMatch> matches;
  uint64_t bytes = 0;
  uint64_t pairs = 0;
};

Task<void> SearchWorker(SearchWork* work, WaitGroup* wg) {
  const ImageSearchConfig& config = *work->config;
  while (true) {
    if (work->next_file >= config.files.size()) {
      break;
    }
    const std::string& path = config.files[work->next_file];
    ++work->next_file;

    auto ino = co_await work->service->Open(path);
    if (!ino.ok()) {
      if (work->first_error.ok()) {
        work->first_error = ino.status();
      }
      break;
    }
    auto stat_size = co_await work->service->Stat(path);
    if (!stat_size.ok()) {
      if (work->first_error.ok()) {
        work->first_error = stat_size.status();
      }
      break;
    }
    DeviceBuffer buffer(work->buffer_device, stat_size->size);
    auto n = co_await work->service->Read(*ino, 0, MemRef::Of(buffer));
    if (!n.ok() || *n != stat_size->size) {
      if (work->first_error.ok()) {
        work->first_error =
            n.ok() ? IoError("short image read") : n.status();
      }
      break;
    }
    work->bytes += *n;

    ImageHeader header;
    std::memcpy(&header, buffer.data(), sizeof(header));
    uint64_t feature_bytes =
        uint64_t{header.descriptor_count} * kDescriptorDim;
    if (kImageHeaderBytes + feature_bytes > *n) {
      if (work->first_error.ok()) {
        work->first_error = IoError("corrupt image file: " + path);
      }
      break;
    }
    uint64_t pair_count =
        uint64_t{header.descriptor_count} * config.query_descriptors;
    // Charge the matching kernel to this processor, then actually run it.
    co_await work->cpu->Compute(static_cast<Nanos>(
        static_cast<double>(pair_count) * config.match_ns_per_pair));
    uint64_t score = MatchScore(
        {work->query.data(), work->query.size()}, config.query_descriptors,
        buffer.Span(kImageHeaderBytes, feature_bytes),
        header.descriptor_count);
    work->pairs += pair_count;
    work->matches.push_back(ImageMatch{path, score});
  }
  wg->Done();
}

}  // namespace

Task<Result<ImageSearchResult>> RunImageSearch(Simulator* sim,
                                               FileService* service,
                                               Processor* cpu,
                                               DeviceId buffer_device,
                                               const ImageSearchConfig&
                                                   config) {
  SearchWork work;
  work.config = &config;
  work.service = service;
  work.cpu = cpu;
  work.buffer_device = buffer_device;
  // Deterministic query descriptors.
  Prng prng(config.query_seed);
  work.query.resize(uint64_t{config.query_descriptors} * kDescriptorDim);
  for (auto& b : work.query) {
    b = static_cast<uint8_t>(prng.Next());
  }

  WaitGroup wg(sim);
  for (int w = 0; w < config.workers; ++w) {
    wg.Add(1);
    Spawn(*sim, SearchWorker(&work, &wg));
  }
  co_await wg.Wait();
  if (!work.first_error.ok()) {
    co_return work.first_error;
  }

  ImageSearchResult result;
  result.images_scanned = work.matches.size();
  result.bytes_read = work.bytes;
  result.descriptor_pairs = work.pairs;
  std::sort(work.matches.begin(), work.matches.end(),
            [](const ImageMatch& a, const ImageMatch& b) {
              return a.score < b.score;
            });
  size_t k = std::min<size_t>(config.top_k, work.matches.size());
  result.top.assign(work.matches.begin(), work.matches.begin() + k);
  co_return result;
}

}  // namespace solros
