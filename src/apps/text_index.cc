#include "src/apps/text_index.h"

#include <cctype>
#include <cstring>
#include <unordered_map>

#include "src/base/logging.h"
#include "src/base/prng.h"
#include "src/hw/memory.h"
#include "src/sim/sync.h"

namespace solros {
namespace {

// Deterministic word from a vocabulary id ("w" + base-26 digits).
void AppendWord(std::string* out, uint64_t id) {
  out->push_back('w');
  do {
    out->push_back(static_cast<char>('a' + id % 26));
    id /= 26;
  } while (id != 0);
}

}  // namespace

Task<Result<std::vector<std::string>>> GenerateCorpus(
    SolrosFs* fs, const CorpusConfig& config) {
  Status mk = co_await fs->Mkdir(config.directory);
  if (!mk.ok() && mk.code() != ErrorCode::kAlreadyExists) {
    co_return mk;
  }
  Prng prng(config.seed);
  std::vector<std::string> paths;
  std::string content;
  content.reserve(config.document_bytes + 64);
  for (int d = 0; d < config.num_documents; ++d) {
    content.clear();
    while (content.size() < config.document_bytes) {
      // Zipf-ish skew: square a uniform draw so low ids are frequent.
      double u = prng.NextDouble();
      uint64_t id = static_cast<uint64_t>(u * u *
                                          static_cast<double>(
                                              config.vocabulary));
      AppendWord(&content, id);
      content.push_back(prng.NextBool(0.05) ? '\n' : ' ');
    }
    content.resize(config.document_bytes);
    std::string path =
        config.directory + "/doc" + std::to_string(d) + ".txt";
    SOLROS_CO_ASSIGN_OR_RETURN(uint64_t ino, co_await fs->Create(path));
    SOLROS_CO_ASSIGN_OR_RETURN(
        uint64_t n,
        co_await fs->WriteAt(
            ino, 0,
            {reinterpret_cast<const uint8_t*>(content.data()),
             content.size()}));
    if (n != content.size()) {
      co_return IoError("short corpus write");
    }
    paths.push_back(std::move(path));
  }
  co_return paths;
}

namespace {

struct IndexShard {
  // term -> postings (doc ids); a real in-memory inverted index.
  std::unordered_map<std::string, std::vector<uint32_t>> terms;
  uint64_t tokens = 0;
};

// Tokenizes `text` and inserts postings for document `doc`.
void TokenizeInto(IndexShard* shard, std::span<const uint8_t> text,
                  uint32_t doc) {
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !std::isalnum(text[i])) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() && std::isalnum(text[i])) {
      ++i;
    }
    if (i > start) {
      std::string term(reinterpret_cast<const char*>(text.data() + start),
                       i - start);
      auto& postings = shard->terms[term];
      if (postings.empty() || postings.back() != doc) {
        postings.push_back(doc);
      }
      ++shard->tokens;
    }
  }
}

struct SharedWork {
  const TextIndexConfig* config;
  FileService* service;
  Processor* cpu;
  DeviceId buffer_device;
  size_t next_file = 0;
  Status first_error;
  uint64_t bytes = 0;
  uint64_t files = 0;
};

Task<void> IndexWorker(SharedWork* work, IndexShard* shard, WaitGroup* wg) {
  const TextIndexConfig& config = *work->config;
  DeviceBuffer buffer(work->buffer_device, config.read_chunk);
  while (true) {
    if (work->next_file >= config.files.size()) {
      break;
    }
    const std::string& path = config.files[work->next_file];
    uint32_t doc = static_cast<uint32_t>(work->next_file);
    ++work->next_file;

    auto ino = co_await work->service->Open(path);
    if (!ino.ok()) {
      if (work->first_error.ok()) {
        work->first_error = ino.status();
      }
      break;
    }
    uint64_t offset = 0;
    while (true) {
      auto n = co_await work->service->Read(*ino, offset, MemRef::Of(buffer));
      if (!n.ok()) {
        if (work->first_error.ok()) {
          work->first_error = n.status();
        }
        break;
      }
      if (*n == 0) {
        break;
      }
      // Real tokenization of the actual bytes, plus the modeled CPU cost
      // of doing it on this processor.
      co_await work->cpu->Compute(static_cast<Nanos>(
          static_cast<double>(*n) * config.tokenize_ns_per_byte));
      TokenizeInto(shard, buffer.Span(0, *n), doc);
      work->bytes += *n;
      offset += *n;
      if (*n < config.read_chunk) {
        break;
      }
    }
    ++work->files;
  }
  wg->Done();
}

}  // namespace

Task<Result<TextIndexResult>> RunTextIndex(Simulator* sim,
                                           FileService* service,
                                           Processor* cpu,
                                           DeviceId buffer_device,
                                           const TextIndexConfig& config) {
  SharedWork work;
  work.config = &config;
  work.service = service;
  work.cpu = cpu;
  work.buffer_device = buffer_device;

  std::vector<IndexShard> shards(config.workers);
  WaitGroup wg(sim);
  for (int w = 0; w < config.workers; ++w) {
    wg.Add(1);
    Spawn(*sim, IndexWorker(&work, &shards[w], &wg));
  }
  co_await wg.Wait();
  if (!work.first_error.ok()) {
    co_return work.first_error;
  }

  // Merge shards into the global index.
  std::unordered_map<std::string, uint64_t> merged;
  TextIndexResult result;
  result.files_indexed = work.files;
  result.bytes_indexed = work.bytes;
  for (const IndexShard& shard : shards) {
    result.tokens += shard.tokens;
    for (const auto& [term, postings] : shard.terms) {
      merged[term] += postings.size();
      result.postings += postings.size();
    }
  }
  result.unique_terms = merged.size();
  co_return result;
}

}  // namespace solros
