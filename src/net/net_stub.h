// Data-plane network stub (§4.4.1–4.4.2).
//
// A thin INET-family shim on the co-processor: socket calls become RPCs to
// the TCP proxy; inbound events (new connections, data arrival) stream over
// the inbound ring and are routed to per-socket event queues by a single
// dispatcher task — "this design alleviates contention on the inbound ring
// buffer by using a single-thread event dispatcher and maximizes parallel
// access ... from multiple threads" (§4.4.2). Outbound data is enqueued on
// the outbound ring (master at the co-processor) for the host to pull.
#ifndef SOLROS_SRC_NET_NET_STUB_H_
#define SOLROS_SRC_NET_NET_STUB_H_

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/base/metrics.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/net/net_frame.h"
#include "src/net/net_options.h"
#include "src/net/net_plug.h"
#include "src/net/server_api.h"
#include "src/rpc/messages.h"
#include "src/rpc/rpc.h"
#include "src/transport/sim_ring.h"

namespace solros {

class NetStub : public ServerSocketApi {
 public:
  NetStub(Simulator* sim, const HwParams& params, Processor* phi_cpu,
          SimRing* rpc_request, SimRing* rpc_response, SimRing* inbound,
          SimRing* outbound, const NetPathOptions& net_options = {});

  // -- ServerSocketApi --------------------------------------------------------
  Task<Result<int64_t>> Listen(uint16_t port, int backlog) override;
  Task<Result<int64_t>> Accept(int64_t listener) override;
  Task<Result<std::vector<uint8_t>>> Recv(int64_t sock) override;
  Task<Status> Send(int64_t sock, std::span<const uint8_t> data) override;
  Task<Status> Close(int64_t sock) override;

  uint64_t events_dispatched() const { return events_; }
  // Messages handed to per-socket recv queues by this stub instance (one
  // per original client message, however the events were coalesced or
  // batched on the wire) — the per-phi fairness signal fig19 reports.
  uint64_t messages_delivered() const { return messages_delivered_; }

  // Retry/timeout policy applied while fault injection is armed. Net RPCs
  // mutate connection state, so only a transport timeout (outcome unknown,
  // at-least-once) is retried; a replayed kSocket that did reach the proxy
  // may leave an orphaned proxy-side handle, which Close() later reaps.
  void set_retry_options(const RpcRetryOptions& options) {
    retry_ = options;
  }
  const RpcRetryOptions& retry_options() const { return retry_; }

 private:
  // One received message plus the trace context it rode in with, so the
  // application-side Recv knows which trace its eventual reply belongs to.
  // Deliberately NOT an aggregate: GCC 12 miscompiles aggregate coroutine
  // by-value parameters (the Channel::Send frame copy aliases the caller's
  // temporary, whose destruction then frees the received payload).
  struct RecvItem {
    RecvItem() = default;
    RecvItem(std::vector<uint8_t> d, uint64_t trace, uint64_t parent)
        : data(std::move(d)), trace_id(trace), parent_span(parent) {}
    std::vector<uint8_t> data;
    uint64_t trace_id = 0;
    uint64_t parent_span = 0;
  };
  struct SocketState {
    std::unique_ptr<Channel<int64_t>> accept_queue;   // listeners
    std::unique_ptr<Channel<RecvItem>> recv_queue;    // conns
    // Context of the last message Recv returned; the next Send on this
    // socket attributes its reply to it (request/response protocols).
    uint64_t reply_trace_id = 0;
    uint64_t reply_parent = 0;
  };

  static Task<void> EventDispatcher(NetStub* self);
  // Services a coalesced/batched inbound record (any record with kBatch or
  // a non-zero segment table): splits it back into per-message deliveries
  // so ServerApi semantics match the uncoalesced wire exactly. With
  // drr_dispatch on, contiguous runs of data messages are delivered
  // deficit-round-robin across sockets (per-socket order preserved).
  // `record` stays alive in the dispatcher's frame.
  Task<void> DispatchRecord(const std::vector<uint8_t>& record,
                            std::optional<SimRing::DequeueStamp> stamp);
  // Delivers one contiguous run of data messages and clears it. Views in
  // `run` alias the record held by DispatchRecord's frame.
  Task<void> DeliverRun(std::vector<std::pair<int64_t, NetSegmentView>>* run);
  Task<void> DeliverMessage(int64_t sock, NetSegmentView message);
  Task<void> HandleControlEvent(NetEvent event);
  SocketState& EnsureSocket(int64_t handle);

  // rpc_.Call with the stub's timeout/retry policy (see set_retry_options).
  Task<Result<NetResponse>> Call(NetRequest request);

  Simulator* sim_;
  HwParams params_;
  Processor* phi_cpu_;
  NetPathOptions options_;
  RpcClient<NetRequest, NetResponse> rpc_;
  RpcRetryOptions retry_;
  SimRing* inbound_;
  SimRing* outbound_;
  // Send-side staging for the outbound ring (DESIGN.md §5.5); passthrough
  // when both staging mechanisms are off.
  std::unique_ptr<NetPlug> plug_;
  std::map<int64_t, SocketState> sockets_;
  uint64_t events_ = 0;
  uint64_t messages_delivered_ = 0;
  // Process counters, resolved once instead of per event/call (see
  // TcpProxy; same hoisting).
  Counter* const c_events_;
  Counter* const c_retries_;
  Counter* const c_recvs_;
  Counter* const c_sends_;
  Counter* const c_send_bytes_;
};

}  // namespace solros

#endif  // SOLROS_SRC_NET_NET_STUB_H_
