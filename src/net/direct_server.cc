#include "src/net/direct_server.h"

#include <utility>

#include "src/base/logging.h"
#include "src/sim/trace.h"

namespace solros {

DirectServer::DirectServer(Simulator* sim, PcieFabric* fabric,
                           const HwParams& params, EthernetFabric* ethernet,
                           const Config& config)
    : sim_(sim),
      fabric_(fabric),
      params_(params),
      ethernet_(ethernet),
      config_(config),
      rx_queue_(sim, "rx-softirq") {
  CHECK(config.stack_cpu != nullptr);
}

Task<void> DirectServer::InboundStack(uint64_t bytes) {
  uint64_t segments = TcpSegments(bytes);
  if (config_.bridge_cpu != nullptr) {
    // The host bridge relays each frame onto the PCIe link.
    co_await config_.bridge_cpu->Compute(segments *
                                         config_.bridge_cpu_per_segment);
    co_await fabric_->Transfer(config_.bridge_device, config_.stack_device,
                               bytes + 64, /*initiator_rate=*/0.0,
                               /*peer_to_peer=*/false);
  }
  // Full TCP/IP receive processing on the stack's processor.
  Nanos work = params_.tcp_message_cpu + segments * params_.tcp_segment_cpu;
  if (config_.single_rx_queue) {
    // One softirq context: all inbound frames serialize (queueing delay is
    // the co-processor-centric tail of Fig. 1(b)).
    co_await rx_queue_.Use(config_.stack_cpu->ScaledTime(work));
  } else {
    co_await config_.stack_cpu->Compute(work);
  }
}

Task<void> DirectServer::OutboundStack(uint64_t bytes) {
  uint64_t segments = TcpSegments(bytes);
  co_await config_.stack_cpu->Compute(params_.tcp_message_cpu +
                                      segments * params_.tcp_segment_cpu);
  if (config_.bridge_cpu != nullptr) {
    co_await fabric_->Transfer(config_.stack_device, config_.bridge_device,
                               bytes + 64, 0.0, false);
    co_await config_.bridge_cpu->Compute(segments *
                                         config_.bridge_cpu_per_segment);
  }
}

Task<Result<int64_t>> DirectServer::Listen(uint16_t port, int backlog) {
  if (port_to_listener_.contains(port)) {
    co_return AlreadyExistsError("port in use");
  }
  co_await config_.stack_cpu->Compute(params_.tcp_segment_cpu);
  int64_t handle = next_handle_++;
  Listener listener;
  listener.port = port;
  listener.backlog = backlog;
  listener.accept_queue = std::make_unique<Channel<int64_t>>(
      sim_, static_cast<size_t>(backlog));
  listeners_.emplace(handle, std::move(listener));
  port_to_listener_[port] = handle;
  ethernet_->RegisterPort(port, this);
  co_return handle;
}

Task<Result<int64_t>> DirectServer::Accept(int64_t listener) {
  auto it = listeners_.find(listener);
  if (it == listeners_.end()) {
    co_return InvalidArgumentError("bad listener handle");
  }
  co_await config_.stack_cpu->Compute(params_.tcp_segment_cpu);
  std::optional<int64_t> sock = co_await it->second.accept_queue->Receive();
  if (!sock.has_value()) {
    co_return Status(ErrorCode::kConnectionReset, "listener closed");
  }
  co_return *sock;
}

Task<Result<std::vector<uint8_t>>> DirectServer::Recv(int64_t sock) {
  auto it = sockets_.find(sock);
  if (it == sockets_.end()) {
    co_return InvalidArgumentError("bad socket handle");
  }
  co_await config_.stack_cpu->Compute(params_.tcp_segment_cpu / 2);
  std::optional<RecvItem> item = co_await it->second.recv_queue->Receive();
  if (!item.has_value()) {
    co_return Status(ErrorCode::kConnectionReset, "peer closed");
  }
  // Remember the request's context so the next Send on this socket (the
  // reply, in request/response protocols) joins the same trace.
  it->second.reply_trace_id = item->trace_id;
  it->second.reply_parent = item->parent_span;
  co_return std::move(item->data);
}

Task<Status> DirectServer::Send(int64_t sock, std::span<const uint8_t> data) {
  auto it = sockets_.find(sock);
  if (it == sockets_.end() || !it->second.open) {
    co_return Status(ErrorCode::kNotConnected);
  }
  TraceContext ctx{it->second.reply_trace_id, it->second.reply_parent};
  it->second.reply_trace_id = 0;
  it->second.reply_parent = 0;
  if (config_.net_options.coalescing) {
    Socket& socket = it->second;
    socket.staged.emplace_back(
        std::vector<uint8_t>(data.begin(), data.end()), ctx, sim_->now());
    socket.staged_bytes += data.size();
    if (socket.staged_bytes >= config_.net_options.net_coalesce_bytes) {
      co_return co_await FlushStagedSends(sock);
    }
    if (!socket.plug_armed) {
      socket.plug_armed = true;
      Spawn(*sim_, SendPlugTimer(this, sock));
    }
    co_return OkStatus();
  }
  {
    // Outbound TCP transmit processing — the direct stack's service stage.
    ScopedSpan stack(ctx.traced() ? sim_->tracer() : nullptr, "directsrv",
                     "net.server.stack", ctx);
    co_await OutboundStack(data.size());
  }
  co_return co_await ethernet_->DeliverToClient(
      it->second.conn_id, std::vector<uint8_t>(data.begin(), data.end()),
      ctx);
}

Task<Status> DirectServer::FlushStagedSends(int64_t sock) {
  auto it = sockets_.find(sock);
  if (it == sockets_.end() || it->second.staged.empty()) {
    co_return OkStatus();
  }
  std::vector<StagedReply> train = std::move(it->second.staged);
  it->second.staged.clear();
  it->second.staged_bytes = 0;
  // The socket entry can be erased while we await below; keep only the
  // connection id.
  const uint64_t conn_id = it->second.conn_id;
  uint64_t total_bytes = 0;
  for (const StagedReply& reply : train) {
    total_bytes += reply.data.size();
  }
  TraceContext span_ctx;
  if (Tracer* tracer = sim_->tracer(); tracer != nullptr) {
    const Nanos now = sim_->now();
    for (const StagedReply& reply : train) {
      if (reply.ctx.traced()) {
        if (!span_ctx.traced()) {
          span_ctx = reply.ctx;
        }
        tracer->RecordSpan("plug", "net.plug.wait", reply.staged_at, now,
                           reply.ctx);
      }
    }
  }
  {
    // One transmit pass for the whole train: tcp_message_cpu is paid once,
    // segment costs scale with the merged byte count (the GSO analogue).
    // The span uses the first traced reply's context; the other replies'
    // share lands in their residual stub bucket, which stays exact.
    ScopedSpan stack(span_ctx.traced() ? sim_->tracer() : nullptr,
                     "directsrv", "net.server.stack", span_ctx);
    co_await OutboundStack(total_bytes);
  }
  Status result = OkStatus();
  for (StagedReply& reply : train) {
    Status status = co_await ethernet_->DeliverToClient(
        conn_id, std::move(reply.data), reply.ctx);
    if (!status.ok()) {
      result = status;
    }
  }
  co_return result;
}

Task<void> DirectServer::SendPlugTimer(DirectServer* self, int64_t sock) {
  // Bounds staging latency: anything staged flushes at most one plug
  // window after it was staged; exits once the socket goes idle or away.
  while (true) {
    co_await Delay(self->config_.net_options.net_plug_window_ns);
    auto it = self->sockets_.find(sock);
    if (it == self->sockets_.end()) {
      co_return;
    }
    if (it->second.staged.empty()) {
      it->second.plug_armed = false;
      co_return;
    }
    (void)co_await self->FlushStagedSends(sock);
  }
}

Task<Status> DirectServer::Close(int64_t sock) {
  if (config_.net_options.coalescing) {
    // Drain staged replies before the teardown below erases the socket.
    (void)co_await FlushStagedSends(sock);
  }
  auto it = sockets_.find(sock);
  if (it == sockets_.end()) {
    co_return InvalidArgumentError("bad socket handle");
  }
  it->second.open = false;
  it->second.recv_queue->Close();
  ethernet_->CloseFromServer(it->second.conn_id);
  conn_to_sock_.erase(it->second.conn_id);
  sockets_.erase(it);
  co_return OkStatus();
}

Task<Status> DirectServer::OnConnect(uint64_t conn_id, uint16_t port,
                                     uint32_t client_addr) {
  auto pit = port_to_listener_.find(port);
  if (pit == port_to_listener_.end()) {
    co_return Status(ErrorCode::kConnectionReset, "no listener");
  }
  Listener& listener = listeners_.at(pit->second);
  co_await InboundStack(64);  // SYN processing
  int64_t handle = next_handle_++;
  Socket socket;
  socket.conn_id = conn_id;
  socket.recv_queue = std::make_unique<Channel<RecvItem>>(sim_, 0);
  sockets_.emplace(handle, std::move(socket));
  conn_to_sock_[conn_id] = handle;
  if (!listener.accept_queue->TrySend(handle)) {
    sockets_.erase(handle);
    conn_to_sock_.erase(conn_id);
    co_return Status(ErrorCode::kConnectionReset, "backlog full");
  }
  co_return OkStatus();
}

Task<void> DirectServer::OnClientData(uint64_t conn_id,
                                      std::vector<uint8_t> data,
                                      TraceContext ctx) {
  auto it = conn_to_sock_.find(conn_id);
  if (it == conn_to_sock_.end()) {
    co_return;
  }
  {
    // Inbound TCP receive processing (bridge hop + softirq queueing
    // included) — the direct stack's service stage.
    ScopedSpan stack(ctx.traced() ? sim_->tracer() : nullptr, "directsrv",
                     "net.server.stack", ctx);
    co_await InboundStack(data.size());
  }
  auto sit = sockets_.find(it->second);
  if (sit != sockets_.end() && sit->second.open) {
    // Handoff wait until the application's Recv picks the message up —
    // the direct stack's dispatch stage.
    ScopedSpan dispatch(ctx.traced() ? sim_->tracer() : nullptr, "directsrv",
                        "net.server.dispatch", ctx);
    co_await sit->second.recv_queue->Send(
        {std::move(data), ctx.trace_id, ctx.parent_span});
  }
}

Task<void> DirectServer::OnClientClose(uint64_t conn_id) {
  auto it = conn_to_sock_.find(conn_id);
  if (it == conn_to_sock_.end()) {
    co_return;
  }
  co_await InboundStack(64);
  auto sit = sockets_.find(it->second);
  if (sit != sockets_.end()) {
    sit->second.open = false;
    sit->second.recv_queue->Close();
  }
}

}  // namespace solros
