// Server-side socket API shared by all three server configurations.
//
// An application (echo server, key-value store, image-search frontend) is
// written once against ServerSocketApi and runs unchanged on:
//  * NetStub        — Solros data-plane stub on a co-processor (§4.4)
//  * PhiLinuxServer — stock co-processor-centric TCP stack on the Phi
//  * HostServer     — host-resident server (the latency upper bound)
//
// Message-granular semantics: Recv returns one message sent by the peer
// (byte-stream reassembly is out of scope, DESIGN.md §7).
#ifndef SOLROS_SRC_NET_SERVER_API_H_
#define SOLROS_SRC_NET_SERVER_API_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/sim/task.h"

namespace solros {

class ServerSocketApi {
 public:
  virtual ~ServerSocketApi() = default;

  // socket() + bind() + listen() in one call; returns the listener handle.
  virtual Task<Result<int64_t>> Listen(uint16_t port, int backlog) = 0;
  // Waits for a client connection; returns a connected socket handle.
  virtual Task<Result<int64_t>> Accept(int64_t listener) = 0;
  // Waits for the next message from the peer; kConnectionReset after close.
  virtual Task<Result<std::vector<uint8_t>>> Recv(int64_t sock) = 0;
  virtual Task<Status> Send(int64_t sock, std::span<const uint8_t> data) = 0;
  virtual Task<Status> Close(int64_t sock) = 0;
};

}  // namespace solros

#endif  // SOLROS_SRC_NET_SERVER_API_H_
