// Adaptive payload-copy charging for the net data path (DESIGN.md §5.5).
//
// With NetPathOptions::adaptive_copy on, payload movement at the proxy and
// stub is charged through the same memcpy-vs-DMA policy the rings use
// (src/transport/adaptive_copy.h) instead of being a free host-side vector
// copy. The cost is attributed to the copy_dma stage via a "dma.copy" span,
// which the caller MUST emit from inside a service span of the same trace
// (net.proxy.inbound / net.proxy.outbound) so the proxy = service - copy
// subtraction in src/sim/attribution.cc never clamps.
#ifndef SOLROS_SRC_NET_PAYLOAD_COPY_H_
#define SOLROS_SRC_NET_PAYLOAD_COPY_H_

#include <cstdint>

#include "src/base/metrics.h"
#include "src/hw/params.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"
#include "src/sim/trace.h"
#include "src/transport/adaptive_copy.h"

namespace solros {

inline Task<void> ChargeAdaptivePayloadCopy(Simulator* sim,
                                            const HwParams& params,
                                            uint64_t bytes,
                                            bool initiator_is_host,
                                            TraceContext ctx) {
  if (bytes == 0) {
    co_return;
  }
  static Counter* const memcpy_copies =
      MetricRegistry::Default().GetCounter("net.copy.memcpy");
  static Counter* const dma_copies =
      MetricRegistry::Default().GetCounter("net.copy.dma");
  (AdaptivePicksDma(params, bytes, initiator_is_host) ? dma_copies
                                                      : memcpy_copies)
      ->Increment();
  ScopedSpan span(sim, "copy", "dma.copy", ctx);
  co_await Delay(CopyTime(params, bytes, initiator_is_host,
                          CopyPolicy::kAdaptive));
}

// Same cost model and counters, but no "dma.copy" span — for stub-side
// copies, which run outside any taxonomy service span: a copy_dma span
// there would make proxy = service - copy clamp on the proxy side of the
// same trace. The time lands in the residual stub bucket instead, which
// stays exact.
inline Task<void> ChargeAdaptivePayloadCopyUnattributed(
    const HwParams& params, uint64_t bytes, bool initiator_is_host) {
  if (bytes == 0) {
    co_return;
  }
  static Counter* const memcpy_copies =
      MetricRegistry::Default().GetCounter("net.copy.memcpy");
  static Counter* const dma_copies =
      MetricRegistry::Default().GetCounter("net.copy.dma");
  (AdaptivePicksDma(params, bytes, initiator_is_host) ? dma_copies
                                                      : memcpy_copies)
      ->Increment();
  co_await Delay(CopyTime(params, bytes, initiator_is_host,
                          CopyPolicy::kAdaptive));
}

}  // namespace solros

#endif  // SOLROS_SRC_NET_PAYLOAD_COPY_H_
