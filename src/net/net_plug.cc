#include "src/net/net_plug.h"

#include <utility>

#include "src/sim/trace.h"

namespace solros {

NetPlug::NetPlug(Simulator* sim, SimRing* ring, const NetPathOptions& options,
                 const std::string& counter_prefix)
    : sim_(sim),
      ring_(ring),
      options_(options),
      space_(sim),
      c_doorbells_(MetricRegistry::Default().GetCounter(counter_prefix +
                                                        ".doorbells")),
      c_events_pushed_(MetricRegistry::Default().GetCounter(
          counter_prefix + ".events_pushed")),
      c_coalesced_segments_(MetricRegistry::Default().GetCounter(
          counter_prefix + ".coalesced_segments")),
      c_plug_drops_(MetricRegistry::Default().GetCounter(counter_prefix +
                                                         ".plug_drops")),
      h_events_per_push_(MetricRegistry::Default().GetHistogram(
          counter_prefix + ".events_per_push")) {}

Task<Status> NetPlug::SendData(const NetEvent& header,
                               std::span<const uint8_t> payload) {
  if (!options_.staging_enabled()) {
    // Legacy path: one event, one push, one doorbell. The counters are the
    // only addition (pure bookkeeping, no simulated time).
    ++doorbells_;
    ++events_pushed_;
    c_doorbells_->Increment();
    c_events_pushed_->Increment();
    h_events_per_push_->Record(1);
    co_return co_await ring_->Send(EncodePodWithPayload(header, payload));
  }

  while (backlog_bytes() >= options_.staging_capacity) {
    co_await space_.Wait();
  }

  if (options_.coalescing) {
    SocketStage& stage = stages_[header.sock];
    NetSegment seg;
    seg.length = static_cast<uint32_t>(payload.size());
    seg.trace_id = header.trace_id;
    seg.parent_span = header.parent_span;
    stage.segs.push_back(seg);
    stage.bytes.insert(stage.bytes.end(), payload.begin(), payload.end());
    stage.staged_at.push_back(sim_->now());
    staged_bytes_ += payload.size();
    if (stage.bytes.size() >= options_.net_coalesce_bytes) {
      SealStage(header.sock, &stage);
    }
  } else {
    Enqueue(EncodePodWithPayload(header, payload));
  }

  if (pending_.size() >= options_.max_events_per_push ||
      pending_bytes_ >= options_.max_push_bytes) {
    // Flush detached, never inline: SendData runs inside the caller's open
    // service span, and a ring push here would let the pushed record's
    // ready_at land while that span is still open — overlapping the queue
    // and service stages and clamping the attribution (fig14 exactness).
    // Spawn posts to the event loop, so the push starts only after the
    // caller's stack (and span) unwinds at this same tick.
    ScheduleFlush();
    co_return OkStatus();
  }
  ArmTimer();
  co_return OkStatus();
}

void NetPlug::ScheduleFlush() {
  if (flushing_ || flush_scheduled_) {
    return;
  }
  flush_scheduled_ = true;
  Spawn(*sim_, DetachedFlush(this));
}

Task<void> NetPlug::DetachedFlush(NetPlug* self) {
  self->flush_scheduled_ = false;
  (void)co_await self->FlushPending();
}

Task<Status> NetPlug::SendControl(const NetEvent& event) {
  if (!options_.staging_enabled()) {
    ++doorbells_;
    ++events_pushed_;
    c_doorbells_->Increment();
    c_events_pushed_->Increment();
    h_events_per_push_->Record(1);
    co_return co_await ring_->Send(EncodePod(event));
  }
  while (backlog_bytes() >= options_.staging_capacity) {
    co_await space_.Wait();
  }
  // Seal this socket's staged data first so the control event cannot
  // overtake it; pending_ is FIFO, so per-socket order is preserved even
  // though the control event now rides the plug window like data does
  // (close storms batch instead of ringing one doorbell per FIN).
  auto it = stages_.find(event.sock);
  if (it != stages_.end() && !it->second.segs.empty()) {
    SealStage(event.sock, &it->second);
  }
  Enqueue(EncodePod(event));
  if (pending_.size() >= options_.max_events_per_push ||
      pending_bytes_ >= options_.max_push_bytes) {
    ScheduleFlush();
    co_return OkStatus();
  }
  ArmTimer();
  co_return OkStatus();
}

Task<Status> NetPlug::Flush() {
  if (!options_.staging_enabled()) {
    co_return OkStatus();
  }
  SealAll();
  co_return co_await FlushPending();
}

void NetPlug::SealStage(int64_t sock, SocketStage* stage) {
  if (stage->segs.empty()) {
    return;
  }
  Tracer* tracer = sim_->tracer();
  if (tracer != nullptr) {
    const Nanos now = sim_->now();
    for (size_t i = 0; i < stage->segs.size(); ++i) {
      const NetSegment& seg = stage->segs[i];
      if (seg.trace_id != 0) {
        TraceContext ctx;
        ctx.trace_id = seg.trace_id;
        ctx.parent_span = seg.parent_span;
        tracer->RecordSpan("plug", "net.plug.wait", stage->staged_at[i], now,
                           ctx);
      }
    }
  }
  c_coalesced_segments_->Increment(stage->segs.size());
  staged_bytes_ -= stage->bytes.size();
  Enqueue(EncodeCoalescedData(sock, stage->segs, stage->bytes));
  stage->segs.clear();
  stage->bytes.clear();
  stage->staged_at.clear();
}

void NetPlug::SealAll() {
  for (auto& [sock, stage] : stages_) {
    SealStage(sock, &stage);
  }
}

void NetPlug::Enqueue(std::vector<uint8_t> record) {
  pending_bytes_ += record.size();
  pending_.push_back(std::move(record));
}

void NetPlug::ArmTimer() {
  if (timer_armed_ || backlog_bytes() == 0) {
    return;
  }
  timer_armed_ = true;
  Spawn(*sim_, PlugTimer(this));
}

Task<void> NetPlug::PlugTimer(NetPlug* self) {
  // Bounds plug latency: anything staged or pending flushes at most one
  // window after the timer arms, regardless of ongoing traffic.
  while (self->backlog_bytes() > 0) {
    co_await Delay(self->options_.net_plug_window_ns);
    self->SealAll();
    (void)co_await self->FlushPending();
  }
  self->timer_armed_ = false;
}

Task<Status> NetPlug::FlushPending() {
  if (flushing_) {
    // The in-flight flusher drains everything pending, including records
    // enqueued while it awaits the ring.
    co_return OkStatus();
  }
  flushing_ = true;
  Status result = OkStatus();
  while (!pending_.empty()) {
    std::vector<std::vector<uint8_t>> frame_records;
    size_t frame_bytes = 0;
    const uint32_t per_push =
        options_.vectored_push ? options_.max_events_per_push : 1;
    while (!pending_.empty() && frame_records.size() < per_push &&
           (frame_records.empty() || frame_bytes + pending_.front().size() <=
                                         options_.max_push_bytes)) {
      frame_bytes += pending_.front().size();
      pending_bytes_ -= pending_.front().size();
      frame_records.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    std::vector<uint8_t> frame =
        frame_records.size() == 1 ? std::move(frame_records.front())
                                  : EncodeBatch(frame_records);
    ++doorbells_;
    events_pushed_ += frame_records.size();
    c_doorbells_->Increment();
    c_events_pushed_->Increment(frame_records.size());
    h_events_per_push_->Record(frame_records.size());
    Status status = co_await ring_->Send(frame);
    if (!status.ok()) {
      c_plug_drops_->Increment(frame_records.size());
      result = status;
    }
    space_.NotifyAll();
  }
  flushing_ = false;
  co_return result;
}

}  // namespace solros
