// Control-plane TCP proxy (§4.4).
//
// The proxy terminates client TCP on fast host cores and exchanges socket
// *events* and data with data-plane stubs over per-co-processor ring pairs:
//
//   inbound ring  (master at the HOST)  — kAccepted / kData / kPeerClosed
//                                         events; co-processor DMA engines
//                                         pull incoming data (§4.4.1);
//   outbound ring (master at the PHI)   — stub send records; host DMA
//                                         engines pull outgoing data.
//
// It also owns the shared listening socket (§4.4.3): multiple co-processors
// may listen on one port, and a pluggable ForwardingPolicy assigns each new
// client connection to one of them.
#ifndef SOLROS_SRC_NET_TCP_PROXY_H_
#define SOLROS_SRC_NET_TCP_PROXY_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/base/metrics.h"
#include "src/base/sharding.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/net/conntrack.h"
#include "src/net/ethernet.h"
#include "src/net/load_balancer.h"
#include "src/net/net_frame.h"
#include "src/net/net_options.h"
#include "src/net/net_plug.h"
#include "src/rpc/messages.h"
#include "src/rpc/rpc.h"
#include "src/transport/sim_ring.h"

namespace solros {

// Pure shard-pick decision, shared by TcpProxy::PickShard and its
// regression test. `depth(k)` reads shard k's live event-loop depth.
// Returns the picked shard; sets *handoff when the pick overrides the
// hash-primary. A handoff needs depth(primary) > 2*depth(lightest) + 1
// with depth(lightest) >= 0, i.e. depth(primary) >= 2 — so a shallow
// primary (the steady-state common case) skips the O(shards) scan
// entirely, with behavior identical to the always-scan implementation.
template <typename DepthFn>
int PickShardForDepths(int primary, int count, DepthFn&& depth,
                       bool* handoff) {
  *handoff = false;
  if (count <= 1) {
    return 0;
  }
  const int64_t primary_depth = depth(primary);
  if (primary_depth <= 1) {
    return primary;
  }
  int lightest = 0;
  for (int k = 1; k < count; ++k) {
    if (depth(k) < depth(lightest)) {
      lightest = k;
    }
  }
  // Handoff only on a real imbalance: the primary is carrying more than
  // double the lightest loop's depth. Hash placement stays the common case
  // so connection state keeps core affinity.
  if (primary != lightest && primary_depth > 2 * depth(lightest) + 1) {
    *handoff = true;
    return lightest;
  }
  return primary;
}

struct TcpProxyStats {
  uint64_t rpcs = 0;
  uint64_t connections_forwarded = 0;
  uint64_t inbound_messages = 0;
  uint64_t outbound_messages = 0;
  uint64_t inbound_bytes = 0;
  uint64_t outbound_bytes = 0;
  // Connections steered away from their hash-primary shard because its
  // event loop was overloaded (live load handoff).
  uint64_t shard_handoffs = 0;
};

class TcpProxy : public ServerPort {
 public:
  // `shard_cores` (optional) shards the proxy's event-loop work: each
  // connection is pinned to one core by connection hash (with a live
  // handoff to the lightest shard when the primary's depth runs away) and
  // all of its TCP processing charges go to that core, reported under
  // "net.proxy[k]". Empty => the historical single loop on `host_cpu`
  // reported as "net.proxy". The listener table and forwarding policy stay
  // shared — the shared listening socket (§4.4.3) is one accept queue no
  // matter how many shards drain it.
  TcpProxy(Simulator* sim, const HwParams& params, Processor* host_cpu,
           EthernetFabric* ethernet, std::unique_ptr<ForwardingPolicy> policy,
           std::vector<Processor*> shard_cores = {},
           const NetPathOptions& net_options = {});

  // Wires one data-plane OS: its RPC rings (stub -> proxy socket calls) and
  // the inbound/outbound data rings. Starts the serving pumps.
  void AttachDataPlane(uint32_t dataplane_id, SimRing* rpc_request,
                       SimRing* rpc_response, SimRing* inbound,
                       SimRing* outbound);

  // -- ServerPort (wire side) -------------------------------------------------
  Task<Status> OnConnect(uint64_t conn_id, uint16_t port,
                         uint32_t client_addr) override;
  Task<void> OnClientData(uint64_t conn_id, std::vector<uint8_t> data,
                          TraceContext ctx) override;
  Task<void> OnClientClose(uint64_t conn_id) override;

  // Per-connection table (always on; see src/net/conntrack.h).
  ConnTracker& conntrack() { return *conntrack_; }
  const ConnTracker& conntrack() const { return *conntrack_; }

  const TcpProxyStats& stats() const { return stats_; }
  ForwardingPolicy* policy() { return policy_.get(); }
  int shard_count() const { return static_cast<int>(shards_.size()); }
  // Live event-loop depth of shard `k` (requests + events in service).
  int64_t ShardDepth(int k) const {
    const Shard& shard = shards_[static_cast<size_t>(k)];
    return shard.use != nullptr ? shard.use->depth() : 0;
  }

 private:
  // One claimed outbound ring record plus its dequeue stamp (captured at
  // Receive time; the DRR pump processes it later). Deliberately not an
  // aggregate — see NetStub::RecvItem for the GCC 12 coroutine-parameter
  // pitfall.
  struct OutboundItem {
    OutboundItem() = default;
    OutboundItem(std::vector<uint8_t> r,
                 std::optional<SimRing::DequeueStamp> s)
        : record(std::move(r)), stamp(s) {}
    std::vector<uint8_t> record;
    std::optional<SimRing::DequeueStamp> stamp;
  };
  struct DataPlane {
    uint32_t id = 0;
    SimRing* inbound = nullptr;
    SimRing* outbound = nullptr;
    std::unique_ptr<RpcServer<NetRequest, NetResponse>> rpc;
    // Send-side staging for the inbound ring (DESIGN.md §5.5); passthrough
    // when both staging mechanisms are off.
    std::unique_ptr<NetPlug> plug;
    // DRR outbound state (options.drr_dispatch): records claimed by this
    // plane's feeder, admitted fairly by the shared pump into `work`, and
    // serviced by this plane's worker — planes process concurrently, DRR
    // only decides admission order.
    std::deque<OutboundItem> drr_queue;
    std::deque<OutboundItem> work;
    uint64_t drr_deficit = 0;
  };
  // One event-loop shard: a dedicated core plus its USE series
  // ("net.proxy[k]"; the unsharded proxy is one shard named "net.proxy").
  struct Shard {
    Processor* core = nullptr;
    UseSeries* use = nullptr;
  };
  // One listener entry on a (shared) port.
  struct PortListeners {
    // (dataplane id, stub-side listener handle), plus balance bookkeeping.
    std::vector<std::pair<uint32_t, int64_t>> members;
    std::vector<BalanceTarget> targets;
  };
  struct ProxySocket {
    int64_t handle = 0;
    uint64_t conn_id = 0;
    uint32_t dataplane = 0;
    uint32_t shard = 0;  // event-loop shard all this socket's work runs on
    bool open = true;
  };

  Task<NetResponse> HandleRpc(uint32_t dataplane_id, NetRequest request);
  static Task<void> OutboundPump(TcpProxy* self, DataPlane* dataplane);
  // DRR mode: one feeder per plane claims ring records into drr_queue; the
  // single shared pump sweeps planes deficit-round-robin so one hot phi
  // cannot starve the rest.
  static Task<void> OutboundFeeder(TcpProxy* self, DataPlane* dataplane);
  static Task<void> DrrOutboundPump(TcpProxy* self);
  // DRR mode: services one plane's admitted records, concurrently with the
  // other planes' workers (the pump alone would serialize every plane's
  // shard compute and wire hops behind one loop).
  static Task<void> DrrPlaneWorker(TcpProxy* self, DataPlane* dataplane);
  // DRR mode: client-wire delivery of one record's messages, spawned off
  // the worker loop so the NIC hop overlaps the next record's shard
  // compute. Per-connection order is preserved: one worker per plane emits
  // the trains in order and the downlink wire is FIFO with fixed latency.
  static Task<void> DeliverTrain(
      TcpProxy* self, uint64_t conn_id,
      std::vector<std::pair<TraceContext, std::vector<uint8_t>>> messages);
  // Services one outbound ring record: a legacy single-message event, a
  // coalesced multi-segment event, or a kBatch of either.
  Task<void> ProcessOutboundRecord(DataPlane* dataplane,
                                   std::vector<uint8_t> record,
                                   std::optional<SimRing::DequeueStamp> stamp);
  // `frame` aliases the caller's record, which the caller keeps alive for
  // the duration of the call.
  Task<void> ProcessOutboundEvent(DataPlane* dataplane, NetFrameView frame,
                                  std::optional<SimRing::DequeueStamp> stamp);
  Task<Status> SendEvent(uint32_t dataplane_id, const NetEvent& event,
                         std::span<const uint8_t> payload);
  // Shard for a new wire connection: connection hash, overridden by a
  // handoff to the lightest shard when the primary's live depth runs away.
  uint32_t PickShard(uint64_t conn_id);

  Simulator* sim_;
  HwParams params_;
  Processor* host_cpu_;
  EthernetFabric* ethernet_;
  NetPathOptions options_;
  std::unique_ptr<ForwardingPolicy> policy_;
  // Event-loop shards; size 1 reproduces the historical single proxy loop.
  std::vector<Shard> shards_;
  std::map<uint32_t, DataPlane> dataplanes_;
  std::map<uint16_t, PortListeners> listeners_;
  std::map<int64_t, ProxySocket> sockets_;       // by proxy handle
  std::map<uint64_t, int64_t> conn_to_socket_;   // wire conn -> handle
  int64_t next_handle_ = 1;
  TcpProxyStats stats_;
  std::unique_ptr<ConnTracker> conntrack_;
  // DRR pump coordination: feeders bump the epoch and notify on every
  // claimed record; the pump waits when every plane's queue is empty.
  Condition drr_ready_;
  Condition drr_space_;
  // Worker coordination: the pump notifies work_ready_ on every admission,
  // workers notify work_space_ on every claim, and drr_pump_done_ releases
  // idle workers once every feeder has drained.
  Condition work_ready_;
  Condition work_space_;
  uint64_t drr_epoch_ = 0;
  int live_feeders_ = 0;
  bool drr_pump_running_ = false;
  bool drr_pump_done_ = false;
  static constexpr size_t kDrrFeederCredit = 16;
  // Per-plane admitted-but-unserviced bound: deep enough to keep a worker
  // busy, shallow enough that DRR order still decides service order.
  static constexpr size_t kWorkerBacklog = 4;
  // Process counters, resolved once at construction instead of a registry
  // map lookup per message on the hot paths (FsProxy does the same).
  Counter* const c_rpcs_;
  Counter* const c_shard_handoffs_;
  Counter* const c_bad_policy_picks_;
  Counter* const c_connections_forwarded_;
  Counter* const c_inbound_messages_;
  Counter* const c_inbound_bytes_;
  Counter* const c_outbound_messages_;
  Counter* const c_outbound_bytes_;
  Counter* const c_events_dropped_;
};

}  // namespace solros

#endif  // SOLROS_SRC_NET_TCP_PROXY_H_
