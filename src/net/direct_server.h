// Direct (non-Solros) server stacks: host-resident and bridged Phi-Linux.
//
// Both terminate TCP on a single processor; they differ in which processor
// runs the stack and whether frames take an extra bridged hop over PCIe:
//
//  * HostServerConfig()     — the stack runs on fast host cores (the paper's
//    "Host" line, the latency/throughput upper bound);
//  * PhiLinuxServerConfig() — "we configured a bridge in our server so our
//    client machine can directly access a Xeon Phi with a designated IP
//    address" (§6): the host forwards every frame over the PCIe link and
//    the full TCP stack then runs on slow co-processor cores — the
//    co-processor-centric baseline of Fig. 1(b).
#ifndef SOLROS_SRC_NET_DIRECT_SERVER_H_
#define SOLROS_SRC_NET_DIRECT_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>

#include "src/hw/fabric.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/net/ethernet.h"
#include "src/net/net_options.h"
#include "src/net/server_api.h"
#include "src/sim/resource.h"
#include "src/sim/sync.h"

namespace solros {

class DirectServer : public ServerPort, public ServerSocketApi {
 public:
  struct Config {
    Processor* stack_cpu = nullptr;  // runs the TCP stack + the app
    // Bridged path (Phi-Linux): frames are relayed by this host CPU and
    // cross the PCIe fabric to `stack_device`.
    Processor* bridge_cpu = nullptr;
    DeviceId stack_device;            // device hosting the stack
    DeviceId bridge_device;           // host side of the bridge
    Nanos bridge_cpu_per_segment = Nanoseconds(500);
    // Stock Phi-Linux funnels receive processing through one softirq
    // context; that single queue is where Fig. 1(b)'s long tail comes
    // from. Host stacks use RSS (parallel queues).
    bool single_rx_queue = false;
    // Send-side segment coalescing (only `coalescing`,
    // `net_coalesce_bytes` and `net_plug_window_ns` apply here): replies
    // to the same socket stage until the size or plug-window trigger, then
    // one OutboundStack charge covers the whole train (tcp_message_cpu
    // amortized) and each message still reaches the client individually.
    // Off by default — baseline rows stay byte-identical.
    NetPathOptions net_options;
  };

  DirectServer(Simulator* sim, PcieFabric* fabric, const HwParams& params,
               EthernetFabric* ethernet, const Config& config);

  // -- ServerSocketApi (the application side) --------------------------------
  Task<Result<int64_t>> Listen(uint16_t port, int backlog) override;
  Task<Result<int64_t>> Accept(int64_t listener) override;
  Task<Result<std::vector<uint8_t>>> Recv(int64_t sock) override;
  Task<Status> Send(int64_t sock, std::span<const uint8_t> data) override;
  Task<Status> Close(int64_t sock) override;

  // -- ServerPort (the wire side) ---------------------------------------------
  Task<Status> OnConnect(uint64_t conn_id, uint16_t port,
                         uint32_t client_addr) override;
  Task<void> OnClientData(uint64_t conn_id, std::vector<uint8_t> data,
                          TraceContext ctx) override;
  Task<void> OnClientClose(uint64_t conn_id) override;

 private:
  struct Listener {
    uint16_t port;
    int backlog;
    std::unique_ptr<Channel<int64_t>> accept_queue;
  };
  // One received message plus its trace context. Deliberately not an
  // aggregate — see NetStub::RecvItem for the GCC 12 coroutine-parameter
  // pitfall.
  struct RecvItem {
    RecvItem() = default;
    RecvItem(std::vector<uint8_t> d, uint64_t trace, uint64_t parent)
        : data(std::move(d)), trace_id(trace), parent_span(parent) {}
    std::vector<uint8_t> data;
    uint64_t trace_id = 0;
    uint64_t parent_span = 0;
  };
  // One reply staged by send-side coalescing, with the context and stage
  // time its retroactive "net.plug.wait" span needs at flush.
  struct StagedReply {
    StagedReply() = default;
    StagedReply(std::vector<uint8_t> d, TraceContext c, Nanos at)
        : data(std::move(d)), ctx(c), staged_at(at) {}
    std::vector<uint8_t> data;
    TraceContext ctx;
    Nanos staged_at = 0;
  };
  struct Socket {
    uint64_t conn_id = 0;
    std::unique_ptr<Channel<RecvItem>> recv_queue;
    bool open = true;
    // Context of the last message Recv returned; the next Send replies to it.
    uint64_t reply_trace_id = 0;
    uint64_t reply_parent = 0;
    // Send-side coalescing stage (config.net_options.coalescing).
    std::vector<StagedReply> staged;
    uint64_t staged_bytes = 0;
    bool plug_armed = false;
  };

  // Inbound/outbound hop costs for this configuration.
  Task<void> InboundStack(uint64_t bytes);
  Task<void> OutboundStack(uint64_t bytes);

  // Charges one OutboundStack pass for everything staged on `sock` and
  // delivers each reply to the client in order.
  Task<Status> FlushStagedSends(int64_t sock);
  static Task<void> SendPlugTimer(DirectServer* self, int64_t sock);

  Simulator* sim_;
  PcieFabric* fabric_;
  HwParams params_;
  EthernetFabric* ethernet_;
  Config config_;
  FifoResource rx_queue_;
  int64_t next_handle_ = 1;
  std::map<int64_t, Listener> listeners_;
  std::map<uint16_t, int64_t> port_to_listener_;
  std::map<int64_t, Socket> sockets_;
  std::map<uint64_t, int64_t> conn_to_sock_;
};

}  // namespace solros

#endif  // SOLROS_SRC_NET_DIRECT_SERVER_H_
