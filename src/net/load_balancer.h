// Pluggable forwarding policies for the shared listening socket (§4.4.3).
//
// "Solros provides a pluggable structure to enable packet forwarding rules
// for an address and port pair, which can either be connection-based (i.e.,
// for every new client connection) or content-based... In addition, a user
// can use other extra information, such as load on each co-processor, to
// make a forwarding decision."
#ifndef SOLROS_SRC_NET_LOAD_BALANCER_H_
#define SOLROS_SRC_NET_LOAD_BALANCER_H_

#include <cstdint>
#include <span>
#include <string_view>

namespace solros {

// One candidate co-processor listener on a shared port.
struct BalanceTarget {
  uint32_t dataplane = 0;       // data-plane OS id
  uint64_t active_conns = 0;    // currently assigned connections
  uint64_t total_assigned = 0;  // lifetime assignments
  // Live backlog the proxy refreshes at pick time: inbound events sent to
  // this data plane but not yet drained from its ring (the same sends that
  // feed the ring's USE depth gauge). Connection counts age; this is what
  // the target's service loop actually has queued right now.
  uint64_t queue_depth = 0;
};

class ForwardingPolicy {
 public:
  virtual ~ForwardingPolicy() = default;
  // Picks an index into `targets` (non-empty) for a new connection from
  // `client_addr` to `port`.
  virtual size_t Pick(uint32_t client_addr, uint16_t port,
                      std::span<const BalanceTarget> targets) = 0;
  virtual std::string_view name() const = 0;
};

// Connection-based round robin (the policy implemented in the paper's
// prototype, §5).
class RoundRobinPolicy : public ForwardingPolicy {
 public:
  size_t Pick(uint32_t client_addr, uint16_t port,
              std::span<const BalanceTarget> targets) override {
    return next_++ % targets.size();
  }
  std::string_view name() const override { return "round-robin"; }

 private:
  size_t next_ = 0;
};

// Load-aware: least active connections.
class LeastLoadedPolicy : public ForwardingPolicy {
 public:
  size_t Pick(uint32_t client_addr, uint16_t port,
              std::span<const BalanceTarget> targets) override {
    size_t best = 0;
    for (size_t i = 1; i < targets.size(); ++i) {
      if (targets[i].active_conns < targets[best].active_conns) {
        best = i;
      }
    }
    return best;
  }
  std::string_view name() const override { return "least-loaded"; }
};

// Load-aware on the *live* depth signal: least queued inbound events at
// pick time, connection count as the tie-break. Unlike LeastLoadedPolicy,
// a target whose long-lived connections have gone idle is preferred over
// one with few but hot connections — "load on each co-processor" (§4.4.3)
// measured as what its service loop has queued right now.
class LiveLeastLoadedPolicy : public ForwardingPolicy {
 public:
  size_t Pick(uint32_t client_addr, uint16_t port,
              std::span<const BalanceTarget> targets) override {
    size_t best = 0;
    for (size_t i = 1; i < targets.size(); ++i) {
      if (targets[i].queue_depth < targets[best].queue_depth ||
          (targets[i].queue_depth == targets[best].queue_depth &&
           targets[i].active_conns < targets[best].active_conns)) {
        best = i;
      }
    }
    return best;
  }
  std::string_view name() const override { return "live-least-loaded"; }
};

// Content-based: clients stick to a co-processor by address hash (the
// paper's example: per-key routing for a key/value store).
class ContentHashPolicy : public ForwardingPolicy {
 public:
  size_t Pick(uint32_t client_addr, uint16_t port,
              std::span<const BalanceTarget> targets) override {
    uint64_t h = (uint64_t{client_addr} << 16) | port;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return static_cast<size_t>(h % targets.size());
  }
  std::string_view name() const override { return "content-hash"; }
};

}  // namespace solros

#endif  // SOLROS_SRC_NET_LOAD_BALANCER_H_
