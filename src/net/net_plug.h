// NetPlug: the send-side staging layer of the net data path (DESIGN.md
// §5.5). One plug fronts one SimRing direction (the proxy's inbound ring
// toward a phi, or a stub's outbound ring toward the host) and implements
// two independently ablatable mechanisms:
//
//  * segment coalescing (options.coalescing) — same-socket kData payloads
//    accumulate in a bounded per-socket stage and seal into ONE
//    multi-segment NetEvent when the stage reaches net_coalesce_bytes or
//    the plug window expires (the iosched plug idea, applied to TCP — the
//    GSO analogue);
//  * vectored push (options.vectored_push) — sealed records accumulate and
//    ride ONE ring push (one doorbell) as a kBatch frame, up to
//    max_events_per_push records per doorbell.
//
// With both mechanisms off every Send* is an unmodified single-record ring
// push — byte-identical timing to the pre-plug path (the counters below
// are pure bookkeeping) — so legacy configurations are unaffected.
//
// Attribution: time a traced message spends staged is recorded as a
// retroactive "net.plug.wait" span (a queue-stage bucket, like
// net.queue.event), so coalesced traces still sum exactly to their roots.
#ifndef SOLROS_SRC_NET_NET_PLUG_H_
#define SOLROS_SRC_NET_NET_PLUG_H_

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/base/metrics.h"
#include "src/net/net_frame.h"
#include "src/net/net_options.h"
#include "src/rpc/messages.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/transport/sim_ring.h"

namespace solros {

class NetPlug {
 public:
  // `counter_prefix` namespaces the doorbell metrics ("net.proxy" on the
  // host side, "net.stub" on the phi side).
  NetPlug(Simulator* sim, SimRing* ring, const NetPathOptions& options,
          const std::string& counter_prefix);

  // Queues one kData message (header context = the message's context).
  // Returns the ring status on the passthrough path; staged sends return
  // OK immediately and a later flush failure counts as a drop.
  Task<Status> SendData(const NetEvent& header,
                        std::span<const uint8_t> payload);

  // Connection lifecycle events (kAccepted / kPeerClosed): never coalesced;
  // any staged data for the same socket seals first so per-socket event
  // order is preserved, and the pending queue flushes immediately (these
  // are rare and latency-sensitive).
  Task<Status> SendControl(const NetEvent& event);

  // Seals every stage and pushes everything pending (Close barriers).
  Task<Status> Flush();

  // Staged + pending bytes not yet pushed into the ring (the balancer adds
  // this to the ring's in-flight bytes for post-coalescing backlog).
  uint64_t backlog_bytes() const { return staged_bytes_ + pending_bytes_; }

  uint64_t doorbells() const { return doorbells_; }
  uint64_t events_pushed() const { return events_pushed_; }

 private:
  struct SocketStage {
    std::vector<NetSegment> segs;
    std::vector<uint8_t> bytes;
    std::vector<Nanos> staged_at;  // parallel to segs, for net.plug.wait
  };

  static Task<void> PlugTimer(NetPlug* self);
  // Size-triggered flush, spawned detached so the ring push never runs
  // inside the SendData caller's open service span (see net_plug.cc).
  static Task<void> DetachedFlush(NetPlug* self);

  void SealStage(int64_t sock, SocketStage* stage);
  void SealAll();
  void Enqueue(std::vector<uint8_t> record);
  void ArmTimer();
  void ScheduleFlush();
  // Pushes pending records, batching up to max_events_per_push per
  // doorbell when vectored push is on.
  Task<Status> FlushPending();

  Simulator* sim_;
  SimRing* ring_;
  NetPathOptions options_;

  std::map<int64_t, SocketStage> stages_;  // deterministic iteration order
  uint64_t staged_bytes_ = 0;
  std::deque<std::vector<uint8_t>> pending_;
  uint64_t pending_bytes_ = 0;
  bool timer_armed_ = false;
  bool flushing_ = false;
  bool flush_scheduled_ = false;
  Condition space_;  // staging_capacity backpressure

  uint64_t doorbells_ = 0;
  uint64_t events_pushed_ = 0;
  Counter* const c_doorbells_;
  Counter* const c_events_pushed_;
  Counter* const c_coalesced_segments_;
  Counter* const c_plug_drops_;
  LatencyHistogram* const h_events_per_push_;
};

}  // namespace solros

#endif  // SOLROS_SRC_NET_NET_PLUG_H_
