#include "src/net/tcp_proxy.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/base/status.h"
#include "src/net/payload_copy.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/trace.h"

namespace solros {
namespace {

// System-level failures worth a flight-recorder dump when they escape the
// proxy; expected outcomes of normal operation (bad handles, unsupported
// ops) are not.
bool IsSystemError(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIoError:
    case ErrorCode::kTimedOut:
    case ErrorCode::kInternal:
    case ErrorCode::kResourceExhausted:
    case ErrorCode::kConnectionReset:
      return true;
    default:
      return false;
  }
}

}  // namespace

TcpProxy::TcpProxy(Simulator* sim, const HwParams& params,
                   Processor* host_cpu, EthernetFabric* ethernet,
                   std::unique_ptr<ForwardingPolicy> policy,
                   std::vector<Processor*> shard_cores,
                   const NetPathOptions& net_options)
    : sim_(sim),
      params_(params),
      host_cpu_(host_cpu),
      ethernet_(ethernet),
      options_(net_options),
      policy_(std::move(policy)),
      drr_ready_(sim),
      drr_space_(sim),
      work_ready_(sim),
      work_space_(sim),
      c_rpcs_(MetricRegistry::Default().GetCounter("net.proxy.rpcs")),
      c_shard_handoffs_(
          MetricRegistry::Default().GetCounter("net.proxy.shard_handoffs")),
      c_bad_policy_picks_(
          MetricRegistry::Default().GetCounter("net.proxy.bad_policy_picks")),
      c_connections_forwarded_(MetricRegistry::Default().GetCounter(
          "net.proxy.connections_forwarded")),
      c_inbound_messages_(
          MetricRegistry::Default().GetCounter("net.proxy.inbound_messages")),
      c_inbound_bytes_(
          MetricRegistry::Default().GetCounter("net.proxy.inbound_bytes")),
      c_outbound_messages_(
          MetricRegistry::Default().GetCounter("net.proxy.outbound_messages")),
      c_outbound_bytes_(
          MetricRegistry::Default().GetCounter("net.proxy.outbound_bytes")),
      c_events_dropped_(
          MetricRegistry::Default().GetCounter("net.proxy.events_dropped")) {
  CHECK(policy_ != nullptr);
  if (shard_cores.empty()) {
    shard_cores.push_back(host_cpu);
  }
  const int count = static_cast<int>(shard_cores.size());
  shards_.reserve(shard_cores.size());
  for (int k = 0; k < count; ++k) {
    Shard shard;
    shard.core = shard_cores[static_cast<size_t>(k)];
    if (sim->telemetry() != nullptr) {
      shard.use =
          sim->telemetry()->GetSeries(ShardLabel("net.proxy", k, count));
    }
    shards_.push_back(shard);
  }
  conntrack_ = std::make_unique<ConnTracker>(sim, count);
  if (sim->telemetry() != nullptr) {
    conntrack_->BindTelemetry(sim->telemetry());
  }
}

uint32_t TcpProxy::PickShard(uint64_t conn_id) {
  const int count = static_cast<int>(shards_.size());
  if (count <= 1) {
    return 0;
  }
  const int primary = ShardOfConnection(conn_id, count);
  bool handoff = false;
  const int pick = PickShardForDepths(
      primary, count, [this](int k) { return ShardDepth(k); }, &handoff);
  if (handoff) {
    ++stats_.shard_handoffs;
    c_shard_handoffs_->Increment();
  }
  return static_cast<uint32_t>(pick);
}

void TcpProxy::AttachDataPlane(uint32_t dataplane_id, SimRing* rpc_request,
                               SimRing* rpc_response, SimRing* inbound,
                               SimRing* outbound) {
  DataPlane& dataplane = dataplanes_[dataplane_id];
  dataplane.id = dataplane_id;
  dataplane.inbound = inbound;
  dataplane.outbound = outbound;
  dataplane.plug = std::make_unique<NetPlug>(sim_, inbound, options_,
                                             "net.proxy");
  dataplane.rpc = std::make_unique<RpcServer<NetRequest, NetResponse>>(
      sim_, rpc_request, rpc_response,
      [this, dataplane_id](NetRequest request) {
        return HandleRpc(dataplane_id, std::move(request));
      });
  dataplane.rpc->Start();
  if (options_.drr_dispatch) {
    Spawn(*sim_, OutboundFeeder(this, &dataplane));
    Spawn(*sim_, DrrPlaneWorker(this, &dataplane));
    if (!drr_pump_running_) {
      drr_pump_running_ = true;
      Spawn(*sim_, DrrOutboundPump(this));
    }
  } else {
    Spawn(*sim_, OutboundPump(this, &dataplane));
  }
}

Task<Status> TcpProxy::SendEvent(uint32_t dataplane_id, const NetEvent& event,
                                 std::span<const uint8_t> payload) {
  auto it = dataplanes_.find(dataplane_id);
  if (it == dataplanes_.end()) {
    co_return NotFoundError("no such data plane");
  }
  // The plug stages/batches when coalescing or vectored push is on; with
  // both off it is one unmodified ring push per event, as before.
  if (event.kind == NetEventKind::kData) {
    co_return co_await it->second.plug->SendData(event, payload);
  }
  co_return co_await it->second.plug->SendControl(event);
}

Task<NetResponse> TcpProxy::HandleRpc(uint32_t dataplane_id,
                                      NetRequest request) {
  ++stats_.rpcs;
  c_rpcs_->Increment();
  // Socket-call RPCs shard by data plane: every call a given stub makes
  // lands on the same event loop, so its socket state has core affinity.
  const uint32_t shard_id =
      static_cast<uint32_t>(dataplane_id % shards_.size());
  Shard& shard = shards_[shard_id];
  SimTime rpc_start = sim_->now();
  if (shard.use != nullptr) {
    shard.use->QueueDelta(rpc_start, +1);
  }
  // Service span, linked back to the stub's root span via the wire context.
  ScopedSpan span(sim_, "netproxy", "net.proxy.rpc",
                  TraceContext{request.trace_id, request.parent_span});
  co_await shard.core->Compute(params_.net_proxy_cpu);
  NetResponse response;
  switch (request.op) {
    case NetOp::kSocket: {
      int64_t handle = next_handle_++;
      ProxySocket socket;
      socket.handle = handle;
      socket.dataplane = dataplane_id;
      socket.shard = shard_id;
      sockets_.emplace(handle, socket);
      response.value = handle;
      break;
    }
    case NetOp::kBind:
      // Port assignment is recorded at listen time in this model.
      break;
    case NetOp::kListen: {
      // Shared listening socket: several data planes may listen on the
      // same port (§4.4.3).
      PortListeners& group = listeners_[request.port];
      if (group.members.empty()) {
        ethernet_->RegisterPort(request.port, this);
      }
      group.members.emplace_back(dataplane_id, request.sock);
      BalanceTarget target;
      target.dataplane = dataplane_id;
      group.targets.push_back(target);
      break;
    }
    case NetOp::kClose: {
      auto it = sockets_.find(request.sock);
      if (it == sockets_.end()) {
        response.error = ErrorCode::kInvalidArgument;
        break;
      }
      if (it->second.conn_id != 0) {
        conntrack_->OnClose(it->second.conn_id);
        if (it->second.open) {
          ethernet_->CloseFromServer(it->second.conn_id);
          // Balance bookkeeping.
          for (auto& [port, group] : listeners_) {
            for (BalanceTarget& t : group.targets) {
              if (t.dataplane == it->second.dataplane && t.active_conns > 0) {
                --t.active_conns;
                break;
              }
            }
          }
        }
        // Always retire the conn mapping — also after a client-initiated
        // close (open == false), where leaving it behind would point later
        // fabric events at a socket that no longer exists.
        conn_to_socket_.erase(it->second.conn_id);
      }
      sockets_.erase(it);
      break;
    }
    case NetOp::kShutdown:
    case NetOp::kSetsockopt:
      break;  // modeled as no-ops
    default:
      response.error = ErrorCode::kNotSupported;
      break;
  }
  if (shard.use != nullptr) {
    shard.use->QueueDelta(sim_->now(), -1);
    shard.use->CompleteOp(sim_->now(), 0);
  }
  if (IsSystemError(response.error)) {
    if (shard.use != nullptr) {
      shard.use->AddError(sim_->now());
    }
    if (Tracer* tracer = sim_->tracer();
        tracer != nullptr && request.trace_id != 0) {
      // Under tail-based sampling, errored traces are always retained.
      tracer->FlagTrace(request.trace_id, Tracer::TraceFlag::kError);
    }
    MaybeDumpFlightRecorder(
        sim_, "net.proxy error: " + std::string(ErrorCodeName(response.error)));
  }
  co_return response;
}

Task<Status> TcpProxy::OnConnect(uint64_t conn_id, uint16_t port,
                                 uint32_t client_addr) {
  auto it = listeners_.find(port);
  if (it == listeners_.end() || it->second.members.empty()) {
    co_return Status(ErrorCode::kConnectionReset, "no listeners");
  }
  // The accept queue is shared: any shard may drain it, and the hash (or
  // load handoff) decides which loop owns the connection from here on.
  const uint32_t shard_id = PickShard(conn_id);
  Shard& shard = shards_[shard_id];
  // Host-side SYN handling on the owning shard's core.
  co_await shard.core->Compute(params_.tcp_segment_cpu);

  PortListeners& group = it->second;
  // Refresh the live per-target depth signal: the backlog of events the
  // data plane has not drained from its inbound ring (the same sends that
  // feed the ring's USE depth gauge). Load-aware policies read it.
  for (BalanceTarget& target : group.targets) {
    auto dp = dataplanes_.find(target.dataplane);
    if (dp != dataplanes_.end() && dp->second.inbound != nullptr) {
      if (options_.drr_dispatch) {
        // Post-coalescing byte backlog: event counts lie once events carry
        // wildly different byte loads (a 32-segment event is one message by
        // count), so the live signal is undrained ring bytes plus whatever
        // the plug still holds staged for this plane.
        target.queue_depth = dp->second.inbound->bytes_sent() -
                             dp->second.inbound->bytes_received() +
                             dp->second.plug->backlog_bytes();
      } else {
        target.queue_depth = dp->second.inbound->messages_sent() -
                             dp->second.inbound->messages_received();
      }
    }
  }
  size_t pick = policy_->Pick(client_addr, port, group.targets);
  if (pick >= group.members.size()) {
    // A broken policy pick refuses the connection instead of taking the
    // whole proxy down with it.
    c_bad_policy_picks_->Increment();
    co_return InternalError("forwarding policy picked a bad member");
  }
  auto [dataplane_id, stub_listener] = group.members[pick];
  ++group.targets[pick].active_conns;
  ++group.targets[pick].total_assigned;
  ++stats_.connections_forwarded;
  c_connections_forwarded_->Increment();

  int64_t handle = next_handle_++;
  ProxySocket socket;
  socket.handle = handle;
  socket.conn_id = conn_id;
  socket.dataplane = dataplane_id;
  socket.shard = shard_id;
  sockets_.emplace(handle, socket);
  conn_to_socket_[conn_id] = handle;
  conntrack_->OnConnect(conn_id, shard_id, dataplane_id, port);

  NetEvent event;
  event.kind = NetEventKind::kAccepted;
  event.sock = stub_listener;  // which stub listener this belongs to
  event.new_sock = handle;
  event.peer_addr = client_addr;
  event.peer_port = port;
  co_return co_await SendEvent(dataplane_id, event, {});
}

Task<void> TcpProxy::OnClientData(uint64_t conn_id, std::vector<uint8_t> data,
                                  TraceContext ctx) {
  auto it = conn_to_socket_.find(conn_id);
  if (it == conn_to_socket_.end()) {
    co_return;
  }
  auto sock_it = sockets_.find(it->second);
  if (sock_it == sockets_.end()) {
    // Data raced with the socket's close; drop it like a real stack would.
    c_events_dropped_->Increment();
    conntrack_->OnDrop(conn_id);
    conn_to_socket_.erase(it);
    co_return;
  }
  ProxySocket& socket = sock_it->second;
  Shard& shard = shards_[socket.shard];
  if (shard.use != nullptr) {
    shard.use->QueueDelta(sim_->now(), +1);
  }
  const uint64_t bytes = data.size();
  Status status;
  {
    // Receive-side service span, a child of the client's op. It closes at
    // the ring SetReady instant (nothing awaits between Send returning and
    // scope exit), so it never overlaps the ring queue-wait span the
    // dispatcher records retroactively.
    ScopedSpan span(sim_, "netproxy", "net.proxy.inbound", ctx);
    // Full TCP receive processing on the connection's shard core (the
    // Solros win: this would run 8x slower on the Phi).
    co_await shard.core->Compute(params_.tcp_message_cpu +
                                 TcpSegments(data.size()) *
                                     params_.tcp_segment_cpu);
    ++stats_.inbound_messages;
    stats_.inbound_bytes += data.size();
    c_inbound_messages_->Increment();
    c_inbound_bytes_->Increment(data.size());
    NetEvent event;
    event.kind = NetEventKind::kData;
    event.sock = socket.handle;
    event.length = static_cast<uint32_t>(data.size());
    if (ctx.traced()) {
      // Downstream spans (ring wait, stub dispatch) hang off this span.
      TraceContext child = span.context();
      event.trace_id = child.trace_id;
      event.parent_span = child.parent_span;
    }
    if (options_.adaptive_copy) {
      // Payload handoff into the staging/ring path, charged through the
      // adaptive memcpy/DMA policy and attributed to copy_dma. Inside the
      // inbound service span so proxy = service - copy never clamps.
      co_await ChargeAdaptivePayloadCopy(sim_, params_, data.size(),
                                         /*initiator_is_host=*/true,
                                         span.context());
    }
    status = co_await SendEvent(socket.dataplane, event, data);
  }
  // The delivery buffer's payload now lives in the plug stage or the ring
  // record; hand it back to the fabric's pool (satellite of the per-message
  // allocation fix — see EthernetFabric::AcquirePayload).
  ethernet_->ReleasePayload(std::move(data));
  if (shard.use != nullptr) {
    shard.use->QueueDelta(sim_->now(), -1);
    shard.use->CompleteOp(sim_->now(), 0);
  }
  if (!status.ok()) {
    c_events_dropped_->Increment();
    conntrack_->OnDrop(conn_id);
    if (shard.use != nullptr) {
      shard.use->AddError(sim_->now());
    }
    LOG(WARNING) << "inbound event drop: " << status.ToString();
  } else {
    conntrack_->OnInbound(conn_id, bytes);
  }
}

Task<void> TcpProxy::OnClientClose(uint64_t conn_id) {
  auto it = conn_to_socket_.find(conn_id);
  if (it == conn_to_socket_.end()) {
    co_return;
  }
  auto sock_it = sockets_.find(it->second);
  if (sock_it == sockets_.end()) {
    conn_to_socket_.erase(it);
    co_return;
  }
  ProxySocket& socket = sock_it->second;
  socket.open = false;
  conntrack_->OnClose(conn_id);
  NetEvent event;
  event.kind = NetEventKind::kPeerClosed;
  event.sock = socket.handle;
  Status status = co_await SendEvent(socket.dataplane, event, {});
  if (!status.ok()) {
    c_events_dropped_->Increment();
    LOG(WARNING) << "peer-close event drop: " << status.ToString();
  }
}

Task<void> TcpProxy::OutboundPump(TcpProxy* self, DataPlane* dataplane) {
  while (true) {
    auto record = co_await dataplane->outbound->Receive();
    if (!record.ok()) {
      break;  // ring closed
    }
    co_await self->ProcessOutboundRecord(
        dataplane, std::move(*record),
        dataplane->outbound->last_dequeue_stamp());
  }
}

Task<void> TcpProxy::OutboundFeeder(TcpProxy* self, DataPlane* dataplane) {
  ++self->live_feeders_;
  while (true) {
    auto record = co_await dataplane->outbound->Receive();
    if (!record.ok()) {
      break;  // ring closed
    }
    dataplane->drr_queue.emplace_back(
        std::move(*record), dataplane->outbound->last_dequeue_stamp());
    ++self->drr_epoch_;
    self->drr_ready_.NotifyAll();
    // Bounded claim-ahead: keep ring backpressure meaningful while giving
    // the pump enough lookahead to round-robin across planes.
    while (dataplane->drr_queue.size() >= kDrrFeederCredit) {
      co_await self->drr_space_.Wait();
    }
  }
  --self->live_feeders_;
  ++self->drr_epoch_;
  self->drr_ready_.NotifyAll();
}

Task<void> TcpProxy::DrrOutboundPump(TcpProxy* self) {
  while (true) {
    bool progressed = false;
    bool blocked_on_worker = false;
    for (auto& [id, dataplane] : self->dataplanes_) {
      if (dataplane.drr_queue.empty()) {
        dataplane.drr_deficit = 0;  // classic DRR: idle queues hold no credit
        continue;
      }
      // Credit is capped so a plane stalled behind a full worker queue (or
      // an oversized head record) cannot bank unbounded deficit and burst
      // past the others when it unblocks; the cap still admits any record
      // the plug can emit.
      const uint64_t cap =
          self->options_.drr_quantum +
          std::max<uint64_t>(self->options_.max_push_bytes,
                             dataplane.drr_queue.front().record.size());
      dataplane.drr_deficit =
          std::min(dataplane.drr_deficit + self->options_.drr_quantum, cap);
      while (!dataplane.drr_queue.empty() &&
             dataplane.drr_queue.front().record.size() <=
                 dataplane.drr_deficit) {
        if (dataplane.work.size() >= kWorkerBacklog) {
          blocked_on_worker = true;
          break;
        }
        OutboundItem item = std::move(dataplane.drr_queue.front());
        dataplane.drr_queue.pop_front();
        dataplane.drr_deficit -= item.record.size();
        self->drr_space_.NotifyAll();
        dataplane.work.push_back(std::move(item));
        self->work_ready_.NotifyAll();
        progressed = true;
      }
      // A record larger than the accumulated deficit waits for the next
      // round's quantum (its plane keeps the credit).
    }
    bool any_queued = false;
    for (auto& [id, dataplane] : self->dataplanes_) {
      any_queued |= !dataplane.drr_queue.empty();
    }
    if (any_queued) {
      if (progressed) {
        continue;
      }
      if (blocked_on_worker) {
        co_await self->work_space_.Wait();
        continue;
      }
      // Only oversized heads remain: iterate so they accumulate credit
      // (bounded — the cap above admits them within a few rounds).
      continue;
    }
    if (self->live_feeders_ == 0) {
      break;  // all rings closed and drained
    }
    const uint64_t epoch = self->drr_epoch_;
    while (self->drr_epoch_ == epoch) {
      co_await self->drr_ready_.Wait();
    }
  }
  self->drr_pump_done_ = true;
  self->work_ready_.NotifyAll();
}

Task<void> TcpProxy::DrrPlaneWorker(TcpProxy* self, DataPlane* dataplane) {
  while (true) {
    while (dataplane->work.empty() && !self->drr_pump_done_) {
      co_await self->work_ready_.Wait();
    }
    if (dataplane->work.empty()) {
      break;  // pump done and nothing left admitted for this plane
    }
    OutboundItem item = std::move(dataplane->work.front());
    dataplane->work.pop_front();
    self->work_space_.NotifyAll();
    co_await self->ProcessOutboundRecord(dataplane, std::move(item.record),
                                         item.stamp);
  }
}

Task<void> TcpProxy::DeliverTrain(
    TcpProxy* self, uint64_t conn_id,
    std::vector<std::pair<TraceContext, std::vector<uint8_t>>> messages) {
  for (auto& [ctx, payload] : messages) {
    Status status = co_await self->ethernet_->DeliverToClient(
        conn_id, std::move(payload), ctx);
    if (!status.ok() && status.code() != ErrorCode::kNotConnected) {
      LOG(WARNING) << "outbound deliver failed: " << status.ToString();
    }
  }
}

Task<void> TcpProxy::ProcessOutboundRecord(
    DataPlane* dataplane, std::vector<uint8_t> record,
    std::optional<SimRing::DequeueStamp> stamp) {
  NetEvent header = DecodePod<NetEvent>(record);
  std::span<const uint8_t> body(record.data() + sizeof(NetEvent),
                                record.size() - sizeof(NetEvent));
  // One event for legacy/coalesced records; several for a kBatch frame.
  // `record` stays alive in this frame, so the views remain valid.
  for (NetFrameView& frame : SplitBatch(header, body)) {
    co_await ProcessOutboundEvent(dataplane, frame, stamp);
  }
}

Task<void> TcpProxy::ProcessOutboundEvent(
    DataPlane* dataplane, NetFrameView frame,
    std::optional<SimRing::DequeueStamp> stamp) {
  const NetEvent& header = frame.header;
  // One message for the legacy layout; the staged messages of a coalesced
  // event otherwise. Per-message contexts ride the segment descriptors.
  std::vector<NetSegmentView> messages = SplitSegments(header, frame.body);
  uint64_t message_bytes = 0;
  for (const NetSegmentView& m : messages) {
    message_bytes += m.payload.size();
  }
  // Retroactive queue-wait span(s): how long the stub's send sat ready in
  // the outbound ring before the pump claimed it. Every traced message in
  // the record shared that wait.
  if (Tracer* tracer = sim_->tracer();
      tracer != nullptr && stamp.has_value()) {
    for (const NetSegmentView& m : messages) {
      if (m.trace_id != 0) {
        TraceContext seg_ctx;
        seg_ctx.trace_id = m.trace_id;
        seg_ctx.parent_span = m.parent_span;
        tracer->RecordSpan("ring", "net.queue.event", stamp->ready_at,
                           stamp->dequeue_at, seg_ctx);
      }
    }
  }
  auto it = sockets_.find(header.sock);
  if (it == sockets_.end() || !it->second.open) {
    co_return;  // stale send after close
  }
  // The reply reached the proxy: backend-RTT endpoint for conntrack.
  conntrack_->OnOutbound(it->second.conn_id, message_bytes);
  Shard& shard = shards_[it->second.shard];
  if (shard.use != nullptr) {
    shard.use->QueueDelta(sim_->now(), +1);
  }
  // Service-span context: the first traced message (the only one for
  // legacy records; later segments' service share lands in their traces'
  // residual stub bucket — attribution stays exact either way).
  TraceContext ctx;
  for (const NetSegmentView& m : messages) {
    if (m.trace_id != 0) {
      ctx.trace_id = m.trace_id;
      ctx.parent_span = m.parent_span;
      break;
    }
  }
  {
    // Transmit-side service span. Scoped to the shard compute only — it
    // must close before DeliverToClient so it never overlaps the
    // downlink net.wire.transit span of the same trace.
    ScopedSpan span(sim_, "netproxy", "net.proxy.outbound", ctx);
    // Host TCP transmit processing on the socket's shard, then the wire.
    // Coalesced events pay the per-message cost once for the whole train
    // plus per-segment work (the GSO win).
    co_await shard.core->Compute(
        params_.tcp_message_cpu +
        TcpSegments(message_bytes) * params_.tcp_segment_cpu);
    if (options_.adaptive_copy) {
      co_await ChargeAdaptivePayloadCopy(sim_, params_, message_bytes,
                                         /*initiator_is_host=*/true,
                                         span.context());
    }
    stats_.outbound_messages += messages.size();
    stats_.outbound_bytes += message_bytes;
    c_outbound_messages_->Increment(messages.size());
    c_outbound_bytes_->Increment(message_bytes);
  }
  // Deliver each original message separately: client framing is preserved
  // exactly as if the messages had never shared a ring record.
  if (options_.drr_dispatch) {
    // The NIC hop is the fabric's job, not the shard's: hand the train off
    // so this worker's next record overlaps the wire latency. Same-conn
    // order holds (trains spawn in worker order; the downlink is FIFO with
    // fixed latency).
    std::vector<std::pair<TraceContext, std::vector<uint8_t>>> train;
    train.reserve(messages.size());
    for (const NetSegmentView& m : messages) {
      TraceContext m_ctx;
      m_ctx.trace_id = m.trace_id;
      m_ctx.parent_span = m.parent_span;
      train.emplace_back(m_ctx, std::vector<uint8_t>(m.payload.begin(),
                                                     m.payload.end()));
    }
    Spawn(*sim_, DeliverTrain(this, it->second.conn_id, std::move(train)));
  } else {
    for (const NetSegmentView& m : messages) {
      TraceContext m_ctx;
      m_ctx.trace_id = m.trace_id;
      m_ctx.parent_span = m.parent_span;
      Status status = co_await ethernet_->DeliverToClient(
          it->second.conn_id,
          std::vector<uint8_t>(m.payload.begin(), m.payload.end()), m_ctx);
      if (!status.ok() && status.code() != ErrorCode::kNotConnected) {
        LOG(WARNING) << "outbound deliver failed: " << status.ToString();
      }
    }
  }
  if (shard.use != nullptr) {
    shard.use->QueueDelta(sim_->now(), -1);
    shard.use->CompleteOp(sim_->now(), 0);
  }
}

}  // namespace solros
