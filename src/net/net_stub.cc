#include "src/net/net_stub.h"

#include <deque>
#include <utility>

#include "src/base/fault.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/net/payload_copy.h"
#include "src/sim/trace.h"

namespace solros {

NetStub::NetStub(Simulator* sim, const HwParams& params, Processor* phi_cpu,
                 SimRing* rpc_request, SimRing* rpc_response,
                 SimRing* inbound, SimRing* outbound,
                 const NetPathOptions& net_options)
    : sim_(sim),
      params_(params),
      phi_cpu_(phi_cpu),
      options_(net_options),
      rpc_(sim, rpc_request, rpc_response),
      inbound_(inbound),
      outbound_(outbound),
      plug_(std::make_unique<NetPlug>(sim, outbound, net_options,
                                      "net.stub")),
      c_events_(MetricRegistry::Default().GetCounter("net.stub.events")),
      c_retries_(MetricRegistry::Default().GetCounter("net.stub.retries")),
      c_recvs_(MetricRegistry::Default().GetCounter("net.stub.recvs")),
      c_sends_(MetricRegistry::Default().GetCounter("net.stub.sends")),
      c_send_bytes_(
          MetricRegistry::Default().GetCounter("net.stub.send_bytes")) {
  rpc_.Start();
  Spawn(*sim_, EventDispatcher(this));
}

NetStub::SocketState& NetStub::EnsureSocket(int64_t handle) {
  SocketState& state = sockets_[handle];
  if (state.accept_queue == nullptr) {
    state.accept_queue = std::make_unique<Channel<int64_t>>(sim_, 0);
  }
  if (state.recv_queue == nullptr) {
    state.recv_queue = std::make_unique<Channel<RecvItem>>(sim_, 0);
  }
  return state;
}

Task<void> NetStub::EventDispatcher(NetStub* self) {
  // §4.4.2: one dispatcher dequeues from the inbound ring and feeds
  // per-socket queues; application threads copy payloads in parallel.
  while (true) {
    auto record = co_await self->inbound_->Receive();
    if (!record.ok()) {
      break;  // ring closed
    }
    NetEvent event = DecodePod<NetEvent>(*record);
    if (event.kind == NetEventKind::kBatch ||
        (event.kind == NetEventKind::kData && event.segments > 0)) {
      // Coalesced or batched record (only produced when the proxy's plug
      // mechanisms are on): split it back into per-message deliveries.
      co_await self->DispatchRecord(*record,
                                    self->inbound_->last_dequeue_stamp());
      continue;
    }
    ++self->events_;
    self->c_events_->Increment();
    TraceContext ctx{event.trace_id, event.parent_span};
    // Retroactive inbound-ring wait: [event ready, dequeued here] — the
    // slice of the round trip spent queued behind the single dispatcher
    // (same idiom as the RPC response ring, rpc.h).
    if (Tracer* tracer = self->sim_->tracer();
        tracer != nullptr && ctx.traced()) {
      auto stamp = self->inbound_->last_dequeue_stamp();
      if (stamp.has_value()) {
        tracer->RecordSpan("ring", "net.queue.event", stamp->ready_at,
                           stamp->dequeue_at, ctx);
      }
    }
    ScopedSpan span(self->sim_, "netstub", "net.stub.dispatch", ctx);
    switch (event.kind) {
      case NetEventKind::kAccepted: {
        // Make the connected socket's queues exist before any data event.
        self->EnsureSocket(event.new_sock);
        SocketState& listener = self->EnsureSocket(event.sock);
        co_await listener.accept_queue->Send(event.new_sock);
        break;
      }
      case NetEventKind::kData: {
        SocketState& socket = self->EnsureSocket(event.sock);
        std::vector<uint8_t> payload(record->begin() + sizeof(NetEvent),
                                     record->end());
        if (self->options_.adaptive_copy) {
          co_await ChargeAdaptivePayloadCopyUnattributed(
              self->params_, payload.size(), /*initiator_is_host=*/false);
        }
        ++self->messages_delivered_;
        co_await socket.recv_queue->Send(
            {std::move(payload), event.trace_id, event.parent_span});
        break;
      }
      case NetEventKind::kPeerClosed: {
        auto it = self->sockets_.find(event.sock);
        if (it != self->sockets_.end() &&
            it->second.recv_queue != nullptr) {
          it->second.recv_queue->Close();
        }
        break;
      }
      case NetEventKind::kBatch:
        break;  // unreachable: routed to DispatchRecord above
    }
  }
}

Task<void> NetStub::DispatchRecord(
    const std::vector<uint8_t>& record,
    std::optional<SimRing::DequeueStamp> stamp) {
  const NetEvent header = DecodePod<NetEvent>(record);
  const std::span<const uint8_t> body(record.data() + sizeof(NetEvent),
                                      record.size() - sizeof(NetEvent));
  Tracer* tracer = sim_->tracer();
  // Data messages from contiguous kData runs; controls act as barriers so
  // per-socket event order (data before its kPeerClosed) is preserved even
  // when DRR reorders deliveries across sockets within a run.
  std::vector<std::pair<int64_t, NetSegmentView>> run;
  for (const NetFrameView& frame : SplitBatch(header, body)) {
    const NetEvent& event = frame.header;
    ++events_;
    c_events_->Increment();
    if (event.kind == NetEventKind::kData) {
      for (const NetSegmentView& message : SplitSegments(event, frame.body)) {
        // Retroactive inbound-ring wait, per message: every message in the
        // record waited out the same [ready, dequeue] interval.
        if (tracer != nullptr && message.trace_id != 0 &&
            stamp.has_value()) {
          tracer->RecordSpan("ring", "net.queue.event", stamp->ready_at,
                             stamp->dequeue_at,
                             TraceContext{message.trace_id,
                                          message.parent_span});
        }
        run.emplace_back(event.sock, message);
      }
      continue;
    }
    co_await DeliverRun(&run);
    if (tracer != nullptr && event.trace_id != 0 && stamp.has_value()) {
      tracer->RecordSpan("ring", "net.queue.event", stamp->ready_at,
                         stamp->dequeue_at,
                         TraceContext{event.trace_id, event.parent_span});
    }
    co_await HandleControlEvent(event);
  }
  co_await DeliverRun(&run);
}

Task<void> NetStub::DeliverRun(
    std::vector<std::pair<int64_t, NetSegmentView>>* run) {
  if (run->empty()) {
    co_return;
  }
  if (!options_.drr_dispatch || run->size() == 1) {
    for (auto& [sock, message] : *run) {
      co_await DeliverMessage(sock, message);
    }
  } else {
    // Deficit round robin across the run's sockets: one chatty connection
    // in a batch cannot monopolize the dispatcher ahead of the others.
    // Per-socket delivery order is untouched.
    std::map<int64_t, std::deque<NetSegmentView>> per_sock;
    for (auto& [sock, message] : *run) {
      per_sock[sock].push_back(message);
    }
    std::map<int64_t, uint64_t> deficit;
    size_t remaining = run->size();
    while (remaining > 0) {
      for (auto& [sock, queue] : per_sock) {
        if (queue.empty()) {
          deficit[sock] = 0;
          continue;
        }
        // Credit accumulates across sweeps, so a message larger than one
        // quantum still drains after finitely many rounds.
        deficit[sock] += options_.drr_quantum;
        while (!queue.empty() &&
               queue.front().payload.size() <= deficit[sock]) {
          deficit[sock] -= queue.front().payload.size();
          co_await DeliverMessage(sock, queue.front());
          queue.pop_front();
          --remaining;
        }
      }
    }
  }
  run->clear();
}

Task<void> NetStub::DeliverMessage(int64_t sock, NetSegmentView message) {
  TraceContext ctx{message.trace_id, message.parent_span};
  ScopedSpan span(sim_, "netstub", "net.stub.dispatch", ctx);
  SocketState& socket = EnsureSocket(sock);
  std::vector<uint8_t> payload(message.payload.begin(),
                               message.payload.end());
  if (options_.adaptive_copy) {
    co_await ChargeAdaptivePayloadCopyUnattributed(
        params_, payload.size(), /*initiator_is_host=*/false);
  }
  ++messages_delivered_;
  co_await socket.recv_queue->Send(
      {std::move(payload), message.trace_id, message.parent_span});
}

Task<void> NetStub::HandleControlEvent(NetEvent event) {
  TraceContext ctx{event.trace_id, event.parent_span};
  ScopedSpan span(sim_, "netstub", "net.stub.dispatch", ctx);
  switch (event.kind) {
    case NetEventKind::kAccepted: {
      EnsureSocket(event.new_sock);
      SocketState& listener = EnsureSocket(event.sock);
      co_await listener.accept_queue->Send(event.new_sock);
      break;
    }
    case NetEventKind::kPeerClosed: {
      auto it = sockets_.find(event.sock);
      if (it != sockets_.end() && it->second.recv_queue != nullptr) {
        it->second.recv_queue->Close();
      }
      break;
    }
    case NetEventKind::kData:
    case NetEventKind::kBatch:
      break;  // unreachable: DispatchRecord routes data separately
  }
}

Task<Result<NetResponse>> NetStub::Call(NetRequest request) {
  // Root of this RPC's causal trace (see FsStub::Call): a fresh trace id
  // carried on the wire so the proxy's spans hang off this one. Untraced
  // (all-zero) when no tracer is bound.
  Tracer* tracer = sim_->tracer();
  TraceContext root_ctx;
  if (tracer != nullptr) {
    root_ctx.trace_id = tracer->NewTraceId();
  }
  ScopedSpan span(sim_, "netstub", "net.stub.call", root_ctx);
  TraceContext ctx = span.context();
  request.trace_id = ctx.trace_id;
  request.parent_span = ctx.parent_span;
  // Only a transport timeout is retried: the outcome is unknown, so the
  // reissue gives at-least-once semantics (see set_retry_options). Timers
  // exist only while faults are armed.
  const Nanos timeout = Faults().any_armed() ? retry_.timeout : 0;
  Nanos backoff = retry_.backoff;
  Result<NetResponse> rpc = Status(ErrorCode::kInternal);
  for (int attempt = 1;; ++attempt) {
    rpc = co_await rpc_.Call(request, timeout);
    if (rpc.ok() || rpc.code() != ErrorCode::kTimedOut ||
        attempt >= retry_.max_attempts) {
      // A failed RPC marks the whole trace for retention under tail-based
      // sampling (no-op in full-capture mode).
      if (!rpc.ok() && tracer != nullptr && root_ctx.traced()) {
        tracer->FlagTrace(root_ctx.trace_id, Tracer::TraceFlag::kError);
      }
      co_return rpc;
    }
    c_retries_->Increment();
    TRACE_INSTANT(sim_, "netstub", "net.stub.retry");
    if (tracer != nullptr && root_ctx.traced()) {
      tracer->FlagTrace(root_ctx.trace_id, Tracer::TraceFlag::kError);
    }
    co_await Delay(backoff);
    backoff *= 2;
  }
}

Task<Result<int64_t>> NetStub::Listen(uint16_t port, int backlog) {
  co_await phi_cpu_->Compute(params_.net_stub_cpu);
  NetRequest socket_req;
  socket_req.op = NetOp::kSocket;
  SOLROS_CO_ASSIGN_OR_RETURN(NetResponse created,
                             co_await Call(socket_req));
  if (created.error != ErrorCode::kOk) {
    co_return Status(created.error);
  }
  int64_t handle = created.value;
  EnsureSocket(handle);

  NetRequest listen_req;
  listen_req.op = NetOp::kListen;
  listen_req.sock = handle;
  listen_req.port = port;
  listen_req.backlog = static_cast<uint16_t>(backlog);
  SOLROS_CO_ASSIGN_OR_RETURN(NetResponse listened,
                             co_await Call(listen_req));
  if (listened.error != ErrorCode::kOk) {
    co_return Status(listened.error);
  }
  co_return handle;
}

Task<Result<int64_t>> NetStub::Accept(int64_t listener) {
  co_await phi_cpu_->Compute(params_.net_stub_cpu);
  SocketState& state = EnsureSocket(listener);
  std::optional<int64_t> sock = co_await state.accept_queue->Receive();
  if (!sock.has_value()) {
    co_return Status(ErrorCode::kConnectionReset, "listener closed");
  }
  co_return *sock;
}

Task<Result<std::vector<uint8_t>>> NetStub::Recv(int64_t sock) {
  c_recvs_->Increment();
  TRACE_SPAN(sim_, "netstub", "net.stub.recv");
  co_await phi_cpu_->Compute(params_.net_stub_cpu);
  SocketState& state = EnsureSocket(sock);
  std::optional<RecvItem> item = co_await state.recv_queue->Receive();
  if (!item.has_value()) {
    co_return Status(ErrorCode::kConnectionReset, "peer closed");
  }
  // Remember the request's context so the next Send on this socket (the
  // reply, in request/response protocols) joins the same trace.
  state.reply_trace_id = item->trace_id;
  state.reply_parent = item->parent_span;
  co_return std::move(item->data);
}

Task<Status> NetStub::Send(int64_t sock, std::span<const uint8_t> data) {
  c_sends_->Increment();
  c_send_bytes_->Increment(data.size());
  // Consume the reply context stashed by Recv (untraced if none pending);
  // the outbound NetEvent carries it so the proxy's outbound-queue wait,
  // shard service, and downlink wire spans attribute to the right trace.
  TraceContext reply_ctx;
  auto sit = sockets_.find(sock);
  if (sit != sockets_.end()) {
    reply_ctx = {sit->second.reply_trace_id, sit->second.reply_parent};
    sit->second.reply_trace_id = 0;
    sit->second.reply_parent = 0;
  }
  ScopedSpan span(sim_, "netstub", "net.stub.send", reply_ctx);
  co_await phi_cpu_->Compute(params_.net_stub_cpu);
  if (options_.adaptive_copy) {
    co_await ChargeAdaptivePayloadCopyUnattributed(
        params_, data.size(), /*initiator_is_host=*/false);
  }
  NetEvent header;
  header.kind = NetEventKind::kData;
  header.sock = sock;
  header.length = static_cast<uint32_t>(data.size());
  if (reply_ctx.traced()) {
    TraceContext child = span.context();
    header.trace_id = child.trace_id;
    header.parent_span = child.parent_span;
  }
  // Passthrough (both staging knobs off) is the legacy encode + single
  // ring push, byte-identical in time; otherwise the plug stages/batches.
  co_return co_await plug_->SendData(header, data);
}

Task<Status> NetStub::Close(int64_t sock) {
  co_await phi_cpu_->Compute(params_.net_stub_cpu);
  // Barrier: staged replies must reach the host before the kClose RPC, or
  // the proxy could tear the connection down ahead of them. No-op (and no
  // simulated time) when staging is off.
  (void)co_await plug_->Flush();
  auto it = sockets_.find(sock);
  if (it != sockets_.end()) {
    if (it->second.recv_queue != nullptr) {
      it->second.recv_queue->Close();
    }
    if (it->second.accept_queue != nullptr) {
      it->second.accept_queue->Close();
    }
    sockets_.erase(it);
  }
  NetRequest request;
  request.op = NetOp::kClose;
  request.sock = sock;
  SOLROS_CO_ASSIGN_OR_RETURN(NetResponse response,
                             co_await Call(request));
  if (response.error != ErrorCode::kOk) {
    co_return Status(response.error);
  }
  co_return OkStatus();
}

}  // namespace solros
