#include "src/net/net_stub.h"

#include <utility>

#include "src/base/fault.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/sim/trace.h"

namespace solros {

NetStub::NetStub(Simulator* sim, const HwParams& params, Processor* phi_cpu,
                 SimRing* rpc_request, SimRing* rpc_response,
                 SimRing* inbound, SimRing* outbound)
    : sim_(sim),
      params_(params),
      phi_cpu_(phi_cpu),
      rpc_(sim, rpc_request, rpc_response),
      inbound_(inbound),
      outbound_(outbound),
      c_events_(MetricRegistry::Default().GetCounter("net.stub.events")),
      c_retries_(MetricRegistry::Default().GetCounter("net.stub.retries")),
      c_recvs_(MetricRegistry::Default().GetCounter("net.stub.recvs")),
      c_sends_(MetricRegistry::Default().GetCounter("net.stub.sends")),
      c_send_bytes_(
          MetricRegistry::Default().GetCounter("net.stub.send_bytes")) {
  rpc_.Start();
  Spawn(*sim_, EventDispatcher(this));
}

NetStub::SocketState& NetStub::EnsureSocket(int64_t handle) {
  SocketState& state = sockets_[handle];
  if (state.accept_queue == nullptr) {
    state.accept_queue = std::make_unique<Channel<int64_t>>(sim_, 0);
  }
  if (state.recv_queue == nullptr) {
    state.recv_queue = std::make_unique<Channel<RecvItem>>(sim_, 0);
  }
  return state;
}

Task<void> NetStub::EventDispatcher(NetStub* self) {
  // §4.4.2: one dispatcher dequeues from the inbound ring and feeds
  // per-socket queues; application threads copy payloads in parallel.
  while (true) {
    auto record = co_await self->inbound_->Receive();
    if (!record.ok()) {
      break;  // ring closed
    }
    ++self->events_;
    self->c_events_->Increment();
    NetEvent event = DecodePod<NetEvent>(*record);
    TraceContext ctx{event.trace_id, event.parent_span};
    // Retroactive inbound-ring wait: [event ready, dequeued here] — the
    // slice of the round trip spent queued behind the single dispatcher
    // (same idiom as the RPC response ring, rpc.h).
    if (Tracer* tracer = self->sim_->tracer();
        tracer != nullptr && ctx.traced()) {
      auto stamp = self->inbound_->last_dequeue_stamp();
      if (stamp.has_value()) {
        tracer->RecordSpan("ring", "net.queue.event", stamp->ready_at,
                           stamp->dequeue_at, ctx);
      }
    }
    ScopedSpan span(self->sim_, "netstub", "net.stub.dispatch", ctx);
    switch (event.kind) {
      case NetEventKind::kAccepted: {
        // Make the connected socket's queues exist before any data event.
        self->EnsureSocket(event.new_sock);
        SocketState& listener = self->EnsureSocket(event.sock);
        co_await listener.accept_queue->Send(event.new_sock);
        break;
      }
      case NetEventKind::kData: {
        SocketState& socket = self->EnsureSocket(event.sock);
        std::vector<uint8_t> payload(record->begin() + sizeof(NetEvent),
                                     record->end());
        co_await socket.recv_queue->Send(
            {std::move(payload), event.trace_id, event.parent_span});
        break;
      }
      case NetEventKind::kPeerClosed: {
        auto it = self->sockets_.find(event.sock);
        if (it != self->sockets_.end() &&
            it->second.recv_queue != nullptr) {
          it->second.recv_queue->Close();
        }
        break;
      }
    }
  }
}

Task<Result<NetResponse>> NetStub::Call(NetRequest request) {
  // Root of this RPC's causal trace (see FsStub::Call): a fresh trace id
  // carried on the wire so the proxy's spans hang off this one. Untraced
  // (all-zero) when no tracer is bound.
  Tracer* tracer = sim_->tracer();
  TraceContext root_ctx;
  if (tracer != nullptr) {
    root_ctx.trace_id = tracer->NewTraceId();
  }
  ScopedSpan span(sim_, "netstub", "net.stub.call", root_ctx);
  TraceContext ctx = span.context();
  request.trace_id = ctx.trace_id;
  request.parent_span = ctx.parent_span;
  // Only a transport timeout is retried: the outcome is unknown, so the
  // reissue gives at-least-once semantics (see set_retry_options). Timers
  // exist only while faults are armed.
  const Nanos timeout = Faults().any_armed() ? retry_.timeout : 0;
  Nanos backoff = retry_.backoff;
  Result<NetResponse> rpc = Status(ErrorCode::kInternal);
  for (int attempt = 1;; ++attempt) {
    rpc = co_await rpc_.Call(request, timeout);
    if (rpc.ok() || rpc.code() != ErrorCode::kTimedOut ||
        attempt >= retry_.max_attempts) {
      // A failed RPC marks the whole trace for retention under tail-based
      // sampling (no-op in full-capture mode).
      if (!rpc.ok() && tracer != nullptr && root_ctx.traced()) {
        tracer->FlagTrace(root_ctx.trace_id, Tracer::TraceFlag::kError);
      }
      co_return rpc;
    }
    c_retries_->Increment();
    TRACE_INSTANT(sim_, "netstub", "net.stub.retry");
    if (tracer != nullptr && root_ctx.traced()) {
      tracer->FlagTrace(root_ctx.trace_id, Tracer::TraceFlag::kError);
    }
    co_await Delay(backoff);
    backoff *= 2;
  }
}

Task<Result<int64_t>> NetStub::Listen(uint16_t port, int backlog) {
  co_await phi_cpu_->Compute(params_.net_stub_cpu);
  NetRequest socket_req;
  socket_req.op = NetOp::kSocket;
  SOLROS_CO_ASSIGN_OR_RETURN(NetResponse created,
                             co_await Call(socket_req));
  if (created.error != ErrorCode::kOk) {
    co_return Status(created.error);
  }
  int64_t handle = created.value;
  EnsureSocket(handle);

  NetRequest listen_req;
  listen_req.op = NetOp::kListen;
  listen_req.sock = handle;
  listen_req.port = port;
  listen_req.backlog = static_cast<uint16_t>(backlog);
  SOLROS_CO_ASSIGN_OR_RETURN(NetResponse listened,
                             co_await Call(listen_req));
  if (listened.error != ErrorCode::kOk) {
    co_return Status(listened.error);
  }
  co_return handle;
}

Task<Result<int64_t>> NetStub::Accept(int64_t listener) {
  co_await phi_cpu_->Compute(params_.net_stub_cpu);
  SocketState& state = EnsureSocket(listener);
  std::optional<int64_t> sock = co_await state.accept_queue->Receive();
  if (!sock.has_value()) {
    co_return Status(ErrorCode::kConnectionReset, "listener closed");
  }
  co_return *sock;
}

Task<Result<std::vector<uint8_t>>> NetStub::Recv(int64_t sock) {
  c_recvs_->Increment();
  TRACE_SPAN(sim_, "netstub", "net.stub.recv");
  co_await phi_cpu_->Compute(params_.net_stub_cpu);
  SocketState& state = EnsureSocket(sock);
  std::optional<RecvItem> item = co_await state.recv_queue->Receive();
  if (!item.has_value()) {
    co_return Status(ErrorCode::kConnectionReset, "peer closed");
  }
  // Remember the request's context so the next Send on this socket (the
  // reply, in request/response protocols) joins the same trace.
  state.reply_trace_id = item->trace_id;
  state.reply_parent = item->parent_span;
  co_return std::move(item->data);
}

Task<Status> NetStub::Send(int64_t sock, std::span<const uint8_t> data) {
  c_sends_->Increment();
  c_send_bytes_->Increment(data.size());
  // Consume the reply context stashed by Recv (untraced if none pending);
  // the outbound NetEvent carries it so the proxy's outbound-queue wait,
  // shard service, and downlink wire spans attribute to the right trace.
  TraceContext reply_ctx;
  auto sit = sockets_.find(sock);
  if (sit != sockets_.end()) {
    reply_ctx = {sit->second.reply_trace_id, sit->second.reply_parent};
    sit->second.reply_trace_id = 0;
    sit->second.reply_parent = 0;
  }
  ScopedSpan span(sim_, "netstub", "net.stub.send", reply_ctx);
  co_await phi_cpu_->Compute(params_.net_stub_cpu);
  NetEvent header;
  header.kind = NetEventKind::kData;
  header.sock = sock;
  header.length = static_cast<uint32_t>(data.size());
  if (reply_ctx.traced()) {
    TraceContext child = span.context();
    header.trace_id = child.trace_id;
    header.parent_span = child.parent_span;
  }
  std::vector<uint8_t> record = EncodePodWithPayload(header, data);
  co_return co_await outbound_->Send(record);
}

Task<Status> NetStub::Close(int64_t sock) {
  co_await phi_cpu_->Compute(params_.net_stub_cpu);
  auto it = sockets_.find(sock);
  if (it != sockets_.end()) {
    if (it->second.recv_queue != nullptr) {
      it->second.recv_queue->Close();
    }
    if (it->second.accept_queue != nullptr) {
      it->second.accept_queue->Close();
    }
    sockets_.erase(it);
  }
  NetRequest request;
  request.op = NetOp::kClose;
  request.sock = sock;
  SOLROS_CO_ASSIGN_OR_RETURN(NetResponse response,
                             co_await Call(request));
  if (response.error != ErrorCode::kOk) {
    co_return Status(response.error);
  }
  co_return OkStatus();
}

}  // namespace solros
