// External network substrate: client machines, the 100 Gbps wire, and the
// server's NIC.
//
// The paper's network evaluation (§6) runs a client machine over 100 Gbps
// Ethernet against servers reachable through the host (Solros / host
// baselines) or bridged through to a Xeon Phi (stock Phi-Linux). This
// module models that outer loop:
//
//   ExternalClient --wire (bw + latency)--> NIC --> registered ServerPort
//
// Message-granular TCP: each message charges per-segment stack CPU at both
// endpoints and bandwidth on the wire; sequencing/retransmission are out of
// scope (DESIGN.md §7). A ServerPort is whatever terminates connections on
// the server side — the Solros TCP proxy, a host server, or the bridged
// Phi-Linux stack.
#ifndef SOLROS_SRC_NET_ETHERNET_H_
#define SOLROS_SRC_NET_ETHERNET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "src/base/metrics.h"
#include "src/base/status.h"
#include "src/hw/fabric.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/sim/resource.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/trace.h"

namespace solros {

inline constexpr uint64_t kTcpMss = 1448;

inline uint64_t TcpSegments(uint64_t bytes) {
  return bytes == 0 ? 1 : (bytes + kTcpMss - 1) / kTcpMss;
}

// Server-side connection termination. Implementations charge their own
// architecture's costs before delivering to the application.
class ServerPort {
 public:
  virtual ~ServerPort() = default;
  // A new client connection; returns a status (reject on backlog etc.).
  // `conn_id` is the fabric-global connection id.
  virtual Task<Status> OnConnect(uint64_t conn_id, uint16_t port,
                                 uint32_t client_addr) = 0;
  // Client payload arriving at the NIC for this connection. `ctx` is the
  // client's trace context for per-stage attribution (untraced when zero);
  // implementations hang their service spans off it and thread it through
  // to the reply.
  virtual Task<void> OnClientData(uint64_t conn_id, std::vector<uint8_t> data,
                                  TraceContext ctx) = 0;
  virtual Task<void> OnClientClose(uint64_t conn_id) = 0;
};

class EthernetFabric {
 public:
  EthernetFabric(Simulator* sim, const HwParams& params);

  // Registers `port_handler` as the terminator for TCP port `port`.
  void RegisterPort(uint16_t port, ServerPort* handler);
  void UnregisterPort(uint16_t port);

  // -- client side -----------------------------------------------------------
  // Establishes a connection; returns the connection id.
  Task<Result<uint64_t>> ClientConnect(uint32_t client_addr, uint16_t port,
                                       Processor* client_cpu);
  // `ctx`, when traced, wraps the uplink wire transfer in a
  // "net.wire.transit" span and rides with the data to the ServerPort.
  Task<Status> ClientSend(uint64_t conn_id, std::span<const uint8_t> data,
                          Processor* client_cpu, TraceContext ctx = {});
  // Waits for the next server->client message.
  Task<Result<std::vector<uint8_t>>> ClientRecv(uint64_t conn_id);
  Task<void> ClientClose(uint64_t conn_id, Processor* client_cpu);

  // -- server side -----------------------------------------------------------
  // Delivery back to the client (used by ServerPort implementations); the
  // caller has already charged its server-side stack costs. A traced `ctx`
  // wraps the downlink wire transfer in a "net.wire.transit" span.
  Task<Status> DeliverToClient(uint64_t conn_id, std::vector<uint8_t> data,
                               TraceContext ctx = {});
  void CloseFromServer(uint64_t conn_id);

  uint64_t connections_opened() const { return next_conn_ - 1; }

  // -- payload buffer pool ---------------------------------------------------
  // Wire payloads used to be materialized with a fresh
  // std::vector<uint8_t>(data.begin(), data.end()) per message — at storm
  // scale that is one heap allocation per message on the hottest path.
  // AcquirePayload reuses retired buffers' capacity instead; ReleasePayload
  // returns a consumed payload (ServerPort implementations call it once
  // they have copied the bytes onward). "net.wire.payload_copies" counts
  // every materialization, "net.wire.pool_hits" the ones that reused a
  // pooled buffer. No simulated time is involved either way.
  std::vector<uint8_t> AcquirePayload(std::span<const uint8_t> data);
  void ReleasePayload(std::vector<uint8_t> buffer);

 private:
  struct Conn {
    uint16_t port;
    uint32_t client_addr;
    ServerPort* handler;
    std::unique_ptr<Channel<std::vector<uint8_t>>> to_client;
    bool open = true;
  };

  Task<void> WireToServer(uint64_t bytes);
  Task<void> WireToClient(uint64_t bytes);

  Simulator* sim_;
  HwParams params_;
  BandwidthResource wire_up_;    // client -> server
  BandwidthResource wire_down_;  // server -> client
  std::map<uint16_t, ServerPort*> ports_;
  std::map<uint64_t, Conn> conns_;
  uint64_t next_conn_ = 1;
  // Retired payload buffers, capacity intact (bounded; see AcquirePayload).
  static constexpr size_t kPayloadPoolCap = 64;
  std::vector<std::vector<uint8_t>> payload_pool_;
  Counter* const c_payload_copies_;
  Counter* const c_pool_hits_;
};

}  // namespace solros

#endif  // SOLROS_SRC_NET_ETHERNET_H_
