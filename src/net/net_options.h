// Net data-path tuning knobs (DESIGN.md §5.5).
//
// Four independent mechanisms, all off by default so the legacy
// one-event-per-push path stays byte-identical:
//
//  * coalescing    — GSO/GRO analogue: same-socket payloads accumulate in a
//    bounded per-socket staging buffer and flush as one multi-segment
//    NetEvent on a plug-window/size trigger; the receive side splits the
//    segments back out, so ServerApi semantics are unchanged.
//  * vectored_push — iosched-style "one doorbell per round": multiple ready
//    events ride one SimRing push as a kBatch frame.
//  * adaptive_copy — payload movement is charged through the rings'
//    memcpy-vs-DMA policy (src/transport/adaptive_copy.h) instead of being
//    a free host-side vector copy, attributed to the copy_dma stage.
//  * drr_dispatch  — deficit-round-robin across data planes in the proxy's
//    outbound pump and across sockets in the stub dispatcher, plus
//    byte-backlog (not event-count) refresh of BalanceTarget::queue_depth.
#ifndef SOLROS_SRC_NET_NET_OPTIONS_H_
#define SOLROS_SRC_NET_NET_OPTIONS_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "src/base/units.h"

namespace solros {

struct NetPathOptions {
  bool coalescing = false;
  bool vectored_push = false;
  bool adaptive_copy = false;
  bool drr_dispatch = false;

  // Coalescing: per-socket staging cap (a full stage seals immediately) and
  // the plug window after which a partial stage flushes anyway.
  uint32_t net_coalesce_bytes = KiB(64);
  Nanos net_plug_window_ns = Microseconds(5);

  // Vectored push: events per doorbell and bytes per frame (both bounded so
  // one frame never approaches the ring capacity).
  uint32_t max_events_per_push = 32;
  uint64_t max_push_bytes = KiB(256);

  // Total staged+pending bytes per plug before senders backpressure.
  uint64_t staging_capacity = MiB(1);

  // DRR byte quantum added to a queue's deficit each round.
  uint32_t drr_quantum = KiB(16);

  // True when the send path stages at all (either mechanism needs a plug).
  bool staging_enabled() const { return coalescing || vectored_push; }
};

// Resolved knobs: explicit config wins, then SOLROS_NET_* environment,
// then defaults (mirrors ResolveProxyShards). SOLROS_NET_BATCH=1 is the
// fig19 shorthand for all four mechanisms at once.
inline NetPathOptions ResolveNetPathOptions(NetPathOptions base) {
  auto env_flag = [](const char* name, bool* out) {
    const char* v = std::getenv(name);
    if (v != nullptr) {
      *out = std::atoi(v) != 0;
    }
  };
  auto env_u64 = [](const char* name, uint64_t* out) {
    const char* v = std::getenv(name);
    if (v != nullptr && std::atoll(v) > 0) {
      *out = static_cast<uint64_t>(std::atoll(v));
    }
  };
  bool batch = false;
  env_flag("SOLROS_NET_BATCH", &batch);
  if (batch) {
    base.coalescing = true;
    base.vectored_push = true;
    base.adaptive_copy = true;
    base.drr_dispatch = true;
  }
  env_flag("SOLROS_NET_COALESCE", &base.coalescing);
  env_flag("SOLROS_NET_VECTORED", &base.vectored_push);
  env_flag("SOLROS_NET_ADAPTIVE_COPY", &base.adaptive_copy);
  env_flag("SOLROS_NET_DRR", &base.drr_dispatch);
  uint64_t u = 0;
  u = base.net_coalesce_bytes;
  env_u64("SOLROS_NET_COALESCE_BYTES", &u);
  base.net_coalesce_bytes =
      static_cast<uint32_t>(std::clamp<uint64_t>(u, 1024, MiB(1)));
  u = static_cast<uint64_t>(base.net_plug_window_ns);
  env_u64("SOLROS_NET_PLUG_WINDOW_NS", &u);
  base.net_plug_window_ns =
      static_cast<Nanos>(std::clamp<uint64_t>(u, 100, Milliseconds(10)));
  u = base.max_events_per_push;
  env_u64("SOLROS_NET_PUSH_EVENTS", &u);
  base.max_events_per_push =
      static_cast<uint32_t>(std::clamp<uint64_t>(u, 1, 1024));
  u = base.drr_quantum;
  env_u64("SOLROS_NET_DRR_QUANTUM", &u);
  base.drr_quantum =
      static_cast<uint32_t>(std::clamp<uint64_t>(u, 256, MiB(1)));
  return base;
}

}  // namespace solros

#endif  // SOLROS_SRC_NET_NET_OPTIONS_H_
