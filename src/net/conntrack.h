// Per-connection tracking table for the TCP proxy ("the NIC should be part
// of the OS": connection-level visibility at the policy layer).
//
// The proxy feeds every connection lifecycle event into this table:
//
//   OnConnect   a forwarded connection was bound to a proxy shard and a
//               data plane;
//   OnInbound   one client message was forwarded to the data plane
//               (backlog grows; an idle connection starts its RTT clock);
//   OnOutbound  one data-plane reply reached the proxy for this connection
//               (backlog shrinks; RTT = now - clock);
//   OnDrop      a message was discarded (ring full / unknown socket);
//   OnClose     the connection ended (entry is retained, marked closed).
//
// The table is pure bookkeeping: it never awaits, so binding it changes no
// simulated timing — runs are byte-identical with tracking on or off (it is
// always on; it costs a map update per message).
//
// When a TelemetryHub is bound, each proxy shard additionally gets a
// depth-mode UseSeries ("net.conn" / "net.conn[k]") aggregating its
// connections' backlog: depth = messages forwarded but not yet answered,
// wait = the backend RTT of each completed reply, errors = drops. The
// bottleneck analyzer consumes these via net.proxy[k] -> net.conn[k] edges,
// so a hot connection family is named the way a hot shard is.
//
// WriteTopJson emits the top-K connections by total bytes (integer-only,
// deterministic order: bytes desc, then conn id asc) for the bench wrapper
// JSON; tools/solros_top renders it as a table.
#ifndef SOLROS_SRC_NET_CONNTRACK_H_
#define SOLROS_SRC_NET_CONNTRACK_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

#include "src/base/metrics.h"
#include "src/sim/simulator.h"

namespace solros {

struct ConnEntry {
  uint64_t conn_id = 0;
  uint32_t shard = 0;
  uint32_t dataplane = 0;
  uint16_t port = 0;
  bool open = true;
  SimTime opened_at = 0;
  SimTime closed_at = 0;
  uint64_t bytes_in = 0;   // client -> data plane payload bytes
  uint64_t bytes_out = 0;  // data plane -> client payload bytes
  uint64_t msgs_in = 0;
  uint64_t msgs_out = 0;
  uint64_t drops = 0;
  // Messages forwarded to the data plane and not yet answered.
  uint64_t backlog = 0;
  // Backend RTT: forward-to-reply turnaround through the data plane.
  SimTime pending_since = 0;  // valid while backlog > 0
  Nanos rtt_last = 0;
  Nanos rtt_sum = 0;
  uint64_t rtt_count = 0;

  Nanos Age(SimTime now) const {
    return (open ? now : closed_at) - opened_at;
  }
};

class ConnTracker {
 public:
  ConnTracker(Simulator* sim, int shard_count);

  // Registers the per-shard backlog series with `hub` (lazily, on each
  // shard's first event, so unused shards add nothing to snapshots).
  void BindTelemetry(TelemetryHub* hub);

  void OnConnect(uint64_t conn_id, uint32_t shard, uint32_t dataplane,
                 uint16_t port);
  void OnInbound(uint64_t conn_id, uint64_t bytes);
  void OnOutbound(uint64_t conn_id, uint64_t bytes);
  void OnDrop(uint64_t conn_id);
  void OnClose(uint64_t conn_id);

  const ConnEntry* Find(uint64_t conn_id) const;
  size_t size() const { return conns_.size(); }
  uint64_t closed_count() const { return closed_; }

  // {"conns":[{...top-K...}],"total":N,"closed":M} — integer fields only.
  void WriteTopJson(std::ostream& os, size_t top_k) const;

 private:
  UseSeries* ShardSeries(uint32_t shard);

  Simulator* sim_;
  int shard_count_;
  TelemetryHub* hub_ = nullptr;
  std::vector<UseSeries*> series_;  // per shard, null until first event
  std::map<uint64_t, ConnEntry> conns_;
  uint64_t closed_ = 0;
};

}  // namespace solros

#endif  // SOLROS_SRC_NET_CONNTRACK_H_
