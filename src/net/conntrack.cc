#include "src/net/conntrack.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/sharding.h"

namespace solros {

ConnTracker::ConnTracker(Simulator* sim, int shard_count)
    : sim_(sim), shard_count_(shard_count < 1 ? 1 : shard_count) {
  CHECK(sim != nullptr);
  series_.assign(static_cast<size_t>(shard_count_), nullptr);
}

void ConnTracker::BindTelemetry(TelemetryHub* hub) { hub_ = hub; }

UseSeries* ConnTracker::ShardSeries(uint32_t shard) {
  if (hub_ == nullptr || shard >= series_.size()) {
    return nullptr;
  }
  if (series_[shard] == nullptr) {
    series_[shard] =
        hub_->GetSeries(ShardLabel("net.conn", shard, shard_count_));
  }
  return series_[shard];
}

void ConnTracker::OnConnect(uint64_t conn_id, uint32_t shard,
                            uint32_t dataplane, uint16_t port) {
  ConnEntry& entry = conns_[conn_id];
  entry.conn_id = conn_id;
  entry.shard = shard;
  entry.dataplane = dataplane;
  entry.port = port;
  entry.open = true;
  entry.opened_at = sim_->now();
}

void ConnTracker::OnInbound(uint64_t conn_id, uint64_t bytes) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  ConnEntry& entry = it->second;
  entry.bytes_in += bytes;
  ++entry.msgs_in;
  if (entry.backlog == 0) {
    entry.pending_since = sim_->now();
  }
  ++entry.backlog;
  if (UseSeries* series = ShardSeries(entry.shard)) {
    series->QueueDelta(sim_->now(), 1);
  }
}

void ConnTracker::OnOutbound(uint64_t conn_id, uint64_t bytes) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  ConnEntry& entry = it->second;
  entry.bytes_out += bytes;
  ++entry.msgs_out;
  if (entry.backlog > 0) {
    Nanos rtt = sim_->now() - entry.pending_since;
    entry.rtt_last = rtt;
    entry.rtt_sum += rtt;
    ++entry.rtt_count;
    --entry.backlog;
    // Pipelined requests: restart the clock for the ones still in flight
    // (an approximation — per-message stamps would cost a queue per conn).
    entry.pending_since = sim_->now();
    if (UseSeries* series = ShardSeries(entry.shard)) {
      series->QueueDelta(sim_->now(), -1);
      series->CompleteOp(sim_->now(), rtt);
    }
  }
}

void ConnTracker::OnDrop(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  ++it->second.drops;
  if (UseSeries* series = ShardSeries(it->second.shard)) {
    series->AddError(sim_->now());
  }
}

void ConnTracker::OnClose(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || !it->second.open) {
    return;
  }
  ConnEntry& entry = it->second;
  entry.open = false;
  entry.closed_at = sim_->now();
  ++closed_;
  // Retire any still-unanswered backlog from the shard depth series so the
  // live depth does not leak after the connection is gone.
  if (entry.backlog > 0) {
    if (UseSeries* series = ShardSeries(entry.shard)) {
      series->QueueDelta(sim_->now(),
                         -static_cast<int64_t>(entry.backlog));
    }
    entry.backlog = 0;
  }
}

const ConnEntry* ConnTracker::Find(uint64_t conn_id) const {
  auto it = conns_.find(conn_id);
  return it == conns_.end() ? nullptr : &it->second;
}

void ConnTracker::WriteTopJson(std::ostream& os, size_t top_k) const {
  std::vector<const ConnEntry*> ranked;
  ranked.reserve(conns_.size());
  for (const auto& [id, entry] : conns_) {
    ranked.push_back(&entry);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const ConnEntry* a, const ConnEntry* b) {
              uint64_t ta = a->bytes_in + a->bytes_out;
              uint64_t tb = b->bytes_in + b->bytes_out;
              if (ta != tb) {
                return ta > tb;
              }
              return a->conn_id < b->conn_id;
            });
  if (ranked.size() > top_k) {
    ranked.resize(top_k);
  }
  SimTime now = sim_->now();
  os << "{\"conns\":[";
  bool first = true;
  for (const ConnEntry* entry : ranked) {
    if (!first) {
      os << ",";
    }
    first = false;
    uint64_t rtt_avg =
        entry->rtt_count == 0 ? 0 : entry->rtt_sum / entry->rtt_count;
    os << "{\"id\":" << entry->conn_id << ",\"shard\":" << entry->shard
       << ",\"dataplane\":" << entry->dataplane
       << ",\"port\":" << entry->port << ",\"open\":" << (entry->open ? 1 : 0)
       << ",\"bytes_in\":" << entry->bytes_in
       << ",\"bytes_out\":" << entry->bytes_out
       << ",\"msgs_in\":" << entry->msgs_in
       << ",\"msgs_out\":" << entry->msgs_out
       << ",\"backlog\":" << entry->backlog << ",\"drops\":" << entry->drops
       << ",\"age_ns\":" << entry->Age(now)
       << ",\"rtt_last_ns\":" << entry->rtt_last
       << ",\"rtt_avg_ns\":" << rtt_avg << "}";
  }
  os << "],\"total\":" << conns_.size() << ",\"closed\":" << closed_ << "}";
}

}  // namespace solros
