// Multi-segment NetEvent framing for the coalescing/vectored net data path
// (DESIGN.md §5.5).
//
// Layouts, all starting with a plain NetEvent header (src/rpc/messages.h):
//
//  * legacy kData (segments == 0): header + one message's payload bytes;
//    the message's trace context is in the header. Bit-identical to the
//    pre-coalescing wire format.
//  * coalesced kData (segments == N >= 1): header + N NetSegment
//    descriptors + the N messages' payload bytes concatenated in order.
//    header.length covers descriptors + payloads; per-message contexts live
//    in the descriptors (the header context is zero).
//  * kBatch (segments == N): header + N [u32 length][encoded record]
//    entries, each entry itself a legacy or coalesced event record. One
//    ring push (one doorbell) delivers all of them.
#ifndef SOLROS_SRC_NET_NET_FRAME_H_
#define SOLROS_SRC_NET_NET_FRAME_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/base/logging.h"
#include "src/rpc/messages.h"

namespace solros {

// Per-message descriptor inside a coalesced kData event.
struct NetSegment {
  uint32_t length = 0;  // payload bytes of this message
  uint32_t reserved = 0;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

// One encoded event plus enough bookkeeping for plug-wait attribution.
// Deliberately not an aggregate — see NetStub::RecvItem for the GCC 12
// coroutine-parameter pitfall.
struct NetFrameView {
  NetFrameView() = default;
  NetFrameView(NetEvent h, std::span<const uint8_t> p) : header(h), body(p) {}
  NetEvent header;
  std::span<const uint8_t> body;  // bytes following the header
};

// Splits a record (header already peeled by the caller) into its events:
// kBatch yields one NetFrameView per sub-record; anything else yields the
// record itself. Views alias `body`.
inline std::vector<NetFrameView> SplitBatch(const NetEvent& header,
                                            std::span<const uint8_t> body) {
  std::vector<NetFrameView> events;
  if (header.kind != NetEventKind::kBatch) {
    events.emplace_back(header, body);
    return events;
  }
  events.reserve(header.segments);
  size_t off = 0;
  for (uint16_t i = 0; i < header.segments; ++i) {
    CHECK_LE(off + sizeof(uint32_t), body.size());
    uint32_t len = 0;
    std::memcpy(&len, body.data() + off, sizeof(len));
    off += sizeof(len);
    CHECK_LE(off + len, body.size());
    CHECK_GE(len, sizeof(NetEvent));
    std::span<const uint8_t> record = body.subspan(off, len);
    events.emplace_back(DecodePod<NetEvent>(record),
                        record.subspan(sizeof(NetEvent)));
    off += len;
  }
  return events;
}

// One message sliced out of a (possibly coalesced) kData event body.
struct NetSegmentView {
  NetSegmentView() = default;
  NetSegmentView(std::span<const uint8_t> p, uint64_t trace, uint64_t parent)
      : payload(p), trace_id(trace), parent_span(parent) {}
  std::span<const uint8_t> payload;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

// Splits a kData event into its messages (exactly one for the legacy
// layout). Views alias `body`.
inline std::vector<NetSegmentView> SplitSegments(
    const NetEvent& event, std::span<const uint8_t> body) {
  std::vector<NetSegmentView> messages;
  if (event.segments == 0) {
    messages.emplace_back(body, event.trace_id, event.parent_span);
    return messages;
  }
  const size_t table = sizeof(NetSegment) * event.segments;
  CHECK_LE(table, body.size());
  messages.reserve(event.segments);
  size_t off = table;
  for (uint16_t i = 0; i < event.segments; ++i) {
    NetSegment seg;
    std::memcpy(&seg, body.data() + i * sizeof(NetSegment), sizeof(seg));
    CHECK_LE(off + seg.length, body.size());
    messages.emplace_back(body.subspan(off, seg.length), seg.trace_id,
                          seg.parent_span);
    off += seg.length;
  }
  return messages;
}

// Encodes a coalesced kData record for `sock`: descriptor table + payloads.
// `segments` and `bytes` are parallel (bytes holds the concatenation).
inline std::vector<uint8_t> EncodeCoalescedData(
    int64_t sock, std::span<const NetSegment> segments,
    std::span<const uint8_t> bytes) {
  NetEvent header;
  header.kind = NetEventKind::kData;
  header.sock = sock;
  header.segments = static_cast<uint16_t>(segments.size());
  header.length = static_cast<uint32_t>(sizeof(NetSegment) * segments.size() +
                                        bytes.size());
  std::vector<uint8_t> out(sizeof(NetEvent) + header.length);
  std::memcpy(out.data(), &header, sizeof(header));
  std::memcpy(out.data() + sizeof(NetEvent), segments.data(),
              sizeof(NetSegment) * segments.size());
  if (!bytes.empty()) {
    std::memcpy(out.data() + sizeof(NetEvent) +
                    sizeof(NetSegment) * segments.size(),
                bytes.data(), bytes.size());
  }
  return out;
}

// Wraps already-encoded event records into one kBatch record.
inline std::vector<uint8_t> EncodeBatch(
    std::span<const std::vector<uint8_t>> records) {
  size_t body_bytes = 0;
  for (const auto& r : records) {
    body_bytes += sizeof(uint32_t) + r.size();
  }
  NetEvent header;
  header.kind = NetEventKind::kBatch;
  header.segments = static_cast<uint16_t>(records.size());
  header.length = static_cast<uint32_t>(body_bytes);
  std::vector<uint8_t> out(sizeof(NetEvent) + body_bytes);
  std::memcpy(out.data(), &header, sizeof(header));
  size_t off = sizeof(NetEvent);
  for (const auto& r : records) {
    const uint32_t len = static_cast<uint32_t>(r.size());
    std::memcpy(out.data() + off, &len, sizeof(len));
    off += sizeof(len);
    std::memcpy(out.data() + off, r.data(), r.size());
    off += r.size();
  }
  return out;
}

}  // namespace solros

#endif  // SOLROS_SRC_NET_NET_FRAME_H_
