#include "src/net/ethernet.h"

#include <utility>

#include "src/base/logging.h"

namespace solros {

EthernetFabric::EthernetFabric(Simulator* sim, const HwParams& params)
    : sim_(sim),
      params_(params),
      wire_up_(sim, params.nic_bw, params.nic_wire_latency, "eth-up"),
      wire_down_(sim, params.nic_bw, params.nic_wire_latency, "eth-down"),
      c_payload_copies_(
          MetricRegistry::Default().GetCounter("net.wire.payload_copies")),
      c_pool_hits_(
          MetricRegistry::Default().GetCounter("net.wire.pool_hits")) {
  if (sim->telemetry() != nullptr) {
    wire_up_.set_use_series(sim->telemetry()->GetSeries("net.wire.up"));
    wire_down_.set_use_series(sim->telemetry()->GetSeries("net.wire.down"));
  }
}

void EthernetFabric::RegisterPort(uint16_t port, ServerPort* handler) {
  CHECK(handler != nullptr);
  CHECK(ports_.find(port) == ports_.end()) << "port " << port << " in use";
  ports_[port] = handler;
}

void EthernetFabric::UnregisterPort(uint16_t port) { ports_.erase(port); }

std::vector<uint8_t> EthernetFabric::AcquirePayload(
    std::span<const uint8_t> data) {
  c_payload_copies_->Increment();
  std::vector<uint8_t> buffer;
  if (!payload_pool_.empty()) {
    c_pool_hits_->Increment();
    buffer = std::move(payload_pool_.back());
    payload_pool_.pop_back();
    buffer.clear();
  }
  buffer.insert(buffer.end(), data.begin(), data.end());
  return buffer;
}

void EthernetFabric::ReleasePayload(std::vector<uint8_t> buffer) {
  if (payload_pool_.size() >= kPayloadPoolCap || buffer.capacity() == 0) {
    return;  // drop: the pool is bounded so idle capacity can't accumulate
  }
  payload_pool_.push_back(std::move(buffer));
}

Task<void> EthernetFabric::WireToServer(uint64_t bytes) {
  co_await wire_up_.Transfer(bytes);
}

Task<void> EthernetFabric::WireToClient(uint64_t bytes) {
  co_await wire_down_.Transfer(bytes);
}

Task<Result<uint64_t>> EthernetFabric::ClientConnect(uint32_t client_addr,
                                                     uint16_t port,
                                                     Processor* client_cpu) {
  auto it = ports_.find(port);
  if (it == ports_.end()) {
    co_return Status(ErrorCode::kConnectionReset, "connection refused");
  }
  // Client-side connect() cost + SYN/ACK handshake across the wire.
  co_await client_cpu->Compute(params_.tcp_segment_cpu);
  co_await WireToServer(64);
  uint64_t conn_id = next_conn_++;
  Conn conn;
  conn.port = port;
  conn.client_addr = client_addr;
  conn.handler = it->second;
  conn.to_client =
      std::make_unique<Channel<std::vector<uint8_t>>>(sim_, /*capacity=*/0);
  conns_.emplace(conn_id, std::move(conn));
  Status accepted =
      co_await it->second->OnConnect(conn_id, port, client_addr);
  if (!accepted.ok()) {
    conns_.erase(conn_id);
    co_return accepted;
  }
  co_await WireToClient(64);  // SYN-ACK
  co_return conn_id;
}

Task<Status> EthernetFabric::ClientSend(uint64_t conn_id,
                                        std::span<const uint8_t> data,
                                        Processor* client_cpu,
                                        TraceContext ctx) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || !it->second.open) {
    co_return Status(ErrorCode::kNotConnected);
  }
  // Client stack cost per segment, then the wire.
  co_await client_cpu->Compute(TcpSegments(data.size()) *
                               params_.tcp_segment_cpu);
  {
    // Uplink transit (queueing + serialization + propagation), closed
    // before the server port runs so the wire stage never overlaps service.
    ScopedSpan wire(ctx.traced() ? sim_->tracer() : nullptr, "wire",
                    "net.wire.transit", ctx);
    co_await WireToServer(data.size() + 64);
  }
  std::vector<uint8_t> payload = AcquirePayload(data);
  co_await it->second.handler->OnClientData(conn_id, std::move(payload), ctx);
  co_return OkStatus();
}

Task<Result<std::vector<uint8_t>>> EthernetFabric::ClientRecv(
    uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    co_return Status(ErrorCode::kNotConnected);
  }
  std::optional<std::vector<uint8_t>> message =
      co_await it->second.to_client->Receive();
  if (!message.has_value()) {
    co_return Status(ErrorCode::kConnectionReset, "peer closed");
  }
  co_return std::move(*message);
}

Task<void> EthernetFabric::ClientClose(uint64_t conn_id,
                                       Processor* client_cpu) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    co_return;
  }
  co_await client_cpu->Compute(params_.tcp_segment_cpu);
  co_await WireToServer(64);
  it->second.open = false;
  co_await it->second.handler->OnClientClose(conn_id);
  it->second.to_client->Close();
}

Task<Status> EthernetFabric::DeliverToClient(uint64_t conn_id,
                                             std::vector<uint8_t> data,
                                             TraceContext ctx) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end() || !it->second.open) {
    co_return Status(ErrorCode::kNotConnected);
  }
  {
    ScopedSpan wire(ctx.traced() ? sim_->tracer() : nullptr, "wire",
                    "net.wire.transit", ctx);
    co_await WireToClient(data.size() + 64);
  }
  co_await it->second.to_client->Send(std::move(data));
  co_return OkStatus();
}

void EthernetFabric::CloseFromServer(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  it->second.open = false;
  it->second.to_client->Close();
}

}  // namespace solros
