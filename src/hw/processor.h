// Processor model: a pool of hardware threads with a speed factor.
//
// The paper's central asymmetry (§3, §4): host cores are fast but few;
// Xeon Phi cores are slow (lean, in-order) but massively parallel. A task
// charges CPU work in *reference nanoseconds* (time on a host core); the
// processor scales it by its speed factor and queues it on one of its
// hardware threads, so oversubscription shows up as queueing delay.
#ifndef SOLROS_SRC_HW_PROCESSOR_H_
#define SOLROS_SRC_HW_PROCESSOR_H_

#include <string>

#include "src/base/logging.h"
#include "src/base/units.h"
#include "src/hw/fabric.h"
#include "src/sim/resource.h"
#include "src/sim/task.h"

namespace solros {

class Processor {
 public:
  // `telemetry_series` overrides the USE series this processor's busy time
  // is recorded into (default "cpu.<name>"). A sharded service passes its
  // own component label (e.g. "fs.proxy[2]") so the core's utilization and
  // the service's queue depth land in one series and the bottleneck
  // analyzer names the shard directly.
  Processor(Simulator* sim, DeviceId device, int hw_threads, double speed,
            std::string name, std::string telemetry_series = "")
      : device_(device),
        speed_(speed),
        threads_(sim, static_cast<size_t>(hw_threads), name) {
    CHECK_GT(speed, 0.0);
    CHECK_GT(hw_threads, 0);
    if (sim->telemetry() != nullptr) {
      threads_.set_use_series(sim->telemetry()->GetSeries(
          telemetry_series.empty() ? "cpu." + name : telemetry_series,
          static_cast<uint32_t>(hw_threads)));
    }
  }

  // Runs `reference_ns` of host-speed CPU work on this processor.
  Task<void> Compute(Nanos reference_ns) {
    co_await threads_.Use(ScaledTime(reference_ns));
  }

  // The wall time `reference_ns` of work takes on one of these cores.
  Nanos ScaledTime(Nanos reference_ns) const {
    return static_cast<Nanos>(static_cast<double>(reference_ns) / speed_);
  }

  DeviceId device() const { return device_; }
  double speed() const { return speed_; }
  int hw_threads() const { return static_cast<int>(threads_.server_count()); }
  Nanos total_busy_time() const { return threads_.total_busy_time(); }

 private:
  DeviceId device_;
  double speed_;
  MultiServerResource threads_;
};

}  // namespace solros

#endif  // SOLROS_SRC_HW_PROCESSOR_H_
