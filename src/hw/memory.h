// Device memory: real byte storage tagged with the owning fabric device.
//
// This is the analogue of the paper's multiple physical address spaces
// (§4.1): a buffer lives in exactly one device's memory; moving bytes
// between buffers on different devices costs fabric time (see DmaEngine and
// WindowCopier). A MemRef is the (buffer, offset, length) triple that RPC
// messages carry in place of data for zero-copy I/O (§4.3.1) — the moral
// equivalent of a physical address in a system-mapped PCIe window.
#ifndef SOLROS_SRC_HW_MEMORY_H_
#define SOLROS_SRC_HW_MEMORY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/logging.h"
#include "src/hw/fabric.h"

namespace solros {

class DeviceBuffer {
 public:
  DeviceBuffer(DeviceId device, size_t size)
      : device_(device), bytes_(size, 0) {}
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceId device() const { return device_; }
  size_t size() const { return bytes_.size(); }
  uint8_t* data() { return bytes_.data(); }
  const uint8_t* data() const { return bytes_.data(); }

  std::span<uint8_t> Span(uint64_t offset, uint64_t length) {
    CHECK_LE(offset + length, bytes_.size());
    return {bytes_.data() + offset, length};
  }
  std::span<const uint8_t> Span(uint64_t offset, uint64_t length) const {
    CHECK_LE(offset + length, bytes_.size());
    return {bytes_.data() + offset, length};
  }

 private:
  DeviceId device_;
  std::vector<uint8_t> bytes_;
};

// A non-owning window into a DeviceBuffer.
struct MemRef {
  DeviceBuffer* buffer = nullptr;
  uint64_t offset = 0;
  uint64_t length = 0;

  static MemRef Of(DeviceBuffer& buf) {
    return MemRef{&buf, 0, buf.size()};
  }
  static MemRef Of(DeviceBuffer& buf, uint64_t offset, uint64_t length) {
    CHECK_LE(offset + length, buf.size());
    return MemRef{&buf, offset, length};
  }

  bool valid() const { return buffer != nullptr; }
  DeviceId device() const {
    DCHECK(buffer != nullptr);
    return buffer->device();
  }
  std::span<uint8_t> span() const { return buffer->Span(offset, length); }

  // A sub-window relative to this one.
  MemRef Sub(uint64_t rel_offset, uint64_t sub_length) const {
    CHECK_LE(rel_offset + sub_length, length);
    return MemRef{buffer, offset + rel_offset, sub_length};
  }
};

}  // namespace solros

#endif  // SOLROS_SRC_HW_MEMORY_H_
