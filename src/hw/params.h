// Calibrated hardware parameters for the simulated Solros testbed.
//
// Every constant is annotated with its provenance in the paper (EuroSys'18,
// Min et al.) or the referenced datasheet. Benchmarks and device models must
// take these from an HwParams instance rather than hard-coding numbers, so
// the calibration is auditable and ablatable in one place.
//
// The paper's machine (§6): two Xeon E5-2670 v3 sockets (24 physical cores
// each, 8 DMA channels), four Xeon Phi co-processors (61 cores / 244 hardware
// threads) on PCIe Gen 2 x16, an Intel 750 NVMe SSD (1.2 TB), and a client
// behind 100 Gbps Ethernet.
#ifndef SOLROS_SRC_HW_PARAMS_H_
#define SOLROS_SRC_HW_PARAMS_H_

#include <cstdint>

#include "src/base/units.h"

namespace solros {

struct HwParams {
  // -- PCIe links (paper §6: "maximum bandwidth from Xeon Phi to host is
  // 6.5GB/sec and the bandwidth in the other direction is 6.0GB/sec") ------
  double pcie_phi_up_bw = GBps(6.5);    // Phi -> host direction
  double pcie_phi_down_bw = GBps(6.0);  // host -> Phi direction
  // NVMe SSD on PCIe Gen 3 x4 (Intel 750 datasheet).
  double pcie_nvme_bw = GBps(3.2);
  // 100 Gbps NIC.
  double pcie_nic_bw = Gbps(100);
  // Host DRAM path for host-terminated transfers.
  double host_mem_bw = GBps(40);
  // QPI interconnect between sockets (§2: "approaching the bandwidth of the
  // QPI interconnect" for PCIe Gen4 ~31.5 GB/s; QPI 9.6 GT/s ~ 19.2 GB/s).
  double qpi_bw = GBps(19.2);
  // Propagation + protocol latency of one bulk transfer across the fabric.
  Nanos pcie_propagation = Nanoseconds(500);

  // Fig. 1(a): P2P across a NUMA boundary is capped because "a processor
  // relays PCIe packets to another processor across a QPI interconnect";
  // "the maximum throughput is capped at 300MB/sec".
  double cross_numa_p2p_bw = MBps(300);

  // -- DMA engines (Fig. 4 and §4.2.1) -------------------------------------
  // "a host-initiated data transfer is faster than a co-processor initiated
  // one — 2.3x for DMA": 6.0 GB/s vs 2.6 GB/s.
  double dma_bw_host = GBps(6.0);
  double dma_bw_phi = GBps(2.6);
  // DMA channel setup ("high latency for small data"); chosen so that the
  // 64 B ratios of §4.2.1 hold: DMA is 2.9x slower than memcpy on the host
  // and 12.6x slower on the Phi.
  Nanos dma_init_host = Microseconds(1);
  Nanos dma_init_phi = Microseconds(8);
  // "both a Xeon and Xeon Phi processor have eight DMA engines" (§5).
  int dma_channels = 8;

  // -- load/store (memcpy) over a system-mapped PCIe window (Fig. 4) -------
  // Each load/store issues a 64 B PCIe transaction (§4.2.1). The cost curve
  // is two-segment: write-combined posted writes sustain ~1.2 GB/s for the
  // first 64 KB, after which sustained streams throttle to the
  // per-transaction rate of Fig. 4(b) (~40 / 22 MB/s, host 1.8x faster).
  // The segment boundary and rates are solved from three paper anchors:
  // the 2.9x / 12.6x 64 B ratios vs DMA, the 1 KB / 16 KB adaptive copy
  // thresholds (§4.2.4), and the 150x / 116x DMA advantage at 8 MB.
  double memcpy_fast_bw = GBps(1.2);
  uint64_t memcpy_fast_region = KiB(64);
  double memcpy_stream_bw_host = MBps(40);
  double memcpy_stream_bw_phi = MBps(22);
  // 64 B memcpy latency; from §4.2.1's 2.9x / 12.6x ratios vs. DMA.
  Nanos memcpy_small_latency_host = Nanoseconds(345);
  Nanos memcpy_small_latency_phi = Nanoseconds(630);
  // A single remote load/store of a control variable (head/tail): one PCIe
  // round trip (§4.2.4 calls these "costly PCIe transactions").
  Nanos pcie_transaction_latency = Nanoseconds(600);

  // -- Adaptive copy thresholds (§4.2.4): "1 KB from a host and 16 KB from
  // Xeon Phi because of the longer initialization of the DMA channel". ----
  uint64_t adaptive_threshold_host = KiB(1);
  uint64_t adaptive_threshold_phi = KiB(16);

  // -- Processors -----------------------------------------------------------
  int host_sockets = 2;
  int host_cores_per_socket = 24;
  int phi_cores = 61;
  int phi_threads_per_core = 4;  // 244 hardware threads
  double host_core_speed = 1.0;
  // Lean in-order Phi core running branchy OS code (§3: I/O stacks are
  // "frequent control-flow divergent"); ~1/8 of a host core per thread.
  double phi_core_speed = 0.125;

  // -- NVMe SSD (Intel 750, §6: 2.4 GB/s seq read, 1.2 GB/s write) ---------
  double nvme_read_bw = GBps(2.4);
  double nvme_write_bw = GBps(1.2);
  Nanos nvme_read_latency = Microseconds(80);   // flash read access time
  Nanos nvme_write_latency = Microseconds(20);  // write-back buffered
  Nanos nvme_doorbell_cost = Nanoseconds(600);  // one MMIO write
  // Interrupt delivery + handler cost on the receiving CPU; §5 credits part
  // of Solros' win to "reducing the number of interrupts".
  Nanos nvme_interrupt_cost = Microseconds(4);
  // Flush command: drain the device's volatile write buffer to flash.
  // Consumer-NVMe flushes are tens of microseconds to milliseconds; 100us
  // keeps journal barriers visible in fig12 without dominating it.
  Nanos nvme_flush_latency = Microseconds(100);
  int nvme_queue_depth = 128;
  uint32_t nvme_block_size = 4096;

  // -- Network --------------------------------------------------------------
  double nic_bw = Gbps(100);
  Nanos nic_wire_latency = Microseconds(5);  // client <-> server one way
  // CPU cost to push one message through a full TCP/IP stack at reference
  // (host) speed; on a Phi thread this is divided by phi_core_speed, which
  // yields the 7x-ish p99 gap of Fig. 1(b). Split into a per-message fixed
  // part (syscall, softirq, socket wakeup) and a per-segment part.
  Nanos tcp_message_cpu = Microseconds(5);
  Nanos tcp_segment_cpu = Microseconds(2);
  uint32_t tcp_max_segment = KiB(64);
  // Thin data-plane stub cost per socket call (§4.4: "a one-to-one mapping
  // with a socket system call").
  Nanos net_stub_cpu = Nanoseconds(500);
  // Control-plane proxy cost per RPC message.
  Nanos net_proxy_cpu = Microseconds(1);

  // -- File-system stacks ----------------------------------------------------
  // Full-fledged FS per syscall at reference speed (lookup, page cache,
  // block mapping). Fig. 13(a): the Solros stub "spends 5x less time than a
  // full-fledged file system on the Xeon Phi".
  Nanos fs_full_call_cpu = Microseconds(3);
  Nanos fs_stub_cpu = Nanoseconds(600);
  Nanos fs_proxy_cpu = Microseconds(2);
  // virtio-style block relay: per-request kernel round trip on host + one
  // interrupt per request ("An interrupt signal is designated for
  // notification of virtblk", §6.1.2).
  Nanos virtio_request_cpu = Microseconds(5);
  // Host-side CPU relay copy bandwidth for the virtio data path (Fig. 13(a)
  // "CPU-based copy in virtio").
  double virtio_copy_bw = MBps(120);
  // NFS per-call protocol cost and maximum transfer unit.
  Nanos nfs_call_cpu = Microseconds(20);
  uint64_t nfs_transfer_unit = KiB(64);

  // -- Fault model / recovery (no paper provenance: operational constants
  // for the injection layer; all are no-ops unless a fault point is armed) --
  // Device-side command timeout charged when `nvme.cmd.timeout` fires: the
  // command occupies its queue slot for this long, then completes kTimedOut.
  Nanos nvme_timeout = Milliseconds(1);
  // Extra latency charged to a transfer when `hw.fabric.stall` fires
  // (transient link-level retraining / replay storm).
  Nanos pcie_stall_latency = Microseconds(50);
  // Extra latency charged to a ring send/receive when a transport stall
  // point fires (consumer descheduled, producer preempted).
  Nanos ring_stall_latency = Microseconds(20);

  // -- Ring-buffer / RPC ------------------------------------------------------
  // Local enqueue/dequeue CPU cost (combining amortizes atomics; §4.2.3).
  Nanos rb_op_cpu = Nanoseconds(150);
  uint64_t rb_default_size = MiB(4);
  uint64_t net_inbound_rb_size = MiB(128);  // §4.4.1

  // Returns parameters as used by most experiments.
  static HwParams Default() { return HwParams{}; }
};

}  // namespace solros

#endif  // SOLROS_SRC_HW_PARAMS_H_
