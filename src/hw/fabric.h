// Transaction-level PCIe fabric model.
//
// Devices (host sockets are implicit; endpoints are co-processors, NVMe
// SSDs, NICs) attach to a root complex per NUMA socket. A bulk transfer
// between two devices reserves every link on its path for the same interval
// (cut-through, not store-and-forward) at the bottleneck bandwidth:
//
//   endpoint --link--> root complex [--QPI--> root complex] --link--> endpoint
//
// Two fabric effects the paper leans on are modeled explicitly:
//  * per-direction asymmetric endpoint link bandwidth (Phi up 6.5 / down
//    6.0 GB/s);
//  * peer-to-peer transfers that cross the NUMA boundary collapse to
//    ~300 MB/s because a host processor must relay PCIe packets over QPI
//    (Fig. 1(a)) — host-terminated transfers are NOT subject to this cap.
#ifndef SOLROS_SRC_HW_FABRIC_H_
#define SOLROS_SRC_HW_FABRIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/hw/params.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace solros {

class UseSeries;

enum class DeviceType : uint8_t {
  kHost,  // a host socket's memory/root complex
  kPhi,
  kNvme,
  kNic,
};

std::string_view DeviceTypeName(DeviceType type);

// Index into the fabric's device table. Value-type, cheap to copy.
struct DeviceId {
  int32_t index = -1;
  bool valid() const { return index >= 0; }
  bool operator==(const DeviceId&) const = default;
};

class PcieFabric {
 public:
  PcieFabric(Simulator* sim, const HwParams& params);

  // Registers a device attached to `socket`'s root complex. Host devices
  // represent the socket itself (its DRAM); one is created per socket by
  // the constructor and can be looked up with HostDevice(socket).
  DeviceId AddDevice(DeviceType type, int socket, std::string name);

  DeviceId HostDevice(int socket) const;

  DeviceType TypeOf(DeviceId id) const;
  int SocketOf(DeviceId id) const;
  const std::string& NameOf(DeviceId id) const;
  size_t device_count() const { return devices_.size(); }

  // True when the path between the devices crosses the QPI interconnect.
  bool CrossesNuma(DeviceId a, DeviceId b) const;

  // Moves `bytes` from `src` to `dst`, additionally capped at
  // `initiator_rate` (the DMA engine's own bandwidth; pass 0 for no cap).
  // `peer_to_peer` marks transfers where neither endpoint is host memory —
  // only those suffer the cross-NUMA relay cap. Completes when the last
  // byte arrives.
  Task<void> Transfer(DeviceId src, DeviceId dst, uint64_t bytes,
                      double initiator_rate, bool peer_to_peer);

  // The bandwidth a transfer would see (bottleneck of the path), without
  // queueing.
  double PathBandwidth(DeviceId src, DeviceId dst, double initiator_rate,
                       bool peer_to_peer) const;

  // Cumulative accounting (used by benches and tests).
  uint64_t total_bytes_transferred() const { return total_bytes_; }
  uint64_t transfer_count() const { return transfer_count_; }

 private:
  struct Link {
    double bw = 0.0;
    SimTime busy_until = 0;
    // USE telemetry for this link ("fabric.<device>.up/.down",
    // "fabric.qpi"); null when the simulator carries no TelemetryHub.
    UseSeries* use = nullptr;
  };
  struct Device {
    DeviceType type;
    int socket;
    std::string name;
    Link up;    // device -> root complex
    Link down;  // root complex -> device
  };

  // Collects the links on the path src->dst in order.
  void PathLinks(DeviceId src, DeviceId dst, std::vector<Link*>* out);

  Simulator* sim_;
  HwParams params_;
  std::vector<Device> devices_;
  std::vector<DeviceId> host_by_socket_;
  Link qpi_;  // single shared interconnect (modeled symmetric)
  uint64_t total_bytes_ = 0;
  uint64_t transfer_count_ = 0;
};

}  // namespace solros

#endif  // SOLROS_SRC_HW_FABRIC_H_
