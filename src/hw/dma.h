// Data movement engines over the PCIe fabric.
//
//  * DmaEngine — the per-processor DMA block (8 channels on both Xeon and
//    Xeon Phi, §5): high setup latency, high bandwidth, real memcpy of the
//    payload once the simulated transfer completes.
//  * WindowCopier — CPU load/store through a system-mapped PCIe window:
//    no setup cost, each cache line is its own PCIe transaction, so small
//    copies are fast and large ones are slow (§4.2.1 / Fig. 4).
//
// Both move real bytes; simulated time is charged per the calibrated model.
#ifndef SOLROS_SRC_HW_DMA_H_
#define SOLROS_SRC_HW_DMA_H_

#include <algorithm>
#include <cstdint>

#include "src/base/status.h"
#include "src/base/units.h"
#include "src/hw/fabric.h"
#include "src/hw/memory.h"
#include "src/hw/params.h"
#include "src/sim/resource.h"
#include "src/sim/task.h"
#include "src/sim/trace.h"

namespace solros {

class DmaEngine {
 public:
  // `owner` is the processor whose DMA block this is; initiator asymmetry
  // (host 6.0 GB/s vs Phi 2.6 GB/s, Fig. 4) follows from the owner type.
  DmaEngine(Simulator* sim, PcieFabric* fabric, const HwParams& params,
            DeviceId owner);

  // Copies src -> dst (equal lengths), charging channel setup plus fabric
  // occupancy; bytes are physically copied when the transfer completes.
  // Fails (kIoError, no bytes moved) when the `hw.dma.error` fault point
  // fires after channel setup. `ctx` links the dma.copy span to the
  // request being served (untraced when zero).
  Task<Status> Copy(MemRef dst, MemRef src, TraceContext ctx = {});

  // Estimated duration for a copy of `bytes`, ignoring queueing.
  Nanos TimeFor(uint64_t bytes) const;

  double bandwidth() const { return bandwidth_; }
  Nanos init_latency() const { return init_latency_; }
  uint64_t copies_issued() const { return copies_; }

 private:
  Simulator* sim_;
  PcieFabric* fabric_;
  HwParams params_;
  DeviceId owner_;
  double bandwidth_;
  Nanos init_latency_;
  MultiServerResource channels_;
  uint64_t copies_ = 0;
  UseSeries* use_ = nullptr;  // channel busy intervals + engine errors
};

// CPU-driven copy through a system-mapped window.
class WindowCopier {
 public:
  WindowCopier(Simulator* sim, const HwParams& params)
      : sim_(sim), params_(params) {}

  // `initiator_is_host` selects the asymmetric cost curve.
  Task<void> Copy(MemRef dst, MemRef src, bool initiator_is_host);

  Nanos TimeFor(uint64_t bytes, bool initiator_is_host) const {
    Nanos lat = initiator_is_host ? params_.memcpy_small_latency_host
                                  : params_.memcpy_small_latency_phi;
    if (bytes <= 64) {
      return lat;  // a single posted cache-line transaction
    }
    // Write-combining covers the first memcpy_fast_region bytes; beyond
    // that the stream throttles to the per-transaction rate.
    uint64_t fast = std::min(bytes, params_.memcpy_fast_region) - 64;
    uint64_t slow =
        bytes > params_.memcpy_fast_region
            ? bytes - params_.memcpy_fast_region
            : 0;
    double stream_bw = initiator_is_host ? params_.memcpy_stream_bw_host
                                         : params_.memcpy_stream_bw_phi;
    return lat + TransferTime(fast, params_.memcpy_fast_bw) +
           TransferTime(slow, stream_bw);
  }

 private:
  Simulator* sim_;
  HwParams params_;
};

}  // namespace solros

#endif  // SOLROS_SRC_HW_DMA_H_
