#include "src/hw/fabric.h"

#include <algorithm>

#include "src/base/fault.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/sim/trace.h"

namespace solros {

std::string_view DeviceTypeName(DeviceType type) {
  switch (type) {
    case DeviceType::kHost:
      return "host";
    case DeviceType::kPhi:
      return "phi";
    case DeviceType::kNvme:
      return "nvme";
    case DeviceType::kNic:
      return "nic";
  }
  return "unknown";
}

PcieFabric::PcieFabric(Simulator* sim, const HwParams& params)
    : sim_(sim), params_(params) {
  CHECK(sim != nullptr);
  qpi_.bw = params_.qpi_bw;
  if (sim_->telemetry() != nullptr) {
    qpi_.use = sim_->telemetry()->GetSeries("fabric.qpi");
  }
  host_by_socket_.resize(params_.host_sockets);
  for (int s = 0; s < params_.host_sockets; ++s) {
    host_by_socket_[s] =
        AddDevice(DeviceType::kHost, s, "host-socket" + std::to_string(s));
  }
}

DeviceId PcieFabric::AddDevice(DeviceType type, int socket,
                               std::string name) {
  CHECK(socket >= 0 && socket < params_.host_sockets)
      << "bad socket " << socket;
  Device dev;
  dev.type = type;
  dev.socket = socket;
  dev.name = std::move(name);
  switch (type) {
    case DeviceType::kHost:
      dev.up.bw = params_.host_mem_bw;
      dev.down.bw = params_.host_mem_bw;
      break;
    case DeviceType::kPhi:
      dev.up.bw = params_.pcie_phi_up_bw;
      dev.down.bw = params_.pcie_phi_down_bw;
      break;
    case DeviceType::kNvme:
      // The device link carries at most what flash can sustain in each
      // direction (reads flow up, writes flow down), so command execution
      // charges one pipelined bottleneck instead of flash + link serially.
      dev.up.bw = std::min(params_.pcie_nvme_bw, params_.nvme_read_bw);
      dev.down.bw = std::min(params_.pcie_nvme_bw, params_.nvme_write_bw);
      break;
    case DeviceType::kNic:
      dev.up.bw = params_.pcie_nic_bw;
      dev.down.bw = params_.pcie_nic_bw;
      break;
  }
  if (sim_->telemetry() != nullptr) {
    dev.up.use = sim_->telemetry()->GetSeries("fabric." + dev.name + ".up");
    dev.down.use =
        sim_->telemetry()->GetSeries("fabric." + dev.name + ".down");
  }
  devices_.push_back(std::move(dev));
  return DeviceId{static_cast<int32_t>(devices_.size() - 1)};
}

DeviceId PcieFabric::HostDevice(int socket) const {
  CHECK(socket >= 0 && socket < static_cast<int>(host_by_socket_.size()));
  return host_by_socket_[socket];
}

DeviceType PcieFabric::TypeOf(DeviceId id) const {
  CHECK(id.valid() && id.index < static_cast<int32_t>(devices_.size()));
  return devices_[id.index].type;
}

int PcieFabric::SocketOf(DeviceId id) const {
  CHECK(id.valid() && id.index < static_cast<int32_t>(devices_.size()));
  return devices_[id.index].socket;
}

const std::string& PcieFabric::NameOf(DeviceId id) const {
  CHECK(id.valid() && id.index < static_cast<int32_t>(devices_.size()));
  return devices_[id.index].name;
}

bool PcieFabric::CrossesNuma(DeviceId a, DeviceId b) const {
  return SocketOf(a) != SocketOf(b);
}

void PcieFabric::PathLinks(DeviceId src, DeviceId dst,
                           std::vector<Link*>* out) {
  out->clear();
  out->push_back(&devices_[src.index].up);
  if (CrossesNuma(src, dst)) {
    out->push_back(&qpi_);
  }
  out->push_back(&devices_[dst.index].down);
}

double PcieFabric::PathBandwidth(DeviceId src, DeviceId dst,
                                 double initiator_rate,
                                 bool peer_to_peer) const {
  double bw = devices_[src.index].up.bw;
  bw = std::min(bw, devices_[dst.index].down.bw);
  if (CrossesNuma(src, dst)) {
    bw = std::min(bw, qpi_.bw);
    if (peer_to_peer) {
      // Fig. 1(a): a host processor relays P2P PCIe packets across QPI.
      bw = std::min(bw, params_.cross_numa_p2p_bw);
    }
  }
  if (initiator_rate > 0.0) {
    bw = std::min(bw, initiator_rate);
  }
  return bw;
}

Task<void> PcieFabric::Transfer(DeviceId src, DeviceId dst, uint64_t bytes,
                                double initiator_rate, bool peer_to_peer) {
  CHECK(src.valid() && dst.valid());
  if (bytes == 0 || src == dst) {
    co_return;
  }
  static Counter* const transfers =
      MetricRegistry::Default().GetCounter("hw.pcie.transfers");
  static Counter* const xfer_bytes =
      MetricRegistry::Default().GetCounter("hw.pcie.bytes");
  static Counter* const p2p_transfers =
      MetricRegistry::Default().GetCounter("hw.pcie.p2p_transfers");
  transfers->Increment();
  xfer_bytes->Increment(bytes);
  if (peer_to_peer) {
    p2p_transfers->Increment();
  }
  TRACE_SPAN(sim_, "pcie", "pcie.transfer");
  double bw = PathBandwidth(src, dst, initiator_rate, peer_to_peer);
  Nanos duration = TransferTime(bytes, bw);

  // An injected link stall models a transient retraining / replay storm:
  // the transfer still completes, but the path is held for the extra window
  // so contention ripples to everything sharing those links.
  static FaultPoint* const stall = Faults().GetPoint("hw.fabric.stall");
  if (stall->ShouldFire()) {
    static Counter* const stalls =
        MetricRegistry::Default().GetCounter("hw.fabric.stalls");
    stalls->Increment();
    TRACE_INSTANT(sim_, "pcie", "fault.fabric.stall");
    duration += params_.pcie_stall_latency;
  }

  // Cut-through reservation: every link on the path is held for the same
  // interval, starting when the most-contended link frees up.
  std::vector<Link*> links;
  PathLinks(src, dst, &links);
  SimTime start = sim_->now();
  for (Link* link : links) {
    start = std::max(start, link->busy_until);
  }
  SimTime end = start + duration;
  for (Link* link : links) {
    link->busy_until = end;
    if (link->use != nullptr) {
      link->use->RecordUse(sim_->now(), start, end);
    }
  }
  total_bytes_ += bytes;
  ++transfer_count_;
  co_await Delay(end + params_.pcie_propagation - sim_->now());
}

}  // namespace solros
