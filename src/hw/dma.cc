#include "src/hw/dma.h"

#include <cstring>

#include "src/base/fault.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/sim/trace.h"

namespace solros {

DmaEngine::DmaEngine(Simulator* sim, PcieFabric* fabric,
                     const HwParams& params, DeviceId owner)
    : sim_(sim),
      fabric_(fabric),
      params_(params),
      owner_(owner),
      bandwidth_(fabric->TypeOf(owner) == DeviceType::kHost
                     ? params.dma_bw_host
                     : params.dma_bw_phi),
      init_latency_(fabric->TypeOf(owner) == DeviceType::kHost
                        ? params.dma_init_host
                        : params.dma_init_phi),
      channels_(sim, static_cast<size_t>(params.dma_channels),
                fabric->NameOf(owner) + "-dma") {
  if (sim->telemetry() != nullptr) {
    use_ = sim->telemetry()->GetSeries("dma." + fabric->NameOf(owner),
                                       static_cast<uint32_t>(
                                           params.dma_channels));
    channels_.set_use_series(use_);
  }
}

Task<Status> DmaEngine::Copy(MemRef dst, MemRef src, TraceContext ctx) {
  CHECK_EQ(dst.length, src.length);
  ++copies_;
  static Counter* const copies =
      MetricRegistry::Default().GetCounter("hw.dma.copies");
  static Counter* const bytes =
      MetricRegistry::Default().GetCounter("hw.dma.bytes");
  copies->Increment();
  bytes->Increment(src.length);
  ScopedSpan span(sim_, "dma", "dma.copy", ctx);
  // Channel setup: serialized on one of the engine's channels.
  co_await channels_.Use(init_latency_);
  // An injected engine error aborts after setup but before any byte moves,
  // mirroring a descriptor abort: the destination is untouched.
  static FaultPoint* const dma_error = Faults().GetPoint("hw.dma.error");
  if (dma_error->ShouldFire()) {
    static Counter* const errors =
        MetricRegistry::Default().GetCounter("hw.dma.errors");
    errors->Increment();
    TRACE_INSTANT(sim_, "dma", "fault.dma.error");
    if (use_ != nullptr) {
      use_->AddError(sim_->now());
    }
    co_return IoError("injected dma engine error");
  }
  // Peer-to-peer when neither end terminates in host DRAM; those transfers
  // are subject to the cross-NUMA relay cap (Fig. 1(a)).
  bool p2p = fabric_->TypeOf(src.device()) != DeviceType::kHost &&
             fabric_->TypeOf(dst.device()) != DeviceType::kHost;
  if (src.device() == dst.device()) {
    // Local copy within one device's memory: charged at memory bandwidth.
    co_await Delay(TransferTime(src.length, params_.host_mem_bw));
  } else {
    co_await fabric_->Transfer(src.device(), dst.device(), src.length,
                               bandwidth_, p2p);
  }
  std::memcpy(dst.span().data(), src.span().data(), src.length);
  co_return OkStatus();
}

Nanos DmaEngine::TimeFor(uint64_t bytes) const {
  return init_latency_ + TransferTime(bytes, bandwidth_);
}

Task<void> WindowCopier::Copy(MemRef dst, MemRef src,
                              bool initiator_is_host) {
  CHECK_EQ(dst.length, src.length);
  co_await Delay(TimeFor(src.length, initiator_is_host));
  std::memcpy(dst.span().data(), src.span().data(), src.length);
}

}  // namespace solros
