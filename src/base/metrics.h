// Process-wide metrics registry.
//
// Components obtain named handles once and update them on hot paths:
//
//   static Counter* reqs =
//       MetricRegistry::Default().GetCounter("fs.proxy.requests");
//   reqs->Increment();
//
// Three metric kinds cover everything the benches and traces need:
//   Counter          -- monotonically increasing event count (atomic).
//   Gauge            -- instantaneous signed level (queue depth, bytes held).
//   LatencyHistogram -- log-bucketed nanosecond distribution with
//                       percentile queries (wraps base/histogram.h).
//
// Handles are never invalidated: GetX() returns the same pointer for the
// same name for the life of the process, so call sites may cache them in
// function-local statics. All operations are thread-safe (the ring buffer
// updates counters from real threads in the Fig. 8 harness); everything is
// deterministic under the single-threaded simulator.
//
// Snapshot() materializes a name-sorted view; DumpText/DumpJson emit it for
// the benches' --metrics flag and for machine-readable trajectory files.
#ifndef SOLROS_SRC_BASE_METRICS_H_
#define SOLROS_SRC_BASE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/histogram.h"

namespace solros {

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class LatencyHistogram {
 public:
  void Record(uint64_t nanos);
  void RecordN(uint64_t nanos, uint64_t count);

  uint64_t count() const;
  double Mean() const;
  uint64_t ValueAtQuantile(double q) const;
  uint64_t max() const;
  void Reset();

  // Copies the underlying histogram (for offline analysis).
  Histogram Snapshot() const;

 private:
  mutable std::mutex mu_;
  Histogram histogram_;
};

// One materialized registry view, name-sorted for deterministic output.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value;
  };
  struct GaugeValue {
    std::string name;
    int64_t value;
  };
  struct HistogramValue {
    std::string name;
    uint64_t count;
    double mean;
    uint64_t p50;
    uint64_t p99;
    uint64_t max;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // The process-wide instance every instrumentation site uses.
  static MetricRegistry& Default();

  // Returns the handle registered under `name`, creating it on first use.
  // The returned pointer is stable for the registry's lifetime. Registering
  // the same name as two different kinds is a programming error (CHECK).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  // Aligned `name  value` table (benches' --metrics output).
  void DumpText(std::ostream& os) const;
  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void DumpJson(std::ostream& os) const;

  // Zeroes every metric; handles stay valid. (Benches isolate phases.)
  void ResetAll();

  // Zeroes only the histograms, leaving counters/gauges accumulating.
  // Benches call this between a warmup and the measured window (and between
  // repeated iterations) so percentile queries reflect exactly one window
  // instead of smearing every sample ever recorded.
  void ResetHistograms();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry& GetEntry(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // sorted => deterministic dumps
};

}  // namespace solros

#endif  // SOLROS_SRC_BASE_METRICS_H_
