// Process-wide metrics registry.
//
// Components obtain named handles once and update them on hot paths:
//
//   static Counter* reqs =
//       MetricRegistry::Default().GetCounter("fs.proxy.requests");
//   reqs->Increment();
//
// Three metric kinds cover everything the benches and traces need:
//   Counter          -- monotonically increasing event count (atomic).
//   Gauge            -- instantaneous signed level (queue depth, bytes held).
//   LatencyHistogram -- log-bucketed nanosecond distribution with
//                       percentile queries (wraps base/histogram.h).
//
// Handles are never invalidated: GetX() returns the same pointer for the
// same name for the life of the process, so call sites may cache them in
// function-local statics. All operations are thread-safe (the ring buffer
// updates counters from real threads in the Fig. 8 harness); everything is
// deterministic under the single-threaded simulator.
//
// Snapshot() materializes a name-sorted view; DumpText/DumpJson emit it for
// the benches' --metrics flag and for machine-readable trajectory files.
#ifndef SOLROS_SRC_BASE_METRICS_H_
#define SOLROS_SRC_BASE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/units.h"

namespace solros {

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    UpdateMax(v);
  }
  void Add(int64_t delta) {
    int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    UpdateMax(now);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  // High watermark: the peak value observed since construction or the last
  // Reset(). Queue-depth spikes between samples stay visible here.
  int64_t max_value() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void UpdateMax(int64_t v) {
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

class LatencyHistogram {
 public:
  void Record(uint64_t nanos);
  void RecordN(uint64_t nanos, uint64_t count);

  uint64_t count() const;
  double Mean() const;
  uint64_t ValueAtQuantile(double q) const;
  uint64_t max() const;
  void Reset();

  // Copies the underlying histogram (for offline analysis).
  Histogram Snapshot() const;

 private:
  mutable std::mutex mu_;
  Histogram histogram_;
};

// One materialized registry view, name-sorted for deterministic output.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value;
  };
  struct GaugeValue {
    std::string name;
    int64_t value;
    int64_t max_value;
  };
  struct HistogramValue {
    std::string name;
    uint64_t count;
    double mean;
    uint64_t p50;
    uint64_t p99;
    uint64_t max;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // The process-wide instance every instrumentation site uses.
  static MetricRegistry& Default();

  // Returns the handle registered under `name`, creating it on first use.
  // The returned pointer is stable for the registry's lifetime. Registering
  // the same name as two different kinds is a programming error (CHECK).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  // Aligned `name  value` table (benches' --metrics output).
  void DumpText(std::ostream& os) const;
  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void DumpJson(std::ostream& os) const;

  // Zeroes every metric; handles stay valid. (Benches isolate phases.)
  void ResetAll();

  // Zeroes only the histograms, leaving counters/gauges accumulating.
  // Benches call this between a warmup and the measured window (and between
  // repeated iterations) so percentile queries reflect exactly one window
  // instead of smearing every sample ever recorded.
  void ResetHistograms();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry& GetEntry(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // sorted => deterministic dumps
};

// ---------------------------------------------------------------------------
// USE-method telemetry: time-windowed Utilization/Saturation/Errors series.
//
// A TelemetryHub owns one UseSeries per active component (ring, proxy event
// loop, NVMe queue, DMA channel set, fabric link, iosched class, ...). Each
// series keeps a ring of fixed simulated-time windows; per window it
// accumulates
//   busy_ns    server busy time             (interval-recorded components)
//   depth_ns   integral of queue depth dt   (depth-tracked components)
//   active_ns  time with depth > 0
//   wait_ns    summed queueing delay of completed items
//   ops        completions
//   errors     component errors
//   peak_depth high-watermark of the queue depth inside the window
// Utilization is busy/(width*capacity) for interval series and active/width
// for depth series; depth_ns/ops is a Little's-law queueing-delay estimate.
//
// The hub only exists when a Machine is configured with a telemetry window;
// instrumentation sites hold a nullable UseSeries* and skip all bookkeeping
// when it is null, so the off state does zero extra work. Recording never
// advances simulated time, so runs are timing-identical either way, and all
// window math is integer arithmetic on simulated nanoseconds — two identical
// runs produce identical snapshots.

// Raw per-window accumulators, also the (integer-only) dump/interchange
// format shared with tools/solros_top.
struct UseWindowData {
  uint64_t index = 0;  // window start = index * window_ns
  uint64_t busy_ns = 0;
  uint64_t depth_ns = 0;
  uint64_t active_ns = 0;
  uint64_t wait_ns = 0;
  uint64_t ops = 0;
  uint64_t errors = 0;
  int64_t peak_depth = 0;

  bool operator==(const UseWindowData&) const = default;
};

struct UseSeriesData {
  std::string name;
  uint32_t capacity = 1;
  std::vector<UseWindowData> windows;  // ascending by index

  bool operator==(const UseSeriesData&) const = default;
};

struct TelemetrySnapshot {
  uint64_t window_ns = 0;
  uint64_t end_ns = 0;
  std::vector<UseSeriesData> series;  // name-sorted
  // Component graph: parent -> child request-path edges, used by the
  // bottleneck analyzer to compute exclusive queue depths.
  std::vector<std::pair<std::string, std::string>> edges;  // sorted

  // One-line-per-series JSON with integer fields only (byte-deterministic).
  void WriteJson(std::ostream& os) const;

  bool operator==(const TelemetrySnapshot&) const = default;
};

class TelemetryHub;

class UseSeries {
 public:
  // Interval mode: one server-busy interval [start, end) whose request
  // arrived at `arrive` (wait = start - arrive). `end` may lie in the
  // future (resource reservations); busy time is split across the windows
  // the interval overlaps. The op and its wait are attributed to the
  // window containing `start`.
  void RecordUse(Nanos arrive, Nanos start, Nanos end);

  // Depth mode: the component's queue depth changes by `delta` at `now`.
  // Maintains the depth-time integral, the active (depth > 0) time, and
  // the per-window peak.
  void QueueDelta(Nanos now, int64_t delta);

  // One completion whose queueing delay was `wait` (depth mode; pass 0
  // when the delay is unknown and let depth_ns/ops estimate it).
  void CompleteOp(Nanos now, Nanos wait = 0);

  void AddError(Nanos now);

  const std::string& name() const { return name_; }
  uint32_t capacity() const { return capacity_; }
  int64_t depth() const { return depth_; }

 private:
  friend class TelemetryHub;

  UseSeries(std::string name, Nanos window_ns, size_t ring_windows,
            uint32_t capacity);

  struct Slot {
    bool used = false;
    UseWindowData data;
  };

  // Window slot covering time `t`; recycles the ring slot when `t` has
  // moved past its previous occupant. Returns null for writes that land
  // behind the ring (older than what the ring still holds).
  UseWindowData* WindowAt(Nanos t);
  // Integrates the current depth from last_update_ up to `now`.
  void AdvanceDepth(Nanos now);
  void ResetWindows();

  std::string name_;
  Nanos window_ns_;
  uint32_t capacity_;
  std::vector<Slot> ring_;
  int64_t depth_ = 0;
  Nanos last_update_ = 0;
  uint64_t dropped_ = 0;  // writes behind the ring
};

class TelemetryHub {
 public:
  // `window_ns` is the fixed window width in simulated nanoseconds;
  // `ring_windows` bounds how much history each series retains.
  explicit TelemetryHub(Nanos window_ns, size_t ring_windows = 256);

  // Returns the series registered under `name`, creating it on first use.
  // The pointer is stable for the hub's lifetime. `capacity` is the number
  // of parallel servers behind the series (utilization denominator); it is
  // fixed on first registration.
  UseSeries* GetSeries(const std::string& name, uint32_t capacity = 1);

  // Declares a request-path edge parent -> child for exclusive-depth
  // computation in the bottleneck analyzer. Unknown names are fine (the
  // edge simply contributes nothing until the series appears).
  void DeclareEdge(const std::string& parent, const std::string& child);

  // Flushes depth integrals up to `end` and materializes every retained
  // window, name-sorted. Non-const because the flush advances series state.
  TelemetrySnapshot Snapshot(Nanos end);

  // Clears all windows and integrals (current depths persist: they are
  // live component state, not history). Counters/gauges in MetricRegistry
  // are untouched, and vice versa.
  void Reset();

  Nanos window_ns() const { return window_ns_; }

 private:
  Nanos window_ns_;
  size_t ring_windows_;
  std::map<std::string, std::unique_ptr<UseSeries>> series_;  // name-sorted
  std::vector<std::pair<std::string, std::string>> edges_;
};

}  // namespace solros

#endif  // SOLROS_SRC_BASE_METRICS_H_
