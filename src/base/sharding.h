// Partitioning keys for the sharded control plane.
//
// The control-plane proxies (FsProxy, TcpProxy) can run as N independent
// shards, each pinned to a dedicated host core with isolated state (§4's
// "applications should control sharing", applied to the control plane
// itself: partition first, share only what must be shared). These helpers
// define the partition keys; stubs and proxies must agree on them, so they
// live here with no dependencies.
//
//   inode range   namespace/metadata ops on an inode: consecutive runs of
//                 64 inodes map to one shard, so a directory's worth of
//                 files tends to stay together.
//   block group   data ops: the file's offset space is striped round-robin
//                 across shards in kShardStripeBlocks-block groups, mixed
//                 with the inode so different files start on different
//                 shards. Round-robin (not hashed) striping makes the load
//                 split exact for sequential and strided workloads.
//   path hash     namespace ops that carry only a path (FNV-1a).
//   connection    TCP connections: a 64-bit mix of the wire connection id.
//
// Every helper degenerates to shard 0 when `shards <= 1`, so unsharded
// configurations take the exact same code path.
#ifndef SOLROS_SRC_BASE_SHARDING_H_
#define SOLROS_SRC_BASE_SHARDING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace solros {

// Stripe width for block-group routing, in file-system blocks (64 blocks =
// 256 KiB at 4 KiB blocks): wide enough that a readahead window never
// spans more than two groups, narrow enough that a multi-MiB file spreads
// over every shard.
inline constexpr uint64_t kShardStripeBlocks = 64;

// Consecutive inodes per range before the owner advances.
inline constexpr uint64_t kShardInodeRange = 64;

// Owner of an inode's metadata (stat-by-ino, truncate, fsync routing).
inline constexpr int ShardOfInode(uint64_t ino, int shards) {
  if (shards <= 1) {
    return 0;
  }
  return static_cast<int>((ino / kShardInodeRange) %
                          static_cast<uint64_t>(shards));
}

// Owner of a file's data at `offset` (reads/writes). `block_size` is the
// fs block size in bytes. The inode term staggers file starts across
// shards; the offset term round-robins the file's groups.
inline constexpr int ShardOfFileRange(uint64_t ino, uint64_t offset,
                                      uint32_t block_size, int shards) {
  if (shards <= 1) {
    return 0;
  }
  uint64_t group = offset / (kShardStripeBlocks * uint64_t{block_size});
  return static_cast<int>((ino + group) % static_cast<uint64_t>(shards));
}

// Owner of a path-only namespace op (create/unlink/mkdir/...): FNV-1a.
inline int ShardOfPath(std::string_view path, int shards) {
  if (shards <= 1) {
    return 0;
  }
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : path) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return static_cast<int>(h % static_cast<uint64_t>(shards));
}

// Primary owner of a TCP connection (the accept-queue handoff may override
// it with a less-loaded shard; see TcpProxy).
inline constexpr int ShardOfConnection(uint64_t conn_id, int shards) {
  if (shards <= 1) {
    return 0;
  }
  uint64_t h = conn_id;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return static_cast<int>(h % static_cast<uint64_t>(shards));
}

// Display label for shard k of `service`: the bare service name when the
// service is unsharded, "<service>[k]" otherwise — the bottleneck analyzer
// and solros_top group on the "name[k]" pattern.
inline std::string ShardLabel(std::string_view service, int k, int shards) {
  std::string label(service);
  if (shards > 1) {
    label += "[" + std::to_string(k) + "]";
  }
  return label;
}

}  // namespace solros

#endif  // SOLROS_SRC_BASE_SHARDING_H_
