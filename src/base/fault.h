// Deterministic fault injection.
//
// Components declare named injection points once and probe them on the
// paths that can fail in a real deployment:
//
//   static FaultPoint* const media = Faults().GetPoint("nvme.cmd.fail");
//   if (media->ShouldFire()) {
//     co_return IoError("injected nvme media error");
//   }
//
// Three trigger shapes cover the failure-matrix tests:
//   probability p  -- fire each hit with probability p (per-point xoshiro
//                     PRNG, so the decision sequence depends only on the
//                     global seed, the point name, and the hit ordinal);
//   every Nth      -- fire deterministically on hits N, 2N, 3N, ...;
//   one-shot       -- fire on the next hit, then disarm.
//
// Determinism: arming a point reseeds its PRNG from the registry seed mixed
// with an FNV-1a hash of the point name and zeroes its counters, so two
// runs that arm the same specs observe identical fault sequences no matter
// when the points were first created. Disarmed points cost one relaxed
// atomic load per probe and schedule nothing, so runs with no faults armed
// are byte-identical to a build without any probes.
//
// Configuration comes from the SOLROS_FAULTS environment variable (read
// once, when the default registry is first used) or programmatically:
//
//   SOLROS_FAULTS="nvme.cmd.timeout=0.01,hw.dma.error=1/64,seed=7"
//
// Comma-separated `point=trigger` entries; a trigger is a probability in
// [0,1], `1/N` for every-Nth, or `once`; the reserved key `seed=<u64>`
// sets the registry seed (default 0x50171005).
#ifndef SOLROS_SRC_BASE_FAULT_H_
#define SOLROS_SRC_BASE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/base/prng.h"
#include "src/base/status.h"

namespace solros {

struct FaultSpec {
  // Fire each hit with this probability (0 disables the probabilistic arm).
  double probability = 0.0;
  // Fire on hits N, 2N, 3N, ... (0 disables; 1 fires every hit).
  uint64_t every_nth = 0;
  // Fire on the next hit, then disarm the point.
  bool one_shot = false;

  static FaultSpec Probability(double p) { return {.probability = p}; }
  static FaultSpec EveryNth(uint64_t n) { return {.every_nth = n}; }
  static FaultSpec OneShot() { return {.one_shot = true}; }
};

class FaultRegistry;

// One named injection point. Obtain via FaultRegistry::GetPoint; pointers
// are stable for the registry's lifetime, so call sites cache them in
// function-local statics. Thread-safe (the transport fault tests probe from
// real threads); under the single-threaded simulator the decision sequence
// is fully deterministic.
class FaultPoint {
 public:
  const std::string& name() const { return name_; }

  // Fast probe: false immediately when disarmed (one relaxed load).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Counts a hit and decides whether the fault fires on it.
  bool ShouldFire();

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }

 private:
  friend class FaultRegistry;
  FaultPoint(std::string name, uint64_t registry_seed,
             FaultRegistry* registry);

  // Reseeds the PRNG and zeroes counters (called under the registry lock).
  void Arm(const FaultSpec& spec, uint64_t registry_seed);
  void Disarm();

  std::mutex mu_;
  const std::string name_;
  FaultRegistry* const registry_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> fires_{0};
  FaultSpec spec_;
  Prng prng_;  // guarded by mu_
};

class FaultRegistry {
 public:
  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  // The process-wide instance; applies SOLROS_FAULTS on first use.
  static FaultRegistry& Default();

  // Returns the point registered under `name`, creating it (disarmed) on
  // first use. The pointer is stable for the registry's lifetime.
  FaultPoint* GetPoint(const std::string& name);

  // Arms `name` with `spec`, reseeding its fault PRNG and zeroing its
  // counters. Rejects specs with no trigger or probability outside [0,1].
  Status Arm(const std::string& name, const FaultSpec& spec);
  void Disarm(const std::string& name);
  void DisarmAll();

  // True while at least one point is armed; recovery layers use this to
  // keep timeout timers and frame checksums entirely off in fault-free
  // runs (zero overhead, bit-identical schedules).
  bool any_armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  // Seed mixed into every point's PRNG; changing it re-arms nothing by
  // itself (points reseed when armed).
  void set_seed(uint64_t seed);
  uint64_t seed() const;

  // Applies a SOLROS_FAULTS-syntax config string (see file comment). On a
  // malformed entry nothing is armed and an error names the entry.
  Status Configure(std::string_view config);

  // `name  hits  fires` table of every point touched this process, armed
  // or not (deterministic, name-sorted). Appended to Machine::DumpStats.
  void DumpText(std::ostream& os) const;

  // Invoked every time any point fires (never on the disarmed fast path,
  // so fault-free runs pay nothing). At most one listener; the flight
  // recorder installs one to dump on fault and clears it on destruction.
  // Called outside both the registry and point locks.
  using FireListener = std::function<void(const std::string& point_name)>;
  void SetFireListener(FireListener listener);

 private:
  friend class FaultPoint;
  void NotifyFire(const std::string& name);

  mutable std::mutex mu_;
  uint64_t seed_ = 0x50171005ull;
  std::atomic<uint64_t> armed_count_{0};
  std::map<std::string, std::unique_ptr<FaultPoint>> points_;
  FireListener fire_listener_;  // guarded by mu_
};

// Shorthand used at injection sites.
inline FaultRegistry& Faults() { return FaultRegistry::Default(); }

}  // namespace solros

#endif  // SOLROS_SRC_BASE_FAULT_H_
