#include "src/base/metrics.h"

#include <algorithm>
#include <ostream>

#include "src/base/logging.h"
#include "src/base/stats.h"

namespace solros {

void LatencyHistogram::Record(uint64_t nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Record(nanos);
}

void LatencyHistogram::RecordN(uint64_t nanos, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.RecordN(nanos, count);
}

uint64_t LatencyHistogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_.count();
}

double LatencyHistogram::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_.Mean();
}

uint64_t LatencyHistogram::ValueAtQuantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_.ValueAtQuantile(q);
}

uint64_t LatencyHistogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_.max();
}

void LatencyHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Reset();
}

Histogram LatencyHistogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_;
}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();  // never destroyed
  return *registry;
}

MetricRegistry::Entry& MetricRegistry::GetEntry(const std::string& name,
                                                Kind kind) {
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<LatencyHistogram>();
        break;
    }
  }
  CHECK(entry.kind == kind) << "metric '" << name
                            << "' registered as two different kinds";
  return entry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetEntry(name, Kind::kCounter).counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetEntry(name, Kind::kGauge).gauge.get();
}

LatencyHistogram* MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetEntry(name, Kind::kHistogram).histogram.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.push_back({name, entry.counter->value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back(
            {name, entry.gauge->value(), entry.gauge->max_value()});
        break;
      case Kind::kHistogram:
        snap.histograms.push_back({name, entry.histogram->count(),
                                   entry.histogram->Mean(),
                                   entry.histogram->ValueAtQuantile(0.5),
                                   entry.histogram->ValueAtQuantile(0.99),
                                   entry.histogram->max()});
        break;
    }
  }
  return snap;
}

void MetricRegistry::DumpText(std::ostream& os) const {
  MetricsSnapshot snap = Snapshot();
  TablePrinter table({"metric", "value"});
  for (const auto& c : snap.counters) {
    table.AddRow({c.name, std::to_string(c.value)});
  }
  for (const auto& g : snap.gauges) {
    table.AddRow({g.name, std::to_string(g.value)});
  }
  table.Print(os);
  if (!snap.histograms.empty()) {
    TablePrinter hist({"histogram", "count", "mean ns", "p50 ns", "p99 ns",
                       "max ns"});
    for (const auto& h : snap.histograms) {
      hist.AddRow({h.name, std::to_string(h.count),
                   TablePrinter::Num(h.mean, 0), std::to_string(h.p50),
                   std::to_string(h.p99), std::to_string(h.max)});
    }
    hist.Print(os);
  }
}

void MetricRegistry::DumpJson(std::ostream& os) const {
  MetricsSnapshot snap = Snapshot();
  os << "{\"counters\":{";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i ? "," : "") << "\"" << snap.counters[i].name
       << "\":" << snap.counters[i].value;
  }
  os << "},\"gauges\":{";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i ? "," : "") << "\"" << snap.gauges[i].name
       << "\":{\"value\":" << snap.gauges[i].value
       << ",\"max\":" << snap.gauges[i].max_value << "}";
  }
  os << "},\"histograms\":{";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    os << (i ? "," : "") << "\"" << h.name << "\":{\"count\":" << h.count
       << ",\"mean\":" << TablePrinter::Num(h.mean, 1)
       << ",\"p50\":" << h.p50 << ",\"p99\":" << h.p99
       << ",\"max\":" << h.max << "}";
  }
  os << "}}";
}

void MetricRegistry::ResetHistograms() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    if (entry.kind == Kind::kHistogram) {
      entry.histogram->Reset();
    }
  }
}

// --------------------------------------------------------------------------
// USE telemetry

UseSeries::UseSeries(std::string name, Nanos window_ns, size_t ring_windows,
                     uint32_t capacity)
    : name_(std::move(name)),
      window_ns_(window_ns),
      capacity_(capacity == 0 ? 1 : capacity),
      ring_(ring_windows == 0 ? 1 : ring_windows) {
  CHECK_GT(window_ns_, 0u);
}

UseWindowData* UseSeries::WindowAt(Nanos t) {
  uint64_t idx = t / window_ns_;
  Slot& slot = ring_[idx % ring_.size()];
  if (slot.used && slot.data.index == idx) {
    return &slot.data;
  }
  if (slot.used && slot.data.index > idx) {
    // The ring has already moved past this window (a write older than the
    // retained history). Drop it rather than corrupt the newer occupant.
    ++dropped_;
    return nullptr;
  }
  slot.used = true;
  slot.data = UseWindowData{};
  slot.data.index = idx;
  return &slot.data;
}

void UseSeries::AdvanceDepth(Nanos now) {
  if (now <= last_update_) {
    return;
  }
  if (depth_ <= 0) {  // nothing to integrate: skip the idle gap wholesale
    last_update_ = now;
    return;
  }
  Nanos t = last_update_;
  while (t < now) {
    uint64_t idx = t / window_ns_;
    Nanos window_end = (idx + 1) * window_ns_;
    Nanos segment_end = std::min(now, window_end);
    Nanos dt = segment_end - t;
    if (UseWindowData* w = WindowAt(t)) {
      w->depth_ns += static_cast<uint64_t>(depth_) * dt;
      w->active_ns += dt;
      if (depth_ > w->peak_depth) {
        w->peak_depth = depth_;
      }
    }
    t = segment_end;
  }
  last_update_ = now;
}

void UseSeries::RecordUse(Nanos arrive, Nanos start, Nanos end) {
  CHECK_LE(arrive, start);
  CHECK_LE(start, end);
  if (UseWindowData* w = WindowAt(start)) {
    w->ops += 1;
    w->wait_ns += start - arrive;
  }
  Nanos t = start;
  while (t < end) {
    uint64_t idx = t / window_ns_;
    Nanos window_end = (idx + 1) * window_ns_;
    Nanos segment_end = std::min(end, window_end);
    if (UseWindowData* w = WindowAt(t)) {
      w->busy_ns += segment_end - t;
    }
    t = segment_end;
  }
}

void UseSeries::QueueDelta(Nanos now, int64_t delta) {
  AdvanceDepth(now);
  depth_ += delta;
  if (depth_ < 0) {
    depth_ = 0;  // tolerate late registration (decrement without increment)
  }
  if (UseWindowData* w = WindowAt(now)) {
    if (depth_ > w->peak_depth) {
      w->peak_depth = depth_;
    }
  }
}

void UseSeries::CompleteOp(Nanos now, Nanos wait) {
  if (UseWindowData* w = WindowAt(now)) {
    w->ops += 1;
    w->wait_ns += wait;
  }
}

void UseSeries::AddError(Nanos now) {
  if (UseWindowData* w = WindowAt(now)) {
    w->errors += 1;
  }
}

void UseSeries::ResetWindows() {
  for (Slot& slot : ring_) {
    slot = Slot{};
  }
  dropped_ = 0;
}

TelemetryHub::TelemetryHub(Nanos window_ns, size_t ring_windows)
    : window_ns_(window_ns), ring_windows_(ring_windows) {
  CHECK_GT(window_ns_, 0u);
}

UseSeries* TelemetryHub::GetSeries(const std::string& name,
                                   uint32_t capacity) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_
             .emplace(name, std::unique_ptr<UseSeries>(new UseSeries(
                                name, window_ns_, ring_windows_, capacity)))
             .first;
  }
  return it->second.get();
}

void TelemetryHub::DeclareEdge(const std::string& parent,
                               const std::string& child) {
  edges_.emplace_back(parent, child);
}

TelemetrySnapshot TelemetryHub::Snapshot(Nanos end) {
  TelemetrySnapshot snap;
  snap.window_ns = window_ns_;
  snap.end_ns = end;
  for (auto& [name, series] : series_) {
    series->AdvanceDepth(end);
    UseSeriesData data;
    data.name = name;
    data.capacity = series->capacity_;
    for (const UseSeries::Slot& slot : series->ring_) {
      if (slot.used) {
        data.windows.push_back(slot.data);
      }
    }
    std::sort(data.windows.begin(), data.windows.end(),
              [](const UseWindowData& a, const UseWindowData& b) {
                return a.index < b.index;
              });
    if (!data.windows.empty()) {
      snap.series.push_back(std::move(data));
    }
  }
  snap.edges = edges_;
  std::sort(snap.edges.begin(), snap.edges.end());
  snap.edges.erase(std::unique(snap.edges.begin(), snap.edges.end()),
                   snap.edges.end());
  return snap;
}

void TelemetryHub::Reset() {
  for (auto& [name, series] : series_) {
    series->ResetWindows();
  }
}

void TelemetrySnapshot::WriteJson(std::ostream& os) const {
  os << "{\"window_ns\":" << window_ns << ",\"end_ns\":" << end_ns
     << ",\"series\":[";
  for (size_t i = 0; i < series.size(); ++i) {
    const UseSeriesData& s = series[i];
    os << (i ? ",\n" : "\n") << "{\"name\":\"" << s.name
       << "\",\"capacity\":" << s.capacity << ",\"windows\":[";
    for (size_t j = 0; j < s.windows.size(); ++j) {
      const UseWindowData& w = s.windows[j];
      os << (j ? "," : "") << "{\"i\":" << w.index << ",\"busy\":" << w.busy_ns
         << ",\"depth\":" << w.depth_ns << ",\"active\":" << w.active_ns
         << ",\"wait\":" << w.wait_ns << ",\"ops\":" << w.ops
         << ",\"err\":" << w.errors << ",\"peak\":" << w.peak_depth << "}";
    }
    os << "]}";
  }
  os << "],\"edges\":[";
  for (size_t i = 0; i < edges.size(); ++i) {
    os << (i ? "," : "") << "[\"" << edges[i].first << "\",\""
       << edges[i].second << "\"]";
  }
  os << "]}\n";
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace solros
