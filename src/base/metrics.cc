#include "src/base/metrics.h"

#include <ostream>

#include "src/base/logging.h"
#include "src/base/stats.h"

namespace solros {

void LatencyHistogram::Record(uint64_t nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Record(nanos);
}

void LatencyHistogram::RecordN(uint64_t nanos, uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.RecordN(nanos, count);
}

uint64_t LatencyHistogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_.count();
}

double LatencyHistogram::Mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_.Mean();
}

uint64_t LatencyHistogram::ValueAtQuantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_.ValueAtQuantile(q);
}

uint64_t LatencyHistogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_.max();
}

void LatencyHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Reset();
}

Histogram LatencyHistogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_;
}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();  // never destroyed
  return *registry;
}

MetricRegistry::Entry& MetricRegistry::GetEntry(const std::string& name,
                                                Kind kind) {
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<LatencyHistogram>();
        break;
    }
  }
  CHECK(entry.kind == kind) << "metric '" << name
                            << "' registered as two different kinds";
  return entry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetEntry(name, Kind::kCounter).counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetEntry(name, Kind::kGauge).gauge.get();
}

LatencyHistogram* MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetEntry(name, Kind::kHistogram).histogram.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.push_back({name, entry.counter->value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({name, entry.gauge->value()});
        break;
      case Kind::kHistogram:
        snap.histograms.push_back({name, entry.histogram->count(),
                                   entry.histogram->Mean(),
                                   entry.histogram->ValueAtQuantile(0.5),
                                   entry.histogram->ValueAtQuantile(0.99),
                                   entry.histogram->max()});
        break;
    }
  }
  return snap;
}

void MetricRegistry::DumpText(std::ostream& os) const {
  MetricsSnapshot snap = Snapshot();
  TablePrinter table({"metric", "value"});
  for (const auto& c : snap.counters) {
    table.AddRow({c.name, std::to_string(c.value)});
  }
  for (const auto& g : snap.gauges) {
    table.AddRow({g.name, std::to_string(g.value)});
  }
  table.Print(os);
  if (!snap.histograms.empty()) {
    TablePrinter hist({"histogram", "count", "mean ns", "p50 ns", "p99 ns",
                       "max ns"});
    for (const auto& h : snap.histograms) {
      hist.AddRow({h.name, std::to_string(h.count),
                   TablePrinter::Num(h.mean, 0), std::to_string(h.p50),
                   std::to_string(h.p99), std::to_string(h.max)});
    }
    hist.Print(os);
  }
}

void MetricRegistry::DumpJson(std::ostream& os) const {
  MetricsSnapshot snap = Snapshot();
  os << "{\"counters\":{";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i ? "," : "") << "\"" << snap.counters[i].name
       << "\":" << snap.counters[i].value;
  }
  os << "},\"gauges\":{";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    os << (i ? "," : "") << "\"" << snap.gauges[i].name
       << "\":" << snap.gauges[i].value;
  }
  os << "},\"histograms\":{";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    os << (i ? "," : "") << "\"" << h.name << "\":{\"count\":" << h.count
       << ",\"mean\":" << TablePrinter::Num(h.mean, 1)
       << ",\"p50\":" << h.p50 << ",\"p99\":" << h.p99
       << ",\"max\":" << h.max << "}";
  }
  os << "}}";
}

void MetricRegistry::ResetHistograms() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    if (entry.kind == Kind::kHistogram) {
      entry.histogram->Reset();
    }
  }
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace solros
