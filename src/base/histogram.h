// Latency histogram with percentile queries.
//
// Used to produce the latency CDFs of Fig. 1(b) and the percentile rows of
// the network benchmarks. Log-bucketed (HdrHistogram-style: power-of-two
// major buckets, linear sub-buckets) so it covers nanoseconds to minutes with
// bounded error and O(1) recording.
#ifndef SOLROS_SRC_BASE_HISTOGRAM_H_
#define SOLROS_SRC_BASE_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace solros {

class Histogram {
 public:
  // `sub_bucket_bits` controls relative error: 2^-bits (default ~1.5%).
  explicit Histogram(int sub_bucket_bits = 6);

  void Record(uint64_t value);
  void RecordN(uint64_t value, uint64_t count);

  uint64_t count() const { return total_count_; }
  uint64_t min() const { return total_count_ != 0 ? min_ : 0; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // Value at quantile q in [0, 1]; e.g. ValueAtQuantile(0.99) is p99.
  // Contract (tested in histogram_test):
  //  * empty histogram -> 0 for every q (min()/max()/Mean() are also 0);
  //  * non-empty histogram -> a value in [min(), max()] for every q,
  //    including q = 0 and q = 1 (bucket upper bounds are clamped to the
  //    exact extremes, so percentiles never stray outside observed data);
  //  * single sample -> that exact sample for every q.
  // Out-of-range q is clamped to [0, 1].
  uint64_t ValueAtQuantile(double q) const;

  // Fraction of samples <= value, in [0, 1]. (CDF evaluation.)
  double QuantileOfValue(uint64_t value) const;

  void Merge(const Histogram& other);
  void Reset();

 private:
  size_t BucketIndex(uint64_t value) const;
  uint64_t BucketUpperBound(size_t index) const;

  int sub_bucket_bits_;
  uint64_t sub_bucket_count_;  // 2^sub_bucket_bits
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
  uint64_t min_ = ~0ull;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace solros

#endif  // SOLROS_SRC_BASE_HISTOGRAM_H_
