#include "src/base/histogram.h"

#include <bit>

#include "src/base/logging.h"

namespace solros {

// Log-linear bucketing with k = sub_bucket_bits_:
//  * values in [0, 2^k) are recorded exactly (index == value);
//  * a value with most-significant bit e >= k is first reduced to its top
//    k+1 bits, top = value >> (e - k), which lies in [2^k, 2^(k+1)); the
//    bucket is then (g, top - 2^k) with group g = e - k + 1.
// Group g >= 1 occupies indices [g * 2^k, (g + 1) * 2^k), disjoint from the
// exact region [0, 2^k) and from every other group. Relative bucket width is
// 2^-k (~1.5% for the default k = 6).

Histogram::Histogram(int sub_bucket_bits) : sub_bucket_bits_(sub_bucket_bits) {
  CHECK(sub_bucket_bits >= 1 && sub_bucket_bits <= 16);
  sub_bucket_count_ = 1ull << sub_bucket_bits_;
  // Groups 0 (exact) through 64 - k inclusive.
  size_t groups = static_cast<size_t>(64 - sub_bucket_bits_) + 1;
  counts_.assign((groups + 1) << sub_bucket_bits_, 0);
}

size_t Histogram::BucketIndex(uint64_t value) const {
  if (value < sub_bucket_count_) {
    return static_cast<size_t>(value);
  }
  int e = 63 - std::countl_zero(value);
  int g = e - sub_bucket_bits_ + 1;
  uint64_t top = value >> (e - sub_bucket_bits_);  // in [2^k, 2^(k+1))
  size_t index = (static_cast<size_t>(g) << sub_bucket_bits_) +
                 static_cast<size_t>(top - sub_bucket_count_);
  DCHECK_LT(index, counts_.size());
  return index;
}

uint64_t Histogram::BucketUpperBound(size_t index) const {
  if (index < sub_bucket_count_) {
    return index;
  }
  uint64_t g = index >> sub_bucket_bits_;
  uint64_t sub = index & (sub_bucket_count_ - 1);
  // Inverse of BucketIndex: e = g + k - 1, shift = e - k = g - 1.
  int shift = static_cast<int>(g) - 1;
  return ((sub + sub_bucket_count_ + 1) << shift) - 1;
}

void Histogram::Record(uint64_t value) { RecordN(value, 1); }

void Histogram::RecordN(uint64_t value, uint64_t count) {
  if (count == 0) {
    return;
  }
  counts_[BucketIndex(value)] += count;
  total_count_ += count;
  if (value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

double Histogram::Mean() const {
  if (total_count_ == 0) {
    return 0.0;
  }
  return sum_ / static_cast<double>(total_count_);
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  if (total_count_ == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  auto target = static_cast<uint64_t>(q * static_cast<double>(total_count_));
  if (target == 0) {
    target = 1;
  }
  uint64_t running = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    if (running >= target) {
      // Clamp the bucket's upper bound into [min_, max_]: the answer must
      // be an observed-range value, and with one sample both clamps pin it
      // to exactly that sample.
      uint64_t upper = BucketUpperBound(i);
      if (upper < min_) {
        upper = min_;
      }
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

double Histogram::QuantileOfValue(uint64_t value) const {
  if (total_count_ == 0) {
    return 0.0;
  }
  size_t limit = BucketIndex(value);
  uint64_t running = 0;
  for (size_t i = 0; i <= limit && i < counts_.size(); ++i) {
    running += counts_[i];
  }
  return static_cast<double>(running) / static_cast<double>(total_count_);
}

void Histogram::Merge(const Histogram& other) {
  CHECK_EQ(sub_bucket_bits_, other.sub_bucket_bits_);
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_count_ += other.total_count_;
  if (other.total_count_ != 0) {
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }
  sum_ += other.sum_;
}

void Histogram::Reset() {
  counts_.assign(counts_.size(), 0);
  total_count_ = 0;
  min_ = ~0ull;
  max_ = 0;
  sum_ = 0.0;
}

}  // namespace solros
