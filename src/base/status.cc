#include "src/base/status.h"

namespace solros {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kWouldBlock:
      return "WOULD_BLOCK";
    case ErrorCode::kNotSupported:
      return "NOT_SUPPORTED";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kIoError:
      return "IO_ERROR";
    case ErrorCode::kConnectionReset:
      return "CONNECTION_RESET";
    case ErrorCode::kNotConnected:
      return "NOT_CONNECTED";
    case ErrorCode::kTimedOut:
      return "TIMED_OUT";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace solros
