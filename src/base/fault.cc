#include "src/base/fault.h"

#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <vector>

#include "src/base/logging.h"

namespace solros {
namespace {

// FNV-1a over the point name: decorrelates per-point PRNG streams so the
// fire sequence of one point never depends on which other points exist.
uint64_t HashName(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

FaultPoint::FaultPoint(std::string name, uint64_t registry_seed,
                       FaultRegistry* registry)
    : name_(std::move(name)),
      registry_(registry),
      prng_(registry_seed ^ HashName(name_)) {}

void FaultPoint::Arm(const FaultSpec& spec, uint64_t registry_seed) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
  prng_ = Prng(registry_seed ^ HashName(name_));
  hits_.store(0, std::memory_order_relaxed);
  fires_.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultPoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_relaxed);
  spec_ = FaultSpec{};
}

bool FaultPoint::ShouldFire() {
  if (!armed()) {
    return false;
  }
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!armed_.load(std::memory_order_relaxed)) {
      return false;  // lost a race with Disarm
    }
    uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (spec_.one_shot) {
      fire = true;
      armed_.store(false, std::memory_order_relaxed);
    } else if (spec_.every_nth > 0) {
      fire = hit % spec_.every_nth == 0;
    } else if (spec_.probability > 0.0) {
      fire = prng_.NextBool(spec_.probability);
    }
    if (fire) {
      fires_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Notify outside mu_ so a listener may probe the registry freely.
  if (fire) {
    registry_->NotifyFire(name_);
  }
  return fire;
}

FaultRegistry& FaultRegistry::Default() {
  static FaultRegistry* const registry = [] {
    auto* r = new FaultRegistry();
    const char* env = std::getenv("SOLROS_FAULTS");
    if (env != nullptr && env[0] != '\0') {
      Status status = r->Configure(env);
      if (!status.ok()) {
        LOG(ERROR) << "ignoring bad SOLROS_FAULTS: " << status.ToString();
      }
    }
    return r;
  }();
  return *registry;
}

FaultPoint* FaultRegistry::GetPoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_
             .emplace(name, std::unique_ptr<FaultPoint>(
                                new FaultPoint(name, seed_, this)))
             .first;
  }
  return it->second.get();
}

Status FaultRegistry::Arm(const std::string& name, const FaultSpec& spec) {
  if (spec.probability < 0.0 || spec.probability > 1.0) {
    return InvalidArgumentError("fault probability outside [0,1]");
  }
  if (spec.probability == 0.0 && spec.every_nth == 0 && !spec.one_shot) {
    return InvalidArgumentError("fault spec has no trigger: " + name);
  }
  FaultPoint* point = GetPoint(name);
  std::lock_guard<std::mutex> lock(mu_);
  if (!point->armed()) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  point->Arm(spec, seed_);
  return OkStatus();
}

void FaultRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it != points_.end() && it->second->armed()) {
    it->second->Disarm();
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) {
    if (point->armed()) {
      point->Disarm();
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void FaultRegistry::SetFireListener(FireListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  fire_listener_ = std::move(listener);
}

void FaultRegistry::NotifyFire(const std::string& name) {
  FireListener listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    listener = fire_listener_;
  }
  if (listener) {
    listener(name);
  }
}

void FaultRegistry::set_seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

uint64_t FaultRegistry::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

Status FaultRegistry::Configure(std::string_view config) {
  // Parse fully before arming anything so a malformed tail cannot leave a
  // half-applied config behind.
  struct Entry {
    std::string name;
    FaultSpec spec;
  };
  std::vector<Entry> entries;
  uint64_t new_seed = seed();
  size_t pos = 0;
  while (pos < config.size()) {
    size_t comma = config.find(',', pos);
    std::string_view item = config.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? config.size() : comma + 1;
    if (item.empty()) {
      continue;
    }
    size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 >= item.size()) {
      return InvalidArgumentError("bad fault entry: " + std::string(item));
    }
    std::string name(item.substr(0, eq));
    std::string trigger(item.substr(eq + 1));
    if (name == "seed") {
      char* end = nullptr;
      new_seed = std::strtoull(trigger.c_str(), &end, 0);
      if (end == nullptr || *end != '\0') {
        return InvalidArgumentError("bad fault seed: " + trigger);
      }
      continue;
    }
    FaultSpec spec;
    if (trigger == "once") {
      spec.one_shot = true;
    } else if (size_t slash = trigger.find('/');
               slash != std::string_view::npos) {
      if (trigger.substr(0, slash) != "1") {
        return InvalidArgumentError("every-Nth trigger must be 1/N: " +
                                    trigger);
      }
      char* end = nullptr;
      spec.every_nth = std::strtoull(trigger.c_str() + slash + 1, &end, 10);
      if (end == nullptr || *end != '\0' || spec.every_nth == 0) {
        return InvalidArgumentError("bad every-Nth trigger: " + trigger);
      }
    } else {
      char* end = nullptr;
      spec.probability = std::strtod(trigger.c_str(), &end);
      if (end == nullptr || *end != '\0' || spec.probability < 0.0 ||
          spec.probability > 1.0) {
        return InvalidArgumentError("bad fault probability: " + trigger);
      }
    }
    entries.push_back({std::move(name), spec});
  }
  set_seed(new_seed);
  for (const Entry& entry : entries) {
    SOLROS_RETURN_IF_ERROR(Arm(entry.name, entry.spec));
  }
  return OkStatus();
}

void FaultRegistry::DumpText(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t width = 0;
  for (const auto& [name, point] : points_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, point] : points_) {
    os << std::left << std::setw(static_cast<int>(width) + 2) << name
       << (point->armed() ? "armed   " : "disarmed") << "  hits "
       << point->hits() << "  fires " << point->fires() << "\n";
  }
}

}  // namespace solros
