// Deterministic pseudo-random number generation.
//
// All workload generators take an explicit seed so every experiment in
// EXPERIMENTS.md is bit-for-bit reproducible. The engine is xoshiro256**,
// seeded through SplitMix64 (the reference seeding procedure).
#ifndef SOLROS_SRC_BASE_PRNG_H_
#define SOLROS_SRC_BASE_PRNG_H_

#include <cstdint>

namespace solros {

class Prng {
 public:
  explicit Prng(uint64_t seed = 0x501205d00d5ull) {
    // SplitMix64 expansion of the seed into the four state words.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  // Uniform over [0, 2^64).
  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform over [0, bound). bound == 0 returns 0.
  uint64_t NextBelow(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // Debiased multiply-shift (Lemire).
    unsigned __int128 m = static_cast<unsigned __int128>(Next()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform over [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return lo + NextBelow(hi - lo + 1);
  }

  // Uniform over [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace solros

#endif  // SOLROS_SRC_BASE_PRNG_H_
