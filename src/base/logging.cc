#include "src/base/logging.h"

#include <atomic>
#include <cstdlib>

namespace solros {
namespace {

// Initial severity: SOLROS_LOG_LEVEL from the environment (read once, on
// first use), defaulting to kInfo when unset or unparsable.
LogSeverity InitialSeverity() {
  const char* env = std::getenv("SOLROS_LOG_LEVEL");
  if (env != nullptr) {
    auto parsed = ParseLogSeverity(env);
    if (parsed.has_value()) {
      return *parsed;
    }
  }
  return LogSeverity::kInfo;
}

std::atomic<LogSeverity>& MinSeverity() {
  static std::atomic<LogSeverity> severity{InitialSeverity()};
  return severity;
}

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

// Strips the leading directories so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

}  // namespace

std::optional<LogSeverity> ParseLogSeverity(std::string_view text) {
  // Either a numeric level 0..4 or a case-insensitive name.
  if (text.size() == 1 && text[0] >= '0' && text[0] <= '4') {
    return static_cast<LogSeverity>(text[0] - '0');
  }
  std::string lower(text);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
  }
  if (lower == "debug") {
    return LogSeverity::kDebug;
  }
  if (lower == "info") {
    return LogSeverity::kInfo;
  }
  if (lower == "warning" || lower == "warn") {
    return LogSeverity::kWarning;
  }
  if (lower == "error") {
    return LogSeverity::kError;
  }
  if (lower == "fatal") {
    return LogSeverity::kFatal;
  }
  return std::nullopt;
}

LogSeverity GetMinLogSeverity() {
  return MinSeverity().load(std::memory_order_relaxed);
}

void SetMinLogSeverity(LogSeverity severity) {
  MinSeverity().store(severity, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= GetMinLogSeverity() || severity_ == LogSeverity::kFatal) {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
  if (severity_ == LogSeverity::kFatal) {
    std::cerr.flush();
    std::abort();
  }
}

}  // namespace solros
