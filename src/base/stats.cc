#include "src/base/stats.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace solros {

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) {
      widths.resize(row.size(), 0);
    }
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) {
        os << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    os << "\n";
    if (r == 0) {
      size_t total = 0;
      for (size_t i = 0; i < widths.size(); ++i) {
        total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
      }
      os << std::string(total, '-') << "\n";
    }
  }
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) {
        os << ",";
      }
      const std::string& cell = row[i];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char c : cell) {
          if (c == '"') {
            os << '"';
          }
          os << c;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << "\n";
  }
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace solros
