// Streaming statistics accumulator (Welford) and a tiny fixed-width table
// printer used by the benchmark binaries to emit paper-style rows.
#ifndef SOLROS_SRC_BASE_STATS_H_
#define SOLROS_SRC_BASE_STATS_H_

#include <cmath>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace solros {

class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) {
      min_ = x;
    }
    if (x > max_ || n_ == 1) {
      max_ = x;
    }
    sum_ += x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double sum() const { return sum_; }
  double min() const { return n_ != 0 ? min_ : 0.0; }
  double max() const { return n_ != 0 ? max_ : 0.0; }
  double Variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double Stddev() const { return std::sqrt(Variance()); }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Accumulates rows of strings and prints them with aligned columns. Every
// benchmark uses this so outputs are uniform and grep-able.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  void Print(std::ostream& os) const;

  // Same rows as Print, in RFC-4180-style CSV (quotes cells containing
  // commas or quotes). Benchmarks emit this under --csv.
  void PrintCsv(std::ostream& os) const;

  // Formats a double with `precision` digits after the point.
  static std::string Num(double v, int precision = 2);

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace solros

#endif  // SOLROS_SRC_BASE_STATS_H_
