// Minimal logging and assertion macros.
//
// LOG(level) << ...;          -- streams to stderr with a severity tag.
// CHECK(cond) << ...;         -- aborts with a message when cond is false.
// CHECK_EQ/NE/LT/LE/GT/GE     -- comparison forms that print both operands.
// DCHECK*                     -- compiled out in NDEBUG builds.
#ifndef SOLROS_SRC_BASE_LOGGING_H_
#define SOLROS_SRC_BASE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string_view>

namespace solros {

enum class LogSeverity { kDebug, kInfo, kWarning, kError, kFatal };

// Messages below this severity are discarded. The initial value comes from
// the SOLROS_LOG_LEVEL environment variable (read once, on first use; names
// "debug".."fatal" case-insensitive or digits 0-4), defaulting to kInfo.
LogSeverity GetMinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

// Parses "debug|info|warning|error|fatal" (any case) or "0".."4".
std::optional<LogSeverity> ParseLogSeverity(std::string_view text);

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Turns a streamed expression into void so CHECK can live in a ternary.
// operator& binds looser than operator<<, so trailing streams attach first.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

template <typename T>
concept Streamable = requires(std::ostream& os, const T& v) { os << v; };

// Returns nullptr when the comparison holds; otherwise a heap string with
// both operand values (leaked deliberately — the caller aborts).
template <typename A, typename B, typename Cmp>
std::string* CheckOpHelper(const A& a, const B& b, const char* expr,
                           Cmp cmp) {
  if (cmp(a, b)) {
    return nullptr;
  }
  std::ostringstream os;
  os << "Check failed: " << expr << " (";
  if constexpr (Streamable<A>) {
    os << a;
  } else {
    os << "?";
  }
  os << " vs ";
  if constexpr (Streamable<B>) {
    os << b;
  } else {
    os << "?";
  }
  os << ") ";
  return new std::string(os.str());
}

}  // namespace solros

#define SOLROS_LOG_DEBUG ::solros::LogSeverity::kDebug
#define SOLROS_LOG_INFO ::solros::LogSeverity::kInfo
#define SOLROS_LOG_WARNING ::solros::LogSeverity::kWarning
#define SOLROS_LOG_ERROR ::solros::LogSeverity::kError
#define SOLROS_LOG_FATAL ::solros::LogSeverity::kFatal

#define LOG(severity) \
  ::solros::LogMessage(SOLROS_LOG_##severity, __FILE__, __LINE__).stream()

#define CHECK(cond)                                                          \
  (cond) ? (void)0                                                           \
         : ::solros::LogMessageVoidify() &                                   \
               ::solros::LogMessage(::solros::LogSeverity::kFatal, __FILE__, \
                                    __LINE__)                                \
                       .stream()                                             \
                   << "Check failed: " #cond " "

// The while-form (glog's trick) lets callers append streams:
//   CHECK_EQ(a, b) << "context";
#define SOLROS_CHECK_OP(op, a, b)                                            \
  while (std::string* _solros_check_msg = ::solros::CheckOpHelper(           \
             (a), (b), #a " " #op " " #b,                                    \
             [](const auto& x, const auto& y) { return x op y; }))           \
  ::solros::LogMessage(::solros::LogSeverity::kFatal, __FILE__, __LINE__)    \
          .stream()                                                          \
      << *_solros_check_msg

#define CHECK_EQ(a, b) SOLROS_CHECK_OP(==, a, b)
#define CHECK_NE(a, b) SOLROS_CHECK_OP(!=, a, b)
#define CHECK_LT(a, b) SOLROS_CHECK_OP(<, a, b)
#define CHECK_LE(a, b) SOLROS_CHECK_OP(<=, a, b)
#define CHECK_GT(a, b) SOLROS_CHECK_OP(>, a, b)
#define CHECK_GE(a, b) SOLROS_CHECK_OP(>=, a, b)

// Works for both Status and Result<T> via solros::GetStatus (status.h).
#define CHECK_OK(expr)                                                       \
  do {                                                                       \
    const auto& _st = (expr);                                                \
    if (!_st.ok()) {                                                         \
      ::solros::LogMessage(::solros::LogSeverity::kFatal, __FILE__,          \
                           __LINE__)                                         \
              .stream()                                                      \
          << "Check failed, status not OK: "                                 \
          << ::solros::GetStatus(_st).ToString();                            \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define DCHECK(cond) \
  while (false) CHECK(cond)
#define DCHECK_EQ(a, b) \
  while (false) CHECK_EQ(a, b)
#define DCHECK_LT(a, b) \
  while (false) CHECK_LT(a, b)
#define DCHECK_LE(a, b) \
  while (false) CHECK_LE(a, b)
#else
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#endif

#endif  // SOLROS_SRC_BASE_LOGGING_H_
