// Size and time unit helpers used across the simulator and the benches.
//
// Simulated time is an unsigned 64-bit count of nanoseconds (~584 years of
// range); rates are expressed in bytes per second.
#ifndef SOLROS_SRC_BASE_UNITS_H_
#define SOLROS_SRC_BASE_UNITS_H_

#include <cstdint>

namespace solros {

// -- Sizes ------------------------------------------------------------------
constexpr uint64_t KiB(uint64_t n) { return n << 10; }
constexpr uint64_t MiB(uint64_t n) { return n << 20; }
constexpr uint64_t GiB(uint64_t n) { return n << 30; }

// -- Time (nanoseconds) -----------------------------------------------------
using Nanos = uint64_t;

constexpr Nanos Nanoseconds(uint64_t n) { return n; }
constexpr Nanos Microseconds(uint64_t n) { return n * 1000ull; }
constexpr Nanos Milliseconds(uint64_t n) { return n * 1000'000ull; }
constexpr Nanos Seconds(uint64_t n) { return n * 1000'000'000ull; }

constexpr double ToSeconds(Nanos t) { return static_cast<double>(t) * 1e-9; }
constexpr double ToMicros(Nanos t) { return static_cast<double>(t) * 1e-3; }
constexpr double ToMillis(Nanos t) { return static_cast<double>(t) * 1e-6; }

// -- Rates ------------------------------------------------------------------
// Bytes/second helpers; MB/GB here are decimal (device datasheet convention,
// matching the paper's "2.4GB/sec" style numbers).
constexpr double MBps(double n) { return n * 1e6; }
constexpr double GBps(double n) { return n * 1e9; }
constexpr double Gbps(double n) { return n * 1e9 / 8.0; }

// Time to move `bytes` at `bytes_per_sec`, rounded up to a whole nanosecond.
constexpr Nanos TransferTime(uint64_t bytes, double bytes_per_sec) {
  if (bytes == 0 || bytes_per_sec <= 0) {
    return 0;
  }
  double ns = static_cast<double>(bytes) / bytes_per_sec * 1e9;
  auto whole = static_cast<Nanos>(ns);
  return (static_cast<double>(whole) < ns) ? whole + 1 : whole;
}

// Observed rate in bytes/second for `bytes` moved in `elapsed` sim-time.
constexpr double RateBps(uint64_t bytes, Nanos elapsed) {
  if (elapsed == 0) {
    return 0.0;
  }
  return static_cast<double>(bytes) / ToSeconds(elapsed);
}

}  // namespace solros

#endif  // SOLROS_SRC_BASE_UNITS_H_
