// Error model for the Solros libraries.
//
// The project follows the Google style rule of not using exceptions for
// control flow. Fallible operations return a `Status` (or a `Result<T>`,
// which is a Status plus a value). Codes intentionally mirror the POSIX
// errors that the paper's file-system and network services surface.
#ifndef SOLROS_SRC_BASE_STATUS_H_
#define SOLROS_SRC_BASE_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace solros {

enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,  // no space / quota (ENOSPC)
  kWouldBlock,         // non-blocking op cannot proceed (EWOULDBLOCK)
  kNotSupported,
  kPermissionDenied,
  kFailedPrecondition,  // e.g. directory not empty, fs not mounted
  kIoError,
  kConnectionReset,
  kNotConnected,
  kTimedOut,
  kInternal,
};

// Returns a stable human-readable name ("kOk" -> "OK").
std::string_view ErrorCodeName(ErrorCode code);

// A cheap, value-type status. Ok statuses carry no allocation.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "kIoError: disk detached".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

// Shorthand constructors, mirroring absl::*Error.
inline Status OkStatus() { return Status(); }
inline Status InvalidArgumentError(std::string msg) {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(ErrorCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(ErrorCode::kOutOfRange, std::move(msg));
}
inline Status ResourceExhaustedError(std::string msg) {
  return Status(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Status WouldBlockError() { return Status(ErrorCode::kWouldBlock); }
inline Status NotSupportedError(std::string msg) {
  return Status(ErrorCode::kNotSupported, std::move(msg));
}
inline Status PermissionDeniedError(std::string msg) {
  return Status(ErrorCode::kPermissionDenied, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status IoError(std::string msg) {
  return Status(ErrorCode::kIoError, std::move(msg));
}
inline Status TimedOutError(std::string msg) {
  return Status(ErrorCode::kTimedOut, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(ErrorCode::kInternal, std::move(msg));
}

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {}  // NOLINT
  Result(ErrorCode code) : storage_(Status(code)) {}      // NOLINT

  bool ok() const { return std::holds_alternative<T>(storage_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(storage_);
  }
  ErrorCode code() const { return ok() ? ErrorCode::kOk : status().code(); }

  T& value() & { return std::get<T>(storage_); }
  const T& value() const& { return std::get<T>(storage_); }
  T&& value() && { return std::get<T>(std::move(storage_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> storage_;
};

// Uniform accessors used by CHECK_OK in logging.h.
inline const Status& GetStatus(const Status& status) { return status; }
template <typename T>
const Status& GetStatus(const Result<T>& result) {
  return result.status();
}

// Propagation helpers. Usable in any function (or coroutine) whose return
// type can be constructed from a Status.
#define SOLROS_RETURN_IF_ERROR(expr)     \
  do {                                   \
    ::solros::Status _st = (expr);       \
    if (!_st.ok()) {                     \
      return _st;                        \
    }                                    \
  } while (0)

#define SOLROS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#define SOLROS_CONCAT_INNER(a, b) a##b
#define SOLROS_CONCAT(a, b) SOLROS_CONCAT_INNER(a, b)
#define SOLROS_ASSIGN_OR_RETURN(lhs, expr) \
  SOLROS_ASSIGN_OR_RETURN_IMPL(SOLROS_CONCAT(_res_, __LINE__), lhs, expr)

// Coroutine variants (a plain `return` is ill-formed in a coroutine body).
#define SOLROS_CO_RETURN_IF_ERROR(expr)  \
  do {                                   \
    ::solros::Status _st = (expr);       \
    if (!_st.ok()) {                     \
      co_return _st;                     \
    }                                    \
  } while (0)

#define SOLROS_CO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) {                                      \
    co_return tmp.status();                             \
  }                                                     \
  lhs = std::move(tmp).value()

#define SOLROS_CO_ASSIGN_OR_RETURN(lhs, expr) \
  SOLROS_CO_ASSIGN_OR_RETURN_IMPL(SOLROS_CONCAT(_res_, __LINE__), lhs, expr)

}  // namespace solros

#endif  // SOLROS_SRC_BASE_STATUS_H_
