#include "src/fs/baseline_fs.h"

#include <algorithm>
#include <cstring>

#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/hw/memory.h"
#include "src/sim/trace.h"

namespace solros {

// ---------------------------------------------------------------------------
// VirtioBlockStore
// ---------------------------------------------------------------------------

VirtioBlockStore::VirtioBlockStore(Simulator* sim, const HwParams& params,
                                   NvmeDevice* nvme, Processor* host_cpu,
                                   Processor* phi_cpu)
    : sim_(sim),
      params_(params),
      nvme_(nvme),
      host_cpu_(host_cpu),
      phi_cpu_(phi_cpu),
      backend_(sim, "virtio-backend") {}

uint32_t VirtioBlockStore::block_size() const { return nvme_->block_size(); }
uint64_t VirtioBlockStore::block_count() const {
  return nvme_->block_count();
}

Task<Status> VirtioBlockStore::Relay(uint64_t lba, uint32_t nblocks,
                                     std::span<uint8_t> out,
                                     std::span<const uint8_t> in,
                                     bool is_read) {
  ++requests_;
  static Counter* const relays =
      MetricRegistry::Default().GetCounter("baseline.virtio.requests");
  relays->Increment();
  TRACE_SPAN(sim_, "virtio", "virtio.relay");
  uint64_t bytes = uint64_t{nblocks} * block_size();
  // Guest (Phi) virtio driver: build the descriptor, kick the host.
  co_await phi_cpu_->Compute(Microseconds(1));
  // The single host SCIF/virtio backend thread handles the request and
  // performs the relay copy — all requests serialize here.
  co_await backend_.Use(params_.virtio_request_cpu +
                        TransferTime(bytes, params_.virtio_copy_bw));

  // The host stages the data in its own memory; one NVMe command per
  // request, never coalesced, one interrupt each.
  DeviceBuffer staging(host_cpu_->device(), bytes);
  if (!is_read) {
    std::memcpy(staging.data(), in.data(), bytes);
  }
  NvmeCommand command{is_read ? NvmeCommand::Op::kRead
                              : NvmeCommand::Op::kWrite,
                      lba, nblocks, MemRef::Of(staging)};
  SOLROS_CO_RETURN_IF_ERROR(co_await nvme_->SubmitOne(command, host_cpu_));
  if (is_read) {
    // Relay copy host -> Phi by the backend CPU (Fig. 13(a)'s dominant
    // cost), serialized like the request handling.
    co_await backend_.Use(TransferTime(bytes, params_.virtio_copy_bw));
    std::memcpy(out.data(), staging.data(), bytes);
  }
  // Completion interrupt delivered to the guest.
  co_await phi_cpu_->Compute(Microseconds(2));
  co_return OkStatus();
}

Task<Status> VirtioBlockStore::Read(uint64_t lba, uint32_t nblocks,
                                    std::span<uint8_t> out) {
  if (out.size() < uint64_t{nblocks} * block_size()) {
    co_return InvalidArgumentError("virtio read span too short");
  }
  co_return co_await Relay(lba, nblocks, out, {}, /*is_read=*/true);
}

Task<Status> VirtioBlockStore::Write(uint64_t lba, uint32_t nblocks,
                                     std::span<const uint8_t> in) {
  if (in.size() < uint64_t{nblocks} * block_size()) {
    co_return InvalidArgumentError("virtio write span too short");
  }
  co_return co_await Relay(lba, nblocks, {}, in, /*is_read=*/false);
}

Task<Status> VirtioBlockStore::Flush() { co_return OkStatus(); }

// ---------------------------------------------------------------------------
// LocalFsService
// ---------------------------------------------------------------------------

LocalFsService::LocalFsService(const HwParams& params, SolrosFs* fs,
                               Processor* cpu)
    : params_(params), fs_(fs), cpu_(cpu) {}

Task<void> LocalFsService::ChargeCall() {
  static Counter* const calls =
      MetricRegistry::Default().GetCounter("baseline.localfs.calls");
  calls->Increment();
  Simulator* sim = co_await CurrentSimulator();
  // The full file-system stack runs on this processor; on Phi cores the
  // speed factor makes this ~8x more expensive (§3: branchy OS code on
  // lean cores).
  ScopedSpan cpu(sim, "fullfs", "fs.stage.fullfs_cpu");
  co_await cpu_->Compute(params_.fs_full_call_cpu);
}

Task<Result<uint64_t>> LocalFsService::Open(const std::string& path) {
  co_await ChargeCall();
  co_return co_await fs_->Lookup(path);
}

Task<Result<uint64_t>> LocalFsService::Create(const std::string& path) {
  co_await ChargeCall();
  co_return co_await fs_->Create(path);
}

Task<Result<uint64_t>> LocalFsService::Read(uint64_t ino, uint64_t offset,
                                            MemRef target) {
  co_await ChargeCall();
  co_return co_await fs_->ReadAt(ino, offset, target.span());
}

Task<Result<uint64_t>> LocalFsService::Write(uint64_t ino, uint64_t offset,
                                             MemRef source) {
  co_await ChargeCall();
  co_return co_await fs_->WriteAt(ino, offset, source.span());
}

Task<Result<FileStat>> LocalFsService::Stat(const std::string& path) {
  co_await ChargeCall();
  co_return co_await fs_->Stat(path);
}

Task<Status> LocalFsService::Unlink(const std::string& path) {
  co_await ChargeCall();
  co_return co_await fs_->Unlink(path);
}

Task<Status> LocalFsService::Mkdir(const std::string& path) {
  co_await ChargeCall();
  co_return co_await fs_->Mkdir(path);
}

Task<Status> LocalFsService::Rmdir(const std::string& path) {
  co_await ChargeCall();
  co_return co_await fs_->Rmdir(path);
}

Task<Status> LocalFsService::Rename(const std::string& from,
                                    const std::string& to) {
  co_await ChargeCall();
  co_return co_await fs_->Rename(from, to);
}

Task<Result<std::vector<DirEntry>>> LocalFsService::Readdir(
    const std::string& path) {
  co_await ChargeCall();
  co_return co_await fs_->Readdir(path);
}

Task<Status> LocalFsService::Truncate(uint64_t ino, uint64_t size) {
  co_await ChargeCall();
  co_return co_await fs_->Truncate(ino, size);
}

Task<Status> LocalFsService::Fsync(uint64_t ino) {
  co_await ChargeCall();
  co_return co_await fs_->Sync();
}

// ---------------------------------------------------------------------------
// NfsClientFs
// ---------------------------------------------------------------------------

NfsClientFs::NfsClientFs(Simulator* sim, PcieFabric* fabric,
                         const HwParams& params, SolrosFs* host_fs,
                         Processor* host_cpu, Processor* phi_cpu,
                         DeviceId phi_device)
    : sim_(sim),
      fabric_(fabric),
      params_(params),
      host_fs_(host_fs),
      host_cpu_(host_cpu),
      phi_cpu_(phi_cpu),
      phi_device_(phi_device),
      transport_(sim, "nfs-transport") {}

Task<void> NfsClientFs::RoundTrip(uint64_t payload_to_phi,
                                  uint64_t payload_to_host) {
  // Protocol processing on both ends (XDR, RPC, NFS state).
  co_await phi_cpu_->Compute(params_.nfs_call_cpu);
  co_await host_cpu_->Compute(params_.nfs_call_cpu / 2);
  // TCP-over-PCIe: every ~1.5 KB segment is pushed through the Phi's
  // software TCP stack (the co-processor-centric bottleneck).
  constexpr uint64_t kMss = 1448;
  uint64_t total = payload_to_phi + payload_to_host;
  uint64_t segments = (total + kMss - 1) / kMss;
  // One TCP connection: the Phi's per-segment stack work is ordered.
  co_await transport_.Use(
      phi_cpu_->ScaledTime(segments * params_.tcp_segment_cpu));
  co_await host_cpu_->Compute(segments * params_.tcp_segment_cpu / 2);
  if (payload_to_phi != 0) {
    co_await fabric_->Transfer(fabric_->HostDevice(0), phi_device_,
                               payload_to_phi, /*initiator_rate=*/0.0,
                               /*peer_to_peer=*/false);
  }
  if (payload_to_host != 0) {
    co_await fabric_->Transfer(phi_device_, fabric_->HostDevice(0),
                               payload_to_host, 0.0, false);
  }
}

Task<Result<uint64_t>> NfsClientFs::Open(const std::string& path) {
  co_await RoundTrip(0, 0);
  co_return co_await host_fs_->Lookup(path);
}

Task<Result<uint64_t>> NfsClientFs::Create(const std::string& path) {
  co_await RoundTrip(0, 0);
  co_return co_await host_fs_->Create(path);
}

Task<Result<uint64_t>> NfsClientFs::Read(uint64_t ino, uint64_t offset,
                                         MemRef target) {
  uint64_t done = 0;
  while (done < target.length) {
    uint64_t chunk =
        std::min<uint64_t>(params_.nfs_transfer_unit, target.length - done);
    std::vector<uint8_t> staging(chunk);
    SOLROS_CO_ASSIGN_OR_RETURN(
        uint64_t n, co_await host_fs_->ReadAt(ino, offset + done, staging));
    co_await RoundTrip(/*payload_to_phi=*/n, /*payload_to_host=*/0);
    std::memcpy(target.span().data() + done, staging.data(), n);
    done += n;
    if (n < chunk) {
      break;  // EOF
    }
  }
  co_return done;
}

Task<Result<uint64_t>> NfsClientFs::Write(uint64_t ino, uint64_t offset,
                                          MemRef source) {
  uint64_t done = 0;
  while (done < source.length) {
    uint64_t chunk =
        std::min<uint64_t>(params_.nfs_transfer_unit, source.length - done);
    co_await RoundTrip(0, /*payload_to_host=*/chunk);
    auto span = source.span();
    SOLROS_CO_ASSIGN_OR_RETURN(
        uint64_t n,
        co_await host_fs_->WriteAt(
            ino, offset + done,
            {span.data() + done, static_cast<size_t>(chunk)}));
    done += n;
  }
  co_return done;
}

Task<Result<FileStat>> NfsClientFs::Stat(const std::string& path) {
  co_await RoundTrip(0, 0);
  co_return co_await host_fs_->Stat(path);
}

Task<Status> NfsClientFs::Unlink(const std::string& path) {
  co_await RoundTrip(0, 0);
  co_return co_await host_fs_->Unlink(path);
}

Task<Status> NfsClientFs::Mkdir(const std::string& path) {
  co_await RoundTrip(0, 0);
  co_return co_await host_fs_->Mkdir(path);
}

Task<Status> NfsClientFs::Rmdir(const std::string& path) {
  co_await RoundTrip(0, 0);
  co_return co_await host_fs_->Rmdir(path);
}

Task<Status> NfsClientFs::Rename(const std::string& from,
                                 const std::string& to) {
  co_await RoundTrip(0, 0);
  co_return co_await host_fs_->Rename(from, to);
}

Task<Result<std::vector<DirEntry>>> NfsClientFs::Readdir(
    const std::string& path) {
  co_await RoundTrip(KiB(4), 0);
  co_return co_await host_fs_->Readdir(path);
}

Task<Status> NfsClientFs::Truncate(uint64_t ino, uint64_t size) {
  co_await RoundTrip(0, 0);
  co_return co_await host_fs_->Truncate(ino, size);
}

Task<Status> NfsClientFs::Fsync(uint64_t ino) {
  co_await RoundTrip(0, 0);
  co_return co_await host_fs_->Sync();
}

}  // namespace solros
