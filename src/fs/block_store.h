// Block storage abstraction under SolrosFS.
//
// Two implementations:
//  * MemBlockStore — instant, in-memory; used by file-system unit tests so
//    FS logic is verified independently of device timing.
//  * NvmeBlockStore (nvme_block_store.h) — backed by the simulated NVMe
//    device, charging real queue/flash/fabric time and supporting the
//    zero-copy vectorized path the Solros proxy uses.
#ifndef SOLROS_SRC_FS_BLOCK_STORE_H_
#define SOLROS_SRC_FS_BLOCK_STORE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/sim/task.h"

namespace solros {

// One contiguous run of blocks paired with its (equally contiguous) memory.
// Vectored I/O takes a span of runs so physically scattered block ranges —
// the buffer cache's coalesced write-back batches, readahead windows split
// by already-cached pages — move in one submission.
struct BlockRun {
  uint64_t lba = 0;
  uint32_t nblocks = 0;
  std::span<uint8_t> data;  // nblocks * block_size() bytes
};

struct ConstBlockRun {
  uint64_t lba = 0;
  uint32_t nblocks = 0;
  std::span<const uint8_t> data;
};

class BlockStore {
 public:
  virtual ~BlockStore() = default;

  virtual uint32_t block_size() const = 0;
  virtual uint64_t block_count() const = 0;

  // Byte destinations/sources are plain host memory (the file system's
  // metadata staging); implementations stage through their own buffers.
  virtual Task<Status> Read(uint64_t lba, uint32_t nblocks,
                            std::span<uint8_t> out) = 0;
  virtual Task<Status> Write(uint64_t lba, uint32_t nblocks,
                             std::span<const uint8_t> in) = 0;
  // Durability barrier: on Ok return, every Write acked before this call is
  // on stable media and survives a power cut. Write-through stores (no
  // volatile cache) satisfy the contract vacuously and may return
  // immediately; write-back stores must issue a real device flush. Callers
  // needing FUA-like semantics issue Write then Flush — there is no
  // per-command forced-unit-access flag.
  virtual Task<Status> Flush() = 0;

  // Vectored multi-run I/O. The default implementations issue one plain
  // Read/Write per run; device-backed stores override them to submit the
  // whole vector in one batch (`coalesce` = one doorbell + one interrupt,
  // §5's I/O-vector ioctls).
  virtual Task<Status> ReadV(std::span<const BlockRun> runs, bool coalesce) {
    (void)coalesce;
    for (const BlockRun& run : runs) {
      SOLROS_CO_RETURN_IF_ERROR(co_await Read(run.lba, run.nblocks, run.data));
    }
    co_return OkStatus();
  }
  virtual Task<Status> WriteV(std::span<const ConstBlockRun> runs,
                              bool coalesce) {
    (void)coalesce;
    for (const ConstBlockRun& run : runs) {
      SOLROS_CO_RETURN_IF_ERROR(
          co_await Write(run.lba, run.nblocks, run.data));
    }
    co_return OkStatus();
  }
};

// Instant in-memory store.
class MemBlockStore : public BlockStore {
 public:
  MemBlockStore(uint32_t block_size, uint64_t block_count)
      : block_size_(block_size),
        data_(block_size * block_count, 0),
        block_count_(block_count) {}

  uint32_t block_size() const override { return block_size_; }
  uint64_t block_count() const override { return block_count_; }

  Task<Status> Read(uint64_t lba, uint32_t nblocks,
                    std::span<uint8_t> out) override {
    if (Status status = Check(lba, nblocks, out.size()); !status.ok()) {
      co_return status;
    }
    std::memcpy(out.data(), data_.data() + lba * block_size_,
                uint64_t{nblocks} * block_size_);
    co_return OkStatus();
  }

  Task<Status> Write(uint64_t lba, uint32_t nblocks,
                     std::span<const uint8_t> in) override {
    if (Status status = Check(lba, nblocks, in.size()); !status.ok()) {
      co_return status;
    }
    std::memcpy(data_.data() + lba * block_size_, in.data(),
                uint64_t{nblocks} * block_size_);
    co_return OkStatus();
  }

  // Write-through by construction: every acked Write already landed in
  // data_, so the durability barrier is a documented no-op.
  Task<Status> Flush() override { co_return OkStatus(); }

  std::span<uint8_t> raw() { return {data_.data(), data_.size()}; }

 private:
  Status Check(uint64_t lba, uint32_t nblocks, size_t span_bytes) const {
    if (lba + nblocks > block_count_) {
      return OutOfRangeError("block IO beyond device");
    }
    if (span_bytes < uint64_t{nblocks} * block_size_) {
      return InvalidArgumentError("block IO span too short");
    }
    return OkStatus();
  }

  uint32_t block_size_;
  std::vector<uint8_t> data_;
  uint64_t block_count_;
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_BLOCK_STORE_H_
