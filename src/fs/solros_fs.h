// SolrosFS — the extent-based file system run by the control-plane proxy.
//
// A genuinely working file system over a BlockStore: format/mount, a
// hierarchical namespace (create/unlink/mkdir/rmdir/rename/readdir/stat),
// byte-granular read/write with extent allocation, truncate, and the
// fiemap query that the Solros proxy uses to translate file offsets into
// disk extents for peer-to-peer NVMe transfers (§4.3.2 / §5).
//
// Concurrency model: SolrosFS runs inside the single-threaded simulator;
// public operations are coroutines and must not be interleaved with other
// mutating operations mid-flight by the caller (the proxy serializes
// metadata operations per mount, as the paper's single proxy server does).
// Metadata is cached in memory and written back at the end of each mutating
// operation (bitmaps, inodes). Crash consistency comes from an optional
// write-ahead journal (journal.h): with a journal present, structural
// metadata changes (and, in data mode, file contents) are committed as
// checksummed transactions before their home locations change, and mount
// replays committed transactions / discards torn ones. Pure mtime updates
// are deferred (ext4-style async mtime) until the next structural commit
// or Sync(), so steady-state overwrites of a preallocated file stay
// commit-free in metadata mode. Without a journal the write-back behaviour
// is bit-for-bit the historical one.
#ifndef SOLROS_SRC_FS_SOLROS_FS_H_
#define SOLROS_SRC_FS_SOLROS_FS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/fs/block_store.h"
#include "src/fs/journal.h"
#include "src/fs/layout.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace solros {

class SolrosFs {
 public:
  // `sim` provides mtime stamps; may be nullptr (mtime stays 0).
  explicit SolrosFs(BlockStore* store, Simulator* sim = nullptr);

  // Selects what Format() journals. Must be set before Format; on Mount the
  // on-disk image decides whether a journal exists (an image formatted with
  // one is always replayed and journaled regardless of this knob — only
  // kData vs kMetadata matters for new writes).
  void set_journal_mode(JournalMode mode) { journal_mode_ = mode; }
  JournalMode journal_mode() const { return journal_mode_; }

  // -- Lifecycle -------------------------------------------------------------
  // Writes a fresh file system (clobbers the store) and mounts it. With a
  // journal mode set, `journal_blocks` blocks (default kDefaultJournalBlocks
  // when 0) are reserved between the inode table and the data region.
  Task<Status> Format(uint64_t inode_count = 4096,
                      uint64_t journal_blocks = 0);
  Task<Status> Mount();
  Task<Status> Unmount();
  bool mounted() const { return mounted_; }

  // -- Namespace (absolute '/'-separated paths) -------------------------------
  Task<Result<uint64_t>> Create(const std::string& path);
  Task<Result<uint64_t>> Lookup(const std::string& path);
  Task<Status> Mkdir(const std::string& path);
  Task<Status> Unlink(const std::string& path);
  Task<Status> Rmdir(const std::string& path);
  Task<Status> Rename(const std::string& from, const std::string& to);
  Task<Result<std::vector<DirEntry>>> Readdir(const std::string& path);
  Task<Result<FileStat>> Stat(const std::string& path);
  Task<Result<FileStat>> StatInode(uint64_t ino);

  // -- Data (by inode number, as the proxy holds open handles) ---------------
  // Returns bytes transferred (reads clamp at EOF; writes extend the file).
  Task<Result<uint64_t>> ReadAt(uint64_t ino, uint64_t offset,
                                std::span<uint8_t> out);
  Task<Result<uint64_t>> WriteAt(uint64_t ino, uint64_t offset,
                                 std::span<const uint8_t> in);
  Task<Status> Truncate(uint64_t ino, uint64_t new_size);

  // Maps [offset, offset+length) to disk extents (absolute LBAs). The
  // zero-copy P2P path feeds these directly into NVMe I/O vectors.
  Task<Result<std::vector<FsExtent>>> Fiemap(uint64_t ino, uint64_t offset,
                                             uint64_t length);

  // Allocates blocks and updates size/mtime for an out-of-band write of
  // [offset, offset+length) — the proxy's P2P write path, where the NVMe
  // device itself moves the data. Returns the extents to write. Fails with
  // kFailedPrecondition when the write would leave an unzeroed gap past the
  // current EOF (the caller falls back to the buffered path).
  Task<Result<std::vector<FsExtent>>> PrepareWrite(uint64_t ino,
                                                   uint64_t offset,
                                                   uint64_t length);

  // Flushes dirty metadata and the store.
  Task<Status> Sync();

  // When enabled, ReadAt/WriteAt gather the full-block runs of a call into
  // one vectored store submission (one command per contiguous run, one
  // batch) instead of issuing a command per run as they hit it. Partial
  // blocks still read-modify-write inline. Off by default so the legacy
  // per-run command stream is preserved for ablation.
  void set_vectored_io(bool enabled) { vectored_io_ = enabled; }
  bool vectored_io() const { return vectored_io_; }

  // Called with the inode number after every extent-map mutation
  // (StoreExtents, FreeInode). The sharded control plane hangs its
  // cross-shard invalidation protocol off this: the shared extent map
  // bumps the inode's version so every shard's memoized Fiemap results go
  // stale. Unset (the default) costs nothing.
  void set_extent_observer(std::function<void(uint64_t)> observer) {
    extent_observer_ = std::move(observer);
  }

  // -- Introspection ----------------------------------------------------------
  uint64_t free_blocks() const { return super_.free_blocks; }
  uint64_t free_inodes() const { return super_.free_inodes; }
  uint64_t total_blocks() const { return super_.total_blocks; }
  uint32_t block_size() const { return kFsBlockSize; }
  // Non-null while a journaled image is mounted.
  Journal* journal() { return journal_.get(); }
  // What the most recent Mount() replay found.
  const JournalReplayStats& last_replay() const { return replay_stats_; }

 private:
  // Inode cache entry.
  struct CachedInode {
    DiskInode inode;
    bool dirty = false;
  };

  // --- inode & bitmap plumbing ---
  Task<Result<DiskInode*>> GetInode(uint64_t ino);
  void MarkInodeDirty(uint64_t ino);
  // Unjournaled: writes dirty metadata straight to its home locations.
  // Journaled: builds one transaction from the staged data/dir blocks plus
  // every dirty metadata block and commits it — unless nothing structural
  // changed (`force` false, pure-mtime dirt only), which defers to the next
  // structural commit or Sync.
  Task<Status> FlushMetadata(bool force = false);
  Result<uint64_t> AllocInode();
  void FreeInode(uint64_t ino);
  // Allocates up to `want` contiguous blocks (at least 1); returns the run.
  Result<FsExtent> AllocExtent(uint32_t want);
  void FreeBlocks(const FsExtent& extent);

  // --- extent management ---
  Task<Result<std::vector<FsExtent>>> LoadExtents(const DiskInode& inode);
  Task<Status> StoreExtents(uint64_t ino, const std::vector<FsExtent>& ext);
  // Grows the file's allocation to cover `blocks` blocks in total.
  Task<Status> EnsureAllocated(uint64_t ino, uint64_t blocks);

  // --- directories ---
  Task<Result<uint64_t>> DirLookup(uint64_t dir_ino, std::string_view name);
  Task<Status> DirAdd(uint64_t dir_ino, std::string_view name, uint64_t ino,
                      uint8_t type);
  Task<Status> DirRemove(uint64_t dir_ino, std::string_view name);
  Task<Result<bool>> DirIsEmpty(uint64_t dir_ino);

  // --- path walking ---
  struct ResolvedParent {
    uint64_t parent_ino = 0;
    std::string leaf;
  };
  static Status SplitPath(const std::string& path,
                          std::vector<std::string>* components);
  Task<Result<uint64_t>> ResolvePath(const std::string& path);
  Task<Result<ResolvedParent>> ResolveParent(const std::string& path);

  Status CheckMounted() const;
  uint64_t NowNs() const;

  // --- journal staging ---
  // True when writes of `inode`'s contents must go through the journal:
  // directory contents always (they are metadata), file contents in data
  // mode.
  bool JournalsContent(const DiskInode& inode) const {
    return journal_ != nullptr &&
           (inode.IsDir() || journal_mode_ == JournalMode::kData);
  }
  // Queues a whole-block after-image for the next transaction (overwrites
  // any image already staged for that LBA).
  void StageWrite(uint64_t lba, std::span<const uint8_t> block);
  // Reads a metadata block, preferring a staged image over the (stale)
  // home location — needed when one operation re-reads a block it staged
  // earlier (e.g. the indirect extent block right after StoreExtents).
  Task<Status> ReadMetaBlock(uint64_t lba, std::span<uint8_t> out);

  // bitmap helpers over cached bitmap bytes
  static bool BitGet(const std::vector<uint8_t>& bits, uint64_t index);
  static void BitSet(std::vector<uint8_t>& bits, uint64_t index, bool value);

  BlockStore* store_;
  bool vectored_io_ = false;
  std::function<void(uint64_t)> extent_observer_;
  Simulator* sim_;
  bool mounted_ = false;
  SuperBlock super_ = {};
  std::vector<uint8_t> block_bitmap_;
  std::vector<uint8_t> inode_bitmap_;
  bool block_bitmap_dirty_ = false;
  bool inode_bitmap_dirty_ = false;
  bool super_dirty_ = false;
  uint64_t alloc_cursor_ = 0;  // rotating first-fit start
  std::map<uint64_t, CachedInode> inode_cache_;

  JournalMode journal_mode_ = JournalMode::kOff;
  std::unique_ptr<Journal> journal_;
  JournalReplayStats replay_stats_;
  // Whole-block after-images awaiting the next commit (journaled mounts
  // only); drained by FlushMetadata at the end of every mutating op.
  std::map<uint64_t, std::vector<uint8_t>> staged_writes_;
  // Set by every structural change (allocation, free, extent or size
  // update); distinguishes commits that matter from pure-mtime deferrals.
  bool meta_txn_required_ = false;
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_SOLROS_FS_H_
