// Data-plane file-system stub (§4.3.1).
//
// "A lightweight file system stub transforms a file system call from an
// application to a corresponding RPC, as there exists a one-to-one mapping
// between an RPC and a file system call." The stub charges only its thin
// per-call CPU cost on the (slow) co-processor cores; all real file-system
// work happens in the host proxy. Data never rides the RPC ring: requests
// carry the MemRef of co-processor memory and the proxy arranges the
// zero-copy transfer.
#ifndef SOLROS_SRC_FS_FS_STUB_H_
#define SOLROS_SRC_FS_FS_STUB_H_

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/base/sharding.h"
#include "src/fs/file_service.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/rpc/messages.h"
#include "src/rpc/rpc.h"
#include "src/transport/sim_ring.h"

namespace solros {

class FsStub : public FileService {
 public:
  FsStub(Simulator* sim, const HwParams& params, Processor* phi_cpu,
         SimRing* request_ring, SimRing* response_ring, uint32_t client_id);

  // Sharded control plane: one ring pair per proxy shard, in shard order.
  // Each call is routed with the same partition functions the shards use —
  // reads/writes by (inode, block-group stripe), path ops by path hash,
  // inode ops by inode range — so a request lands on the shard that owns
  // its cache segment and stream state.
  FsStub(Simulator* sim, const HwParams& params, Processor* phi_cpu,
         std::vector<std::pair<SimRing*, SimRing*>> shard_rings,
         uint32_t client_id);

  // Opens files in buffered (O_BUFFER) mode when set (§4.3.2 ablation;
  // applies to subsequent Open/Create calls and all I/O on this stub).
  void set_buffered(bool buffered) { buffered_ = buffered; }

  // Per-open O_BUFFER (§4.3.2: "files are explicitly opened with our
  // extended flag O_BUFFER"): I/O on the returned inode always takes the
  // buffered path, independent of set_buffered().
  Task<Result<uint64_t>> OpenBuffered(const std::string& path);

  // Retry/timeout policy applied while fault injection is armed. Data ops
  // (read/write/stat/open/readdir/truncate/fsync) are idempotent and retry
  // on timeout or I/O error; namespace ops (create/unlink/mkdir/rmdir/
  // rename) retry only on a transport timeout, which gives them
  // at-least-once semantics under response loss (a retried create may see
  // kAlreadyExists).
  void set_retry_options(const RpcRetryOptions& options) {
    retry_ = options;
  }
  const RpcRetryOptions& retry_options() const { return retry_; }

  Task<Result<uint64_t>> Open(const std::string& path) override;
  Task<Result<uint64_t>> Create(const std::string& path) override;
  Task<Result<uint64_t>> Read(uint64_t ino, uint64_t offset,
                              MemRef target) override;
  Task<Result<uint64_t>> Write(uint64_t ino, uint64_t offset,
                               MemRef source) override;
  Task<Result<FileStat>> Stat(const std::string& path) override;
  Task<Status> Unlink(const std::string& path) override;
  Task<Status> Mkdir(const std::string& path) override;
  Task<Status> Rmdir(const std::string& path) override;
  Task<Status> Rename(const std::string& from, const std::string& to) override;
  Task<Result<std::vector<DirEntry>>> Readdir(const std::string& path) override;
  Task<Status> Truncate(uint64_t ino, uint64_t size) override;
  Task<Status> Fsync(uint64_t ino) override;

  uint64_t calls_issued() const { return calls_; }

 private:
  Task<Result<FsResponse>> Call(FsRequest request);
  // Which proxy shard (client index) serves this request.
  int RouteShard(const FsRequest& request) const;

  Simulator* sim_;
  HwParams params_;
  Processor* phi_cpu_;
  // One RPC client per proxy shard; exactly one for an unsharded proxy.
  std::vector<std::unique_ptr<RpcClient<FsRequest, FsResponse>>> clients_;
  RpcRetryOptions retry_;
  uint32_t client_id_;
  bool buffered_ = false;
  std::set<uint64_t> buffered_inos_;  // opened with O_BUFFER
  uint64_t calls_ = 0;
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_FS_STUB_H_
