// Host-side shared buffer cache (§4.3.2).
//
// The control-plane proxy keeps a cache of file-system blocks in host DRAM,
// shared by all data-plane OSes ("Solros is a shared-something
// architecture"). Pages live in a host DeviceBuffer arena so a hit can be
// served to a co-processor with a host-initiated DMA directly out of the
// cache — no disk access and no staging copy.
//
// Eviction is a segmented LRU (2Q-style): new pages enter a *probation*
// segment and are promoted to the *protected* segment on their second
// touch. A streaming scan from one co-processor therefore churns only
// probation and cannot flush another co-processor's hot (protected) working
// set. With `scan_resistant=false` the cache degenerates to the single-list
// LRU of the original implementation.
//
// Write policy is write-back: dirty pages are flushed on eviction and on
// Flush(). With `coalesced_writeback`, evictions gather the LBA-contiguous
// dirty cluster around the victim and Flush() sorts all dirty pages by LBA,
// so both go to the device as vectored multi-block writes (one command per
// contiguous run, one doorbell for the batch) instead of one 4 KiB command
// per page. Write-back snapshots content and clears dirty bits up front;
// every submission is tracked as an in-flight LBA range until the device
// confirms it, so (a) Flush/FlushRange wait out overlapping in-flight
// writes instead of treating snapshot-cleaned pages as durable, (b) no
// second write is ever submitted for an LBA that overlaps an in-flight one
// (NVMe gives no ordering across submissions), and (c) a page re-dirtied
// while its snapshot is in flight keeps its dirty bit and is written again
// later rather than evicted with the new bytes dropped.
//
// Counters live in the process MetricRegistry (cache.hits, cache.misses,
// cache.evictions, cache.readahead_hits, cache.readahead_blocks,
// cache.writeback_coalesced_blocks, cache.writeback_runs) with segment and
// dirty sizes as gauges. The per-instance accessors read instance-local
// mirrors incremented alongside the globals, so multiple caches in one
// process each report their own traffic (the gauges, being process-global,
// reflect whichever instance updated last).
#ifndef SOLROS_SRC_FS_BUFFER_CACHE_H_
#define SOLROS_SRC_FS_BUFFER_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/metrics.h"
#include "src/base/status.h"
#include "src/fs/block_store.h"
#include "src/hw/memory.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace solros {

class IoScheduler;

struct BufferCacheOptions {
  // Segmented-LRU scan resistance. Off => single-list LRU (seed behavior).
  bool scan_resistant = true;
  // Fraction of capacity reserved for the protected segment.
  double protected_fraction = 0.75;
  // Gather LBA-contiguous dirty runs into vectored writes on eviction and
  // Flush(). Off => one write command per dirty page (seed behavior).
  bool coalesced_writeback = true;
  // Max pages one eviction-triggered write-back cluster may carry.
  uint32_t writeback_max_batch = 256;
  // Batch vectored write-back under a single doorbell/interrupt.
  bool coalesce_nvme = true;
};

class BufferCache {
 public:
  // `arena_device` is where pages live (the host socket device).
  BufferCache(BlockStore* backing, DeviceId arena_device,
              size_t capacity_blocks,
              const BufferCacheOptions& options = BufferCacheOptions());

  // Routes backing-store traffic through `sched` (demand class for miss
  // fills, write-back class for flushes) instead of hitting the store
  // directly. Null (the default) preserves the direct legacy path.
  void set_io_scheduler(IoScheduler* sched) { sched_ = sched; }

  // Attaches USE telemetry (default series "fs.cache"; a sharded proxy
  // passes "fs.cache[k]"): depth = dirty pages awaiting write-back, ops =
  // lookups, wait unused. No-op when the simulator has no telemetry hub.
  // The cache is built without a Simulator, so the owner (FsProxy, tests)
  // wires this explicitly.
  void set_telemetry(Simulator* sim, const std::string& series = "fs.cache");

  // Returns a reference to the cached page for `lba`, faulting it in from
  // the backing store on a miss (possibly evicting). The MemRef stays valid
  // until the page is evicted — use it immediately (single-threaded sim).
  Task<Result<MemRef>> GetBlock(uint64_t lba);

  // Marks a cached page dirty after the caller mutated it through GetBlock.
  void MarkDirty(uint64_t lba);

  // Installs a clean page from caller-provided content without touching the
  // backing store (the caller just read it, e.g. into a bounce buffer).
  // No-op if the block is already cached. Pages installed with
  // `readahead=true` count one cache.readahead_hits on their first
  // GetBlock touch (speculation that paid off).
  Task<Status> InsertClean(uint64_t lba, std::span<const uint8_t> content,
                           bool readahead = false);

  // Installs a full-block overwrite as a dirty page without faulting the
  // old content in from disk (write-back absorption). If the block is
  // already cached its content is replaced in place.
  Task<Status> InsertDirty(uint64_t lba, std::span<const uint8_t> content);

  // Convenience byte-span access through the cache.
  Task<Status> ReadThrough(uint64_t lba, uint32_t nblocks,
                           std::span<uint8_t> out);
  Task<Status> WriteThrough(uint64_t lba, uint32_t nblocks,
                            std::span<const uint8_t> in);

  // Drops a page without writeback (used when P2P bypasses the cache and
  // the cached copy would go stale).
  void Invalidate(uint64_t lba);
  void InvalidateRange(uint64_t lba, uint64_t nblocks);
  bool Contains(uint64_t lba) const;

  Task<Status> Flush();
  // Writes back (but keeps cached, now clean) every dirty page inside
  // [lba, lba+nblocks). Fast no-op when the cache holds no dirty pages —
  // the proxy calls this before P2P reads for write-back coherence.
  Task<Status> FlushRange(uint64_t lba, uint64_t nblocks);

  uint64_t hits() const { return local_hits_; }
  uint64_t misses() const { return local_misses_; }
  uint64_t evictions() const { return local_evictions_; }
  uint64_t readahead_hits() const { return local_readahead_hits_; }
  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  size_t dirty_pages() const { return dirty_count_; }
  // True while a write-back submission is outstanding at the device. Pages
  // covered by it are already clean, so "dirty_pages() == 0" alone must
  // not be read as "everything durable".
  bool writeback_in_flight() const { return !inflight_.empty(); }
  size_t protected_pages() const { return protected_.size(); }
  size_t probation_pages() const { return probation_.size(); }
  const BufferCacheOptions& options() const { return options_; }

 private:
  enum class Segment : uint8_t { kProbation, kProtected };

  struct Page {
    uint64_t lba;
    size_t slot;
    bool dirty = false;
    bool readahead = false;  // speculative fill, not yet touched
    Segment segment = Segment::kProbation;
    std::list<uint64_t>::iterator lru_it;
  };

  // One dirty page staged for write-back: content is snapshotted so the
  // arena slot may be concurrently evicted/reused while the write is in
  // flight.
  struct WritebackPlan {
    std::vector<uint64_t> lbas;           // sorted, one per page
    std::vector<uint8_t> scratch;         // snapshot, lbas.size() blocks
    std::vector<ConstBlockRun> runs;      // contiguous groups over scratch
  };

  // One write-back submission not yet confirmed by the device. Pages in
  // [lo, hi] had their dirty bits cleared at snapshot time, so "no dirty
  // pages" alone does not mean the range is durable — flushes must wait
  // these out, and no new write may be submitted for an overlapping LBA
  // (the device gives no ordering across submissions).
  struct InflightWriteback {
    uint64_t lo;
    uint64_t hi;  // inclusive
  };

  Task<Status> EvictOne();
  // Backing-store I/O, routed through the I/O scheduler when one is set.
  Task<Status> BackingRead(uint64_t lba, uint32_t nblocks,
                           std::span<uint8_t> out);
  Task<Status> BackingWrite(uint64_t lba, uint32_t nblocks,
                            std::span<const uint8_t> in);
  Task<Status> BackingWriteV(std::span<const ConstBlockRun> runs,
                             bool coalesce);
  // Writes `plan` to the backing store as one vectored submission tracked
  // as an in-flight range, re-marking still-cached pages dirty if the
  // write fails.
  Task<Status> WritebackRuns(WritebackPlan plan);
  bool OverlapsInflight(uint64_t lba, uint64_t nblocks) const;
  // Suspends until no in-flight write-back overlaps [lba, lba+nblocks)
  // (respectively: until none is in flight at all).
  Task<void> AwaitInflight(uint64_t lba, uint64_t nblocks);
  Task<void> AwaitAllInflight();
  Task<void> WaitInflightChange();
  void NotifyInflight();
  // Snapshots the (sorted) dirty pages in `lbas` into a plan and clears
  // their dirty bits. Caller guarantees lbas are cached and dirty.
  WritebackPlan PlanWriteback(std::vector<uint64_t> lbas);
  Task<Status> InsertLocked(uint64_t lba, std::span<const uint8_t> content,
                            bool dirty, bool readahead);
  void TouchHit(Page& page, bool promote = true);
  void LinkNew(Page& page);
  void Unlink(const Page& page);
  std::list<uint64_t>& SegmentList(Segment segment) {
    return segment == Segment::kProtected ? protected_ : probation_;
  }
  void SetDirty(Page& page, bool dirty);
  void UpdateGauges();
  MemRef SlotRef(size_t slot);

  BlockStore* backing_;
  IoScheduler* sched_ = nullptr;
  size_t capacity_;
  uint32_t block_size_;
  BufferCacheOptions options_;
  size_t protected_cap_;
  DeviceBuffer arena_;
  std::vector<size_t> free_slots_;
  std::unordered_map<uint64_t, Page> map_;
  // front = most recent in both segments. With scan_resistant=false only
  // probation_ is used and it behaves as the seed's single LRU list.
  std::list<uint64_t> probation_;
  std::list<uint64_t> protected_;
  size_t dirty_count_ = 0;
  std::list<InflightWriteback> inflight_;
  // Lazily built on first wait: the cache is constructed without a
  // Simulator, which Condition needs; waiters obtain it from their task.
  std::unique_ptr<Condition> inflight_cond_;

  Counter* hits_;
  Counter* misses_;
  Counter* evictions_;
  Counter* readahead_hits_;
  Counter* readahead_blocks_;
  Counter* writeback_coalesced_blocks_;
  Counter* writeback_runs_;
  Gauge* probation_gauge_;
  Gauge* protected_gauge_;
  Gauge* dirty_gauge_;
  Simulator* telemetry_sim_ = nullptr;  // time source for use_ stamps
  UseSeries* use_ = nullptr;
  // Instance-local mirrors of the global counters, so the accessors never
  // see another live cache's traffic.
  uint64_t local_hits_ = 0;
  uint64_t local_misses_ = 0;
  uint64_t local_evictions_ = 0;
  uint64_t local_readahead_hits_ = 0;
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_BUFFER_CACHE_H_
