// Host-side shared buffer cache (§4.3.2).
//
// The control-plane proxy keeps an LRU cache of file-system blocks in host
// DRAM, shared by all data-plane OSes ("Solros is a shared-something
// architecture"). Pages live in a host DeviceBuffer arena so a hit can be
// served to a co-processor with a host-initiated DMA directly out of the
// cache — no disk access and no staging copy.
//
// Write policy is write-back: dirty pages are flushed on eviction and on
// Flush().
#ifndef SOLROS_SRC_FS_BUFFER_CACHE_H_
#define SOLROS_SRC_FS_BUFFER_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/fs/block_store.h"
#include "src/hw/memory.h"
#include "src/sim/task.h"

namespace solros {

class BufferCache {
 public:
  // `arena_device` is where pages live (the host socket device).
  BufferCache(BlockStore* backing, DeviceId arena_device,
              size_t capacity_blocks);

  // Returns a reference to the cached page for `lba`, faulting it in from
  // the backing store on a miss (possibly evicting). The MemRef stays valid
  // until the page is evicted — use it immediately (single-threaded sim).
  Task<Result<MemRef>> GetBlock(uint64_t lba);

  // Marks a cached page dirty after the caller mutated it through GetBlock.
  void MarkDirty(uint64_t lba);

  // Installs a clean page from caller-provided content without touching the
  // backing store (the caller just read it, e.g. into a bounce buffer).
  // No-op if the block is already cached.
  Task<Status> InsertClean(uint64_t lba, std::span<const uint8_t> content);

  // Convenience byte-span access through the cache.
  Task<Status> ReadThrough(uint64_t lba, uint32_t nblocks,
                           std::span<uint8_t> out);
  Task<Status> WriteThrough(uint64_t lba, uint32_t nblocks,
                            std::span<const uint8_t> in);

  // Drops a page without writeback (used when P2P bypasses the cache and
  // the cached copy would go stale).
  void Invalidate(uint64_t lba);
  void InvalidateRange(uint64_t lba, uint64_t nblocks);
  bool Contains(uint64_t lba) const;

  Task<Status> Flush();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  struct Page {
    uint64_t lba;
    size_t slot;
    bool dirty = false;
    std::list<uint64_t>::iterator lru_it;
  };

  Task<Status> EvictOne();
  MemRef SlotRef(size_t slot);

  BlockStore* backing_;
  size_t capacity_;
  uint32_t block_size_;
  DeviceBuffer arena_;
  std::vector<size_t> free_slots_;
  std::unordered_map<uint64_t, Page> map_;
  std::list<uint64_t> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_BUFFER_CACHE_H_
