#include "src/fs/io_scheduler.h"

#include <algorithm>
#include <cstring>

#include "src/base/fault.h"
#include "src/base/logging.h"

namespace solros {

namespace {
// Host-side submission-path stall injected by the iosched.stall fault
// point (IRQ storm, CPU contention between unplug and doorbell).
constexpr Nanos kStallDelay = Microseconds(100);
}  // namespace

IoScheduler::IoScheduler(Simulator* sim, NvmeBlockStore* store,
                         const IoSchedulerOptions& options)
    : sim_(sim),
      store_(store),
      options_(options),
      block_size_(store->block_size()),
      work_cond_(sim),
      plug_cond_(sim),
      done_cond_(sim) {
  CHECK(sim != nullptr);
  CHECK(store != nullptr);
  MetricRegistry& registry = MetricRegistry::Default();
  batches_ = registry.GetCounter("iosched.batches");
  merges_ = registry.GetCounter("iosched.merges");
  plugs_ = registry.GetCounter("iosched.plugs");
  dedup_hits_ = registry.GetCounter("iosched.dedup_hits");
  stalls_ = registry.GetCounter("iosched.stalls");
  dispatched_[static_cast<int>(IoClass::kOrdered)] =
      registry.GetCounter("iosched.dispatched.ordered");
  dispatched_[static_cast<int>(IoClass::kDemand)] =
      registry.GetCounter("iosched.dispatched.demand");
  dispatched_[static_cast<int>(IoClass::kWriteback)] =
      registry.GetCounter("iosched.dispatched.writeback");
  dispatched_[static_cast<int>(IoClass::kReadahead)] =
      registry.GetCounter("iosched.dispatched.readahead");
  queue_ns_ = registry.GetHistogram("iosched.queue_ns");
  if (sim->telemetry() != nullptr) {
    const std::string& sfx = options_.telemetry_suffix;
    use_[static_cast<int>(IoClass::kOrdered)] =
        sim->telemetry()->GetSeries("iosched.ordered" + sfx);
    use_[static_cast<int>(IoClass::kDemand)] =
        sim->telemetry()->GetSeries("iosched.demand" + sfx);
    use_[static_cast<int>(IoClass::kWriteback)] =
        sim->telemetry()->GetSeries("iosched.writeback" + sfx);
    use_[static_cast<int>(IoClass::kReadahead)] =
        sim->telemetry()->GetSeries("iosched.readahead" + sfx);
  }
}

Task<Status> IoScheduler::Read(uint64_t lba, uint32_t nblocks,
                               std::span<uint8_t> out, IoClass cls,
                               uint32_t client, TraceContext ctx) {
  if (nblocks == 0) {
    co_return OkStatus();
  }
  const uint64_t bytes = uint64_t{nblocks} * block_size_;
  if (out.size() < bytes) {
    co_return InvalidArgumentError("iosched read span too short");
  }
  IoRequest req;
  req.cls = cls;
  req.client = client;
  req.ctx = ctx;
  req.blocks = nblocks;
  req.lba = lba;
  req.nblocks = nblocks;
  req.out = out.first(bytes);
  co_return co_await Submit(&req);
}

Task<Status> IoScheduler::Write(uint64_t lba, uint32_t nblocks,
                                std::span<const uint8_t> in, IoClass cls,
                                uint32_t client, TraceContext ctx) {
  if (nblocks == 0) {
    co_return OkStatus();
  }
  const uint64_t bytes = uint64_t{nblocks} * block_size_;
  if (in.size() < bytes) {
    co_return InvalidArgumentError("iosched write span too short");
  }
  IoRequest req;
  req.is_write = true;
  req.cls = cls;
  req.client = client;
  req.ctx = ctx;
  req.blocks = nblocks;
  req.wruns.push_back(ConstBlockRun{lba, nblocks, in.first(bytes)});
  co_return co_await Submit(&req);
}

Task<Status> IoScheduler::WriteV(std::span<const ConstBlockRun> runs,
                                 IoClass cls, uint32_t client,
                                 TraceContext ctx) {
  if (runs.empty()) {
    co_return OkStatus();
  }
  IoRequest req;
  req.is_write = true;
  req.cls = cls;
  req.client = client;
  req.ctx = ctx;
  req.wruns.reserve(runs.size());
  for (const ConstBlockRun& run : runs) {
    const uint64_t bytes = uint64_t{run.nblocks} * block_size_;
    if (run.data.size() < bytes) {
      co_return InvalidArgumentError("iosched writev span too short");
    }
    req.blocks += run.nblocks;
    req.wruns.push_back(ConstBlockRun{run.lba, run.nblocks,
                                      run.data.first(bytes)});
  }
  co_return co_await Submit(&req);
}

Task<Status> IoScheduler::Flush(uint32_t client, TraceContext ctx) {
  IoRequest req;
  req.is_flush = true;
  req.cls = IoClass::kOrdered;
  req.client = client;
  req.ctx = ctx;
  req.blocks = 1;  // DRR accounting: a barrier charges one block
  co_return co_await Submit(&req);
}

IoScheduler::InflightReads* IoScheduler::FindInflightCover(uint64_t lba,
                                                           uint32_t nblocks) {
  for (InflightReads* batch : inflight_reads_) {
    for (const MergedRun& m : batch->runs) {
      if (lba >= m.lba && lba + nblocks <= m.lba + m.nblocks) {
        return batch;
      }
    }
  }
  return nullptr;
}

void IoScheduler::RecordQueueSpan(const IoRequest& req, SimTime end) {
  Tracer* tracer = sim_->tracer();
  if (tracer == nullptr || !req.ctx.traced()) {
    return;
  }
  tracer->RecordSpan("iosched", "iosched.queue", req.enqueued, end, req.ctx);
}

void IoScheduler::FinishRequest(IoRequest* req, const Status& status) {
  req->status = status;
  req->done = true;
}

Task<Status> IoScheduler::Submit(IoRequest* req) {
  req->enqueued = sim_->now();
  req->seq = ++arrivals_;
  if (!req->is_write && options_.single_flight) {
    if (InflightReads* cover = FindInflightCover(req->lba, req->nblocks);
        cover != nullptr) {
      // Single-flight attach: the bytes are already on their way; wait for
      // that submission (its Status included — a shared fetch that fails
      // fails every waiter) instead of re-reading flash.
      dedup_hits_->Increment();
      ++local_dedup_hits_;
      cover->waiters.push_back(req);
      while (!req->done) {
        co_await done_cond_.Wait();
      }
      co_return req->status;
    }
  }
  const int class_idx = options_.priority ? static_cast<int>(req->cls) : 0;
  const uint32_t key = options_.fairness ? req->client : 0;
  ClassQueue& cq = classes_[class_idx];
  auto [it, inserted] = cq.clients.try_emplace(key);
  if (inserted) {
    cq.rr.push_back(key);
  }
  it->second.fifo.push_back(req);
  ++pending_;
  if (UseSeries* use = use_[static_cast<int>(req->cls)]; use != nullptr) {
    use->QueueDelta(req->enqueued, +1);
  }
  EnsureDispatcher();
  work_cond_.NotifyAll();
  if (plugged_ && pending_ >= options_.plug_max_batch) {
    plug_cond_.NotifyAll();
  }
  while (!req->done) {
    co_await done_cond_.Wait();
  }
  co_return req->status;
}

void IoScheduler::EnsureDispatcher() {
  if (dispatcher_started_) {
    return;
  }
  dispatcher_started_ = true;
  Spawn(*sim_, DispatchLoop());
}

Task<void> IoScheduler::DispatchLoop() {
  // The arrival that started the dispatcher found the scheduler idle.
  bool idle_arrival = true;
  for (;;) {
    while (pending_ == 0) {
      co_await work_cond_.Wait();
      idle_arrival = true;
    }
    if (options_.plug && idle_arrival && options_.plug_window > 0) {
      co_await PlugWait();
    }
    // Back-pressure: past max_inflight_batches the backlog stays queued
    // here, where SelectBatch can still reorder it, instead of draining
    // into the device's FIFO queue slots. A pending barrier fences the
    // pipeline completely: nothing dispatches past an ordered flush.
    while (barrier_pending_ > 0 ||
           inflight_batches_ >=
               std::max<uint32_t>(options_.max_inflight_batches, 1)) {
      co_await done_cond_.Wait();
    }
    co_await DispatchRound();
    // A backlog deeper than one round drains in back-to-back rounds with
    // no plug window between them; only a fresh idle-arrival plugs.
    idle_arrival = false;
  }
}

Task<void> IoScheduler::PlugWait() {
  plugs_->Increment();
  ++local_plugs_;
  plugged_ = true;
  const uint64_t epoch = ++plug_epoch_;
  Spawn(*sim_, PlugTimer(epoch));
  while (plugged_ && pending_ < options_.plug_max_batch) {
    co_await plug_cond_.Wait();
  }
  plugged_ = false;
}

Task<void> IoScheduler::PlugTimer(uint64_t epoch) {
  co_await Delay(options_.plug_window);
  if (plugged_ && plug_epoch_ == epoch) {
    plugged_ = false;
    plug_cond_.NotifyAll();
  }
}

Task<void> IoScheduler::DispatchRound() {
  std::vector<IoRequest*> batch = SelectBatch();
  if (batch.empty()) {
    co_return;
  }
  const SimTime now = sim_->now();
  for (IoRequest* r : batch) {
    if (r->is_flush) {
      // Barriers record their span and telemetry at completion (inside
      // SubmitFlushes) so the drain + device-flush time is attributed to
      // them rather than vanishing between stages.
      continue;
    }
    RecordQueueSpan(*r, now);
    queue_ns_->Record(now - r->enqueued);
    dispatched_[static_cast<int>(r->cls)]->Increment();
    ++local_dispatched_[static_cast<int>(r->cls)];
    if (UseSeries* use = use_[static_cast<int>(r->cls)]; use != nullptr) {
      use->QueueDelta(now, -1);
      use->CompleteOp(now, now - r->enqueued);
    }
  }
  batches_->Increment();
  ++local_batches_;
  static FaultPoint* const stall = Faults().GetPoint("iosched.stall");
  if (stall->ShouldFire()) {
    stalls_->Increment();
    ++local_stalls_;
    TRACE_INSTANT(sim_, "iosched", "iosched.stall");
    if (UseSeries* use = use_[static_cast<int>(batch.front()->cls)];
        use != nullptr) {
      use->AddError(sim_->now());
    }
    co_await Delay(kStallDelay);
  }
  std::vector<IoRequest*> reads;
  std::vector<IoRequest*> writes;
  std::vector<IoRequest*> flushes;
  for (IoRequest* r : batch) {
    (r->is_flush ? flushes : r->is_write ? writes : reads).push_back(r);
  }
  // Fire-and-forget: the round's submissions complete on their own frames
  // so the dispatcher can keep the device's queue slots fed with further
  // rounds instead of pinning queue depth at one submission.
  if (!reads.empty()) {
    ++inflight_batches_;
    Spawn(*sim_, SubmitReads(std::move(reads)));
  }
  if (!writes.empty()) {
    ++inflight_batches_;
    Spawn(*sim_, SubmitWrites(std::move(writes)));
  }
  if (!flushes.empty()) {
    ++inflight_batches_;
    ++barrier_pending_;  // fences DispatchLoop until the flush completes
    Spawn(*sim_, SubmitFlushes(std::move(flushes)));
  }
}

Task<void> IoScheduler::SubmitReads(std::vector<IoRequest*> reads) {
  std::sort(reads.begin(), reads.end(),
            [](const IoRequest* a, const IoRequest* b) {
              return a->lba != b->lba ? a->lba < b->lba : a->seq < b->seq;
            });
  InflightReads batch;
  struct Placement {
    size_t run;
    uint64_t block_off;
  };
  std::vector<Placement> place;
  place.reserve(reads.size());
  uint64_t scratch_blocks = 0;
  for (const IoRequest* r : reads) {
    const uint64_t lo = r->lba;
    const uint64_t hi = lo + r->nblocks;
    if (!batch.runs.empty()) {
      MergedRun& m = batch.runs.back();
      const uint64_t mend = m.lba + m.nblocks;
      // Adjacent runs always merge into one command (plug batching);
      // union of *overlapping* ranges is the single-flight mechanism —
      // with it off, duplicated ranges are fetched independently,
      // seed-style.
      if (lo == mend || (lo < mend && options_.single_flight)) {
        if (hi <= mend) {
          dedup_hits_->Increment();
          ++local_dedup_hits_;
        } else {
          m.nblocks += static_cast<uint32_t>(hi - mend);
          scratch_blocks += hi - mend;
          merges_->Increment();
          ++local_merges_;
        }
        place.push_back({batch.runs.size() - 1, lo - m.lba});
        continue;
      }
    }
    place.push_back({batch.runs.size(), 0});
    batch.runs.push_back(MergedRun{lo, r->nblocks, scratch_blocks});
    scratch_blocks += r->nblocks;
  }
  batch.scratch.resize(scratch_blocks * block_size_);
  std::vector<BlockRun> runs;
  runs.reserve(batch.runs.size());
  for (const MergedRun& m : batch.runs) {
    runs.push_back(BlockRun{
        m.lba, m.nblocks,
        std::span<uint8_t>(
            batch.scratch.data() + m.scratch_block * block_size_,
            uint64_t{m.nblocks} * block_size_)});
  }
  TraceContext batch_ctx;
  for (const IoRequest* r : reads) {
    if (r->ctx.traced()) {
      batch_ctx = r->ctx;
      break;
    }
  }
  // Expose the merged coverage while the device works so late-arriving
  // covered reads can attach. Retries happen below, in ReadRuns.
  inflight_reads_.push_back(&batch);
  Status status =
      co_await store_->ReadRuns(runs, options_.coalesce_nvme, batch_ctx);
  inflight_reads_.erase(
      std::find(inflight_reads_.begin(), inflight_reads_.end(), &batch));
  for (size_t i = 0; i < reads.size(); ++i) {
    IoRequest* r = reads[i];
    if (status.ok()) {
      const MergedRun& m = batch.runs[place[i].run];
      std::memcpy(r->out.data(),
                  batch.scratch.data() +
                      (m.scratch_block + place[i].block_off) * block_size_,
                  uint64_t{r->nblocks} * block_size_);
    }
    FinishRequest(r, status);
  }
  const SimTime now = sim_->now();
  for (IoRequest* w : batch.waiters) {
    if (status.ok()) {
      const MergedRun* m = nullptr;
      for (const MergedRun& run : batch.runs) {
        if (w->lba >= run.lba &&
            w->lba + w->nblocks <= run.lba + run.nblocks) {
          m = &run;
          break;
        }
      }
      CHECK(m != nullptr);
      std::memcpy(w->out.data(),
                  batch.scratch.data() +
                      (m->scratch_block + (w->lba - m->lba)) * block_size_,
                  uint64_t{w->nblocks} * block_size_);
    }
    RecordQueueSpan(*w, now);
    queue_ns_->Record(now - w->enqueued);
    FinishRequest(w, status);
  }
  --inflight_batches_;
  done_cond_.NotifyAll();
}

Task<void> IoScheduler::SubmitWrites(std::vector<IoRequest*> writes) {
  struct Piece {
    uint64_t lba;
    uint32_t nblocks;
    std::span<const uint8_t> data;
    uint64_t seq;
  };
  std::vector<Piece> pieces;
  uint64_t total_blocks = 0;
  for (const IoRequest* r : writes) {
    for (const ConstBlockRun& run : r->wruns) {
      pieces.push_back({run.lba, run.nblocks, run.data, r->seq});
      total_blocks += run.nblocks;
    }
  }
  std::sort(pieces.begin(), pieces.end(), [](const Piece& a, const Piece& b) {
    return a.lba != b.lba ? a.lba < b.lba : a.seq < b.seq;
  });
  // Copy into one contiguous scratch so adjacent runs become one command.
  // Overlapping writes never merge: the device gives no ordering within a
  // submission, and the cache's in-flight range tracking means callers
  // never overlap anyway.
  std::vector<uint8_t> scratch(total_blocks * block_size_);
  std::vector<ConstBlockRun> runs;
  uint64_t cursor = 0;  // blocks copied into scratch
  for (const Piece& p : pieces) {
    const uint64_t bytes = uint64_t{p.nblocks} * block_size_;
    std::memcpy(scratch.data() + cursor * block_size_, p.data.data(), bytes);
    if (!runs.empty() &&
        runs.back().lba + runs.back().nblocks == p.lba) {
      ConstBlockRun& last = runs.back();
      last = ConstBlockRun{
          last.lba, last.nblocks + p.nblocks,
          std::span<const uint8_t>(
              last.data.data(),
              last.data.size() + bytes)};
      merges_->Increment();
      ++local_merges_;
    } else {
      runs.push_back(ConstBlockRun{
          p.lba, p.nblocks,
          std::span<const uint8_t>(scratch.data() + cursor * block_size_,
                                   bytes)});
    }
    cursor += p.nblocks;
  }
  TraceContext batch_ctx;
  for (const IoRequest* r : writes) {
    if (r->ctx.traced()) {
      batch_ctx = r->ctx;
      break;
    }
  }
  Status status =
      co_await store_->WriteRuns(runs, options_.coalesce_nvme, batch_ctx);
  for (IoRequest* r : writes) {
    FinishRequest(r, status);
  }
  --inflight_batches_;
  done_cond_.NotifyAll();
}

Task<void> IoScheduler::SubmitFlushes(std::vector<IoRequest*> flushes) {
  // The barrier half: every submission dispatched before this round (reads
  // or writes, possibly spawned in the same round) must complete before
  // the flush command goes down, so the flush covers them. Our own batch
  // holds one inflight slot.
  while (inflight_batches_ > 1) {
    co_await done_cond_.Wait();
  }
  Status status = co_await store_->Flush();
  const SimTime now = sim_->now();
  for (IoRequest* r : flushes) {
    RecordQueueSpan(*r, now);
    queue_ns_->Record(now - r->enqueued);
    dispatched_[static_cast<int>(IoClass::kOrdered)]->Increment();
    ++local_dispatched_[static_cast<int>(IoClass::kOrdered)];
    if (UseSeries* use = use_[static_cast<int>(IoClass::kOrdered)];
        use != nullptr) {
      use->QueueDelta(now, -1);
      use->CompleteOp(now, now - r->enqueued);
      if (!status.ok()) {
        use->AddError(now);
      }
    }
    FinishRequest(r, status);
  }
  --inflight_batches_;
  --barrier_pending_;
  done_cond_.NotifyAll();
}

std::vector<IoScheduler::IoRequest*> IoScheduler::SelectBatch() {
  peak_queued_ = std::max(peak_queued_, pending_);
  std::vector<IoRequest*> out;
  const uint32_t cap = std::max<uint32_t>(options_.plug_max_batch, 1);
  for (int c = 0; c < kIoClassCount; ++c) {
    ClassQueue& cq = classes_[c];
    if (cq.rr.empty()) {
      continue;
    }
    if (!options_.fairness) {
      // One queue (key 0), pure arrival order.
      ClientQueue& q = cq.clients.begin()->second;
      while (!q.fifo.empty() && out.size() < cap) {
        out.push_back(q.fifo.front());
        q.fifo.pop_front();
      }
      if (q.fifo.empty()) {
        cq.clients.clear();
        cq.rr.clear();
      }
    } else {
      const uint64_t quantum =
          std::max<uint32_t>(options_.drr_quantum_blocks, 1);
      while (!cq.rr.empty() && out.size() < cap) {
        const uint32_t key = cq.rr.front();
        cq.rr.pop_front();
        auto it = cq.clients.find(key);
        CHECK(it != cq.clients.end());
        ClientQueue& q = it->second;
        q.deficit += quantum;
        while (!q.fifo.empty() && out.size() < cap &&
               q.fifo.front()->blocks <= q.deficit) {
          q.deficit -= q.fifo.front()->blocks;
          out.push_back(q.fifo.front());
          q.fifo.pop_front();
        }
        if (q.fifo.empty()) {
          // Deficit resets when a client goes idle (standard DRR).
          cq.clients.erase(it);
        } else {
          cq.rr.push_back(key);  // backlogged: rotate, deficit carries
          if (out.size() >= cap) {
            break;
          }
        }
      }
    }
    if (!out.empty()) {
      // Strict class priority: one class per round. (With priority off
      // every request is in class 0, so this is simply "the round".)
      break;
    }
  }
  pending_ -= out.size();
  return out;
}

}  // namespace solros
