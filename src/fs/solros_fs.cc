#include "src/fs/solros_fs.h"

#include <algorithm>
#include <cstring>

#include "src/base/logging.h"

namespace solros {
namespace {

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

// Bits per bitmap block.
constexpr uint64_t kBitsPerBlock = uint64_t{kFsBlockSize} * 8;

}  // namespace

SolrosFs::SolrosFs(BlockStore* store, Simulator* sim)
    : store_(store), sim_(sim) {
  CHECK(store != nullptr);
  CHECK_EQ(store->block_size(), kFsBlockSize);
}

uint64_t SolrosFs::NowNs() const { return sim_ != nullptr ? sim_->now() : 0; }

Status SolrosFs::CheckMounted() const {
  if (!mounted_) {
    return FailedPreconditionError("file system not mounted");
  }
  return OkStatus();
}

bool SolrosFs::BitGet(const std::vector<uint8_t>& bits, uint64_t index) {
  return (bits[index >> 3] >> (index & 7)) & 1;
}

void SolrosFs::BitSet(std::vector<uint8_t>& bits, uint64_t index,
                      bool value) {
  if (value) {
    bits[index >> 3] |= static_cast<uint8_t>(1u << (index & 7));
  } else {
    bits[index >> 3] &= static_cast<uint8_t>(~(1u << (index & 7)));
  }
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Task<Status> SolrosFs::Format(uint64_t inode_count, uint64_t journal_blocks) {
  CHECK_GE(inode_count, 2u);
  uint64_t total = store_->block_count();

  SuperBlock sb = {};
  sb.magic = kFsMagic;
  sb.version = kFsVersion;
  sb.block_size = kFsBlockSize;
  sb.total_blocks = total;
  sb.inode_count = inode_count;
  sb.block_bitmap_start = 1;
  sb.block_bitmap_blocks = CeilDiv(total, kBitsPerBlock);
  sb.inode_bitmap_start = sb.block_bitmap_start + sb.block_bitmap_blocks;
  sb.inode_bitmap_blocks = CeilDiv(inode_count, kBitsPerBlock);
  sb.inode_table_start = sb.inode_bitmap_start + sb.inode_bitmap_blocks;
  sb.inode_table_blocks = CeilDiv(inode_count, kInodesPerBlock);
  sb.data_start = sb.inode_table_start + sb.inode_table_blocks;
  if (journal_mode_ != JournalMode::kOff) {
    sb.journal_start = sb.data_start;
    sb.journal_blocks = std::max<uint64_t>(
        journal_blocks != 0 ? journal_blocks : kDefaultJournalBlocks,
        kMinJournalBlocks);
    sb.data_start += sb.journal_blocks;
  }
  if (sb.data_start >= total) {
    co_return InvalidArgumentError("device too small for this inode count");
  }
  sb.free_blocks = total - sb.data_start;
  sb.free_inodes = inode_count - 1;  // root consumes one

  // Superblock.
  std::vector<uint8_t> block(kFsBlockSize, 0);
  std::memcpy(block.data(), &sb, sizeof(sb));
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(0, 1, block));

  // Block bitmap: metadata blocks [0, data_start) are in use.
  block_bitmap_.assign(sb.block_bitmap_blocks * kFsBlockSize, 0);
  for (uint64_t b = 0; b < sb.data_start; ++b) {
    BitSet(block_bitmap_, b, true);
  }
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(
      sb.block_bitmap_start, static_cast<uint32_t>(sb.block_bitmap_blocks),
      block_bitmap_));

  // Inode bitmap: root (ino 1 -> bit 0) in use.
  inode_bitmap_.assign(sb.inode_bitmap_blocks * kFsBlockSize, 0);
  BitSet(inode_bitmap_, 0, true);
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(
      sb.inode_bitmap_start, static_cast<uint32_t>(sb.inode_bitmap_blocks),
      inode_bitmap_));

  // Zeroed inode table with the root directory inode.
  std::vector<uint8_t> table_block(kFsBlockSize, 0);
  DiskInode root = {};
  root.mode = kModeDir;
  root.nlink = 2;
  root.mtime = NowNs();
  std::memcpy(table_block.data(), &root, kInodeSize);
  SOLROS_CO_RETURN_IF_ERROR(
      co_await store_->Write(sb.inode_table_start, 1, table_block));
  std::vector<uint8_t> zero_block(kFsBlockSize, 0);
  for (uint64_t b = 1; b < sb.inode_table_blocks; ++b) {
    SOLROS_CO_RETURN_IF_ERROR(
        co_await store_->Write(sb.inode_table_start + b, 1, zero_block));
  }
  if (sb.journal_blocks != 0) {
    Journal fresh(store_, sb.journal_start, sb.journal_blocks);
    SOLROS_CO_RETURN_IF_ERROR(co_await fresh.Format());
  }
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Flush());
  co_return co_await Mount();
}

Task<Status> SolrosFs::Mount() {
  if (mounted_) {
    co_return FailedPreconditionError("already mounted");
  }
  std::vector<uint8_t> block(kFsBlockSize);
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(0, 1, block));
  std::memcpy(&super_, block.data(), sizeof(super_));
  if (super_.magic != kFsMagic || super_.version != kFsVersion ||
      super_.block_size != kFsBlockSize) {
    co_return IoError("bad superblock (not a SolrosFS volume?)");
  }
  if (super_.total_blocks > store_->block_count()) {
    co_return IoError("superblock larger than backing device");
  }

  // Crash recovery before anything else is read: replay every committed
  // journal transaction into its home location (idempotent), discard a
  // torn tail, then re-read the superblock — it may itself have been
  // replayed.
  journal_.reset();
  replay_stats_ = JournalReplayStats{};
  if (super_.journal_blocks != 0) {
    if (super_.journal_start < 1 ||
        super_.journal_start + super_.journal_blocks > super_.total_blocks) {
      co_return IoError("journal region out of bounds");
    }
    journal_ = std::make_unique<Journal>(store_, super_.journal_start,
                                         super_.journal_blocks);
    SOLROS_CO_RETURN_IF_ERROR(co_await journal_->Load());
    SOLROS_CO_RETURN_IF_ERROR(co_await journal_->Replay(&replay_stats_));
    SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(0, 1, block));
    std::memcpy(&super_, block.data(), sizeof(super_));
  }

  block_bitmap_.assign(super_.block_bitmap_blocks * kFsBlockSize, 0);
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(
      super_.block_bitmap_start,
      static_cast<uint32_t>(super_.block_bitmap_blocks), block_bitmap_));
  inode_bitmap_.assign(super_.inode_bitmap_blocks * kFsBlockSize, 0);
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(
      super_.inode_bitmap_start,
      static_cast<uint32_t>(super_.inode_bitmap_blocks), inode_bitmap_));

  alloc_cursor_ = super_.data_start;
  block_bitmap_dirty_ = false;
  inode_bitmap_dirty_ = false;
  super_dirty_ = false;
  inode_cache_.clear();
  staged_writes_.clear();
  meta_txn_required_ = false;
  mounted_ = true;
  co_return OkStatus();
}

Task<Status> SolrosFs::Unmount() {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_RETURN_IF_ERROR(co_await Sync());
  inode_cache_.clear();
  mounted_ = false;
  co_return OkStatus();
}

Task<Status> SolrosFs::Sync() {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  // force: a journaled Sync must commit even pure-mtime dirt.
  SOLROS_CO_RETURN_IF_ERROR(co_await FlushMetadata(/*force=*/true));
  co_return co_await store_->Flush();
}

// ---------------------------------------------------------------------------
// Inode & bitmap plumbing
// ---------------------------------------------------------------------------

Task<Result<DiskInode*>> SolrosFs::GetInode(uint64_t ino) {
  if (ino == 0 || ino > super_.inode_count) {
    co_return InvalidArgumentError("bad inode number");
  }
  auto it = inode_cache_.find(ino);
  if (it != inode_cache_.end()) {
    co_return &it->second.inode;
  }
  if (!BitGet(inode_bitmap_, ino - 1)) {
    co_return NotFoundError("inode not allocated");
  }
  uint64_t block = super_.inode_table_start + (ino - 1) / kInodesPerBlock;
  uint32_t slot = (ino - 1) % kInodesPerBlock;
  std::vector<uint8_t> buf(kFsBlockSize);
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(block, 1, buf));
  CachedInode entry;
  std::memcpy(&entry.inode, buf.data() + slot * kInodeSize, kInodeSize);
  // Recompute the allocation cache.
  uint64_t blocks = 0;
  if (entry.inode.extent_count <= kDirectExtents) {
    for (uint32_t i = 0; i < entry.inode.extent_count; ++i) {
      blocks += entry.inode.direct[i].len;
    }
    entry.inode.allocated_blocks_cache = blocks;
  } else {
    auto loaded = co_await LoadExtents(entry.inode);
    if (!loaded.ok()) {
      co_return loaded.status();
    }
    for (const FsExtent& e : *loaded) {
      blocks += e.len;
    }
    entry.inode.allocated_blocks_cache = blocks;
  }
  auto [pos, inserted] = inode_cache_.emplace(ino, entry);
  co_return &pos->second.inode;
}

void SolrosFs::MarkInodeDirty(uint64_t ino) {
  auto it = inode_cache_.find(ino);
  CHECK(it != inode_cache_.end());
  it->second.dirty = true;
}

Task<Status> SolrosFs::FlushMetadata(bool force) {
  if (journal_ == nullptr) {
    if (super_dirty_) {
      std::vector<uint8_t> block(kFsBlockSize, 0);
      std::memcpy(block.data(), &super_, sizeof(super_));
      SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(0, 1, block));
      super_dirty_ = false;
    }
    if (block_bitmap_dirty_) {
      SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(
          super_.block_bitmap_start,
          static_cast<uint32_t>(super_.block_bitmap_blocks), block_bitmap_));
      block_bitmap_dirty_ = false;
    }
    if (inode_bitmap_dirty_) {
      SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(
          super_.inode_bitmap_start,
          static_cast<uint32_t>(super_.inode_bitmap_blocks), inode_bitmap_));
      inode_bitmap_dirty_ = false;
    }
    // Dirty inodes: read-modify-write their table blocks.
    std::vector<uint8_t> buf(kFsBlockSize);
    for (auto& [ino, cached] : inode_cache_) {
      if (!cached.dirty) {
        continue;
      }
      uint64_t block = super_.inode_table_start + (ino - 1) / kInodesPerBlock;
      uint32_t slot = (ino - 1) % kInodesPerBlock;
      SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(block, 1, buf));
      std::memcpy(buf.data() + slot * kInodeSize, &cached.inode, kInodeSize);
      SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(block, 1, buf));
      cached.dirty = false;
    }
    co_return OkStatus();
  }

  // Journaled path: one transaction carries everything this operation
  // changed. A pure-mtime update (overwrite inside a file's allocation)
  // defers — the dirt rides the next structural commit or Sync — which is
  // what keeps steady-state random writes commit-free in metadata mode.
  if (!force && !meta_txn_required_ && staged_writes_.empty()) {
    co_return OkStatus();
  }
  std::vector<JournalBlockImage> images;
  // Staged content first (map order = ascending LBA, data region after
  // metadata): if an oversized transaction is ever split, metadata goes in
  // the last sub-transaction, so durable metadata never references content
  // from a discarded one.
  for (auto& [lba, data] : staged_writes_) {
    images.push_back(JournalBlockImage{lba, std::move(data)});
  }
  staged_writes_.clear();
  if (super_dirty_) {
    JournalBlockImage image{0, std::vector<uint8_t>(kFsBlockSize, 0)};
    std::memcpy(image.data.data(), &super_, sizeof(super_));
    images.push_back(std::move(image));
  }
  if (block_bitmap_dirty_) {
    for (uint64_t b = 0; b < super_.block_bitmap_blocks; ++b) {
      images.push_back(JournalBlockImage{
          super_.block_bitmap_start + b,
          {block_bitmap_.begin() + b * kFsBlockSize,
           block_bitmap_.begin() + (b + 1) * kFsBlockSize}});
    }
  }
  if (inode_bitmap_dirty_) {
    for (uint64_t b = 0; b < super_.inode_bitmap_blocks; ++b) {
      images.push_back(JournalBlockImage{
          super_.inode_bitmap_start + b,
          {inode_bitmap_.begin() + b * kFsBlockSize,
           inode_bitmap_.begin() + (b + 1) * kFsBlockSize}});
    }
  }
  // Dirty inodes, grouped per table block so each block becomes one image
  // no matter how many of its slots changed.
  std::map<uint64_t, std::vector<uint64_t>> dirty_by_block;
  for (auto& [ino, cached] : inode_cache_) {
    if (cached.dirty) {
      dirty_by_block[(ino - 1) / kInodesPerBlock].push_back(ino);
    }
  }
  for (const auto& [table_block, inos] : dirty_by_block) {
    JournalBlockImage image{super_.inode_table_start + table_block,
                            std::vector<uint8_t>(kFsBlockSize)};
    SOLROS_CO_RETURN_IF_ERROR(
        co_await store_->Read(image.lba, 1, image.data));
    for (uint64_t ino : inos) {
      std::memcpy(
          image.data.data() + ((ino - 1) % kInodesPerBlock) * kInodeSize,
          &inode_cache_[ino].inode, kInodeSize);
    }
    images.push_back(std::move(image));
  }
  if (images.empty()) {
    meta_txn_required_ = false;
    co_return OkStatus();
  }
  SOLROS_CO_RETURN_IF_ERROR(co_await journal_->Commit(images));
  super_dirty_ = false;
  block_bitmap_dirty_ = false;
  inode_bitmap_dirty_ = false;
  meta_txn_required_ = false;
  for (auto& [ino, cached] : inode_cache_) {
    cached.dirty = false;
  }
  co_return OkStatus();
}

void SolrosFs::StageWrite(uint64_t lba, std::span<const uint8_t> block) {
  DCHECK_EQ(block.size(), kFsBlockSize);
  staged_writes_[lba].assign(block.begin(), block.end());
}

Task<Status> SolrosFs::ReadMetaBlock(uint64_t lba, std::span<uint8_t> out) {
  if (journal_ != nullptr) {
    auto it = staged_writes_.find(lba);
    if (it != staged_writes_.end()) {
      std::memcpy(out.data(), it->second.data(), kFsBlockSize);
      co_return OkStatus();
    }
  }
  co_return co_await store_->Read(lba, 1, out);
}

Result<uint64_t> SolrosFs::AllocInode() {
  if (super_.free_inodes == 0) {
    return ResourceExhaustedError("out of inodes");
  }
  for (uint64_t i = 0; i < super_.inode_count; ++i) {
    if (!BitGet(inode_bitmap_, i)) {
      BitSet(inode_bitmap_, i, true);
      inode_bitmap_dirty_ = true;
      --super_.free_inodes;
      super_dirty_ = true;
      meta_txn_required_ = true;
      uint64_t ino = i + 1;
      CachedInode fresh;
      fresh.inode = DiskInode{};
      fresh.dirty = true;
      inode_cache_[ino] = fresh;
      return ino;
    }
  }
  return ResourceExhaustedError("inode bitmap full despite free count");
}

void SolrosFs::FreeInode(uint64_t ino) {
  BitSet(inode_bitmap_, ino - 1, false);
  inode_bitmap_dirty_ = true;
  ++super_.free_inodes;
  super_dirty_ = true;
  meta_txn_required_ = true;
  auto it = inode_cache_.find(ino);
  if (it != inode_cache_.end()) {
    // Write back a cleared inode so the slot reads as free.
    it->second.inode = DiskInode{};
    it->second.dirty = true;
  }
  if (extent_observer_) {
    extent_observer_(ino);
  }
}

Result<FsExtent> SolrosFs::AllocExtent(uint32_t want) {
  if (super_.free_blocks == 0) {
    return ResourceExhaustedError("no space left on device");
  }
  want = std::min(want, kMaxExtentBlocks);
  if (want == 0) {
    want = 1;
  }
  // Rotating first-fit scan over the data region (two passes: from the
  // cursor to the end, then from data_start to the cursor).
  for (int pass = 0; pass < 2; ++pass) {
    uint64_t begin = pass == 0 ? alloc_cursor_ : super_.data_start;
    uint64_t end = pass == 0 ? super_.total_blocks : alloc_cursor_;
    uint64_t b = begin;
    while (b < end) {
      // Skip fully-used bytes quickly.
      if ((b & 7) == 0 && b + 8 <= end && block_bitmap_[b >> 3] == 0xff) {
        b += 8;
        continue;
      }
      if (BitGet(block_bitmap_, b)) {
        ++b;
        continue;
      }
      // Found a free block; extend the run.
      uint64_t run_end = b + 1;
      while (run_end < end && run_end - b < want &&
             !BitGet(block_bitmap_, run_end)) {
        ++run_end;
      }
      FsExtent extent;
      extent.start = b;
      extent.len = static_cast<uint32_t>(run_end - b);
      for (uint64_t x = b; x < run_end; ++x) {
        BitSet(block_bitmap_, x, true);
      }
      block_bitmap_dirty_ = true;
      super_.free_blocks -= extent.len;
      super_dirty_ = true;
      meta_txn_required_ = true;
      alloc_cursor_ = run_end;
      return extent;
    }
  }
  return ResourceExhaustedError("no space left on device");
}

void SolrosFs::FreeBlocks(const FsExtent& extent) {
  for (uint64_t b = extent.start; b < extent.start + extent.len; ++b) {
    DCHECK(BitGet(block_bitmap_, b));
    BitSet(block_bitmap_, b, false);
  }
  block_bitmap_dirty_ = true;
  super_.free_blocks += extent.len;
  super_dirty_ = true;
  meta_txn_required_ = true;
  if (extent.start < alloc_cursor_) {
    alloc_cursor_ = extent.start;
  }
}

// ---------------------------------------------------------------------------
// Extent management
// ---------------------------------------------------------------------------

Task<Result<std::vector<FsExtent>>> SolrosFs::LoadExtents(
    const DiskInode& inode) {
  std::vector<FsExtent> extents;
  extents.reserve(inode.extent_count);
  uint32_t direct = std::min<uint32_t>(inode.extent_count, kDirectExtents);
  for (uint32_t i = 0; i < direct; ++i) {
    extents.push_back(inode.direct[i]);
  }
  if (inode.extent_count > kDirectExtents) {
    if (inode.indirect_block == 0) {
      co_return IoError("inode missing indirect extent block");
    }
    std::vector<uint8_t> buf(kFsBlockSize);
    // Through the staging map: within one op the indirect block may have
    // been rewritten by StoreExtents but not yet committed.
    SOLROS_CO_RETURN_IF_ERROR(
        co_await ReadMetaBlock(inode.indirect_block, buf));
    uint32_t extra = inode.extent_count - kDirectExtents;
    for (uint32_t i = 0; i < extra; ++i) {
      FsExtent e;
      std::memcpy(&e, buf.data() + i * sizeof(FsExtent), sizeof(FsExtent));
      extents.push_back(e);
    }
  }
  co_return extents;
}

Task<Status> SolrosFs::StoreExtents(uint64_t ino,
                                    const std::vector<FsExtent>& extents) {
  if (extents.size() > kMaxExtentsPerFile) {
    co_return ResourceExhaustedError("file too fragmented");
  }
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * inode, co_await GetInode(ino));
  uint32_t direct = std::min<size_t>(extents.size(), kDirectExtents);
  for (uint32_t i = 0; i < direct; ++i) {
    inode->direct[i] = extents[i];
  }
  for (uint32_t i = direct; i < kDirectExtents; ++i) {
    inode->direct[i] = FsExtent{};
  }
  if (extents.size() > kDirectExtents) {
    if (inode->indirect_block == 0) {
      SOLROS_CO_ASSIGN_OR_RETURN(FsExtent ib, AllocExtent(1));
      if (ib.len != 1) {
        // Only need one block; return the surplus.
        FsExtent surplus{ib.start + 1, ib.len - 1, 0};
        FreeBlocks(surplus);
      }
      inode->indirect_block = ib.start;
    }
    std::vector<uint8_t> buf(kFsBlockSize, 0);
    for (size_t i = kDirectExtents; i < extents.size(); ++i) {
      std::memcpy(buf.data() + (i - kDirectExtents) * sizeof(FsExtent),
                  &extents[i], sizeof(FsExtent));
    }
    if (journal_ != nullptr) {
      // The indirect block is metadata: it must land in the same
      // transaction as the inode that points at it.
      StageWrite(inode->indirect_block, buf);
      meta_txn_required_ = true;
    } else {
      SOLROS_CO_RETURN_IF_ERROR(
          co_await store_->Write(inode->indirect_block, 1, buf));
    }
  } else if (inode->indirect_block != 0) {
    FreeBlocks(FsExtent{inode->indirect_block, 1, 0});
    inode->indirect_block = 0;
  }
  inode->extent_count = static_cast<uint32_t>(extents.size());
  uint64_t blocks = 0;
  for (const FsExtent& e : extents) {
    blocks += e.len;
  }
  inode->allocated_blocks_cache = blocks;
  MarkInodeDirty(ino);
  if (extent_observer_) {
    extent_observer_(ino);
  }
  co_return OkStatus();
}

Task<Status> SolrosFs::EnsureAllocated(uint64_t ino, uint64_t blocks) {
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * inode, co_await GetInode(ino));
  if (inode->allocated_blocks_cache >= blocks) {
    co_return OkStatus();
  }
  SOLROS_CO_ASSIGN_OR_RETURN(std::vector<FsExtent> extents,
                          co_await LoadExtents(*inode));
  uint64_t have = inode->allocated_blocks_cache;
  while (have < blocks) {
    uint64_t need = blocks - have;
    SOLROS_CO_ASSIGN_OR_RETURN(
        FsExtent extent,
        AllocExtent(static_cast<uint32_t>(
            std::min<uint64_t>(need, kMaxExtentBlocks))));
    // Merge into the previous extent when physically contiguous.
    if (!extents.empty() &&
        extents.back().start + extents.back().len == extent.start &&
        uint64_t{extents.back().len} + extent.len <= kMaxExtentBlocks) {
      extents.back().len += extent.len;
    } else {
      extents.push_back(extent);
    }
    have += extent.len;
  }
  co_return co_await StoreExtents(ino, extents);
}

// ---------------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------------

namespace {

// Maps a logical block to (physical LBA, blocks remaining in this run).
Result<std::pair<uint64_t, uint64_t>> MapBlock(
    const std::vector<FsExtent>& extents, uint64_t lblock) {
  uint64_t cursor = 0;
  for (const FsExtent& e : extents) {
    if (lblock < cursor + e.len) {
      uint64_t within = lblock - cursor;
      return std::make_pair(e.start + within, uint64_t{e.len} - within);
    }
    cursor += e.len;
  }
  return OutOfRangeError("logical block beyond allocation");
}

}  // namespace

Task<Result<uint64_t>> SolrosFs::ReadAt(uint64_t ino, uint64_t offset,
                                        std::span<uint8_t> out) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * inode, co_await GetInode(ino));
  if (offset >= inode->size) {
    co_return uint64_t{0};
  }
  uint64_t len = std::min<uint64_t>(out.size(), inode->size - offset);
  SOLROS_CO_ASSIGN_OR_RETURN(std::vector<FsExtent> extents,
                          co_await LoadExtents(*inode));

  std::vector<uint8_t> scratch(kFsBlockSize);
  // Vectored mode defers the full-block runs and reads them all in one
  // store submission; block ranges within one call never overlap, so the
  // deferral cannot reorder conflicting I/O.
  std::vector<BlockRun> runs;
  uint64_t pos = offset;
  uint64_t end = offset + len;
  uint8_t* dst = out.data();
  while (pos < end) {
    uint64_t lblock = pos / kFsBlockSize;
    uint32_t in_off = pos % kFsBlockSize;
    SOLROS_CO_ASSIGN_OR_RETURN(auto mapping, MapBlock(extents, lblock));
    auto [lba, run_blocks] = mapping;
    uint64_t run_bytes = run_blocks * kFsBlockSize - in_off;
    uint64_t chunk = std::min(end - pos, run_bytes);
    if (in_off == 0 && chunk >= kFsBlockSize) {
      chunk = chunk / kFsBlockSize * kFsBlockSize;
      if (vectored_io_) {
        runs.push_back(BlockRun{
            lba, static_cast<uint32_t>(chunk / kFsBlockSize), {dst, chunk}});
      } else {
        SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(
            lba, static_cast<uint32_t>(chunk / kFsBlockSize), {dst, chunk}));
      }
    } else {
      chunk = std::min<uint64_t>(chunk, kFsBlockSize - in_off);
      SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(lba, 1, scratch));
      std::memcpy(dst, scratch.data() + in_off, chunk);
    }
    pos += chunk;
    dst += chunk;
  }
  if (!runs.empty()) {
    SOLROS_CO_RETURN_IF_ERROR(co_await store_->ReadV(runs, /*coalesce=*/true));
  }
  co_return len;
}

Task<Result<uint64_t>> SolrosFs::WriteAt(uint64_t ino, uint64_t offset,
                                         std::span<const uint8_t> in) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * inode, co_await GetInode(ino));
  uint64_t len = in.size();
  uint64_t end = offset + len;
  uint64_t old_size = inode->size;
  SOLROS_CO_RETURN_IF_ERROR(
      co_await EnsureAllocated(ino, CeilDiv(end, kFsBlockSize)));
  // GetInode pointer may still be used: cache entries are stable.
  SOLROS_CO_ASSIGN_OR_RETURN(std::vector<FsExtent> extents,
                          co_await LoadExtents(*inode));

  // Zero any gap between old EOF and the write start (no sparse holes).
  if (offset > old_size) {
    std::vector<uint8_t> zeros(kFsBlockSize, 0);
    uint64_t gap_pos = old_size;
    while (gap_pos < offset) {
      uint64_t lblock = gap_pos / kFsBlockSize;
      uint32_t in_off = gap_pos % kFsBlockSize;
      SOLROS_CO_ASSIGN_OR_RETURN(auto mapping, MapBlock(extents, lblock));
      auto [lba, run_blocks] = mapping;
      uint64_t chunk = std::min<uint64_t>(offset - gap_pos,
                                          kFsBlockSize - in_off);
      if (in_off == 0 && chunk == kFsBlockSize) {
        SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(lba, 1, zeros));
      } else {
        std::vector<uint8_t> rmw(kFsBlockSize);
        SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(lba, 1, rmw));
        std::memset(rmw.data() + in_off, 0, chunk);
        SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(lba, 1, rmw));
      }
      gap_pos += chunk;
    }
  }

  // Directory contents always ride the journal (they are metadata); file
  // contents do too in data mode. Staged blocks commit atomically with the
  // inode/bitmap updates at the FlushMetadata below.
  const bool journal_content = JournalsContent(*inode);
  std::vector<uint8_t> scratch(kFsBlockSize);
  // Vectored mode defers the full-block runs into one store submission
  // (disjoint from any partial-block RMW, so ordering is preserved).
  std::vector<ConstBlockRun> runs;
  uint64_t pos = offset;
  const uint8_t* src = in.data();
  while (pos < end) {
    uint64_t lblock = pos / kFsBlockSize;
    uint32_t in_off = pos % kFsBlockSize;
    SOLROS_CO_ASSIGN_OR_RETURN(auto mapping, MapBlock(extents, lblock));
    auto [lba, run_blocks] = mapping;
    uint64_t run_bytes = run_blocks * kFsBlockSize - in_off;
    uint64_t chunk = std::min(end - pos, run_bytes);
    if (in_off == 0 && chunk >= kFsBlockSize) {
      chunk = chunk / kFsBlockSize * kFsBlockSize;
      if (journal_content) {
        for (uint64_t b = 0; b < chunk / kFsBlockSize; ++b) {
          StageWrite(lba + b, {src + b * kFsBlockSize, kFsBlockSize});
        }
      } else if (vectored_io_) {
        runs.push_back(ConstBlockRun{
            lba, static_cast<uint32_t>(chunk / kFsBlockSize), {src, chunk}});
      } else {
        SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(
            lba, static_cast<uint32_t>(chunk / kFsBlockSize), {src, chunk}));
      }
    } else {
      chunk = std::min<uint64_t>(chunk, kFsBlockSize - in_off);
      if (journal_content) {
        SOLROS_CO_RETURN_IF_ERROR(co_await ReadMetaBlock(lba, scratch));
        std::memcpy(scratch.data() + in_off, src, chunk);
        StageWrite(lba, scratch);
      } else {
        SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(lba, 1, scratch));
        std::memcpy(scratch.data() + in_off, src, chunk);
        SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(lba, 1, scratch));
      }
    }
    pos += chunk;
    src += chunk;
  }
  if (!runs.empty()) {
    SOLROS_CO_RETURN_IF_ERROR(
        co_await store_->WriteV(runs, /*coalesce=*/true));
  }

  if (end > inode->size) {
    inode->size = end;
    meta_txn_required_ = true;
  }
  inode->mtime = NowNs();
  MarkInodeDirty(ino);
  SOLROS_CO_RETURN_IF_ERROR(co_await FlushMetadata());
  co_return len;
}

Task<Status> SolrosFs::Truncate(uint64_t ino, uint64_t new_size) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * inode, co_await GetInode(ino));
  if (!inode->IsFile()) {
    co_return InvalidArgumentError("truncate on non-file");
  }
  if (new_size > inode->size) {
    // Grow: allocate and zero the new range.
    uint64_t old_size = inode->size;
    SOLROS_CO_RETURN_IF_ERROR(
        co_await EnsureAllocated(ino, CeilDiv(new_size, kFsBlockSize)));
    SOLROS_CO_ASSIGN_OR_RETURN(std::vector<FsExtent> extents,
                            co_await LoadExtents(*inode));
    std::vector<uint8_t> zeros(kFsBlockSize, 0);
    // Zero the stale tail of the old partial last block (a prior shrink
    // may have left old data beyond the byte-precise EOF).
    if (old_size % kFsBlockSize != 0) {
      uint64_t lblock = old_size / kFsBlockSize;
      uint32_t in_off = old_size % kFsBlockSize;
      uint64_t zero_end =
          std::min<uint64_t>(new_size, (lblock + 1) * kFsBlockSize);
      SOLROS_CO_ASSIGN_OR_RETURN(auto tail_map, MapBlock(extents, lblock));
      auto [tail_lba, tail_run] = tail_map;
      (void)tail_run;
      std::vector<uint8_t> rmw(kFsBlockSize);
      SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(tail_lba, 1, rmw));
      std::memset(rmw.data() + in_off, 0, zero_end - old_size);
      SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(tail_lba, 1, rmw));
    }
    uint64_t first_new_block = CeilDiv(old_size, kFsBlockSize);
    uint64_t last_block = CeilDiv(new_size, kFsBlockSize);
    for (uint64_t lb = first_new_block; lb < last_block;) {
      SOLROS_CO_ASSIGN_OR_RETURN(auto mapping, MapBlock(extents, lb));
      auto [lba, run_blocks] = mapping;
      uint64_t n = std::min(run_blocks, last_block - lb);
      // Zero a run block-by-block in bounded chunks.
      std::vector<uint8_t> zero_run(
          static_cast<size_t>(std::min<uint64_t>(n, 256) * kFsBlockSize), 0);
      uint64_t done = 0;
      while (done < n) {
        uint64_t batch = std::min<uint64_t>(n - done, 256);
        SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(
            lba + done, static_cast<uint32_t>(batch),
            {zero_run.data(), static_cast<size_t>(batch * kFsBlockSize)}));
        done += batch;
      }
      lb += n;
    }
  } else if (new_size < inode->size) {
    // Shrink: free whole blocks beyond the new end.
    uint64_t keep_blocks = CeilDiv(new_size, kFsBlockSize);
    SOLROS_CO_ASSIGN_OR_RETURN(std::vector<FsExtent> extents,
                            co_await LoadExtents(*inode));
    std::vector<FsExtent> kept;
    uint64_t cursor = 0;
    for (const FsExtent& e : extents) {
      if (cursor >= keep_blocks) {
        FreeBlocks(e);
      } else if (cursor + e.len <= keep_blocks) {
        kept.push_back(e);
      } else {
        uint32_t keep_len = static_cast<uint32_t>(keep_blocks - cursor);
        kept.push_back(FsExtent{e.start, keep_len, 0});
        FreeBlocks(FsExtent{e.start + keep_len, e.len - keep_len, 0});
      }
      cursor += e.len;
    }
    SOLROS_CO_RETURN_IF_ERROR(co_await StoreExtents(ino, kept));
  }
  if (new_size != inode->size) {
    meta_txn_required_ = true;
  }
  inode->size = new_size;
  inode->mtime = NowNs();
  MarkInodeDirty(ino);
  co_return co_await FlushMetadata();
}

Task<Result<std::vector<FsExtent>>> SolrosFs::PrepareWrite(uint64_t ino,
                                                           uint64_t offset,
                                                           uint64_t length) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * inode, co_await GetInode(ino));
  if (!inode->IsFile()) {
    co_return InvalidArgumentError("PrepareWrite on non-file");
  }
  if (offset > inode->size) {
    co_return FailedPreconditionError(
        "write past EOF leaves a gap; use the buffered path");
  }
  uint64_t end = offset + length;
  SOLROS_CO_RETURN_IF_ERROR(
      co_await EnsureAllocated(ino, CeilDiv(end, kFsBlockSize)));
  if (end > inode->size) {
    inode->size = end;
    meta_txn_required_ = true;
  }
  inode->mtime = NowNs();
  MarkInodeDirty(ino);
  SOLROS_CO_RETURN_IF_ERROR(co_await FlushMetadata());
  co_return co_await Fiemap(ino, offset, length);
}

Task<Result<std::vector<FsExtent>>> SolrosFs::Fiemap(uint64_t ino,
                                                     uint64_t offset,
                                                     uint64_t length) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * inode, co_await GetInode(ino));
  SOLROS_CO_ASSIGN_OR_RETURN(std::vector<FsExtent> extents,
                          co_await LoadExtents(*inode));
  if (length == 0 || offset >= inode->size) {
    co_return std::vector<FsExtent>{};
  }
  length = std::min(length, inode->size - offset);
  uint64_t first = offset / kFsBlockSize;
  uint64_t last = CeilDiv(offset + length, kFsBlockSize);  // exclusive

  std::vector<FsExtent> out;
  uint64_t cursor = 0;
  for (const FsExtent& e : extents) {
    uint64_t e_first = cursor;
    uint64_t e_last = cursor + e.len;
    uint64_t lo = std::max(first, e_first);
    uint64_t hi = std::min(last, e_last);
    if (lo < hi) {
      out.push_back(FsExtent{e.start + (lo - e_first),
                             static_cast<uint32_t>(hi - lo), 0});
    }
    cursor = e_last;
    if (cursor >= last) {
      break;
    }
  }
  co_return out;
}

// ---------------------------------------------------------------------------
// Directories
// ---------------------------------------------------------------------------

Task<Result<uint64_t>> SolrosFs::DirLookup(uint64_t dir_ino,
                                           std::string_view name) {
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * dir, co_await GetInode(dir_ino));
  if (!dir->IsDir()) {
    co_return InvalidArgumentError("not a directory");
  }
  std::vector<uint8_t> block(kFsBlockSize);
  for (uint64_t off = 0; off < dir->size; off += kFsBlockSize) {
    SOLROS_CO_ASSIGN_OR_RETURN(uint64_t n,
                            co_await ReadAt(dir_ino, off, block));
    uint32_t count = static_cast<uint32_t>(n / sizeof(Dirent));
    for (uint32_t i = 0; i < count; ++i) {
      Dirent entry;
      std::memcpy(&entry, block.data() + i * sizeof(Dirent), sizeof(Dirent));
      if (entry.ino != 0 && entry.Name() == name) {
        co_return entry.ino;
      }
    }
  }
  co_return NotFoundError(std::string(name));
}

Task<Status> SolrosFs::DirAdd(uint64_t dir_ino, std::string_view name,
                              uint64_t ino, uint8_t type) {
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * dir, co_await GetInode(dir_ino));
  if (!dir->IsDir()) {
    co_return InvalidArgumentError("not a directory");
  }
  Dirent entry;
  entry.ino = ino;
  entry.type = type;
  entry.SetName(std::string(name));

  // Reuse a free slot if one exists.
  std::vector<uint8_t> block(kFsBlockSize);
  for (uint64_t off = 0; off < dir->size; off += kFsBlockSize) {
    SOLROS_CO_ASSIGN_OR_RETURN(uint64_t n, co_await ReadAt(dir_ino, off, block));
    uint32_t count = static_cast<uint32_t>(n / sizeof(Dirent));
    for (uint32_t i = 0; i < count; ++i) {
      Dirent existing;
      std::memcpy(&existing, block.data() + i * sizeof(Dirent),
                  sizeof(Dirent));
      if (existing.ino == 0) {
        uint64_t slot_off = off + i * sizeof(Dirent);
        SOLROS_CO_ASSIGN_OR_RETURN(
            uint64_t w,
            co_await WriteAt(dir_ino, slot_off,
                             {reinterpret_cast<const uint8_t*>(&entry),
                              sizeof(entry)}));
        (void)w;
        co_return OkStatus();
      }
    }
  }
  // Append at the end.
  SOLROS_CO_ASSIGN_OR_RETURN(
      uint64_t w,
      co_await WriteAt(dir_ino, dir->size,
                       {reinterpret_cast<const uint8_t*>(&entry),
                        sizeof(entry)}));
  (void)w;
  co_return OkStatus();
}

Task<Status> SolrosFs::DirRemove(uint64_t dir_ino, std::string_view name) {
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * dir, co_await GetInode(dir_ino));
  std::vector<uint8_t> block(kFsBlockSize);
  for (uint64_t off = 0; off < dir->size; off += kFsBlockSize) {
    SOLROS_CO_ASSIGN_OR_RETURN(uint64_t n, co_await ReadAt(dir_ino, off, block));
    uint32_t count = static_cast<uint32_t>(n / sizeof(Dirent));
    for (uint32_t i = 0; i < count; ++i) {
      Dirent entry;
      std::memcpy(&entry, block.data() + i * sizeof(Dirent), sizeof(Dirent));
      if (entry.ino != 0 && entry.Name() == name) {
        Dirent cleared = {};
        SOLROS_CO_ASSIGN_OR_RETURN(
            uint64_t w,
            co_await WriteAt(dir_ino, off + i * sizeof(Dirent),
                             {reinterpret_cast<const uint8_t*>(&cleared),
                              sizeof(cleared)}));
        (void)w;
        co_return OkStatus();
      }
    }
  }
  co_return NotFoundError(std::string(name));
}

Task<Result<bool>> SolrosFs::DirIsEmpty(uint64_t dir_ino) {
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * dir, co_await GetInode(dir_ino));
  std::vector<uint8_t> block(kFsBlockSize);
  for (uint64_t off = 0; off < dir->size; off += kFsBlockSize) {
    SOLROS_CO_ASSIGN_OR_RETURN(uint64_t n, co_await ReadAt(dir_ino, off, block));
    uint32_t count = static_cast<uint32_t>(n / sizeof(Dirent));
    for (uint32_t i = 0; i < count; ++i) {
      Dirent entry;
      std::memcpy(&entry, block.data() + i * sizeof(Dirent), sizeof(Dirent));
      if (entry.ino != 0) {
        co_return false;
      }
    }
  }
  co_return true;
}

// ---------------------------------------------------------------------------
// Path walking & namespace operations
// ---------------------------------------------------------------------------

Status SolrosFs::SplitPath(const std::string& path,
                           std::vector<std::string>* components) {
  components->clear();
  if (path.empty() || path[0] != '/') {
    return InvalidArgumentError("path must be absolute: " + path);
  }
  size_t pos = 1;
  while (pos < path.size()) {
    size_t next = path.find('/', pos);
    if (next == std::string::npos) {
      next = path.size();
    }
    if (next != pos) {
      std::string name = path.substr(pos, next - pos);
      if (name.size() > kMaxFileName) {
        return InvalidArgumentError("name too long: " + name);
      }
      components->push_back(std::move(name));
    }
    pos = next + 1;
  }
  return OkStatus();
}

Task<Result<uint64_t>> SolrosFs::ResolvePath(const std::string& path) {
  std::vector<std::string> components;
  SOLROS_CO_RETURN_IF_ERROR(SplitPath(path, &components));
  uint64_t ino = kRootInode;
  for (const std::string& name : components) {
    SOLROS_CO_ASSIGN_OR_RETURN(ino, co_await DirLookup(ino, name));
  }
  co_return ino;
}

Task<Result<SolrosFs::ResolvedParent>> SolrosFs::ResolveParent(
    const std::string& path) {
  std::vector<std::string> components;
  SOLROS_CO_RETURN_IF_ERROR(SplitPath(path, &components));
  if (components.empty()) {
    co_return InvalidArgumentError("cannot operate on /");
  }
  uint64_t ino = kRootInode;
  for (size_t i = 0; i + 1 < components.size(); ++i) {
    SOLROS_CO_ASSIGN_OR_RETURN(ino, co_await DirLookup(ino, components[i]));
  }
  ResolvedParent result;
  result.parent_ino = ino;
  result.leaf = components.back();
  co_return result;
}

Task<Result<uint64_t>> SolrosFs::Create(const std::string& path) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_ASSIGN_OR_RETURN(ResolvedParent rp, co_await ResolveParent(path));
  auto existing = co_await DirLookup(rp.parent_ino, rp.leaf);
  if (existing.ok()) {
    co_return AlreadyExistsError(path);
  }
  if (existing.code() != ErrorCode::kNotFound) {
    co_return existing.status();
  }
  SOLROS_CO_ASSIGN_OR_RETURN(uint64_t ino, AllocInode());
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * inode, co_await GetInode(ino));
  inode->mode = kModeFile;
  inode->nlink = 1;
  inode->mtime = NowNs();
  MarkInodeDirty(ino);
  SOLROS_CO_RETURN_IF_ERROR(
      co_await DirAdd(rp.parent_ino, rp.leaf, ino, kModeFile >> 12));
  SOLROS_CO_RETURN_IF_ERROR(co_await FlushMetadata());
  co_return ino;
}

Task<Result<uint64_t>> SolrosFs::Lookup(const std::string& path) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  co_return co_await ResolvePath(path);
}

Task<Status> SolrosFs::Mkdir(const std::string& path) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_ASSIGN_OR_RETURN(ResolvedParent rp, co_await ResolveParent(path));
  auto existing = co_await DirLookup(rp.parent_ino, rp.leaf);
  if (existing.ok()) {
    co_return AlreadyExistsError(path);
  }
  if (existing.code() != ErrorCode::kNotFound) {
    co_return existing.status();
  }
  SOLROS_CO_ASSIGN_OR_RETURN(uint64_t ino, AllocInode());
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * inode, co_await GetInode(ino));
  inode->mode = kModeDir;
  inode->nlink = 2;
  inode->mtime = NowNs();
  MarkInodeDirty(ino);
  SOLROS_CO_RETURN_IF_ERROR(
      co_await DirAdd(rp.parent_ino, rp.leaf, ino, kModeDir >> 12));
  co_return co_await FlushMetadata();
}

Task<Status> SolrosFs::Unlink(const std::string& path) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_ASSIGN_OR_RETURN(ResolvedParent rp, co_await ResolveParent(path));
  SOLROS_CO_ASSIGN_OR_RETURN(uint64_t ino,
                          co_await DirLookup(rp.parent_ino, rp.leaf));
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * inode, co_await GetInode(ino));
  if (inode->IsDir()) {
    co_return InvalidArgumentError("unlink on directory (use rmdir)");
  }
  SOLROS_CO_RETURN_IF_ERROR(co_await DirRemove(rp.parent_ino, rp.leaf));
  if (--inode->nlink == 0) {
    SOLROS_CO_ASSIGN_OR_RETURN(std::vector<FsExtent> extents,
                            co_await LoadExtents(*inode));
    for (const FsExtent& e : extents) {
      FreeBlocks(e);
    }
    if (inode->indirect_block != 0) {
      FreeBlocks(FsExtent{inode->indirect_block, 1, 0});
    }
    FreeInode(ino);
  } else {
    MarkInodeDirty(ino);
  }
  co_return co_await FlushMetadata();
}

Task<Status> SolrosFs::Rmdir(const std::string& path) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_ASSIGN_OR_RETURN(ResolvedParent rp, co_await ResolveParent(path));
  SOLROS_CO_ASSIGN_OR_RETURN(uint64_t ino,
                          co_await DirLookup(rp.parent_ino, rp.leaf));
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * inode, co_await GetInode(ino));
  if (!inode->IsDir()) {
    co_return InvalidArgumentError("rmdir on non-directory");
  }
  SOLROS_CO_ASSIGN_OR_RETURN(bool empty, co_await DirIsEmpty(ino));
  if (!empty) {
    co_return FailedPreconditionError("directory not empty");
  }
  SOLROS_CO_RETURN_IF_ERROR(co_await DirRemove(rp.parent_ino, rp.leaf));
  SOLROS_CO_ASSIGN_OR_RETURN(std::vector<FsExtent> extents,
                          co_await LoadExtents(*inode));
  for (const FsExtent& e : extents) {
    FreeBlocks(e);
  }
  if (inode->indirect_block != 0) {
    FreeBlocks(FsExtent{inode->indirect_block, 1, 0});
  }
  FreeInode(ino);
  co_return co_await FlushMetadata();
}

Task<Status> SolrosFs::Rename(const std::string& from, const std::string& to) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_ASSIGN_OR_RETURN(ResolvedParent src, co_await ResolveParent(from));
  SOLROS_CO_ASSIGN_OR_RETURN(ResolvedParent dst, co_await ResolveParent(to));
  SOLROS_CO_ASSIGN_OR_RETURN(uint64_t ino,
                          co_await DirLookup(src.parent_ino, src.leaf));
  auto existing = co_await DirLookup(dst.parent_ino, dst.leaf);
  if (existing.ok()) {
    co_return AlreadyExistsError(to);
  }
  if (existing.code() != ErrorCode::kNotFound) {
    co_return existing.status();
  }
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * inode, co_await GetInode(ino));
  uint8_t type = static_cast<uint8_t>(inode->mode >> 12);
  SOLROS_CO_RETURN_IF_ERROR(co_await DirRemove(src.parent_ino, src.leaf));
  SOLROS_CO_RETURN_IF_ERROR(co_await DirAdd(dst.parent_ino, dst.leaf, ino, type));
  co_return co_await FlushMetadata();
}

Task<Result<std::vector<DirEntry>>> SolrosFs::Readdir(
    const std::string& path) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_ASSIGN_OR_RETURN(uint64_t ino, co_await ResolvePath(path));
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * dir, co_await GetInode(ino));
  if (!dir->IsDir()) {
    co_return InvalidArgumentError("not a directory: " + path);
  }
  std::vector<DirEntry> out;
  std::vector<uint8_t> block(kFsBlockSize);
  for (uint64_t off = 0; off < dir->size; off += kFsBlockSize) {
    SOLROS_CO_ASSIGN_OR_RETURN(uint64_t n, co_await ReadAt(ino, off, block));
    uint32_t count = static_cast<uint32_t>(n / sizeof(Dirent));
    for (uint32_t i = 0; i < count; ++i) {
      Dirent entry;
      std::memcpy(&entry, block.data() + i * sizeof(Dirent), sizeof(Dirent));
      if (entry.ino != 0) {
        DirEntry row;
        row.ino = entry.ino;
        row.name = entry.Name();
        row.is_dir = entry.type == (kModeDir >> 12);
        out.push_back(std::move(row));
      }
    }
  }
  co_return out;
}

Task<Result<FileStat>> SolrosFs::Stat(const std::string& path) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_ASSIGN_OR_RETURN(uint64_t ino, co_await ResolvePath(path));
  co_return co_await StatInode(ino);
}

Task<Result<FileStat>> SolrosFs::StatInode(uint64_t ino) {
  SOLROS_CO_RETURN_IF_ERROR(CheckMounted());
  SOLROS_CO_ASSIGN_OR_RETURN(DiskInode * inode, co_await GetInode(ino));
  FileStat stat;
  stat.ino = ino;
  stat.size = inode->size;
  stat.mtime = inode->mtime;
  stat.mode = inode->mode;
  stat.nlink = inode->nlink;
  stat.extent_count = inode->extent_count;
  co_return stat;
}

}  // namespace solros
