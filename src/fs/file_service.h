// The data-plane view of a file service.
//
// Every configuration the paper evaluates implements this interface, so the
// benchmarks and applications can swap them freely:
//  * FsStub        — Solros: thin RPC stub -> control-plane proxy (§4.3)
//  * PhiLocalFs    — co-processor-centric baseline: the full file system
//                    runs on the Phi over a virtio-style remote block device
//  * NfsClientFs   — NFS-style baseline: per-call RPC to the host FS with
//                    chunked data transfer over the Phi's TCP stack
//  * HostLocalFs   — the host upper bound: full FS on fast cores, data
//                    lands in host memory
//
// Data-carrying calls use MemRef targets (the zero-copy "physical address"
// convention): the caller owns a DeviceBuffer on its own device and the
// service moves bytes into/out of it, charging whatever its architecture
// actually costs.
#ifndef SOLROS_SRC_FS_FILE_SERVICE_H_
#define SOLROS_SRC_FS_FILE_SERVICE_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/fs/layout.h"
#include "src/hw/memory.h"
#include "src/sim/task.h"

namespace solros {

class FileService {
 public:
  virtual ~FileService() = default;

  virtual Task<Result<uint64_t>> Open(const std::string& path) = 0;
  virtual Task<Result<uint64_t>> Create(const std::string& path) = 0;
  // Returns bytes transferred; `target`/`source` length bounds the I/O.
  virtual Task<Result<uint64_t>> Read(uint64_t ino, uint64_t offset,
                                      MemRef target) = 0;
  virtual Task<Result<uint64_t>> Write(uint64_t ino, uint64_t offset,
                                       MemRef source) = 0;
  virtual Task<Result<FileStat>> Stat(const std::string& path) = 0;
  virtual Task<Status> Unlink(const std::string& path) = 0;
  virtual Task<Status> Mkdir(const std::string& path) = 0;
  virtual Task<Status> Rmdir(const std::string& path) = 0;
  virtual Task<Status> Rename(const std::string& from,
                              const std::string& to) = 0;
  virtual Task<Result<std::vector<DirEntry>>> Readdir(
      const std::string& path) = 0;
  virtual Task<Status> Truncate(uint64_t ino, uint64_t size) = 0;
  virtual Task<Status> Fsync(uint64_t ino) = 0;
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_FILE_SERVICE_H_
