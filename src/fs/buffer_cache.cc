#include "src/fs/buffer_cache.h"

#include <cstring>

#include "src/base/logging.h"

namespace solros {

BufferCache::BufferCache(BlockStore* backing, DeviceId arena_device,
                         size_t capacity_blocks)
    : backing_(backing),
      capacity_(capacity_blocks),
      block_size_(backing->block_size()),
      arena_(arena_device, capacity_blocks * backing->block_size()) {
  CHECK_GT(capacity_blocks, 0u);
  free_slots_.reserve(capacity_blocks);
  for (size_t i = 0; i < capacity_blocks; ++i) {
    free_slots_.push_back(capacity_blocks - 1 - i);
  }
}

MemRef BufferCache::SlotRef(size_t slot) {
  return MemRef::Of(arena_, slot * block_size_, block_size_);
}

Task<Status> BufferCache::EvictOne() {
  CHECK(!lru_.empty());
  uint64_t victim = lru_.back();
  auto it = map_.find(victim);
  CHECK(it != map_.end());
  if (it->second.dirty) {
    SOLROS_CO_RETURN_IF_ERROR(
        co_await backing_->Write(victim, 1, SlotRef(it->second.slot).span()));
  }
  free_slots_.push_back(it->second.slot);
  lru_.pop_back();
  map_.erase(it);
  ++evictions_;
  co_return OkStatus();
}

Task<Result<MemRef>> BufferCache::GetBlock(uint64_t lba) {
  auto it = map_.find(lba);
  if (it != map_.end()) {
    ++hits_;
    lru_.erase(it->second.lru_it);
    lru_.push_front(lba);
    it->second.lru_it = lru_.begin();
    co_return SlotRef(it->second.slot);
  }
  ++misses_;
  if (free_slots_.empty()) {
    SOLROS_CO_RETURN_IF_ERROR(co_await EvictOne());
  }
  size_t slot = free_slots_.back();
  free_slots_.pop_back();
  MemRef ref = SlotRef(slot);
  SOLROS_CO_RETURN_IF_ERROR(co_await backing_->Read(lba, 1, ref.span()));
  // Another task may have faulted the same block while we were reading
  // (the backing Read suspends); keep the established page and return our
  // slot to the free list.
  auto raced = map_.find(lba);
  if (raced != map_.end()) {
    free_slots_.push_back(slot);
    co_return SlotRef(raced->second.slot);
  }
  lru_.push_front(lba);
  Page page;
  page.lba = lba;
  page.slot = slot;
  page.lru_it = lru_.begin();
  map_.emplace(lba, page);
  co_return ref;
}

Task<Status> BufferCache::InsertClean(uint64_t lba,
                                      std::span<const uint8_t> content) {
  if (content.size() < block_size_) {
    co_return InvalidArgumentError("short page content");
  }
  if (map_.find(lba) != map_.end()) {
    co_return OkStatus();
  }
  if (free_slots_.empty()) {
    SOLROS_CO_RETURN_IF_ERROR(co_await EvictOne());
  }
  // EvictOne may suspend (dirty writeback); re-check for a racing insert.
  if (map_.find(lba) != map_.end()) {
    co_return OkStatus();
  }
  size_t slot = free_slots_.back();
  free_slots_.pop_back();
  std::memcpy(SlotRef(slot).span().data(), content.data(), block_size_);
  lru_.push_front(lba);
  Page page;
  page.lba = lba;
  page.slot = slot;
  page.lru_it = lru_.begin();
  map_.emplace(lba, page);
  co_return OkStatus();
}

void BufferCache::MarkDirty(uint64_t lba) {
  auto it = map_.find(lba);
  CHECK(it != map_.end()) << "MarkDirty on uncached block " << lba;
  it->second.dirty = true;
}

Task<Status> BufferCache::ReadThrough(uint64_t lba, uint32_t nblocks,
                                      std::span<uint8_t> out) {
  if (out.size() < uint64_t{nblocks} * block_size_) {
    co_return InvalidArgumentError("span too short");
  }
  for (uint32_t i = 0; i < nblocks; ++i) {
    SOLROS_CO_ASSIGN_OR_RETURN(MemRef page, co_await GetBlock(lba + i));
    std::memcpy(out.data() + uint64_t{i} * block_size_, page.span().data(),
                block_size_);
  }
  co_return OkStatus();
}

Task<Status> BufferCache::WriteThrough(uint64_t lba, uint32_t nblocks,
                                       std::span<const uint8_t> in) {
  if (in.size() < uint64_t{nblocks} * block_size_) {
    co_return InvalidArgumentError("span too short");
  }
  for (uint32_t i = 0; i < nblocks; ++i) {
    SOLROS_CO_ASSIGN_OR_RETURN(MemRef page, co_await GetBlock(lba + i));
    std::memcpy(page.span().data(), in.data() + uint64_t{i} * block_size_,
                block_size_);
    MarkDirty(lba + i);
  }
  co_return OkStatus();
}

void BufferCache::Invalidate(uint64_t lba) {
  auto it = map_.find(lba);
  if (it == map_.end()) {
    return;
  }
  free_slots_.push_back(it->second.slot);
  lru_.erase(it->second.lru_it);
  map_.erase(it);
}

void BufferCache::InvalidateRange(uint64_t lba, uint64_t nblocks) {
  for (uint64_t i = 0; i < nblocks; ++i) {
    Invalidate(lba + i);
  }
}

bool BufferCache::Contains(uint64_t lba) const {
  return map_.find(lba) != map_.end();
}

Task<Status> BufferCache::Flush() {
  for (auto& [lba, page] : map_) {
    if (page.dirty) {
      SOLROS_CO_RETURN_IF_ERROR(
          co_await backing_->Write(lba, 1, SlotRef(page.slot).span()));
      page.dirty = false;
    }
  }
  co_return co_await backing_->Flush();
}

}  // namespace solros
