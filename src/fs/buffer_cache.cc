#include "src/fs/buffer_cache.h"

#include <algorithm>
#include <cstring>

#include "src/base/logging.h"
#include "src/fs/io_scheduler.h"
#include "src/sim/simulator.h"

namespace solros {

namespace {

size_t ProtectedCap(const BufferCacheOptions& options, size_t capacity) {
  if (!options.scan_resistant || capacity < 2) {
    return 0;
  }
  auto cap = static_cast<size_t>(static_cast<double>(capacity) *
                                 options.protected_fraction);
  return std::clamp<size_t>(cap, 1, capacity - 1);
}

}  // namespace

Task<Status> BufferCache::BackingRead(uint64_t lba, uint32_t nblocks,
                                      std::span<uint8_t> out) {
  if (sched_ != nullptr) {
    co_return co_await sched_->Read(lba, nblocks, out, IoClass::kDemand);
  }
  co_return co_await backing_->Read(lba, nblocks, out);
}

Task<Status> BufferCache::BackingWrite(uint64_t lba, uint32_t nblocks,
                                       std::span<const uint8_t> in) {
  if (sched_ != nullptr) {
    co_return co_await sched_->Write(lba, nblocks, in, IoClass::kWriteback);
  }
  co_return co_await backing_->Write(lba, nblocks, in);
}

Task<Status> BufferCache::BackingWriteV(std::span<const ConstBlockRun> runs,
                                        bool coalesce) {
  if (sched_ != nullptr) {
    // The scheduler applies its own coalescing policy for the round.
    co_return co_await sched_->WriteV(runs, IoClass::kWriteback);
  }
  co_return co_await backing_->WriteV(runs, coalesce);
}

BufferCache::BufferCache(BlockStore* backing, DeviceId arena_device,
                         size_t capacity_blocks,
                         const BufferCacheOptions& options)
    : backing_(backing),
      capacity_(capacity_blocks),
      block_size_(backing->block_size()),
      options_(options),
      protected_cap_(ProtectedCap(options, capacity_blocks)),
      arena_(arena_device, capacity_blocks * backing->block_size()) {
  CHECK_GT(capacity_blocks, 0u);
  free_slots_.reserve(capacity_blocks);
  for (size_t i = 0; i < capacity_blocks; ++i) {
    free_slots_.push_back(capacity_blocks - 1 - i);
  }
  MetricRegistry& registry = MetricRegistry::Default();
  hits_ = registry.GetCounter("cache.hits");
  misses_ = registry.GetCounter("cache.misses");
  evictions_ = registry.GetCounter("cache.evictions");
  readahead_hits_ = registry.GetCounter("cache.readahead_hits");
  readahead_blocks_ = registry.GetCounter("cache.readahead_blocks");
  writeback_coalesced_blocks_ =
      registry.GetCounter("cache.writeback_coalesced_blocks");
  writeback_runs_ = registry.GetCounter("cache.writeback_runs");
  probation_gauge_ = registry.GetGauge("cache.probation_pages");
  protected_gauge_ = registry.GetGauge("cache.protected_pages");
  dirty_gauge_ = registry.GetGauge("cache.dirty_pages");
}

void BufferCache::set_telemetry(Simulator* sim, const std::string& series) {
  if (sim == nullptr || sim->telemetry() == nullptr) {
    return;
  }
  telemetry_sim_ = sim;
  use_ = sim->telemetry()->GetSeries(series);
}

bool BufferCache::OverlapsInflight(uint64_t lba, uint64_t nblocks) const {
  if (inflight_.empty() || nblocks == 0) {
    return false;
  }
  uint64_t last = lba + nblocks - 1;
  for (const InflightWriteback& w : inflight_) {
    if (w.lo <= last && w.hi >= lba) {
      return true;
    }
  }
  return false;
}

Task<void> BufferCache::WaitInflightChange() {
  if (inflight_cond_ == nullptr) {
    inflight_cond_ = std::make_unique<Condition>(co_await CurrentSimulator());
  }
  co_await inflight_cond_->Wait();
}

Task<void> BufferCache::AwaitInflight(uint64_t lba, uint64_t nblocks) {
  while (OverlapsInflight(lba, nblocks)) {
    co_await WaitInflightChange();
  }
}

Task<void> BufferCache::AwaitAllInflight() {
  while (!inflight_.empty()) {
    co_await WaitInflightChange();
  }
}

void BufferCache::NotifyInflight() {
  if (inflight_cond_ != nullptr) {
    inflight_cond_->NotifyAll();
  }
}

MemRef BufferCache::SlotRef(size_t slot) {
  return MemRef::Of(arena_, slot * block_size_, block_size_);
}

void BufferCache::SetDirty(Page& page, bool dirty) {
  if (page.dirty == dirty) {
    return;
  }
  page.dirty = dirty;
  dirty_count_ += dirty ? 1 : -1;
  dirty_gauge_->Set(static_cast<int64_t>(dirty_count_));
  if (use_ != nullptr) {
    use_->QueueDelta(telemetry_sim_->now(), dirty ? +1 : -1);
  }
}

void BufferCache::UpdateGauges() {
  probation_gauge_->Set(static_cast<int64_t>(probation_.size()));
  protected_gauge_->Set(static_cast<int64_t>(protected_.size()));
}

void BufferCache::LinkNew(Page& page) {
  probation_.push_front(page.lba);
  page.segment = Segment::kProbation;
  page.lru_it = probation_.begin();
}

void BufferCache::Unlink(const Page& page) {
  SegmentList(page.segment).erase(page.lru_it);
}

void BufferCache::TouchHit(Page& page, bool promote) {
  if (!options_.scan_resistant) {
    probation_.splice(probation_.begin(), probation_, page.lru_it);
    page.lru_it = probation_.begin();
    return;
  }
  if (page.segment == Segment::kProtected) {
    protected_.splice(protected_.begin(), protected_, page.lru_it);
    page.lru_it = protected_.begin();
    return;
  }
  if (!promote) {
    // First real reference to a readahead page: refresh recency only. A
    // sequential scan consumes each prefetched page exactly once, so
    // counting that touch as reuse would promote the whole stream and
    // flush the protected segment.
    probation_.splice(probation_.begin(), probation_, page.lru_it);
    page.lru_it = probation_.begin();
    return;
  }
  // Second touch: promote probation -> protected.
  probation_.erase(page.lru_it);
  protected_.push_front(page.lba);
  page.segment = Segment::kProtected;
  page.lru_it = protected_.begin();
  if (protected_.size() > protected_cap_) {
    // Demote the protected tail back to probation (most-recent end, so it
    // still outlives a concurrent scan's churn).
    uint64_t demoted = protected_.back();
    auto it = map_.find(demoted);
    CHECK(it != map_.end());
    protected_.pop_back();
    probation_.push_front(demoted);
    it->second.segment = Segment::kProbation;
    it->second.lru_it = probation_.begin();
  }
}

BufferCache::WritebackPlan BufferCache::PlanWriteback(
    std::vector<uint64_t> lbas) {
  WritebackPlan plan;
  plan.lbas = std::move(lbas);
  plan.scratch.resize(plan.lbas.size() * block_size_);
  // Snapshot contents and clear dirty bits before any suspension: a page
  // re-dirtied mid-flight stays dirty (its new bytes get a later
  // write-back) and a concurrently evicted/reused slot cannot corrupt the
  // in-flight write.
  for (size_t i = 0; i < plan.lbas.size(); ++i) {
    auto it = map_.find(plan.lbas[i]);
    CHECK(it != map_.end());
    std::memcpy(plan.scratch.data() + i * block_size_,
                SlotRef(it->second.slot).span().data(), block_size_);
    SetDirty(it->second, false);
  }
  size_t i = 0;
  while (i < plan.lbas.size()) {
    size_t j = i + 1;
    if (options_.coalesced_writeback) {
      while (j < plan.lbas.size() && plan.lbas[j] == plan.lbas[j - 1] + 1) {
        ++j;
      }
    }
    plan.runs.push_back(ConstBlockRun{
        plan.lbas[i], static_cast<uint32_t>(j - i),
        std::span<const uint8_t>(plan.scratch.data() + i * block_size_,
                                 (j - i) * block_size_)});
    i = j;
  }
  return plan;
}

Task<Status> BufferCache::WritebackRuns(WritebackPlan plan) {
  if (plan.lbas.empty()) {
    co_return OkStatus();
  }
  writeback_runs_->Increment(plan.runs.size());
  if (options_.coalesced_writeback) {
    writeback_coalesced_blocks_->Increment(plan.lbas.size());
  }
  auto inflight = inflight_.insert(
      inflight_.end(),
      InflightWriteback{plan.lbas.front(), plan.lbas.back()});
  Status status = co_await BackingWriteV(
      plan.runs, options_.coalesced_writeback && options_.coalesce_nvme);
  inflight_.erase(inflight);
  NotifyInflight();
  if (!status.ok()) {
    // Put the pages back on the dirty list so a later flush retries them.
    for (uint64_t lba : plan.lbas) {
      auto it = map_.find(lba);
      if (it != map_.end()) {
        SetDirty(it->second, true);
      }
    }
  }
  co_return status;
}

Task<Status> BufferCache::EvictOne() {
  CHECK(!(probation_.empty() && protected_.empty()));
  std::list<uint64_t>& list = probation_.empty() ? protected_ : probation_;
  uint64_t victim = list.back();
  auto it = map_.find(victim);
  CHECK(it != map_.end());
  if (it->second.dirty) {
    if (OverlapsInflight(victim, 1)) {
      // An older snapshot of this page is already on its way to the device;
      // submitting the new bytes now would race it (the device gives no
      // ordering across submissions). Wait it out; the caller's eviction
      // loop retries.
      co_await AwaitInflight(victim, 1);
      co_return OkStatus();
    }
    if (options_.coalesced_writeback) {
      // Gather the LBA-contiguous dirty cluster around the victim so one
      // eviction absorbs its neighbours' write-back too. Neighbours with an
      // older snapshot still in flight stay out (same ordering rule as
      // above).
      uint64_t lo = victim;
      uint64_t hi = victim;
      uint32_t count = 1;
      while (count < options_.writeback_max_batch && lo > 0) {
        auto p = map_.find(lo - 1);
        if (p == map_.end() || !p->second.dirty || OverlapsInflight(lo - 1, 1))
          break;
        --lo;
        ++count;
      }
      while (count < options_.writeback_max_batch) {
        auto p = map_.find(hi + 1);
        if (p == map_.end() || !p->second.dirty || OverlapsInflight(hi + 1, 1))
          break;
        ++hi;
        ++count;
      }
      std::vector<uint64_t> lbas;
      lbas.reserve(count);
      for (uint64_t lba = lo; lba <= hi; ++lba) {
        lbas.push_back(lba);
      }
      SOLROS_CO_RETURN_IF_ERROR(
          co_await WritebackRuns(PlanWriteback(std::move(lbas))));
    } else {
      // Clear the dirty bit before suspending so a mid-flight overwrite
      // re-marks the page and is detected below instead of being dropped.
      SetDirty(it->second, false);
      auto inflight = inflight_.insert(inflight_.end(),
                                       InflightWriteback{victim, victim});
      Status status = co_await BackingWrite(
          victim, 1, SlotRef(it->second.slot).span());
      inflight_.erase(inflight);
      NotifyInflight();
      if (!status.ok()) {
        if (auto retry = map_.find(victim); retry != map_.end()) {
          SetDirty(retry->second, true);
        }
        co_return status;
      }
    }
    // The write-back suspended; re-resolve the victim, which may have been
    // invalidated (slot already freed), touched, or re-dirtied meanwhile.
    it = map_.find(victim);
    if (it == map_.end()) {
      co_return OkStatus();
    }
    if (it->second.dirty) {
      // Re-dirtied mid-flight: the cached bytes are newer than what just
      // reached the device. Keep the page for a later write-back; the
      // caller's eviction loop picks another victim.
      co_return OkStatus();
    }
  }
  free_slots_.push_back(it->second.slot);
  Unlink(it->second);
  map_.erase(it);
  evictions_->Increment();
  ++local_evictions_;
  UpdateGauges();
  co_return OkStatus();
}

Task<Result<MemRef>> BufferCache::GetBlock(uint64_t lba) {
  if (use_ != nullptr) {
    use_->CompleteOp(telemetry_sim_->now(), 0);
  }
  auto it = map_.find(lba);
  if (it != map_.end()) {
    hits_->Increment();
    ++local_hits_;
    bool was_readahead = it->second.readahead;
    if (was_readahead) {
      readahead_hits_->Increment();
      ++local_readahead_hits_;
      it->second.readahead = false;
    }
    // A readahead page's first demand hit is its first reference, not a
    // reuse — it must not promote (see TouchHit).
    TouchHit(it->second, /*promote=*/!was_readahead);
    UpdateGauges();
    co_return SlotRef(it->second.slot);
  }
  misses_->Increment();
  ++local_misses_;
  while (free_slots_.empty()) {
    SOLROS_CO_RETURN_IF_ERROR(co_await EvictOne());
  }
  size_t slot = free_slots_.back();
  free_slots_.pop_back();
  MemRef ref = SlotRef(slot);
  SOLROS_CO_RETURN_IF_ERROR(co_await BackingRead(lba, 1, ref.span()));
  // Another task may have faulted the same block while we were reading
  // (the backing Read suspends); keep the established page and return our
  // slot to the free list.
  auto raced = map_.find(lba);
  if (raced != map_.end()) {
    free_slots_.push_back(slot);
    co_return SlotRef(raced->second.slot);
  }
  Page page;
  page.lba = lba;
  page.slot = slot;
  LinkNew(page);
  map_.emplace(lba, page);
  UpdateGauges();
  co_return ref;
}

Task<Status> BufferCache::InsertLocked(uint64_t lba,
                                       std::span<const uint8_t> content,
                                       bool dirty, bool readahead) {
  if (content.size() < block_size_) {
    co_return InvalidArgumentError("short page content");
  }
  auto it = map_.find(lba);
  if (it == map_.end() && free_slots_.empty()) {
    SOLROS_CO_RETURN_IF_ERROR(co_await EvictOne());
    // EvictOne may suspend (dirty writeback); re-check for a racing insert.
    it = map_.find(lba);
  }
  if (it != map_.end()) {
    if (dirty) {
      // Full-block overwrite of the established page.
      std::memcpy(SlotRef(it->second.slot).span().data(), content.data(),
                  block_size_);
      it->second.readahead = false;
      SetDirty(it->second, true);
      TouchHit(it->second);
      UpdateGauges();
    }
    co_return OkStatus();
  }
  if (free_slots_.empty()) {
    // A racing insert consumed the slot EvictOne freed; make another.
    while (free_slots_.empty()) {
      SOLROS_CO_RETURN_IF_ERROR(co_await EvictOne());
    }
    if (auto raced = map_.find(lba); raced != map_.end()) {
      if (dirty) {
        std::memcpy(SlotRef(raced->second.slot).span().data(), content.data(),
                    block_size_);
        raced->second.readahead = false;
        SetDirty(raced->second, true);
      }
      co_return OkStatus();
    }
  }
  size_t slot = free_slots_.back();
  free_slots_.pop_back();
  std::memcpy(SlotRef(slot).span().data(), content.data(), block_size_);
  Page page;
  page.lba = lba;
  page.slot = slot;
  page.readahead = readahead;
  LinkNew(page);
  auto [inserted, ok] = map_.emplace(lba, page);
  CHECK(ok);
  if (dirty) {
    SetDirty(inserted->second, true);
  }
  if (readahead) {
    readahead_blocks_->Increment();
  }
  UpdateGauges();
  co_return OkStatus();
}

Task<Status> BufferCache::InsertClean(uint64_t lba,
                                      std::span<const uint8_t> content,
                                      bool readahead) {
  co_return co_await InsertLocked(lba, content, /*dirty=*/false, readahead);
}

Task<Status> BufferCache::InsertDirty(uint64_t lba,
                                      std::span<const uint8_t> content) {
  co_return co_await InsertLocked(lba, content, /*dirty=*/true,
                                  /*readahead=*/false);
}

void BufferCache::MarkDirty(uint64_t lba) {
  auto it = map_.find(lba);
  CHECK(it != map_.end()) << "MarkDirty on uncached block " << lba;
  SetDirty(it->second, true);
}

Task<Status> BufferCache::ReadThrough(uint64_t lba, uint32_t nblocks,
                                      std::span<uint8_t> out) {
  if (out.size() < uint64_t{nblocks} * block_size_) {
    co_return InvalidArgumentError("span too short");
  }
  for (uint32_t i = 0; i < nblocks; ++i) {
    SOLROS_CO_ASSIGN_OR_RETURN(MemRef page, co_await GetBlock(lba + i));
    std::memcpy(out.data() + uint64_t{i} * block_size_, page.span().data(),
                block_size_);
  }
  co_return OkStatus();
}

Task<Status> BufferCache::WriteThrough(uint64_t lba, uint32_t nblocks,
                                       std::span<const uint8_t> in) {
  if (in.size() < uint64_t{nblocks} * block_size_) {
    co_return InvalidArgumentError("span too short");
  }
  for (uint32_t i = 0; i < nblocks; ++i) {
    SOLROS_CO_ASSIGN_OR_RETURN(MemRef page, co_await GetBlock(lba + i));
    std::memcpy(page.span().data(), in.data() + uint64_t{i} * block_size_,
                block_size_);
    MarkDirty(lba + i);
  }
  co_return OkStatus();
}

void BufferCache::Invalidate(uint64_t lba) {
  auto it = map_.find(lba);
  if (it == map_.end()) {
    return;
  }
  SetDirty(it->second, false);
  free_slots_.push_back(it->second.slot);
  Unlink(it->second);
  map_.erase(it);
  UpdateGauges();
}

void BufferCache::InvalidateRange(uint64_t lba, uint64_t nblocks) {
  for (uint64_t i = 0; i < nblocks; ++i) {
    Invalidate(lba + i);
  }
}

bool BufferCache::Contains(uint64_t lba) const {
  return map_.find(lba) != map_.end();
}

Task<Status> BufferCache::Flush() {
  if (options_.coalesced_writeback) {
    // Loop until nothing is dirty AND nothing is in flight: waiting first
    // keeps us from racing a concurrent submission for the same LBAs, and
    // a failed in-flight write re-marks its pages dirty for the next pass.
    for (;;) {
      if (!inflight_.empty()) {
        co_await AwaitAllInflight();
        continue;
      }
      if (dirty_count_ == 0) {
        break;
      }
      std::vector<uint64_t> dirty;
      dirty.reserve(dirty_count_);
      for (const auto& [lba, page] : map_) {
        if (page.dirty) {
          dirty.push_back(lba);
        }
      }
      std::sort(dirty.begin(), dirty.end());
      SOLROS_CO_RETURN_IF_ERROR(
          co_await WritebackRuns(PlanWriteback(std::move(dirty))));
    }
    co_return co_await backing_->Flush();
  }
  co_await AwaitAllInflight();
  for (auto& [lba, page] : map_) {
    if (page.dirty) {
      SOLROS_CO_RETURN_IF_ERROR(
          co_await BackingWrite(lba, 1, SlotRef(page.slot).span()));
      SetDirty(page, false);
    }
  }
  co_return co_await backing_->Flush();
}

Task<Status> BufferCache::FlushRange(uint64_t lba, uint64_t nblocks) {
  if (nblocks == 0) {
    co_return OkStatus();
  }
  // Loop until the range is clean AND no overlapping write-back is still
  // in flight: PlanWriteback clears dirty bits at snapshot time, so "no
  // dirty pages" alone does not mean the device has the bytes yet — a P2P
  // read issued after a no-wait return here could see stale data. Waiting
  // before snapshotting also ensures we never submit a second write for an
  // LBA whose older snapshot is still in flight. Still a free no-op when
  // nothing overlapping is dirty or in flight.
  for (;;) {
    if (OverlapsInflight(lba, nblocks)) {
      co_await AwaitInflight(lba, nblocks);
      continue;
    }
    if (dirty_count_ == 0) {
      co_return OkStatus();
    }
    std::vector<uint64_t> dirty;
    if (nblocks < map_.size()) {
      for (uint64_t i = 0; i < nblocks; ++i) {
        auto it = map_.find(lba + i);
        if (it != map_.end() && it->second.dirty) {
          dirty.push_back(lba + i);
        }
      }
    } else {
      for (const auto& [cached, page] : map_) {
        if (page.dirty && cached >= lba && cached < lba + nblocks) {
          dirty.push_back(cached);
        }
      }
      std::sort(dirty.begin(), dirty.end());
    }
    if (dirty.empty()) {
      co_return OkStatus();
    }
    SOLROS_CO_RETURN_IF_ERROR(
        co_await WritebackRuns(PlanWriteback(std::move(dirty))));
  }
}

}  // namespace solros
