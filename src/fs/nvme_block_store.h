// BlockStore backed by the simulated NVMe device.
//
// Byte-span reads/writes (metadata, buffered data) stage through a host
// DeviceBuffer — that is the real data path of a host-side file system. The
// vectorized MemRef methods are the zero-copy path: the caller supplies the
// target memory (co-processor or host buffer-cache pages) and the NVMe DMA
// engine moves data directly, optionally coalescing the whole vector into
// one doorbell + one interrupt (§5's p2p_read/p2p_write ioctls).
#ifndef SOLROS_SRC_FS_NVME_BLOCK_STORE_H_
#define SOLROS_SRC_FS_NVME_BLOCK_STORE_H_

#include <vector>

#include "src/fs/block_store.h"
#include "src/fs/layout.h"
#include "src/hw/memory.h"
#include "src/hw/processor.h"
#include "src/nvme/nvme_device.h"
#include "src/sim/trace.h"

namespace solros {

class NvmeBlockStore : public BlockStore {
 public:
  // Bounded resubmission of failed/timed-out command batches. NVMe reads
  // and writes are idempotent (same bytes to the same LBAs), so the whole
  // batch is simply reissued. Only consulted while fault injection is
  // armed; fault-free runs submit exactly once.
  struct RetryPolicy {
    int max_attempts = 3;              // total attempts including the first
    Nanos backoff = Microseconds(50);  // first retry delay; doubles per retry
  };

  // `cpu` is the processor that submits commands (the control-plane host
  // CPU in Solros; only it may touch the device, §4).
  NvmeBlockStore(NvmeDevice* nvme, Processor* cpu);

  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // Durability model. Off (default): the device is treated as
  // write-through — every acknowledged write is already stable, Flush() is
  // a free no-op, and the seed's behaviour and bench output are unchanged.
  // On (the journaled configurations): acknowledged writes sit in the
  // device's volatile write buffer until a real NVMe Flush command drains
  // it, so Flush() costs device time and is what the journal's barriers
  // ride on.
  void set_volatile_write_cache(bool on) { volatile_write_cache_ = on; }
  bool volatile_write_cache() const { return volatile_write_cache_; }

  uint32_t block_size() const override;
  uint64_t block_count() const override;

  Task<Status> Read(uint64_t lba, uint32_t nblocks,
                    std::span<uint8_t> out) override;
  Task<Status> Write(uint64_t lba, uint32_t nblocks,
                     std::span<const uint8_t> in) override;
  Task<Status> Flush() override;

  // Vectored byte-span I/O: every run stages through one host DeviceBuffer
  // and becomes one NVMe command; the batch goes down in a single
  // SubmitWithRetry (one doorbell + one interrupt when `coalesce`). Used by
  // the buffer cache for readahead fills and coalesced write-back.
  Task<Status> ReadV(std::span<const BlockRun> runs, bool coalesce) override;
  Task<Status> WriteV(std::span<const ConstBlockRun> runs,
                      bool coalesce) override;

  // ReadV/WriteV with an originating trace context, so a scheduler batch's
  // device spans link back to the request that triggered the round.
  Task<Status> ReadRuns(std::span<const BlockRun> runs, bool coalesce,
                        TraceContext ctx = {});
  Task<Status> WriteRuns(std::span<const ConstBlockRun> runs, bool coalesce,
                         TraceContext ctx = {});

  // Zero-copy vectorized I/O: one (extent -> target sub-range) command per
  // extent; `coalesce` batches them under a single doorbell/interrupt.
  // `target.length` must equal the total extent bytes. `ctx` is the
  // originating request's trace context; the device batch span it causes
  // links back to it (untraced when zero).
  Task<Status> ReadExtents(const std::vector<FsExtent>& extents,
                           MemRef target, bool coalesce,
                           TraceContext ctx = {});
  Task<Status> WriteExtents(const std::vector<FsExtent>& extents,
                            MemRef source, bool coalesce,
                            TraceContext ctx = {});

  NvmeDevice* device() { return nvme_; }

 private:
  Task<Status> SubmitExtents(const std::vector<FsExtent>& extents,
                             MemRef memory, NvmeCommand::Op op, bool coalesce,
                             TraceContext ctx);
  // Submits `commands`, resubmitting the whole batch per RetryPolicy on
  // timeout or I/O error while faults are armed.
  Task<Status> SubmitWithRetry(std::vector<NvmeCommand> commands,
                               bool coalesce, TraceContext ctx = {});

  NvmeDevice* nvme_;
  Processor* cpu_;
  RetryPolicy retry_;
  bool volatile_write_cache_ = false;
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_NVME_BLOCK_STORE_H_
