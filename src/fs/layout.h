// On-disk layout of SolrosFS.
//
// SolrosFS is the extent-based, in-place-update file system that backs the
// control-plane file-system proxy. The paper runs its proxy over ext4/XFS
// and requires exactly two properties of the backing file system (§5):
// in-place updates (disk block addresses are stable under overwrite, so P2P
// is safe) and a fiemap-style offset -> disk-extent query. SolrosFS
// provides both from scratch.
//
// Disk layout (4 KiB blocks):
//
//   [ superblock | block bitmap | inode bitmap | inode table | data ... ]
//
// Inodes are 256 bytes: 12 direct extents plus one indirect extent block
// (256 further extents), i.e. up to 268 extents per file. The allocator
// favours large contiguous extents, which keeps fiemap vectors short — the
// property that lets the proxy coalesce a whole read into one NVMe I/O
// vector (§5, "Optimized NVMe device driver").
#ifndef SOLROS_SRC_FS_LAYOUT_H_
#define SOLROS_SRC_FS_LAYOUT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace solros {

inline constexpr uint32_t kFsMagic = 0x501f05f5;  // "SOLrOSFS"
inline constexpr uint32_t kFsVersion = 1;
inline constexpr uint32_t kFsBlockSize = 4096;
inline constexpr uint32_t kInodeSize = 256;
inline constexpr uint32_t kInodesPerBlock = kFsBlockSize / kInodeSize;
inline constexpr int kDirectExtents = 12;
inline constexpr uint32_t kMaxFileName = 53;
inline constexpr uint64_t kRootInode = 1;
// Allocator cap on a single extent (1M blocks = 4 GiB), so one extent can
// cover the benchmarks' whole working file.
inline constexpr uint32_t kMaxExtentBlocks = 1u << 20;

// File type bits in DiskInode::mode.
inline constexpr uint32_t kModeFile = 0x8000;
inline constexpr uint32_t kModeDir = 0x4000;

struct SuperBlock {
  uint32_t magic;
  uint32_t version;
  uint32_t block_size;
  uint32_t reserved0;
  uint64_t total_blocks;
  uint64_t inode_count;
  uint64_t block_bitmap_start;
  uint64_t block_bitmap_blocks;
  uint64_t inode_bitmap_start;
  uint64_t inode_bitmap_blocks;
  uint64_t inode_table_start;
  uint64_t inode_table_blocks;
  uint64_t data_start;
  uint64_t free_blocks;
  uint64_t free_inodes;
  // Write-ahead journal region [journal_start, journal_start +
  // journal_blocks), placed between the inode table and the data region.
  // Zero on images formatted without a journal: the superblock block is
  // zero-filled before the struct is copied in, so pre-journal images read
  // these fields as 0 and mount exactly as before.
  uint64_t journal_start;
  uint64_t journal_blocks;
};
static_assert(sizeof(SuperBlock) <= kFsBlockSize);

// A run of physically contiguous blocks.
struct FsExtent {
  uint64_t start = 0;  // first block (absolute LBA in fs blocks)
  uint32_t len = 0;    // number of blocks
  uint32_t pad = 0;

  bool operator==(const FsExtent&) const = default;
};
static_assert(sizeof(FsExtent) == 16);

inline constexpr uint32_t kIndirectExtents = kFsBlockSize / sizeof(FsExtent);
inline constexpr uint32_t kMaxExtentsPerFile =
    kDirectExtents + kIndirectExtents;

struct DiskInode {
  uint32_t mode = 0;   // kModeFile / kModeDir (0 = free slot)
  uint32_t nlink = 0;
  uint64_t size = 0;   // bytes
  uint64_t mtime = 0;  // simulated nanoseconds
  uint32_t extent_count = 0;
  uint32_t flags = 0;
  FsExtent direct[kDirectExtents];
  uint64_t indirect_block = 0;  // 0 = none
  uint8_t reserved[24] = {};

  bool IsDir() const { return (mode & kModeDir) != 0; }
  bool IsFile() const { return (mode & kModeFile) != 0; }
  bool InUse() const { return mode != 0; }

  // Blocks covered by the inode's extents.
  uint64_t allocated_blocks() const {
    return allocated_blocks_cache;
  }
  // Kept on disk as padding-compatible cache would complicate things;
  // computed on load instead.
  uint64_t allocated_blocks_cache = 0;
};
// The in-memory struct carries one extra cached field; only the first
// kInodeSize bytes are (de)serialized.
static_assert(offsetof(DiskInode, allocated_blocks_cache) == kInodeSize);
static_assert(sizeof(DiskInode) > kInodeSize);

struct Dirent {
  uint64_t ino = 0;  // 0 = free slot
  uint8_t name_len = 0;
  uint8_t type = 0;  // kModeFile/kModeDir >> 12
  char name[kMaxFileName + 1] = {};

  std::string Name() const { return std::string(name, name_len); }
  void SetName(const std::string& n) {
    name_len = static_cast<uint8_t>(n.size());
    std::memset(name, 0, sizeof(name));
    std::memcpy(name, n.data(), n.size());
  }
};
static_assert(sizeof(Dirent) == 64);
inline constexpr uint32_t kDirentsPerBlock = kFsBlockSize / sizeof(Dirent);

// Result row of a Stat call.
struct FileStat {
  uint64_t ino = 0;
  uint64_t size = 0;
  uint64_t mtime = 0;
  uint32_t mode = 0;
  uint32_t nlink = 0;
  uint32_t extent_count = 0;
};

// Row of a Readdir listing.
struct DirEntry {
  uint64_t ino = 0;
  std::string name;
  bool is_dir = false;
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_LAYOUT_H_
