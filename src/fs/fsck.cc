#include "src/fs/fsck.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>

#include "src/fs/journal.h"
#include "src/fs/layout.h"

namespace solros {
namespace {

uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }
constexpr uint64_t kBitsPerBlock = uint64_t{kFsBlockSize} * 8;

bool BitGet(const std::vector<uint8_t>& bits, uint64_t index) {
  return (bits[index >> 3] >> (index & 7)) & 1;
}

// Per-code cap so a corrupted bitmap cannot spray thousands of identical
// findings; the suppressed tail is summarized at the end.
constexpr uint64_t kMaxFindingsPerCode = 8;

// What the inode scan remembers for the later directory walk.
struct InodeInfo {
  uint32_t mode = 0;
  uint32_t nlink = 0;
  uint64_t size = 0;
  std::vector<FsExtent> extents;
  uint64_t dirent_refs = 0;
};

class Checker {
 public:
  explicit Checker(BlockStore* store) : store_(store) {}

  Task<Status> Run() {
    SOLROS_CO_RETURN_IF_ERROR(co_await CheckSuper());
    if (fatal_) {
      Finish();
      co_return OkStatus();
    }
    SOLROS_CO_RETURN_IF_ERROR(co_await CheckJournalSuper());
    SOLROS_CO_RETURN_IF_ERROR(co_await LoadBitmaps());
    SOLROS_CO_RETURN_IF_ERROR(co_await ScanInodes());
    CheckBlockAccounting();
    SOLROS_CO_RETURN_IF_ERROR(co_await WalkNamespace());
    CheckLinkCounts();
    Finish();
    co_return OkStatus();
  }

  FsckReport report;

 private:
  void Add(const std::string& code, const std::string& message) {
    if (counts_[code]++ < kMaxFindingsPerCode) {
      report.findings.push_back(FsckFinding{code, message});
    }
  }

  void Finish() {
    for (const auto& [code, n] : counts_) {
      if (n > kMaxFindingsPerCode) {
        report.findings.push_back(FsckFinding{
            code, "... " + std::to_string(n - kMaxFindingsPerCode) +
                      " further findings suppressed (" + std::to_string(n) +
                      " total)"});
      }
    }
  }

  Task<Status> CheckSuper() {
    std::vector<uint8_t> block(kFsBlockSize);
    SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(0, 1, block));
    std::memcpy(&sb_, block.data(), sizeof(sb_));
    if (sb_.magic != kFsMagic || sb_.version != kFsVersion ||
        sb_.block_size != kFsBlockSize) {
      Add("super.bad-magic", "superblock magic/version/block-size invalid");
      fatal_ = true;
      co_return OkStatus();
    }
    // Geometry must be exactly what Format lays down: contiguous regions
    // in order, sized for the counts the superblock itself claims.
    bool ok = sb_.block_bitmap_start == 1 &&
              sb_.block_bitmap_blocks ==
                  CeilDiv(sb_.total_blocks, kBitsPerBlock) &&
              sb_.inode_bitmap_start ==
                  sb_.block_bitmap_start + sb_.block_bitmap_blocks &&
              sb_.inode_bitmap_blocks ==
                  CeilDiv(sb_.inode_count, kBitsPerBlock) &&
              sb_.inode_table_start ==
                  sb_.inode_bitmap_start + sb_.inode_bitmap_blocks &&
              sb_.inode_table_blocks ==
                  CeilDiv(sb_.inode_count, kInodesPerBlock);
    uint64_t after_table = sb_.inode_table_start + sb_.inode_table_blocks;
    if (sb_.journal_blocks != 0) {
      ok = ok && sb_.journal_start == after_table &&
           sb_.data_start == after_table + sb_.journal_blocks;
    } else {
      ok = ok && sb_.journal_start == 0 && sb_.data_start == after_table;
    }
    ok = ok && sb_.data_start < sb_.total_blocks &&
         sb_.total_blocks <= store_->block_count();
    if (!ok) {
      Add("super.bad-geometry", "superblock region layout inconsistent");
      fatal_ = true;
    }
    co_return OkStatus();
  }

  Task<Status> CheckJournalSuper() {
    if (sb_.journal_blocks == 0) {
      co_return OkStatus();
    }
    std::vector<uint8_t> block(kFsBlockSize);
    SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(sb_.journal_start, 1,
                                                    block));
    JournalSuper js;
    std::memcpy(&js, block.data(), sizeof(js));
    if (js.magic != kJournalSuperMagic || js.version != kJournalVersion ||
        js.capacity != sb_.journal_blocks - 1 || js.head >= js.capacity ||
        js.sequence == 0) {
      Add("journal.bad-super", "journal superblock invalid");
    }
    co_return OkStatus();
  }

  Task<Status> LoadBitmaps() {
    block_bitmap_.assign(sb_.block_bitmap_blocks * kFsBlockSize, 0);
    SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(
        sb_.block_bitmap_start,
        static_cast<uint32_t>(sb_.block_bitmap_blocks), block_bitmap_));
    inode_bitmap_.assign(sb_.inode_bitmap_blocks * kFsBlockSize, 0);
    SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(
        sb_.inode_bitmap_start,
        static_cast<uint32_t>(sb_.inode_bitmap_blocks), inode_bitmap_));
    // Every block below data_start belongs to the file system itself
    // (superblock, bitmaps, inode table, journal).
    refcount_.assign(sb_.total_blocks, 0);
    for (uint64_t b = 0; b < sb_.data_start; ++b) {
      refcount_[b] = 1;
    }
    co_return OkStatus();
  }

  void Reference(uint64_t block) {
    if (refcount_[block]++ == 0) {
      ++report.referenced_blocks;
    }
  }

  Task<Status> ScanInodes() {
    std::vector<uint8_t> table(kFsBlockSize);
    std::vector<uint8_t> indirect(kFsBlockSize);
    for (uint64_t tb = 0; tb < sb_.inode_table_blocks; ++tb) {
      SOLROS_CO_RETURN_IF_ERROR(
          co_await store_->Read(sb_.inode_table_start + tb, 1, table));
      for (uint32_t slot = 0; slot < kInodesPerBlock; ++slot) {
        uint64_t ino = tb * kInodesPerBlock + slot + 1;
        if (ino > sb_.inode_count) {
          break;
        }
        DiskInode inode = {};
        std::memcpy(&inode, table.data() + slot * kInodeSize, kInodeSize);
        bool marked = BitGet(inode_bitmap_, ino - 1);
        if (inode.mode == 0) {
          if (marked) {
            Add("inode.marked-but-free",
                "ino " + std::to_string(ino) +
                    " marked allocated but its slot is free");
          }
          continue;
        }
        if (!marked) {
          Add("inode.not-marked",
              "ino " + std::to_string(ino) +
                  " in use but free in the inode bitmap");
        }
        ++report.inodes_in_use;
        InodeInfo info;
        info.mode = inode.mode;
        info.nlink = inode.nlink;
        info.size = inode.size;
        if (inode.IsDir()) {
          ++report.dirs;
        } else if (inode.IsFile()) {
          ++report.files;
        } else {
          Add("inode.bad-mode", "ino " + std::to_string(ino) +
                                    " has mode " + std::to_string(inode.mode));
        }
        if (inode.extent_count > kMaxExtentsPerFile) {
          Add("inode.extent-overflow",
              "ino " + std::to_string(ino) + " claims " +
                  std::to_string(inode.extent_count) + " extents");
          inodes_[ino] = std::move(info);
          continue;
        }
        uint32_t direct =
            std::min<uint32_t>(inode.extent_count, kDirectExtents);
        for (uint32_t i = 0; i < direct; ++i) {
          info.extents.push_back(inode.direct[i]);
        }
        if (inode.extent_count > kDirectExtents) {
          if (inode.indirect_block == 0) {
            Add("inode.missing-indirect",
                "ino " + std::to_string(ino) +
                    " overflows direct extents with no indirect block");
          } else if (inode.indirect_block < sb_.data_start ||
                     inode.indirect_block >= sb_.total_blocks) {
            Add("inode.indirect-out-of-bounds",
                "ino " + std::to_string(ino) + " indirect block " +
                    std::to_string(inode.indirect_block));
          } else {
            Reference(inode.indirect_block);
            SOLROS_CO_RETURN_IF_ERROR(
                co_await store_->Read(inode.indirect_block, 1, indirect));
            for (uint32_t i = kDirectExtents; i < inode.extent_count; ++i) {
              FsExtent e;
              std::memcpy(&e,
                          indirect.data() +
                              (i - kDirectExtents) * sizeof(FsExtent),
                          sizeof(FsExtent));
              info.extents.push_back(e);
            }
          }
        } else if (inode.indirect_block != 0) {
          Add("inode.stray-indirect",
              "ino " + std::to_string(ino) +
                  " keeps an indirect block with only " +
                  std::to_string(inode.extent_count) + " extents");
        }
        uint64_t allocated = 0;
        for (const FsExtent& e : info.extents) {
          if (e.len == 0) {
            Add("inode.empty-extent",
                "ino " + std::to_string(ino) + " has a zero-length extent");
            continue;
          }
          if (e.start < sb_.data_start ||
              e.start + e.len > sb_.total_blocks) {
            Add("inode.extent-out-of-bounds",
                "ino " + std::to_string(ino) + " extent [" +
                    std::to_string(e.start) + ", +" + std::to_string(e.len) +
                    ")");
            continue;
          }
          for (uint64_t b = e.start; b < e.start + e.len; ++b) {
            Reference(b);
          }
          allocated += e.len;
        }
        if (inode.size > allocated * kFsBlockSize) {
          Add("inode.size-beyond-alloc",
              "ino " + std::to_string(ino) + " size " +
                  std::to_string(inode.size) + " exceeds " +
                  std::to_string(allocated) + " allocated blocks");
        }
        inodes_[ino] = std::move(info);
      }
    }
    co_return OkStatus();
  }

  void CheckBlockAccounting() {
    for (uint64_t b = 0; b < sb_.data_start; ++b) {
      if (!BitGet(block_bitmap_, b)) {
        Add("bitmap.meta-unmarked",
            "metadata block " + std::to_string(b) + " free in bitmap");
      }
    }
    for (uint64_t b = sb_.data_start; b < sb_.total_blocks; ++b) {
      bool marked = BitGet(block_bitmap_, b);
      uint32_t refs = refcount_[b];
      if (refs > 1) {
        Add("bitmap.double-alloc", "block " + std::to_string(b) +
                                       " referenced " + std::to_string(refs) +
                                       " times");
      }
      if (refs > 0 && !marked) {
        Add("bitmap.not-marked",
            "block " + std::to_string(b) + " referenced but free in bitmap");
      }
      if (refs == 0 && marked) {
        Add("bitmap.leak",
            "block " + std::to_string(b) + " marked but unreferenced");
      }
    }
    uint64_t free_blocks = 0;
    for (uint64_t b = 0; b < sb_.total_blocks; ++b) {
      free_blocks += BitGet(block_bitmap_, b) ? 0 : 1;
    }
    if (free_blocks != sb_.free_blocks) {
      Add("super.free-blocks-mismatch",
          "superblock says " + std::to_string(sb_.free_blocks) +
              " free blocks, bitmap has " + std::to_string(free_blocks));
    }
    uint64_t free_inodes = 0;
    for (uint64_t i = 0; i < sb_.inode_count; ++i) {
      free_inodes += BitGet(inode_bitmap_, i) ? 0 : 1;
    }
    if (free_inodes != sb_.free_inodes) {
      Add("super.free-inodes-mismatch",
          "superblock says " + std::to_string(sb_.free_inodes) +
              " free inodes, bitmap has " + std::to_string(free_inodes));
    }
  }

  // Reads the first `info.size` bytes of an inode through its extent list.
  Task<Result<std::vector<uint8_t>>> ReadContents(const InodeInfo& info) {
    std::vector<uint8_t> out(CeilDiv(info.size, kFsBlockSize) * kFsBlockSize);
    uint64_t blocks_needed = out.size() / kFsBlockSize;
    uint64_t filled = 0;
    for (const FsExtent& e : info.extents) {
      if (filled >= blocks_needed) {
        break;
      }
      if (e.len == 0 || e.start < sb_.data_start ||
          e.start + e.len > sb_.total_blocks) {
        continue;  // already reported by the inode scan
      }
      uint64_t n = std::min<uint64_t>(e.len, blocks_needed - filled);
      SOLROS_CO_RETURN_IF_ERROR(co_await store_->Read(
          e.start, static_cast<uint32_t>(n),
          {out.data() + filled * kFsBlockSize,
           static_cast<size_t>(n * kFsBlockSize)}));
      filled += n;
    }
    out.resize(info.size);
    co_return out;
  }

  Task<Status> WalkNamespace() {
    auto root = inodes_.find(kRootInode);
    if (root == inodes_.end() || (root->second.mode & kModeDir) == 0) {
      Add("root.invalid", "root inode missing or not a directory");
      co_return OkStatus();
    }
    std::deque<uint64_t> queue{kRootInode};
    std::map<uint64_t, bool> visited{{kRootInode, true}};
    while (!queue.empty()) {
      uint64_t dir_ino = queue.front();
      queue.pop_front();
      InodeInfo& dir = inodes_[dir_ino];
      SOLROS_CO_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                                 co_await ReadContents(dir));
      for (size_t off = 0; off + sizeof(Dirent) <= bytes.size();
           off += sizeof(Dirent)) {
        Dirent entry;
        std::memcpy(&entry, bytes.data() + off, sizeof(entry));
        if (entry.ino == 0) {
          continue;
        }
        ++report.dirents;
        std::string where = "dir ino " + std::to_string(dir_ino) +
                            " entry \"" + entry.Name() + "\"";
        if (entry.name_len > kMaxFileName) {
          Add("dirent.bad-name", where + " has oversized name");
        }
        if (entry.ino > sb_.inode_count) {
          Add("dirent.bad-ino",
              where + " points at invalid ino " + std::to_string(entry.ino));
          continue;
        }
        auto target = inodes_.find(entry.ino);
        if (target == inodes_.end()) {
          Add("dirent.dangling", where + " points at unallocated ino " +
                                     std::to_string(entry.ino));
          continue;
        }
        if (entry.type != static_cast<uint8_t>(target->second.mode >> 12)) {
          Add("dirent.type-mismatch",
              where + " type tag disagrees with ino " +
                  std::to_string(entry.ino));
        }
        ++target->second.dirent_refs;
        if ((target->second.mode & kModeDir) != 0) {
          if (!visited[entry.ino]) {
            visited[entry.ino] = true;
            queue.push_back(entry.ino);
          }
        }
      }
    }
    co_return OkStatus();
  }

  void CheckLinkCounts() {
    for (const auto& [ino, info] : inodes_) {
      if (ino == kRootInode) {
        if (info.nlink != 2) {
          Add("inode.bad-root-nlink",
              "root nlink " + std::to_string(info.nlink) + ", want 2");
        }
        continue;
      }
      if ((info.mode & kModeDir) != 0) {
        // SolrosFS directories have no "." / ".." entries; a directory is
        // linked from exactly one parent and keeps nlink == 2.
        if (info.dirent_refs == 0) {
          Add("inode.unreachable",
              "dir ino " + std::to_string(ino) + " not referenced");
        } else if (info.dirent_refs > 1) {
          Add("dir.multiple-links",
              "dir ino " + std::to_string(ino) + " referenced " +
                  std::to_string(info.dirent_refs) + " times");
        }
        if (info.nlink != 2) {
          Add("inode.bad-dir-nlink", "dir ino " + std::to_string(ino) +
                                         " nlink " +
                                         std::to_string(info.nlink) +
                                         ", want 2");
        }
      } else {
        if (info.dirent_refs == 0) {
          Add("inode.unreachable",
              "ino " + std::to_string(ino) + " not referenced");
        }
        if (info.nlink != info.dirent_refs) {
          Add("inode.nlink-mismatch",
              "ino " + std::to_string(ino) + " nlink " +
                  std::to_string(info.nlink) + " but " +
                  std::to_string(info.dirent_refs) + " dirents");
        }
      }
    }
  }

  BlockStore* store_;
  SuperBlock sb_ = {};
  bool fatal_ = false;
  std::vector<uint8_t> block_bitmap_;
  std::vector<uint8_t> inode_bitmap_;
  std::vector<uint32_t> refcount_;
  std::map<uint64_t, InodeInfo> inodes_;
  std::map<std::string, uint64_t> counts_;
};

}  // namespace

std::string FsckReport::ToString() const {
  std::string out;
  for (const FsckFinding& f : findings) {
    out += f.code + ": " + f.message + "\n";
  }
  out += (clean() ? "fsck: clean" : "fsck: " +
                                        std::to_string(findings.size()) +
                                        " finding(s)");
  out += " (" + std::to_string(inodes_in_use) + " inodes, " +
         std::to_string(files) + " files, " + std::to_string(dirs) +
         " dirs, " + std::to_string(dirents) + " dirents, " +
         std::to_string(referenced_blocks) + " referenced blocks)\n";
  return out;
}

Task<Result<FsckReport>> RunFsck(BlockStore* store) {
  Checker checker(store);
  SOLROS_CO_RETURN_IF_ERROR(co_await checker.Run());
  co_return std::move(checker.report);
}

}  // namespace solros
