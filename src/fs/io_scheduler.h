// Host-side NVMe I/O scheduler for the staged path (§4.3, §5).
//
// Solros wins by letting the one host that can see every client drive the
// device optimally: the P2P ioctls turn N commands into one doorbell and
// one interrupt. The staged path historically did not — every concurrent
// buffer-cache miss submitted on its own, two misses on the same LBA read
// flash twice, and background readahead/write-back competed head-to-head
// with demand misses for queue slots. This scheduler sits between the
// buffer cache / FS proxy and NvmeBlockStore and closes that gap with four
// independently ablatable mechanisms:
//
//   single-flight reads   a read whose LBA range is covered by a merged
//                         run already in flight attaches to it as a waiter
//                         instead of re-reading flash; queued overlapping
//                         reads union-merge into one command. A shared
//                         fetch that fails (after the block store's
//                         retries) fails every waiter coherently.
//   plug/unplug batching  a request arriving at an idle scheduler plugs
//                         the queue for a bounded sim-time window
//                         (auto-unplugging early once plug_max_batch
//                         requests accumulate); everything gathered is
//                         LBA-sorted, adjacent runs merged, and submitted
//                         as one coalesced vector = one doorbell + one
//                         interrupt. Rounds are pipelined up to
//                         max_inflight_batches dispatched-but-uncompleted
//                         submissions: the device's internal queue-slot
//                         parallelism stays fed, deeper backlogs wait at
//                         the scheduler where they can still be
//                         reordered, and the plug window only gates
//                         idle-arrival batching.
//   priority classes      demand reads > write-back flushes > readahead;
//                         each round dispatches strictly the best
//                         non-empty class, so background I/O never queues
//                         ahead of a foreground miss.
//   per-client fairness   deficit round robin across originating clients
//                         (per-co-processor data-plane ids) inside a
//                         class, quantum counted in blocks, so one
//                         storming phi cannot starve the others.
//
// Retries stay *below* the scheduler (NvmeBlockStore::SubmitWithRetry), so
// a faulted batch is re-submitted whole and its waiters see one coherent
// outcome. Queue residency is traced per request as an "iosched.queue"
// span parented to the request's context, and iosched.* counters record
// merges, plugs, dedup hits, and per-class dispatches.
#ifndef SOLROS_SRC_FS_IO_SCHEDULER_H_
#define SOLROS_SRC_FS_IO_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/base/metrics.h"
#include "src/base/status.h"
#include "src/fs/nvme_block_store.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/trace.h"

namespace solros {

// Dispatch classes, best first. Values are the strict dispatch order.
enum class IoClass : uint8_t {
  kOrdered = 0,    // durability barriers (journal/fsync flushes); a barrier
                   // also fences the dispatch pipeline, see Flush()
  kDemand = 1,     // a caller is blocked on these bytes
  kWriteback = 2,  // dirty-page flushes (eviction, fsync)
  kReadahead = 3,  // speculation; nobody waits yet
};
inline constexpr int kIoClassCount = 4;

// Fairness key for host-originated I/O (cache internals, prefetch) as
// opposed to a data-plane client id.
inline constexpr uint32_t kIoSchedHostClient = ~0u;

struct IoSchedulerOptions {
  bool single_flight = true;
  bool plug = true;
  // How long an idle-arrival holds the queue open for batching. Small
  // against flash latency (~80us) so the added latency is noise.
  Nanos plug_window = Microseconds(4);
  // Unplug early at this many queued requests; also the per-round cap.
  uint32_t plug_max_batch = 32;
  bool priority = true;
  bool fairness = true;
  // DRR quantum per client visit, in fs blocks.
  uint32_t drr_quantum_blocks = 64;
  // Bound on dispatched-but-uncompleted device submissions (the
  // block-layer nr_requests analogue). Rounds pipeline up to this depth
  // to keep the device's queue slots fed; past it, arrivals back up at
  // the scheduler where priority and DRR can still reorder them.
  uint32_t max_inflight_batches = 4;
  // Submit each round's vector under one doorbell/interrupt.
  bool coalesce_nvme = true;
  // Appended to the USE series names ("iosched.demand<suffix>" etc.) so
  // each control-plane shard's scheduler instance reports as its own
  // component (e.g. "[2]"). Empty preserves the unsharded names.
  std::string telemetry_suffix;
};

class IoScheduler {
 public:
  IoScheduler(Simulator* sim, NvmeBlockStore* store,
              const IoSchedulerOptions& options = IoSchedulerOptions());
  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  // All entry points suspend the caller until the device round that
  // carries the request completes, and return its Status. Spans/`out`
  // stay alive across the await because the caller owns them.
  Task<Status> Read(uint64_t lba, uint32_t nblocks, std::span<uint8_t> out,
                    IoClass cls = IoClass::kDemand,
                    uint32_t client = kIoSchedHostClient,
                    TraceContext ctx = {});
  Task<Status> Write(uint64_t lba, uint32_t nblocks,
                     std::span<const uint8_t> in,
                     IoClass cls = IoClass::kWriteback,
                     uint32_t client = kIoSchedHostClient,
                     TraceContext ctx = {});
  Task<Status> WriteV(std::span<const ConstBlockRun> runs,
                      IoClass cls = IoClass::kWriteback,
                      uint32_t client = kIoSchedHostClient,
                      TraceContext ctx = {});
  // Durability barrier (kOrdered class, above demand): waits for every
  // already-dispatched device submission to complete, then issues one
  // BlockStore::Flush; no later round dispatches until the flush returns.
  // The request's whole residency (queue + barrier drain + device flush)
  // is recorded as its iosched.queue span, so stage attribution still sums
  // exactly. A free no-op flush (write-through store) still pays the
  // ordering fence but no device time.
  Task<Status> Flush(uint32_t client = kIoSchedHostClient,
                     TraceContext ctx = {});

  const IoSchedulerOptions& options() const { return options_; }

  // Instance-local statistics (the same counts also land in the process
  // MetricRegistry under iosched.*).
  uint64_t batches() const { return local_batches_; }
  uint64_t merges() const { return local_merges_; }
  uint64_t plugs() const { return local_plugs_; }
  uint64_t dedup_hits() const { return local_dedup_hits_; }
  uint64_t stalls() const { return local_stalls_; }
  uint64_t dispatched(IoClass cls) const {
    return local_dispatched_[static_cast<int>(cls)];
  }
  uint64_t queued() const { return pending_; }
  // Deepest backlog ever seen at a dispatch decision — how much choice
  // the policy actually had.
  uint64_t peak_queued() const { return peak_queued_; }

 private:
  struct IoRequest {
    bool is_write = false;
    bool is_flush = false;
    IoClass cls = IoClass::kDemand;
    uint32_t client = kIoSchedHostClient;
    TraceContext ctx;
    SimTime enqueued = 0;
    uint64_t seq = 0;      // global arrival order
    uint32_t blocks = 0;   // total blocks, for DRR accounting
    // Reads: one contiguous range into `out`.
    uint64_t lba = 0;
    uint32_t nblocks = 0;
    std::span<uint8_t> out;
    // Writes: caller-owned run descriptors (data aliases caller memory,
    // which outlives the request — the caller is suspended on it).
    std::vector<ConstBlockRun> wruns;
    bool done = false;
    Status status;
  };

  struct ClientQueue {
    std::deque<IoRequest*> fifo;
    uint64_t deficit = 0;
  };
  struct ClassQueue {
    std::map<uint32_t, ClientQueue> clients;  // keyed => deterministic
    std::deque<uint32_t> rr;                  // round-robin visit order
  };

  // One merged device run within an in-flight read batch.
  struct MergedRun {
    uint64_t lba = 0;
    uint32_t nblocks = 0;
    uint64_t scratch_block = 0;  // offset into the batch scratch, blocks
  };
  // An in-flight read submission; late-arriving covered reads attach to
  // `waiters` and are satisfied from `scratch` when the device completes.
  struct InflightReads {
    std::vector<MergedRun> runs;
    std::vector<uint8_t> scratch;
    std::vector<IoRequest*> waiters;
  };

  // Suspends the caller until `req` completes; enqueues or (for covered
  // reads) attaches to the in-flight batch.
  Task<Status> Submit(IoRequest* req);
  void EnsureDispatcher();
  Task<void> DispatchLoop();
  // Holds the queue open for plug_window (or until plug_max_batch).
  Task<void> PlugWait();
  Task<void> PlugTimer(uint64_t epoch);
  Task<void> DispatchRound();
  // Pops the next batch honoring class priority and DRR fairness.
  std::vector<IoRequest*> SelectBatch();
  Task<void> SubmitReads(std::vector<IoRequest*> reads);
  Task<void> SubmitWrites(std::vector<IoRequest*> writes);
  // Drains every other in-flight submission, then one store Flush for the
  // whole group of barrier requests.
  Task<void> SubmitFlushes(std::vector<IoRequest*> flushes);
  // The in-flight batch whose merged runs fully contain
  // [lba, lba+nblocks), or null when no such batch is at the device.
  InflightReads* FindInflightCover(uint64_t lba, uint32_t nblocks);
  void RecordQueueSpan(const IoRequest& req, SimTime end);
  void FinishRequest(IoRequest* req, const Status& status);

  Simulator* sim_;
  NvmeBlockStore* store_;
  IoSchedulerOptions options_;
  uint32_t block_size_;

  ClassQueue classes_[kIoClassCount];
  uint64_t pending_ = 0;   // queued (not yet dispatched) requests
  uint64_t arrivals_ = 0;  // sequence source
  bool dispatcher_started_ = false;
  bool plugged_ = false;
  uint64_t plug_epoch_ = 0;
  uint32_t inflight_batches_ = 0;  // dispatched, device not yet done
  // Barriers dispatched but not yet completed: the dispatch loop stalls
  // while nonzero so nothing overtakes an ordered flush.
  uint32_t barrier_pending_ = 0;
  // In-flight read batches (each lives on its SubmitReads frame); several
  // may be at the device at once since rounds pipeline.
  std::vector<InflightReads*> inflight_reads_;
  Condition work_cond_;
  Condition plug_cond_;
  Condition done_cond_;

  Counter* batches_;
  Counter* merges_;
  Counter* plugs_;
  Counter* dedup_hits_;
  Counter* stalls_;
  Counter* dispatched_[kIoClassCount];
  LatencyHistogram* queue_ns_;
  // USE telemetry per dispatch class ("iosched.demand" etc.): depth counts
  // class-queue residency only — single-flight attach waiters are excluded
  // so depth reflects the schedulable backlog, not piggybacked readers.
  UseSeries* use_[kIoClassCount] = {nullptr, nullptr, nullptr, nullptr};
  // Instance-local mirrors so accessors never see another scheduler's
  // traffic (same pattern as BufferCache).
  uint64_t local_batches_ = 0;
  uint64_t local_merges_ = 0;
  uint64_t local_plugs_ = 0;
  uint64_t local_dedup_hits_ = 0;
  uint64_t local_stalls_ = 0;
  uint64_t local_dispatched_[kIoClassCount] = {0, 0, 0, 0};
  uint64_t peak_queued_ = 0;
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_IO_SCHEDULER_H_
