#include "src/fs/journal.h"

#include <algorithm>
#include <cstring>

#include "src/base/logging.h"
#include "src/base/metrics.h"

namespace solros {
namespace {

// FNV-1a 64-bit, the commit-record checksum. Torn commit records (power cut
// between the payload flush and the commit flush) fail this and the replay
// scan discards the transaction.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t FnvMix(uint64_t h, const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

Counter* JournalCounter(const char* name) {
  return MetricRegistry::Default().GetCounter(name);
}

}  // namespace

const char* JournalModeName(JournalMode mode) {
  switch (mode) {
    case JournalMode::kOff:
      return "off";
    case JournalMode::kMetadata:
      return "metadata";
    case JournalMode::kData:
      return "data";
  }
  return "unknown";
}

Journal::Journal(BlockStore* store, uint64_t start, uint64_t blocks)
    : store_(store), start_(start), capacity_(blocks > 0 ? blocks - 1 : 0) {
  CHECK(store != nullptr);
  CHECK_GE(blocks, kMinJournalBlocks) << "journal region too small";
  CHECK_EQ(store->block_size(), kFsBlockSize);
  CHECK_LE(start + blocks, store->block_count());
}

uint64_t Journal::Checksum(uint64_t sequence,
                           const std::vector<JournalBlockImage>& images,
                           size_t first, size_t count) {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, &sequence, sizeof(sequence));
  uint32_t count32 = static_cast<uint32_t>(count);
  h = FnvMix(h, &count32, sizeof(count32));
  for (size_t i = first; i < first + count; ++i) {
    h = FnvMix(h, &images[i].lba, sizeof(images[i].lba));
    h = FnvMix(h, images[i].data.data(), images[i].data.size());
  }
  return h;
}

Task<Status> Journal::Format() {
  // Zero the whole log area so descriptors from a previous format cannot
  // masquerade as committed transactions of this journal's sequence space.
  std::vector<uint8_t> zeros(kFsBlockSize * 256, 0);
  uint64_t off = start_ + 1;
  uint64_t end = start_ + 1 + capacity_;
  while (off < end) {
    uint32_t n = static_cast<uint32_t>(
        std::min<uint64_t>(end - off, zeros.size() / kFsBlockSize));
    SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(
        off, n, std::span<const uint8_t>(zeros.data(),
                                         uint64_t{n} * kFsBlockSize)));
    off += n;
  }
  head_ = 0;
  sequence_ = 1;
  SOLROS_CO_RETURN_IF_ERROR(co_await WriteSuper());
  co_return co_await store_->Flush();
}

Task<Status> Journal::Load() {
  std::vector<uint8_t> block(kFsBlockSize);
  SOLROS_CO_RETURN_IF_ERROR(
      co_await store_->Read(start_, 1, std::span<uint8_t>(block)));
  JournalSuper super;
  std::memcpy(&super, block.data(), sizeof(super));
  if (super.magic != kJournalSuperMagic) {
    co_return IoError("journal superblock magic mismatch");
  }
  if (super.version != kJournalVersion) {
    co_return NotSupportedError("journal version unsupported");
  }
  if (super.capacity != capacity_) {
    co_return IoError("journal capacity mismatch with fs superblock");
  }
  head_ = super.head;
  sequence_ = super.sequence;
  co_return OkStatus();
}

Task<Status> Journal::WriteSuper() {
  std::vector<uint8_t> block(kFsBlockSize, 0);
  JournalSuper super{kJournalSuperMagic, kJournalVersion, capacity_, head_,
                     sequence_};
  std::memcpy(block.data(), &super, sizeof(super));
  co_return co_await store_->Write(start_, 1,
                                   std::span<const uint8_t>(block));
}

Task<Status> Journal::Commit(const std::vector<JournalBlockImage>& images) {
  if (images.empty()) {
    co_return OkStatus();
  }
  static Counter* const commits = JournalCounter("journal.commits");
  commits->Increment();
  ++local_commits_;
  // A transaction needs count+2 log blocks; cap count so even a journal at
  // the kMinJournalBlocks floor can take the largest single transaction.
  size_t max_per_txn = std::min<size_t>(kJournalMaxPayload, capacity_ - 2);
  size_t first = 0;
  while (first < images.size()) {
    size_t count = std::min(max_per_txn, images.size() - first);
    SOLROS_CO_RETURN_IF_ERROR(co_await CommitOne(images, first, count));
    first += count;
  }
  co_return OkStatus();
}

Task<Status> Journal::CommitOne(const std::vector<JournalBlockImage>& images,
                                size_t first, size_t count) {
  static Counter* const txns = JournalCounter("journal.txns");
  static Counter* const logged = JournalCounter("journal.blocks_logged");

  // 1. Descriptor + payload into the log.
  std::vector<uint8_t> block(kFsBlockSize, 0);
  JournalDescHeader desc{kJournalDescMagic, static_cast<uint32_t>(count),
                         sequence_};
  std::memcpy(block.data(), &desc, sizeof(desc));
  auto* lbas = reinterpret_cast<uint64_t*>(block.data() + sizeof(desc));
  for (size_t i = 0; i < count; ++i) {
    lbas[i] = images[first + i].lba;
  }
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(
      LogBlock(head_), 1, std::span<const uint8_t>(block)));
  for (size_t i = 0; i < count; ++i) {
    DCHECK_EQ(images[first + i].data.size(), kFsBlockSize);
    SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(
        LogBlock(head_ + 1 + i), 1,
        std::span<const uint8_t>(images[first + i].data)));
  }
  // 2. Payload must be durable before the commit record can exist.
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Flush());

  // 3-4. Commit record; once this flush returns the transaction survives
  // any crash and the caller may ack.
  std::fill(block.begin(), block.end(), 0);
  JournalCommitBlock commit{kJournalCommitMagic, static_cast<uint32_t>(count),
                            sequence_, Checksum(sequence_, images, first,
                                                count)};
  std::memcpy(block.data(), &commit, sizeof(commit));
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(
      LogBlock(head_ + 1 + count), 1, std::span<const uint8_t>(block)));
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Flush());

  // 5-6. Checkpoint immediately: write the after-images home and make them
  // durable. Keeping checkpoint synchronous means the log never holds more
  // than one live transaction, so free-space management reduces to the
  // max_per_txn cap while wraparound still exercises circular offsets.
  for (size_t i = 0; i < count; ++i) {
    SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(
        images[first + i].lba, 1,
        std::span<const uint8_t>(images[first + i].data)));
  }
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Flush());

  // 7. Retire the transaction. The super write is deliberately unflushed:
  // if it is lost, replay re-applies the checkpointed images (idempotent).
  head_ += 2 + count;
  ++sequence_;
  SOLROS_CO_RETURN_IF_ERROR(co_await WriteSuper());

  txns->Increment();
  logged->Increment(count);
  ++local_txns_;
  local_blocks_logged_ += count;
  co_return OkStatus();
}

Task<Status> Journal::Replay(JournalReplayStats* stats) {
  static Counter* const applied = JournalCounter("journal.replay.applied");
  static Counter* const discarded =
      JournalCounter("journal.replay.discarded");

  JournalReplayStats local;
  std::vector<uint8_t> block(kFsBlockSize);
  uint64_t max_per_txn = std::min<uint64_t>(kJournalMaxPayload, capacity_ - 2);
  for (;;) {
    SOLROS_CO_RETURN_IF_ERROR(
        co_await store_->Read(LogBlock(head_), 1, std::span<uint8_t>(block)));
    JournalDescHeader desc;
    std::memcpy(&desc, block.data(), sizeof(desc));
    if (desc.magic != kJournalDescMagic || desc.sequence != sequence_ ||
        desc.count == 0 || desc.count > max_per_txn) {
      // No (further) transaction was started at head: clean end of log.
      break;
    }
    std::vector<JournalBlockImage> images(desc.count);
    auto* lbas = reinterpret_cast<const uint64_t*>(block.data() +
                                                   sizeof(desc));
    bool valid = true;
    for (uint32_t i = 0; i < desc.count; ++i) {
      images[i].lba = lbas[i];
      if (images[i].lba >= store_->block_count()) {
        valid = false;
        break;
      }
    }
    for (uint32_t i = 0; valid && i < desc.count; ++i) {
      images[i].data.resize(kFsBlockSize);
      SOLROS_CO_RETURN_IF_ERROR(
          co_await store_->Read(LogBlock(head_ + 1 + i), 1,
                                std::span<uint8_t>(images[i].data)));
    }
    JournalCommitBlock commit{};
    if (valid) {
      SOLROS_CO_RETURN_IF_ERROR(
          co_await store_->Read(LogBlock(head_ + 1 + desc.count), 1,
                                std::span<uint8_t>(block)));
      std::memcpy(&commit, block.data(), sizeof(commit));
      valid = commit.magic == kJournalCommitMagic &&
              commit.sequence == sequence_ && commit.count == desc.count &&
              commit.checksum ==
                  Checksum(sequence_, images, 0, images.size());
    }
    if (!valid) {
      // Descriptor written but the commit record never became durable: the
      // transaction is torn. Nothing after it can be committed either.
      ++local.discarded_txns;
      break;
    }
    for (const JournalBlockImage& image : images) {
      SOLROS_CO_RETURN_IF_ERROR(co_await store_->Write(
          image.lba, 1, std::span<const uint8_t>(image.data)));
    }
    ++local.applied_txns;
    local.replayed_blocks += desc.count;
    head_ += 2 + desc.count;
    ++sequence_;
  }
  // Persist the advanced head so the applied transactions are not replayed
  // on the next mount (harmless, but the scan would redo the writes).
  SOLROS_CO_RETURN_IF_ERROR(co_await WriteSuper());
  SOLROS_CO_RETURN_IF_ERROR(co_await store_->Flush());

  applied->Increment(local.applied_txns);
  discarded->Increment(local.discarded_txns);
  if (stats != nullptr) {
    *stats = local;
  }
  co_return OkStatus();
}

}  // namespace solros
