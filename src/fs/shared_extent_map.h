// Versioned extent-map memo shared by the control-plane shards.
//
// The extent/allocation maps are the one piece of file-system state every
// proxy shard must see coherently: a read routed to shard A needs the
// extents that a write routed to shard B just allocated. SolrosFs itself
// stays the single source of truth; this structure is the explicitly
// scoped sharing protocol in front of it:
//
//   * a process-wide version counter per inode, bumped by the FS on every
//     extent mutation (StoreExtents, FreeInode) via its extent observer;
//   * a per-shard memo of Fiemap results tagged with the version they were
//     computed at. A lookup whose tag is stale misses; the shard re-runs
//     Fiemap (which may read the indirect extent block from the device)
//     and re-inserts.
//
// The memo is exact-key ((ino, offset, length) -> extents), which is what
// repeated reads of a hot shared region produce; it is bounded and clears
// wholesale when full (a memo, not a cache — correctness never depends on
// residency, only the version tags carry coherence).
#ifndef SOLROS_SRC_FS_SHARED_EXTENT_MAP_H_
#define SOLROS_SRC_FS_SHARED_EXTENT_MAP_H_

#include <cstdint>
#include <map>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/fs/layout.h"

namespace solros {

class SharedExtentMap {
 public:
  // Bumps `ino`'s version; every shard's memoized mappings for it go
  // stale. Called by the FS extent observer on any allocation change.
  void Invalidate(uint64_t ino) {
    ++versions_[ino];
    ++invalidations_;
  }

  uint64_t Version(uint64_t ino) const {
    auto it = versions_.find(ino);
    return it == versions_.end() ? 0 : it->second;
  }

  uint64_t invalidations() const { return invalidations_; }

  // One shard's private memo over the shared version map.
  class ShardView {
   public:
    explicit ShardView(SharedExtentMap* shared) : shared_(shared) {}

    // The memoized extents for this exact query, or nullptr when absent
    // or stale. The pointer is valid until the next Insert.
    const std::vector<FsExtent>* Lookup(uint64_t ino, uint64_t offset,
                                        uint64_t length) {
      auto it = memo_.find(Key{ino, offset, length});
      if (it == memo_.end() ||
          it->second.version != shared_->Version(ino)) {
        ++misses_;
        return nullptr;
      }
      ++hits_;
      return &it->second.extents;
    }

    void Insert(uint64_t ino, uint64_t offset, uint64_t length,
                std::vector<FsExtent> extents) {
      if (memo_.size() >= kMaxEntries) {
        memo_.clear();  // coarse reset; the memo refills from live traffic
      }
      memo_[Key{ino, offset, length}] =
          Entry{shared_->Version(ino), std::move(extents)};
    }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

   private:
    struct Key {
      uint64_t ino = 0;
      uint64_t offset = 0;
      uint64_t length = 0;
      bool operator<(const Key& o) const {
        return std::tie(ino, offset, length) <
               std::tie(o.ino, o.offset, o.length);
      }
    };
    struct Entry {
      uint64_t version = 0;
      std::vector<FsExtent> extents;
    };
    static constexpr size_t kMaxEntries = 4096;

    SharedExtentMap* shared_;
    std::map<Key, Entry> memo_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
  };

 private:
  std::unordered_map<uint64_t, uint64_t> versions_;
  uint64_t invalidations_ = 0;
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_SHARED_EXTENT_MAP_H_
