#include "src/fs/fs_proxy.h"

#include <algorithm>
#include <cstring>
#include <optional>

#include "src/base/fault.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/sim/flight_recorder.h"
#include "src/sim/trace.h"

namespace solros {
namespace {

// How many leading blocks of a range the cache-hit probe inspects.
constexpr uint64_t kCacheProbeBlocks = 8;

// Consecutive faulted P2P transfers before the P2P path goes on cooldown,
// and how many subsequent requests route straight to buffered I/O.
constexpr uint32_t kP2pFaultStreakLimit = 3;
constexpr uint64_t kP2pCooldownRequests = 16;

// DMA copy attempts while faults are armed.
constexpr int kDmaMaxAttempts = 3;

// Max per-(coprocessor, file) sequential-stream entries the proxy tracks.
constexpr size_t kMaxReadStreams = 1024;

bool DegradableFault(const Status& status) {
  return status.code() == ErrorCode::kTimedOut ||
         status.code() == ErrorCode::kIoError;
}

// Errors that indicate the system (device, DMA, transport) failed, as
// opposed to benign namespace outcomes like kNotFound/kAlreadyExists that
// correct programs produce all the time. Only system errors trigger a
// flight-recorder dump on the way out of a proxy.
bool IsSystemError(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIoError:
    case ErrorCode::kTimedOut:
    case ErrorCode::kInternal:
    case ErrorCode::kResourceExhausted:
    case ErrorCode::kConnectionReset:
      return true;
    default:
      return false;
  }
}

}  // namespace

FsProxy::FsProxy(Simulator* sim, PcieFabric* fabric, const HwParams& params,
                 Processor* host_cpu, NvmeBlockStore* store, SolrosFs* fs,
                 const Options& options, const FsShardContext& shard)
    : sim_(sim),
      fabric_(fabric),
      params_(params),
      host_cpu_(host_cpu),
      store_(store),
      fs_(fs),
      options_(options),
      shard_(shard),
      label_(ShardLabel("fs.proxy", shard.shard_id, shard.shard_count)),
      host_dma_(sim, fabric, params, host_cpu->device()) {
  // Per-shard suffix for the isolated-state components (cache, scheduler
  // classes); empty for a standalone proxy so every legacy name survives.
  const std::string suffix =
      shard_.shard_count > 1 ? "[" + std::to_string(shard_.shard_id) + "]"
                             : "";
  if (options_.cache_blocks > 0) {
    BufferCacheOptions cache_options;
    cache_options.scan_resistant = options_.cache_scan_resistant;
    cache_options.protected_fraction = options_.cache_protected_fraction;
    cache_options.coalesced_writeback = options_.coalesced_writeback;
    cache_options.writeback_max_batch = options_.writeback_max_batch;
    cache_options.coalesce_nvme = options_.coalesce_nvme;
    // The arena lives on the shard core's socket, so a hit never crosses
    // QPI to reach its staging pages.
    cache_ = std::make_unique<BufferCache>(store, host_cpu->device(),
                                           options_.cache_blocks,
                                           cache_options);
  }
  if (options_.iosched) {
    IoSchedulerOptions sched_options;
    sched_options.single_flight = options_.iosched_single_flight;
    sched_options.plug = options_.iosched_plug;
    sched_options.plug_window = options_.iosched_plug_window;
    sched_options.plug_max_batch = options_.iosched_plug_max_batch;
    sched_options.priority = options_.iosched_priority;
    sched_options.fairness = options_.iosched_fairness;
    sched_options.drr_quantum_blocks = options_.iosched_drr_quantum;
    sched_options.max_inflight_batches = options_.iosched_max_inflight;
    sched_options.coalesce_nvme = options_.coalesce_nvme;
    sched_options.telemetry_suffix = suffix;
    iosched_ = std::make_unique<IoScheduler>(sim, store, sched_options);
    if (cache_ != nullptr) {
      cache_->set_io_scheduler(iosched_.get());
    }
  }
  if (shard_.extent_map != nullptr) {
    extent_view_ =
        std::make_unique<SharedExtentMap::ShardView>(shard_.extent_map);
  }
  if (sim->telemetry() != nullptr) {
    use_ = sim->telemetry()->GetSeries(label_);
  }
  if (cache_ != nullptr) {
    cache_->set_telemetry(sim, "fs.cache" + suffix);
  }
  if (shard_.coordinator != nullptr) {
    shard_.coordinator->Register(this);
  }
}

void FsProxy::Serve(SimRing* request_ring, SimRing* response_ring) {
  // One server (and pump) per data-plane ring pair; the proxy state they
  // share is what makes Solros "shared-something" (§4).
  servers_.push_back(std::make_unique<RpcServer<FsRequest, FsResponse>>(
      sim_, request_ring, response_ring,
      [this](FsRequest request) { return Handle(std::move(request)); }));
  servers_.back()->Start();
}

FsResponse FsProxy::ErrorResponse(const Status& status) {
  FsResponse response;
  response.error = status.code();
  return response;
}

Task<FsResponse> FsProxy::Handle(FsRequest request) {
  ++stats_.requests;
  static Counter* const requests =
      MetricRegistry::Default().GetCounter("fs.proxy.requests");
  static LatencyHistogram* const service_ns =
      MetricRegistry::Default().GetHistogram("fs.proxy.service_ns");
  requests->Increment();
  SimTime t0 = sim_->now();
  if (use_ != nullptr) {
    use_->QueueDelta(t0, +1);
  }
  // The service span hangs off the stub's root span via the wire context.
  ScopedSpan span(sim_, "proxy", "fs.proxy.service",
                  TraceContext{request.trace_id, request.parent_span});
  TraceContext ctx = span.context();
  {
    // Per-request proxy CPU: RPC handling plus the full file-system stack,
    // both on fast host cores (this is the asymmetry Solros exploits).
    ScopedSpan cpu(sim_, "proxy", "fs.stage.proxy_cpu", ctx);
    co_await host_cpu_->Compute(params_.fs_proxy_cpu +
                                params_.fs_full_call_cpu);
  }
  FsResponse response;
  switch (request.op) {
    case FsOp::kRead:
      response = co_await HandleRead(request, ctx);
      break;
    case FsOp::kWrite:
      response = co_await HandleWrite(request, ctx);
      break;
    case FsOp::kReaddir:
      response = co_await HandleReaddir(request, ctx);
      break;
    default:
      response = co_await HandleMeta(request);
      break;
  }
  service_ns->Record(sim_->now() - t0);
  if (use_ != nullptr) {
    use_->QueueDelta(sim_->now(), -1);
    use_->CompleteOp(sim_->now(), 0);
  }
  if (IsSystemError(response.error)) {
    if (use_ != nullptr) {
      use_->AddError(sim_->now());
    }
    MaybeDumpFlightRecorder(
        sim_, "fs.proxy error: " + std::string(ErrorCodeName(response.error)));
  }
  co_return response;
}

Task<Status> FsProxy::Prefetch(const std::string& path) {
  if (cache_ == nullptr) {
    co_return FailedPreconditionError("no buffer cache configured");
  }
  SOLROS_CO_ASSIGN_OR_RETURN(uint64_t ino, co_await fs_->Lookup(path));
  SOLROS_CO_ASSIGN_OR_RETURN(FileStat stat, co_await fs_->StatInode(ino));
  SOLROS_CO_ASSIGN_OR_RETURN(std::vector<FsExtent> extents,
                             co_await fs_->Fiemap(ino, 0, stat.size));
  // Fetch extent-by-extent with coalesced vectors into a bounce buffer,
  // installing clean pages.
  for (const FsExtent& extent : extents) {
    uint64_t bytes = uint64_t{extent.len} * kFsBlockSize;
    DeviceBuffer bounce(host_cpu_->device(), bytes);
    if (iosched_ != nullptr) {
      // Prefetch is speculation: readahead class, so it never queues ahead
      // of a demand miss.
      SOLROS_CO_RETURN_IF_ERROR(co_await iosched_->Read(
          extent.start, extent.len, {bounce.data(), bytes},
          IoClass::kReadahead));
    } else {
      std::vector<FsExtent> one = {extent};
      SOLROS_CO_RETURN_IF_ERROR(co_await store_->ReadExtents(
          one, MemRef::Of(bounce), options_.coalesce_nvme));
    }
    for (uint64_t b = 0; b < extent.len; ++b) {
      SOLROS_CO_RETURN_IF_ERROR(co_await cache_->InsertClean(
          extent.start + b,
          {bounce.data() + b * kFsBlockSize, kFsBlockSize}));
    }
  }
  co_return OkStatus();
}

Task<FsResponse> FsProxy::HandleMeta(const FsRequest& request) {
  FsResponse response;
  switch (request.op) {
    case FsOp::kOpen: {
      auto ino = co_await fs_->Lookup(request.Path());
      if (!ino.ok()) {
        co_return ErrorResponse(ino.status());
      }
      response.value = *ino;
      break;
    }
    case FsOp::kCreate: {
      auto ino = co_await fs_->Create(request.Path());
      if (!ino.ok()) {
        co_return ErrorResponse(ino.status());
      }
      response.value = *ino;
      break;
    }
    case FsOp::kStat: {
      // NOTE: never co_await inside a conditional expression — GCC 12
      // miscompiles the temporary lifetimes (double-destroy in the frame).
      Result<FileStat> stat = Status(ErrorCode::kInternal);
      if (request.path[0] != '\0') {
        stat = co_await fs_->Stat(request.Path());
      } else {
        stat = co_await fs_->StatInode(request.ino);
      }
      if (!stat.ok()) {
        co_return ErrorResponse(stat.status());
      }
      response.stat = *stat;
      response.value = stat->size;
      break;
    }
    case FsOp::kUnlink: {
      // Freed blocks may be reallocated to another file — possibly one
      // served by a different shard — so drop cached copies on EVERY
      // shard before the blocks return to the allocator.
      if (cache_ != nullptr) {
        auto ino = co_await fs_->Lookup(request.Path());
        if (ino.ok()) {
          auto stat = co_await fs_->StatInode(*ino);
          if (stat.ok()) {
            auto extents = co_await CachedFiemap(*ino, 0, stat->size);
            if (extents.ok()) {
              BroadcastInvalidate(*extents);
            }
          }
        }
      }
      Status status = co_await fs_->Unlink(request.Path());
      if (!status.ok()) {
        co_return ErrorResponse(status);
      }
      break;
    }
    case FsOp::kMkdir: {
      Status status = co_await fs_->Mkdir(request.Path());
      if (!status.ok()) {
        co_return ErrorResponse(status);
      }
      break;
    }
    case FsOp::kRmdir: {
      Status status = co_await fs_->Rmdir(request.Path());
      if (!status.ok()) {
        co_return ErrorResponse(status);
      }
      break;
    }
    case FsOp::kRename: {
      Status status = co_await fs_->Rename(request.Path(), request.Path2());
      if (!status.ok()) {
        co_return ErrorResponse(status);
      }
      break;
    }
    case FsOp::kTruncate: {
      // Invalidate cached pages of any region a shrink is about to free —
      // on every shard, since the freed blocks go back to a shared pool.
      if (cache_ != nullptr) {
        auto stat = co_await fs_->StatInode(request.ino);
        if (stat.ok() && request.length < stat->size) {
          auto extents = co_await CachedFiemap(
              request.ino, request.length, stat->size - request.length);
          if (extents.ok()) {
            BroadcastInvalidate(*extents);
          }
        }
      }
      Status status = co_await fs_->Truncate(request.ino, request.length);
      if (!status.ok()) {
        co_return ErrorResponse(status);
      }
      break;
    }
    case FsOp::kFsync: {
      Status status = co_await FsyncBarrier(request.client);
      if (!status.ok()) {
        co_return ErrorResponse(status);
      }
      break;
    }
    default:
      co_return ErrorResponse(NotSupportedError("bad fs op"));
  }
  co_return response;
}

void FsProxy::NoteP2pFault() {
  if (++p2p_fault_streak_ < kP2pFaultStreakLimit) {
    return;
  }
  p2p_fault_streak_ = 0;
  p2p_cooldown_until_ = stats_.requests + kP2pCooldownRequests;
  static Counter* const cooldowns =
      MetricRegistry::Default().GetCounter("fs.proxy.p2p_cooldowns");
  cooldowns->Increment();
  TRACE_INSTANT(sim_, "proxy", "fs.proxy.p2p_cooldown");
}

uint32_t FsProxy::UpdateReadStream(uint32_t client, uint64_t ino,
                                   uint64_t offset, uint64_t length) {
  StreamKey key{static_cast<uint32_t>(shard_.shard_id), client, ino};
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    if (streams_.size() >= kMaxReadStreams) {
      streams_.erase(stream_lru_.back());
      stream_lru_.pop_back();
    }
    stream_lru_.push_front(key);
    it = streams_.emplace(key, ReadStream{}).first;
    it->second.lru_it = stream_lru_.begin();
  } else {
    stream_lru_.splice(stream_lru_.begin(), stream_lru_, it->second.lru_it);
  }
  ReadStream& stream = it->second;
  // A brand-new stream has next_offset == 0, so a file read starting at
  // offset 0 opens the window immediately.
  if (offset == stream.next_offset) {
    stream.window_blocks =
        stream.window_blocks == 0
            ? options_.readahead_min_blocks
            : std::min(stream.window_blocks * 2,
                       options_.readahead_max_blocks);
  } else {
    stream.window_blocks = 0;  // non-sequential: close the window
  }
  stream.next_offset = offset + length;
  return stream.window_blocks;
}

Task<Status> FsProxy::FlushExtents(const std::vector<FsExtent>& extents) {
  if (cache_ == nullptr ||
      (cache_->dirty_pages() == 0 && !cache_->writeback_in_flight())) {
    co_return OkStatus();
  }
  for (const FsExtent& e : extents) {
    SOLROS_CO_RETURN_IF_ERROR(co_await cache_->FlushRange(e.start, e.len));
  }
  co_return OkStatus();
}

Task<Result<std::vector<FsExtent>>> FsProxy::CachedFiemap(uint64_t ino,
                                                          uint64_t offset,
                                                          uint64_t length) {
  if (extent_view_ != nullptr) {
    const std::vector<FsExtent>* hit =
        extent_view_->Lookup(ino, offset, length);
    if (hit != nullptr) {
      co_return *hit;
    }
  }
  SOLROS_CO_ASSIGN_OR_RETURN(std::vector<FsExtent> extents,
                             co_await fs_->Fiemap(ino, offset, length));
  if (extent_view_ != nullptr) {
    extent_view_->Insert(ino, offset, length, extents);
  }
  co_return extents;
}

void FsProxy::BroadcastInvalidate(const std::vector<FsExtent>& extents) {
  // An LBA may be cached by any shard: a freed block can be reallocated to
  // a file (or block group) another shard serves, so staleness does not
  // respect the partitioning. Synchronous within the single-threaded sim —
  // no cross-core charge, matching a store to a shared invalidation queue.
  if (shard_.coordinator != nullptr) {
    for (FsProxy* peer : shard_.coordinator->shards()) {
      if (peer->cache_ == nullptr) {
        continue;
      }
      for (const FsExtent& e : extents) {
        peer->cache_->InvalidateRange(e.start, e.len);
      }
    }
    return;
  }
  if (cache_ == nullptr) {
    return;
  }
  for (const FsExtent& e : extents) {
    cache_->InvalidateRange(e.start, e.len);
  }
}

Task<Status> FsProxy::BroadcastFlushExtents(
    const std::vector<FsExtent>& extents) {
  if (shard_.coordinator != nullptr) {
    for (FsProxy* peer : shard_.coordinator->shards()) {
      SOLROS_CO_RETURN_IF_ERROR(co_await peer->FlushExtents(extents));
    }
    co_return OkStatus();
  }
  co_return co_await FlushExtents(extents);
}

Task<Status> FsProxy::FsyncBarrier(uint32_t client) {
  std::vector<FsProxy*> self = {this};
  const std::vector<FsProxy*>& shards =
      shard_.coordinator != nullptr && !shard_.coordinator->shards().empty()
          ? shard_.coordinator->shards()
          : self;
  if (store_->volatile_write_cache()) {
    // Durable order, shard-wide: push every shard's dirty pages to the
    // device first, then fence them behind every shard's in-flight
    // scheduler batches with ordered barriers, and only then commit
    // metadata — the journal commit's device flushes make the
    // already-completed data writes stable, so an acked fsync survives a
    // power cut no matter which shard's cache held the pages.
    for (FsProxy* peer : shards) {
      if (peer->cache_ != nullptr) {
        SOLROS_CO_RETURN_IF_ERROR(co_await peer->cache_->Flush());
      }
    }
    for (FsProxy* peer : shards) {
      if (peer->iosched_ != nullptr) {
        SOLROS_CO_RETURN_IF_ERROR(co_await peer->iosched_->Flush(client));
      }
    }
    // The journal commit runs via the designated barrier shard so
    // ordered-class flushes serialize at one place and the journal keeps
    // one global commit order. A caller on another shard pays the
    // cross-shard handoff on the barrier shard's core.
    FsProxy* barrier =
        shard_.coordinator != nullptr ? shard_.coordinator->barrier_shard()
                                      : this;
    if (barrier != nullptr && barrier != this) {
      co_await barrier->host_cpu_->Compute(params_.fs_proxy_cpu);
    }
    co_return co_await fs_->Sync();
  }
  // Write-through store: acked writes are already stable, so the
  // historical order (metadata first, then cache write-back) is kept
  // bit-for-bit for the seed configurations.
  SOLROS_CO_RETURN_IF_ERROR(co_await fs_->Sync());
  for (FsProxy* peer : shards) {
    if (peer->cache_ != nullptr) {
      SOLROS_CO_RETURN_IF_ERROR(co_await peer->cache_->Flush());
    }
  }
  co_return OkStatus();
}

Task<Result<bool>> FsProxy::ShouldUseP2p(const FsRequest& request,
                                         uint64_t length,
                                         uint32_t readahead_window) {
  if (!options_.allow_p2p) {
    co_return false;
  }
  // Detected sequential stream under the cutover: go buffered so the
  // readahead window turns its many small reads into few vectored ones.
  if (readahead_window > 0 && length <= options_.readahead_p2p_cutover) {
    static Counter* const steered =
        MetricRegistry::Default().GetCounter("fs.proxy.readahead_steered");
    steered->Increment();
    co_return false;
  }
  // A streak of faulted P2P transfers parks the path for a while.
  if (stats_.requests < p2p_cooldown_until_) {
    static Counter* const skips =
        MetricRegistry::Default().GetCounter("fs.proxy.p2p_cooldown_skips");
    skips->Increment();
    co_return false;
  }
  // O_BUFFER forces buffered mode.
  if ((request.flags & kFsFlagBuffered) != 0) {
    co_return false;
  }
  // Host-memory targets have no P2P meaning.
  if (fabric_->TypeOf(request.memory.device()) == DeviceType::kHost) {
    co_return false;
  }
  // Crossing a NUMA boundary collapses P2P throughput (Fig. 1(a)).
  if (fabric_->CrossesNuma(store_->device()->device_id(),
                           request.memory.device())) {
    co_return false;
  }
  // Unaligned transfers take the buffered path (P2P is block-granular).
  if (request.offset % kFsBlockSize != 0 || length % kFsBlockSize != 0) {
    co_return false;
  }
  // Cache-hot data is served from the host cache. Probe the first few
  // blocks of the range.
  if (cache_ != nullptr) {
    auto extents = co_await CachedFiemap(request.ino, request.offset,
                                         std::min<uint64_t>(
                                             length,
                                             kCacheProbeBlocks * kFsBlockSize));
    if (extents.ok()) {
      for (const FsExtent& e : *extents) {
        for (uint64_t b = 0; b < e.len; ++b) {
          if (cache_->Contains(e.start + b)) {
            co_return false;
          }
        }
      }
    }
  }
  co_return true;
}

Task<FsResponse> FsProxy::HandleRead(const FsRequest& request,
                                     TraceContext ctx) {
  FsResponse response;
  auto stat = co_await fs_->StatInode(request.ino);
  if (!stat.ok()) {
    co_return ErrorResponse(stat.status());
  }
  if (request.offset >= stat->size) {
    response.value = 0;
    co_return response;
  }
  uint64_t length = std::min({request.length, request.memory.length,
                              stat->size - request.offset});
  if (length == 0) {
    response.value = 0;
    co_return response;
  }

  // Track the sequential stream regardless of the path taken: the window
  // state both steers the path decision and sizes the staged readahead.
  uint32_t ra_blocks = 0;
  if (options_.readahead && cache_ != nullptr) {
    ra_blocks =
        UpdateReadStream(request.client, request.ino, request.offset, length);
  }

  auto p2p = co_await ShouldUseP2p(request, length, ra_blocks);
  if (!p2p.ok()) {
    co_return ErrorResponse(p2p.status());
  }
  bool use_buffered = !*p2p;
  if (*p2p) {
    ++stats_.p2p_reads;
    static Counter* const p2p_reads =
        MetricRegistry::Default().GetCounter("fs.proxy.p2p_reads");
    p2p_reads->Increment();
    ScopedSpan data(sim_, "proxy", "fs.data.p2p", ctx);
    auto extents = co_await CachedFiemap(request.ino, request.offset, length);
    if (!extents.ok()) {
      co_return ErrorResponse(extents.status());
    }
    // P2P bypasses the caches; push any dirty cached pages of this range
    // out of EVERY shard first so the device read returns the newest bytes.
    Status coherent = co_await BroadcastFlushExtents(*extents);
    if (!coherent.ok()) {
      co_return ErrorResponse(coherent);
    }
    Status status = co_await store_->ReadExtents(
        *extents, request.memory.Sub(0, length), options_.coalesce_nvme,
        data.context());
    if (status.ok()) {
      NoteP2pSuccess();
    } else if (DegradableFault(status)) {
      // Degrade: re-serve the whole range host-staged. The buffered path
      // rewrites every target byte, so a partially-landed P2P vector can
      // never leak through as silent corruption.
      NoteP2pFault();
      ++stats_.degraded_reads;
      static Counter* const degraded =
          MetricRegistry::Default().GetCounter("fs.proxy.p2p_degraded");
      degraded->Increment();
      TRACE_INSTANT(sim_, "proxy", "fs.proxy.p2p_degraded");
      use_buffered = true;
    } else {
      co_return ErrorResponse(status);
    }
  }
  if (use_buffered) {
    ++stats_.buffered_reads;
    static Counter* const buffered_reads =
        MetricRegistry::Default().GetCounter("fs.proxy.buffered_reads");
    buffered_reads->Increment();
    ScopedSpan data(sim_, "proxy", "fs.data.buffered", ctx);
    Status status = co_await BufferedRead(request.ino, request.offset, length,
                                          request.memory, ra_blocks,
                                          stat->size, request.client,
                                          data.context());
    if (!status.ok()) {
      co_return ErrorResponse(status);
    }
  }
  response.value = length;
  co_return response;
}

Task<FsResponse> FsProxy::HandleWrite(const FsRequest& request,
                                      TraceContext ctx) {
  FsResponse response;
  uint64_t length = std::min(request.length, request.memory.length);
  if (length == 0) {
    response.value = 0;
    co_return response;
  }
  auto p2p = co_await ShouldUseP2p(request, length);
  if (!p2p.ok()) {
    co_return ErrorResponse(p2p.status());
  }
  if (*p2p) {
    auto extents = co_await fs_->PrepareWrite(request.ino, request.offset,
                                              length);
    if (extents.ok()) {
      ++stats_.p2p_writes;
      static Counter* const p2p_writes =
          MetricRegistry::Default().GetCounter("fs.proxy.p2p_writes");
      p2p_writes->Increment();
      ScopedSpan data(sim_, "proxy", "fs.data.p2p", ctx);
      // The data on disk is about to change under any cached copies —
      // drop them on every shard.
      BroadcastInvalidate(*extents);
      Status status = co_await store_->WriteExtents(
          *extents, request.memory.Sub(0, length), options_.coalesce_nvme,
          data.context());
      if (status.ok()) {
        NoteP2pSuccess();
        response.value = length;
        co_return response;
      }
      if (!DegradableFault(status)) {
        co_return ErrorResponse(status);
      }
      // Degrade: rewrite the whole range through the buffered path. The
      // same bytes go to the same already-allocated blocks, so a partially
      // landed P2P vector is simply overwritten.
      NoteP2pFault();
      ++stats_.degraded_writes;
      static Counter* const degraded =
          MetricRegistry::Default().GetCounter("fs.proxy.p2p_degraded");
      degraded->Increment();
      TRACE_INSTANT(sim_, "proxy", "fs.proxy.p2p_degraded");
    } else if (extents.code() != ErrorCode::kFailedPrecondition) {
      co_return ErrorResponse(extents.status());
    }
    // Gap past EOF (or a faulted P2P write): fall through to buffered.
  }
  ++stats_.buffered_writes;
  static Counter* const buffered_writes =
      MetricRegistry::Default().GetCounter("fs.proxy.buffered_writes");
  buffered_writes->Increment();
  ScopedSpan data(sim_, "proxy", "fs.data.buffered", ctx);
  Status status = co_await BufferedWrite(request.ino, request.offset, length,
                                         request.memory, data.context());
  if (!status.ok()) {
    co_return ErrorResponse(status);
  }
  response.value = length;
  co_return response;
}

Task<Status> FsProxy::DmaCopyWithRetry(MemRef dst, MemRef src,
                                       TraceContext ctx) {
  const int attempts = Faults().any_armed() ? kDmaMaxAttempts : 1;
  Nanos backoff = params_.dma_init_host;
  Status status;
  for (int attempt = 1;; ++attempt) {
    status = co_await host_dma_.Copy(dst, src, ctx);
    if (status.ok() || attempt >= attempts) {
      co_return status;
    }
    static Counter* const retries =
        MetricRegistry::Default().GetCounter("fs.proxy.dma_retries");
    retries->Increment();
    TRACE_INSTANT(sim_, "proxy", "fs.proxy.dma_retry");
    co_await Delay(backoff);
    backoff *= 2;
  }
}

Task<Status> FsProxy::BufferedRead(uint64_t ino, uint64_t offset,
                                   uint64_t length, MemRef target,
                                   uint32_t ra_blocks, uint64_t file_size,
                                   uint32_t client, TraceContext ctx) {
  // Stage the byte range in a host bounce buffer. Cached blocks come from
  // the cache; missing runs are fetched with one coalesced NVMe vector and
  // then populate the cache. A readahead window extends the staged range
  // past the request so a miss run spanning the boundary fetches the next
  // `ra_blocks` speculatively in the same NVMe vector.
  uint64_t first_block = offset / kFsBlockSize;
  uint64_t last_block = (offset + length + kFsBlockSize - 1) / kFsBlockSize;
  uint64_t nblocks = last_block - first_block;
  uint64_t stage_blocks = nblocks;
  if (ra_blocks > 0 && cache_ != nullptr) {
    uint64_t file_blocks = (file_size + kFsBlockSize - 1) / kFsBlockSize;
    uint64_t headroom =
        file_blocks > last_block ? file_blocks - last_block : 0;
    stage_blocks += std::min<uint64_t>(ra_blocks, headroom);
  }
  if (shard_.shard_count > 1) {
    // Clip speculation at the block-group stripe boundary: blocks past it
    // route to a different shard, whose own stream detector readaheads
    // them into ITS cache — fetching them here would duplicate pages
    // across segments and fight that shard's window.
    uint64_t stripe_end = (last_block + kShardStripeBlocks - 1) /
                          kShardStripeBlocks * kShardStripeBlocks;
    stage_blocks = std::min(stage_blocks, stripe_end - first_block);
  }
  if (stage_blocks > nblocks) {
    TRACE_INSTANT(sim_, "proxy", "fs.proxy.readahead");
  }
  DeviceBuffer bounce(host_cpu_->device(), stage_blocks * kFsBlockSize);

  SOLROS_CO_ASSIGN_OR_RETURN(
      std::vector<FsExtent> extents,
      co_await CachedFiemap(ino, first_block * kFsBlockSize,
                            stage_blocks * kFsBlockSize));

  // The staging walk runs under a cache span (child of the buffered data
  // span) whose args record the per-request outcome: demand blocks served
  // from cache, demand blocks fetched from the device, and speculative
  // readahead blocks piggybacked onto those fetches.
  std::optional<ScopedSpan> cache_span;
  if (cache_ != nullptr) {
    cache_span.emplace(sim_, "cache", "cache.read", ctx);
  }
  TraceContext io_ctx = cache_span.has_value() ? cache_span->context() : ctx;
  uint64_t span_hits = 0;
  uint64_t span_misses = 0;
  uint64_t span_readahead = 0;

  uint64_t cursor = 0;  // block index within the staged range
  for (const FsExtent& extent : extents) {
    for (uint64_t i = 0; i < extent.len;) {
      uint64_t lba = extent.start + i;
      uint64_t bounce_off = (cursor + i) * kFsBlockSize;
      bool speculative = cursor + i >= nblocks;
      if (cache_ != nullptr && cache_->Contains(lba)) {
        if (speculative) {
          // Already-cached readahead block: nothing to stage, and no
          // LRU touch — the stream has not actually reached it yet.
          ++i;
          continue;
        }
        SOLROS_CO_ASSIGN_OR_RETURN(MemRef page, co_await cache_->GetBlock(lba));
        std::memcpy(bounce.data() + bounce_off, page.span().data(),
                    kFsBlockSize);
        ++span_hits;
        ++i;
        continue;
      }
      if (speculative) {
        // A miss run that STARTS in the readahead region means the demand
        // part of this request was already cached — skip the speculative
        // fetch entirely. Readahead I/O only piggybacks on a demand miss,
        // so a fully-cached request costs zero device commands (this is
        // what turns a sequential stream into one command per window
        // instead of one per request).
        ++i;
        continue;
      }
      // Extend a miss run (it may cross from the request region into the
      // readahead region — that is the point: one vectored device read).
      uint64_t run = 1;
      while (i + run < extent.len &&
             (cache_ == nullptr || !cache_->Contains(extent.start + i + run))) {
        ++run;
      }
      if (iosched_ != nullptr) {
        // The whole miss run — demand blocks plus any piggybacked
        // readahead tail — is ONE demand-class request: a caller is
        // blocked on its head, and splitting it would cost a second
        // command for a fetch the device could do in one.
        SOLROS_CO_RETURN_IF_ERROR(co_await iosched_->Read(
            lba, static_cast<uint32_t>(run),
            {bounce.data() + bounce_off, run * kFsBlockSize},
            IoClass::kDemand, client, io_ctx));
      } else {
        std::vector<FsExtent> miss = {{lba, static_cast<uint32_t>(run), 0}};
        SOLROS_CO_RETURN_IF_ERROR(co_await store_->ReadExtents(
            miss, MemRef::Of(bounce, bounce_off, run * kFsBlockSize),
            options_.coalesce_nvme, io_ctx));
      }
      // Populate the cache with the fetched blocks (clean pages, no
      // second device read — the bytes are in the bounce buffer).
      if (cache_ != nullptr) {
        for (uint64_t b = 0; b < run; ++b) {
          bool ra = cursor + i + b >= nblocks;
          Status inserted = co_await cache_->InsertClean(
              lba + b,
              {bounce.data() + bounce_off + b * kFsBlockSize, kFsBlockSize},
              /*readahead=*/ra);
          if (!inserted.ok()) {
            co_return inserted;
          }
          if (ra) {
            ++span_readahead;
          } else {
            ++span_misses;
          }
        }
      }
      i += run;
    }
    cursor += extent.len;
  }
  if (cache_span.has_value()) {
    cache_span->AddArg("hits", span_hits);
    cache_span->AddArg("misses", span_misses);
    cache_span->AddArg("readahead", span_readahead);
    cache_span.reset();  // close before the DMA: the move is not cache time
  }

  // One host-initiated DMA moves the requested bytes to the target.
  uint64_t in_off = offset % kFsBlockSize;
  if (target.device() == host_cpu_->device()) {
    std::memcpy(target.span().data(), bounce.data() + in_off, length);
    co_await Delay(TransferTime(length, params_.host_mem_bw));
  } else {
    SOLROS_CO_RETURN_IF_ERROR(co_await DmaCopyWithRetry(
        target.Sub(0, length), MemRef::Of(bounce, in_off, length), ctx));
  }
  co_return OkStatus();
}

Task<Status> FsProxy::BufferedWrite(uint64_t ino, uint64_t offset,
                                    uint64_t length, MemRef source,
                                    TraceContext ctx) {
  // Pull the data to a host bounce buffer with one DMA, then write through
  // the file system (which handles allocation, gaps, and partial blocks).
  DeviceBuffer bounce(host_cpu_->device(), length);
  if (source.device() == host_cpu_->device()) {
    std::memcpy(bounce.data(), source.span().data(), length);
    co_await Delay(TransferTime(length, params_.host_mem_bw));
  } else {
    SOLROS_CO_RETURN_IF_ERROR(co_await DmaCopyWithRetry(
        MemRef::Of(bounce), source.Sub(0, length), ctx));
  }
  // Write-back absorption: an aligned write becomes dirty cache pages with
  // no device I/O at all — eviction and Flush() push them out later as
  // coalesced vectors. PrepareWrite allocates blocks and updates metadata
  // exactly as the P2P write path does.
  if (cache_ != nullptr && options_.writeback_cache &&
      offset % kFsBlockSize == 0 && length % kFsBlockSize == 0) {
    auto extents = co_await fs_->PrepareWrite(ino, offset, length);
    if (extents.ok()) {
      static Counter* const absorbed =
          MetricRegistry::Default().GetCounter("fs.proxy.writeback_absorbed");
      absorbed->Increment(length / kFsBlockSize);
      ScopedSpan cache_span(sim_, "cache", "cache.write", ctx);
      cache_span.AddArg("absorbed", length / kFsBlockSize);
      uint64_t cursor = 0;
      for (const FsExtent& e : *extents) {
        for (uint64_t b = 0; b < e.len; ++b) {
          SOLROS_CO_RETURN_IF_ERROR(co_await cache_->InsertDirty(
              e.start + b,
              {bounce.data() + (cursor + b) * kFsBlockSize, kFsBlockSize}));
        }
        cursor += e.len;
      }
      co_return OkStatus();
    }
    if (extents.code() != ErrorCode::kFailedPrecondition) {
      co_return extents.status();
    }
    // Gap past EOF: fall through to the write-through path below.
  }
  // The write-through path read-modify-writes partial blocks from the
  // device; push overlapping dirty cached pages out of every shard first
  // so the RMW sees the newest bytes. Skip the extent walk when no shard
  // holds dirty pages at all (the common case stays Fiemap-free).
  bool any_dirty = false;
  if (shard_.coordinator != nullptr) {
    for (FsProxy* peer : shard_.coordinator->shards()) {
      if (peer->cache_ != nullptr && (peer->cache_->dirty_pages() > 0 ||
                                      peer->cache_->writeback_in_flight())) {
        any_dirty = true;
        break;
      }
    }
  } else {
    any_dirty = cache_ != nullptr && (cache_->dirty_pages() > 0 ||
                                      cache_->writeback_in_flight());
  }
  if (any_dirty) {
    auto dirty_extents = co_await CachedFiemap(ino, offset, length);
    if (dirty_extents.ok()) {
      SOLROS_CO_RETURN_IF_ERROR(co_await BroadcastFlushExtents(*dirty_extents));
    }
  }
  SOLROS_CO_ASSIGN_OR_RETURN(
      uint64_t written,
      co_await fs_->WriteAt(ino, offset,
                            {bounce.data(), static_cast<size_t>(length)}));
  if (written != length) {
    co_return IoError("short write");
  }
  // Keep every shard's cache coherent with the freshly written blocks.
  if (cache_ != nullptr) {
    auto extents = co_await CachedFiemap(ino, offset, length);
    if (extents.ok()) {
      BroadcastInvalidate(*extents);
    }
  }
  co_return OkStatus();
}

Task<FsResponse> FsProxy::HandleReaddir(const FsRequest& request,
                                        TraceContext ctx) {
  FsResponse response;
  auto entries = co_await fs_->Readdir(request.Path());
  if (!entries.ok()) {
    co_return ErrorResponse(entries.status());
  }
  // Zero-copy: serialize Dirent rows into the caller's memory window.
  uint64_t max_rows = request.memory.length / sizeof(Dirent);
  uint64_t skip = request.offset;  // row offset for chunked listings
  uint64_t produced = 0;
  std::vector<uint8_t> staged;
  for (uint64_t i = skip; i < entries->size() && produced < max_rows; ++i) {
    const DirEntry& row = (*entries)[i];
    Dirent ent;
    ent.ino = row.ino;
    ent.type = row.is_dir ? (kModeDir >> 12) : (kModeFile >> 12);
    ent.SetName(row.name);
    staged.resize(staged.size() + sizeof(Dirent));
    std::memcpy(staged.data() + produced * sizeof(Dirent), &ent,
                sizeof(Dirent));
    ++produced;
  }
  if (!staged.empty()) {
    DeviceBuffer bounce(host_cpu_->device(), staged.size());
    std::memcpy(bounce.data(), staged.data(), staged.size());
    if (request.memory.device() == host_cpu_->device()) {
      std::memcpy(request.memory.span().data(), bounce.data(), staged.size());
    } else {
      Status status = co_await DmaCopyWithRetry(
          request.memory.Sub(0, staged.size()), MemRef::Of(bounce), ctx);
      if (!status.ok()) {
        co_return ErrorResponse(status);
      }
    }
  }
  response.value = produced;
  co_return response;
}

}  // namespace solros
