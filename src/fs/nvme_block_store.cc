#include "src/fs/nvme_block_store.h"

#include <cstring>

#include "src/base/fault.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"
#include "src/sim/trace.h"

namespace solros {

NvmeBlockStore::NvmeBlockStore(NvmeDevice* nvme, Processor* cpu)
    : nvme_(nvme), cpu_(cpu) {
  CHECK(nvme != nullptr);
  CHECK(cpu != nullptr);
}

uint32_t NvmeBlockStore::block_size() const { return nvme_->block_size(); }
uint64_t NvmeBlockStore::block_count() const { return nvme_->block_count(); }

Task<Status> NvmeBlockStore::Read(uint64_t lba, uint32_t nblocks,
                                  std::span<uint8_t> out) {
  uint64_t bytes = uint64_t{nblocks} * block_size();
  if (out.size() < bytes) {
    co_return InvalidArgumentError("read span too short");
  }
  // Stage through host memory (the host FS page path).
  DeviceBuffer staging(cpu_->device(), bytes);
  NvmeCommand command{NvmeCommand::Op::kRead, lba, nblocks,
                      MemRef::Of(staging)};
  std::vector<NvmeCommand> commands(1, command);
  SOLROS_CO_RETURN_IF_ERROR(co_await SubmitWithRetry(std::move(commands),
                                                     /*coalesce=*/false));
  std::memcpy(out.data(), staging.data(), bytes);
  co_return OkStatus();
}

Task<Status> NvmeBlockStore::Write(uint64_t lba, uint32_t nblocks,
                                   std::span<const uint8_t> in) {
  uint64_t bytes = uint64_t{nblocks} * block_size();
  if (in.size() < bytes) {
    co_return InvalidArgumentError("write span too short");
  }
  DeviceBuffer staging(cpu_->device(), bytes);
  std::memcpy(staging.data(), in.data(), bytes);
  NvmeCommand command{NvmeCommand::Op::kWrite, lba, nblocks,
                      MemRef::Of(staging)};
  std::vector<NvmeCommand> commands(1, command);
  co_return co_await SubmitWithRetry(std::move(commands), /*coalesce=*/false);
}

Task<Status> NvmeBlockStore::Flush() {
  // Write-through model (the default): acked writes are already stable, so
  // the barrier is free — and the fault-free seed configurations keep
  // byte-identical bench output.
  if (!volatile_write_cache_) {
    co_return OkStatus();
  }
  NvmeCommand command{NvmeCommand::Op::kFlush, 0, 0, MemRef{}};
  std::vector<NvmeCommand> commands(1, command);
  co_return co_await SubmitWithRetry(std::move(commands), /*coalesce=*/false);
}

Task<Status> NvmeBlockStore::ReadV(std::span<const BlockRun> runs,
                                   bool coalesce) {
  co_return co_await ReadRuns(runs, coalesce);
}

Task<Status> NvmeBlockStore::WriteV(std::span<const ConstBlockRun> runs,
                                    bool coalesce) {
  co_return co_await WriteRuns(runs, coalesce);
}

Task<Status> NvmeBlockStore::ReadRuns(std::span<const BlockRun> runs,
                                      bool coalesce, TraceContext ctx) {
  if (runs.empty()) co_return OkStatus();
  uint64_t total = 0;
  for (const BlockRun& run : runs) {
    uint64_t bytes = uint64_t{run.nblocks} * block_size();
    if (run.data.size() < bytes) {
      co_return InvalidArgumentError("readv span too short");
    }
    total += bytes;
  }
  DeviceBuffer staging(cpu_->device(), total);
  std::vector<NvmeCommand> commands;
  commands.reserve(runs.size());
  uint64_t offset = 0;
  for (const BlockRun& run : runs) {
    uint64_t bytes = uint64_t{run.nblocks} * block_size();
    commands.push_back(NvmeCommand{NvmeCommand::Op::kRead, run.lba,
                                   run.nblocks,
                                   MemRef::Of(staging).Sub(offset, bytes)});
    offset += bytes;
  }
  SOLROS_CO_RETURN_IF_ERROR(
      co_await SubmitWithRetry(std::move(commands), coalesce, ctx));
  offset = 0;
  for (const BlockRun& run : runs) {
    uint64_t bytes = uint64_t{run.nblocks} * block_size();
    std::memcpy(run.data.data(), staging.data() + offset, bytes);
    offset += bytes;
  }
  co_return OkStatus();
}

Task<Status> NvmeBlockStore::WriteRuns(std::span<const ConstBlockRun> runs,
                                       bool coalesce, TraceContext ctx) {
  if (runs.empty()) co_return OkStatus();
  uint64_t total = 0;
  for (const ConstBlockRun& run : runs) {
    uint64_t bytes = uint64_t{run.nblocks} * block_size();
    if (run.data.size() < bytes) {
      co_return InvalidArgumentError("writev span too short");
    }
    total += bytes;
  }
  DeviceBuffer staging(cpu_->device(), total);
  std::vector<NvmeCommand> commands;
  commands.reserve(runs.size());
  uint64_t offset = 0;
  for (const ConstBlockRun& run : runs) {
    uint64_t bytes = uint64_t{run.nblocks} * block_size();
    std::memcpy(staging.data() + offset, run.data.data(), bytes);
    commands.push_back(NvmeCommand{NvmeCommand::Op::kWrite, run.lba,
                                   run.nblocks,
                                   MemRef::Of(staging).Sub(offset, bytes)});
    offset += bytes;
  }
  co_return co_await SubmitWithRetry(std::move(commands), coalesce, ctx);
}

Task<Status> NvmeBlockStore::SubmitWithRetry(
    std::vector<NvmeCommand> commands, bool coalesce, TraceContext ctx) {
  // One attempt, no timers, when no faults are armed.
  const int attempts = Faults().any_armed() ? retry_.max_attempts : 1;
  Nanos backoff = retry_.backoff;
  Status status;
  for (int attempt = 1;; ++attempt) {
    status = co_await nvme_->Submit(commands, coalesce, cpu_, ctx);
    const bool retryable = status.code() == ErrorCode::kTimedOut ||
                           status.code() == ErrorCode::kIoError;
    if (status.ok() || !retryable || attempt >= attempts) {
      co_return status;
    }
    static Counter* const retries =
        MetricRegistry::Default().GetCounter("nvme.store.retries");
    retries->Increment();
    Simulator* sim = co_await CurrentSimulator();
    TRACE_INSTANT(sim, "nvme", "nvme.store.retry");
    co_await Delay(backoff);
    backoff *= 2;
  }
}

Task<Status> NvmeBlockStore::SubmitExtents(
    const std::vector<FsExtent>& extents, MemRef memory, NvmeCommand::Op op,
    bool coalesce, TraceContext ctx) {
  uint64_t total = 0;
  for (const FsExtent& e : extents) {
    total += uint64_t{e.len} * block_size();
  }
  if (memory.length != total) {
    co_return InvalidArgumentError("extent/target length mismatch");
  }
  std::vector<NvmeCommand> commands;
  commands.reserve(extents.size());
  uint64_t offset = 0;
  for (const FsExtent& e : extents) {
    uint64_t bytes = uint64_t{e.len} * block_size();
    commands.push_back(
        NvmeCommand{op, e.start, e.len, memory.Sub(offset, bytes)});
    offset += bytes;
  }
  co_return co_await SubmitWithRetry(std::move(commands), coalesce, ctx);
}

Task<Status> NvmeBlockStore::ReadExtents(const std::vector<FsExtent>& extents,
                                         MemRef target, bool coalesce,
                                         TraceContext ctx) {
  co_return co_await SubmitExtents(extents, target, NvmeCommand::Op::kRead,
                                   coalesce, ctx);
}

Task<Status> NvmeBlockStore::WriteExtents(
    const std::vector<FsExtent>& extents, MemRef source, bool coalesce,
    TraceContext ctx) {
  co_return co_await SubmitExtents(extents, source, NvmeCommand::Op::kWrite,
                                   coalesce, ctx);
}

}  // namespace solros
