#include "src/fs/nvme_block_store.h"

#include <cstring>

#include "src/base/logging.h"

namespace solros {

NvmeBlockStore::NvmeBlockStore(NvmeDevice* nvme, Processor* cpu)
    : nvme_(nvme), cpu_(cpu) {
  CHECK(nvme != nullptr);
  CHECK(cpu != nullptr);
}

uint32_t NvmeBlockStore::block_size() const { return nvme_->block_size(); }
uint64_t NvmeBlockStore::block_count() const { return nvme_->block_count(); }

Task<Status> NvmeBlockStore::Read(uint64_t lba, uint32_t nblocks,
                                  std::span<uint8_t> out) {
  uint64_t bytes = uint64_t{nblocks} * block_size();
  if (out.size() < bytes) {
    co_return InvalidArgumentError("read span too short");
  }
  // Stage through host memory (the host FS page path).
  DeviceBuffer staging(cpu_->device(), bytes);
  NvmeCommand command{NvmeCommand::Op::kRead, lba, nblocks,
                      MemRef::Of(staging)};
  SOLROS_CO_RETURN_IF_ERROR(co_await nvme_->SubmitOne(command, cpu_));
  std::memcpy(out.data(), staging.data(), bytes);
  co_return OkStatus();
}

Task<Status> NvmeBlockStore::Write(uint64_t lba, uint32_t nblocks,
                                   std::span<const uint8_t> in) {
  uint64_t bytes = uint64_t{nblocks} * block_size();
  if (in.size() < bytes) {
    co_return InvalidArgumentError("write span too short");
  }
  DeviceBuffer staging(cpu_->device(), bytes);
  std::memcpy(staging.data(), in.data(), bytes);
  NvmeCommand command{NvmeCommand::Op::kWrite, lba, nblocks,
                      MemRef::Of(staging)};
  co_return co_await nvme_->SubmitOne(command, cpu_);
}

Task<Status> NvmeBlockStore::Flush() { co_return OkStatus(); }

Task<Status> NvmeBlockStore::SubmitExtents(
    const std::vector<FsExtent>& extents, MemRef memory, NvmeCommand::Op op,
    bool coalesce) {
  uint64_t total = 0;
  for (const FsExtent& e : extents) {
    total += uint64_t{e.len} * block_size();
  }
  if (memory.length != total) {
    co_return InvalidArgumentError("extent/target length mismatch");
  }
  std::vector<NvmeCommand> commands;
  commands.reserve(extents.size());
  uint64_t offset = 0;
  for (const FsExtent& e : extents) {
    uint64_t bytes = uint64_t{e.len} * block_size();
    commands.push_back(
        NvmeCommand{op, e.start, e.len, memory.Sub(offset, bytes)});
    offset += bytes;
  }
  co_return co_await nvme_->Submit(std::move(commands), coalesce, cpu_);
}

Task<Status> NvmeBlockStore::ReadExtents(const std::vector<FsExtent>& extents,
                                         MemRef target, bool coalesce) {
  co_return co_await SubmitExtents(extents, target, NvmeCommand::Op::kRead,
                                   coalesce);
}

Task<Status> NvmeBlockStore::WriteExtents(
    const std::vector<FsExtent>& extents, MemRef source, bool coalesce) {
  co_return co_await SubmitExtents(extents, source, NvmeCommand::Op::kWrite,
                                   coalesce);
}

}  // namespace solros
