// Baseline file-service configurations the paper compares against (§6.1.2).
//
//  * VirtioBlockStore + PhiLocalFs — the co-processor-centric stock path:
//    "ext4 file system is running on Xeon Phi and controls an NVMe SSD as a
//    virtual block device (virtblk). An SCIF kernel module on the host
//    drives the NVMe SSD according to requests from the Xeon Phi. An
//    interrupt signal is designated for notification of virtblk." Every
//    block request pays a Phi->host kick, host-side kernel handling, a
//    non-coalesced NVMe command, and a *CPU-relay copy* of the data across
//    PCIe (Fig. 13(a)'s dominant "Block/Transport" bar) — and all
//    file-system code runs on the slow co-processor cores.
//
//  * NfsClientFs — the NFS-over-PCIe stock path: per-call protocol costs on
//    both ends, data chunked at the NFS transfer unit and pushed through
//    the Phi's TCP stack segment by segment.
//
//  * HostLocalFs — the host upper bound: full file system on fast cores,
//    NVMe DMA into host memory.
#ifndef SOLROS_SRC_FS_BASELINE_FS_H_
#define SOLROS_SRC_FS_BASELINE_FS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fs/block_store.h"
#include "src/fs/file_service.h"
#include "src/fs/solros_fs.h"
#include "src/hw/fabric.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/nvme/nvme_device.h"
#include "src/sim/resource.h"
#include "src/sim/task.h"

namespace solros {

// A block device as seen from the co-processor through the virtio relay.
class VirtioBlockStore : public BlockStore {
 public:
  VirtioBlockStore(Simulator* sim, const HwParams& params, NvmeDevice* nvme,
                   Processor* host_cpu, Processor* phi_cpu);

  uint32_t block_size() const override;
  uint64_t block_count() const override;
  Task<Status> Read(uint64_t lba, uint32_t nblocks,
                    std::span<uint8_t> out) override;
  Task<Status> Write(uint64_t lba, uint32_t nblocks,
                     std::span<const uint8_t> in) override;
  Task<Status> Flush() override;

  uint64_t requests() const { return requests_; }

 private:
  Task<Status> Relay(uint64_t lba, uint32_t nblocks, std::span<uint8_t> out,
                     std::span<const uint8_t> in, bool is_read);

  Simulator* sim_;
  HwParams params_;
  NvmeDevice* nvme_;
  Processor* host_cpu_;
  Processor* phi_cpu_;
  // The SCIF/virtio backend is one host kernel thread: every request's
  // handling and relay copy serialize through it — why the stock path is
  // flat at ~0.1-0.2 GB/s no matter how many Phi threads issue I/O
  // (Figs. 11/12).
  FifoResource backend_;
  uint64_t requests_ = 0;
};

// Shared adapter: a FileService facade over a SolrosFs instance whose
// calls run on `cpu` at the full-file-system CPU cost, with data landing
// via plain local copies (used by PhiLocalFs and HostLocalFs).
class LocalFsService : public FileService {
 public:
  LocalFsService(const HwParams& params, SolrosFs* fs, Processor* cpu);

  Task<Result<uint64_t>> Open(const std::string& path) override;
  Task<Result<uint64_t>> Create(const std::string& path) override;
  Task<Result<uint64_t>> Read(uint64_t ino, uint64_t offset,
                              MemRef target) override;
  Task<Result<uint64_t>> Write(uint64_t ino, uint64_t offset,
                               MemRef source) override;
  Task<Result<FileStat>> Stat(const std::string& path) override;
  Task<Status> Unlink(const std::string& path) override;
  Task<Status> Mkdir(const std::string& path) override;
  Task<Status> Rmdir(const std::string& path) override;
  Task<Status> Rename(const std::string& from, const std::string& to) override;
  Task<Result<std::vector<DirEntry>>> Readdir(
      const std::string& path) override;
  Task<Status> Truncate(uint64_t ino, uint64_t size) override;
  Task<Status> Fsync(uint64_t ino) override;

  SolrosFs* fs() { return fs_; }

 private:
  Task<void> ChargeCall();

  HwParams params_;
  SolrosFs* fs_;
  Processor* cpu_;
};

// NFS-style client on the co-processor, talking to a host-side SolrosFs.
class NfsClientFs : public FileService {
 public:
  NfsClientFs(Simulator* sim, PcieFabric* fabric, const HwParams& params,
              SolrosFs* host_fs, Processor* host_cpu, Processor* phi_cpu,
              DeviceId phi_device);

  Task<Result<uint64_t>> Open(const std::string& path) override;
  Task<Result<uint64_t>> Create(const std::string& path) override;
  Task<Result<uint64_t>> Read(uint64_t ino, uint64_t offset,
                              MemRef target) override;
  Task<Result<uint64_t>> Write(uint64_t ino, uint64_t offset,
                               MemRef source) override;
  Task<Result<FileStat>> Stat(const std::string& path) override;
  Task<Status> Unlink(const std::string& path) override;
  Task<Status> Mkdir(const std::string& path) override;
  Task<Status> Rmdir(const std::string& path) override;
  Task<Status> Rename(const std::string& from, const std::string& to) override;
  Task<Result<std::vector<DirEntry>>> Readdir(
      const std::string& path) override;
  Task<Status> Truncate(uint64_t ino, uint64_t size) override;
  Task<Status> Fsync(uint64_t ino) override;

 private:
  // One NFS round trip: protocol CPU on both ends plus `payload` bytes
  // through the Phi TCP stack and across the PCIe link.
  Task<void> RoundTrip(uint64_t payload_to_phi, uint64_t payload_to_host);

  Simulator* sim_;
  PcieFabric* fabric_;
  HwParams params_;
  SolrosFs* host_fs_;
  Processor* host_cpu_;
  Processor* phi_cpu_;
  DeviceId phi_device_;
  // One NFS client transport context (rpciod + a single TCP connection):
  // chunk transfers serialize.
  FifoResource transport_;
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_BASELINE_FS_H_
