// Offline invariant checker for SolrosFS images.
//
// RunFsck walks a (possibly just-replayed) volume and cross-checks every
// piece of metadata against every other: superblock geometry, journal
// region sanity, per-inode extent validity, block/inode bitmap agreement
// with what the tree actually references, free-count accounting, directory
// structure, and namespace reachability. It never writes — the crash
// matrix uses it as the oracle that journal replay produced a consistent
// image, and `tools/solros_fsck` wraps it for use on dumped images.
//
// Findings are deterministic: the walk visits inodes in number order and
// blocks in address order, so two runs over identical images produce
// byte-identical reports (the crash determinism property test relies on
// this).
#ifndef SOLROS_SRC_FS_FSCK_H_
#define SOLROS_SRC_FS_FSCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/fs/block_store.h"
#include "src/sim/task.h"

namespace solros {

// One violated invariant. `code` is a stable dotted identifier (e.g.
// "bitmap.double-alloc"); `message` carries the specifics.
struct FsckFinding {
  std::string code;
  std::string message;
};

struct FsckReport {
  std::vector<FsckFinding> findings;
  // Walk statistics (filled even when findings exist, as far as the walk
  // got).
  uint64_t inodes_in_use = 0;
  uint64_t files = 0;
  uint64_t dirs = 0;
  uint64_t dirents = 0;
  uint64_t referenced_blocks = 0;  // data+indirect blocks reachable from inodes

  bool clean() const { return findings.empty(); }
  // Human-readable dump, one line per finding plus a summary line.
  std::string ToString() const;
};

// Checks the volume behind `store`. Returns a report (clean or not) unless
// the image is so damaged the walk cannot start (unreadable superblock),
// in which case the report carries the fatal finding and nothing else.
// Errors are reserved for I/O failures from the store itself.
Task<Result<FsckReport>> RunFsck(BlockStore* store);

}  // namespace solros

#endif  // SOLROS_SRC_FS_FSCK_H_
