#include "src/fs/fs_stub.h"

#include "src/base/fault.h"
#include "src/base/metrics.h"
#include "src/sim/trace.h"

namespace solros {
namespace {

// Data ops can be reissued safely: reads and stats have no side effects,
// and writes/truncates put the same bytes at the same place. Namespace
// mutations are not idempotent (a replayed create observes kAlreadyExists).
bool IsIdempotent(FsOp op) {
  switch (op) {
    case FsOp::kOpen:
    case FsOp::kRead:
    case FsOp::kWrite:
    case FsOp::kStat:
    case FsOp::kReaddir:
    case FsOp::kTruncate:
    case FsOp::kFsync:
      return true;
    case FsOp::kCreate:
    case FsOp::kUnlink:
    case FsOp::kMkdir:
    case FsOp::kRmdir:
    case FsOp::kRename:
      return false;
  }
  return false;
}

}  // namespace

FsStub::FsStub(Simulator* sim, const HwParams& params, Processor* phi_cpu,
               SimRing* request_ring, SimRing* response_ring,
               uint32_t client_id)
    : FsStub(sim, params, phi_cpu,
             {std::make_pair(request_ring, response_ring)}, client_id) {}

FsStub::FsStub(Simulator* sim, const HwParams& params, Processor* phi_cpu,
               std::vector<std::pair<SimRing*, SimRing*>> shard_rings,
               uint32_t client_id)
    : sim_(sim),
      params_(params),
      phi_cpu_(phi_cpu),
      client_id_(client_id) {
  clients_.reserve(shard_rings.size());
  for (auto& [req, resp] : shard_rings) {
    clients_.push_back(
        std::make_unique<RpcClient<FsRequest, FsResponse>>(sim, req, resp));
    clients_.back()->Start();
  }
}

int FsStub::RouteShard(const FsRequest& request) const {
  const int shards = static_cast<int>(clients_.size());
  if (shards <= 1) {
    return 0;
  }
  switch (request.op) {
    case FsOp::kRead:
    case FsOp::kWrite:
      // Block-group striping: large files spread across shards, small
      // files land whole on their inode's shard.
      return ShardOfFileRange(request.ino, request.offset, kFsBlockSize,
                              shards);
    case FsOp::kStat:
      return request.path[0] != '\0' ? ShardOfPath(request.Path(), shards)
                                     : ShardOfInode(request.ino, shards);
    case FsOp::kTruncate:
    case FsOp::kFsync:
      return ShardOfInode(request.ino, shards);
    default:
      // Namespace ops carry a path.
      return ShardOfPath(request.Path(), shards);
  }
}

Task<Result<FsResponse>> FsStub::Call(FsRequest request) {
  ++calls_;
  static Counter* const calls =
      MetricRegistry::Default().GetCounter("fs.stub.calls");
  static LatencyHistogram* const call_ns =
      MetricRegistry::Default().GetHistogram("fs.stub.call_ns");
  calls->Increment();
  SimTime t0 = sim_->now();
  // Root of this request's causal trace: a fresh trace id, carried by the
  // wire message so every downstream span hangs off this one. With no
  // tracer bound the context stays zero and nothing downstream records.
  Tracer* tracer = sim_->tracer();
  TraceContext root_ctx;
  if (tracer != nullptr) {
    root_ctx.trace_id = tracer->NewTraceId();
  }
  ScopedSpan span(sim_, "stub", "fs.stub.call", root_ctx);
  TraceContext ctx = span.context();
  request.trace_id = ctx.trace_id;
  request.parent_span = ctx.parent_span;
  request.client = client_id_;
  if (buffered_ || buffered_inos_.contains(request.ino)) {
    request.flags |= kFsFlagBuffered;
  }
  {
    // The thin stub cost: syscall entry + RPC marshalling on a lean core.
    ScopedSpan cpu(sim_, "stub", "fs.stage.stub_cpu", ctx);
    co_await phi_cpu_->Compute(params_.fs_stub_cpu);
  }
  // Per-attempt timeouts exist only while faults are armed; a fault-free
  // run makes a single untimed attempt with an unchanged schedule. The
  // window scales with the payload: a multi-MiB transfer legitimately runs
  // for tens of milliseconds (the 4 ns/byte allowance is ~4x the slowest
  // data path), and a fixed window would misread it as a lost frame.
  const bool idempotent = IsIdempotent(request.op);
  const Nanos timeout =
      Faults().any_armed() ? retry_.timeout + request.length * 4 : 0;
  Nanos backoff = retry_.backoff;
  RpcClient<FsRequest, FsResponse>& client = *clients_[RouteShard(request)];
  Result<FsResponse> rpc = Status(ErrorCode::kInternal);
  for (int attempt = 1;; ++attempt) {
    {
      ScopedSpan wait(sim_, "stub", "fs.stage.rpc_wait", ctx);
      rpc = co_await client.Call(request, timeout);
    }
    const bool transport_error = !rpc.ok();
    ErrorCode code = transport_error ? rpc.code() : rpc.value().error;
    if (code == ErrorCode::kOk) {
      break;
    }
    // A transport timeout leaves the outcome unknown, so it is safe to
    // reissue anything (at-least-once for namespace ops). Server-reported
    // timeouts / I/O errors mean the op did not apply; reissue only ops
    // that are idempotent anyway.
    const bool retryable =
        idempotent ? (code == ErrorCode::kTimedOut ||
                      code == ErrorCode::kIoError)
                   : (transport_error && code == ErrorCode::kTimedOut);
    if (!retryable || attempt >= retry_.max_attempts) {
      break;
    }
    static Counter* const retries =
        MetricRegistry::Default().GetCounter("fs.stub.retries");
    retries->Increment();
    TRACE_INSTANT(sim_, "stub", "fs.stub.retry");
    co_await Delay(backoff);
    backoff *= 2;
  }
  if (!rpc.ok()) {
    co_return rpc.status();
  }
  FsResponse response = std::move(rpc).value();
  if (response.error != ErrorCode::kOk) {
    co_return Status(response.error);
  }
  call_ns->Record(sim_->now() - t0);
  co_return response;
}

Task<Result<uint64_t>> FsStub::Open(const std::string& path) {
  FsRequest request;
  request.op = FsOp::kOpen;
  request.SetPath(path);
  SOLROS_CO_ASSIGN_OR_RETURN(FsResponse r, co_await Call(request));
  co_return r.value;
}

Task<Result<uint64_t>> FsStub::OpenBuffered(const std::string& path) {
  SOLROS_CO_ASSIGN_OR_RETURN(uint64_t ino, co_await Open(path));
  buffered_inos_.insert(ino);
  co_return ino;
}

Task<Result<uint64_t>> FsStub::Create(const std::string& path) {
  FsRequest request;
  request.op = FsOp::kCreate;
  request.SetPath(path);
  SOLROS_CO_ASSIGN_OR_RETURN(FsResponse r, co_await Call(request));
  co_return r.value;
}

Task<Result<uint64_t>> FsStub::Read(uint64_t ino, uint64_t offset,
                                    MemRef target) {
  FsRequest request;
  request.op = FsOp::kRead;
  request.ino = ino;
  request.offset = offset;
  request.length = target.length;
  request.memory = target;
  SOLROS_CO_ASSIGN_OR_RETURN(FsResponse r, co_await Call(request));
  co_return r.value;
}

Task<Result<uint64_t>> FsStub::Write(uint64_t ino, uint64_t offset,
                                     MemRef source) {
  FsRequest request;
  request.op = FsOp::kWrite;
  request.ino = ino;
  request.offset = offset;
  request.length = source.length;
  request.memory = source;
  SOLROS_CO_ASSIGN_OR_RETURN(FsResponse r, co_await Call(request));
  co_return r.value;
}

Task<Result<FileStat>> FsStub::Stat(const std::string& path) {
  FsRequest request;
  request.op = FsOp::kStat;
  request.SetPath(path);
  SOLROS_CO_ASSIGN_OR_RETURN(FsResponse r, co_await Call(request));
  co_return r.stat;
}

Task<Status> FsStub::Unlink(const std::string& path) {
  FsRequest request;
  request.op = FsOp::kUnlink;
  request.SetPath(path);
  auto r = co_await Call(request);
  co_return r.status();
}

Task<Status> FsStub::Mkdir(const std::string& path) {
  FsRequest request;
  request.op = FsOp::kMkdir;
  request.SetPath(path);
  auto r = co_await Call(request);
  co_return r.status();
}

Task<Status> FsStub::Rmdir(const std::string& path) {
  FsRequest request;
  request.op = FsOp::kRmdir;
  request.SetPath(path);
  auto r = co_await Call(request);
  co_return r.status();
}

Task<Status> FsStub::Rename(const std::string& from, const std::string& to) {
  FsRequest request;
  request.op = FsOp::kRename;
  request.SetPath(from);
  request.SetPath2(to);
  auto r = co_await Call(request);
  co_return r.status();
}

Task<Result<std::vector<DirEntry>>> FsStub::Readdir(const std::string& path) {
  // Chunked zero-copy listing through a co-processor staging buffer.
  constexpr uint64_t kChunkRows = 64;
  DeviceBuffer staging(phi_cpu_->device(), kChunkRows * sizeof(Dirent));
  std::vector<DirEntry> out;
  uint64_t row = 0;
  while (true) {
    FsRequest request;
    request.op = FsOp::kReaddir;
    request.SetPath(path);
    request.offset = row;
    request.memory = MemRef::Of(staging);
    SOLROS_CO_ASSIGN_OR_RETURN(FsResponse r, co_await Call(request));
    uint64_t rows = r.value;
    for (uint64_t i = 0; i < rows; ++i) {
      Dirent ent;
      std::memcpy(&ent, staging.data() + i * sizeof(Dirent), sizeof(Dirent));
      DirEntry entry;
      entry.ino = ent.ino;
      entry.name = ent.Name();
      entry.is_dir = ent.type == (kModeDir >> 12);
      out.push_back(std::move(entry));
    }
    if (rows < kChunkRows) {
      break;
    }
    row += rows;
  }
  co_return out;
}

Task<Status> FsStub::Truncate(uint64_t ino, uint64_t size) {
  FsRequest request;
  request.op = FsOp::kTruncate;
  request.ino = ino;
  request.length = size;
  auto r = co_await Call(request);
  co_return r.status();
}

Task<Status> FsStub::Fsync(uint64_t ino) {
  FsRequest request;
  request.op = FsOp::kFsync;
  request.ino = ino;
  auto r = co_await Call(request);
  co_return r.status();
}

}  // namespace solros
