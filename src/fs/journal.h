// Write-ahead journal for SolrosFS.
//
// Physical block journaling in the jbd2 style: a transaction is a batch of
// whole-block after-images (superblock, bitmaps, inode-table blocks,
// indirect extent blocks, and — in data mode — file contents) written into
// a circular on-disk log before any home location is touched. The commit
// record carries a checksum over the descriptor and payload, so a torn
// commit is detected at replay and the transaction discarded.
//
// On-disk layout of the journal region [start, start + blocks):
//
//   block 0:       JournalSuper (head offset + next expected sequence)
//   blocks 1..N:   circular log of transactions, each
//                  [ descriptor | payload block(s) ... | commit record ]
//
// Transaction lifecycle (each barrier is a BlockStore::Flush, a real NVMe
// Flush command when the device models a volatile write cache):
//
//   1. write descriptor + payload into the log
//   2. FLUSH            -- payload durable before the commit record
//   3. write commit record (checksummed)
//   4. FLUSH            -- the transaction is now durable; the FS op acks
//   5. checkpoint: write the after-images to their home locations
//   6. FLUSH            -- home locations durable
//   7. advance head/sequence in the JournalSuper (unflushed: replaying an
//      already-checkpointed transaction is idempotent)
//
// A power cut at any point either leaves the transaction fully replayable
// (committed) or fully discardable (torn): physical after-images make
// replay idempotent, so the crash-consistency matrix can cut at every
// stage and remount.
#ifndef SOLROS_SRC_FS_JOURNAL_H_
#define SOLROS_SRC_FS_JOURNAL_H_

#include <cstdint>
#include <vector>

#include "src/base/status.h"
#include "src/fs/block_store.h"
#include "src/fs/layout.h"
#include "src/sim/task.h"

namespace solros {

// What the file system journals. Metadata journaling covers the
// superblock, bitmaps, inode table, indirect extent blocks, and directory
// contents; data mode additionally journals regular-file block images so
// acked write contents are exact after a crash.
enum class JournalMode : uint8_t { kOff, kMetadata, kData };

const char* JournalModeName(JournalMode mode);

inline constexpr uint32_t kJournalSuperMagic = 0x501f0a01;
inline constexpr uint32_t kJournalDescMagic = 0x501f0a02;
inline constexpr uint32_t kJournalCommitMagic = 0x501f0a03;
inline constexpr uint32_t kJournalVersion = 1;
inline constexpr uint64_t kDefaultJournalBlocks = 1024;
inline constexpr uint64_t kMinJournalBlocks = 8;

struct JournalSuper {
  uint32_t magic;
  uint32_t version;
  uint64_t capacity;  // log blocks (journal_blocks - 1)
  uint64_t head;      // log offset of the next transaction to replay
  uint64_t sequence;  // sequence expected at head
};
static_assert(sizeof(JournalSuper) <= kFsBlockSize);

// Descriptor block: header followed by `count` target LBAs (uint64 each).
struct JournalDescHeader {
  uint32_t magic;
  uint32_t count;
  uint64_t sequence;
};
inline constexpr uint32_t kJournalMaxPayload =
    (kFsBlockSize - sizeof(JournalDescHeader)) / sizeof(uint64_t);

struct JournalCommitBlock {
  uint32_t magic;
  uint32_t count;
  uint64_t sequence;
  uint64_t checksum;  // FNV-1a over sequence, count, LBAs, payload bytes
};
static_assert(sizeof(JournalCommitBlock) <= kFsBlockSize);

// One whole-block after-image queued into a transaction.
struct JournalBlockImage {
  uint64_t lba = 0;
  std::vector<uint8_t> data;  // kFsBlockSize bytes
};

struct JournalReplayStats {
  uint64_t applied_txns = 0;
  uint64_t discarded_txns = 0;
  uint64_t replayed_blocks = 0;
};

class Journal {
 public:
  // `start`/`blocks` name the journal region (from the superblock).
  Journal(BlockStore* store, uint64_t start, uint64_t blocks);
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // mkfs: zeroes the log area (stale descriptors from a previous life must
  // not replay) and writes a fresh JournalSuper.
  Task<Status> Format();

  // Reads the JournalSuper of an existing journal.
  Task<Status> Load();

  // Logs, commits, and checkpoints `images` (split into as many
  // transactions as the log capacity requires). When Commit returns OK the
  // images are durable — both journaled and checkpointed to their home
  // locations. A failure mid-pipeline (e.g. an injected power cut) leaves
  // the on-disk state replayable or discardable, never half-applied.
  Task<Status> Commit(const std::vector<JournalBlockImage>& images);

  // Mount-time recovery: scans from head, applies every committed
  // transaction to its home locations, stops at the first torn or absent
  // one, then persists the advanced head. Idempotent.
  Task<Status> Replay(JournalReplayStats* stats);

  uint64_t capacity() const { return capacity_; }
  uint64_t head() const { return head_; }
  uint64_t sequence() const { return sequence_; }
  // Instance-local counters (mirrored into journal.* registry metrics).
  uint64_t commits() const { return local_commits_; }
  uint64_t txns() const { return local_txns_; }
  uint64_t blocks_logged() const { return local_blocks_logged_; }

 private:
  // Physical block of circular log offset `off`.
  uint64_t LogBlock(uint64_t off) const { return start_ + 1 + off % capacity_; }
  Task<Status> WriteSuper();
  Task<Status> CommitOne(const std::vector<JournalBlockImage>& images,
                         size_t first, size_t count);
  static uint64_t Checksum(uint64_t sequence,
                           const std::vector<JournalBlockImage>& images,
                           size_t first, size_t count);

  BlockStore* store_;
  uint64_t start_;
  uint64_t capacity_;
  uint64_t head_ = 0;
  uint64_t sequence_ = 1;
  uint64_t local_commits_ = 0;
  uint64_t local_txns_ = 0;
  uint64_t local_blocks_logged_ = 0;
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_JOURNAL_H_
