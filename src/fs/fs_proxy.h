// Control-plane file-system proxy (§4.3.2).
//
// The proxy runs on the host, owns the only path to the NVMe device, and
// serves file-system RPCs from data-plane stubs. Its defining behaviour is
// the *data-path decision* per read/write:
//
//   peer-to-peer  — translate the file offset to disk extents (fiemap),
//                   translate the target address to the co-processor's
//                   system-mapped window, and issue ONE coalesced NVMe I/O
//                   vector whose DMA lands directly in co-processor memory
//                   (one doorbell, one interrupt — §5);
//   buffered      — stage through the host's shared buffer cache and move
//                   the bytes with a host-initiated DMA.
//
// Buffered is chosen when (§4.3.2): the data is cache-hot; the path would
// cross a NUMA boundary (Fig. 1(a)'s relay collapse); the file was opened
// with O_BUFFER; the transfer is not block-aligned; or the target is host
// memory anyway.
#ifndef SOLROS_SRC_FS_FS_PROXY_H_
#define SOLROS_SRC_FS_FS_PROXY_H_

#include <memory>
#include <vector>

#include "src/base/status.h"
#include "src/fs/buffer_cache.h"
#include "src/fs/nvme_block_store.h"
#include "src/fs/solros_fs.h"
#include "src/hw/dma.h"
#include "src/hw/fabric.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/rpc/messages.h"
#include "src/rpc/rpc.h"
#include "src/sim/task.h"
#include "src/transport/sim_ring.h"

namespace solros {

// Statistics that benchmarks assert on (path decisions, cache behaviour).
struct FsProxyStats {
  uint64_t requests = 0;
  uint64_t p2p_reads = 0;
  uint64_t p2p_writes = 0;
  uint64_t buffered_reads = 0;
  uint64_t buffered_writes = 0;
  // P2P transfers that faulted and were re-served via the buffered path.
  uint64_t degraded_reads = 0;
  uint64_t degraded_writes = 0;
};

class FsProxy {
 public:
  struct Options {
    // Buffer cache capacity in fs blocks (0 disables the cache).
    size_t cache_blocks = 32768;  // 128 MiB
    // Coalesce NVMe vectors into one doorbell/interrupt (the §5
    // optimization; ablatable).
    bool coalesce_nvme = true;
    // Allow P2P at all (ablation: force host-staging).
    bool allow_p2p = true;
  };

  FsProxy(Simulator* sim, PcieFabric* fabric, const HwParams& params,
          Processor* host_cpu, NvmeBlockStore* store, SolrosFs* fs,
          const Options& options);

  // Binds an RPC server on the given ring pair and starts serving.
  void Serve(SimRing* request_ring, SimRing* response_ring);

  // Handles one request (also callable directly, e.g. by HostLocalFs).
  Task<FsResponse> Handle(FsRequest request);

  // Pulls a whole file into the shared buffer cache (§4.3: the control
  // plane "prefetches frequently accessed files ... to the host memory");
  // subsequent buffered reads from any data plane are served from DRAM.
  // No-op without a cache.
  Task<Status> Prefetch(const std::string& path);

  const FsProxyStats& stats() const { return stats_; }
  BufferCache* cache() { return cache_.get(); }
  SolrosFs* fs() { return fs_; }

 private:
  Task<FsResponse> HandleRead(const FsRequest& request);
  Task<FsResponse> HandleWrite(const FsRequest& request);
  Task<FsResponse> HandleReaddir(const FsRequest& request);
  Task<FsResponse> HandleMeta(const FsRequest& request);

  // §4.3.2's four buffered-mode triggers.
  Task<Result<bool>> ShouldUseP2p(const FsRequest& request, uint64_t length);

  // Buffered helpers (cache-aware staging + one host DMA).
  Task<Status> BufferedRead(uint64_t ino, uint64_t offset, uint64_t length,
                            MemRef target);
  Task<Status> BufferedWrite(uint64_t ino, uint64_t offset, uint64_t length,
                             MemRef source);

  // Host DMA with bounded resubmission while faults are armed (the engine
  // aborts before moving bytes, so a reissue is safe).
  Task<Status> DmaCopyWithRetry(MemRef dst, MemRef src);

  // P2P health tracking: a run of faulted P2P transfers puts the P2P path
  // on cooldown so requests stop paying the fault-and-degrade latency and
  // go straight to the (working) buffered path for a while.
  void NoteP2pFault();
  void NoteP2pSuccess() { p2p_fault_streak_ = 0; }

  static FsResponse ErrorResponse(const Status& status);

  Simulator* sim_;
  PcieFabric* fabric_;
  HwParams params_;
  Processor* host_cpu_;
  NvmeBlockStore* store_;
  SolrosFs* fs_;
  Options options_;
  DmaEngine host_dma_;
  std::unique_ptr<BufferCache> cache_;
  std::vector<std::unique_ptr<RpcServer<FsRequest, FsResponse>>> servers_;
  FsProxyStats stats_;
  uint32_t p2p_fault_streak_ = 0;
  uint64_t p2p_cooldown_until_ = 0;  // request ordinal; 0 = not cooling down
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_FS_PROXY_H_
