// Control-plane file-system proxy (§4.3.2).
//
// The proxy runs on the host, owns the only path to the NVMe device, and
// serves file-system RPCs from data-plane stubs. Its defining behaviour is
// the *data-path decision* per read/write:
//
//   peer-to-peer  — translate the file offset to disk extents (fiemap),
//                   translate the target address to the co-processor's
//                   system-mapped window, and issue ONE coalesced NVMe I/O
//                   vector whose DMA lands directly in co-processor memory
//                   (one doorbell, one interrupt — §5);
//   buffered      — stage through the host's shared buffer cache and move
//                   the bytes with a host-initiated DMA.
//
// Buffered is chosen when (§4.3.2): the data is cache-hot; the path would
// cross a NUMA boundary (Fig. 1(a)'s relay collapse); the file was opened
// with O_BUFFER; the transfer is not block-aligned; or the target is host
// memory anyway.
#ifndef SOLROS_SRC_FS_FS_PROXY_H_
#define SOLROS_SRC_FS_FS_PROXY_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/base/sharding.h"
#include "src/base/status.h"
#include "src/fs/buffer_cache.h"
#include "src/fs/shared_extent_map.h"
#include "src/fs/io_scheduler.h"
#include "src/fs/nvme_block_store.h"
#include "src/fs/solros_fs.h"
#include "src/hw/dma.h"
#include "src/hw/fabric.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/rpc/messages.h"
#include "src/rpc/rpc.h"
#include "src/sim/task.h"
#include "src/sim/trace.h"
#include "src/transport/sim_ring.h"

namespace solros {

// Statistics that benchmarks assert on (path decisions, cache behaviour).
struct FsProxyStats {
  uint64_t requests = 0;
  uint64_t p2p_reads = 0;
  uint64_t p2p_writes = 0;
  uint64_t buffered_reads = 0;
  uint64_t buffered_writes = 0;
  // P2P transfers that faulted and were re-served via the buffered path.
  uint64_t degraded_reads = 0;
  uint64_t degraded_writes = 0;
};

class FsProxy;

// Registry for the sharded control plane: every FsProxy shard registers
// here and the broadcast operations (cross-shard cache invalidation,
// write-back flushes, fsync barriers) walk it. The first registered shard
// (shard 0) is the *designated barrier shard*: journal commits route
// through its core so ordered-class flushes keep one global order and the
// crash-consistency guarantees survive sharding unchanged.
class FsShardCoordinator {
 public:
  void Register(FsProxy* shard) { shards_.push_back(shard); }
  const std::vector<FsProxy*>& shards() const { return shards_; }
  FsProxy* barrier_shard() const {
    return shards_.empty() ? nullptr : shards_.front();
  }

 private:
  std::vector<FsProxy*> shards_;
};

// Identity of one proxy shard inside the sharded control plane. The
// defaults describe a standalone (unsharded) proxy, which behaves exactly
// like the historical single instance.
struct FsShardContext {
  int shard_id = 0;
  int shard_count = 1;
  // Shared versioned extent map (may be null: every Fiemap goes to the FS).
  SharedExtentMap* extent_map = nullptr;
  // Cross-shard registry (null: broadcasts degenerate to this shard only).
  FsShardCoordinator* coordinator = nullptr;
};

class FsProxy {
 public:
  struct Options {
    // Buffer cache capacity in fs blocks (0 disables the cache).
    size_t cache_blocks = 32768;  // 128 MiB
    // Coalesce NVMe vectors into one doorbell/interrupt (the §5
    // optimization; ablatable).
    bool coalesce_nvme = true;
    // Allow P2P at all (ablation: force host-staging).
    bool allow_p2p = true;

    // --- staged-path cache tuning (each independently ablatable; with all
    // of these disabled the staged path behaves exactly like the original
    // single-LRU, per-block, write-through-invalidate implementation) ---

    // Segmented-LRU scan resistance in the shared cache (probation +
    // protected segments; one co-processor's streaming scan cannot evict
    // another's hot set).
    bool cache_scan_resistant = true;
    // Fraction of the cache reserved for the protected segment.
    double cache_protected_fraction = 0.75;
    // Sequential read-ahead: per-(coprocessor, file) stream detection with
    // an adaptive window, faulted as one vectored NVMe read.
    bool readahead = true;
    uint32_t readahead_min_blocks = 8;
    uint32_t readahead_max_blocks = 64;
    // Sequential reads at or below this size are steered to the buffered
    // path so the readahead window batches their device I/O; larger
    // sequential reads keep P2P's zero-copy advantage.
    uint64_t readahead_p2p_cutover = 128 * 1024;
    // Absorb aligned buffered writes as dirty cache pages (write-back)
    // instead of writing through and invalidating.
    bool writeback_cache = true;
    // Gather LBA-contiguous dirty runs into vectored write-back on
    // eviction and flush.
    bool coalesced_writeback = true;
    // Max pages one eviction-triggered write-back cluster may carry.
    uint32_t writeback_max_batch = 256;
    // SolrosFs::ReadAt/WriteAt batch their full-block runs into one
    // vectored store submission (applied by Machine at wiring time).
    bool fs_vectored_io = true;

    // --- host-side I/O scheduler (staged-path submission policy; each
    // mechanism independently ablatable, `iosched = false` restores the
    // direct cache->store path) ---

    // Route staged-path device traffic through the I/O scheduler.
    bool iosched = true;
    // Concurrent overlapping reads share one in-flight fetch.
    bool iosched_single_flight = true;
    // Plug the queue briefly on idle arrivals so batches form.
    bool iosched_plug = true;
    Nanos iosched_plug_window = Microseconds(4);
    uint32_t iosched_plug_max_batch = 32;
    // Strict demand > write-back > readahead dispatch ordering.
    bool iosched_priority = true;
    // Deficit-round-robin across co-processors within a class.
    bool iosched_fairness = true;
    uint32_t iosched_drr_quantum = 64;
    // Pipeline depth: dispatched-but-uncompleted submissions before
    // arrivals back-pressure at the scheduler (nr_requests analogue).
    uint32_t iosched_max_inflight = 4;
  };

  // `host_cpu` is the processor the proxy's per-request CPU work runs on —
  // the shared host pool for a standalone proxy, or this shard's dedicated
  // core in a sharded control plane. `shard` identifies the shard and wires
  // the explicitly shared structures (extent map, coordinator).
  FsProxy(Simulator* sim, PcieFabric* fabric, const HwParams& params,
          Processor* host_cpu, NvmeBlockStore* store, SolrosFs* fs,
          const Options& options,
          const FsShardContext& shard = FsShardContext());

  // Binds an RPC server on the given ring pair and starts serving.
  void Serve(SimRing* request_ring, SimRing* response_ring);

  // Handles one request (also callable directly, e.g. by HostLocalFs).
  Task<FsResponse> Handle(FsRequest request);

  // Pulls a whole file into the shared buffer cache (§4.3: the control
  // plane "prefetches frequently accessed files ... to the host memory");
  // subsequent buffered reads from any data plane are served from DRAM.
  // No-op without a cache.
  Task<Status> Prefetch(const std::string& path);

  const FsProxyStats& stats() const { return stats_; }
  BufferCache* cache() { return cache_.get(); }
  // The staged-path I/O scheduler (null when options.iosched is off).
  IoScheduler* io_scheduler() { return iosched_.get(); }
  SolrosFs* fs() { return fs_; }

  // -- shard introspection ----------------------------------------------------
  int shard_id() const { return shard_.shard_id; }
  int shard_count() const { return shard_.shard_count; }
  // Telemetry/analyzer component name: "fs.proxy" or "fs.proxy[k]".
  const std::string& label() const { return label_; }
  // Per-shard memo over the shared extent map (null when unwired).
  SharedExtentMap::ShardView* extent_view() { return extent_view_.get(); }
  // Live sequential-stream table size (regression surface for the
  // shard-qualified stream keys).
  size_t read_streams() const { return streams_.size(); }

 private:
  // `ctx` is the request's trace context rooted at the service span; data
  // ops thread it down to the cache/NVMe/DMA spans they cause (metadata I/O
  // stays untagged and is attributed to proxy time).
  Task<FsResponse> HandleRead(const FsRequest& request, TraceContext ctx);
  Task<FsResponse> HandleWrite(const FsRequest& request, TraceContext ctx);
  Task<FsResponse> HandleReaddir(const FsRequest& request, TraceContext ctx);
  Task<FsResponse> HandleMeta(const FsRequest& request);

  // §4.3.2's four buffered-mode triggers, plus the readahead steer: a
  // sequential stream with an open window (`readahead_window > 0`) at or
  // below the P2P cutover goes buffered so its device reads batch.
  Task<Result<bool>> ShouldUseP2p(const FsRequest& request, uint64_t length,
                                  uint32_t readahead_window = 0);

  // Per-(shard, coprocessor, file) sequential-stream state for readahead.
  // The shard id is part of the key so streams can never alias across a
  // re-partitioning when the shard count changes (two shards may both see
  // the same (client, ino) for different block groups of one file).
  using StreamKey = std::tuple<uint32_t, uint32_t, uint64_t>;
  struct ReadStream {
    uint64_t next_offset = 0;   // where a sequential successor would start
    uint32_t window_blocks = 0; // current readahead window (0 = no stream)
    std::list<StreamKey>::iterator lru_it;  // position in stream_lru_
  };
  // Updates the stream for (client, ino) with this read and returns the
  // readahead window (blocks to speculatively stage past the request).
  uint32_t UpdateReadStream(uint32_t client, uint64_t ino, uint64_t offset,
                            uint64_t length);

  // Buffered helpers (cache-aware staging + one host DMA). `ra_blocks`
  // extends the staged range past the request (clipped to `file_size`)
  // with readahead-tagged clean pages.
  Task<Status> BufferedRead(uint64_t ino, uint64_t offset, uint64_t length,
                            MemRef target, uint32_t ra_blocks,
                            uint64_t file_size, uint32_t client,
                            TraceContext ctx);
  Task<Status> BufferedWrite(uint64_t ino, uint64_t offset, uint64_t length,
                             MemRef source, TraceContext ctx);
  // Write-back coherence: pushes dirty cached pages covering `extents` to
  // the device before a path that reads the device directly (P2P read,
  // read-modify-write). Cheap no-op when nothing is dirty.
  Task<Status> FlushExtents(const std::vector<FsExtent>& extents);

  // -- cross-shard coherence protocol -----------------------------------------
  // Fiemap through the per-shard memo of the shared versioned extent map;
  // falls through to the FS (and re-memoizes) on a stale or missing entry.
  Task<Result<std::vector<FsExtent>>> CachedFiemap(uint64_t ino,
                                                   uint64_t offset,
                                                   uint64_t length);
  // Drops cached copies of `extents` on EVERY shard (freed or rewritten
  // blocks may be cached by whichever shard served them).
  void BroadcastInvalidate(const std::vector<FsExtent>& extents);
  // FlushExtents on every shard: any shard may hold dirty pages of a block
  // the caller is about to read from the device.
  Task<Status> BroadcastFlushExtents(const std::vector<FsExtent>& extents);
  // The fsync path under a volatile write cache, shard-wide: flush every
  // shard's cache, fence every shard's scheduler with an ordered barrier,
  // then run the one journal commit via the designated barrier shard.
  Task<Status> FsyncBarrier(uint32_t client);

  // Host DMA with bounded resubmission while faults are armed (the engine
  // aborts before moving bytes, so a reissue is safe).
  Task<Status> DmaCopyWithRetry(MemRef dst, MemRef src,
                                TraceContext ctx = {});

  // P2P health tracking: a run of faulted P2P transfers puts the P2P path
  // on cooldown so requests stop paying the fault-and-degrade latency and
  // go straight to the (working) buffered path for a while.
  void NoteP2pFault();
  void NoteP2pSuccess() { p2p_fault_streak_ = 0; }

  static FsResponse ErrorResponse(const Status& status);

  Simulator* sim_;
  PcieFabric* fabric_;
  HwParams params_;
  Processor* host_cpu_;
  NvmeBlockStore* store_;
  SolrosFs* fs_;
  Options options_;
  FsShardContext shard_;
  std::string label_;  // "fs.proxy" or "fs.proxy[k]"
  DmaEngine host_dma_;
  std::unique_ptr<BufferCache> cache_;
  std::unique_ptr<IoScheduler> iosched_;
  std::unique_ptr<SharedExtentMap::ShardView> extent_view_;
  std::vector<std::unique_ptr<RpcServer<FsRequest, FsResponse>>> servers_;
  FsProxyStats stats_;
  // USE telemetry (label_): depth counts requests in service, errors count
  // system-error responses; the shard's dedicated core records its busy
  // intervals into the same series.
  UseSeries* use_ = nullptr;
  std::map<StreamKey, ReadStream> streams_;
  // MRU-first key list; back() is the victim when the table is full, so a
  // saturated table evicts in O(log n) instead of scanning every stream.
  std::list<StreamKey> stream_lru_;
  uint32_t p2p_fault_streak_ = 0;
  uint64_t p2p_cooldown_until_ = 0;  // request ordinal; 0 = not cooling down
};

}  // namespace solros

#endif  // SOLROS_SRC_FS_FS_PROXY_H_
