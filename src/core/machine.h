// Machine builder: assembles a full Solros system.
//
// One call builds the paper's testbed (§6): a two-socket host, N Xeon
// Phi-class co-processors, an NVMe SSD, and a NIC on the PCIe fabric; on
// top of it the control-plane OS (file-system proxy, TCP proxy with a
// shared-listening-socket load balancer) and one data-plane OS per
// co-processor (file-system stub, network stub), wired by ring pairs placed
// per the paper's master-placement rules:
//   * FS RPC rings: masters at the co-processor (§4.3.1);
//   * network outbound ring: master at the co-processor; inbound ring:
//     master at the host (§4.4.1), so both sides' DMA engines pull.
//
// Scale note: the simulated SSD defaults to 2 GiB of real backing bytes
// (the paper's testbed had a 1.2 TB device and used 4 GB working files;
// this repository's benches use 1 GiB files so several rigs fit in RAM —
// all bandwidth ceilings are identical, so every reported *shape* is
// unaffected).
#ifndef SOLROS_SRC_CORE_MACHINE_H_
#define SOLROS_SRC_CORE_MACHINE_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/base/metrics.h"
#include "src/core/shard.h"
#include "src/fs/fs_proxy.h"
#include "src/fs/shared_extent_map.h"
#include "src/fs/fs_stub.h"
#include "src/fs/nvme_block_store.h"
#include "src/fs/solros_fs.h"
#include "src/hw/fabric.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/net/ethernet.h"
#include "src/net/load_balancer.h"
#include "src/net/net_options.h"
#include "src/net/net_stub.h"
#include "src/net/tcp_proxy.h"
#include "src/nvme/nvme_device.h"
#include "src/sim/simulator.h"
#include "src/transport/sim_ring.h"

namespace solros {

struct MachineConfig {
  HwParams params = HwParams::Default();
  int num_phis = 1;
  // Socket placement (Fig. 1(a)'s cross-NUMA experiment moves these apart).
  int nvme_socket = 0;
  std::vector<int> phi_sockets;  // default: all on socket 0
  int nic_socket = 0;
  uint64_t nvme_capacity = GiB(2);

  FsProxy::Options fs_options;
  // Crash consistency: journal mode the FS is formatted with. Anything but
  // kOff also switches the NVMe store to the volatile-write-cache
  // durability model (real Flush commands, ordered barriers on fsync).
  JournalMode journal_mode = JournalMode::kOff;
  uint64_t journal_blocks = 0;  // 0 = kDefaultJournalBlocks
  // Recovery policies, consulted only while fault injection is armed.
  RpcRetryOptions rpc_retry;                 // FS and net stub calls
  NvmeBlockStore::RetryPolicy nvme_retry;    // block-store resubmission
  size_t rpc_ring_capacity = MiB(1);
  size_t outbound_ring_capacity = MiB(4);
  // §4.4.1 uses 128 MB; kept smaller by default because ring memory is
  // physically allocated per co-processor.
  size_t inbound_ring_capacity = MiB(8);

  bool enable_network = true;
  // Forwarding policy for shared listening sockets.
  std::unique_ptr<ForwardingPolicy> policy;  // default: round robin

  // Net data-path batching (DESIGN.md §5.5): segment coalescing, vectored
  // ring push, adaptive payload copy, DRR outbound dispatch. All default
  // off (legacy byte-identical); the constructor overlays SOLROS_NET_*
  // environment knobs via ResolveNetPathOptions.
  NetPathOptions net_options;

  // Control-plane shards: each FsProxy/TcpProxy shard runs pinned to its
  // own dedicated host core with isolated state (cache segment, scheduler,
  // stream table / sockets); only the extent map and the shared listening
  // socket stay shared. FS traffic partitions by inode range with
  // block-group striping, net traffic by connection hash. 0 (the default)
  // reads SOLROS_PROXY_SHARDS from the environment and falls back to 1;
  // the resolved value 1 is a single pinned shard under every legacy name.
  int proxy_shards = 0;

  // USE telemetry: a non-zero window creates a TelemetryHub and binds it to
  // the simulator before any component is built, so every ring, DMA engine,
  // fabric link, NVMe queue, scheduler class, and proxy loop registers a
  // series. Zero (the default) keeps telemetry fully off — no series, no
  // recording, byte-identical timing either way.
  Nanos telemetry_window = 0;
  uint32_t telemetry_windows = 256;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Formats the file system (run once before FS work).
  Task<Status> FormatFs(uint64_t inode_count = 4096);

  // Prints every subsystem's counters (proxy decisions, cache hit rates,
  // NVMe doorbells/interrupts, ring traffic) — the observability surface
  // for examples and debugging.
  void DumpStats(std::ostream& os);

  Simulator& sim() { return sim_; }
  const HwParams& params() const { return config_.params; }
  PcieFabric& fabric() { return *fabric_; }
  Processor& host_cpu() { return *host_cpu_; }
  Processor& phi_cpu(int i) { return *phi_cpus_.at(i); }
  DeviceId phi_device(int i) const { return phi_devices_.at(i); }
  DeviceId host_device() const { return host_device_; }
  int num_phis() const { return config_.num_phis; }

  NvmeDevice& nvme() { return *nvme_; }
  NvmeBlockStore& store() { return *store_; }
  SolrosFs& fs() { return *fs_; }
  // Shard 0 (the designated barrier shard; the only shard at shards=1).
  FsProxy& fs_proxy() { return *fs_proxies_.front(); }
  FsProxy& fs_proxy_shard(int k) { return *fs_proxies_.at(k); }
  int proxy_shards() const { return proxy_shards_; }
  SharedExtentMap& extent_map() { return *extent_map_; }
  FsStub& fs_stub(int i) { return *fs_stubs_.at(i); }

  EthernetFabric& ethernet() { return *ethernet_; }
  TcpProxy& tcp_proxy() { return *tcp_proxy_; }
  NetStub& net_stub(int i) { return *net_stubs_.at(i); }

  // Top-`top_k` connections (by total bytes) from the proxy's conntrack
  // table as one JSON object; "" when the network plane is disabled.
  std::string ConntrackJson(size_t top_k) const;

  // Null unless config.telemetry_window > 0.
  TelemetryHub* telemetry() { return telemetry_.get(); }

 private:
  struct DataPlaneRings {
    // One FS ring pair per proxy shard (exactly one at shards=1, under
    // the legacy "fs.req{i}"/"fs.resp{i}" names).
    std::vector<std::unique_ptr<SimRing>> fs_request;
    std::vector<std::unique_ptr<SimRing>> fs_response;
    std::unique_ptr<SimRing> net_request;
    std::unique_ptr<SimRing> net_response;
    std::unique_ptr<SimRing> inbound;
    std::unique_ptr<SimRing> outbound;
  };

  MachineConfig config_;
  Simulator sim_;
  // Declared before every component so it is destroyed after them all —
  // components hold raw UseSeries pointers into the hub.
  std::unique_ptr<TelemetryHub> telemetry_;
  // Declared before the FS/proxies: the FS extent observer and every
  // shard's ShardView point into it.
  std::unique_ptr<SharedExtentMap> extent_map_;
  std::unique_ptr<FsShardCoordinator> fs_coordinator_;
  std::unique_ptr<PcieFabric> fabric_;
  DeviceId host_device_;
  DeviceId nvme_device_;
  DeviceId nic_device_;
  std::vector<DeviceId> phi_devices_;
  std::unique_ptr<Processor> host_cpu_;
  std::vector<std::unique_ptr<Processor>> phi_cpus_;
  int proxy_shards_ = 1;
  // Dedicated per-shard cores (outlive the proxies and rings bound to
  // them).
  std::unique_ptr<ShardSet> fs_shards_;
  std::unique_ptr<ShardSet> net_shards_;
  std::unique_ptr<NvmeDevice> nvme_;
  std::unique_ptr<NvmeBlockStore> store_;
  std::unique_ptr<SolrosFs> fs_;
  std::vector<std::unique_ptr<FsProxy>> fs_proxies_;
  std::vector<DataPlaneRings> rings_;
  std::vector<std::unique_ptr<FsStub>> fs_stubs_;
  std::unique_ptr<EthernetFabric> ethernet_;
  std::unique_ptr<TcpProxy> tcp_proxy_;
  std::vector<std::unique_ptr<NetStub>> net_stubs_;
};

}  // namespace solros

#endif  // SOLROS_SRC_CORE_MACHINE_H_
