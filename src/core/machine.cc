#include "src/core/machine.h"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "src/base/fault.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"

namespace solros {
namespace {

// Resolved shard count: explicit config wins, then SOLROS_PROXY_SHARDS,
// then 1. Clamped to a sane ceiling (a shard is a dedicated host core).
int ResolveProxyShards(int configured) {
  int shards = configured;
  if (shards <= 0) {
    const char* env = std::getenv("SOLROS_PROXY_SHARDS");
    shards = env != nullptr ? std::atoi(env) : 1;
  }
  return std::clamp(shards, 1, 16);
}

}  // namespace

Machine::Machine(MachineConfig config) : config_(std::move(config)) {
  const HwParams& params = config_.params;
  if (config_.telemetry_window > 0) {
    telemetry_ = std::make_unique<TelemetryHub>(config_.telemetry_window,
                                                config_.telemetry_windows);
    sim_.set_telemetry(telemetry_.get());
  }
  proxy_shards_ = ResolveProxyShards(config_.proxy_shards);
  config_.net_options = ResolveNetPathOptions(config_.net_options);
  fabric_ = std::make_unique<PcieFabric>(&sim_, params);
  host_device_ = fabric_->HostDevice(0);

  if (config_.phi_sockets.empty()) {
    config_.phi_sockets.assign(config_.num_phis, 0);
  }
  CHECK_EQ(static_cast<int>(config_.phi_sockets.size()), config_.num_phis);

  // Host processor: both sockets' cores as one pool (the control plane may
  // run anywhere on the host).
  int host_threads = params.host_sockets * params.host_cores_per_socket * 2;
  host_cpu_ = std::make_unique<Processor>(&sim_, host_device_, host_threads,
                                          params.host_core_speed, "host-cpu");

  for (int i = 0; i < config_.num_phis; ++i) {
    DeviceId dev = fabric_->AddDevice(DeviceType::kPhi,
                                      config_.phi_sockets[i],
                                      "mic" + std::to_string(i));
    phi_devices_.push_back(dev);
    phi_cpus_.push_back(std::make_unique<Processor>(
        &sim_, dev, params.phi_cores * params.phi_threads_per_core,
        params.phi_core_speed, "phi-cpu" + std::to_string(i)));
  }

  // Dedicated control-plane cores, built BEFORE the proxies so each core
  // registers the "fs.proxy[k]"/"net.proxy[k]" series with capacity 1 (the
  // first registration fixes a series' capacity).
  fs_shards_ = std::make_unique<ShardSet>(&sim_, fabric_.get(), params,
                                          "fs.proxy", proxy_shards_);

  nvme_device_ = fabric_->AddDevice(DeviceType::kNvme, config_.nvme_socket,
                                    "nvme0");
  nvme_ = std::make_unique<NvmeDevice>(&sim_, fabric_.get(), params,
                                       nvme_device_, config_.nvme_capacity,
                                       host_cpu_.get());
  store_ = std::make_unique<NvmeBlockStore>(nvme_.get(), host_cpu_.get());
  store_->set_retry_policy(config_.nvme_retry);
  // Journaling implies the realistic durability model: the device's write
  // cache is volatile and BlockStore::Flush issues real NVMe Flush
  // commands. With journaling off (the default) the store stays
  // write-through and every seed configuration is byte-identical.
  store_->set_volatile_write_cache(config_.journal_mode != JournalMode::kOff);
  fs_ = std::make_unique<SolrosFs>(store_.get(), &sim_);
  fs_->set_vectored_io(config_.fs_options.fs_vectored_io);
  fs_->set_journal_mode(config_.journal_mode);

  // The only cross-shard FS state: the versioned extent map (invalidated by
  // the FS itself whenever an inode's extents change) and the coordinator
  // the broadcast/barrier protocol walks.
  extent_map_ = std::make_unique<SharedExtentMap>();
  fs_->set_extent_observer(
      [map = extent_map_.get()](uint64_t ino) { map->Invalidate(ino); });
  fs_coordinator_ = std::make_unique<FsShardCoordinator>();

  for (int k = 0; k < proxy_shards_; ++k) {
    FsProxy::Options shard_options = config_.fs_options;
    if (proxy_shards_ > 1 && shard_options.cache_blocks > 0) {
      // The host cache is one budget split into per-shard segments.
      shard_options.cache_blocks = std::max<size_t>(
          1, shard_options.cache_blocks / static_cast<size_t>(proxy_shards_));
    }
    FsShardContext shard;
    shard.shard_id = k;
    shard.shard_count = proxy_shards_;
    shard.extent_map = extent_map_.get();
    shard.coordinator = fs_coordinator_.get();
    fs_proxies_.push_back(std::make_unique<FsProxy>(
        &sim_, fabric_.get(), params, fs_shards_->core(k), store_.get(),
        fs_.get(), shard_options, shard));
  }

  if (config_.enable_network) {
    nic_device_ = fabric_->AddDevice(DeviceType::kNic, config_.nic_socket,
                                     "nic0");
    ethernet_ = std::make_unique<EthernetFabric>(&sim_, params);
    std::unique_ptr<ForwardingPolicy> policy = std::move(config_.policy);
    if (policy == nullptr) {
      policy = std::make_unique<RoundRobinPolicy>();
    }
    net_shards_ = std::make_unique<ShardSet>(&sim_, fabric_.get(), params,
                                             "net.proxy", proxy_shards_);
    std::vector<Processor*> net_cores;
    net_cores.reserve(static_cast<size_t>(proxy_shards_));
    for (int k = 0; k < proxy_shards_; ++k) {
      net_cores.push_back(net_shards_->core(k));
    }
    tcp_proxy_ = std::make_unique<TcpProxy>(&sim_, params, host_cpu_.get(),
                                            ethernet_.get(),
                                            std::move(policy),
                                            std::move(net_cores),
                                            config_.net_options);
  }

  rings_.resize(config_.num_phis);
  for (int i = 0; i < config_.num_phis; ++i) {
    DataPlaneRings& rings = rings_[i];
    DeviceId phi = phi_devices_[i];
    Processor* phi_cpu = phi_cpus_[i].get();

    // `host_dev`/`host_proc` are the host-side port of the ring: the shard
    // core that owns the ring for FS pairs, the shared pool for net rings
    // (only TCP *processing* is sharded; ring pumping stays on the pool).
    auto make_ring = [&](const std::string& name, size_t capacity,
                         DeviceId master, bool phi_produces,
                         DeviceId host_dev, Processor* host_proc)
        -> std::unique_ptr<SimRing> {
      SimRingConfig rc;
      rc.name = name;
      rc.capacity = capacity;
      rc.master_device = master;
      rc.producer_device = phi_produces ? phi : host_dev;
      rc.consumer_device = phi_produces ? host_dev : phi;
      rc.producer_cpu = phi_produces ? phi_cpu : host_proc;
      rc.consumer_cpu = phi_produces ? host_proc : phi_cpu;
      return std::make_unique<SimRing>(&sim_, fabric_.get(), params, rc);
    };

    // FS RPC rings: masters at the co-processor (§4.3.1), one pair per
    // proxy shard, host port on the shard's dedicated core. At shards=1
    // the names stay the legacy "fs.req{i}"/"fs.resp{i}".
    std::vector<std::pair<SimRing*, SimRing*>> stub_rings;
    for (int k = 0; k < proxy_shards_; ++k) {
      const std::string suffix =
          proxy_shards_ > 1 ? ".s" + std::to_string(k) : "";
      Processor* shard_core = fs_shards_->core(k);
      rings.fs_request.push_back(
          make_ring("fs.req" + std::to_string(i) + suffix,
                    config_.rpc_ring_capacity, phi, true,
                    shard_core->device(), shard_core));
      rings.fs_response.push_back(
          make_ring("fs.resp" + std::to_string(i) + suffix,
                    config_.rpc_ring_capacity, phi, false,
                    shard_core->device(), shard_core));
      fs_proxies_[k]->Serve(rings.fs_request.back().get(),
                            rings.fs_response.back().get());
      stub_rings.emplace_back(rings.fs_request.back().get(),
                              rings.fs_response.back().get());
    }
    fs_stubs_.push_back(std::make_unique<FsStub>(
        &sim_, params, phi_cpu, std::move(stub_rings),
        static_cast<uint32_t>(i)));
    fs_stubs_.back()->set_retry_options(config_.rpc_retry);

    if (config_.enable_network) {
      rings.net_request =
          make_ring("net.req" + std::to_string(i), config_.rpc_ring_capacity,
                    phi, true, host_device_, host_cpu_.get());
      rings.net_response =
          make_ring("net.resp" + std::to_string(i), config_.rpc_ring_capacity,
                    phi, false, host_device_, host_cpu_.get());
      // Outbound master at the Phi; inbound master at the host (§4.4.1).
      rings.outbound =
          make_ring("net.out" + std::to_string(i),
                    config_.outbound_ring_capacity, phi, true, host_device_,
                    host_cpu_.get());
      rings.inbound =
          make_ring("net.in" + std::to_string(i),
                    config_.inbound_ring_capacity, host_device_, false,
                    host_device_, host_cpu_.get());
      tcp_proxy_->AttachDataPlane(static_cast<uint32_t>(i),
                                  rings.net_request.get(),
                                  rings.net_response.get(),
                                  rings.inbound.get(), rings.outbound.get());
      net_stubs_.push_back(std::make_unique<NetStub>(
          &sim_, params, phi_cpu, rings.net_request.get(),
          rings.net_response.get(), rings.inbound.get(),
          rings.outbound.get(), config_.net_options));
      net_stubs_.back()->set_retry_options(config_.rpc_retry);
    }
  }

  if (telemetry_ != nullptr) {
    // Request-path containment edges for the bottleneck analyzer: a child's
    // queue depth is a subset of its parent's (an FS request counted in
    // fs.proxy[k] is also counted while parked in that shard's iosched
    // class queue, at the NVMe device, or in a host DMA copy), so the
    // analyzer subtracts child depth to get the shard's own exclusive
    // backlog. Each shard gets its own edge set to its own children.
    const std::string nvme_name = fabric_->NameOf(nvme_device_);
    for (int k = 0; k < proxy_shards_; ++k) {
      const std::string label = ShardLabel("fs.proxy", k, proxy_shards_);
      const std::string suffix =
          proxy_shards_ > 1 ? "[" + std::to_string(k) + "]" : "";
      for (const char* cls : {"iosched.ordered", "iosched.demand",
                              "iosched.writeback", "iosched.readahead"}) {
        telemetry_->DeclareEdge(label, cls + suffix);
      }
      telemetry_->DeclareEdge(label, nvme_name);
      telemetry_->DeclareEdge(
          label, "dma." + fabric_->NameOf(fs_shards_->core(k)->device()));
    }
    if (config_.enable_network) {
      for (int k = 0; k < proxy_shards_; ++k) {
        const std::string label = ShardLabel("net.proxy", k, proxy_shards_);
        telemetry_->DeclareEdge(label, "net.wire.up");
        telemetry_->DeclareEdge(label, "net.wire.down");
        // Per-connection series (conntrack) hang off their event-loop shard.
        telemetry_->DeclareEdge(label,
                                ShardLabel("net.conn", k, proxy_shards_));
      }
    }
  }
}

Machine::~Machine() {
  // Close rings so pump tasks can observe shutdown if the simulator is run
  // again; detached frames still parked at process exit are reclaimed by
  // the OS.
  for (DataPlaneRings& rings : rings_) {
    for (auto& ring : rings.fs_request) {
      ring->Close();
    }
    for (auto& ring : rings.fs_response) {
      ring->Close();
    }
    for (SimRing* ring : {rings.net_request.get(), rings.net_response.get(),
                          rings.inbound.get(), rings.outbound.get()}) {
      if (ring != nullptr) {
        ring->Close();
      }
    }
  }
}

std::string Machine::ConntrackJson(size_t top_k) const {
  if (tcp_proxy_ == nullptr) {
    return "";
  }
  std::ostringstream os;
  tcp_proxy_->conntrack().WriteTopJson(os, top_k);
  return os.str();
}

Task<Status> Machine::FormatFs(uint64_t inode_count) {
  co_return co_await fs_->Format(inode_count, config_.journal_blocks);
}

void Machine::DumpStats(std::ostream& os) {
  os << "=== machine stats @ " << ToMillis(sim_.now()) << " ms sim time\n";
  FsProxyStats fs;  // aggregated over shards
  for (auto& proxy : fs_proxies_) {
    const FsProxyStats& s = proxy->stats();
    fs.requests += s.requests;
    fs.p2p_reads += s.p2p_reads;
    fs.p2p_writes += s.p2p_writes;
    fs.buffered_reads += s.buffered_reads;
    fs.buffered_writes += s.buffered_writes;
    fs.degraded_reads += s.degraded_reads;
    fs.degraded_writes += s.degraded_writes;
  }
  os << "fs-proxy: " << fs.requests << " rpcs; reads p2p/buffered "
     << fs.p2p_reads << "/" << fs.buffered_reads << "; writes p2p/buffered "
     << fs.p2p_writes << "/" << fs.buffered_writes;
  if (proxy_shards_ > 1) {
    os << "; shards";
    for (auto& proxy : fs_proxies_) {
      os << " " << proxy->stats().requests;
    }
  }
  os << "\n";
  if (fs.degraded_reads + fs.degraded_writes > 0) {
    os << "fs-proxy degradations: reads " << fs.degraded_reads
       << ", writes " << fs.degraded_writes << "\n";
  }
  for (auto& proxy : fs_proxies_) {
    if (proxy->cache() == nullptr) {
      continue;
    }
    BufferCache* cache = proxy->cache();
    os << (proxy_shards_ > 1 ? "buffer-cache[" + std::to_string(
                                   proxy->shard_id()) + "]: "
                             : std::string("buffer-cache: "))
       << cache->hits() << " hits, " << cache->misses() << " misses, "
       << cache->evictions() << " evictions, " << cache->size() << "/"
       << cache->capacity() << " pages";
    if (cache->options().scan_resistant) {
      os << " (probation/protected " << cache->probation_pages() << "/"
         << cache->protected_pages() << ")";
    }
    if (cache->readahead_hits() > 0 || cache->dirty_pages() > 0) {
      os << "; readahead hits " << cache->readahead_hits() << ", dirty "
         << cache->dirty_pages();
    }
    os << "\n";
  }
  for (auto& proxy : fs_proxies_) {
    IoScheduler* sched = proxy->io_scheduler();
    if (sched == nullptr) {
      continue;
    }
    os << (proxy_shards_ > 1 ? "io-scheduler[" + std::to_string(
                                   proxy->shard_id()) + "]: "
                             : std::string("io-scheduler: "))
       << sched->batches() << " batches, " << sched->plugs() << " plugs, "
       << sched->merges() << " merges, " << sched->dedup_hits()
       << " dedup hits; dispatched d/w/r "
       << sched->dispatched(IoClass::kDemand) << "/"
       << sched->dispatched(IoClass::kWriteback) << "/"
       << sched->dispatched(IoClass::kReadahead) << "\n";
  }
  if (proxy_shards_ > 1) {
    os << "extent-map: " << extent_map_->invalidations()
       << " invalidations\n";
  }
  os << "nvme: " << nvme_->commands_completed() << " commands, "
     << nvme_->doorbells_rung() << " doorbells, "
     << nvme_->interrupts_raised() << " interrupts, "
     << nvme_->bytes_read() / MiB(1) << " MiB read, "
     << nvme_->bytes_written() / MiB(1) << " MiB written\n";
  if (tcp_proxy_ != nullptr) {
    const TcpProxyStats& net = tcp_proxy_->stats();
    os << "tcp-proxy: " << net.rpcs << " rpcs, "
       << net.connections_forwarded << " connections, in/out messages "
       << net.inbound_messages << "/" << net.outbound_messages
       << ", in/out bytes " << net.inbound_bytes << "/"
       << net.outbound_bytes;
    if (net.shard_handoffs > 0) {
      os << ", shard handoffs " << net.shard_handoffs;
    }
    os << "\n";
  }
  for (int i = 0; i < config_.num_phis; ++i) {
    const DataPlaneRings& rings = rings_[i];
    uint64_t fs_reqs = 0;
    for (const auto& ring : rings.fs_request) {
      fs_reqs += ring->messages_sent();
    }
    os << "dataplane " << i << ": fs-rpc " << fs_reqs << " reqs";
    if (rings.inbound != nullptr) {
      os << "; net inbound/outbound msgs "
         << rings.inbound->messages_received() << "/"
         << rings.outbound->messages_received();
    }
    os << "\n";
  }
  os << "--- metric registry ---\n";
  MetricRegistry::Default().DumpText(os);
  if (Faults().any_armed()) {
    os << "--- fault points ---\n";
    Faults().DumpText(os);
  }
}

}  // namespace solros
