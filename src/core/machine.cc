#include "src/core/machine.h"

#include <ostream>
#include <string>
#include <utility>

#include "src/base/fault.h"
#include "src/base/logging.h"
#include "src/base/metrics.h"

namespace solros {

Machine::Machine(MachineConfig config) : config_(std::move(config)) {
  const HwParams& params = config_.params;
  if (config_.telemetry_window > 0) {
    telemetry_ = std::make_unique<TelemetryHub>(config_.telemetry_window,
                                                config_.telemetry_windows);
    sim_.set_telemetry(telemetry_.get());
  }
  fabric_ = std::make_unique<PcieFabric>(&sim_, params);
  host_device_ = fabric_->HostDevice(0);

  if (config_.phi_sockets.empty()) {
    config_.phi_sockets.assign(config_.num_phis, 0);
  }
  CHECK_EQ(static_cast<int>(config_.phi_sockets.size()), config_.num_phis);

  // Host processor: both sockets' cores as one pool (the control plane may
  // run anywhere on the host).
  int host_threads = params.host_sockets * params.host_cores_per_socket * 2;
  host_cpu_ = std::make_unique<Processor>(&sim_, host_device_, host_threads,
                                          params.host_core_speed, "host-cpu");

  for (int i = 0; i < config_.num_phis; ++i) {
    DeviceId dev = fabric_->AddDevice(DeviceType::kPhi,
                                      config_.phi_sockets[i],
                                      "mic" + std::to_string(i));
    phi_devices_.push_back(dev);
    phi_cpus_.push_back(std::make_unique<Processor>(
        &sim_, dev, params.phi_cores * params.phi_threads_per_core,
        params.phi_core_speed, "phi-cpu" + std::to_string(i)));
  }

  nvme_device_ = fabric_->AddDevice(DeviceType::kNvme, config_.nvme_socket,
                                    "nvme0");
  nvme_ = std::make_unique<NvmeDevice>(&sim_, fabric_.get(), params,
                                       nvme_device_, config_.nvme_capacity,
                                       host_cpu_.get());
  store_ = std::make_unique<NvmeBlockStore>(nvme_.get(), host_cpu_.get());
  store_->set_retry_policy(config_.nvme_retry);
  // Journaling implies the realistic durability model: the device's write
  // cache is volatile and BlockStore::Flush issues real NVMe Flush
  // commands. With journaling off (the default) the store stays
  // write-through and every seed configuration is byte-identical.
  store_->set_volatile_write_cache(config_.journal_mode != JournalMode::kOff);
  fs_ = std::make_unique<SolrosFs>(store_.get(), &sim_);
  fs_->set_vectored_io(config_.fs_options.fs_vectored_io);
  fs_->set_journal_mode(config_.journal_mode);
  fs_proxy_ = std::make_unique<FsProxy>(&sim_, fabric_.get(), params,
                                        host_cpu_.get(), store_.get(),
                                        fs_.get(), config_.fs_options);

  if (config_.enable_network) {
    nic_device_ = fabric_->AddDevice(DeviceType::kNic, config_.nic_socket,
                                     "nic0");
    ethernet_ = std::make_unique<EthernetFabric>(&sim_, params);
    std::unique_ptr<ForwardingPolicy> policy = std::move(config_.policy);
    if (policy == nullptr) {
      policy = std::make_unique<RoundRobinPolicy>();
    }
    tcp_proxy_ = std::make_unique<TcpProxy>(&sim_, params, host_cpu_.get(),
                                            ethernet_.get(),
                                            std::move(policy));
  }

  rings_.resize(config_.num_phis);
  for (int i = 0; i < config_.num_phis; ++i) {
    DataPlaneRings& rings = rings_[i];
    DeviceId phi = phi_devices_[i];
    Processor* phi_cpu = phi_cpus_[i].get();

    auto make_ring = [&](const std::string& name, size_t capacity,
                         DeviceId master, bool phi_produces)
        -> std::unique_ptr<SimRing> {
      SimRingConfig rc;
      rc.name = name + std::to_string(i);
      rc.capacity = capacity;
      rc.master_device = master;
      rc.producer_device = phi_produces ? phi : host_device_;
      rc.consumer_device = phi_produces ? host_device_ : phi;
      rc.producer_cpu = phi_produces ? phi_cpu : host_cpu_.get();
      rc.consumer_cpu = phi_produces ? host_cpu_.get() : phi_cpu;
      return std::make_unique<SimRing>(&sim_, fabric_.get(), params, rc);
    };

    // FS RPC rings: masters at the co-processor (§4.3.1).
    rings.fs_request =
        make_ring("fs.req", config_.rpc_ring_capacity, phi, true);
    rings.fs_response =
        make_ring("fs.resp", config_.rpc_ring_capacity, phi, false);
    fs_stubs_.push_back(std::make_unique<FsStub>(
        &sim_, params, phi_cpu, rings.fs_request.get(),
        rings.fs_response.get(), static_cast<uint32_t>(i)));
    fs_stubs_.back()->set_retry_options(config_.rpc_retry);
    fs_proxy_->Serve(rings.fs_request.get(), rings.fs_response.get());

    if (config_.enable_network) {
      rings.net_request =
          make_ring("net.req", config_.rpc_ring_capacity, phi, true);
      rings.net_response =
          make_ring("net.resp", config_.rpc_ring_capacity, phi, false);
      // Outbound master at the Phi; inbound master at the host (§4.4.1).
      rings.outbound =
          make_ring("net.out", config_.outbound_ring_capacity, phi, true);
      rings.inbound =
          make_ring("net.in", config_.inbound_ring_capacity, host_device_,
                    false);
      tcp_proxy_->AttachDataPlane(static_cast<uint32_t>(i),
                                  rings.net_request.get(),
                                  rings.net_response.get(),
                                  rings.inbound.get(), rings.outbound.get());
      net_stubs_.push_back(std::make_unique<NetStub>(
          &sim_, params, phi_cpu, rings.net_request.get(),
          rings.net_response.get(), rings.inbound.get(),
          rings.outbound.get()));
      net_stubs_.back()->set_retry_options(config_.rpc_retry);
    }
  }

  if (telemetry_ != nullptr) {
    // Request-path containment edges for the bottleneck analyzer: a child's
    // queue depth is a subset of its parent's (an FS request counted in
    // fs.proxy is also counted while parked in an iosched class queue, at
    // the NVMe device, or in a host DMA copy), so the analyzer subtracts
    // child depth to get the proxy's own exclusive backlog.
    const std::string host_dma = "dma." + fabric_->NameOf(host_device_);
    const std::string nvme_name = fabric_->NameOf(nvme_device_);
    for (const char* cls : {"iosched.ordered", "iosched.demand",
                            "iosched.writeback", "iosched.readahead"}) {
      telemetry_->DeclareEdge("fs.proxy", cls);
    }
    telemetry_->DeclareEdge("fs.proxy", nvme_name);
    telemetry_->DeclareEdge("fs.proxy", host_dma);
    if (config_.enable_network) {
      telemetry_->DeclareEdge("net.proxy", "net.wire.up");
      telemetry_->DeclareEdge("net.proxy", "net.wire.down");
    }
  }
}

Machine::~Machine() {
  // Close rings so pump tasks can observe shutdown if the simulator is run
  // again; detached frames still parked at process exit are reclaimed by
  // the OS.
  for (DataPlaneRings& rings : rings_) {
    for (SimRing* ring :
         {rings.fs_request.get(), rings.fs_response.get(),
          rings.net_request.get(), rings.net_response.get(),
          rings.inbound.get(), rings.outbound.get()}) {
      if (ring != nullptr) {
        ring->Close();
      }
    }
  }
}

Task<Status> Machine::FormatFs(uint64_t inode_count) {
  co_return co_await fs_->Format(inode_count, config_.journal_blocks);
}

void Machine::DumpStats(std::ostream& os) {
  os << "=== machine stats @ " << ToMillis(sim_.now()) << " ms sim time\n";
  const FsProxyStats& fs = fs_proxy_->stats();
  os << "fs-proxy: " << fs.requests << " rpcs; reads p2p/buffered "
     << fs.p2p_reads << "/" << fs.buffered_reads << "; writes p2p/buffered "
     << fs.p2p_writes << "/" << fs.buffered_writes << "\n";
  if (fs.degraded_reads + fs.degraded_writes > 0) {
    os << "fs-proxy degradations: reads " << fs.degraded_reads
       << ", writes " << fs.degraded_writes << "\n";
  }
  if (fs_proxy_->cache() != nullptr) {
    BufferCache* cache = fs_proxy_->cache();
    os << "buffer-cache: " << cache->hits() << " hits, " << cache->misses()
       << " misses, " << cache->evictions() << " evictions, "
       << cache->size() << "/" << cache->capacity() << " pages";
    if (cache->options().scan_resistant) {
      os << " (probation/protected " << cache->probation_pages() << "/"
         << cache->protected_pages() << ")";
    }
    if (cache->readahead_hits() > 0 || cache->dirty_pages() > 0) {
      os << "; readahead hits " << cache->readahead_hits() << ", dirty "
         << cache->dirty_pages();
    }
    os << "\n";
  }
  if (IoScheduler* sched = fs_proxy_->io_scheduler(); sched != nullptr) {
    os << "io-scheduler: " << sched->batches() << " batches, "
       << sched->plugs() << " plugs, " << sched->merges() << " merges, "
       << sched->dedup_hits() << " dedup hits; dispatched d/w/r "
       << sched->dispatched(IoClass::kDemand) << "/"
       << sched->dispatched(IoClass::kWriteback) << "/"
       << sched->dispatched(IoClass::kReadahead) << "\n";
  }
  os << "nvme: " << nvme_->commands_completed() << " commands, "
     << nvme_->doorbells_rung() << " doorbells, "
     << nvme_->interrupts_raised() << " interrupts, "
     << nvme_->bytes_read() / MiB(1) << " MiB read, "
     << nvme_->bytes_written() / MiB(1) << " MiB written\n";
  if (tcp_proxy_ != nullptr) {
    const TcpProxyStats& net = tcp_proxy_->stats();
    os << "tcp-proxy: " << net.rpcs << " rpcs, "
       << net.connections_forwarded << " connections, in/out messages "
       << net.inbound_messages << "/" << net.outbound_messages
       << ", in/out bytes " << net.inbound_bytes << "/"
       << net.outbound_bytes << "\n";
  }
  for (int i = 0; i < config_.num_phis; ++i) {
    const DataPlaneRings& rings = rings_[i];
    os << "dataplane " << i << ": fs-rpc "
       << rings.fs_request->messages_sent() << " reqs";
    if (rings.inbound != nullptr) {
      os << "; net inbound/outbound msgs "
         << rings.inbound->messages_received() << "/"
         << rings.outbound->messages_received();
    }
    os << "\n";
  }
  os << "--- metric registry ---\n";
  MetricRegistry::Default().DumpText(os);
  if (Faults().any_armed()) {
    os << "--- fault points ---\n";
    Faults().DumpText(os);
  }
}

}  // namespace solros
