// Dedicated cores for the sharded control plane.
//
// A ShardSet owns one single-thread host Processor per control-plane shard.
// Pinning each shard to its own core is the point of the design: a shard's
// event loop (ring polling, RPC handling, the full FS or TCP stack) runs
// serialized on that core, so N shards scale service capacity N-fold while
// each shard's state (cache segment, scheduler, stream table, sockets)
// stays single-writer and lock-free — the classic per-core "share nothing
// by default, share the allocator by design" control-plane layout.
//
// Cores are striped round-robin across host sockets so a multi-socket host
// splits shard work evenly, and each core registers its busy time directly
// into the owning service's USE series ("fs.proxy[k]", "net.proxy[k]"; the
// bare service name at count == 1), so shard utilization and shard queue
// depth land in one series and the bottleneck analyzer names the shard.
#ifndef SOLROS_SRC_CORE_SHARD_H_
#define SOLROS_SRC_CORE_SHARD_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/sharding.h"
#include "src/hw/fabric.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"

namespace solros {

class ShardSet {
 public:
  // `service` is the telemetry family ("fs.proxy", "net.proxy"); core k
  // records into ShardLabel(service, k, count). Build the set BEFORE the
  // service registers its own series: the first GetSeries call fixes the
  // series capacity at this core's one hardware thread.
  ShardSet(Simulator* sim, PcieFabric* fabric, const HwParams& params,
           std::string_view service, int count) {
    cores_.reserve(static_cast<size_t>(count));
    for (int k = 0; k < count; ++k) {
      const int socket = k % params.host_sockets;
      cores_.push_back(std::make_unique<Processor>(
          sim, fabric->HostDevice(socket), /*hw_threads=*/1,
          params.host_core_speed,
          std::string(service) + "-shard" + std::to_string(k),
          ShardLabel(service, k, count)));
    }
  }

  int count() const { return static_cast<int>(cores_.size()); }
  Processor* core(int k) { return cores_.at(static_cast<size_t>(k)).get(); }

 private:
  std::vector<std::unique_ptr<Processor>> cores_;
};

}  // namespace solros

#endif  // SOLROS_SRC_CORE_SHARD_H_
