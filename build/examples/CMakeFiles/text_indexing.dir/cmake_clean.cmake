file(REMOVE_RECURSE
  "CMakeFiles/text_indexing.dir/text_indexing.cpp.o"
  "CMakeFiles/text_indexing.dir/text_indexing.cpp.o.d"
  "text_indexing"
  "text_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
