# Empty compiler generated dependencies file for text_indexing.
# This may be replaced when dependencies are built.
