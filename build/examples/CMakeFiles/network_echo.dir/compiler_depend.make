# Empty compiler generated dependencies file for network_echo.
# This may be replaced when dependencies are built.
