file(REMOVE_RECURSE
  "CMakeFiles/network_echo.dir/network_echo.cpp.o"
  "CMakeFiles/network_echo.dir/network_echo.cpp.o.d"
  "network_echo"
  "network_echo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
