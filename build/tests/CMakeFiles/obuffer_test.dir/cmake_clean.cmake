file(REMOVE_RECURSE
  "CMakeFiles/obuffer_test.dir/core/obuffer_test.cc.o"
  "CMakeFiles/obuffer_test.dir/core/obuffer_test.cc.o.d"
  "obuffer_test"
  "obuffer_test.pdb"
  "obuffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obuffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
