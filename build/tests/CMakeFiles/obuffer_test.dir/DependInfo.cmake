
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/obuffer_test.cc" "tests/CMakeFiles/obuffer_test.dir/core/obuffer_test.cc.o" "gcc" "tests/CMakeFiles/obuffer_test.dir/core/obuffer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/solros_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/solros_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/solros_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/solros_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/solros_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/solros_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/solros_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/solros_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
