# Empty dependencies file for obuffer_test.
# This may be replaced when dependencies are built.
