# Empty compiler generated dependencies file for baseline_fs_test.
# This may be replaced when dependencies are built.
