file(REMOVE_RECURSE
  "CMakeFiles/baseline_fs_test.dir/fs/baseline_fs_test.cc.o"
  "CMakeFiles/baseline_fs_test.dir/fs/baseline_fs_test.cc.o.d"
  "baseline_fs_test"
  "baseline_fs_test.pdb"
  "baseline_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
