# Empty compiler generated dependencies file for sim_ring_test.
# This may be replaced when dependencies are built.
