file(REMOVE_RECURSE
  "CMakeFiles/sim_ring_test.dir/transport/sim_ring_test.cc.o"
  "CMakeFiles/sim_ring_test.dir/transport/sim_ring_test.cc.o.d"
  "sim_ring_test"
  "sim_ring_test.pdb"
  "sim_ring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
