file(REMOVE_RECURSE
  "CMakeFiles/proxy_ablation_test.dir/core/proxy_ablation_test.cc.o"
  "CMakeFiles/proxy_ablation_test.dir/core/proxy_ablation_test.cc.o.d"
  "proxy_ablation_test"
  "proxy_ablation_test.pdb"
  "proxy_ablation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
