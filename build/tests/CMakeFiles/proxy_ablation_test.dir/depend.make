# Empty dependencies file for proxy_ablation_test.
# This may be replaced when dependencies are built.
