# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/nvme_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/sim_ring_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/proxy_ablation_test[1]_include.cmake")
include("/root/repo/build/tests/obuffer_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/kv_store_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_fs_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/full_system_test[1]_include.cmake")
