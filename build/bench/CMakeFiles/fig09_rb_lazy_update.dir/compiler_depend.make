# Empty compiler generated dependencies file for fig09_rb_lazy_update.
# This may be replaced when dependencies are built.
