file(REMOVE_RECURSE
  "CMakeFiles/fig09_rb_lazy_update.dir/fig09_rb_lazy_update.cpp.o"
  "CMakeFiles/fig09_rb_lazy_update.dir/fig09_rb_lazy_update.cpp.o.d"
  "fig09_rb_lazy_update"
  "fig09_rb_lazy_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_rb_lazy_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
