file(REMOVE_RECURSE
  "CMakeFiles/fig16_shared_listen_scaling.dir/fig16_shared_listen_scaling.cpp.o"
  "CMakeFiles/fig16_shared_listen_scaling.dir/fig16_shared_listen_scaling.cpp.o.d"
  "fig16_shared_listen_scaling"
  "fig16_shared_listen_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_shared_listen_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
