# Empty dependencies file for fig16_shared_listen_scaling.
# This may be replaced when dependencies are built.
