file(REMOVE_RECURSE
  "CMakeFiles/fig01a_motivation_fs.dir/fig01a_motivation_fs.cpp.o"
  "CMakeFiles/fig01a_motivation_fs.dir/fig01a_motivation_fs.cpp.o.d"
  "fig01a_motivation_fs"
  "fig01a_motivation_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01a_motivation_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
