# Empty dependencies file for fig01a_motivation_fs.
# This may be replaced when dependencies are built.
