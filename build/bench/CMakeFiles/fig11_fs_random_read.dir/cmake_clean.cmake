file(REMOVE_RECURSE
  "CMakeFiles/fig11_fs_random_read.dir/fig11_fs_random_read.cpp.o"
  "CMakeFiles/fig11_fs_random_read.dir/fig11_fs_random_read.cpp.o.d"
  "fig11_fs_random_read"
  "fig11_fs_random_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_fs_random_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
