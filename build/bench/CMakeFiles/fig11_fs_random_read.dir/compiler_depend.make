# Empty compiler generated dependencies file for fig11_fs_random_read.
# This may be replaced when dependencies are built.
