# Empty compiler generated dependencies file for fig10_rb_adaptive_copy.
# This may be replaced when dependencies are built.
