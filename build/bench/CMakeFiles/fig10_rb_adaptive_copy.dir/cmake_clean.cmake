file(REMOVE_RECURSE
  "CMakeFiles/fig10_rb_adaptive_copy.dir/fig10_rb_adaptive_copy.cpp.o"
  "CMakeFiles/fig10_rb_adaptive_copy.dir/fig10_rb_adaptive_copy.cpp.o.d"
  "fig10_rb_adaptive_copy"
  "fig10_rb_adaptive_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rb_adaptive_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
