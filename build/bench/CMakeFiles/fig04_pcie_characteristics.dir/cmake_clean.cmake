file(REMOVE_RECURSE
  "CMakeFiles/fig04_pcie_characteristics.dir/fig04_pcie_characteristics.cpp.o"
  "CMakeFiles/fig04_pcie_characteristics.dir/fig04_pcie_characteristics.cpp.o.d"
  "fig04_pcie_characteristics"
  "fig04_pcie_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_pcie_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
