# Empty dependencies file for fig04_pcie_characteristics.
# This may be replaced when dependencies are built.
