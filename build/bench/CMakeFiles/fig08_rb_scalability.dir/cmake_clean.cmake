file(REMOVE_RECURSE
  "CMakeFiles/fig08_rb_scalability.dir/fig08_rb_scalability.cpp.o"
  "CMakeFiles/fig08_rb_scalability.dir/fig08_rb_scalability.cpp.o.d"
  "fig08_rb_scalability"
  "fig08_rb_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_rb_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
