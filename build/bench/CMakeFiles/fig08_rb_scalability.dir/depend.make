# Empty dependencies file for fig08_rb_scalability.
# This may be replaced when dependencies are built.
