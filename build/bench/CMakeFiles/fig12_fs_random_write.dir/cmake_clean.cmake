file(REMOVE_RECURSE
  "CMakeFiles/fig12_fs_random_write.dir/fig12_fs_random_write.cpp.o"
  "CMakeFiles/fig12_fs_random_write.dir/fig12_fs_random_write.cpp.o.d"
  "fig12_fs_random_write"
  "fig12_fs_random_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_fs_random_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
