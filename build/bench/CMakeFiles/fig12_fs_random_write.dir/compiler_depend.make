# Empty compiler generated dependencies file for fig12_fs_random_write.
# This may be replaced when dependencies are built.
