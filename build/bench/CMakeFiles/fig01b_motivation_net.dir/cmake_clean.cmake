file(REMOVE_RECURSE
  "CMakeFiles/fig01b_motivation_net.dir/fig01b_motivation_net.cpp.o"
  "CMakeFiles/fig01b_motivation_net.dir/fig01b_motivation_net.cpp.o.d"
  "fig01b_motivation_net"
  "fig01b_motivation_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01b_motivation_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
