# Empty compiler generated dependencies file for fig01b_motivation_net.
# This may be replaced when dependencies are built.
