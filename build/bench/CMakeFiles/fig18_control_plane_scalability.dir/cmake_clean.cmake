file(REMOVE_RECURSE
  "CMakeFiles/fig18_control_plane_scalability.dir/fig18_control_plane_scalability.cpp.o"
  "CMakeFiles/fig18_control_plane_scalability.dir/fig18_control_plane_scalability.cpp.o.d"
  "fig18_control_plane_scalability"
  "fig18_control_plane_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_control_plane_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
