# Empty compiler generated dependencies file for fig18_control_plane_scalability.
# This may be replaced when dependencies are built.
