file(REMOVE_RECURSE
  "CMakeFiles/fig13_latency_breakdown.dir/fig13_latency_breakdown.cpp.o"
  "CMakeFiles/fig13_latency_breakdown.dir/fig13_latency_breakdown.cpp.o.d"
  "fig13_latency_breakdown"
  "fig13_latency_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_latency_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
