file(REMOVE_RECURSE
  "CMakeFiles/fig17_applications.dir/fig17_applications.cpp.o"
  "CMakeFiles/fig17_applications.dir/fig17_applications.cpp.o.d"
  "fig17_applications"
  "fig17_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
