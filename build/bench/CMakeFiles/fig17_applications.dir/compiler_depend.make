# Empty compiler generated dependencies file for fig17_applications.
# This may be replaced when dependencies are built.
