file(REMOVE_RECURSE
  "CMakeFiles/fig15_net_throughput.dir/fig15_net_throughput.cpp.o"
  "CMakeFiles/fig15_net_throughput.dir/fig15_net_throughput.cpp.o.d"
  "fig15_net_throughput"
  "fig15_net_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_net_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
