# Empty dependencies file for fig14_net_latency.
# This may be replaced when dependencies are built.
