# Empty dependencies file for solros_core.
# This may be replaced when dependencies are built.
