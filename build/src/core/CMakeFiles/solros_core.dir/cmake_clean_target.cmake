file(REMOVE_RECURSE
  "libsolros_core.a"
)
