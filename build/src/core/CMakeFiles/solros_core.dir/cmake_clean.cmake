file(REMOVE_RECURSE
  "CMakeFiles/solros_core.dir/machine.cc.o"
  "CMakeFiles/solros_core.dir/machine.cc.o.d"
  "libsolros_core.a"
  "libsolros_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solros_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
