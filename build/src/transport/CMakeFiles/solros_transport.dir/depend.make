# Empty dependencies file for solros_transport.
# This may be replaced when dependencies are built.
