file(REMOVE_RECURSE
  "libsolros_transport.a"
)
