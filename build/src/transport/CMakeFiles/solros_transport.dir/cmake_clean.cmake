file(REMOVE_RECURSE
  "CMakeFiles/solros_transport.dir/mirror_buffer.cc.o"
  "CMakeFiles/solros_transport.dir/mirror_buffer.cc.o.d"
  "CMakeFiles/solros_transport.dir/ring_buffer.cc.o"
  "CMakeFiles/solros_transport.dir/ring_buffer.cc.o.d"
  "CMakeFiles/solros_transport.dir/sim_ring.cc.o"
  "CMakeFiles/solros_transport.dir/sim_ring.cc.o.d"
  "libsolros_transport.a"
  "libsolros_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solros_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
