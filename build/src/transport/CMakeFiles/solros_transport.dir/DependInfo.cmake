
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/mirror_buffer.cc" "src/transport/CMakeFiles/solros_transport.dir/mirror_buffer.cc.o" "gcc" "src/transport/CMakeFiles/solros_transport.dir/mirror_buffer.cc.o.d"
  "/root/repo/src/transport/ring_buffer.cc" "src/transport/CMakeFiles/solros_transport.dir/ring_buffer.cc.o" "gcc" "src/transport/CMakeFiles/solros_transport.dir/ring_buffer.cc.o.d"
  "/root/repo/src/transport/sim_ring.cc" "src/transport/CMakeFiles/solros_transport.dir/sim_ring.cc.o" "gcc" "src/transport/CMakeFiles/solros_transport.dir/sim_ring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/solros_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/solros_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
