# Empty dependencies file for solros_base.
# This may be replaced when dependencies are built.
