file(REMOVE_RECURSE
  "CMakeFiles/solros_base.dir/histogram.cc.o"
  "CMakeFiles/solros_base.dir/histogram.cc.o.d"
  "CMakeFiles/solros_base.dir/logging.cc.o"
  "CMakeFiles/solros_base.dir/logging.cc.o.d"
  "CMakeFiles/solros_base.dir/stats.cc.o"
  "CMakeFiles/solros_base.dir/stats.cc.o.d"
  "CMakeFiles/solros_base.dir/status.cc.o"
  "CMakeFiles/solros_base.dir/status.cc.o.d"
  "libsolros_base.a"
  "libsolros_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solros_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
