file(REMOVE_RECURSE
  "libsolros_base.a"
)
