# Empty dependencies file for solros_apps.
# This may be replaced when dependencies are built.
