file(REMOVE_RECURSE
  "libsolros_apps.a"
)
