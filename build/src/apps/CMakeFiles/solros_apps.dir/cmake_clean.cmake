file(REMOVE_RECURSE
  "CMakeFiles/solros_apps.dir/image_search.cc.o"
  "CMakeFiles/solros_apps.dir/image_search.cc.o.d"
  "CMakeFiles/solros_apps.dir/kv_store.cc.o"
  "CMakeFiles/solros_apps.dir/kv_store.cc.o.d"
  "CMakeFiles/solros_apps.dir/text_index.cc.o"
  "CMakeFiles/solros_apps.dir/text_index.cc.o.d"
  "libsolros_apps.a"
  "libsolros_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solros_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
