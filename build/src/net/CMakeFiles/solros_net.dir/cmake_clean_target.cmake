file(REMOVE_RECURSE
  "libsolros_net.a"
)
