
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/direct_server.cc" "src/net/CMakeFiles/solros_net.dir/direct_server.cc.o" "gcc" "src/net/CMakeFiles/solros_net.dir/direct_server.cc.o.d"
  "/root/repo/src/net/ethernet.cc" "src/net/CMakeFiles/solros_net.dir/ethernet.cc.o" "gcc" "src/net/CMakeFiles/solros_net.dir/ethernet.cc.o.d"
  "/root/repo/src/net/net_stub.cc" "src/net/CMakeFiles/solros_net.dir/net_stub.cc.o" "gcc" "src/net/CMakeFiles/solros_net.dir/net_stub.cc.o.d"
  "/root/repo/src/net/tcp_proxy.cc" "src/net/CMakeFiles/solros_net.dir/tcp_proxy.cc.o" "gcc" "src/net/CMakeFiles/solros_net.dir/tcp_proxy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/solros_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/solros_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/solros_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/solros_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/solros_nvme.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
