file(REMOVE_RECURSE
  "CMakeFiles/solros_net.dir/direct_server.cc.o"
  "CMakeFiles/solros_net.dir/direct_server.cc.o.d"
  "CMakeFiles/solros_net.dir/ethernet.cc.o"
  "CMakeFiles/solros_net.dir/ethernet.cc.o.d"
  "CMakeFiles/solros_net.dir/net_stub.cc.o"
  "CMakeFiles/solros_net.dir/net_stub.cc.o.d"
  "CMakeFiles/solros_net.dir/tcp_proxy.cc.o"
  "CMakeFiles/solros_net.dir/tcp_proxy.cc.o.d"
  "libsolros_net.a"
  "libsolros_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solros_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
