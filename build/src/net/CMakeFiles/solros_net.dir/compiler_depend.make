# Empty compiler generated dependencies file for solros_net.
# This may be replaced when dependencies are built.
