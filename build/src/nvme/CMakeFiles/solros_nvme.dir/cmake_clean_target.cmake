file(REMOVE_RECURSE
  "libsolros_nvme.a"
)
