# Empty compiler generated dependencies file for solros_nvme.
# This may be replaced when dependencies are built.
