file(REMOVE_RECURSE
  "CMakeFiles/solros_nvme.dir/nvme_device.cc.o"
  "CMakeFiles/solros_nvme.dir/nvme_device.cc.o.d"
  "libsolros_nvme.a"
  "libsolros_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solros_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
