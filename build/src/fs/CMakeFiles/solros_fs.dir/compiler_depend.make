# Empty compiler generated dependencies file for solros_fs.
# This may be replaced when dependencies are built.
