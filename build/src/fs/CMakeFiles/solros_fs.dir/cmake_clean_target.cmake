file(REMOVE_RECURSE
  "libsolros_fs.a"
)
