
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/baseline_fs.cc" "src/fs/CMakeFiles/solros_fs.dir/baseline_fs.cc.o" "gcc" "src/fs/CMakeFiles/solros_fs.dir/baseline_fs.cc.o.d"
  "/root/repo/src/fs/buffer_cache.cc" "src/fs/CMakeFiles/solros_fs.dir/buffer_cache.cc.o" "gcc" "src/fs/CMakeFiles/solros_fs.dir/buffer_cache.cc.o.d"
  "/root/repo/src/fs/fs_proxy.cc" "src/fs/CMakeFiles/solros_fs.dir/fs_proxy.cc.o" "gcc" "src/fs/CMakeFiles/solros_fs.dir/fs_proxy.cc.o.d"
  "/root/repo/src/fs/fs_stub.cc" "src/fs/CMakeFiles/solros_fs.dir/fs_stub.cc.o" "gcc" "src/fs/CMakeFiles/solros_fs.dir/fs_stub.cc.o.d"
  "/root/repo/src/fs/nvme_block_store.cc" "src/fs/CMakeFiles/solros_fs.dir/nvme_block_store.cc.o" "gcc" "src/fs/CMakeFiles/solros_fs.dir/nvme_block_store.cc.o.d"
  "/root/repo/src/fs/solros_fs.cc" "src/fs/CMakeFiles/solros_fs.dir/solros_fs.cc.o" "gcc" "src/fs/CMakeFiles/solros_fs.dir/solros_fs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/solros_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/solros_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/solros_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/solros_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
