file(REMOVE_RECURSE
  "CMakeFiles/solros_fs.dir/baseline_fs.cc.o"
  "CMakeFiles/solros_fs.dir/baseline_fs.cc.o.d"
  "CMakeFiles/solros_fs.dir/buffer_cache.cc.o"
  "CMakeFiles/solros_fs.dir/buffer_cache.cc.o.d"
  "CMakeFiles/solros_fs.dir/fs_proxy.cc.o"
  "CMakeFiles/solros_fs.dir/fs_proxy.cc.o.d"
  "CMakeFiles/solros_fs.dir/fs_stub.cc.o"
  "CMakeFiles/solros_fs.dir/fs_stub.cc.o.d"
  "CMakeFiles/solros_fs.dir/nvme_block_store.cc.o"
  "CMakeFiles/solros_fs.dir/nvme_block_store.cc.o.d"
  "CMakeFiles/solros_fs.dir/solros_fs.cc.o"
  "CMakeFiles/solros_fs.dir/solros_fs.cc.o.d"
  "libsolros_fs.a"
  "libsolros_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solros_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
