file(REMOVE_RECURSE
  "CMakeFiles/solros_hw.dir/dma.cc.o"
  "CMakeFiles/solros_hw.dir/dma.cc.o.d"
  "CMakeFiles/solros_hw.dir/fabric.cc.o"
  "CMakeFiles/solros_hw.dir/fabric.cc.o.d"
  "libsolros_hw.a"
  "libsolros_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solros_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
