# Empty dependencies file for solros_hw.
# This may be replaced when dependencies are built.
