file(REMOVE_RECURSE
  "libsolros_hw.a"
)
