
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/dma.cc" "src/hw/CMakeFiles/solros_hw.dir/dma.cc.o" "gcc" "src/hw/CMakeFiles/solros_hw.dir/dma.cc.o.d"
  "/root/repo/src/hw/fabric.cc" "src/hw/CMakeFiles/solros_hw.dir/fabric.cc.o" "gcc" "src/hw/CMakeFiles/solros_hw.dir/fabric.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/solros_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
