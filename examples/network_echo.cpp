// Shared listening socket with load balancing (§4.4.3).
//
// Four co-processors all listen on port 9000; the control-plane TCP proxy
// forwards each incoming client connection to one of them according to a
// pluggable policy. External clients ping-pong messages; the example
// prints the per-co-processor distribution and the latency percentiles for
// the round-robin and content-hash policies.
//
// Build & run:  ./build/examples/network_echo
#include <iostream>

#include "src/base/histogram.h"
#include "src/core/machine.h"
#include "src/sim/sync.h"

using namespace solros;

namespace {

Task<void> EchoConn(ServerSocketApi* api, int64_t sock) {
  while (true) {
    auto message = co_await api->Recv(sock);
    if (!message.ok()) {
      break;
    }
    if (!(co_await api->Send(sock, *message)).ok()) {
      break;
    }
  }
}

Task<void> EchoServer(ServerSocketApi* api, uint16_t port, int connections) {
  Simulator* sim = co_await CurrentSimulator();
  auto listener = co_await api->Listen(port, 128);
  CHECK_OK(listener);
  for (int c = 0; c < connections; ++c) {
    auto sock = co_await api->Accept(*listener);
    CHECK_OK(sock);
    Spawn(*sim, EchoConn(api, *sock));
  }
}

Task<void> PingClient(EthernetFabric* eth, Processor* cpu, uint32_t addr,
                      uint16_t port, int pings, Histogram* latencies,
                      Simulator* sim, WaitGroup* wg) {
  auto conn = co_await eth->ClientConnect(addr, port, cpu);
  CHECK_OK(conn);
  std::vector<uint8_t> payload(64, 0x33);
  for (int i = 0; i < pings; ++i) {
    SimTime t0 = sim->now();
    CHECK_OK(co_await eth->ClientSend(*conn, payload, cpu));
    auto echoed = co_await eth->ClientRecv(*conn);
    CHECK_OK(echoed);
    latencies->Record(sim->now() - t0);
  }
  co_await eth->ClientClose(*conn, cpu);
  wg->Done();
}

void RunWithPolicy(std::unique_ptr<ForwardingPolicy> policy) {
  MachineConfig config;
  config.num_phis = 4;
  config.nvme_capacity = MiB(64);
  std::string policy_name(policy->name());
  config.policy = std::move(policy);
  Machine machine(std::move(config));

  const int kClients = 16;
  const int kConnsPerPhi = kClients;  // generous upper bound
  for (int i = 0; i < 4; ++i) {
    Spawn(machine.sim(), EchoServer(&machine.net_stub(i), 9000,
                                    kConnsPerPhi));
  }
  machine.sim().RunUntilIdle();

  Processor clients(&machine.sim(), machine.host_device(), 64, 1.0,
                    "clients");
  Histogram latencies;
  WaitGroup wg(&machine.sim());
  for (int c = 0; c < kClients; ++c) {
    wg.Add(1);
    Spawn(machine.sim(),
          PingClient(&machine.ethernet(), &clients,
                     0x0a000000u + static_cast<uint32_t>(c), 9000, 50,
                     &latencies, &machine.sim(), &wg));
  }
  machine.sim().RunUntilIdle();
  CHECK_EQ(wg.outstanding(), 0u);

  std::cout << "policy=" << policy_name << ": " << kClients
            << " connections -> per-phi events: ";
  for (int i = 0; i < 4; ++i) {
    std::cout << machine.net_stub(i).events_dispatched()
              << (i + 1 < 4 ? " / " : "\n");
  }
  std::cout << "  64B ping-pong latency: p50="
            << ToMicros(latencies.ValueAtQuantile(0.5)) << "us  p99="
            << ToMicros(latencies.ValueAtQuantile(0.99)) << "us\n";
}

}  // namespace

int main() {
  RunWithPolicy(std::make_unique<RoundRobinPolicy>());
  RunWithPolicy(std::make_unique<LeastLoadedPolicy>());
  RunWithPolicy(std::make_unique<ContentHashPolicy>());
  std::cout << "\nAll three forwarding policies served every connection "
               "through the shared listening socket.\n";
  return 0;
}
