// Image search (§6.2) on Solros vs the stock co-processor stack.
//
// Scans a feature database on the SSD for the images most similar to a
// query (real descriptor matching), once through the Solros stub and once
// through the virtio baseline. Compute-heavy, so the I/O win shrinks to
// ~2x (matching the paper).
//
// Build & run:  ./build/examples/image_search
#include <iostream>

#include "src/apps/image_search.h"
#include "src/core/machine.h"
#include "src/fs/baseline_fs.h"

using namespace solros;

namespace {

MachineConfig BaseConfig() {
  MachineConfig config;
  config.num_phis = 1;
  config.nvme_capacity = GiB(1);
  config.enable_network = false;
  return config;
}

ImageDbConfig Db() {
  ImageDbConfig db;
  db.num_images = 48;
  db.descriptors_per_image = 4096;  // 256 KiB of features per image
  return db;
}

ImageSearchConfig SearchConfig(std::vector<std::string> files) {
  ImageSearchConfig config;
  config.files = std::move(files);
  config.workers = 61;
  config.query_descriptors = 128;
  config.top_k = 5;
  return config;
}

}  // namespace

int main() {
  Nanos solros_time = 0;
  ImageSearchResult solros_result;
  {
    Machine machine(BaseConfig());
    CHECK_OK(RunSim(machine.sim(), machine.FormatFs()));
    auto files = RunSim(machine.sim(), GenerateImageDb(&machine.fs(), Db()));
    CHECK_OK(files);
    SimTime t0 = machine.sim().now();
    auto result = RunSim(
        machine.sim(),
        RunImageSearch(&machine.sim(), &machine.fs_stub(0),
                       &machine.phi_cpu(0), machine.phi_device(0),
                       SearchConfig(*files)));
    CHECK_OK(result);
    solros_result = *result;
    solros_time = machine.sim().now() - t0;
  }

  Nanos virtio_time = 0;
  ImageSearchResult virtio_result;
  {
    Machine machine(BaseConfig());
    VirtioBlockStore virtio(&machine.sim(), machine.params(),
                            &machine.nvme(), &machine.host_cpu(),
                            &machine.phi_cpu(0));
    SolrosFs phi_fs(&virtio, &machine.sim());
    CHECK_OK(RunSim(machine.sim(), phi_fs.Format(4096)));
    auto files = RunSim(machine.sim(), GenerateImageDb(&phi_fs, Db()));
    CHECK_OK(files);
    LocalFsService service(machine.params(), &phi_fs, &machine.phi_cpu(0));
    SimTime t0 = machine.sim().now();
    auto result = RunSim(
        machine.sim(),
        RunImageSearch(&machine.sim(), &service, &machine.phi_cpu(0),
                       machine.phi_device(0), SearchConfig(*files)));
    CHECK_OK(result);
    virtio_result = *result;
    virtio_time = machine.sim().now() - t0;
  }

  std::cout << "database: " << solros_result.images_scanned << " images, "
            << solros_result.bytes_read / MiB(1) << " MiB of features, "
            << solros_result.descriptor_pairs << " descriptor pairs\n";
  std::cout << "top matches (both configurations agree):\n";
  for (size_t i = 0; i < solros_result.top.size(); ++i) {
    CHECK(solros_result.top[i].path == virtio_result.top[i].path);
    std::cout << "  " << i + 1 << ". " << solros_result.top[i].path
              << "  score=" << solros_result.top[i].score << "\n";
  }
  std::cout << "\nPhi-Solros: " << ToMillis(solros_time) << " ms\n";
  std::cout << "Phi-Linux (virtio): " << ToMillis(virtio_time) << " ms\n";
  std::cout << "speedup: "
            << static_cast<double>(virtio_time) /
                   static_cast<double>(solros_time)
            << "x (paper: ~2x)\n";
  return 0;
}
