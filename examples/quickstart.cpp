// Quickstart: build a Solros machine, do file I/O from a co-processor.
//
// Walks the core API end to end:
//  1. assemble a simulated heterogeneous machine (host + Xeon Phi-class
//     co-processor + NVMe SSD on a PCIe fabric);
//  2. format/mount SolrosFS on the control plane;
//  3. from the data plane, create a file and write/read it through the
//     thin stub — the proxy picks the peer-to-peer NVMe path;
//  4. show what the control plane decided and what it cost.
//
// Build & run:  ./build/examples/quickstart
#include <cstring>
#include <iostream>

#include "src/base/prng.h"
#include "src/core/machine.h"

using namespace solros;  // examples favour brevity

int main() {
  MachineConfig config;
  config.num_phis = 1;
  config.nvme_capacity = MiB(512);
  Machine machine(std::move(config));

  // --- control plane: make the file system.
  CHECK_OK(RunSim(machine.sim(), machine.FormatFs()));
  std::cout << "SolrosFS formatted: " << machine.fs().total_blocks()
            << " blocks, " << machine.fs().free_blocks() << " free\n";

  FsStub& stub = machine.fs_stub(0);

  // --- data plane: create a file and write 16 MiB from Phi memory.
  auto ino = RunSim(machine.sim(), stub.Create("/hello.bin"));
  CHECK_OK(ino);

  const uint64_t kBytes = MiB(16);
  DeviceBuffer phi_out(machine.phi_device(0), kBytes);
  Prng prng(2026);
  for (auto& b : phi_out.Span(0, kBytes)) {
    b = static_cast<uint8_t>(prng.Next());
  }

  SimTime t0 = machine.sim().now();
  auto written = RunSim(machine.sim(), stub.Write(*ino, 0,
                                                  MemRef::Of(phi_out)));
  CHECK_OK(written);
  Nanos write_time = machine.sim().now() - t0;

  // --- read it back into a different Phi buffer.
  DeviceBuffer phi_in(machine.phi_device(0), kBytes);
  t0 = machine.sim().now();
  auto read = RunSim(machine.sim(), stub.Read(*ino, 0, MemRef::Of(phi_in)));
  CHECK_OK(read);
  Nanos read_time = machine.sim().now() - t0;

  CHECK_EQ(std::memcmp(phi_in.data(), phi_out.data(), kBytes), 0);
  std::cout << "wrote+read " << kBytes / MiB(1) << " MiB, data verified\n";

  const FsProxyStats& stats = machine.fs_proxy().stats();
  std::cout << "control-plane decisions: " << stats.p2p_writes
            << " P2P write(s), " << stats.p2p_reads << " P2P read(s), "
            << stats.buffered_reads + stats.buffered_writes
            << " buffered op(s)\n";
  std::cout << "write: " << ToMillis(write_time) << " ms ("
            << RateBps(kBytes, write_time) / 1e9 << " GB/s; SSD limit 1.2)\n";
  std::cout << "read:  " << ToMillis(read_time) << " ms ("
            << RateBps(kBytes, read_time) / 1e9 << " GB/s; SSD limit 2.4)\n";
  std::cout << "NVMe doorbells=" << machine.nvme().doorbells_rung()
            << " interrupts=" << machine.nvme().interrupts_raised()
            << " (I/O vectors coalesce both)\n";
  return 0;
}
