// Text indexing (§6.2) on two architectures.
//
// Builds the same corpus twice and indexes it from the co-processor via
// (a) the Solros stub (P2P reads, host file system) and (b) the stock
// co-processor-centric path (file system on the Phi over a virtio block
// relay) — then prints the end-to-end times and the speedup. The paper
// reports ~19x for this workload.
//
// Build & run:  ./build/examples/text_indexing
#include <iostream>

#include "src/apps/text_index.h"
#include "src/core/machine.h"
#include "src/fs/baseline_fs.h"

using namespace solros;

namespace {

MachineConfig BaseConfig() {
  MachineConfig config;
  config.num_phis = 1;
  config.nvme_capacity = GiB(1);
  config.enable_network = false;
  return config;
}

CorpusConfig Corpus() {
  CorpusConfig corpus;
  corpus.num_documents = 48;
  corpus.document_bytes = MiB(2);
  return corpus;
}

TextIndexConfig IndexConfig(std::vector<std::string> files) {
  TextIndexConfig config;
  config.files = std::move(files);
  config.workers = 61;  // one per Phi core
  config.read_chunk = MiB(2);
  return config;
}

}  // namespace

int main() {
  // --- Solros configuration.
  Nanos solros_time = 0;
  TextIndexResult solros_result;
  {
    Machine machine(BaseConfig());
    CHECK_OK(RunSim(machine.sim(), machine.FormatFs()));
    auto files = RunSim(machine.sim(),
                        GenerateCorpus(&machine.fs(), Corpus()));
    CHECK_OK(files);
    SimTime t0 = machine.sim().now();
    auto result = RunSim(
        machine.sim(),
        RunTextIndex(&machine.sim(), &machine.fs_stub(0),
                     &machine.phi_cpu(0), machine.phi_device(0),
                     IndexConfig(*files)));
    CHECK_OK(result);
    solros_result = *result;
    solros_time = machine.sim().now() - t0;
  }

  // --- stock Phi-Linux (virtio) configuration.
  Nanos virtio_time = 0;
  TextIndexResult virtio_result;
  {
    Machine machine(BaseConfig());
    VirtioBlockStore virtio(&machine.sim(), machine.params(),
                            &machine.nvme(), &machine.host_cpu(),
                            &machine.phi_cpu(0));
    SolrosFs phi_fs(&virtio, &machine.sim());
    CHECK_OK(RunSim(machine.sim(), phi_fs.Format(4096)));
    auto files = RunSim(machine.sim(), GenerateCorpus(&phi_fs, Corpus()));
    CHECK_OK(files);
    LocalFsService service(machine.params(), &phi_fs, &machine.phi_cpu(0));
    SimTime t0 = machine.sim().now();
    auto result = RunSim(
        machine.sim(),
        RunTextIndex(&machine.sim(), &service, &machine.phi_cpu(0),
                     machine.phi_device(0), IndexConfig(*files)));
    CHECK_OK(result);
    virtio_result = *result;
    virtio_time = machine.sim().now() - t0;
  }

  CHECK_EQ(solros_result.tokens, virtio_result.tokens);
  CHECK_EQ(solros_result.unique_terms, virtio_result.unique_terms);

  std::cout << "corpus: " << solros_result.files_indexed << " documents, "
            << solros_result.bytes_indexed / MiB(1) << " MiB\n";
  std::cout << "index:  " << solros_result.tokens << " tokens, "
            << solros_result.unique_terms << " unique terms, "
            << solros_result.postings << " postings\n\n";
  std::cout << "Phi-Solros: " << ToMillis(solros_time) << " ms\n";
  std::cout << "Phi-Linux (virtio): " << ToMillis(virtio_time) << " ms\n";
  std::cout << "speedup: "
            << static_cast<double>(virtio_time) /
                   static_cast<double>(solros_time)
            << "x (paper: ~19x)\n";
  return 0;
}
