// Sharded key-value store on Solros co-processors (§4.4.3's motivating
// workload for pluggable forwarding rules).
//
// Four KV shards — one per co-processor data plane — listen on the same
// shared port; a client discovers the shard topology through the load
// balancer and routes keys by hash.
//
// Build & run:  ./build/examples/kv_store
#include <iostream>

#include "src/apps/kv_store.h"
#include "src/core/machine.h"

using namespace solros;

int main() {
  const int kShards = 4;
  MachineConfig config;
  config.num_phis = kShards;
  config.nvme_capacity = MiB(64);
  Machine machine(std::move(config));

  std::vector<std::unique_ptr<KvServer>> shards;
  for (int i = 0; i < kShards; ++i) {
    shards.push_back(std::make_unique<KvServer>(
        &machine.sim(), &machine.net_stub(i), static_cast<uint32_t>(i)));
    shards.back()->Start(6379, 32);
  }
  machine.sim().RunUntilIdle();

  Processor client_cpu(&machine.sim(), machine.host_device(), 32, 1.0,
                       "client");
  KvClient client(&machine.sim(), &machine.ethernet(), &client_cpu,
                  0x0a0a0000);
  CHECK_OK(RunSim(machine.sim(), client.Connect(6379, kShards)));
  std::cout << "connected to " << client.connected_shards()
            << " shards through one shared listening socket\n";

  // Load 1000 keys, read a few back.
  SimTime t0 = machine.sim().now();
  for (int i = 0; i < 1000; ++i) {
    std::string key = "user:" + std::to_string(i);
    std::string value = "profile-data-" + std::to_string(i * 7);
    CHECK_OK(RunSim(machine.sim(),
                    client.Put(key, {reinterpret_cast<const uint8_t*>(
                                         value.data()),
                                     value.size()})));
  }
  Nanos put_time = machine.sim().now() - t0;

  auto got = RunSim(machine.sim(), client.Get("user:42"));
  CHECK_OK(got);
  std::cout << "GET user:42 -> "
            << std::string(got->begin(), got->end()) << " (served by shard "
            << client.ShardOf("user:42") << ")\n";

  std::cout << "\nshard occupancy after 1000 PUTs:\n";
  for (int i = 0; i < kShards; ++i) {
    std::cout << "  shard " << i << ": " << shards[i]->size() << " keys, "
              << shards[i]->stats().puts << " puts\n";
  }
  std::cout << "aggregate PUT rate: "
            << 1000.0 / ToSeconds(put_time) / 1000.0 << " kops/s "
            << "(simulated time " << ToMillis(put_time) << " ms)\n";
  RunSim(machine.sim(), client.Close());
  return 0;
}
