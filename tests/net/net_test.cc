// Network substrate tests: ethernet fabric semantics, the direct server
// stacks (host and bridged Phi-Linux), and the expected latency ordering
// between configurations.
#include <gtest/gtest.h>

#include "src/base/histogram.h"
#include "src/core/machine.h"
#include "src/net/direct_server.h"
#include "src/net/ethernet.h"
#include "src/sim/sync.h"

namespace solros {
namespace {

struct Rig {
  Simulator sim;
  HwParams params = HwParams::Default();
  PcieFabric fabric{&sim, params};
  DeviceId host = fabric.HostDevice(0);
  DeviceId phi = fabric.AddDevice(DeviceType::kPhi, 0, "mic0");
  Processor host_cpu{&sim, host, 96, 1.0, "host"};
  Processor phi_cpu{&sim, phi, 244, 0.125, "phi"};
  Processor client_cpu{&sim, host, 32, 1.0, "client"};
  EthernetFabric ethernet{&sim, params};

  DirectServer::Config HostConfig() {
    DirectServer::Config config;
    config.stack_cpu = &host_cpu;
    config.stack_device = host;
    return config;
  }
  DirectServer::Config PhiLinuxConfig() {
    DirectServer::Config config;
    config.stack_cpu = &phi_cpu;
    config.stack_device = phi;
    config.bridge_cpu = &host_cpu;
    config.bridge_device = host;
    return config;
  }
};

Task<void> OneShotEcho(ServerSocketApi* api, uint16_t port) {
  auto listener = co_await api->Listen(port, 8);
  CHECK_OK(listener);
  auto sock = co_await api->Accept(*listener);
  CHECK_OK(sock);
  while (true) {
    auto message = co_await api->Recv(*sock);
    if (!message.ok()) {
      break;
    }
    CHECK_OK(co_await api->Send(*sock, *message));
  }
}

TEST(EthernetTest, ConnectToUnregisteredPortIsRefused) {
  Rig rig;
  auto conn = RunSim(rig.sim,
                     rig.ethernet.ClientConnect(1, 1234, &rig.client_cpu));
  EXPECT_EQ(conn.code(), ErrorCode::kConnectionReset);
}

TEST(DirectServerTest, HostEchoRoundtrip) {
  Rig rig;
  DirectServer server(&rig.sim, &rig.fabric, rig.params, &rig.ethernet,
                      rig.HostConfig());
  Spawn(rig.sim, OneShotEcho(&server, 5000));
  rig.sim.RunUntilIdle();

  auto conn = RunSim(rig.sim,
                     rig.ethernet.ClientConnect(1, 5000, &rig.client_cpu));
  ASSERT_TRUE(conn.ok());
  std::vector<uint8_t> message = {1, 2, 3, 4};
  CHECK_OK(RunSim(rig.sim, rig.ethernet.ClientSend(*conn, message,
                                                   &rig.client_cpu)));
  auto echoed = RunSim(rig.sim, rig.ethernet.ClientRecv(*conn));
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(*echoed, message);
  RunSim(rig.sim, rig.ethernet.ClientClose(*conn, &rig.client_cpu));
}

TEST(DirectServerTest, DuplicateListenRejected) {
  Rig rig;
  DirectServer server(&rig.sim, &rig.fabric, rig.params, &rig.ethernet,
                      rig.HostConfig());
  auto first = RunSim(rig.sim, server.Listen(6000, 4));
  ASSERT_TRUE(first.ok());
  auto second = RunSim(rig.sim, server.Listen(6000, 4));
  EXPECT_EQ(second.code(), ErrorCode::kAlreadyExists);
}

TEST(DirectServerTest, BacklogOverflowResetsConnection) {
  Rig rig;
  DirectServer server(&rig.sim, &rig.fabric, rig.params, &rig.ethernet,
                      rig.HostConfig());
  auto listener = RunSim(rig.sim, server.Listen(6100, 2));
  ASSERT_TRUE(listener.ok());
  // Nobody accepts; the third connection must be refused.
  auto c1 = RunSim(rig.sim,
                   rig.ethernet.ClientConnect(1, 6100, &rig.client_cpu));
  auto c2 = RunSim(rig.sim,
                   rig.ethernet.ClientConnect(2, 6100, &rig.client_cpu));
  auto c3 = RunSim(rig.sim,
                   rig.ethernet.ClientConnect(3, 6100, &rig.client_cpu));
  EXPECT_TRUE(c1.ok());
  EXPECT_TRUE(c2.ok());
  EXPECT_EQ(c3.code(), ErrorCode::kConnectionReset);
}

TEST(DirectServerTest, ServerCloseResetsClientRecv) {
  Rig rig;
  DirectServer server(&rig.sim, &rig.fabric, rig.params, &rig.ethernet,
                      rig.HostConfig());
  auto listener = RunSim(rig.sim, server.Listen(6200, 4));
  ASSERT_TRUE(listener.ok());
  auto conn = RunSim(rig.sim,
                     rig.ethernet.ClientConnect(1, 6200, &rig.client_cpu));
  ASSERT_TRUE(conn.ok());
  auto sock = RunSim(rig.sim, server.Accept(*listener));
  ASSERT_TRUE(sock.ok());
  CHECK_OK(RunSim(rig.sim, server.Close(*sock)));
  auto recv = RunSim(rig.sim, rig.ethernet.ClientRecv(*conn));
  EXPECT_EQ(recv.code(), ErrorCode::kConnectionReset);
}

Task<void> MeasurePing(EthernetFabric* eth, Processor* cpu, uint16_t port,
                       int pings, Simulator* sim, Histogram* out,
                       WaitGroup* wg) {
  auto conn = co_await eth->ClientConnect(7, port, cpu);
  CHECK_OK(conn);
  std::vector<uint8_t> payload(64, 1);
  for (int i = 0; i < pings; ++i) {
    SimTime t0 = sim->now();
    CHECK_OK(co_await eth->ClientSend(*conn, payload, cpu));
    auto echoed = co_await eth->ClientRecv(*conn);
    CHECK_OK(echoed);
    out->Record(sim->now() - t0);
  }
  co_await eth->ClientClose(*conn, cpu);
  wg->Done();
}

TEST(LatencyOrderingTest, PhiLinuxIsMuchSlowerThanHostStack) {
  // The Fig. 1(b) mechanism at the substrate level: the same echo on the
  // bridged Phi stack vs the host stack.
  auto measure = [](bool phi_linux) -> uint64_t {
    Rig rig;
    DirectServer server(&rig.sim, &rig.fabric, rig.params, &rig.ethernet,
                        phi_linux ? rig.PhiLinuxConfig() : rig.HostConfig());
    Spawn(rig.sim, OneShotEcho(&server, 5000));
    rig.sim.RunUntilIdle();
    Histogram latencies;
    WaitGroup wg(&rig.sim);
    wg.Add(1);
    Spawn(rig.sim, MeasurePing(&rig.ethernet, &rig.client_cpu, 5000, 100,
                               &rig.sim, &latencies, &wg));
    rig.sim.RunUntilIdle();
    return latencies.ValueAtQuantile(0.5);
  };
  uint64_t host_p50 = measure(false);
  uint64_t phi_p50 = measure(true);
  EXPECT_GT(static_cast<double>(phi_p50) / host_p50, 2.5)
      << "host=" << host_p50 << " phi=" << phi_p50;
}

TEST(ForwardingPolicyTest, LiveLeastLoadedPicksShallowestQueue) {
  LiveLeastLoadedPolicy policy;
  // The live depth signal outranks connection counts: target 1 has the
  // most connections but nothing queued right now.
  std::vector<BalanceTarget> targets(3);
  targets[0] = {.dataplane = 0, .active_conns = 1, .queue_depth = 7};
  targets[1] = {.dataplane = 1, .active_conns = 9, .queue_depth = 0};
  targets[2] = {.dataplane = 2, .active_conns = 2, .queue_depth = 3};
  EXPECT_EQ(policy.Pick(0x0a000001, 80, targets), 1u);
  // Depth ties fall back to the connection count.
  targets[1].queue_depth = 3;
  targets[2].active_conns = 0;
  EXPECT_EQ(policy.Pick(0x0a000001, 80, targets), 2u);
  EXPECT_EQ(policy.name(), "live-least-loaded");
}

TEST(MachineNetTest, EchoWorksWithShardedTcpProxy) {
  MachineConfig config;
  config.num_phis = 1;
  config.nvme_capacity = MiB(64);
  config.proxy_shards = 2;
  Machine machine(std::move(config));
  EXPECT_EQ(machine.tcp_proxy().shard_count(), 2);
  Spawn(machine.sim(), OneShotEcho(&machine.net_stub(0), 5000));
  machine.sim().RunUntilIdle();
  Processor client(&machine.sim(), machine.host_device(), 32, 1.0, "cl");
  Histogram latencies;
  WaitGroup wg(&machine.sim());
  wg.Add(1);
  Spawn(machine.sim(), MeasurePing(&machine.ethernet(), &client, 5000, 50,
                                   &machine.sim(), &latencies, &wg));
  machine.sim().RunUntilIdle();
  EXPECT_EQ(wg.outstanding(), 0u);
  EXPECT_GT(latencies.count(), 0u);
}

TEST(MachineNetTest, SolrosLatencyTracksHostNotPhiLinux) {
  // End-to-end ordering: Solros ~ Host << Phi-Linux (Fig. 1(b)).
  auto solros_p50 = [] {
    MachineConfig config;
    config.num_phis = 1;
    config.nvme_capacity = MiB(64);
    Machine machine(std::move(config));
    Spawn(machine.sim(), OneShotEcho(&machine.net_stub(0), 5000));
    machine.sim().RunUntilIdle();
    Processor client(&machine.sim(), machine.host_device(), 32, 1.0, "cl");
    Histogram latencies;
    WaitGroup wg(&machine.sim());
    wg.Add(1);
    Spawn(machine.sim(), MeasurePing(&machine.ethernet(), &client, 5000,
                                     100, &machine.sim(), &latencies, &wg));
    machine.sim().RunUntilIdle();
    return latencies.ValueAtQuantile(0.5);
  }();

  Rig rig;
  DirectServer phi_server(&rig.sim, &rig.fabric, rig.params, &rig.ethernet,
                          rig.PhiLinuxConfig());
  Spawn(rig.sim, OneShotEcho(&phi_server, 5000));
  rig.sim.RunUntilIdle();
  Histogram phi_lat;
  WaitGroup wg(&rig.sim);
  wg.Add(1);
  Spawn(rig.sim, MeasurePing(&rig.ethernet, &rig.client_cpu, 5000, 100,
                             &rig.sim, &phi_lat, &wg));
  rig.sim.RunUntilIdle();
  uint64_t phi_p50 = phi_lat.ValueAtQuantile(0.5);

  EXPECT_LT(static_cast<double>(solros_p50) * 2.0, phi_p50)
      << "solros=" << solros_p50 << " phi-linux=" << phi_p50;
}

}  // namespace
}  // namespace solros
