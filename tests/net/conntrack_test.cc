// ConnTracker: per-connection accounting (bytes/messages/backlog/RTT),
// deterministic top-K JSON ranking, and isolation of the per-shard
// telemetry series across shards, hub resets, and ring rollover.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/net/conntrack.h"

namespace solros {
namespace {

TEST(ConnTrackerTest, TracksLifecycleBacklogAndRtt) {
  Simulator sim;
  ConnTracker tracker(&sim, 1);
  tracker.OnConnect(1, 0, 0, 9000);
  sim.RunUntil(100);
  tracker.OnInbound(1, 64);
  const ConnEntry* entry = tracker.Find(1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->backlog, 1u);
  sim.RunUntil(350);
  tracker.OnOutbound(1, 64);
  EXPECT_EQ(entry->backlog, 0u);
  EXPECT_EQ(entry->bytes_in, 64u);
  EXPECT_EQ(entry->bytes_out, 64u);
  EXPECT_EQ(entry->msgs_in, 1u);
  EXPECT_EQ(entry->msgs_out, 1u);
  EXPECT_EQ(entry->rtt_last, 250u);
  sim.RunUntil(500);
  tracker.OnClose(1);
  EXPECT_FALSE(entry->open);
  EXPECT_EQ(tracker.closed_count(), 1u);
  EXPECT_EQ(entry->Age(sim.now()), 500u);  // frozen at close
  // Events for unknown connections are ignored, not invented.
  tracker.OnInbound(99, 10);
  tracker.OnDrop(99);
  EXPECT_EQ(tracker.Find(99), nullptr);
  EXPECT_EQ(tracker.size(), 1u);
}

TEST(ConnTrackerTest, TopJsonRanksByBytesThenIdDeterministically) {
  Simulator sim;
  ConnTracker tracker(&sim, 1);
  for (uint64_t id : {1, 2, 3}) {
    tracker.OnConnect(id, 0, 0, 9000);
  }
  tracker.OnInbound(1, 10);
  tracker.OnInbound(2, 30);
  tracker.OnInbound(3, 30);
  std::ostringstream os;
  tracker.WriteTopJson(os, 2);
  std::string json = os.str();
  // Ties break toward the lower conn id; conn 1 falls off the top-2.
  size_t at2 = json.find("{\"id\":2");
  size_t at3 = json.find("{\"id\":3");
  EXPECT_NE(at2, std::string::npos);
  EXPECT_NE(at3, std::string::npos);
  EXPECT_LT(at2, at3);
  EXPECT_EQ(json.find("{\"id\":1"), std::string::npos);
  EXPECT_NE(json.find("\"total\":3,\"closed\":0"), std::string::npos);
  // Byte-determinism: re-serializing the same table is identical.
  std::ostringstream again;
  tracker.WriteTopJson(again, 2);
  EXPECT_EQ(json, again.str());
}

TEST(ConnTrackerTest, ShardSeriesAreIsolatedAndSurviveHubReset) {
  Simulator sim;
  TelemetryHub hub(Microseconds(1));
  ConnTracker tracker(&sim, 2);
  tracker.BindTelemetry(&hub);
  tracker.OnConnect(1, /*shard=*/0, 0, 9000);
  tracker.OnConnect(2, /*shard=*/1, 1, 9000);

  tracker.OnInbound(1, 64);  // shard 0: depth 1, no completion
  tracker.OnDrop(1);         // shard 0: one error
  sim.RunUntil(Microseconds(3));
  tracker.OnInbound(2, 64);
  tracker.OnOutbound(2, 64);  // shard 1: one completion

  TelemetrySnapshot snap = hub.Snapshot(sim.now());
  uint64_t shard0_ops = 0, shard0_err = 0, shard1_ops = 0, shard1_err = 0;
  for (const UseSeriesData& s : snap.series) {
    for (const UseWindowData& w : s.windows) {
      if (s.name == "net.conn[0]") {
        shard0_ops += w.ops;
        shard0_err += w.errors;
      } else if (s.name == "net.conn[1]") {
        shard1_ops += w.ops;
        shard1_err += w.errors;
      }
    }
  }
  EXPECT_EQ(shard0_ops, 0u);
  EXPECT_EQ(shard0_err, 1u);
  EXPECT_EQ(shard1_ops, 1u);
  EXPECT_EQ(shard1_err, 0u);

  // Hub reset clears telemetry history but not the connection table: the
  // two stores are isolated.
  hub.Reset();
  EXPECT_EQ(tracker.Find(1)->bytes_in, 64u);
  EXPECT_EQ(tracker.Find(2)->msgs_out, 1u);

  // Live depth survives the reset (it is component state, not history),
  // and closing a connection with outstanding backlog retires its depth so
  // nothing leaks into later windows.
  UseSeries* shard0 = hub.GetSeries("net.conn[0]");
  EXPECT_EQ(shard0->depth(), 1);
  tracker.OnClose(1);
  EXPECT_EQ(shard0->depth(), 0);

  // Ring rollover: jump far past the retained window ring; a new event
  // lands in a recycled slot and the snapshot stays consistent.
  sim.RunUntil(Milliseconds(2));
  tracker.OnInbound(2, 8);
  tracker.OnOutbound(2, 8);
  TelemetrySnapshot rolled = hub.Snapshot(sim.now());
  uint64_t late_ops = 0;
  for (const UseSeriesData& s : rolled.series) {
    if (s.name != "net.conn[1]") {
      continue;
    }
    for (const UseWindowData& w : s.windows) {
      late_ops += w.ops;
    }
  }
  EXPECT_EQ(late_ops, 1u);  // the pre-reset completion is gone
}

}  // namespace
}  // namespace solros
