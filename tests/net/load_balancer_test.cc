// Forwarding-policy unit tests (§4.4.3) and the PickShardForDepths
// regression: the shallow-primary early-out must behave identically to the
// always-scan reference implementation.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <vector>

#include "src/base/prng.h"
#include "src/net/load_balancer.h"
#include "src/net/tcp_proxy.h"

namespace solros {
namespace {

std::vector<BalanceTarget> MakeTargets(size_t n) {
  std::vector<BalanceTarget> targets(n);
  for (size_t i = 0; i < n; ++i) {
    targets[i].dataplane = static_cast<uint32_t>(i);
  }
  return targets;
}

TEST(RoundRobinPolicyTest, CyclesThroughTargetsInOrder) {
  RoundRobinPolicy policy;
  auto targets = MakeTargets(4);
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < targets.size(); ++i) {
      EXPECT_EQ(policy.Pick(0x0a000001, 7000, targets), i);
    }
  }
}

TEST(RoundRobinPolicyTest, IgnoresLoadSignals) {
  RoundRobinPolicy policy;
  auto targets = MakeTargets(3);
  targets[1].active_conns = 1000;
  targets[1].queue_depth = 1000;
  EXPECT_EQ(policy.Pick(1, 7000, targets), 0u);
  EXPECT_EQ(policy.Pick(2, 7000, targets), 1u);  // still visits the hot one
  EXPECT_EQ(policy.Pick(3, 7000, targets), 2u);
}

TEST(LeastLoadedPolicyTest, PicksFewestActiveConnections) {
  LeastLoadedPolicy policy;
  auto targets = MakeTargets(4);
  targets[0].active_conns = 5;
  targets[1].active_conns = 2;
  targets[2].active_conns = 9;
  targets[3].active_conns = 4;
  EXPECT_EQ(policy.Pick(1, 7000, targets), 1u);
}

TEST(LeastLoadedPolicyTest, TieBreaksToFirstTarget) {
  LeastLoadedPolicy policy;
  auto targets = MakeTargets(3);
  targets[0].active_conns = 3;
  targets[1].active_conns = 3;
  targets[2].active_conns = 3;
  EXPECT_EQ(policy.Pick(1, 7000, targets), 0u);
}

TEST(LiveLeastLoadedPolicyTest, DivergesFromConnectionCounts) {
  // Target 0 holds many long-lived but idle connections; target 1 has few
  // connections but a deep live backlog. Connection-count balancing picks
  // 1; the live-depth signal correctly picks 0.
  auto targets = MakeTargets(2);
  targets[0].active_conns = 100;
  targets[0].queue_depth = 0;
  targets[1].active_conns = 2;
  targets[1].queue_depth = 50;
  LeastLoadedPolicy by_conns;
  LiveLeastLoadedPolicy by_depth;
  EXPECT_EQ(by_conns.Pick(1, 7000, targets), 1u);
  EXPECT_EQ(by_depth.Pick(1, 7000, targets), 0u);
}

TEST(LiveLeastLoadedPolicyTest, EqualDepthFallsBackToConnections) {
  LiveLeastLoadedPolicy policy;
  auto targets = MakeTargets(3);
  targets[0].queue_depth = 4;
  targets[0].active_conns = 8;
  targets[1].queue_depth = 4;
  targets[1].active_conns = 3;
  targets[2].queue_depth = 4;
  targets[2].active_conns = 5;
  EXPECT_EQ(policy.Pick(1, 7000, targets), 1u);
}

TEST(ContentHashPolicyTest, SameClientAlwaysLandsOnSameTarget) {
  ContentHashPolicy policy;
  auto targets = MakeTargets(4);
  for (uint32_t addr : {0x0a000001u, 0x0a00ffffu, 0xc0a80101u}) {
    const size_t first = policy.Pick(addr, 7000, targets);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(policy.Pick(addr, 7000, targets), first);
    }
  }
}

TEST(ContentHashPolicyTest, SpreadsClientsAcrossTargets) {
  ContentHashPolicy policy;
  auto targets = MakeTargets(4);
  std::map<size_t, int> hits;
  const int clients = 4000;
  for (int c = 0; c < clients; ++c) {
    ++hits[policy.Pick(0x0a000000u + static_cast<uint32_t>(c), 7000,
                       targets)];
  }
  ASSERT_EQ(hits.size(), targets.size());
  for (const auto& [target, count] : hits) {
    // A decent hash keeps every target within 20% of the even share.
    EXPECT_GT(count, clients / 4 * 8 / 10) << "target " << target;
    EXPECT_LT(count, clients / 4 * 12 / 10) << "target " << target;
  }
}

// The always-scan reference PickShardForDepths behavior, as implemented
// before the shallow-primary early-out.
template <typename DepthFn>
int ReferencePickShard(int primary, int count, DepthFn&& depth,
                       bool* handoff) {
  *handoff = false;
  if (count <= 1) {
    return 0;
  }
  int lightest = 0;
  for (int k = 1; k < count; ++k) {
    if (depth(k) < depth(lightest)) {
      lightest = k;
    }
  }
  if (primary != lightest && depth(primary) > 2 * depth(lightest) + 1) {
    *handoff = true;
    return lightest;
  }
  return primary;
}

TEST(PickShardForDepthsTest, MatchesAlwaysScanReferenceOnRandomDepths) {
  Prng prng(0x51ab);
  for (int count : {1, 2, 3, 4, 8}) {
    for (int trial = 0; trial < 2000; ++trial) {
      std::vector<int64_t> depths(static_cast<size_t>(count));
      for (int64_t& d : depths) {
        // Mostly shallow (the steady-state the early-out serves), with
        // occasional runaway loops.
        d = static_cast<int64_t>(prng.NextInRange(0, 4));
        if (prng.NextInRange(0, 10) == 0) {
          d = static_cast<int64_t>(prng.NextInRange(0, 200));
        }
      }
      const int primary =
          static_cast<int>(prng.NextInRange(0, static_cast<uint64_t>(count)));
      auto depth = [&](int k) { return depths[static_cast<size_t>(k)]; };
      bool fast_handoff = false;
      bool ref_handoff = false;
      const int fast =
          PickShardForDepths(primary, count, depth, &fast_handoff);
      const int ref =
          ReferencePickShard(primary, count, depth, &ref_handoff);
      ASSERT_EQ(fast, ref) << "count=" << count << " primary=" << primary;
      ASSERT_EQ(fast_handoff, ref_handoff)
          << "count=" << count << " primary=" << primary;
    }
  }
}

TEST(PickShardForDepthsTest, ShallowPrimaryStaysPut) {
  // Depth 0 or 1 on the primary can never satisfy the handoff inequality,
  // so the early-out returns the primary without scanning.
  bool handoff = true;
  int calls = 0;
  auto depth = [&](int k) {
    ++calls;
    return k == 2 ? 1 : 0;
  };
  EXPECT_EQ(PickShardForDepths(2, 8, depth, &handoff), 2);
  EXPECT_FALSE(handoff);
  EXPECT_EQ(calls, 1);  // only the primary was probed
}

}  // namespace
}  // namespace solros
