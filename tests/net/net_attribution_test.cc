// Net-path attribution exactness through the full machine: in a fault-free
// run every net trace's stages sum to its root span exactly; armed rpc.*
// faults produce clamped (never negative) stages with `exact` cleared.
#include <gtest/gtest.h>

#include <vector>

#include "src/base/fault.h"
#include "src/core/machine.h"
#include "src/sim/attribution.h"
#include "src/sim/sync.h"

namespace solros {
namespace {

Task<void> EchoServer(ServerSocketApi* api, uint16_t port) {
  auto listener = co_await api->Listen(port, 8);
  CHECK_OK(listener);
  auto sock = co_await api->Accept(*listener);
  CHECK_OK(sock);
  while (true) {
    auto message = co_await api->Recv(*sock);
    if (!message.ok()) {
      break;
    }
    CHECK_OK(co_await api->Send(*sock, *message));
  }
}

// One connection, `pings` traced echo round trips (the fig14 client shape:
// each ping roots a net.client.op span and threads its context down the
// wire).
Task<void> TracedPings(EthernetFabric* eth, Processor* cpu, uint16_t port,
                       int pings, Simulator* sim, WaitGroup* wg) {
  auto conn = co_await eth->ClientConnect(0x0a000001u, port, cpu);
  CHECK_OK(conn);
  std::vector<uint8_t> payload(256, 0x5a);
  Tracer* tracer = sim->tracer();
  for (int i = 0; i < pings; ++i) {
    TraceContext root_ctx;
    if (tracer != nullptr) {
      root_ctx.trace_id = tracer->NewTraceId();
    }
    ScopedSpan op(tracer, "client", "net.client.op", root_ctx);
    CHECK_OK(co_await eth->ClientSend(*conn, payload, cpu, op.context()));
    auto echoed = co_await eth->ClientRecv(*conn);
    CHECK_OK(echoed);
  }
  co_await eth->ClientClose(*conn, cpu);
  wg->Done();
}

TEST(NetAttributionTest, FaultFreeEchoStagesSumExactly) {
  ASSERT_FALSE(Faults().any_armed());
  // Declared before the machine: coroutine frames owned by the simulator
  // hold ScopedSpans into the tracer.
  Tracer tracer;
  MachineConfig config;
  config.num_phis = 1;
  config.nvme_capacity = MiB(64);
  Machine machine(std::move(config));
  tracer.Bind(&machine.sim());
  Spawn(machine.sim(), EchoServer(&machine.net_stub(0), 6000));
  machine.sim().RunUntilIdle();

  Processor client(&machine.sim(), machine.host_device(), 32, 1.0, "cl");
  WaitGroup wg(&machine.sim());
  wg.Add(1);
  Spawn(machine.sim(), TracedPings(&machine.ethernet(), &client, 6000, 20,
                                   &machine.sim(), &wg));
  machine.sim().RunUntilIdle();
  ASSERT_EQ(wg.outstanding(), 0u);

  auto breakdowns = ComputeStageBreakdowns(tracer);
  int echo_roots = 0;
  for (const StageBreakdown& b : breakdowns) {
    EXPECT_TRUE(b.net);
    EXPECT_TRUE(b.exact) << "trace " << b.trace_id;
    EXPECT_EQ(b.stub + b.queue_wait + b.iosched_wait + b.proxy +
                  b.copy_dma + b.device + b.wire + b.dispatch,
              b.total)
        << "trace " << b.trace_id;
    // Echo round trips cross the wire; control RPCs (Listen/Accept) don't.
    if (b.wire > 0) {
      ++echo_roots;
      EXPECT_GT(b.proxy, 0u);
    }
  }
  EXPECT_EQ(echo_roots, 20);
}

TEST(NetAttributionTest, DroppedResponsesClampAndClearExact) {
  Tracer tracer;
  MachineConfig config;
  config.num_phis = 1;
  config.nvme_capacity = MiB(64);
  Machine machine(std::move(config));
  tracer.Bind(&machine.sim());
  // Every response dropped + a timeout far below the proxy's service time:
  // the stub gives up while the proxy-side spans are still in flight, so
  // they close outside the root span and the residual subtraction clamps.
  CHECK_OK(Faults().Arm("rpc.drop.response", FaultSpec::EveryNth(1)));
  RpcRetryOptions retry;
  retry.max_attempts = 2;
  retry.timeout = Nanoseconds(200);
  retry.backoff = Nanoseconds(100);
  machine.net_stub(0).set_retry_options(retry);

  auto listener = RunSim(machine.sim(), machine.net_stub(0).Listen(7000, 8));
  EXPECT_FALSE(listener.ok());
  machine.sim().RunUntilIdle();  // drain the overrunning proxy work
  Faults().DisarmAll();

  auto breakdowns = ComputeStageBreakdowns(tracer);
  ASSERT_FALSE(breakdowns.empty());
  bool any_clamped = false;
  for (const StageBreakdown& b : breakdowns) {
    EXPECT_TRUE(b.net);
    if (!b.exact) {
      any_clamped = true;
    }
    // Clamped, never negative (the fields are unsigned: a wrapped
    // subtraction would blow far past any simulated duration).
    EXPECT_LE(b.stub, b.total);
    EXPECT_LT(b.proxy, Seconds(1));
  }
  EXPECT_TRUE(any_clamped);
}

}  // namespace
}  // namespace solros
