// Net-path attribution exactness through the full machine: in a fault-free
// run every net trace's stages sum to its root span exactly; armed rpc.*
// faults produce clamped (never negative) stages with `exact` cleared.
#include <gtest/gtest.h>

#include <vector>

#include "src/base/fault.h"
#include "src/core/machine.h"
#include "src/sim/attribution.h"
#include "src/sim/sync.h"

namespace solros {
namespace {

Task<void> EchoServer(ServerSocketApi* api, uint16_t port) {
  auto listener = co_await api->Listen(port, 8);
  CHECK_OK(listener);
  auto sock = co_await api->Accept(*listener);
  CHECK_OK(sock);
  while (true) {
    auto message = co_await api->Recv(*sock);
    if (!message.ok()) {
      break;
    }
    CHECK_OK(co_await api->Send(*sock, *message));
  }
}

// One connection, `pings` traced echo round trips (the fig14 client shape:
// each ping roots a net.client.op span and threads its context down the
// wire).
Task<void> TracedPings(EthernetFabric* eth, Processor* cpu, uint16_t port,
                       int pings, Simulator* sim, WaitGroup* wg) {
  auto conn = co_await eth->ClientConnect(0x0a000001u, port, cpu);
  CHECK_OK(conn);
  std::vector<uint8_t> payload(256, 0x5a);
  Tracer* tracer = sim->tracer();
  for (int i = 0; i < pings; ++i) {
    TraceContext root_ctx;
    if (tracer != nullptr) {
      root_ctx.trace_id = tracer->NewTraceId();
    }
    ScopedSpan op(tracer, "client", "net.client.op", root_ctx);
    CHECK_OK(co_await eth->ClientSend(*conn, payload, cpu, op.context()));
    auto echoed = co_await eth->ClientRecv(*conn);
    CHECK_OK(echoed);
  }
  co_await eth->ClientClose(*conn, cpu);
  wg->Done();
}

TEST(NetAttributionTest, FaultFreeEchoStagesSumExactly) {
  ASSERT_FALSE(Faults().any_armed());
  // Declared before the machine: coroutine frames owned by the simulator
  // hold ScopedSpans into the tracer.
  Tracer tracer;
  MachineConfig config;
  config.num_phis = 1;
  config.nvme_capacity = MiB(64);
  Machine machine(std::move(config));
  tracer.Bind(&machine.sim());
  Spawn(machine.sim(), EchoServer(&machine.net_stub(0), 6000));
  machine.sim().RunUntilIdle();

  Processor client(&machine.sim(), machine.host_device(), 32, 1.0, "cl");
  WaitGroup wg(&machine.sim());
  wg.Add(1);
  Spawn(machine.sim(), TracedPings(&machine.ethernet(), &client, 6000, 20,
                                   &machine.sim(), &wg));
  machine.sim().RunUntilIdle();
  ASSERT_EQ(wg.outstanding(), 0u);

  auto breakdowns = ComputeStageBreakdowns(tracer);
  int echo_roots = 0;
  for (const StageBreakdown& b : breakdowns) {
    EXPECT_TRUE(b.net);
    EXPECT_TRUE(b.exact) << "trace " << b.trace_id;
    EXPECT_EQ(b.stub + b.queue_wait + b.iosched_wait + b.proxy +
                  b.copy_dma + b.device + b.wire + b.dispatch,
              b.total)
        << "trace " << b.trace_id;
    // Echo round trips cross the wire; control RPCs (Listen/Accept) don't.
    if (b.wire > 0) {
      ++echo_roots;
      EXPECT_GT(b.proxy, 0u);
    }
  }
  EXPECT_EQ(echo_roots, 20);
}

// Untraced filler + traced ping sent back-to-back on one socket: with
// coalescing on and a window wider than the proxy's per-message service
// time, the pair rides one multi-segment NetEvent each way. The traced
// round trip must stay exact — its plug wait is the only queue-bucket span
// of its trace, the train's service span carries the first traced context,
// and the receive side splits the segments back into two framed messages.
Task<void> CoalescedPings(EthernetFabric* eth, Processor* cpu, uint16_t port,
                          int rounds, Simulator* sim, WaitGroup* wg) {
  auto conn = co_await eth->ClientConnect(0x0a000001u, port, cpu);
  CHECK_OK(conn);
  std::vector<uint8_t> filler(64, 0x0f);
  std::vector<uint8_t> payload(256, 0x5a);
  Tracer* tracer = sim->tracer();
  for (int i = 0; i < rounds; ++i) {
    TraceContext root_ctx;
    if (tracer != nullptr) {
      root_ctx.trace_id = tracer->NewTraceId();
    }
    ScopedSpan op(tracer, "client", "net.client.op", root_ctx);
    CHECK_OK(co_await eth->ClientSend(*conn, filler, cpu));
    CHECK_OK(co_await eth->ClientSend(*conn, payload, cpu, op.context()));
    auto first = co_await eth->ClientRecv(*conn);
    CHECK_OK(first);
    CHECK_EQ(first->size(), filler.size());
    auto second = co_await eth->ClientRecv(*conn);
    CHECK_OK(second);
    CHECK_EQ(second->size(), payload.size());
  }
  co_await eth->ClientClose(*conn, cpu);
  wg->Done();
}

TEST(NetAttributionTest, CoalescedMultiSegmentEchoSumsExactly) {
  ASSERT_FALSE(Faults().any_armed());
  Tracer tracer;
  MachineConfig config;
  config.num_phis = 1;
  config.nvme_capacity = MiB(64);
  config.net_options.coalescing = true;
  config.net_options.vectored_push = true;
  config.net_options.adaptive_copy = true;
  config.net_options.drr_dispatch = true;
  // Wider than the proxy's ~7us per-message inbound service time so the
  // back-to-back pair is still staged together when the plug timer fires.
  config.net_options.net_plug_window_ns = Microseconds(50);
  Machine machine(std::move(config));
  tracer.Bind(&machine.sim());
  Spawn(machine.sim(), EchoServer(&machine.net_stub(0), 6100));
  machine.sim().RunUntilIdle();

  Counter* proxy_coalesced =
      MetricRegistry::Default().GetCounter("net.proxy.coalesced_segments");
  Counter* stub_coalesced =
      MetricRegistry::Default().GetCounter("net.stub.coalesced_segments");
  const uint64_t coalesced0 =
      proxy_coalesced->value() + stub_coalesced->value();

  Processor client(&machine.sim(), machine.host_device(), 32, 1.0, "cl");
  WaitGroup wg(&machine.sim());
  wg.Add(1);
  const int rounds = 10;
  Spawn(machine.sim(), CoalescedPings(&machine.ethernet(), &client, 6100,
                                      rounds, &machine.sim(), &wg));
  machine.sim().RunUntilIdle();
  ASSERT_EQ(wg.outstanding(), 0u);

  // Trains actually formed (this is the multi-segment path, not 1-segment
  // passthrough): every staged segment counts once at seal time.
  EXPECT_GT(proxy_coalesced->value() + stub_coalesced->value(), coalesced0);

  auto breakdowns = ComputeStageBreakdowns(tracer);
  int echo_roots = 0;
  for (const StageBreakdown& b : breakdowns) {
    EXPECT_TRUE(b.net);
    EXPECT_TRUE(b.exact) << "trace " << b.trace_id;
    EXPECT_EQ(b.stub + b.queue_wait + b.iosched_wait + b.proxy +
                  b.copy_dma + b.device + b.wire + b.dispatch,
              b.total)
        << "trace " << b.trace_id;
    if (b.wire > 0) {
      ++echo_roots;
    }
  }
  EXPECT_EQ(echo_roots, rounds);
}

// Byte integrity through segment split/reassembly under armed faults: ring
// send/recv stalls hit the batched data path directly, and rpc.* response
// drops (with generous retry) exercise the control plane around it. Every
// echoed message must come back byte-identical and correctly framed.
Task<void> PatternedPipelinedPings(EthernetFabric* eth, Processor* cpu,
                                   uint16_t port, int rounds,
                                   WaitGroup* wg) {
  auto conn = co_await eth->ClientConnect(0x0a000001u, port, cpu);
  CHECK_OK(conn);
  for (int i = 0; i < rounds; ++i) {
    // Two per-round distinct patterns so cross-segment byte mixing or a
    // mis-split length would be caught, not just payload loss.
    std::vector<uint8_t> a(static_cast<size_t>(1 + (i * 37) % 700),
                           static_cast<uint8_t>(2 * i + 1));
    std::vector<uint8_t> b(static_cast<size_t>(1 + (i * 53) % 900),
                           static_cast<uint8_t>(2 * i + 2));
    CHECK_OK(co_await eth->ClientSend(*conn, a, cpu));
    CHECK_OK(co_await eth->ClientSend(*conn, b, cpu));
    auto echo_a = co_await eth->ClientRecv(*conn);
    CHECK_OK(echo_a);
    CHECK(*echo_a == a);
    auto echo_b = co_await eth->ClientRecv(*conn);
    CHECK_OK(echo_b);
    CHECK(*echo_b == b);
  }
  co_await eth->ClientClose(*conn, cpu);
  wg->Done();
}

TEST(NetAttributionTest, SegmentReassemblyPreservesBytesUnderFaults) {
  ASSERT_FALSE(Faults().any_armed());
  MachineConfig config;
  config.num_phis = 1;
  config.nvme_capacity = MiB(64);
  config.net_options.coalescing = true;
  config.net_options.vectored_push = true;
  config.net_options.adaptive_copy = true;
  config.net_options.drr_dispatch = true;
  config.net_options.net_plug_window_ns = Microseconds(50);
  Machine machine(std::move(config));
  RpcRetryOptions retry;
  retry.max_attempts = 8;
  retry.timeout = Milliseconds(5);
  retry.backoff = Microseconds(10);
  machine.net_stub(0).set_retry_options(retry);
  Spawn(machine.sim(), EchoServer(&machine.net_stub(0), 6200));
  machine.sim().RunUntilIdle();

  // Armed after listen/accept setup so the storm of setup RPCs doesn't
  // consume the deterministic fault schedule before the data path runs.
  CHECK_OK(Faults().Arm("transport.ring.send_stall", FaultSpec::EveryNth(5)));
  CHECK_OK(Faults().Arm("transport.ring.recv_stall", FaultSpec::EveryNth(7)));
  CHECK_OK(Faults().Arm("rpc.drop.response", FaultSpec::EveryNth(3)));

  Processor client(&machine.sim(), machine.host_device(), 32, 1.0, "cl");
  WaitGroup wg(&machine.sim());
  wg.Add(1);
  Spawn(machine.sim(), PatternedPipelinedPings(&machine.ethernet(), &client,
                                               6200, 30, &wg));
  machine.sim().RunUntilIdle();
  Faults().DisarmAll();
  ASSERT_EQ(wg.outstanding(), 0u);
}

TEST(NetAttributionTest, DroppedResponsesClampAndClearExact) {
  Tracer tracer;
  MachineConfig config;
  config.num_phis = 1;
  config.nvme_capacity = MiB(64);
  Machine machine(std::move(config));
  tracer.Bind(&machine.sim());
  // Every response dropped + a timeout far below the proxy's service time:
  // the stub gives up while the proxy-side spans are still in flight, so
  // they close outside the root span and the residual subtraction clamps.
  CHECK_OK(Faults().Arm("rpc.drop.response", FaultSpec::EveryNth(1)));
  RpcRetryOptions retry;
  retry.max_attempts = 2;
  retry.timeout = Nanoseconds(200);
  retry.backoff = Nanoseconds(100);
  machine.net_stub(0).set_retry_options(retry);

  auto listener = RunSim(machine.sim(), machine.net_stub(0).Listen(7000, 8));
  EXPECT_FALSE(listener.ok());
  machine.sim().RunUntilIdle();  // drain the overrunning proxy work
  Faults().DisarmAll();

  auto breakdowns = ComputeStageBreakdowns(tracer);
  ASSERT_FALSE(breakdowns.empty());
  bool any_clamped = false;
  for (const StageBreakdown& b : breakdowns) {
    EXPECT_TRUE(b.net);
    if (!b.exact) {
      any_clamped = true;
    }
    // Clamped, never negative (the fields are unsigned: a wrapped
    // subtraction would blow far past any simulated duration).
    EXPECT_LE(b.stub, b.total);
    EXPECT_LT(b.proxy, Seconds(1));
  }
  EXPECT_TRUE(any_clamped);
}

}  // namespace
}  // namespace solros
