#include "src/fs/buffer_cache.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/base/prng.h"
#include "src/base/units.h"
#include "src/fs/block_store.h"
#include "src/hw/fabric.h"
#include "src/hw/params.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace solros {
namespace {

class BufferCacheTest : public ::testing::Test {
 protected:
  BufferCacheTest()
      : fabric_(&sim_, params_),
        store_(4096, 1024),
        cache_(&store_, fabric_.HostDevice(0), /*capacity_blocks=*/8) {
    // Seed the store with recognizable block contents.
    Prng prng(1);
    auto raw = store_.raw();
    for (auto& b : raw) {
      b = static_cast<uint8_t>(prng.Next());
    }
  }

  Simulator sim_;
  HwParams params_;
  PcieFabric fabric_;
  MemBlockStore store_;
  BufferCache cache_;
};

TEST_F(BufferCacheTest, MissThenHit) {
  auto ref1 = RunSim(sim_, cache_.GetBlock(5));
  ASSERT_TRUE(ref1.ok());
  EXPECT_EQ(cache_.misses(), 1u);
  EXPECT_EQ(cache_.hits(), 0u);
  EXPECT_EQ(std::memcmp(ref1->span().data(), store_.raw().data() + 5 * 4096,
                        4096),
            0);
  auto ref2 = RunSim(sim_, cache_.GetBlock(5));
  ASSERT_TRUE(ref2.ok());
  EXPECT_EQ(cache_.hits(), 1u);
}

TEST_F(BufferCacheTest, LruEviction) {
  for (uint64_t lba = 0; lba < 8; ++lba) {
    ASSERT_TRUE(RunSim(sim_, cache_.GetBlock(lba)).ok());
  }
  EXPECT_EQ(cache_.size(), 8u);
  // Touch block 0 so block 1 becomes LRU.
  ASSERT_TRUE(RunSim(sim_, cache_.GetBlock(0)).ok());
  // Insert a 9th block; block 1 must be evicted.
  ASSERT_TRUE(RunSim(sim_, cache_.GetBlock(100)).ok());
  EXPECT_EQ(cache_.evictions(), 1u);
  EXPECT_TRUE(cache_.Contains(0));
  EXPECT_FALSE(cache_.Contains(1));
}

TEST_F(BufferCacheTest, DirtyPagesFlushOnEviction) {
  auto ref = RunSim(sim_, cache_.GetBlock(3));
  ASSERT_TRUE(ref.ok());
  std::memset(ref->span().data(), 0x77, 4096);
  cache_.MarkDirty(3);
  // Force eviction of block 3 by filling the cache.
  for (uint64_t lba = 10; lba < 19; ++lba) {
    ASSERT_TRUE(RunSim(sim_, cache_.GetBlock(lba)).ok());
  }
  EXPECT_FALSE(cache_.Contains(3));
  // The store now holds the dirty content.
  EXPECT_EQ(store_.raw()[3 * 4096], 0x77);
}

TEST_F(BufferCacheTest, FlushWritesAllDirty) {
  auto ref = RunSim(sim_, cache_.GetBlock(7));
  ASSERT_TRUE(ref.ok());
  std::memset(ref->span().data(), 0x42, 4096);
  cache_.MarkDirty(7);
  CHECK_OK(RunSim(sim_, cache_.Flush()));
  EXPECT_EQ(store_.raw()[7 * 4096], 0x42);
}

TEST_F(BufferCacheTest, ReadThroughAndWriteThrough) {
  std::vector<uint8_t> data(4096 * 2, 0xcd);
  CHECK_OK(RunSim(sim_, cache_.WriteThrough(20, 2, data)));
  std::vector<uint8_t> out(4096 * 2);
  CHECK_OK(RunSim(sim_, cache_.ReadThrough(20, 2, out)));
  EXPECT_EQ(out, data);
  // Store not yet updated (write-back).
  EXPECT_NE(store_.raw()[20 * 4096], 0xcd);
  CHECK_OK(RunSim(sim_, cache_.Flush()));
  EXPECT_EQ(store_.raw()[20 * 4096], 0xcd);
}

TEST_F(BufferCacheTest, InvalidateDropsWithoutWriteback) {
  auto ref = RunSim(sim_, cache_.GetBlock(9));
  ASSERT_TRUE(ref.ok());
  uint8_t original = store_.raw()[9 * 4096];
  std::memset(ref->span().data(), original + 1, 4096);
  cache_.MarkDirty(9);
  cache_.Invalidate(9);
  CHECK_OK(RunSim(sim_, cache_.Flush()));
  EXPECT_EQ(store_.raw()[9 * 4096], original);
  EXPECT_FALSE(cache_.Contains(9));
}

TEST_F(BufferCacheTest, InvalidateRangeAndMissingBlocksAreNoops) {
  ASSERT_TRUE(RunSim(sim_, cache_.GetBlock(30)).ok());
  cache_.InvalidateRange(29, 4);  // covers 30, ignores absent ones
  EXPECT_FALSE(cache_.Contains(30));
  cache_.Invalidate(999);  // absent: no-op
}

// Counts the backing-store calls the cache makes, so tests can assert how
// write-back batches map to device commands.
class CountingStore : public MemBlockStore {
 public:
  using MemBlockStore::MemBlockStore;

  Task<Status> Write(uint64_t lba, uint32_t nblocks,
                     std::span<const uint8_t> in) override {
    ++writes;
    return MemBlockStore::Write(lba, nblocks, in);
  }

  Task<Status> WriteV(std::span<const ConstBlockRun> runs,
                      bool coalesce) override {
    ++writev_calls;
    writev_runs += runs.size();
    return MemBlockStore::WriteV(runs, coalesce);
  }

  int writes = 0;         // direct per-run writes (WriteV's default delegates)
  int writev_calls = 0;   // vectored submissions
  size_t writev_runs = 0; // total contiguous runs across them
};

// A store whose writes take simulated time, so tests can interleave other
// work with an in-flight write-back.
class SlowStore : public CountingStore {
 public:
  using CountingStore::CountingStore;

  Task<Status> Write(uint64_t lba, uint32_t nblocks,
                     std::span<const uint8_t> in) override {
    co_await Delay(Microseconds(10));
    co_return co_await CountingStore::Write(lba, nblocks, in);
  }

  Task<Status> WriteV(std::span<const ConstBlockRun> runs,
                      bool coalesce) override {
    co_await Delay(Microseconds(10));
    co_return co_await CountingStore::WriteV(runs, coalesce);
  }
};

class SegmentedCacheTest : public ::testing::Test {
 protected:
  SegmentedCacheTest() : fabric_(&sim_, params_), store_(4096, 1024) {
    Prng prng(2);
    auto raw = store_.raw();
    for (auto& b : raw) {
      b = static_cast<uint8_t>(prng.Next());
    }
  }

  BufferCacheOptions Options(bool coalesced = true) {
    BufferCacheOptions options;
    options.scan_resistant = true;
    options.protected_fraction = 0.75;  // capacity 8 -> protected cap 6
    options.coalesced_writeback = coalesced;
    return options;
  }

  std::vector<uint8_t> Block(uint8_t fill) {
    return std::vector<uint8_t>(4096, fill);
  }

  Simulator sim_;
  HwParams params_;
  PcieFabric fabric_;
  CountingStore store_;
};

TEST_F(SegmentedCacheTest, SecondTouchPromotesAndDemotionKeepsCap) {
  BufferCache cache(&store_, fabric_.HostDevice(0), 8, Options());
  for (uint64_t lba = 0; lba < 8; ++lba) {
    ASSERT_TRUE(RunSim(sim_, cache.GetBlock(lba)).ok());
  }
  EXPECT_EQ(cache.probation_pages(), 8u);
  EXPECT_EQ(cache.protected_pages(), 0u);
  // Second touch promotes; the protected segment caps at 6 of 8 pages and
  // demotes its LRU tail back to probation past that.
  for (uint64_t lba = 0; lba < 7; ++lba) {
    ASSERT_TRUE(RunSim(sim_, cache.GetBlock(lba)).ok());
  }
  EXPECT_EQ(cache.protected_pages(), 6u);
  EXPECT_EQ(cache.probation_pages(), 2u);
  EXPECT_EQ(cache.size(), 8u);
}

TEST_F(SegmentedCacheTest, ScanCannotEvictProtectedWorkingSet) {
  BufferCache cache(&store_, fabric_.HostDevice(0), 8, Options());
  // Hot set: 4 pages, touched twice -> protected.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t lba = 0; lba < 4; ++lba) {
      ASSERT_TRUE(RunSim(sim_, cache.GetBlock(lba)).ok());
    }
  }
  EXPECT_EQ(cache.protected_pages(), 4u);
  // A scan 4x the cache size touches each block exactly once.
  for (uint64_t lba = 100; lba < 132; ++lba) {
    ASSERT_TRUE(RunSim(sim_, cache.GetBlock(lba)).ok());
  }
  // The scan churned probation only; the hot set survived.
  for (uint64_t lba = 0; lba < 4; ++lba) {
    EXPECT_TRUE(cache.Contains(lba)) << "hot lba " << lba << " was evicted";
  }
  // Sanity: the single-list LRU loses the hot set under the same pattern.
  BufferCacheOptions legacy;
  legacy.scan_resistant = false;
  BufferCache flat(&store_, fabric_.HostDevice(0), 8, legacy);
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t lba = 0; lba < 4; ++lba) {
      ASSERT_TRUE(RunSim(sim_, flat.GetBlock(lba)).ok());
    }
  }
  for (uint64_t lba = 100; lba < 132; ++lba) {
    ASSERT_TRUE(RunSim(sim_, flat.GetBlock(lba)).ok());
  }
  for (uint64_t lba = 0; lba < 4; ++lba) {
    EXPECT_FALSE(flat.Contains(lba));
  }
}

TEST_F(SegmentedCacheTest, ReadaheadFirstTouchDoesNotPromote) {
  BufferCache cache(&store_, fabric_.HostDevice(0), 8, Options());
  CHECK_OK(RunSim(sim_, cache.InsertClean(50, Block(0xaa),
                                          /*readahead=*/true)));
  EXPECT_EQ(cache.probation_pages(), 1u);
  // First demand hit consumes the speculation: counted, not promoted —
  // a scan references each prefetched page exactly once and must not be
  // able to flood the protected segment through its readahead fills.
  ASSERT_TRUE(RunSim(sim_, cache.GetBlock(50)).ok());
  EXPECT_EQ(cache.readahead_hits(), 1u);
  EXPECT_EQ(cache.protected_pages(), 0u);
  // The second hit is genuine reuse.
  ASSERT_TRUE(RunSim(sim_, cache.GetBlock(50)).ok());
  EXPECT_EQ(cache.protected_pages(), 1u);
  EXPECT_EQ(cache.readahead_hits(), 1u);
}

TEST_F(SegmentedCacheTest, FlushCoalescesSortedDirtyRuns) {
  BufferCache cache(&store_, fabric_.HostDevice(0), 8, Options());
  // Dirty pages inserted out of order: 12, 10, 20, 11.
  for (uint64_t lba : {12, 10, 20, 11}) {
    CHECK_OK(RunSim(sim_, cache.InsertDirty(
                              lba, Block(static_cast<uint8_t>(lba)))));
  }
  EXPECT_EQ(cache.dirty_pages(), 4u);
  CHECK_OK(RunSim(sim_, cache.Flush()));
  // One vectored submission, two contiguous runs: [10..12] and [20].
  EXPECT_EQ(store_.writev_calls, 1);
  EXPECT_EQ(store_.writev_runs, 2u);
  EXPECT_EQ(cache.dirty_pages(), 0u);
  EXPECT_EQ(store_.raw()[10 * 4096], 10);
  EXPECT_EQ(store_.raw()[11 * 4096], 11);
  EXPECT_EQ(store_.raw()[12 * 4096], 12);
  EXPECT_EQ(store_.raw()[20 * 4096], 20);
}

TEST_F(SegmentedCacheTest, LegacyFlushWritesOneCommandPerPage) {
  BufferCache cache(&store_, fabric_.HostDevice(0), 8,
                    Options(/*coalesced=*/false));
  for (uint64_t lba : {10, 11, 12}) {
    CHECK_OK(RunSim(sim_, cache.InsertDirty(
                              lba, Block(static_cast<uint8_t>(lba)))));
  }
  CHECK_OK(RunSim(sim_, cache.Flush()));
  EXPECT_EQ(store_.writev_calls, 0);
  EXPECT_EQ(store_.writes, 3);
}

TEST_F(SegmentedCacheTest, EvictionWritesBackTheContiguousDirtyCluster) {
  BufferCache cache(&store_, fabric_.HostDevice(0), 8, Options());
  // Fill the cache with one contiguous dirty range.
  for (uint64_t lba = 40; lba < 48; ++lba) {
    CHECK_OK(RunSim(sim_, cache.InsertDirty(
                              lba, Block(static_cast<uint8_t>(lba)))));
  }
  // Faulting a new block evicts one victim — but cleans the whole dirty
  // cluster with a single vectored write.
  ASSERT_TRUE(RunSim(sim_, cache.GetBlock(200)).ok());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(store_.writev_calls, 1);
  EXPECT_EQ(store_.writev_runs, 1u);
  EXPECT_EQ(cache.dirty_pages(), 0u);
  for (uint64_t lba = 40; lba < 48; ++lba) {
    EXPECT_EQ(store_.raw()[lba * 4096], static_cast<uint8_t>(lba));
  }
}

TEST_F(SegmentedCacheTest, FlushRangeOnlyTouchesTheRange) {
  BufferCache cache(&store_, fabric_.HostDevice(0), 8, Options());
  CHECK_OK(RunSim(sim_, cache.InsertDirty(5, Block(5))));
  CHECK_OK(RunSim(sim_, cache.InsertDirty(60, Block(60))));
  CHECK_OK(RunSim(sim_, cache.FlushRange(0, 10)));
  EXPECT_EQ(cache.dirty_pages(), 1u);
  EXPECT_EQ(store_.raw()[5 * 4096], 5);
  EXPECT_NE(store_.raw()[60 * 4096], 60);
  // Clean cache: FlushRange is a free no-op (no store calls).
  int calls_before = store_.writev_calls + store_.writes;
  CHECK_OK(RunSim(sim_, cache.FlushRange(0, 10)));
  EXPECT_EQ(store_.writev_calls + store_.writes, calls_before);
}

TEST_F(SegmentedCacheTest, RacingGetBlocksShareOnePage) {
  // MemBlockStore completes instantly, so route through a cache whose
  // faults interleave: spawn two concurrent faults for the same block.
  BufferCache cache(&store_, fabric_.HostDevice(0), 8, Options());
  auto fault = [&](uint64_t lba) -> Task<void> {
    auto ref = co_await cache.GetBlock(lba);
    CHECK(ref.ok());
  };
  Spawn(sim_, fault(70));
  Spawn(sim_, fault(70));
  sim_.RunUntilIdle();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Contains(70));
}

TEST_F(SegmentedCacheTest, InvalidateWhileCoalescedFlushInFlight) {
  BufferCache cache(&store_, fabric_.HostDevice(0), 8, Options());
  uint8_t original = store_.raw()[81 * 4096];
  CHECK_OK(RunSim(sim_, cache.InsertDirty(80, Block(0x11))));
  CHECK_OK(RunSim(sim_, cache.InsertDirty(81, Block(0x22))));
  // Start the flush, then invalidate one page before the simulator runs
  // the write-back to completion. The flush snapshotted the content before
  // suspending, so it must neither crash nor lose the other page.
  bool flushed = false;
  auto flush = [&]() -> Task<void> {
    CHECK_OK(co_await cache.Flush());
    flushed = true;
  };
  Spawn(sim_, flush());
  cache.Invalidate(81);
  sim_.RunUntilIdle();
  EXPECT_TRUE(flushed);
  EXPECT_FALSE(cache.Contains(81));
  EXPECT_EQ(store_.raw()[80 * 4096], 0x11);
  // Whether 81's snapshot landed depends on flush/invalidate interleaving;
  // both orders are sound (P2P writers invalidate before overwriting).
  uint8_t now = store_.raw()[81 * 4096];
  EXPECT_TRUE(now == original || now == 0x22);
}

TEST_F(SegmentedCacheTest, InsertCleanDuringInFlightReadaheadIsStable) {
  BufferCache cache(&store_, fabric_.HostDevice(0), 8, Options());
  // A readahead insert races a demand fault for the same block.
  auto insert = [&](uint64_t lba) -> Task<void> {
    CHECK_OK(co_await cache.InsertClean(lba, Block(0x5c),
                                        /*readahead=*/true));
  };
  auto fault = [&](uint64_t lba) -> Task<void> {
    auto ref = co_await cache.GetBlock(lba);
    CHECK(ref.ok());
  };
  Spawn(sim_, fault(90));
  Spawn(sim_, insert(90));
  sim_.RunUntilIdle();
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Contains(90));
  // The page is clean either way — never a phantom dirty bit.
  EXPECT_EQ(cache.dirty_pages(), 0u);
}

TEST_F(SegmentedCacheTest, ReDirtiedVictimDuringWritebackIsNotLost) {
  SlowStore slow(4096, 1024);
  BufferCache cache(&slow, fabric_.HostDevice(0), 8, Options());
  for (uint64_t lba = 40; lba < 48; ++lba) {
    CHECK_OK(RunSim(sim_, cache.InsertDirty(
                              lba, Block(static_cast<uint8_t>(lba)))));
  }
  // The fault suspends inside the eviction write-back (SlowStore delays);
  // the overwrite then lands while the victim's old snapshot is in flight.
  auto fault = [&]() -> Task<void> {
    auto ref = co_await cache.GetBlock(200);
    CHECK(ref.ok());
  };
  auto overwrite = [&]() -> Task<void> {
    CHECK_OK(co_await cache.InsertDirty(40, Block(0x99)));
  };
  Spawn(sim_, fault());
  Spawn(sim_, overwrite());
  sim_.RunUntilIdle();
  // The re-dirtied page must survive the eviction pass with its new bytes
  // still pending, not be force-evicted with them dropped.
  EXPECT_TRUE(cache.Contains(40));
  EXPECT_EQ(cache.dirty_pages(), 1u);
  EXPECT_EQ(slow.raw()[40 * 4096], 40);  // in-flight snapshot landed
  CHECK_OK(RunSim(sim_, cache.Flush()));
  EXPECT_EQ(slow.raw()[40 * 4096], 0x99);  // ...and the new bytes after it
}

TEST_F(SegmentedCacheTest, FlushRangeWaitsForInFlightWriteback) {
  SlowStore slow(4096, 1024);
  BufferCache cache(&slow, fabric_.HostDevice(0), 8, Options());
  CHECK_OK(RunSim(sim_, cache.InsertDirty(80, Block(0x11))));
  CHECK_OK(RunSim(sim_, cache.InsertDirty(81, Block(0x22))));
  // Flush() clears the dirty bits at snapshot time and suspends in the
  // device write; a concurrent FlushRange must not conclude "nothing
  // dirty, range durable" until that write actually lands.
  auto flush = [&]() -> Task<void> { CHECK_OK(co_await cache.Flush()); };
  bool range_flushed = false;
  bool durable_at_return = false;
  auto flush_range = [&]() -> Task<void> {
    CHECK_OK(co_await cache.FlushRange(80, 2));
    range_flushed = true;
    durable_at_return =
        slow.raw()[80 * 4096] == 0x11 && slow.raw()[81 * 4096] == 0x22;
  };
  Spawn(sim_, flush());
  Spawn(sim_, flush_range());
  sim_.RunUntilIdle();
  EXPECT_TRUE(range_flushed);
  EXPECT_TRUE(durable_at_return);
}

TEST_F(SegmentedCacheTest, AccessorsAreInstanceLocal) {
  // Two live caches share the process-global metric counters; each
  // instance's accessors must still report only its own traffic.
  BufferCache a(&store_, fabric_.HostDevice(0), 8, Options());
  BufferCache b(&store_, fabric_.HostDevice(0), 8, Options());
  ASSERT_TRUE(RunSim(sim_, a.GetBlock(5)).ok());
  ASSERT_TRUE(RunSim(sim_, a.GetBlock(5)).ok());
  EXPECT_EQ(a.misses(), 1u);
  EXPECT_EQ(a.hits(), 1u);
  EXPECT_EQ(b.misses(), 0u);
  EXPECT_EQ(b.hits(), 0u);
}

}  // namespace
}  // namespace solros
