#include "src/fs/buffer_cache.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/base/prng.h"
#include "src/base/units.h"
#include "src/fs/block_store.h"
#include "src/hw/fabric.h"
#include "src/hw/params.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace solros {
namespace {

class BufferCacheTest : public ::testing::Test {
 protected:
  BufferCacheTest()
      : fabric_(&sim_, params_),
        store_(4096, 1024),
        cache_(&store_, fabric_.HostDevice(0), /*capacity_blocks=*/8) {
    // Seed the store with recognizable block contents.
    Prng prng(1);
    auto raw = store_.raw();
    for (auto& b : raw) {
      b = static_cast<uint8_t>(prng.Next());
    }
  }

  Simulator sim_;
  HwParams params_;
  PcieFabric fabric_;
  MemBlockStore store_;
  BufferCache cache_;
};

TEST_F(BufferCacheTest, MissThenHit) {
  auto ref1 = RunSim(sim_, cache_.GetBlock(5));
  ASSERT_TRUE(ref1.ok());
  EXPECT_EQ(cache_.misses(), 1u);
  EXPECT_EQ(cache_.hits(), 0u);
  EXPECT_EQ(std::memcmp(ref1->span().data(), store_.raw().data() + 5 * 4096,
                        4096),
            0);
  auto ref2 = RunSim(sim_, cache_.GetBlock(5));
  ASSERT_TRUE(ref2.ok());
  EXPECT_EQ(cache_.hits(), 1u);
}

TEST_F(BufferCacheTest, LruEviction) {
  for (uint64_t lba = 0; lba < 8; ++lba) {
    ASSERT_TRUE(RunSim(sim_, cache_.GetBlock(lba)).ok());
  }
  EXPECT_EQ(cache_.size(), 8u);
  // Touch block 0 so block 1 becomes LRU.
  ASSERT_TRUE(RunSim(sim_, cache_.GetBlock(0)).ok());
  // Insert a 9th block; block 1 must be evicted.
  ASSERT_TRUE(RunSim(sim_, cache_.GetBlock(100)).ok());
  EXPECT_EQ(cache_.evictions(), 1u);
  EXPECT_TRUE(cache_.Contains(0));
  EXPECT_FALSE(cache_.Contains(1));
}

TEST_F(BufferCacheTest, DirtyPagesFlushOnEviction) {
  auto ref = RunSim(sim_, cache_.GetBlock(3));
  ASSERT_TRUE(ref.ok());
  std::memset(ref->span().data(), 0x77, 4096);
  cache_.MarkDirty(3);
  // Force eviction of block 3 by filling the cache.
  for (uint64_t lba = 10; lba < 19; ++lba) {
    ASSERT_TRUE(RunSim(sim_, cache_.GetBlock(lba)).ok());
  }
  EXPECT_FALSE(cache_.Contains(3));
  // The store now holds the dirty content.
  EXPECT_EQ(store_.raw()[3 * 4096], 0x77);
}

TEST_F(BufferCacheTest, FlushWritesAllDirty) {
  auto ref = RunSim(sim_, cache_.GetBlock(7));
  ASSERT_TRUE(ref.ok());
  std::memset(ref->span().data(), 0x42, 4096);
  cache_.MarkDirty(7);
  CHECK_OK(RunSim(sim_, cache_.Flush()));
  EXPECT_EQ(store_.raw()[7 * 4096], 0x42);
}

TEST_F(BufferCacheTest, ReadThroughAndWriteThrough) {
  std::vector<uint8_t> data(4096 * 2, 0xcd);
  CHECK_OK(RunSim(sim_, cache_.WriteThrough(20, 2, data)));
  std::vector<uint8_t> out(4096 * 2);
  CHECK_OK(RunSim(sim_, cache_.ReadThrough(20, 2, out)));
  EXPECT_EQ(out, data);
  // Store not yet updated (write-back).
  EXPECT_NE(store_.raw()[20 * 4096], 0xcd);
  CHECK_OK(RunSim(sim_, cache_.Flush()));
  EXPECT_EQ(store_.raw()[20 * 4096], 0xcd);
}

TEST_F(BufferCacheTest, InvalidateDropsWithoutWriteback) {
  auto ref = RunSim(sim_, cache_.GetBlock(9));
  ASSERT_TRUE(ref.ok());
  uint8_t original = store_.raw()[9 * 4096];
  std::memset(ref->span().data(), original + 1, 4096);
  cache_.MarkDirty(9);
  cache_.Invalidate(9);
  CHECK_OK(RunSim(sim_, cache_.Flush()));
  EXPECT_EQ(store_.raw()[9 * 4096], original);
  EXPECT_FALSE(cache_.Contains(9));
}

TEST_F(BufferCacheTest, InvalidateRangeAndMissingBlocksAreNoops) {
  ASSERT_TRUE(RunSim(sim_, cache_.GetBlock(30)).ok());
  cache_.InvalidateRange(29, 4);  // covers 30, ignores absent ones
  EXPECT_FALSE(cache_.Contains(30));
  cache_.Invalidate(999);  // absent: no-op
}

}  // namespace
}  // namespace solros
