// Baseline file services: correctness and the paper's expected orderings
// (Solros >> virtio/NFS in throughput; host is the ceiling).
#include "src/fs/baseline_fs.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/base/prng.h"
#include "src/base/units.h"
#include "src/core/machine.h"

namespace solros {
namespace {

MachineConfig SmallConfig() {
  MachineConfig config;
  config.nvme_capacity = MiB(256);
  config.enable_network = false;
  return config;
}

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Prng prng(seed);
  std::vector<uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(prng.Next());
  }
  return out;
}

TEST(VirtioBaselineTest, FsOverVirtioRoundtrips) {
  Machine machine(SmallConfig());
  // A separate SolrosFs instance running *on the Phi* over the virtio
  // relay, against the same NVMe device.
  VirtioBlockStore virtio(&machine.sim(), machine.params(), &machine.nvme(),
                          &machine.host_cpu(), &machine.phi_cpu(0));
  SolrosFs phi_fs(&virtio, &machine.sim());
  CHECK_OK(RunSim(machine.sim(), phi_fs.Format(256)));
  LocalFsService service(machine.params(), &phi_fs, &machine.phi_cpu(0));

  auto ino = RunSim(machine.sim(), service.Create("/v.bin"));
  ASSERT_TRUE(ino.ok());
  auto data = RandomBytes(MiB(1), 1);
  DeviceBuffer buf(machine.phi_device(0), data.size());
  std::memcpy(buf.data(), data.data(), data.size());
  auto written = RunSim(machine.sim(), service.Write(*ino, 0, MemRef::Of(buf)));
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(*written, data.size());

  DeviceBuffer out(machine.phi_device(0), data.size());
  auto read = RunSim(machine.sim(), service.Read(*ino, 0, MemRef::Of(out)));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
  EXPECT_GT(virtio.requests(), 0u);
}

TEST(NfsBaselineTest, RoundtripsThroughHostFs) {
  Machine machine(SmallConfig());
  CHECK_OK(RunSim(machine.sim(), machine.FormatFs()));
  NfsClientFs nfs(&machine.sim(), &machine.fabric(), machine.params(),
                  &machine.fs(), &machine.host_cpu(), &machine.phi_cpu(0),
                  machine.phi_device(0));
  auto ino = RunSim(machine.sim(), nfs.Create("/n.bin"));
  ASSERT_TRUE(ino.ok());
  auto data = RandomBytes(MiB(1) + 333, 2);
  DeviceBuffer buf(machine.phi_device(0), data.size());
  std::memcpy(buf.data(), data.data(), data.size());
  auto written = RunSim(machine.sim(), nfs.Write(*ino, 0, MemRef::Of(buf)));
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(*written, data.size());
  DeviceBuffer out(machine.phi_device(0), data.size());
  auto read = RunSim(machine.sim(), nfs.Read(*ino, 0, MemRef::Of(out)));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data.size());
  EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
}

TEST(BaselineOrderingTest, SolrosBeatsVirtioAndNfsOnBulkReads) {
  // One 16 MiB sequential read per configuration; expect the Fig. 11
  // ordering: Solros ~ host >> virtio / NFS.
  const uint64_t kSize = MiB(16);
  auto data = RandomBytes(kSize, 3);

  auto measure_solros = [&]() -> Nanos {
    Machine machine(SmallConfig());
    CHECK_OK(RunSim(machine.sim(), machine.FormatFs()));
    auto ino = RunSim(machine.sim(), machine.fs_stub(0).Create("/f"));
    CHECK_OK(ino);
    DeviceBuffer buf(machine.phi_device(0), kSize);
    std::memcpy(buf.data(), data.data(), kSize);
    CHECK_OK(RunSim(machine.sim(),
                    machine.fs_stub(0).Write(*ino, 0, MemRef::Of(buf))));
    // Cold cache: P2P read.
    DeviceBuffer out(machine.phi_device(0), kSize);
    SimTime t0 = machine.sim().now();
    CHECK_OK(RunSim(machine.sim(),
                    machine.fs_stub(0).Read(*ino, 0, MemRef::Of(out))));
    CHECK_EQ(std::memcmp(out.data(), data.data(), kSize), 0);
    return machine.sim().now() - t0;
  };

  auto measure_virtio = [&]() -> Nanos {
    Machine machine(SmallConfig());
    VirtioBlockStore virtio(&machine.sim(), machine.params(),
                            &machine.nvme(), &machine.host_cpu(),
                            &machine.phi_cpu(0));
    SolrosFs phi_fs(&virtio, &machine.sim());
    CHECK_OK(RunSim(machine.sim(), phi_fs.Format(256)));
    LocalFsService service(machine.params(), &phi_fs, &machine.phi_cpu(0));
    auto ino = RunSim(machine.sim(), service.Create("/f"));
    CHECK_OK(ino);
    DeviceBuffer buf(machine.phi_device(0), kSize);
    std::memcpy(buf.data(), data.data(), kSize);
    CHECK_OK(RunSim(machine.sim(), service.Write(*ino, 0, MemRef::Of(buf))));
    DeviceBuffer out(machine.phi_device(0), kSize);
    SimTime t0 = machine.sim().now();
    CHECK_OK(RunSim(machine.sim(), service.Read(*ino, 0, MemRef::Of(out))));
    CHECK_EQ(std::memcmp(out.data(), data.data(), kSize), 0);
    return machine.sim().now() - t0;
  };

  auto measure_nfs = [&]() -> Nanos {
    Machine machine(SmallConfig());
    CHECK_OK(RunSim(machine.sim(), machine.FormatFs()));
    NfsClientFs nfs(&machine.sim(), &machine.fabric(), machine.params(),
                    &machine.fs(), &machine.host_cpu(), &machine.phi_cpu(0),
                    machine.phi_device(0));
    auto ino = RunSim(machine.sim(), nfs.Create("/f"));
    CHECK_OK(ino);
    DeviceBuffer buf(machine.phi_device(0), kSize);
    std::memcpy(buf.data(), data.data(), kSize);
    CHECK_OK(RunSim(machine.sim(), nfs.Write(*ino, 0, MemRef::Of(buf))));
    DeviceBuffer out(machine.phi_device(0), kSize);
    SimTime t0 = machine.sim().now();
    CHECK_OK(RunSim(machine.sim(), nfs.Read(*ino, 0, MemRef::Of(out))));
    return machine.sim().now() - t0;
  };

  Nanos solros_time = measure_solros();
  Nanos virtio_time = measure_virtio();
  Nanos nfs_time = measure_nfs();

  double virtio_ratio =
      static_cast<double>(virtio_time) / static_cast<double>(solros_time);
  double nfs_ratio =
      static_cast<double>(nfs_time) / static_cast<double>(solros_time);
  // Fig. 11: Solros sustains ~2.4 GB/s; virtio/NFS are around 0.1-0.2 GB/s.
  EXPECT_GT(virtio_ratio, 8.0) << "virtio " << virtio_time << " vs solros "
                               << solros_time;
  EXPECT_GT(nfs_ratio, 4.0) << "nfs " << nfs_time << " vs solros "
                            << solros_time;
}

}  // namespace
}  // namespace solros
