// Crash-consistency matrix: a randomized workload against a journaled
// SolrosFS on the NVMe device with its volatile-write-cache crash model,
// cut by `nvme.powercut` / `nvme.tornwrite` at every-Nth ordinals that land
// in every stage of the journal pipeline (descriptor write, payload flush,
// commit record, checkpoint, super update). After each cut the device is
// power-cycled, a fresh file system mounts (replaying the journal), and the
// test asserts:
//
//   * fsck reports a clean image — replay produced consistent metadata;
//   * every acknowledged operation is durable: acked creates/unlinks are
//     visible/gone, acked sizes exact; in data mode acked contents are
//     byte-exact too (metadata mode only promises sizes — in-place
//     overwrites of stable blocks are not journaled there);
//   * the one in-flight operation is atomic: the file is in its pre-op or
//     post-op state, never in between.
//
// Everything is deterministic per (mode, fault, N): the simulator is
// single-threaded and arming a fault point reseeds its PRNG.
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/base/fault.h"
#include "src/base/prng.h"
#include "src/base/units.h"
#include "src/fs/fsck.h"
#include "src/fs/nvme_block_store.h"
#include "src/fs/solros_fs.h"
#include "src/hw/fabric.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/nvme/nvme_device.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace solros {
namespace {

constexpr uint64_t kJournalBlocks = 64;
constexpr int kSlots = 8;       // paths /f0../f7
constexpr int kWorkloadOps = 60;

struct CrashRig {
  Simulator sim;
  HwParams params = HwParams::Default();
  PcieFabric fabric{&sim, params};
  DeviceId host = fabric.HostDevice(0);
  DeviceId nvme_id = fabric.AddDevice(DeviceType::kNvme, 0, "nvme0");
  Processor host_cpu{&sim, host, 48, 1.0, "host-cpu"};
  NvmeDevice nvme{&sim, &fabric, params, nvme_id, MiB(64), &host_cpu};
  NvmeBlockStore store{&nvme, &host_cpu};

  CrashRig() {
    Faults().DisarmAll();
    store.set_volatile_write_cache(true);
  }
  ~CrashRig() { Faults().DisarmAll(); }
};

struct ModelFile {
  uint64_t ino = 0;
  std::vector<uint8_t> content;
};

// The single operation that was in flight when the cut landed: its target
// path plus the acceptable pre-op and post-op states.
struct InFlightOp {
  bool active = false;
  std::string path;
  bool exists_before = false;
  std::vector<uint8_t> before;
  bool exists_after = false;
  std::vector<uint8_t> after;
};

std::string SlotPath(uint64_t slot) {
  return "/f" + std::to_string(slot);
}

std::vector<uint8_t> RandomBytes(Prng& prng, size_t n) {
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) {
    b = static_cast<uint8_t>(prng.Next());
  }
  return bytes;
}

Task<Result<std::vector<uint8_t>>> ReadWhole(SolrosFs* fs, uint64_t ino,
                                             uint64_t size) {
  std::vector<uint8_t> buf(size);
  if (size > 0) {
    SOLROS_CO_ASSIGN_OR_RETURN(
        uint64_t n, co_await fs->ReadAt(ino, 0, std::span<uint8_t>(buf)));
    if (n != size) {
      co_return IoError("short read of whole file");
    }
  }
  co_return buf;
}

struct CrashCase {
  JournalMode mode;
  const char* fault;  // fault-point name
  uint64_t nth;       // EveryNth cut ordinal
};

std::string CaseName(const ::testing::TestParamInfo<CrashCase>& info) {
  std::string fault = info.param.fault;
  return std::string(info.param.mode == JournalMode::kData ? "Data"
                                                           : "Metadata") +
         (fault == "nvme.powercut" ? "Powercut" : "Tornwrite") + "N" +
         std::to_string(info.param.nth);
}

class CrashConsistencyTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashConsistencyTest, RemountIsConsistentAndAckedOpsDurable) {
  const CrashCase& c = GetParam();
  CrashRig rig;
  // One workload seed per cell so the op stream differs across ordinals.
  Prng prng(0xc0ffee00 + c.nth * 2 + (c.mode == JournalMode::kData));

  SolrosFs fs(&rig.store, &rig.sim);
  fs.set_journal_mode(c.mode);
  ASSERT_TRUE(RunSim(rig.sim, fs.Format(64, kJournalBlocks)).ok());
  // Make formatting durable, then arm: the cut must land inside the
  // workload, and rollback stops at the state of the last flush.
  ASSERT_TRUE(RunSim(rig.sim, fs.Sync()).ok());
  Faults().set_seed(0x5eed0000 + c.nth);
  ASSERT_TRUE(Faults().Arm(c.fault, FaultSpec::EveryNth(c.nth)).ok());

  std::map<std::string, ModelFile> model;  // acked state only
  InFlightOp in_flight;

  for (int step = 0; step < kWorkloadOps && !in_flight.active; ++step) {
    std::string path = SlotPath(prng.NextBelow(kSlots));
    auto it = model.find(path);
    InFlightOp op;
    op.path = path;
    op.exists_before = it != model.end();
    if (op.exists_before) {
      op.before = it->second.content;
    }

    Status status;
    uint64_t created_ino = 0;
    if (!op.exists_before) {
      op.exists_after = true;  // created empty
      auto created = RunSim(rig.sim, fs.Create(path));
      status = created.status();
      if (created.ok()) {
        created_ino = *created;
      }
    } else {
      uint64_t r = prng.NextBelow(10);
      if (r < 7) {
        // Overwrite and/or extend: offset within [0, size], 1..4 blocks.
        uint64_t offset = prng.NextBelow(op.before.size() + 1);
        uint64_t len = prng.NextInRange(1, 4 * kFsBlockSize);
        std::vector<uint8_t> data = RandomBytes(prng, len);
        op.exists_after = true;
        op.after = op.before;
        if (offset + len > op.after.size()) {
          op.after.resize(offset + len);
        }
        std::memcpy(op.after.data() + offset, data.data(), len);
        auto wrote = RunSim(
            rig.sim, fs.WriteAt(it->second.ino, offset,
                                std::span<const uint8_t>(data)));
        status = wrote.status();
        if (wrote.ok()) {
          ASSERT_EQ(*wrote, len);
        }
      } else if (r < 9) {
        uint64_t new_size = prng.NextBelow(op.before.size() + 1);
        op.exists_after = true;
        op.after = op.before;
        op.after.resize(new_size);
        status = RunSim(rig.sim, fs.Truncate(it->second.ino, new_size));
      } else {
        op.exists_after = false;
        status = RunSim(rig.sim, fs.Unlink(path));
      }
    }

    if (!status.ok()) {
      // The only armed faults are the crash ones; anything else is a bug.
      ASSERT_TRUE(rig.nvme.crashed()) << status.ToString();
      in_flight = op;
      in_flight.active = true;
      break;
    }
    if (op.exists_after) {
      ModelFile& mf = model[path];
      if (!op.exists_before) {
        mf.ino = created_ino;
      }
      mf.content = op.after;
    } else {
      model.erase(path);
    }
  }

  bool fault_fired = rig.nvme.crashed();
  if (!fault_fired) {
    // Ordinal beyond the workload's hit count: finish with a clean
    // unmount. A cut may still land inside the unmount's final sync.
    Status status = RunSim(rig.sim, fs.Unmount());
    fault_fired = rig.nvme.crashed();
    ASSERT_TRUE(status.ok() || fault_fired) << status.ToString();
  }

  // Recovery: disarm first (EveryNth would keep firing during replay),
  // power-cycle, mount a fresh instance over the surviving bytes.
  Faults().DisarmAll();
  rig.nvme.PowerCycle();
  SolrosFs recovered(&rig.store, &rig.sim);
  ASSERT_TRUE(RunSim(rig.sim, recovered.Mount()).ok());

  auto report = RunSim(rig.sim, RunFsck(&rig.store));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->clean())
      << "fault=" << c.fault << " N=" << c.nth << "\n"
      << report->ToString();

  const bool check_content =
      c.mode == JournalMode::kData || !fault_fired;
  for (int slot = 0; slot < kSlots; ++slot) {
    std::string path = SlotPath(slot);
    const bool is_in_flight = in_flight.active && in_flight.path == path;
    auto looked = RunSim(rig.sim, recovered.Lookup(path));
    auto it = model.find(path);

    if (is_in_flight) {
      // Atomicity: pre-op or post-op state, nothing in between.
      if (!looked.ok()) {
        EXPECT_FALSE(in_flight.exists_before && in_flight.exists_after)
            << path << " vanished though it existed before and after";
        continue;
      }
      auto stat = RunSim(rig.sim, recovered.StatInode(*looked));
      ASSERT_TRUE(stat.ok());
      const bool size_is_before =
          in_flight.exists_before && stat->size == in_flight.before.size();
      const bool size_is_after =
          in_flight.exists_after && stat->size == in_flight.after.size();
      EXPECT_TRUE(size_is_before || size_is_after)
          << path << " size " << stat->size << " matches neither pre-op "
          << in_flight.before.size() << " nor post-op "
          << in_flight.after.size();
      if (c.mode == JournalMode::kData && (size_is_before || size_is_after)) {
        auto bytes = RunSim(rig.sim, ReadWhole(&recovered, *looked,
                                               stat->size));
        ASSERT_TRUE(bytes.ok());
        EXPECT_TRUE((size_is_before && *bytes == in_flight.before) ||
                    (size_is_after && *bytes == in_flight.after))
            << path << " contents match neither pre-op nor post-op state";
      }
      continue;
    }

    if (it == model.end()) {
      // Never acked as existing (or acked unlinked): must be absent.
      EXPECT_FALSE(looked.ok()) << path << " should not exist";
      continue;
    }
    ASSERT_TRUE(looked.ok()) << "acked " << path << " lost: "
                             << looked.status().ToString();
    auto stat = RunSim(rig.sim, recovered.StatInode(*looked));
    ASSERT_TRUE(stat.ok());
    EXPECT_EQ(stat->size, it->second.content.size())
        << "acked size of " << path << " lost";
    if (check_content) {
      auto bytes =
          RunSim(rig.sim, ReadWhole(&recovered, *looked, stat->size));
      ASSERT_TRUE(bytes.ok());
      EXPECT_EQ(*bytes, it->second.content)
          << "acked contents of " << path << " lost";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrashConsistencyTest,
    ::testing::ValuesIn([] {
      std::vector<CrashCase> cases;
      for (JournalMode mode : {JournalMode::kMetadata, JournalMode::kData}) {
        for (const char* fault : {"nvme.powercut", "nvme.tornwrite"}) {
          for (uint64_t nth : {1, 2, 3, 5, 8, 13, 21, 34}) {
            cases.push_back({mode, fault, nth});
          }
        }
      }
      return cases;
    }()),
    CaseName);

}  // namespace
}  // namespace solros
