// Host-side NVMe I/O scheduler: single-flight dedup, plugged batching,
// class priority, DRR fairness — each mechanism exercised with its flag on
// and off against the simulated device's doorbell/command accounting.
#include "src/fs/io_scheduler.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/base/fault.h"
#include "src/base/prng.h"
#include "src/base/units.h"
#include "src/fs/buffer_cache.h"
#include "src/hw/fabric.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/nvme/nvme_device.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace solros {
namespace {

constexpr uint32_t kBs = 4096;

struct Rig {
  Simulator sim;
  HwParams params = HwParams::Default();
  PcieFabric fabric{&sim, params};
  DeviceId host = fabric.HostDevice(0);
  DeviceId nvme_id = fabric.AddDevice(DeviceType::kNvme, 0, "nvme0");
  Processor host_cpu{&sim, host, 48, 1.0, "host-cpu"};
  NvmeDevice nvme{&sim, &fabric, params, nvme_id, MiB(64), &host_cpu};
  NvmeBlockStore store{&nvme, &host_cpu};

  Rig() {
    Faults().DisarmAll();
    Prng prng(7);
    for (auto& b : nvme.RawFlash()) {
      b = static_cast<uint8_t>(prng.Next());
    }
  }
  ~Rig() { Faults().DisarmAll(); }

  const uint8_t* flash(uint64_t lba) const {
    return const_cast<Rig*>(this)->nvme.RawFlash().data() + lba * kBs;
  }
};

// One scheduled read; records its completion tag and status.
Task<void> TaggedRead(IoScheduler* sched, uint64_t lba, uint32_t nblocks,
                      std::span<uint8_t> out, IoClass cls, uint32_t client,
                      std::string tag, std::vector<std::string>* order,
                      std::vector<Status>* statuses, WaitGroup* wg) {
  Status status = co_await sched->Read(lba, nblocks, out, cls, client);
  order->push_back(std::move(tag));
  statuses->push_back(status);
  wg->Done();
}

Task<void> TaggedWrite(IoScheduler* sched, uint64_t lba, uint32_t nblocks,
                       std::span<const uint8_t> in, IoClass cls,
                       std::string tag, std::vector<std::string>* order,
                       std::vector<Status>* statuses, WaitGroup* wg) {
  Status status = co_await sched->Write(lba, nblocks, in, cls);
  order->push_back(std::move(tag));
  statuses->push_back(status);
  wg->Done();
}

Task<void> DelayedRead(Nanos delay, IoScheduler* sched, uint64_t lba,
                       std::span<uint8_t> out, WaitGroup* wg,
                       Status* status) {
  co_await Delay(delay);
  *status = co_await sched->Read(lba, 1, out);
  wg->Done();
}

Task<void> DelayedTaggedRead(Nanos delay, IoScheduler* sched, uint64_t lba,
                             std::span<uint8_t> out, std::string tag,
                             std::vector<std::string>* order,
                             std::vector<Status>* statuses, WaitGroup* wg) {
  co_await Delay(delay);
  Status s = co_await sched->Read(lba, 1, out);
  order->push_back(std::move(tag));
  statuses->push_back(s);
  wg->Done();
}

TEST(IoSchedulerTest, ConcurrentOverlappingReadsAreSingleFlight) {
  Rig rig;
  IoScheduler sched(&rig.sim, &rig.store);
  constexpr int kCallers = 6;
  std::vector<std::vector<uint8_t>> bufs(kCallers,
                                         std::vector<uint8_t>(kBs));
  std::vector<std::string> order;
  std::vector<Status> statuses;
  WaitGroup wg(&rig.sim);
  for (int i = 0; i < kCallers; ++i) {
    wg.Add(1);
    Spawn(rig.sim, TaggedRead(&sched, 42, 1, bufs[i], IoClass::kDemand,
                              kIoSchedHostClient, "r" + std::to_string(i),
                              &order, &statuses, &wg));
  }
  rig.sim.RunUntilIdle();
  ASSERT_EQ(statuses.size(), static_cast<size_t>(kCallers));
  for (const Status& s : statuses) {
    EXPECT_TRUE(s.ok());
  }
  for (const auto& buf : bufs) {
    EXPECT_EQ(std::memcmp(buf.data(), rig.flash(42), kBs), 0);
  }
  // One command, one doorbell, one interrupt for all six callers.
  EXPECT_EQ(rig.nvme.commands_completed(), 1u);
  EXPECT_EQ(rig.nvme.doorbells_rung(), 1u);
  EXPECT_EQ(rig.nvme.interrupts_raised(), 1u);
  EXPECT_EQ(sched.dedup_hits(), static_cast<uint64_t>(kCallers - 1));
}

TEST(IoSchedulerTest, SingleFlightOffFetchesDuplicatesIndependently) {
  Rig rig;
  IoSchedulerOptions options;
  options.single_flight = false;
  IoScheduler sched(&rig.sim, &rig.store, options);
  constexpr int kCallers = 4;
  std::vector<std::vector<uint8_t>> bufs(kCallers,
                                         std::vector<uint8_t>(kBs));
  std::vector<std::string> order;
  std::vector<Status> statuses;
  WaitGroup wg(&rig.sim);
  for (int i = 0; i < kCallers; ++i) {
    wg.Add(1);
    Spawn(rig.sim, TaggedRead(&sched, 42, 1, bufs[i], IoClass::kDemand,
                              kIoSchedHostClient, "r" + std::to_string(i),
                              &order, &statuses, &wg));
  }
  rig.sim.RunUntilIdle();
  for (const Status& s : statuses) {
    EXPECT_TRUE(s.ok());
  }
  // Seed behavior: every duplicate pays its own flash read.
  EXPECT_EQ(rig.nvme.commands_completed(), static_cast<uint64_t>(kCallers));
  EXPECT_EQ(sched.dedup_hits(), 0u);
}

TEST(IoSchedulerTest, LateArrivalAttachesToInflightFetch) {
  Rig rig;
  IoScheduler sched(&rig.sim, &rig.store);
  std::vector<uint8_t> a(kBs), b(kBs);
  WaitGroup wg(&rig.sim);
  Status sa, sb;
  wg.Add(2);
  Spawn(rig.sim, DelayedRead(0, &sched, 7, a, &wg, &sa));
  // Arrives mid-flight: the plug window is 4us and the device takes ~80us,
  // so at 20us the fetch for LBA 7 is already at the device.
  Spawn(rig.sim, DelayedRead(Microseconds(20), &sched, 7, b, &wg, &sb));
  rig.sim.RunUntilIdle();
  EXPECT_TRUE(sa.ok());
  EXPECT_TRUE(sb.ok());
  EXPECT_EQ(std::memcmp(a.data(), rig.flash(7), kBs), 0);
  EXPECT_EQ(std::memcmp(b.data(), rig.flash(7), kBs), 0);
  EXPECT_EQ(rig.nvme.commands_completed(), 1u);
  EXPECT_EQ(sched.dedup_hits(), 1u);
}

TEST(IoSchedulerTest, SharedFetchFailureFailsEveryWaiterCoherently) {
  Rig rig;
  IoScheduler sched(&rig.sim, &rig.store);
  // Every attempt fails, so retries exhaust and the one shared fetch
  // reports an error to every caller attached to it.
  ASSERT_TRUE(Faults().Arm("nvme.cmd.fail", FaultSpec::EveryNth(1)).ok());
  constexpr int kCallers = 5;
  std::vector<std::vector<uint8_t>> bufs(kCallers,
                                         std::vector<uint8_t>(kBs));
  std::vector<std::string> order;
  std::vector<Status> statuses;
  WaitGroup wg(&rig.sim);
  for (int i = 0; i < kCallers; ++i) {
    wg.Add(1);
    Spawn(rig.sim, TaggedRead(&sched, 13, 1, bufs[i], IoClass::kDemand,
                              kIoSchedHostClient, "r" + std::to_string(i),
                              &order, &statuses, &wg));
  }
  rig.sim.RunUntilIdle();
  ASSERT_EQ(statuses.size(), static_cast<size_t>(kCallers));
  for (const Status& s : statuses) {
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), statuses.front().code());
  }
  EXPECT_EQ(sched.dedup_hits(), static_cast<uint64_t>(kCallers - 1));
}

TEST(IoSchedulerTest, PlugWindowBatchesStaggeredArrivals) {
  auto doorbells_with_plug = [](bool plug) {
    Rig rig;
    IoSchedulerOptions options;
    options.plug = plug;
    IoScheduler sched(&rig.sim, &rig.store, options);
    std::vector<uint8_t> a(kBs), b(kBs);
    WaitGroup wg(&rig.sim);
    Status sa, sb;
    wg.Add(2);
    Spawn(rig.sim, DelayedRead(0, &sched, 100, a, &wg, &sa));
    // Inside the 4us plug window, far outside adjacency.
    Spawn(rig.sim,
          DelayedRead(Microseconds(1), &sched, 5000, b, &wg, &sb));
    rig.sim.RunUntilIdle();
    EXPECT_TRUE(sa.ok());
    EXPECT_TRUE(sb.ok());
    EXPECT_EQ(rig.nvme.commands_completed(), 2u);
    return rig.nvme.doorbells_rung();
  };
  // Plugged: both requests ride one submission (one doorbell). Unplugged:
  // the first dispatches alone, the second in its own later round.
  EXPECT_EQ(doorbells_with_plug(true), 1u);
  EXPECT_EQ(doorbells_with_plug(false), 2u);
}

TEST(IoSchedulerTest, AdjacentReadsMergeIntoOneCommand) {
  Rig rig;
  IoScheduler sched(&rig.sim, &rig.store);
  std::vector<uint8_t> a(kBs), b(kBs);
  std::vector<std::string> order;
  std::vector<Status> statuses;
  WaitGroup wg(&rig.sim);
  wg.Add(2);
  Spawn(rig.sim, TaggedRead(&sched, 11, 1, b, IoClass::kDemand,
                            kIoSchedHostClient, "hi", &order, &statuses,
                            &wg));
  Spawn(rig.sim, TaggedRead(&sched, 10, 1, a, IoClass::kDemand,
                            kIoSchedHostClient, "lo", &order, &statuses,
                            &wg));
  rig.sim.RunUntilIdle();
  for (const Status& s : statuses) {
    EXPECT_TRUE(s.ok());
  }
  EXPECT_EQ(std::memcmp(a.data(), rig.flash(10), kBs), 0);
  EXPECT_EQ(std::memcmp(b.data(), rig.flash(11), kBs), 0);
  // LBA-sorted and merged: [10,12) is one two-block command.
  EXPECT_EQ(rig.nvme.commands_completed(), 1u);
  EXPECT_EQ(sched.merges(), 1u);
}

TEST(IoSchedulerTest, AdjacentWritesMergeIntoOneCommand) {
  Rig rig;
  IoScheduler sched(&rig.sim, &rig.store);
  std::vector<uint8_t> a(kBs, 0xa1), b(kBs, 0xb2);
  std::vector<std::string> order;
  std::vector<Status> statuses;
  WaitGroup wg(&rig.sim);
  wg.Add(2);
  Spawn(rig.sim, TaggedWrite(&sched, 21, 1, b, IoClass::kWriteback, "hi",
                             &order, &statuses, &wg));
  Spawn(rig.sim, TaggedWrite(&sched, 20, 1, a, IoClass::kWriteback, "lo",
                             &order, &statuses, &wg));
  rig.sim.RunUntilIdle();
  for (const Status& s : statuses) {
    EXPECT_TRUE(s.ok());
  }
  EXPECT_EQ(rig.nvme.commands_completed(), 1u);
  EXPECT_EQ(rig.flash(20)[0], 0xa1);
  EXPECT_EQ(rig.flash(21)[0], 0xb2);
  EXPECT_EQ(sched.merges(), 1u);
}

TEST(IoSchedulerTest, PriorityDispatchesDemandBeforeBackground) {
  Rig rig;
  IoScheduler sched(&rig.sim, &rig.store);
  std::vector<uint8_t> ra(kBs), wb(kBs, 0x33), demand(kBs);
  std::vector<std::string> order;
  std::vector<Status> statuses;
  WaitGroup wg(&rig.sim);
  wg.Add(3);
  // Enqueued worst class first; strict priority must invert the order.
  Spawn(rig.sim, TaggedRead(&sched, 300, 1, ra, IoClass::kReadahead,
                            kIoSchedHostClient, "readahead", &order,
                            &statuses, &wg));
  Spawn(rig.sim, TaggedWrite(&sched, 200, 1, wb, IoClass::kWriteback,
                             "writeback", &order, &statuses, &wg));
  Spawn(rig.sim, TaggedRead(&sched, 100, 1, demand, IoClass::kDemand,
                            kIoSchedHostClient, "demand", &order, &statuses,
                            &wg));
  rig.sim.RunUntilIdle();
  ASSERT_EQ(order.size(), 3u);
  // Strict priority inverts arrival order at dispatch: the demand read
  // (enqueued last) goes to the device in the first round and completes
  // before the readahead that arrived first. (Rounds pipeline, so the
  // writeback's completion order depends on device write latency — only
  // the two reads are comparable.)
  auto position = [&](const std::string& tag) {
    return std::find(order.begin(), order.end(), tag) - order.begin();
  };
  EXPECT_LT(position("demand"), position("readahead"));
  EXPECT_EQ(sched.dispatched(IoClass::kDemand), 1u);
  EXPECT_EQ(sched.dispatched(IoClass::kWriteback), 1u);
  EXPECT_EQ(sched.dispatched(IoClass::kReadahead), 1u);
  // Three strict class rounds, not one mixed batch.
  EXPECT_EQ(sched.batches(), 3u);
}

TEST(IoSchedulerTest, PriorityOffDispatchesOneArrivalOrderBatch) {
  Rig rig;
  IoSchedulerOptions options;
  options.priority = false;
  IoScheduler sched(&rig.sim, &rig.store, options);
  std::vector<uint8_t> ra(kBs), wb(kBs, 0x33), demand(kBs);
  std::vector<std::string> order;
  std::vector<Status> statuses;
  WaitGroup wg(&rig.sim);
  wg.Add(3);
  Spawn(rig.sim, TaggedRead(&sched, 300, 1, ra, IoClass::kReadahead,
                            kIoSchedHostClient, "readahead", &order,
                            &statuses, &wg));
  Spawn(rig.sim, TaggedWrite(&sched, 200, 1, wb, IoClass::kWriteback,
                             "writeback", &order, &statuses, &wg));
  Spawn(rig.sim, TaggedRead(&sched, 100, 1, demand, IoClass::kDemand,
                            kIoSchedHostClient, "demand", &order, &statuses,
                            &wg));
  rig.sim.RunUntilIdle();
  ASSERT_EQ(order.size(), 3u);
  // One class-less round carries everything.
  EXPECT_EQ(sched.batches(), 1u);
}

TEST(IoSchedulerTest, DrrFairnessInterleavesAStormingClient) {
  auto flood_position_of_victim = [](bool fairness) {
    Rig rig;
    IoSchedulerOptions options;
    options.fairness = fairness;
    options.drr_quantum_blocks = 1;
    options.plug_max_batch = 2;  // small rounds so interleaving is visible
    IoScheduler sched(&rig.sim, &rig.store, options);
    constexpr int kFlood = 8;
    std::vector<std::vector<uint8_t>> bufs(kFlood + 1,
                                           std::vector<uint8_t>(kBs));
    std::vector<std::string> order;
    std::vector<Status> statuses;
    WaitGroup wg(&rig.sim);
    for (int i = 0; i < kFlood; ++i) {
      wg.Add(1);
      Spawn(rig.sim, TaggedRead(&sched, 1000 + 2 * i, 1, bufs[i],
                                IoClass::kDemand, /*client=*/0,
                                "flood" + std::to_string(i), &order,
                                &statuses, &wg));
    }
    // The victim enqueues last, behind the whole flood.
    wg.Add(1);
    Spawn(rig.sim, TaggedRead(&sched, 9000, 1, bufs[kFlood],
                              IoClass::kDemand, /*client=*/1, "victim",
                              &order, &statuses, &wg));
    rig.sim.RunUntilIdle();
    for (const Status& s : statuses) {
      EXPECT_TRUE(s.ok());
    }
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i] == "victim") {
        return i;
      }
    }
    return order.size();
  };
  // DRR gives the victim a slot in the first round; FIFO makes it wait out
  // all eight flood requests.
  EXPECT_LT(flood_position_of_victim(true), 2u);
  EXPECT_EQ(flood_position_of_victim(false), 8u);
}

TEST(IoSchedulerTest, StallFaultDelaysButDrainsEveryRequest) {
  Rig rig;
  IoScheduler sched(&rig.sim, &rig.store);
  ASSERT_TRUE(
      Faults().Arm("iosched.stall", FaultSpec::Probability(1.0)).ok());
  std::vector<std::vector<uint8_t>> bufs(12, std::vector<uint8_t>(kBs));
  std::vector<std::string> order;
  std::vector<Status> statuses;
  WaitGroup wg(&rig.sim);
  // Three staggered waves so stalls hit plugged and busy queues alike.
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 4; ++i) {
      int idx = wave * 4 + i;
      wg.Add(1);
      Spawn(rig.sim,
            DelayedTaggedRead(Microseconds(30) * wave, &sched, 50 + 3 * idx,
                              bufs[idx], std::to_string(idx), &order,
                              &statuses, &wg));
    }
  }
  rig.sim.RunUntilIdle();
  // No hang, no lost waiters: every request completed despite the stalls.
  ASSERT_EQ(statuses.size(), 12u);
  for (const Status& s : statuses) {
    EXPECT_TRUE(s.ok());
  }
  EXPECT_GT(sched.stalls(), 0u);
  EXPECT_EQ(wg.outstanding(), 0u);
}

// Satellite regression: the named duplicate-fetch guarantee at the cache
// level. N concurrent GetBlock calls on one cold LBA => one device command
// and N satisfied callers; a fault on that one fetch fails all N.
Task<void> GetBlockInto(BufferCache* cache, uint64_t lba, int* ok_count,
                        int* fail_count, WaitGroup* wg) {
  auto ref = co_await cache->GetBlock(lba);
  if (ref.ok()) {
    ++*ok_count;
  } else {
    ++*fail_count;
  }
  wg->Done();
}

TEST(IoSchedulerTest, ConcurrentColdGetBlocksShareOneDeviceFetch) {
  Rig rig;
  IoScheduler sched(&rig.sim, &rig.store);
  BufferCache cache(&rig.store, rig.host, /*capacity_blocks=*/32);
  cache.set_io_scheduler(&sched);
  constexpr int kCallers = 8;
  int ok_count = 0, fail_count = 0;
  WaitGroup wg(&rig.sim);
  for (int i = 0; i < kCallers; ++i) {
    wg.Add(1);
    Spawn(rig.sim, GetBlockInto(&cache, 77, &ok_count, &fail_count, &wg));
  }
  rig.sim.RunUntilIdle();
  EXPECT_EQ(ok_count, kCallers);
  EXPECT_EQ(fail_count, 0);
  EXPECT_EQ(rig.nvme.commands_completed(), 1u);
  EXPECT_EQ(rig.nvme.doorbells_rung(), 1u);
  EXPECT_TRUE(cache.Contains(77));
  auto ref = RunSim(rig.sim, cache.GetBlock(77));
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(std::memcmp(ref->span().data(), rig.flash(77), kBs), 0);
}

TEST(IoSchedulerTest, FaultedSharedGetBlockFetchFailsAllCallers) {
  Rig rig;
  IoScheduler sched(&rig.sim, &rig.store);
  BufferCache cache(&rig.store, rig.host, /*capacity_blocks=*/32);
  cache.set_io_scheduler(&sched);
  ASSERT_TRUE(Faults().Arm("nvme.cmd.fail", FaultSpec::EveryNth(1)).ok());
  constexpr int kCallers = 8;
  int ok_count = 0, fail_count = 0;
  WaitGroup wg(&rig.sim);
  for (int i = 0; i < kCallers; ++i) {
    wg.Add(1);
    Spawn(rig.sim, GetBlockInto(&cache, 77, &ok_count, &fail_count, &wg));
  }
  rig.sim.RunUntilIdle();
  EXPECT_EQ(ok_count, 0);
  EXPECT_EQ(fail_count, kCallers);
  EXPECT_FALSE(cache.Contains(77));
}

}  // namespace
}  // namespace solros
