// SolrosFS semantics over the instant in-memory block store.
#include "src/fs/solros_fs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/prng.h"
#include "src/base/units.h"
#include "src/fs/block_store.h"
#include "src/fs/fsck.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace solros {
namespace {

class FsTest : public ::testing::Test {
 protected:
  FsTest() : store_(kFsBlockSize, 16384), fs_(&store_, &sim_) {
    Status status = RunSim(sim_, fs_.Format(512));
    CHECK_OK(status);
  }

  std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
    Prng prng(seed);
    std::vector<uint8_t> out(n);
    for (auto& b : out) {
      b = static_cast<uint8_t>(prng.Next());
    }
    return out;
  }

  uint64_t MustCreate(const std::string& path) {
    auto result = RunSim(sim_, fs_.Create(path));
    CHECK_OK(result);
    return *result;
  }

  void WriteAll(uint64_t ino, uint64_t off, std::span<const uint8_t> data) {
    auto n = RunSim(sim_, fs_.WriteAt(ino, off, data));
    CHECK_OK(n);
    CHECK_EQ(*n, data.size());
  }

  std::vector<uint8_t> ReadAll(uint64_t ino, uint64_t off, size_t len) {
    std::vector<uint8_t> buf(len);
    auto n = RunSim(sim_, fs_.ReadAt(ino, off, buf));
    CHECK_OK(n);
    buf.resize(*n);
    return buf;
  }

  Simulator sim_;
  MemBlockStore store_;
  SolrosFs fs_;
};

TEST_F(FsTest, FormatAndMountProducesEmptyRoot) {
  auto entries = RunSim(sim_, fs_.Readdir("/"));
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries->empty());
  EXPECT_GT(fs_.free_blocks(), 0u);
}

TEST_F(FsTest, CreateLookupStat) {
  uint64_t ino = MustCreate("/hello.txt");
  auto looked = RunSim(sim_, fs_.Lookup("/hello.txt"));
  ASSERT_TRUE(looked.ok());
  EXPECT_EQ(*looked, ino);
  auto stat = RunSim(sim_, fs_.Stat("/hello.txt"));
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 0u);
  EXPECT_TRUE((stat->mode & kModeFile) != 0);
  EXPECT_EQ(stat->nlink, 1u);
}

TEST_F(FsTest, CreateDuplicateFails) {
  MustCreate("/a");
  auto dup = RunSim(sim_, fs_.Create("/a"));
  EXPECT_EQ(dup.code(), ErrorCode::kAlreadyExists);
}

TEST_F(FsTest, LookupMissingFails) {
  EXPECT_EQ(RunSim(sim_, fs_.Lookup("/nope")).code(), ErrorCode::kNotFound);
}

TEST_F(FsTest, PathValidation) {
  EXPECT_EQ(RunSim(sim_, fs_.Create("relative")).code(),
            ErrorCode::kInvalidArgument);
  std::string long_name(kMaxFileName + 1, 'x');
  EXPECT_EQ(RunSim(sim_, fs_.Create("/" + long_name)).code(),
            ErrorCode::kInvalidArgument);
  // Root itself cannot be created over.
  EXPECT_EQ(RunSim(sim_, fs_.Create("/")).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(FsTest, SmallWriteReadRoundtrip) {
  uint64_t ino = MustCreate("/f");
  auto data = RandomBytes(100, 1);
  WriteAll(ino, 0, data);
  EXPECT_EQ(ReadAll(ino, 0, 100), data);
  auto stat = RunSim(sim_, fs_.StatInode(ino));
  EXPECT_EQ(stat->size, 100u);
}

TEST_F(FsTest, UnalignedWritesAcrossBlockBoundaries) {
  uint64_t ino = MustCreate("/f");
  auto data = RandomBytes(3 * kFsBlockSize, 2);
  // Write at an odd offset spanning several blocks.
  WriteAll(ino, 1000, data);
  EXPECT_EQ(ReadAll(ino, 1000, data.size()), data);
  // The gap [0,1000) reads as zeros.
  auto head = ReadAll(ino, 0, 1000);
  EXPECT_TRUE(std::all_of(head.begin(), head.end(),
                          [](uint8_t b) { return b == 0; }));
}

TEST_F(FsTest, OverwriteInPlaceKeepsExtents) {
  uint64_t ino = MustCreate("/f");
  auto data = RandomBytes(MiB(1), 3);
  WriteAll(ino, 0, data);
  auto stat1 = RunSim(sim_, fs_.StatInode(ino));
  auto data2 = RandomBytes(MiB(1), 4);
  WriteAll(ino, 0, data2);
  auto stat2 = RunSim(sim_, fs_.StatInode(ino));
  // In-place update: same extent count, same size.
  EXPECT_EQ(stat1->extent_count, stat2->extent_count);
  EXPECT_EQ(ReadAll(ino, 0, MiB(1)), data2);
}

TEST_F(FsTest, ReadPastEofClamps) {
  uint64_t ino = MustCreate("/f");
  auto data = RandomBytes(10, 5);
  WriteAll(ino, 0, data);
  std::vector<uint8_t> buf(100);
  auto n = RunSim(sim_, fs_.ReadAt(ino, 5, buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  auto n2 = RunSim(sim_, fs_.ReadAt(ino, 50, buf));
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 0u);
}

TEST_F(FsTest, LargeFileUsesFewExtents) {
  uint64_t ino = MustCreate("/big");
  auto data = RandomBytes(MiB(8), 6);
  WriteAll(ino, 0, data);
  auto stat = RunSim(sim_, fs_.StatInode(ino));
  // A fresh volume should satisfy 8 MiB nearly contiguously.
  EXPECT_LE(stat->extent_count, 3u);
  EXPECT_EQ(ReadAll(ino, 0, MiB(8)), data);
}

TEST_F(FsTest, AppendGrowsFile) {
  uint64_t ino = MustCreate("/log");
  std::vector<uint8_t> chunk(1000, 0xaa);
  for (int i = 0; i < 20; ++i) {
    WriteAll(ino, uint64_t{1000} * i, chunk);
  }
  auto stat = RunSim(sim_, fs_.StatInode(ino));
  EXPECT_EQ(stat->size, 20000u);
}

TEST_F(FsTest, MkdirAndNestedPaths) {
  CHECK_OK(RunSim(sim_, fs_.Mkdir("/dir")));
  CHECK_OK(RunSim(sim_, fs_.Mkdir("/dir/sub")));
  uint64_t ino = MustCreate("/dir/sub/file");
  auto looked = RunSim(sim_, fs_.Lookup("/dir/sub/file"));
  ASSERT_TRUE(looked.ok());
  EXPECT_EQ(*looked, ino);
  auto entries = RunSim(sim_, fs_.Readdir("/dir"));
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "sub");
  EXPECT_TRUE((*entries)[0].is_dir);
}

TEST_F(FsTest, ReaddirListsAllEntries) {
  std::set<std::string> names;
  for (int i = 0; i < 100; ++i) {
    std::string name = "file" + std::to_string(i);
    MustCreate("/" + name);
    names.insert(name);
  }
  auto entries = RunSim(sim_, fs_.Readdir("/"));
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 100u);
  for (const DirEntry& e : *entries) {
    EXPECT_TRUE(names.count(e.name)) << e.name;
  }
}

TEST_F(FsTest, UnlinkFreesSpace) {
  // Force the root directory's data block to exist first so the baseline
  // excludes it (directory blocks are not reclaimed by unlink).
  MustCreate("/placeholder");
  uint64_t free_before = fs_.free_blocks();
  uint64_t ino = MustCreate("/f");
  WriteAll(ino, 0, RandomBytes(MiB(1), 7));
  EXPECT_LT(fs_.free_blocks(), free_before);
  CHECK_OK(RunSim(sim_, fs_.Unlink("/f")));
  EXPECT_EQ(fs_.free_blocks(), free_before);
  EXPECT_EQ(RunSim(sim_, fs_.Lookup("/f")).code(), ErrorCode::kNotFound);
}

TEST_F(FsTest, UnlinkDirectoryRejected) {
  CHECK_OK(RunSim(sim_, fs_.Mkdir("/d")));
  EXPECT_EQ(RunSim(sim_, fs_.Unlink("/d")).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(FsTest, RmdirOnlyWhenEmpty) {
  CHECK_OK(RunSim(sim_, fs_.Mkdir("/d")));
  MustCreate("/d/f");
  EXPECT_EQ(RunSim(sim_, fs_.Rmdir("/d")).code(),
            ErrorCode::kFailedPrecondition);
  CHECK_OK(RunSim(sim_, fs_.Unlink("/d/f")));
  CHECK_OK(RunSim(sim_, fs_.Rmdir("/d")));
  EXPECT_EQ(RunSim(sim_, fs_.Lookup("/d")).code(), ErrorCode::kNotFound);
}

TEST_F(FsTest, RenameMovesAcrossDirectories) {
  CHECK_OK(RunSim(sim_, fs_.Mkdir("/a")));
  CHECK_OK(RunSim(sim_, fs_.Mkdir("/b")));
  uint64_t ino = MustCreate("/a/f");
  WriteAll(ino, 0, RandomBytes(100, 8));
  CHECK_OK(RunSim(sim_, fs_.Rename("/a/f", "/b/g")));
  EXPECT_EQ(RunSim(sim_, fs_.Lookup("/a/f")).code(), ErrorCode::kNotFound);
  auto moved = RunSim(sim_, fs_.Lookup("/b/g"));
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, ino);
  EXPECT_EQ(ReadAll(ino, 0, 100), RandomBytes(100, 8));
}

TEST_F(FsTest, RenameOntoExistingFails) {
  MustCreate("/x");
  MustCreate("/y");
  EXPECT_EQ(RunSim(sim_, fs_.Rename("/x", "/y")).code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(FsTest, TruncateShrinkAndGrow) {
  uint64_t ino = MustCreate("/f");
  WriteAll(ino, 0, RandomBytes(MiB(1), 9));
  uint64_t free_small = fs_.free_blocks();
  CHECK_OK(RunSim(sim_, fs_.Truncate(ino, KiB(4))));
  EXPECT_GT(fs_.free_blocks(), free_small);
  auto stat = RunSim(sim_, fs_.StatInode(ino));
  EXPECT_EQ(stat->size, KiB(4));
  // Grow back: new range must read as zeros.
  CHECK_OK(RunSim(sim_, fs_.Truncate(ino, KiB(64))));
  auto tail = ReadAll(ino, KiB(4), KiB(60));
  ASSERT_EQ(tail.size(), KiB(60));
  EXPECT_TRUE(std::all_of(tail.begin(), tail.end(),
                          [](uint8_t b) { return b == 0; }));
}

TEST_F(FsTest, FiemapCoversWrittenRange) {
  uint64_t ino = MustCreate("/f");
  WriteAll(ino, 0, RandomBytes(MiB(2), 10));
  auto extents = RunSim(sim_, fs_.Fiemap(ino, 0, MiB(2)));
  ASSERT_TRUE(extents.ok());
  uint64_t blocks = 0;
  for (const FsExtent& e : *extents) {
    blocks += e.len;
  }
  EXPECT_EQ(blocks, MiB(2) / kFsBlockSize);
}

TEST_F(FsTest, FiemapSubRangeTrimsExtents) {
  uint64_t ino = MustCreate("/f");
  WriteAll(ino, 0, RandomBytes(MiB(1), 11));
  // One block in the middle.
  auto extents =
      RunSim(sim_, fs_.Fiemap(ino, 7 * kFsBlockSize, kFsBlockSize));
  ASSERT_TRUE(extents.ok());
  ASSERT_EQ(extents->size(), 1u);
  EXPECT_EQ((*extents)[0].len, 1u);
  // Unaligned sub-range still covers its blocks.
  auto unaligned = RunSim(sim_, fs_.Fiemap(ino, 100, kFsBlockSize));
  ASSERT_TRUE(unaligned.ok());
  uint64_t blocks = 0;
  for (const FsExtent& e : *unaligned) {
    blocks += e.len;
  }
  EXPECT_EQ(blocks, 2u);  // spans two blocks
}

TEST_F(FsTest, FiemapBeyondEofIsEmpty) {
  uint64_t ino = MustCreate("/f");
  WriteAll(ino, 0, RandomBytes(100, 12));
  auto extents = RunSim(sim_, fs_.Fiemap(ino, KiB(64), KiB(4)));
  ASSERT_TRUE(extents.ok());
  EXPECT_TRUE(extents->empty());
}

TEST_F(FsTest, RemountPreservesEverything) {
  uint64_t ino = MustCreate("/persist");
  auto data = RandomBytes(MiB(1) + 137, 13);
  WriteAll(ino, 0, data);
  CHECK_OK(RunSim(sim_, fs_.Mkdir("/d")));
  MustCreate("/d/child");
  CHECK_OK(RunSim(sim_, fs_.Unmount()));

  SolrosFs fs2(&store_, &sim_);
  CHECK_OK(RunSim(sim_, fs2.Mount()));
  auto looked = RunSim(sim_, fs2.Lookup("/persist"));
  ASSERT_TRUE(looked.ok());
  std::vector<uint8_t> buf(data.size());
  auto n = RunSim(sim_, fs2.ReadAt(*looked, 0, buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(buf, data);
  EXPECT_TRUE(RunSim(sim_, fs2.Lookup("/d/child")).ok());
}

TEST_F(FsTest, MountRejectsGarbage) {
  MemBlockStore garbage(kFsBlockSize, 64);
  SolrosFs fs2(&garbage);
  EXPECT_EQ(RunSim(sim_, fs2.Mount()).code(), ErrorCode::kIoError);
}

TEST_F(FsTest, OperationsRequireMount) {
  CHECK_OK(RunSim(sim_, fs_.Unmount()));
  EXPECT_EQ(RunSim(sim_, fs_.Create("/x")).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(RunSim(sim_, fs_.Lookup("/x")).code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(FsTest, OutOfSpaceSurfacesCleanly) {
  // The store has 16384 blocks (~64 MiB); fill until failure.
  uint64_t ino = MustCreate("/hog");
  std::vector<uint8_t> chunk(MiB(8), 0x11);
  Status last;
  uint64_t written = 0;
  for (int i = 0; i < 32; ++i) {
    auto n = RunSim(sim_, fs_.WriteAt(ino, written, chunk));
    if (!n.ok()) {
      last = n.status();
      break;
    }
    written += *n;
  }
  EXPECT_EQ(last.code(), ErrorCode::kResourceExhausted);
  // The file system must still function after ENOSPC.
  CHECK_OK(RunSim(sim_, fs_.Unlink("/hog")));
  uint64_t ino2 = MustCreate("/after");
  WriteAll(ino2, 0, RandomBytes(1000, 14));
}

TEST_F(FsTest, OutOfInodesSurfacesCleanly) {
  // Formatted with 512 inodes; root takes one.
  Status last;
  int created = 0;
  for (int i = 0; i < 600; ++i) {
    auto r = RunSim(sim_, fs_.Create("/i" + std::to_string(i)));
    if (!r.ok()) {
      last = r.status();
      break;
    }
    ++created;
  }
  EXPECT_EQ(created, 511);
  EXPECT_EQ(last.code(), ErrorCode::kResourceExhausted);
}

TEST_F(FsTest, ManyFilesRandomizedRoundtrip) {
  Prng prng(42);
  struct FileInfo {
    uint64_t ino;
    std::vector<uint8_t> content;
  };
  std::vector<FileInfo> files;
  for (int i = 0; i < 40; ++i) {
    FileInfo info;
    info.ino = MustCreate("/rand" + std::to_string(i));
    info.content = RandomBytes(prng.NextInRange(1, KiB(128)), 100 + i);
    WriteAll(info.ino, 0, info.content);
    files.push_back(std::move(info));
  }
  // Interleaved partial overwrites.
  for (int round = 0; round < 100; ++round) {
    auto& f = files[prng.NextBelow(files.size())];
    uint64_t off = prng.NextBelow(f.content.size());
    uint64_t len =
        std::min<uint64_t>(f.content.size() - off,
                           prng.NextInRange(1, KiB(8)));
    auto patch = RandomBytes(len, 1000 + round);
    WriteAll(f.ino, off, patch);
    std::copy(patch.begin(), patch.end(), f.content.begin() + off);
  }
  for (const auto& f : files) {
    EXPECT_EQ(ReadAll(f.ino, 0, f.content.size()), f.content);
  }
}

// --- Allocator / bitmap invariants, cross-checked by fsck -------------------

// Shared helpers for tests that inspect or corrupt the raw image.
class FsInvariantTest : public FsTest {
 protected:
  SuperBlock ReadSuper() {
    SuperBlock sb;
    std::memcpy(&sb, store_.raw().data(), sizeof(sb));
    return sb;
  }

  // The serialized DiskInode of `ino` inside the on-disk inode table.
  uint8_t* InodeBytes(uint64_t ino) {
    SuperBlock sb = ReadSuper();
    uint64_t block = sb.inode_table_start + (ino - 1) / kInodesPerBlock;
    uint64_t slot = (ino - 1) % kInodesPerBlock;
    return store_.raw().data() + block * kFsBlockSize + slot * kInodeSize;
  }

  void FlipBlockBitmapBit(uint64_t lba) {
    SuperBlock sb = ReadSuper();
    uint8_t* byte =
        store_.raw().data() + sb.block_bitmap_start * kFsBlockSize + lba / 8;
    *byte ^= static_cast<uint8_t>(1u << (lba % 8));
  }

  void FlipInodeBitmapBit(uint64_t ino) {
    SuperBlock sb = ReadSuper();
    uint8_t* byte = store_.raw().data() +
                    sb.inode_bitmap_start * kFsBlockSize + (ino - 1) / 8;
    *byte ^= static_cast<uint8_t>(1u << ((ino - 1) % 8));
  }

  FsckReport MustFsck() {
    auto report = RunSim(sim_, RunFsck(&store_));
    CHECK_OK(report);
    return *report;
  }

  static bool HasFinding(const FsckReport& report, std::string_view code) {
    for (const FsckFinding& finding : report.findings) {
      if (finding.code == code) {
        return true;
      }
    }
    return false;
  }
};

TEST_F(FsInvariantTest, FreeCountAccountingAcrossOpSequence) {
  const uint64_t free_inodes0 = fs_.free_inodes();
  uint64_t a = MustCreate("/a");
  uint64_t b = MustCreate("/b");
  // Baseline after the creates, which also allocated the root directory's
  // first dirent block (it stays allocated after the unlinks below).
  const uint64_t base = fs_.free_blocks();
  EXPECT_EQ(fs_.free_inodes(), free_inodes0 - 2);

  WriteAll(a, 0, RandomBytes(KiB(40), 1));   // 10 blocks
  WriteAll(b, 0, RandomBytes(KiB(12), 2));   // 3 blocks
  EXPECT_EQ(fs_.free_blocks(), base - 13);
  // On-disk counts agree with the bitmaps and the reachable tree at every
  // checkpoint (metadata is written back at the end of each operation).
  EXPECT_TRUE(MustFsck().clean());

  CHECK_OK(RunSim(sim_, fs_.Truncate(a, KiB(16))));  // 10 -> 4 blocks
  EXPECT_EQ(fs_.free_blocks(), base - 7);
  EXPECT_TRUE(MustFsck().clean());

  // Unlinking returns every data block and both inodes to the pools.
  CHECK_OK(RunSim(sim_, fs_.Unlink("/a")));
  CHECK_OK(RunSim(sim_, fs_.Unlink("/b")));
  EXPECT_EQ(fs_.free_blocks(), base);
  EXPECT_EQ(fs_.free_inodes(), free_inodes0);
  FsckReport report = MustFsck();
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST_F(FsInvariantTest, FsckDetectsDoubleAllocatedBlock) {
  uint64_t a = MustCreate("/a");
  uint64_t b = MustCreate("/b");
  WriteAll(a, 0, RandomBytes(kFsBlockSize, 3));
  WriteAll(b, 0, RandomBytes(kFsBlockSize, 4));
  CHECK_OK(RunSim(sim_, fs_.Unmount()));

  // Point b's single extent at a's block: two inodes now claim one block
  // (and b's original block leaks — referenced by nobody, marked in use).
  uint64_t a_start;
  std::memcpy(&a_start, InodeBytes(a) + offsetof(DiskInode, direct),
              sizeof(a_start));
  std::memcpy(InodeBytes(b) + offsetof(DiskInode, direct), &a_start,
              sizeof(a_start));

  FsckReport report = MustFsck();
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(HasFinding(report, "bitmap.double-alloc")) << report.ToString();
  EXPECT_TRUE(HasFinding(report, "bitmap.leak")) << report.ToString();
}

TEST_F(FsInvariantTest, FsckDetectsFreedButReferencedBlock) {
  uint64_t a = MustCreate("/a");
  WriteAll(a, 0, RandomBytes(kFsBlockSize, 5));
  CHECK_OK(RunSim(sim_, fs_.Unmount()));

  // Simulate a double-free: clear the bitmap bit of a block /a still
  // references. The block could now be handed out again — exactly the
  // corruption fsck's cross-check exists to catch.
  uint64_t a_start;
  std::memcpy(&a_start, InodeBytes(a) + offsetof(DiskInode, direct),
              sizeof(a_start));
  FlipBlockBitmapBit(a_start);

  FsckReport report = MustFsck();
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(HasFinding(report, "bitmap.not-marked")) << report.ToString();
  EXPECT_TRUE(HasFinding(report, "super.free-blocks-mismatch"))
      << report.ToString();
}

TEST_F(FsInvariantTest, FsckDetectsFreedButLinkedInode) {
  uint64_t a = MustCreate("/a");
  CHECK_OK(RunSim(sim_, fs_.Unmount()));
  FlipInodeBitmapBit(a);

  FsckReport report = MustFsck();
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(HasFinding(report, "inode.not-marked")) << report.ToString();
}

TEST_F(FsInvariantTest, TruncateReleasesIndirectExtentBlock) {
  // Fragment /a by alternating single-block appends with /b: each append
  // lands on the next free block, so /a's extents cannot merge and it
  // spills into an indirect extent block.
  uint64_t a = MustCreate("/a");
  uint64_t b = MustCreate("/b");
  const uint64_t free_after_create = fs_.free_blocks();
  constexpr int kAppends = kDirectExtents + 8;
  for (int i = 0; i < kAppends; ++i) {
    WriteAll(a, uint64_t{static_cast<unsigned>(i)} * kFsBlockSize,
             RandomBytes(kFsBlockSize, 100 + i));
    WriteAll(b, uint64_t{static_cast<unsigned>(i)} * kFsBlockSize,
             RandomBytes(kFsBlockSize, 200 + i));
  }
  auto stat_a = RunSim(sim_, fs_.Stat("/a"));
  auto stat_b = RunSim(sim_, fs_.Stat("/b"));
  ASSERT_TRUE(stat_a.ok() && stat_b.ok());
  ASSERT_GT(stat_a->extent_count, static_cast<uint32_t>(kDirectExtents))
      << "workload failed to force an indirect extent block";
  ASSERT_GT(stat_b->extent_count, static_cast<uint32_t>(kDirectExtents));
  // Both files' data plus one indirect extent block each is allocated.
  EXPECT_EQ(fs_.free_blocks(), free_after_create - 2 * kAppends - 2);
  EXPECT_TRUE(MustFsck().clean());

  // Truncate to zero must return a's data blocks AND its indirect block;
  // b keeps its data and indirect block.
  CHECK_OK(RunSim(sim_, fs_.Truncate(a, 0)));
  EXPECT_EQ(fs_.free_blocks(), free_after_create - kAppends - 1);
  FsckReport report = MustFsck();
  EXPECT_TRUE(report.clean()) << report.ToString();  // no leaked indirect
}

}  // namespace
}  // namespace solros
