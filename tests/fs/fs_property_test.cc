// Property tests for SolrosFS against an in-memory reference model:
// randomized namespace + data operation sequences, fiemap coverage
// invariants, allocator accounting, and remount invariance.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/base/prng.h"
#include "src/base/units.h"
#include "src/fs/block_store.h"
#include "src/fs/solros_fs.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace solros {
namespace {

struct ModelFile {
  uint64_t ino = 0;
  std::vector<uint8_t> content;
};

class FsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FsPropertyTest, RandomOpsMatchReferenceModel) {
  uint64_t seed = GetParam();
  Simulator sim;
  MemBlockStore store(kFsBlockSize, 8192);  // 32 MiB volume
  SolrosFs fs(&store, &sim);
  CHECK_OK(RunSim(sim, fs.Format(128)));

  Prng prng(seed);
  std::map<std::string, ModelFile> model;
  int created = 0;

  for (int step = 0; step < 300; ++step) {
    double dice = prng.NextDouble();
    if (dice < 0.25) {
      // Create a new file.
      std::string path = "/f" + std::to_string(created++);
      auto ino = RunSim(sim, fs.Create(path));
      ASSERT_TRUE(ino.ok()) << path;
      model[path] = ModelFile{*ino, {}};
    } else if (dice < 0.55 && !model.empty()) {
      // Random write (possibly extending).
      auto it = model.begin();
      std::advance(it, prng.NextBelow(model.size()));
      ModelFile& file = it->second;
      uint64_t offset = prng.NextBelow(KiB(48));
      uint64_t len = prng.NextInRange(1, KiB(12));
      std::vector<uint8_t> data(len);
      for (auto& b : data) {
        b = static_cast<uint8_t>(prng.Next());
      }
      auto written = RunSim(sim, fs.WriteAt(file.ino, offset, data));
      ASSERT_TRUE(written.ok());
      ASSERT_EQ(*written, len);
      if (file.content.size() < offset + len) {
        file.content.resize(offset + len, 0);
      }
      std::copy(data.begin(), data.end(), file.content.begin() + offset);
    } else if (dice < 0.75 && !model.empty()) {
      // Random read: must match the model exactly (including EOF clamp).
      auto it = model.begin();
      std::advance(it, prng.NextBelow(model.size()));
      const ModelFile& file = it->second;
      uint64_t offset = prng.NextBelow(KiB(64));
      uint64_t len = prng.NextInRange(1, KiB(16));
      std::vector<uint8_t> out(len);
      auto n = RunSim(sim, fs.ReadAt(file.ino, offset, out));
      ASSERT_TRUE(n.ok());
      uint64_t expect_n =
          offset >= file.content.size()
              ? 0
              : std::min<uint64_t>(len, file.content.size() - offset);
      ASSERT_EQ(*n, expect_n);
      if (expect_n > 0) {
        ASSERT_EQ(std::memcmp(out.data(), file.content.data() + offset,
                              expect_n),
                  0)
            << "step " << step;
      }
    } else if (dice < 0.85 && !model.empty()) {
      // Truncate (shrink or grow).
      auto it = model.begin();
      std::advance(it, prng.NextBelow(model.size()));
      ModelFile& file = it->second;
      uint64_t new_size = prng.NextBelow(KiB(64));
      CHECK_OK(RunSim(sim, fs.Truncate(file.ino, new_size)));
      file.content.resize(new_size, 0);
    } else if (!model.empty()) {
      // Unlink.
      auto it = model.begin();
      std::advance(it, prng.NextBelow(model.size()));
      CHECK_OK(RunSim(sim, fs.Unlink(it->first)));
      model.erase(it);
    }
  }

  // Final verification sweep, then remount and verify again.
  auto verify_all = [&](SolrosFs& target) {
    for (const auto& [path, file] : model) {
      auto ino = RunSim(sim, target.Lookup(path));
      ASSERT_TRUE(ino.ok()) << path;
      auto stat = RunSim(sim, target.StatInode(*ino));
      ASSERT_TRUE(stat.ok());
      ASSERT_EQ(stat->size, file.content.size()) << path;
      std::vector<uint8_t> out(file.content.size());
      if (!out.empty()) {
        auto n = RunSim(sim, target.ReadAt(*ino, 0, out));
        ASSERT_TRUE(n.ok());
        ASSERT_EQ(*n, file.content.size());
        ASSERT_EQ(std::memcmp(out.data(), file.content.data(), out.size()),
                  0)
            << path;
      }
    }
  };
  verify_all(fs);
  CHECK_OK(RunSim(sim, fs.Unmount()));
  SolrosFs fs2(&store, &sim);
  CHECK_OK(RunSim(sim, fs2.Mount()));
  verify_all(fs2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST(FsInvariantTest, FiemapExtentsExactlyCoverFileBlocks) {
  Simulator sim;
  MemBlockStore store(kFsBlockSize, 8192);
  SolrosFs fs(&store, &sim);
  CHECK_OK(RunSim(sim, fs.Format(64)));
  Prng prng(5);
  // Build a fragmented file by interleaving two files' growth.
  auto a = RunSim(sim, fs.Create("/a"));
  auto b = RunSim(sim, fs.Create("/b"));
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<uint8_t> chunk(KiB(16), 0x5a);
  for (int i = 0; i < 20; ++i) {
    CHECK_OK(RunSim(sim, fs.WriteAt(*a, i * chunk.size(), chunk)));
    CHECK_OK(RunSim(sim, fs.WriteAt(*b, i * chunk.size(), chunk)));
  }
  auto stat = RunSim(sim, fs.StatInode(*a));
  ASSERT_TRUE(stat.ok());
  EXPECT_GT(stat->extent_count, 1u) << "fragmentation expected";

  auto extents = RunSim(sim, fs.Fiemap(*a, 0, stat->size));
  ASSERT_TRUE(extents.ok());
  // Invariants: total blocks cover the file; no overlap; all within the
  // data region.
  uint64_t covered = 0;
  std::set<uint64_t> seen;
  for (const FsExtent& e : *extents) {
    ASSERT_GT(e.len, 0u);
    for (uint64_t blk = e.start; blk < e.start + e.len; ++blk) {
      ASSERT_TRUE(seen.insert(blk).second) << "overlapping extent block";
      ASSERT_LT(blk, fs.total_blocks());
    }
    covered += e.len;
  }
  EXPECT_EQ(covered, (stat->size + kFsBlockSize - 1) / kFsBlockSize);
}

TEST(FsInvariantTest, FreeBlockAccountingIsConserved) {
  Simulator sim;
  MemBlockStore store(kFsBlockSize, 4096);
  SolrosFs fs(&store, &sim);
  CHECK_OK(RunSim(sim, fs.Format(64)));
  // Force the root directory block to exist.
  ASSERT_TRUE(RunSim(sim, fs.Create("/pin")).ok());
  uint64_t baseline = fs.free_blocks();
  Prng prng(9);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::string> paths;
    for (int i = 0; i < 5; ++i) {
      std::string path = "/r" + std::to_string(round) + "_" +
                         std::to_string(i);
      auto ino = RunSim(sim, fs.Create(path));
      ASSERT_TRUE(ino.ok());
      std::vector<uint8_t> data(prng.NextInRange(1, KiB(64)));
      CHECK_OK(RunSim(sim, fs.WriteAt(*ino, 0, data)));
      paths.push_back(path);
    }
    for (const std::string& path : paths) {
      CHECK_OK(RunSim(sim, fs.Unlink(path)));
    }
    // All data blocks must come back every round.
    ASSERT_EQ(fs.free_blocks(), baseline) << "round " << round;
  }
}

}  // namespace
}  // namespace solros
