// Property tests for SolrosFS against an in-memory reference model:
// randomized namespace + data operation sequences, fiemap coverage
// invariants, allocator accounting, and remount invariance.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/base/fault.h"
#include "src/base/prng.h"
#include "src/base/units.h"
#include "src/core/machine.h"
#include "src/fs/block_store.h"
#include "src/fs/fsck.h"
#include "src/fs/nvme_block_store.h"
#include "src/fs/solros_fs.h"
#include "src/hw/fabric.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/nvme/nvme_device.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace solros {
namespace {

struct ModelFile {
  uint64_t ino = 0;
  std::vector<uint8_t> content;
};

class FsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FsPropertyTest, RandomOpsMatchReferenceModel) {
  uint64_t seed = GetParam();
  Simulator sim;
  MemBlockStore store(kFsBlockSize, 8192);  // 32 MiB volume
  SolrosFs fs(&store, &sim);
  CHECK_OK(RunSim(sim, fs.Format(128)));

  Prng prng(seed);
  std::map<std::string, ModelFile> model;
  int created = 0;

  for (int step = 0; step < 300; ++step) {
    double dice = prng.NextDouble();
    if (dice < 0.25) {
      // Create a new file.
      std::string path = "/f" + std::to_string(created++);
      auto ino = RunSim(sim, fs.Create(path));
      ASSERT_TRUE(ino.ok()) << path;
      model[path] = ModelFile{*ino, {}};
    } else if (dice < 0.55 && !model.empty()) {
      // Random write (possibly extending).
      auto it = model.begin();
      std::advance(it, prng.NextBelow(model.size()));
      ModelFile& file = it->second;
      uint64_t offset = prng.NextBelow(KiB(48));
      uint64_t len = prng.NextInRange(1, KiB(12));
      std::vector<uint8_t> data(len);
      for (auto& b : data) {
        b = static_cast<uint8_t>(prng.Next());
      }
      auto written = RunSim(sim, fs.WriteAt(file.ino, offset, data));
      ASSERT_TRUE(written.ok());
      ASSERT_EQ(*written, len);
      if (file.content.size() < offset + len) {
        file.content.resize(offset + len, 0);
      }
      std::copy(data.begin(), data.end(), file.content.begin() + offset);
    } else if (dice < 0.75 && !model.empty()) {
      // Random read: must match the model exactly (including EOF clamp).
      auto it = model.begin();
      std::advance(it, prng.NextBelow(model.size()));
      const ModelFile& file = it->second;
      uint64_t offset = prng.NextBelow(KiB(64));
      uint64_t len = prng.NextInRange(1, KiB(16));
      std::vector<uint8_t> out(len);
      auto n = RunSim(sim, fs.ReadAt(file.ino, offset, out));
      ASSERT_TRUE(n.ok());
      uint64_t expect_n =
          offset >= file.content.size()
              ? 0
              : std::min<uint64_t>(len, file.content.size() - offset);
      ASSERT_EQ(*n, expect_n);
      if (expect_n > 0) {
        ASSERT_EQ(std::memcmp(out.data(), file.content.data() + offset,
                              expect_n),
                  0)
            << "step " << step;
      }
    } else if (dice < 0.85 && !model.empty()) {
      // Truncate (shrink or grow).
      auto it = model.begin();
      std::advance(it, prng.NextBelow(model.size()));
      ModelFile& file = it->second;
      uint64_t new_size = prng.NextBelow(KiB(64));
      CHECK_OK(RunSim(sim, fs.Truncate(file.ino, new_size)));
      file.content.resize(new_size, 0);
    } else if (!model.empty()) {
      // Unlink.
      auto it = model.begin();
      std::advance(it, prng.NextBelow(model.size()));
      CHECK_OK(RunSim(sim, fs.Unlink(it->first)));
      model.erase(it);
    }
  }

  // Final verification sweep, then remount and verify again.
  auto verify_all = [&](SolrosFs& target) {
    for (const auto& [path, file] : model) {
      auto ino = RunSim(sim, target.Lookup(path));
      ASSERT_TRUE(ino.ok()) << path;
      auto stat = RunSim(sim, target.StatInode(*ino));
      ASSERT_TRUE(stat.ok());
      ASSERT_EQ(stat->size, file.content.size()) << path;
      std::vector<uint8_t> out(file.content.size());
      if (!out.empty()) {
        auto n = RunSim(sim, target.ReadAt(*ino, 0, out));
        ASSERT_TRUE(n.ok());
        ASSERT_EQ(*n, file.content.size());
        ASSERT_EQ(std::memcmp(out.data(), file.content.data(), out.size()),
                  0)
            << path;
      }
    }
  };
  verify_all(fs);
  CHECK_OK(RunSim(sim, fs.Unmount()));
  SolrosFs fs2(&store, &sim);
  CHECK_OK(RunSim(sim, fs2.Mount()));
  verify_all(fs2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST(FsInvariantTest, FiemapExtentsExactlyCoverFileBlocks) {
  Simulator sim;
  MemBlockStore store(kFsBlockSize, 8192);
  SolrosFs fs(&store, &sim);
  CHECK_OK(RunSim(sim, fs.Format(64)));
  Prng prng(5);
  // Build a fragmented file by interleaving two files' growth.
  auto a = RunSim(sim, fs.Create("/a"));
  auto b = RunSim(sim, fs.Create("/b"));
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<uint8_t> chunk(KiB(16), 0x5a);
  for (int i = 0; i < 20; ++i) {
    CHECK_OK(RunSim(sim, fs.WriteAt(*a, i * chunk.size(), chunk)));
    CHECK_OK(RunSim(sim, fs.WriteAt(*b, i * chunk.size(), chunk)));
  }
  auto stat = RunSim(sim, fs.StatInode(*a));
  ASSERT_TRUE(stat.ok());
  EXPECT_GT(stat->extent_count, 1u) << "fragmentation expected";

  auto extents = RunSim(sim, fs.Fiemap(*a, 0, stat->size));
  ASSERT_TRUE(extents.ok());
  // Invariants: total blocks cover the file; no overlap; all within the
  // data region.
  uint64_t covered = 0;
  std::set<uint64_t> seen;
  for (const FsExtent& e : *extents) {
    ASSERT_GT(e.len, 0u);
    for (uint64_t blk = e.start; blk < e.start + e.len; ++blk) {
      ASSERT_TRUE(seen.insert(blk).second) << "overlapping extent block";
      ASSERT_LT(blk, fs.total_blocks());
    }
    covered += e.len;
  }
  EXPECT_EQ(covered, (stat->size + kFsBlockSize - 1) / kFsBlockSize);
}

TEST(FsInvariantTest, FreeBlockAccountingIsConserved) {
  Simulator sim;
  MemBlockStore store(kFsBlockSize, 4096);
  SolrosFs fs(&store, &sim);
  CHECK_OK(RunSim(sim, fs.Format(64)));
  // Force the root directory block to exist.
  ASSERT_TRUE(RunSim(sim, fs.Create("/pin")).ok());
  uint64_t baseline = fs.free_blocks();
  Prng prng(9);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::string> paths;
    for (int i = 0; i < 5; ++i) {
      std::string path = "/r" + std::to_string(round) + "_" +
                         std::to_string(i);
      auto ino = RunSim(sim, fs.Create(path));
      ASSERT_TRUE(ino.ok());
      std::vector<uint8_t> data(prng.NextInRange(1, KiB(64)));
      CHECK_OK(RunSim(sim, fs.WriteAt(*ino, 0, data)));
      paths.push_back(path);
    }
    for (const std::string& path : paths) {
      CHECK_OK(RunSim(sim, fs.Unlink(path)));
    }
    // All data blocks must come back every round.
    ASSERT_EQ(fs.free_blocks(), baseline) << "round " << round;
  }
}

// Randomized ops through the full stack (stub -> proxy -> block store ->
// NVMe) while NVMe timeouts and DMA errors fire on deterministic every-Nth
// schedules, cross-checking against the in-memory model after every
// recovered operation. Every-Nth triggers keep the run reproducible and
// guarantee an immediate retry cannot re-hit the same fault.
class FaultedStackPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override { Faults().DisarmAll(); }
  void TearDown() override { Faults().DisarmAll(); }
};

TEST_P(FaultedStackPropertyTest, RandomOpsUnderFaultsMatchReferenceModel) {
  uint64_t seed = GetParam();
  MachineConfig config;
  config.num_phis = 1;
  config.nvme_capacity = MiB(64);
  config.enable_network = false;
  Machine machine(std::move(config));
  CHECK_OK(RunSim(machine.sim(), machine.FormatFs()));
  FsStub& stub = machine.fs_stub(0);

  CHECK_OK(Faults().Arm("nvme.cmd.timeout", FaultSpec::EveryNth(7)));
  CHECK_OK(Faults().Arm("hw.dma.error", FaultSpec::EveryNth(5)));

  Prng prng(seed);
  std::map<std::string, ModelFile> model;
  int created = 0;
  DeviceBuffer scratch(machine.phi_device(0), KiB(32));

  for (int step = 0; step < 120; ++step) {
    double dice = prng.NextDouble();
    if (dice < 0.2 || model.empty()) {
      std::string path = "/g" + std::to_string(created++);
      auto ino = RunSim(machine.sim(), stub.Create(path));
      if (!ino.ok() && ino.code() == ErrorCode::kAlreadyExists) {
        // At-least-once namespace retry observed its own first delivery.
        ino = RunSim(machine.sim(), stub.Open(path));
      }
      ASSERT_TRUE(ino.ok()) << path << ": " << ino.status().ToString();
      model[path] = ModelFile{*ino, {}};
      continue;
    }
    auto it = model.begin();
    std::advance(it, prng.NextBelow(model.size()));
    ModelFile& file = it->second;
    if (dice < 0.6) {
      // Write; odd offsets take the buffered/DMA path, aligned ones P2P.
      uint64_t offset = prng.NextBelow(KiB(48));
      uint64_t len = prng.NextInRange(1, KiB(8));
      std::span<uint8_t> data = scratch.Span(0, len);
      for (auto& b : data) {
        b = static_cast<uint8_t>(prng.Next());
      }
      auto written = RunSim(machine.sim(),
                            stub.Write(file.ino, offset,
                                       MemRef::Of(scratch, 0, len)));
      ASSERT_TRUE(written.ok())
          << "step " << step << ": " << written.status().ToString();
      ASSERT_EQ(*written, len);
      if (file.content.size() < offset + len) {
        file.content.resize(offset + len, 0);
      }
      std::copy(data.begin(), data.end(), file.content.begin() + offset);
      // Cross-check right after the recovered write: the model bytes must
      // be on stable storage even if retries or degradation happened.
      DeviceBuffer readback(machine.phi_device(0), len);
      auto n = RunSim(machine.sim(),
                      stub.Read(file.ino, offset, MemRef::Of(readback)));
      ASSERT_TRUE(n.ok()) << "step " << step;
      ASSERT_EQ(*n, len);
      ASSERT_EQ(std::memcmp(readback.data(), file.content.data() + offset,
                            len),
                0)
          << "silent corruption after recovery, step " << step;
    } else if (dice < 0.85) {
      // Read an arbitrary window against the model (EOF clamp included).
      uint64_t offset = prng.NextBelow(KiB(56));
      uint64_t len = prng.NextInRange(1, KiB(8));
      DeviceBuffer out(machine.phi_device(0), len);
      auto n = RunSim(machine.sim(),
                      stub.Read(file.ino, offset, MemRef::Of(out)));
      ASSERT_TRUE(n.ok()) << "step " << step;
      uint64_t expect_n =
          offset >= file.content.size()
              ? 0
              : std::min<uint64_t>(len, file.content.size() - offset);
      ASSERT_EQ(*n, expect_n) << "step " << step;
      if (expect_n > 0) {
        ASSERT_EQ(
            std::memcmp(out.data(), file.content.data() + offset, expect_n),
            0)
            << "step " << step;
      }
    } else {
      auto unlinked = RunSim(machine.sim(), stub.Unlink(it->first));
      // At-least-once: a replayed unlink may find the name already gone.
      ASSERT_TRUE(unlinked.ok() ||
                  unlinked.code() == ErrorCode::kNotFound)
          << "step " << step << ": " << unlinked.ToString();
      model.erase(it);
    }
  }

  // The injected faults must actually have fired for this test to mean
  // anything.
  EXPECT_GT(Faults().GetPoint("nvme.cmd.timeout")->fires(), 0u);
  EXPECT_GT(Faults().GetPoint("hw.dma.error")->fires(), 0u);

  // Full final sweep with faults still armed.
  for (const auto& [path, file] : model) {
    if (file.content.empty()) {
      continue;
    }
    DeviceBuffer out(machine.phi_device(0), file.content.size());
    auto n = RunSim(machine.sim(), stub.Read(file.ino, 0, MemRef::Of(out)));
    ASSERT_TRUE(n.ok()) << path;
    ASSERT_EQ(*n, file.content.size());
    ASSERT_EQ(std::memcmp(out.data(), file.content.data(), out.size()), 0)
        << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultedStackPropertyTest,
                         ::testing::Values(3u, 21u, 777u));

// --- Crash-replay determinism ----------------------------------------------
//
// Property: a crash cell is a pure function of (seed, cut ordinal). Running
// the same journaled workload with the same fault seed and the same
// every-Nth cut, then power-cycling and replaying, must produce a
// byte-identical device image and an identical fsck report. This is what
// makes every red cell of the crash matrix exactly reproducible.

struct CrashRunResult {
  std::vector<uint8_t> image;   // full post-replay flash
  std::string fsck;
  bool clean = false;
  bool fault_fired = false;
  uint64_t applied = 0;
  uint64_t discarded = 0;
};

CrashRunResult RunCrashCell(uint64_t seed, uint64_t nth) {
  Simulator sim;
  HwParams params = HwParams::Default();
  PcieFabric fabric(&sim, params);
  DeviceId host = fabric.HostDevice(0);
  DeviceId nvme_id = fabric.AddDevice(DeviceType::kNvme, 0, "nvme0");
  Processor host_cpu(&sim, host, 48, 1.0, "host-cpu");
  NvmeDevice nvme(&sim, &fabric, params, nvme_id, MiB(64), &host_cpu);
  NvmeBlockStore store(&nvme, &host_cpu);
  Faults().DisarmAll();
  store.set_volatile_write_cache(true);

  SolrosFs fs(&store, &sim);
  fs.set_journal_mode(JournalMode::kData);
  CHECK_OK(RunSim(sim, fs.Format(64, /*journal_blocks=*/64)));
  CHECK_OK(RunSim(sim, fs.Sync()));
  Faults().set_seed(seed);
  CHECK_OK(Faults().Arm("nvme.tornwrite", FaultSpec::EveryNth(nth)));

  Prng prng(seed);
  for (int step = 0; step < 50 && !nvme.crashed(); ++step) {
    std::string path = "/f" + std::to_string(prng.NextBelow(4));
    auto ino = RunSim(sim, fs.Lookup(path));
    if (!ino.ok()) {
      ino = RunSim(sim, fs.Create(path));
      if (!ino.ok()) {
        break;
      }
    }
    auto stat = RunSim(sim, fs.StatInode(*ino));
    if (!stat.ok()) {
      break;
    }
    uint64_t offset = prng.NextBelow(stat->size + 1);
    std::vector<uint8_t> data(prng.NextInRange(1, 2 * kFsBlockSize));
    for (auto& b : data) {
      b = static_cast<uint8_t>(prng.Next());
    }
    if (!RunSim(sim, fs.WriteAt(*ino, offset, data)).ok()) {
      break;
    }
  }
  CrashRunResult out;
  out.fault_fired = nvme.crashed();

  Faults().DisarmAll();
  nvme.PowerCycle();
  SolrosFs recovered(&store, &sim);
  CHECK_OK(RunSim(sim, recovered.Mount()));
  auto report = RunSim(sim, RunFsck(&store));
  CHECK_OK(report);

  out.image.assign(nvme.RawFlash().begin(), nvme.RawFlash().end());
  out.fsck = report->ToString();
  out.clean = report->clean();
  out.applied = recovered.last_replay().applied_txns;
  out.discarded = recovered.last_replay().discarded_txns;
  return out;
}

class CrashReplayDeterminismTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashReplayDeterminismTest, SameSeedAndCutGiveIdenticalImage) {
  const uint64_t nth = GetParam();
  CrashRunResult first = RunCrashCell(0xd15c0, nth);
  CrashRunResult second = RunCrashCell(0xd15c0, nth);

  ASSERT_TRUE(first.fault_fired) << "cut ordinal " << nth
                                 << " never landed; property is vacuous";
  EXPECT_TRUE(first.clean) << first.fsck;
  EXPECT_TRUE(first.image == second.image)
      << "post-replay images differ for identical (seed, cut)";
  EXPECT_EQ(first.fsck, second.fsck);
  EXPECT_EQ(first.applied, second.applied);
  EXPECT_EQ(first.discarded, second.discarded);
}

INSTANTIATE_TEST_SUITE_P(Cuts, CrashReplayDeterminismTest,
                         ::testing::Values(2u, 7u, 19u));

}  // namespace
}  // namespace solros
