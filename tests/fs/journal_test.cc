// Journal edge cases: torn commit records, wraparound, replay idempotency,
// empty-journal mounts. The replay tests hand-construct log contents from
// the documented on-disk format (journal.h), including an independently
// computed FNV-1a commit checksum, so the format itself — not just the
// implementation round-tripping with itself — is what is verified.
#include "src/fs/journal.h"

#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "src/fs/block_store.h"
#include "src/fs/fsck.h"
#include "src/fs/layout.h"
#include "src/fs/solros_fs.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace solros {
namespace {

constexpr uint64_t kLogStart = 8;
constexpr uint64_t kLogBlocks = 16;  // capacity 15

// Independent FNV-1a 64 implementation (not journal.cc's): mixes the fields
// in the documented order — sequence, count as u32, then each image's lba
// followed by its payload bytes.
uint64_t TestChecksum(uint64_t sequence,
                      const std::vector<JournalBlockImage>& images) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < len; ++i) {
      h = (h ^ p[i]) * 0x100000001b3ull;
    }
  };
  mix(&sequence, sizeof(sequence));
  uint32_t count32 = static_cast<uint32_t>(images.size());
  mix(&count32, sizeof(count32));
  for (const JournalBlockImage& image : images) {
    mix(&image.lba, sizeof(image.lba));
    mix(image.data.data(), image.data.size());
  }
  return h;
}

std::vector<uint8_t> Pattern(uint8_t tag) {
  std::vector<uint8_t> block(kFsBlockSize);
  for (size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<uint8_t>(tag + i * 7);
  }
  return block;
}

struct JournalRig {
  Simulator sim;
  MemBlockStore store{kFsBlockSize, 64};

  std::span<uint8_t> Block(uint64_t lba) {
    return store.raw().subspan(lba * kFsBlockSize, kFsBlockSize);
  }

  // Log offset -> device block, mirroring Journal::LogBlock for a journal
  // at [kLogStart, kLogStart + kLogBlocks).
  uint64_t LogLba(uint64_t off) const {
    return kLogStart + 1 + off % (kLogBlocks - 1);
  }

  // Plants a transaction directly in the log area: descriptor at log offset
  // `head`, payloads, and a commit record whose checksum is `checksum`.
  void PlantTxn(uint64_t head, uint64_t sequence,
                const std::vector<JournalBlockImage>& images,
                uint64_t checksum) {
    std::vector<uint8_t> block(kFsBlockSize, 0);
    JournalDescHeader desc{kJournalDescMagic,
                           static_cast<uint32_t>(images.size()), sequence};
    std::memcpy(block.data(), &desc, sizeof(desc));
    auto* lbas = reinterpret_cast<uint64_t*>(block.data() + sizeof(desc));
    for (size_t i = 0; i < images.size(); ++i) {
      lbas[i] = images[i].lba;
    }
    std::memcpy(Block(LogLba(head)).data(), block.data(), kFsBlockSize);
    for (size_t i = 0; i < images.size(); ++i) {
      std::memcpy(Block(LogLba(head + 1 + i)).data(), images[i].data.data(),
                  kFsBlockSize);
    }
    std::fill(block.begin(), block.end(), 0);
    JournalCommitBlock commit{kJournalCommitMagic,
                              static_cast<uint32_t>(images.size()), sequence,
                              checksum};
    std::memcpy(block.data(), &commit, sizeof(commit));
    std::memcpy(Block(LogLba(head + 1 + images.size())).data(), block.data(),
                kFsBlockSize);
  }
};

TEST(JournalTest, CommitCheckpointsImagesAndAdvances) {
  JournalRig rig;
  Journal journal(&rig.store, kLogStart, kLogBlocks);
  ASSERT_TRUE(RunSim(rig.sim, journal.Format()).ok());
  EXPECT_EQ(journal.head(), 0u);
  EXPECT_EQ(journal.sequence(), 1u);

  std::vector<JournalBlockImage> images;
  images.push_back({40, Pattern(0x11)});
  images.push_back({42, Pattern(0x22)});
  ASSERT_TRUE(RunSim(rig.sim, journal.Commit(images)).ok());

  // Checkpoint already applied the after-images home.
  EXPECT_EQ(std::memcmp(rig.Block(40).data(), images[0].data.data(),
                        kFsBlockSize),
            0);
  EXPECT_EQ(std::memcmp(rig.Block(42).data(), images[1].data.data(),
                        kFsBlockSize),
            0);
  // head advanced by desc + 2 payloads + commit; sequence by one txn.
  EXPECT_EQ(journal.head(), 4u);
  EXPECT_EQ(journal.sequence(), 2u);
  EXPECT_EQ(journal.commits(), 1u);
  EXPECT_EQ(journal.txns(), 1u);
  EXPECT_EQ(journal.blocks_logged(), 2u);

  // Nothing left to replay: a fresh instance loads and applies zero.
  Journal fresh(&rig.store, kLogStart, kLogBlocks);
  ASSERT_TRUE(RunSim(rig.sim, fresh.Load()).ok());
  JournalReplayStats stats;
  ASSERT_TRUE(RunSim(rig.sim, fresh.Replay(&stats)).ok());
  EXPECT_EQ(stats.applied_txns, 0u);
  EXPECT_EQ(stats.discarded_txns, 0u);
}

TEST(JournalTest, ReplayAppliesCommittedButUncheckpointedTxn) {
  JournalRig rig;
  {
    Journal journal(&rig.store, kLogStart, kLogBlocks);
    ASSERT_TRUE(RunSim(rig.sim, journal.Format()).ok());
  }
  // A committed transaction that never reached its home location — the
  // crash window replay exists for. Built by hand from the on-disk format.
  std::vector<JournalBlockImage> images;
  images.push_back({50, Pattern(0x5a)});
  images.push_back({33, Pattern(0xa5)});
  rig.PlantTxn(/*head=*/0, /*sequence=*/1, images,
               TestChecksum(1, images));

  Journal journal(&rig.store, kLogStart, kLogBlocks);
  ASSERT_TRUE(RunSim(rig.sim, journal.Load()).ok());
  JournalReplayStats stats;
  ASSERT_TRUE(RunSim(rig.sim, journal.Replay(&stats)).ok());
  EXPECT_EQ(stats.applied_txns, 1u);
  EXPECT_EQ(stats.discarded_txns, 0u);
  EXPECT_EQ(stats.replayed_blocks, 2u);
  EXPECT_EQ(std::memcmp(rig.Block(50).data(), images[0].data.data(),
                        kFsBlockSize),
            0);
  EXPECT_EQ(std::memcmp(rig.Block(33).data(), images[1].data.data(),
                        kFsBlockSize),
            0);
  EXPECT_EQ(journal.head(), 4u);
  EXPECT_EQ(journal.sequence(), 2u);

  // The advanced position was persisted: a later mount replays nothing.
  Journal later(&rig.store, kLogStart, kLogBlocks);
  ASSERT_TRUE(RunSim(rig.sim, later.Load()).ok());
  EXPECT_EQ(later.head(), 4u);
  ASSERT_TRUE(RunSim(rig.sim, later.Replay(&stats)).ok());
  EXPECT_EQ(stats.applied_txns, 0u);
}

TEST(JournalTest, TornCommitRecordIsDiscarded) {
  JournalRig rig;
  {
    Journal journal(&rig.store, kLogStart, kLogBlocks);
    ASSERT_TRUE(RunSim(rig.sim, journal.Format()).ok());
  }
  std::vector<JournalBlockImage> images;
  images.push_back({50, Pattern(0x77)});
  // Commit record present but its checksum is wrong — the payload (or the
  // record itself) never fully hit stable media before the cut.
  rig.PlantTxn(0, 1, images, TestChecksum(1, images) ^ 0xdeadbeef);

  std::vector<uint8_t> before(rig.Block(50).begin(), rig.Block(50).end());
  Journal journal(&rig.store, kLogStart, kLogBlocks);
  ASSERT_TRUE(RunSim(rig.sim, journal.Load()).ok());
  JournalReplayStats stats;
  ASSERT_TRUE(RunSim(rig.sim, journal.Replay(&stats)).ok());
  EXPECT_EQ(stats.applied_txns, 0u);
  EXPECT_EQ(stats.discarded_txns, 1u);
  // The torn transaction's after-image must NOT have been applied.
  EXPECT_EQ(std::memcmp(rig.Block(50).data(), before.data(), kFsBlockSize),
            0);
  // The journal stays usable: the next commit overwrites the torn txn.
  std::vector<JournalBlockImage> next;
  next.push_back({51, Pattern(0x88)});
  ASSERT_TRUE(RunSim(rig.sim, journal.Commit(next)).ok());
  EXPECT_EQ(std::memcmp(rig.Block(51).data(), next[0].data.data(),
                        kFsBlockSize),
            0);
}

TEST(JournalTest, ReplayIsIdempotent) {
  JournalRig rig;
  {
    Journal journal(&rig.store, kLogStart, kLogBlocks);
    ASSERT_TRUE(RunSim(rig.sim, journal.Format()).ok());
  }
  std::vector<JournalBlockImage> images;
  images.push_back({45, Pattern(0x3c)});
  rig.PlantTxn(0, 1, images, TestChecksum(1, images));

  Journal journal(&rig.store, kLogStart, kLogBlocks);
  ASSERT_TRUE(RunSim(rig.sim, journal.Load()).ok());
  JournalReplayStats stats;
  ASSERT_TRUE(RunSim(rig.sim, journal.Replay(&stats)).ok());
  ASSERT_EQ(stats.applied_txns, 1u);
  std::vector<uint8_t> after_first(rig.store.raw().begin(),
                                   rig.store.raw().end());

  // Replaying again — same instance or a freshly loaded one — must be a
  // no-op with a byte-identical device.
  ASSERT_TRUE(RunSim(rig.sim, journal.Replay(&stats)).ok());
  EXPECT_EQ(stats.applied_txns, 0u);
  Journal again(&rig.store, kLogStart, kLogBlocks);
  ASSERT_TRUE(RunSim(rig.sim, again.Load()).ok());
  ASSERT_TRUE(RunSim(rig.sim, again.Replay(&stats)).ok());
  EXPECT_EQ(stats.applied_txns, 0u);
  EXPECT_TRUE(std::equal(rig.store.raw().begin(), rig.store.raw().end(),
                         after_first.begin()));
}

TEST(JournalTest, WraparoundUnderSustainedCommits) {
  JournalRig rig;
  // Smallest legal journal: 8 blocks, capacity 7, so a 3-block transaction
  // (desc + payload + commit = 5 log blocks) wraps almost immediately.
  Journal journal(&rig.store, kLogStart, /*blocks=*/kMinJournalBlocks);
  ASSERT_TRUE(RunSim(rig.sim, journal.Format()).ok());

  uint8_t tag = 1;
  for (int round = 0; round < 40; ++round) {
    std::vector<JournalBlockImage> images;
    size_t count = 1 + round % 3;
    for (size_t i = 0; i < count; ++i) {
      images.push_back({32 + (round * 3 + i) % 8, Pattern(tag)});
      ++tag;
    }
    ASSERT_TRUE(RunSim(rig.sim, journal.Commit(images)).ok());
    // Every after-image of this transaction is home (checkpoint is
    // synchronous), across every wrap of the circular log.
    for (const JournalBlockImage& image : images) {
      ASSERT_EQ(std::memcmp(rig.Block(image.lba).data(), image.data.data(),
                            kFsBlockSize),
                0)
          << "round " << round << " lba " << image.lba;
    }
  }
  EXPECT_EQ(journal.txns(), 40u);
  EXPECT_GT(journal.head(), journal.capacity());  // wrapped (head monotonic)

  Journal fresh(&rig.store, kLogStart, kMinJournalBlocks);
  ASSERT_TRUE(RunSim(rig.sim, fresh.Load()).ok());
  JournalReplayStats stats;
  ASSERT_TRUE(RunSim(rig.sim, fresh.Replay(&stats)).ok());
  EXPECT_EQ(stats.applied_txns, 0u);
  EXPECT_EQ(stats.discarded_txns, 0u);
}

TEST(JournalTest, OversizedCommitSplitsIntoMultipleTxns) {
  JournalRig rig;
  // capacity 7 => max 5 payload blocks per txn; 12 images need 3 txns.
  Journal journal(&rig.store, kLogStart, kMinJournalBlocks);
  ASSERT_TRUE(RunSim(rig.sim, journal.Format()).ok());
  std::vector<JournalBlockImage> images;
  for (int i = 0; i < 12; ++i) {
    images.push_back({32u + i, Pattern(static_cast<uint8_t>(0x40 + i))});
  }
  ASSERT_TRUE(RunSim(rig.sim, journal.Commit(images)).ok());
  EXPECT_EQ(journal.commits(), 1u);
  EXPECT_EQ(journal.txns(), 3u);
  EXPECT_EQ(journal.blocks_logged(), 12u);
  for (const JournalBlockImage& image : images) {
    EXPECT_EQ(std::memcmp(rig.Block(image.lba).data(), image.data.data(),
                          kFsBlockSize),
              0);
  }
}

TEST(JournalTest, EmptyJournalMountReplaysNothing) {
  Simulator sim;
  MemBlockStore store(kFsBlockSize, 8192);
  SolrosFs fs(&store, &sim);
  fs.set_journal_mode(JournalMode::kMetadata);
  ASSERT_TRUE(RunSim(sim, fs.Format(256)).ok());
  ASSERT_TRUE(RunSim(sim, fs.Unmount()).ok());

  SolrosFs remount(&store, &sim);
  ASSERT_TRUE(RunSim(sim, remount.Mount()).ok());
  ASSERT_NE(remount.journal(), nullptr);
  EXPECT_EQ(remount.last_replay().applied_txns, 0u);
  EXPECT_EQ(remount.last_replay().discarded_txns, 0u);
  auto report = RunSim(sim, RunFsck(&store));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << report->ToString();
}

}  // namespace
}  // namespace solros
