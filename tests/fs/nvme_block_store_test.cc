// SolrosFS running over the simulated NVMe device: end-to-end integrity
// plus device-level accounting (doorbells, interrupts, P2P targets).
#include "src/fs/nvme_block_store.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/base/prng.h"
#include "src/base/units.h"
#include "src/fs/solros_fs.h"
#include "src/hw/fabric.h"
#include "src/hw/memory.h"
#include "src/hw/params.h"
#include "src/hw/processor.h"
#include "src/nvme/nvme_device.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace solros {
namespace {

struct Rig {
  Simulator sim;
  HwParams params = HwParams::Default();
  PcieFabric fabric{&sim, params};
  DeviceId host = fabric.HostDevice(0);
  DeviceId phi = fabric.AddDevice(DeviceType::kPhi, 0, "mic0");
  DeviceId nvme_id = fabric.AddDevice(DeviceType::kNvme, 0, "nvme0");
  Processor host_cpu{&sim, host, 48, 1.0, "host-cpu"};
  NvmeDevice nvme{&sim, &fabric, params, nvme_id, MiB(256), &host_cpu};
  NvmeBlockStore store{&nvme, &host_cpu};
};

TEST(NvmeBlockStoreTest, SpanReadWriteRoundtrip) {
  Rig rig;
  std::vector<uint8_t> data(4096 * 3);
  Prng prng(2);
  for (auto& b : data) {
    b = static_cast<uint8_t>(prng.Next());
  }
  CHECK_OK(RunSim(rig.sim, rig.store.Write(10, 3, data)));
  std::vector<uint8_t> out(data.size());
  CHECK_OK(RunSim(rig.sim, rig.store.Read(10, 3, out)));
  EXPECT_EQ(out, data);
  EXPECT_GT(rig.sim.now(), 0u);  // time actually passed
}

TEST(NvmeBlockStoreTest, ReadExtentsIntoPhiMemoryIsP2p) {
  Rig rig;
  // Seed two disjoint disk extents.
  Prng prng(3);
  auto flash = rig.nvme.RawFlash();
  for (size_t i = 0; i < KiB(64); ++i) {
    flash[i] = static_cast<uint8_t>(prng.Next());
    flash[MiB(1) + i] = static_cast<uint8_t>(prng.Next());
  }
  std::vector<FsExtent> extents = {
      {0, 16, 0},                         // blocks 0..15
      {MiB(1) / 4096, 16, 0},             // blocks at 1 MiB
  };
  DeviceBuffer target(rig.phi, KiB(128));
  CHECK_OK(RunSim(rig.sim, rig.store.ReadExtents(extents,
                                                 MemRef::Of(target),
                                                 /*coalesce=*/true)));
  EXPECT_EQ(std::memcmp(target.data(), flash.data(), KiB(64)), 0);
  EXPECT_EQ(std::memcmp(target.data() + KiB(64), flash.data() + MiB(1),
                        KiB(64)),
            0);
  // The whole vector cost one doorbell and one interrupt (§5).
  EXPECT_EQ(rig.nvme.doorbells_rung(), 1u);
  EXPECT_EQ(rig.nvme.interrupts_raised(), 1u);
}

TEST(NvmeBlockStoreTest, ExtentTargetLengthMismatchRejected) {
  Rig rig;
  DeviceBuffer target(rig.phi, KiB(4));
  std::vector<FsExtent> extents = {{0, 2, 0}};  // 8 KiB
  EXPECT_EQ(RunSim(rig.sim, rig.store.ReadExtents(extents,
                                                  MemRef::Of(target), true))
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST(NvmeBlockStoreTest, WriteExtentsFromPhiMemory) {
  Rig rig;
  DeviceBuffer source(rig.phi, KiB(32));
  Prng prng(4);
  for (auto& b : source.Span(0, source.size())) {
    b = static_cast<uint8_t>(prng.Next());
  }
  std::vector<FsExtent> extents = {{100, 8, 0}};
  CHECK_OK(RunSim(rig.sim, rig.store.WriteExtents(extents,
                                                  MemRef::Of(source), true)));
  EXPECT_EQ(std::memcmp(rig.nvme.RawFlash().data() + 100 * 4096,
                        source.data(), KiB(32)),
            0);
}

TEST(NvmeBlockStoreTest, SolrosFsOverNvmeEndToEnd) {
  Rig rig;
  SolrosFs fs(&rig.store, &rig.sim);
  CHECK_OK(RunSim(rig.sim, fs.Format(256)));
  auto ino = RunSim(rig.sim, fs.Create("/data.bin"));
  ASSERT_TRUE(ino.ok());
  std::vector<uint8_t> data(MiB(4));
  Prng prng(5);
  for (auto& b : data) {
    b = static_cast<uint8_t>(prng.Next());
  }
  auto written = RunSim(rig.sim, fs.WriteAt(*ino, 0, data));
  ASSERT_TRUE(written.ok());
  EXPECT_EQ(*written, data.size());

  std::vector<uint8_t> out(data.size());
  auto read = RunSim(rig.sim, fs.ReadAt(*ino, 0, out));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(out, data);

  // Fiemap extents feed the P2P path: pull the same file straight into Phi
  // memory and verify against the FS-read content.
  auto extents = RunSim(rig.sim, fs.Fiemap(*ino, 0, data.size()));
  ASSERT_TRUE(extents.ok());
  uint64_t total_blocks = 0;
  for (const FsExtent& e : *extents) {
    total_blocks += e.len;
  }
  DeviceBuffer phi_buf(rig.phi, total_blocks * 4096);
  CHECK_OK(RunSim(rig.sim, rig.store.ReadExtents(*extents,
                                                 MemRef::Of(phi_buf), true)));
  EXPECT_EQ(std::memcmp(phi_buf.data(), data.data(), data.size()), 0);

  // Remount from the same flash and re-verify (persistence through NVMe).
  CHECK_OK(RunSim(rig.sim, fs.Unmount()));
  SolrosFs fs2(&rig.store, &rig.sim);
  CHECK_OK(RunSim(rig.sim, fs2.Mount()));
  auto again = RunSim(rig.sim, fs2.Lookup("/data.bin"));
  ASSERT_TRUE(again.ok());
  std::vector<uint8_t> out2(data.size());
  auto n2 = RunSim(rig.sim, fs2.ReadAt(*again, 0, out2));
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(out2, data);
}

}  // namespace
}  // namespace solros
