// Cross-shard coherence of the sharded control plane.
//
// The control plane partitions FS traffic across per-core proxy shards by
// inode range with block-group striping; the only shared structures are
// the versioned extent map and the journal's barrier shard. These tests
// drive real workloads through the data-plane stubs (which route each RPC
// to its shard) and assert the sharing protocol holds: writes on one shard
// are visible to reads on another, extent-map invalidation defeats stale
// memos, the coherence survives rpc.*/nvme.* fault injection, and a power
// cut mid-workload at shards=2 still recovers to an fsck-clean image.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/base/fault.h"
#include "src/base/prng.h"
#include "src/base/sharding.h"
#include "src/base/units.h"
#include "src/core/machine.h"
#include "src/fs/fsck.h"
#include "src/sim/sync.h"

namespace solros {
namespace {

constexpr uint64_t kChunk = KiB(4);

MachineConfig ShardedConfig(int shards, int num_phis = 2) {
  MachineConfig config;
  config.num_phis = num_phis;
  config.nvme_capacity = MiB(256);
  config.proxy_shards = shards;
  config.fs_options.cache_blocks = 4096;  // 16 MiB split across shards
  config.enable_network = false;
  return config;
}

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Prng prng(seed);
  std::vector<uint8_t> out(n);
  for (auto& b : out) {
    b = static_cast<uint8_t>(prng.Next());
  }
  return out;
}

// Writes `data` through `stub` in 4KB chunks so consecutive block groups
// route to different shards (one big write would be routed once, by its
// start offset).
void WriteChunked(Machine& machine, FsStub& stub, DeviceId device,
                  uint64_t ino, const std::vector<uint8_t>& data) {
  DeviceBuffer buf(device, kChunk);
  for (uint64_t off = 0; off < data.size(); off += kChunk) {
    std::memcpy(buf.data(), data.data() + off, kChunk);
    auto written =
        RunSim(machine.sim(), stub.Write(ino, off, MemRef::Of(buf)));
    ASSERT_TRUE(written.ok()) << written.status().ToString();
    ASSERT_EQ(*written, kChunk);
  }
}

void ExpectReadsBack(Machine& machine, FsStub& stub, DeviceId device,
                     uint64_t ino, const std::vector<uint8_t>& data) {
  DeviceBuffer buf(device, kChunk);
  for (uint64_t off = 0; off < data.size(); off += kChunk) {
    auto n = RunSim(machine.sim(), stub.Read(ino, off, MemRef::Of(buf)));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_EQ(*n, kChunk);
    ASSERT_EQ(std::memcmp(buf.data(), data.data() + off, kChunk), 0)
        << "mismatch at offset " << off;
  }
}

TEST(ShardPartitionTest, DegeneratesToShardZeroUnsharded) {
  EXPECT_EQ(ShardOfInode(123, 1), 0);
  EXPECT_EQ(ShardOfFileRange(7, MiB(3), kChunk, 1), 0);
  EXPECT_EQ(ShardOfPath("/any", 1), 0);
  EXPECT_EQ(ShardLabel("fs.proxy", 0, 1), "fs.proxy");
  EXPECT_EQ(ShardLabel("fs.proxy", 2, 4), "fs.proxy[2]");
}

TEST(ShardPartitionTest, FileRangeStripingCoversAllShards) {
  // Sequential 256KB block groups of one file must walk every shard.
  const int shards = 4;
  std::vector<bool> hit(shards, false);
  for (uint64_t stripe = 0; stripe < 8; ++stripe) {
    uint64_t offset = stripe * kShardStripeBlocks * kChunk;
    hit[static_cast<size_t>(ShardOfFileRange(42, offset, kChunk, shards))] =
        true;
  }
  for (int k = 0; k < shards; ++k) {
    EXPECT_TRUE(hit[static_cast<size_t>(k)]) << "shard " << k << " unused";
  }
  // Offsets within one block group stay on one shard (stream locality).
  int first = ShardOfFileRange(42, 0, kChunk, shards);
  for (uint64_t b = 1; b < kShardStripeBlocks; ++b) {
    EXPECT_EQ(ShardOfFileRange(42, b * kChunk, kChunk, shards), first);
  }
}

TEST(ShardCoherenceTest, CrossShardWriteReadUnlink) {
  Machine machine(ShardedConfig(2));
  CHECK_OK(RunSim(machine.sim(), machine.FormatFs()));
  FsStub& writer = machine.fs_stub(0);
  FsStub& reader = machine.fs_stub(1);
  writer.set_buffered(true);
  reader.set_buffered(true);

  auto ino = RunSim(machine.sim(), writer.Create("/shared.bin"));
  ASSERT_TRUE(ino.ok());
  // 1 MiB = four 256KB block groups: two per shard at shards=2.
  auto data = RandomBytes(MiB(1), 0xabcd);
  WriteChunked(machine, writer, machine.phi_device(0), *ino, data);
  ExpectReadsBack(machine, reader, machine.phi_device(1), *ino, data);

  // The chunked traffic must actually have exercised both shards.
  EXPECT_GT(machine.fs_proxy_shard(0).stats().requests, 0u);
  EXPECT_GT(machine.fs_proxy_shard(1).stats().requests, 0u);

  // Unlink from the other data plane; the name must disappear everywhere.
  ASSERT_TRUE(RunSim(machine.sim(), reader.Unlink("/shared.bin")).ok());
  auto stat = RunSim(machine.sim(), writer.Stat("/shared.bin"));
  EXPECT_FALSE(stat.ok());

  // Re-create and reuse the name across shards.
  auto ino2 = RunSim(machine.sim(), writer.Create("/shared.bin"));
  ASSERT_TRUE(ino2.ok());
  auto data2 = RandomBytes(KiB(512), 0xbeef);
  WriteChunked(machine, writer, machine.phi_device(0), *ino2, data2);
  ExpectReadsBack(machine, reader, machine.phi_device(1), *ino2, data2);
}

TEST(ShardCoherenceTest, ExtentMapInvalidationDefeatsStaleMemos) {
  Machine machine(ShardedConfig(2));
  CHECK_OK(RunSim(machine.sim(), machine.FormatFs()));
  FsStub& writer = machine.fs_stub(0);
  FsStub& reader = machine.fs_stub(1);
  writer.set_buffered(true);
  reader.set_buffered(true);

  auto ino = RunSim(machine.sim(), writer.Create("/remap.bin"));
  ASSERT_TRUE(ino.ok());
  auto before = RandomBytes(KiB(512), 1);
  WriteChunked(machine, writer, machine.phi_device(0), *ino, before);
  ExpectReadsBack(machine, reader, machine.phi_device(1), *ino, before);
  // Reads re-walk the same ranges: the per-shard memos are now warm.
  ExpectReadsBack(machine, reader, machine.phi_device(1), *ino, before);
  uint64_t hits = machine.fs_proxy_shard(0).extent_view()->hits() +
                  machine.fs_proxy_shard(1).extent_view()->hits();
  EXPECT_GT(hits, 0u) << "repeated reads never hit the extent memo";

  // Truncate frees every extent and a rewrite re-allocates them: the
  // version bump must invalidate both shards' memos, or a stale mapping
  // would read freed (or re-owned) blocks.
  uint64_t invalidations0 = machine.extent_map().invalidations();
  ASSERT_TRUE(RunSim(machine.sim(), writer.Truncate(*ino, 0)).ok());
  auto after = RandomBytes(KiB(512), 2);
  WriteChunked(machine, writer, machine.phi_device(0), *ino, after);
  EXPECT_GT(machine.extent_map().invalidations(), invalidations0);
  ExpectReadsBack(machine, reader, machine.phi_device(1), *ino, after);
}

TEST(ShardCoherenceTest, ReadStreamKeysAreShardQualified) {
  Machine machine(ShardedConfig(2, /*num_phis=*/1));
  CHECK_OK(RunSim(machine.sim(), machine.FormatFs()));
  FsStub& stub = machine.fs_stub(0);
  stub.set_buffered(true);

  auto ino = RunSim(machine.sim(), stub.Create("/stream.bin"));
  ASSERT_TRUE(ino.ok());
  auto data = RandomBytes(KiB(512), 3);
  WriteChunked(machine, stub, machine.phi_device(0), *ino, data);

  // One sequential scan of two block groups: the same (client, ino) pair
  // forms an independent stream on EACH shard it crosses. The shard id in
  // the stream key keeps those entries distinct by construction, so a
  // re-partitioning can never alias two shards' windows onto one entry.
  ExpectReadsBack(machine, stub, machine.phi_device(0), *ino, data);
  EXPECT_EQ(machine.fs_proxy_shard(0).read_streams(), 1u);
  EXPECT_EQ(machine.fs_proxy_shard(1).read_streams(), 1u);
}

class ShardFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { Faults().DisarmAll(); }
  void TearDown() override { Faults().DisarmAll(); }
};

TEST_F(ShardFaultTest, CoherenceSurvivesRpcAndNvmeFaults) {
  Machine machine(ShardedConfig(2));
  CHECK_OK(RunSim(machine.sim(), machine.FormatFs()));
  FsStub& writer = machine.fs_stub(0);
  FsStub& reader = machine.fs_stub(1);
  writer.set_buffered(true);
  reader.set_buffered(true);

  auto ino = RunSim(machine.sim(), writer.Create("/faulted.bin"));
  ASSERT_TRUE(ino.ok());

  Faults().set_seed(42);
  CHECK_OK(Faults().Arm("rpc.drop.response", FaultSpec::Probability(0.01)));
  CHECK_OK(Faults().Arm("nvme.cmd.timeout", FaultSpec::Probability(0.01)));

  // Write, remap (truncate + rewrite), and cross-shard read back — the
  // full extent-map invalidation protocol — with the recovery layers
  // absorbing dropped RPC responses and NVMe timeouts underneath.
  auto first = RandomBytes(KiB(256), 4);
  WriteChunked(machine, writer, machine.phi_device(0), *ino, first);
  ExpectReadsBack(machine, reader, machine.phi_device(1), *ino, first);
  ASSERT_TRUE(RunSim(machine.sim(), writer.Truncate(*ino, 0)).ok());
  auto second = RandomBytes(KiB(256), 5);
  WriteChunked(machine, writer, machine.phi_device(0), *ino, second);
  ExpectReadsBack(machine, reader, machine.phi_device(1), *ino, second);

  Faults().DisarmAll();
  // Once the noise stops, the final image must still verify.
  ExpectReadsBack(machine, reader, machine.phi_device(1), *ino, second);
}

// Machine-level crash matrix at shards=2: a power cut lands mid-workload
// while two shards write and fsync through the journal's barrier shard;
// after power-cycle a fresh mount over the surviving bytes must replay to
// an fsck-clean image. (The single-proxy matrix lives in
// crash_consistency_test.cc; this covers the sharded flush barrier.)
TEST_F(ShardFaultTest, PowerCutAtTwoShardsRecoversFsckClean) {
  for (uint64_t nth : {5u, 17u, 53u}) {
    MachineConfig config = ShardedConfig(2, /*num_phis=*/1);
    config.journal_mode = JournalMode::kMetadata;
    Machine machine(std::move(config));
    CHECK_OK(RunSim(machine.sim(), machine.FormatFs()));
    // Formatting must be durable before the cut can land.
    ASSERT_TRUE(RunSim(machine.sim(), machine.fs().Sync()).ok());

    FsStub& stub = machine.fs_stub(0);
    stub.set_buffered(true);
    Faults().set_seed(0x5eed + nth);
    ASSERT_TRUE(
        Faults().Arm("nvme.powercut", FaultSpec::EveryNth(nth)).ok());

    Prng prng(nth);
    bool cut = false;
    for (int file = 0; file < 6 && !cut; ++file) {
      std::string path = "/f" + std::to_string(file);
      auto ino = RunSim(machine.sim(), stub.Create(path));
      if (!ino.ok()) {
        ASSERT_TRUE(machine.nvme().crashed()) << ino.status().ToString();
        cut = true;
        break;
      }
      auto data = RandomBytes(KiB(64), nth * 10 + file);
      DeviceBuffer buf(machine.phi_device(0), kChunk);
      for (uint64_t off = 0; off < data.size() && !cut; off += kChunk) {
        std::memcpy(buf.data(), data.data() + off, kChunk);
        auto written =
            RunSim(machine.sim(), stub.Write(*ino, off, MemRef::Of(buf)));
        if (!written.ok()) {
          ASSERT_TRUE(machine.nvme().crashed())
              << written.status().ToString();
          cut = true;
        }
      }
      if (!cut) {
        Status synced = RunSim(machine.sim(), stub.Fsync(*ino));
        if (!synced.ok()) {
          ASSERT_TRUE(machine.nvme().crashed()) << synced.ToString();
          cut = true;
        }
      }
    }
    EXPECT_TRUE(cut) << "N=" << nth << " never fired; widen the workload";

    // Recovery: disarm, power-cycle, mount fresh over the survivors.
    Faults().DisarmAll();
    machine.nvme().PowerCycle();
    SolrosFs recovered(&machine.store(), &machine.sim());
    ASSERT_TRUE(RunSim(machine.sim(), recovered.Mount()).ok());
    auto report = RunSim(machine.sim(), RunFsck(&machine.store()));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->clean()) << "N=" << nth << "\n" << report->ToString();
  }
}

}  // namespace
}  // namespace solros
