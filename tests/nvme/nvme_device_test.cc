#include "src/nvme/nvme_device.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "src/base/prng.h"
#include "src/base/units.h"
#include "src/hw/fabric.h"
#include "src/hw/memory.h"
#include "src/hw/processor.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace solros {
namespace {

struct Rig {
  Simulator sim;
  HwParams params = HwParams::Default();
  PcieFabric fabric{&sim, params};
  DeviceId host = fabric.HostDevice(0);
  DeviceId phi = fabric.AddDevice(DeviceType::kPhi, 0, "mic0");
  DeviceId phi_far = fabric.AddDevice(DeviceType::kPhi, 1, "mic1");
  DeviceId nvme_id = fabric.AddDevice(DeviceType::kNvme, 0, "nvme0");
  Processor host_cpu{&sim, host, 48, 1.0, "host-cpu"};
  NvmeDevice nvme{&sim, &fabric, params, nvme_id, MiB(64), &host_cpu};
};

NvmeCommand MakeRead(uint64_t lba, uint32_t nblocks, MemRef target) {
  return NvmeCommand{NvmeCommand::Op::kRead, lba, nblocks, target};
}
NvmeCommand MakeWrite(uint64_t lba, uint32_t nblocks, MemRef target) {
  return NvmeCommand{NvmeCommand::Op::kWrite, lba, nblocks, target};
}

TEST(NvmeDeviceTest, WriteThenReadRoundtrip) {
  Rig rig;
  uint32_t bs = rig.nvme.block_size();
  DeviceBuffer src(rig.host, bs * 4);
  Prng prng(1);
  for (auto& b : src.Span(0, src.size())) {
    b = static_cast<uint8_t>(prng.Next());
  }
  Status ws = RunSim(rig.sim, rig.nvme.SubmitOne(
                                  MakeWrite(10, 4, MemRef::Of(src)),
                                  &rig.host_cpu));
  ASSERT_TRUE(ws.ok()) << ws.ToString();

  DeviceBuffer dst(rig.host, bs * 4);
  Status rs = RunSim(rig.sim, rig.nvme.SubmitOne(
                                  MakeRead(10, 4, MemRef::Of(dst)),
                                  &rig.host_cpu));
  ASSERT_TRUE(rs.ok()) << rs.ToString();
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), bs * 4), 0);
}

TEST(NvmeDeviceTest, ValidationRejectsBadCommands) {
  Rig rig;
  DeviceBuffer buf(rig.host, rig.nvme.block_size());
  // Zero length.
  EXPECT_EQ(RunSim(rig.sim, rig.nvme.SubmitOne(
                                MakeRead(0, 0, MemRef::Of(buf)),
                                &rig.host_cpu))
                .code(),
            ErrorCode::kInvalidArgument);
  // Beyond capacity.
  EXPECT_EQ(RunSim(rig.sim, rig.nvme.SubmitOne(
                                MakeRead(rig.nvme.block_count(), 1,
                                         MemRef::Of(buf)),
                                &rig.host_cpu))
                .code(),
            ErrorCode::kOutOfRange);
  // Target length mismatch.
  EXPECT_EQ(RunSim(rig.sim, rig.nvme.SubmitOne(
                                MakeRead(0, 2, MemRef::Of(buf)),
                                &rig.host_cpu))
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST(NvmeDeviceTest, LargeReadHitsFlashBandwidthCeiling) {
  Rig rig;
  uint32_t bs = rig.nvme.block_size();
  uint32_t nblocks = static_cast<uint32_t>(MiB(32) / bs);
  DeviceBuffer dst(rig.host, MiB(32));
  RunSim(rig.sim, rig.nvme.SubmitOne(MakeRead(0, nblocks, MemRef::Of(dst)),
                                     &rig.host_cpu));
  double gbps = RateBps(MiB(32), rig.sim.now());
  // Should be close to (and below) the 2.4 GB/s flash read ceiling.
  EXPECT_GT(gbps, GBps(2.0));
  EXPECT_LE(gbps, GBps(2.4));
}

TEST(NvmeDeviceTest, WritesAreSlowerThanReads) {
  Rig rig;
  uint32_t bs = rig.nvme.block_size();
  uint32_t nblocks = static_cast<uint32_t>(MiB(16) / bs);
  DeviceBuffer buf(rig.host, MiB(16));

  Rig read_rig;
  DeviceBuffer rbuf(read_rig.host, MiB(16));
  RunSim(read_rig.sim,
         read_rig.nvme.SubmitOne(MakeRead(0, nblocks, MemRef::Of(rbuf)),
                                 &read_rig.host_cpu));
  Nanos read_time = read_rig.sim.now();

  RunSim(rig.sim, rig.nvme.SubmitOne(MakeWrite(0, nblocks, MemRef::Of(buf)),
                                     &rig.host_cpu));
  Nanos write_time = rig.sim.now();
  // 1.2 GB/s vs 2.4 GB/s => ~2x.
  EXPECT_NEAR(static_cast<double>(write_time) / read_time, 2.0, 0.35);
}

TEST(NvmeDeviceTest, P2pReadLandsInPhiMemory) {
  Rig rig;
  uint32_t bs = rig.nvme.block_size();
  // Seed flash directly.
  auto flash = rig.nvme.RawFlash();
  for (uint32_t i = 0; i < bs; ++i) {
    flash[i] = static_cast<uint8_t>(i * 7);
  }
  DeviceBuffer phi_buf(rig.phi, bs);
  Status status = RunSim(rig.sim, rig.nvme.SubmitOne(
                                      MakeRead(0, 1, MemRef::Of(phi_buf)),
                                      &rig.host_cpu));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(std::memcmp(phi_buf.data(), flash.data(), bs), 0);
}

TEST(NvmeDeviceTest, CrossNumaP2pIsDramaticallySlower) {
  // The Fig. 1(a) effect at the device level.
  Rig near_rig;
  uint32_t nblocks = static_cast<uint32_t>(MiB(8) / 4096);
  DeviceBuffer near_buf(near_rig.phi, MiB(8));
  RunSim(near_rig.sim,
         near_rig.nvme.SubmitOne(MakeRead(0, nblocks, MemRef::Of(near_buf)),
                                 &near_rig.host_cpu));
  Nanos near_time = near_rig.sim.now();

  Rig far_rig;
  DeviceBuffer far_buf(far_rig.phi_far, MiB(8));
  RunSim(far_rig.sim,
         far_rig.nvme.SubmitOne(MakeRead(0, nblocks, MemRef::Of(far_buf)),
                                &far_rig.host_cpu));
  Nanos far_time = far_rig.sim.now();

  // 2.4 GB/s vs 300 MB/s => ~8x.
  EXPECT_GT(static_cast<double>(far_time) / near_time, 5.0);
  double far_bw = RateBps(MiB(8), far_time);
  EXPECT_LT(far_bw, MBps(310));
}

TEST(NvmeDeviceTest, CoalescingReducesDoorbellsAndInterrupts) {
  Rig rig;
  uint32_t bs = rig.nvme.block_size();
  DeviceBuffer buf(rig.host, bs * 8);
  std::vector<NvmeCommand> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(MakeRead(i, 1, MemRef::Of(buf, i * bs, bs)));
  }
  RunSim(rig.sim, rig.nvme.Submit(batch, /*coalesce=*/true, &rig.host_cpu));
  EXPECT_EQ(rig.nvme.doorbells_rung(), 1u);
  EXPECT_EQ(rig.nvme.interrupts_raised(), 1u);
  EXPECT_EQ(rig.nvme.commands_completed(), 8u);

  RunSim(rig.sim, rig.nvme.Submit(batch, /*coalesce=*/false, &rig.host_cpu));
  EXPECT_EQ(rig.nvme.doorbells_rung(), 1u + 8u);
  EXPECT_EQ(rig.nvme.interrupts_raised(), 1u + 8u);
}

TEST(NvmeDeviceTest, CoalescedBatchIsFasterThanPerCommand) {
  uint32_t bs = 4096;
  std::vector<NvmeCommand> batch;
  Nanos coalesced_time;
  Nanos stock_time;
  {
    Rig rig;
    DeviceBuffer buf(rig.host, bs * 32);
    batch.clear();
    for (int i = 0; i < 32; ++i) {
      batch.push_back(MakeRead(i, 1, MemRef::Of(buf, i * bs, bs)));
    }
    RunSim(rig.sim, rig.nvme.Submit(batch, true, &rig.host_cpu));
    coalesced_time = rig.sim.now();
  }
  {
    Rig rig;
    DeviceBuffer buf(rig.host, bs * 32);
    batch.clear();
    for (int i = 0; i < 32; ++i) {
      batch.push_back(MakeRead(i, 1, MemRef::Of(buf, i * bs, bs)));
    }
    RunSim(rig.sim, rig.nvme.Submit(batch, false, &rig.host_cpu));
    stock_time = rig.sim.now();
  }
  EXPECT_LT(coalesced_time, stock_time);
}

TEST(NvmeDeviceTest, QueueDepthBoundsConcurrency) {
  Rig rig;
  uint32_t bs = rig.nvme.block_size();
  int n = rig.params.nvme_queue_depth * 2;
  DeviceBuffer buf(rig.host, static_cast<size_t>(n) * bs);
  std::vector<NvmeCommand> batch;
  for (int i = 0; i < n; ++i) {
    batch.push_back(MakeRead(i, 1, MemRef::Of(buf, uint64_t{static_cast<uint32_t>(i)} * bs, bs)));
  }
  Status status =
      RunSim(rig.sim, rig.nvme.Submit(batch, true, &rig.host_cpu));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(rig.nvme.commands_completed(), static_cast<uint64_t>(n));
}

}  // namespace
}  // namespace solros
